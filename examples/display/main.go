// Display: the paper's signature workload — the emulator computes while
// the display controller streams the full 530 Mbit/s of storage bandwidth
// through fast I/O on a quarter of the microcycles, and a 10 Mbit/s disk
// trickles words in through slow I/O on another 5% (§7).
//
//	go run ./examples/display
package main

import (
	"fmt"
	"log"

	"dorado"
	"dorado/internal/device"
	"dorado/internal/masm"
	"dorado/internal/microcode"
	"dorado/internal/trace"
)

func main() {
	// Task 0: a busy emulator loop (the foreground computation).
	b := masm.NewBuilder()
	b.EmitAt("emu", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 0,
		LC: microcode.LCLoadRM, Flow: masm.Goto("emu")})

	// Task 13, display: two microinstructions per 16-word block (§7) —
	// command the next block address while bumping the pointer, block.
	b.EmitAt("disp", masm.I{A: microcode.ASelT, B: microcode.BSelRM, R: 2,
		ALU: microcode.ALUAplusB, LC: microcode.LCLoadRM, FF: microcode.FFOutput})
	b.Emit(masm.I{Block: true, Flow: masm.Goto("disp")})

	// Task 11, disk: three microinstructions per two words (§7) — the
	// second word moves from IODATA straight into memory.
	b.EmitAt("disk", masm.I{FF: microcode.FFInput, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	b.Emit(masm.I{A: microcode.ASelStore, R: 1, B: microcode.BSelT,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM})
	b.Emit(masm.I{A: microcode.ASelStore, R: 1, FF: microcode.FFInput,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM, Block: true, Flow: masm.Goto("disk")})

	prog, err := b.Assemble()
	if err != nil {
		log.Fatal(err)
	}

	// A bare machine with a metrics recorder attached: the recorder taps
	// the scheduler, so the wakeup and hold histograms below come from the
	// same run that produces the bandwidth figures.
	sys, err := dorado.New(dorado.WithMetrics(dorado.NewMetrics()))
	if err != nil {
		log.Fatal(err)
	}
	m := sys.Machine
	m.Load(&prog.Words)
	m.Start(prog.MustEntry("emu"))

	// The display consumes one 16-word block every 16 cycles — half the
	// storage bandwidth (≈267 Mbit/s). At the full rate (one block per 8
	// cycles, the paper's 530 Mbit/s figure) the display owns *every*
	// storage cycle and anything else that misses the cache — like the
	// disk's buffer stores — holds forever: the peak is a burst rate, not
	// a sustained budget for the whole machine.
	display := device.NewDisplay(13, m.Mem(), 16, 4)
	display.SetBase(0x20000)
	if err := m.Attach(display); err != nil {
		log.Fatal(err)
	}
	m.SetIOAddress(13, 13)
	m.SetTPC(13, prog.MustEntry("disp"))
	m.SetT(13, 16)

	// The disk delivers a word every 27 cycles ≈ 10 Mbit/s.
	disk := device.NewWordSource(11, 27, 2)
	if err := m.Attach(disk); err != nil {
		log.Fatal(err)
	}
	m.SetIOAddress(11, 11)
	m.SetTPC(11, prog.MustEntry("disk"))
	m.SetRM(1, 0x7000)

	const cycles = 1_000_000 // 60 simulated milliseconds
	m.Run(cycles)

	st := m.Stats()
	fmt.Printf("after %d cycles (%.1f ms of machine time):\n",
		st.Cycles, float64(st.Cycles)*dorado.CycleNS*1e-6)
	fmt.Printf("  display: %6.1f Mbit/s on %4.1f%% of the processor (half the 530 Mbit/s peak)\n",
		trace.MBits(float64(display.BlocksMoved())*256, st.Cycles), 100*st.Utilization(13))
	fmt.Printf("  disk:    %6.1f Mbit/s on %4.1f%% of the processor (paper: 10 on 5%%)\n",
		trace.MBits(float64(disk.Consumed())*16, st.Cycles), 100*st.Utilization(11))
	fmt.Printf("  emulator kept %4.1f%% and executed %d instructions\n",
		100*st.Utilization(0), st.TaskExecuted[0])
	fmt.Printf("  display underruns: %d, disk overruns: %d\n",
		display.Underruns(), disk.Overruns())

	// §6.2.1: "two cycles after the wakeup is asserted, the new task is
	// running" — read the claim back out of the recorded histogram.
	sys.Metrics.Flush(m.Cycle())
	w := sys.Metrics.WakeupToRun().Snapshot()
	fmt.Printf("  wakeup-to-run: %d task switches, %.2f cycles mean (paper: 2)\n",
		w.Total, float64(w.Sum)/float64(w.Total))
	for i, bound := range w.Bounds {
		if w.Counts[i] > 0 {
			fmt.Printf("    ≤%2d cycles: %d\n", bound, w.Counts[i])
		}
	}
}
