// Compiler: the full Dorado software stack — a high-level program compiled
// to Mesa byte codes (the compilers of §3 "exist for Mesa, Interlisp and
// Smalltalk"), interpreted by the Mesa emulator microcode, executed one
// 60 ns microinstruction at a time.
//
//	go run ./examples/compiler
package main

import (
	"fmt"
	"log"

	"dorado"
)

const source = `
// Project a year of compound growth, all in 16-bit machine arithmetic.
func mod(a, b) {
    while a >= b { a = a - b; }
    return a;
}

func fib(n) {
    if n < 2 { return n; }
    return fib(n-1) + fib(n-2);
}

var checksum = 0;
var i = 1;
while i <= 16 {
    checksum = checksum ^ (fib(i) * i) | mod(i * i, 7);
    i = i + 1;
}
return checksum;
`

func main() {
	prog, err := dorado.CompileMesa(source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d bytes of Mesa byte code, %d functions\n",
		len(prog.Code), len(prog.Funcs))
	for _, f := range prog.Funcs {
		fmt.Printf("  %-6s entry byte %-4d %d arg(s), header slot %#x\n",
			f.Name, f.Entry, f.Args, f.Slot)
	}

	sys, err := dorado.New(dorado.WithLanguage(dorado.Mesa))
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.BootSource(source); err != nil {
		log.Fatal(err)
	}
	if !sys.Run(50_000_000) {
		log.Fatal("did not halt")
	}
	st := sys.Machine.Stats()
	ifu := sys.Machine.IFU().Stats()
	fmt.Printf("\nresult = %d\n", sys.Stack()[0])
	fmt.Printf("ran %d macroinstructions in %d cycles (%.2f ms of machine time,\n",
		ifu.Dispatches, st.Cycles, float64(st.Cycles)*dorado.CycleNS*1e-6)
	fmt.Printf("%.2f µinst and %.2f cycles per macroinstruction)\n",
		float64(st.Executed)/float64(ifu.Dispatches),
		float64(st.Cycles)/float64(ifu.Dispatches))

	// The same function through the Lisp compiler: §7's cost hierarchy at
	// whole-program level (tagged items, memory stack, checked arithmetic,
	// shallow-binding calls).
	mesaFib := `
func fib(n) {
    if n < 2 { return n; }
    return fib(n-1) + fib(n-2);
}
return fib(14);
`
	lispFib := `
(define (fib n)
  (if0 n 0
    (if0 (- n 1) 1
      (+ (fib (- n 1)) (fib (- n 2))))))
(fib 14)
`
	mc := runMesa(mesaFib)
	lc := runLisp(lispFib)
	fmt.Printf("\nfib(14) head to head (the §7 hierarchy):\n")
	fmt.Printf("  Mesa: %8d cycles\n", mc)
	fmt.Printf("  Lisp: %8d cycles  (%.1f× Mesa)\n", lc, float64(lc)/float64(mc))
}

func runMesa(src string) uint64 {
	sys, err := dorado.New(dorado.WithLanguage(dorado.Mesa))
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.BootSource(src); err != nil {
		log.Fatal(err)
	}
	if !sys.Run(100_000_000) {
		log.Fatal("mesa fib did not halt")
	}
	if sys.Stack()[0] != 377 {
		log.Fatalf("mesa fib(14) = %d", sys.Stack()[0])
	}
	return sys.Machine.Cycle()
}

func runLisp(src string) uint64 {
	sys, err := dorado.New(dorado.WithLanguage(dorado.Lisp))
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.BootSource(src); err != nil {
		log.Fatal(err)
	}
	if !sys.Run(100_000_000) {
		log.Fatal("lisp fib did not halt")
	}
	if st := sys.LispStack(); st[0][1] != 377 {
		log.Fatalf("lisp fib(14) = %v", st)
	}
	return sys.Machine.Cycle()
}
