// Quickstart: boot the Mesa emulator on a simulated Dorado, run a small
// byte-code program, and look at what the machine did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dorado"
)

func main() {
	// A Dorado running the Mesa instruction set — the machine's primary
	// configuration (§3 of the paper: "optimized for the execution of
	// languages that are compiled into streams of byte codes").
	sys, err := dorado.New(dorado.WithLanguage(dorado.Mesa))
	if err != nil {
		log.Fatal(err)
	}

	// Mesa byte code: compute 6! with a loop.
	//   local 4 = n, local 5 = acc
	asm := sys.Asm()
	asm.OpB("LIB", 6).OpB("SL", 4)
	asm.OpB("LIB", 1).OpB("SL", 5)
	asm.Label("loop")
	asm.OpB("LL", 5).OpB("LL", 4).Op("MUL").OpB("SL", 5)  // acc *= n
	asm.OpB("LL", 4).OpW("LIW", 1).Op("SUB").OpB("SL", 4) // n--
	asm.OpB("LL", 4).OpL("JNZ", "loop")
	asm.OpB("LL", 5)
	asm.Op("HALT")

	if err := sys.Boot(asm); err != nil {
		log.Fatal(err)
	}
	if !sys.Run(100_000) {
		log.Fatal("program did not halt")
	}

	fmt.Printf("6! = %v\n", sys.Stack())

	st := sys.Machine.Stats()
	fmt.Printf("machine: %d cycles (%.1f µs at the 60 ns microcycle)\n",
		st.Cycles, float64(st.Cycles)*dorado.CycleNS*1e-3)
	fmt.Printf("         %d microinstructions executed, %d held cycles\n",
		st.Executed, st.Holds)
	ifu := sys.Machine.IFU().Stats()
	fmt.Printf("IFU:     %d macroinstructions dispatched (%.2f µinst each)\n",
		ifu.Dispatches, float64(st.Executed)/float64(ifu.Dispatches))
}
