// Bitblt: run the paper's raster operations over a simulated screen bitmap
// and report their bandwidths — §7's "34 megabits/sec for simple cases ...
// 24 megabits/sec" for the filtered merge — then render a small checker
// pattern to show the bits really moved.
//
//	go run ./examples/bitblt
package main

import (
	"fmt"
	"log"

	"dorado"
	"dorado/internal/bitblt"
)

func main() {
	ps, err := dorado.NewBitBlt()
	if err != nil {
		log.Fatal(err)
	}

	// A 1024×808 screen is ~51 K words (the Alto's raster); use a 64-row
	// band of it.
	const screen = 0x40000
	const srcArt = 0x10000
	band := bitblt.Params{
		Src: srcArt, Dst: screen, WidthWords: 64, Height: 64,
		SrcPitch: 64, DstPitch: 64,
	}

	run := func(p bitblt.Params, label, paper string) {
		sys, err := dorado.New() // a bare machine: no emulator, no devices
		if err != nil {
			log.Fatal(err)
		}
		m := sys.Machine
		for a := p.Src; a < p.Src+uint32(p.SrcPitch*p.Height); a++ {
			m.Mem().Poke(a, uint16(a)*0x9E37)
		}
		cycles, err := ps.Run(m, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %6.1f Mbit/s  (%6d cycles; paper: %s)\n",
			label, bitblt.MBitPerSec(p, cycles), cycles, paper)
	}

	fmt.Println("BitBlt over a 1024×64-bit band:")
	p := band
	p.Op = bitblt.Fill
	run(p, "Fill (erase)", "34, simple case")
	p = band
	p.Op = bitblt.Copy
	run(p, "Copy (scroll)", "34, simple case")
	p = band
	p.Op = bitblt.CopyShifted
	p.BitOffset = 3
	run(p, "Copy at bit offset 3", "between")
	p = band
	p.Op = bitblt.Merge
	p.Filter = 0x00FF
	run(p, "Merge with filter", "24, complex case")

	// And show the bits: paint a checkerboard with two filtered merges.
	sys, err := dorado.New()
	if err != nil {
		log.Fatal(err)
	}
	m := sys.Machine
	const w, h = 4, 8 // words × rows
	for a := uint32(0); a < w*h; a++ {
		m.Mem().Poke(srcArt+a, 0xFFFF)
	}
	checker := bitblt.Params{
		Op: bitblt.Merge, Src: srcArt, Dst: screen,
		WidthWords: w, Height: h, SrcPitch: w, DstPitch: w,
		Filter: 0xF0F0,
	}
	if _, err := ps.Run(m, checker); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfiltered paint (each char = 4 bits):")
	for row := 0; row < h; row++ {
		for col := 0; col < w; col++ {
			v := m.Mem().Peek(screen + uint32(row*w+col))
			for nib := 3; nib >= 0; nib-- {
				if v>>(4*nib)&0xF == 0xF {
					fmt.Print("█")
				} else {
					fmt.Print("·")
				}
			}
		}
		fmt.Println()
	}
}
