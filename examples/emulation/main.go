// Emulation: the same computation — sum 1..50 — expressed in all four
// instruction sets the Dorado emulated, showing §7's cost hierarchy: Mesa
// and BCPL opcodes cost a microinstruction or two, Lisp pays for 32-bit
// tagged items and runtime checks, Smalltalk for dynamic dispatch.
//
//	go run ./examples/emulation
package main

import (
	"fmt"
	"log"

	"dorado"
)

func main() {
	fmt.Println("sum 1..50 in four instruction sets:")
	fmt.Printf("  %-10s %8s %8s %10s %8s\n", "language", "result", "cycles", "µinst", "macroinst")
	for _, lang := range []dorado.Language{dorado.Mesa, dorado.BCPL, dorado.Lisp, dorado.Smalltalk} {
		runOne(lang)
	}
}

func runOne(lang dorado.Language) {
	sys, err := dorado.New(dorado.WithLanguage(lang))
	if err != nil {
		log.Fatal(err)
	}
	asm := sys.Asm()
	var read func() uint16
	switch lang {
	case dorado.Mesa:
		asm.OpB("LIB", 50).OpB("SL", 4)
		asm.OpB("LIB", 0).OpB("SL", 5)
		asm.Label("loop")
		asm.OpB("LL", 5).OpB("LL", 4).Op("ADD").OpB("SL", 5)
		asm.OpB("LL", 4).OpW("LIW", 1).Op("SUB").OpB("SL", 4)
		asm.OpB("LL", 4).OpL("JNZ", "loop")
		asm.OpB("LL", 5).Op("HALT")
		read = func() uint16 { return sys.Stack()[0] }
	case dorado.BCPL:
		asm.OpB("LDK", 1).OpB("STL", 3)
		asm.OpB("LDK", 50).OpB("STL", 2)
		asm.OpB("LDK", 0).OpB("STG", 0)
		asm.Label("loop")
		asm.OpB("LDG", 0).OpB("ADDL", 2).OpB("STG", 0)
		asm.OpB("LDL", 2).OpB("SUBL", 3).OpB("STL", 2)
		asm.OpL("JNZ", "loop")
		asm.OpB("LDG", 0).Op("HALT")
		read = func() uint16 { return sys.Acc() }
	case dorado.Lisp:
		// acc and n live in frame locals as tagged items; the loop tests n
		// by consing nothing — use countdown via JNIL on a NIL sentinel...
		// keep it direct: unrolled adds exercise the typed-item path.
		asm.OpW("PUSHK", 0)
		for n := 1; n <= 50; n++ {
			asm.OpW("PUSHK", uint16(n)).Op("ADDF")
		}
		asm.Op("HALT")
		read = func() uint16 { return sys.LispStack()[0][1] }
	case dorado.Smalltalk:
		asm.OpW("PUSHK", 0)
		for n := 1; n <= 50; n++ {
			asm.OpW("PUSHK", uint16(n)).Op("ADDI")
		}
		asm.Op("HALT")
		read = func() uint16 { return sys.Stack()[0] >> 1 } // untag
	}
	if err := sys.Boot(asm); err != nil {
		log.Fatal(err)
	}
	if !sys.Run(10_000_000) {
		log.Fatalf("%v did not halt", lang)
	}
	st := sys.Machine.Stats()
	ifu := sys.Machine.IFU().Stats()
	fmt.Printf("  %-10s %8d %8d %10d %8d\n",
		lang, read(), st.Cycles, st.Executed, ifu.Dispatches)
}
