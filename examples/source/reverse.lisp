; reverse.lisp — build and reverse a list, sum it:
;   dorado -lang lisp -source examples/source/reverse.lisp
(define (range n)
  (if0 n nil (cons n (range (- n 1)))))
(define (revappend l acc)
  (ifnil l acc (revappend (cdr l) (cons (car l) acc))))
(define (sum l)
  (ifnil l 0 (+ (car l) (sum (cdr l)))))
(sum (revappend (range 30) nil))
