package dorado

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

type countingTracer struct{ n int }

func (c *countingTracer) Trace(TraceEvent) { c.n++ }

// mesaAdd assembles the quickstart program on sys and runs it to halt.
func mesaAdd(t *testing.T, sys *System) {
	t.Helper()
	asm := sys.Asm()
	asm.OpB("LIB", 2).OpB("LIB", 40).Op("ADD").Op("HALT")
	if err := sys.Boot(asm); err != nil {
		t.Fatal(err)
	}
	if !sys.Run(10_000) {
		t.Fatal("did not halt")
	}
}

func TestNewOptionMatrix(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		lang Language
		met  bool
	}{
		{"none", nil, None, false},
		{"config-only", []Option{WithConfig(Config{})}, None, false},
		{"language", []Option{WithLanguage(Mesa)}, Mesa, false},
		{"language+config", []Option{WithLanguage(Lisp), WithConfig(Config{})}, Lisp, false},
		{"language+metrics", []Option{WithLanguage(Mesa), WithMetrics(NewMetrics())}, Mesa, true},
		{"everything", []Option{
			WithLanguage(Smalltalk), WithConfig(Config{}),
			WithMetrics(NewMetrics()), WithTracer(&countingTracer{}),
			WithDevice(NewDisk(12)),
		}, Smalltalk, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys, err := New(tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if sys.Language != tc.lang {
				t.Errorf("Language = %v, want %v", sys.Language, tc.lang)
			}
			if (sys.Metrics != nil) != tc.met {
				t.Errorf("Metrics attached = %v, want %v", sys.Metrics != nil, tc.met)
			}
			if (sys.Emulator != nil) != (tc.lang != None) {
				t.Errorf("Emulator installed = %v for %v", sys.Emulator != nil, tc.lang)
			}
			if sys.Machine == nil {
				t.Fatal("no machine")
			}
		})
	}
}

// WithTranslation must produce a system that translates hot microcode and
// still computes the same answer as an untranslated one.
func TestWithTranslation(t *testing.T) {
	plain, err := New(WithLanguage(Mesa))
	if err != nil {
		t.Fatal(err)
	}
	trans, err := New(WithLanguage(Mesa), WithTranslation(Translation{Enable: true, HotThreshold: 4}))
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range []*System{plain, trans} {
		asm := sys.Asm()
		asm.OpB("LIB", 200)
		asm.OpB("SL", 4)
		asm.Label("loop")
		asm.OpB("LL", 4)
		asm.OpB("LIB", 1)
		asm.Op("SUB")
		asm.Op("DUP")
		asm.OpB("SL", 4)
		asm.OpL("JNZ", "loop")
		asm.Op("HALT")
		if err := sys.Boot(asm); err != nil {
			t.Fatal(err)
		}
		if !sys.Run(2_000_000) {
			t.Fatal("did not halt")
		}
	}
	if p, q := plain.Machine.Cycle(), trans.Machine.Cycle(); p != q {
		t.Errorf("cycle counts diverged: plain %d, translated %d", p, q)
	}
	ts := trans.Machine.TranslationStats()
	if ts.BlocksBuilt == 0 || ts.FusedCycles == 0 {
		t.Errorf("translation never engaged: %+v", ts)
	}
	if ps := plain.Machine.TranslationStats(); ps.BlocksBuilt != 0 {
		t.Errorf("untranslated system built superblocks: %+v", ps)
	}
}

func TestNewBareMachineRuns(t *testing.T) {
	sys, err := New()
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder()
	b.Label("start")
	b.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	sys.Machine.Load(&p.Words)
	sys.Machine.Start(p.MustEntry("start"))
	if !sys.Run(100) {
		t.Fatal("bare system did not halt")
	}
}

// The deprecated constructors must be behaviorally identical to New.
func TestDeprecatedWrapperEquivalence(t *testing.T) {
	old, err := NewSystem(Mesa)
	if err != nil {
		t.Fatal(err)
	}
	neu, err := New(WithLanguage(Mesa))
	if err != nil {
		t.Fatal(err)
	}
	mesaAdd(t, old)
	mesaAdd(t, neu)
	if os, ns := old.Stack(), neu.Stack(); len(os) != 1 || len(ns) != 1 || os[0] != ns[0] {
		t.Fatalf("stacks diverge: old %v, new %v", os, ns)
	}
	if old.Machine.Stats() != neu.Machine.Stats() {
		t.Fatalf("stats diverge:\nold: %+v\nnew: %+v", old.Machine.Stats(), neu.Machine.Stats())
	}

	oldW, err := NewSystemWith(Lisp, Config{})
	if err != nil {
		t.Fatal(err)
	}
	neuW, err := New(WithLanguage(Lisp), WithConfig(Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if oldW.Language != neuW.Language || (oldW.Emulator == nil) != (neuW.Emulator == nil) {
		t.Error("NewSystemWith and New disagree")
	}
}

func TestSentinelErrors(t *testing.T) {
	if _, err := New(WithLanguage(Language(99))); !errors.Is(err, ErrUnknownLanguage) {
		t.Errorf("unknown language error = %v, want ErrUnknownLanguage", err)
	}
	if _, err := NewSystem(Language(99)); !errors.Is(err, ErrUnknownLanguage) {
		t.Errorf("deprecated path error = %v, want ErrUnknownLanguage", err)
	}
	sys, err := New(WithLanguage(BCPL))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.BootSource("x := 1"); !errors.Is(err, ErrNoCompiler) {
		t.Errorf("BCPL BootSource error = %v, want ErrNoCompiler", err)
	}
}

func TestInstallErrorSurfacesThroughFacade(t *testing.T) {
	sys, err := New(WithLanguage(Mesa))
	if err != nil {
		t.Fatal(err)
	}
	asm := sys.Asm()
	asm.OpL("JMP", "nowhere") // undefined label
	err = sys.Boot(asm)
	if err == nil {
		t.Fatal("Boot succeeded with undefined label")
	}
	var ie *InstallError
	if !errors.As(err, &ie) {
		t.Fatalf("Boot error %v (%T) is not an *InstallError", err, err)
	}
}

// Stack() must respect the [stack:2][word:6] STACKPTR split (§6.3.3).
func TestStackRespectsBankBits(t *testing.T) {
	sys, err := New(WithLanguage(Mesa))
	if err != nil {
		t.Fatal(err)
	}
	m := sys.Machine

	// Empty stack.
	m.SetStackPtr(0)
	if got := sys.Stack(); len(got) != 0 {
		t.Errorf("empty stack reads %v", got)
	}

	// Two words in bank 2: words live at stack[0x81..0x82], and the old
	// 0x3F-mask bug would have read bank 0 instead.
	m.SetStackPtr(2<<6 | 2)
	m.SetStack(2<<6+1, 111)
	m.SetStack(2<<6+2, 222)
	m.SetStack(1, 0xDEAD) // bank 0 decoy
	m.SetStack(2, 0xBEEF)
	if got := sys.Stack(); len(got) != 2 || got[0] != 111 || got[1] != 222 {
		t.Errorf("bank-2 stack = %v, want [111 222]", got)
	}

	// Full stack: depth 63 is the deepest pointer value the 6-bit word
	// field represents.
	m.SetStackPtr(63)
	for i := 1; i <= 63; i++ {
		m.SetStack(i, uint16(i))
	}
	got := sys.Stack()
	if len(got) != 63 || got[0] != 1 || got[62] != 63 {
		t.Errorf("full stack len=%d first=%v last=%v", len(got), got[0], got[len(got)-1])
	}
}

func TestWithTracerSeesEveryCycle(t *testing.T) {
	tr := &countingTracer{}
	sys, err := New(WithLanguage(Mesa), WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	mesaAdd(t, sys)
	if uint64(tr.n) != sys.Machine.Cycle() {
		t.Errorf("tracer saw %d events over %d cycles", tr.n, sys.Machine.Cycle())
	}
}

func TestMetricsMatchCoreStats(t *testing.T) {
	sys, err := New(WithLanguage(Mesa), WithMetrics(NewMetrics()))
	if err != nil {
		t.Fatal(err)
	}
	mesaAdd(t, sys)
	st := sys.Machine.Stats()

	var buf bytes.Buffer
	if err := sys.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	wantLines := []string{
		"dorado_cycles_total " + itoa(st.Cycles),
		"dorado_instructions_total " + itoa(st.Executed),
		"dorado_task_switches_total " + itoa(st.TaskSwitches),
		"dorado_hold_latency_cycles_sum " + itoa(st.Holds),
	}
	for _, want := range wantLines {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The hold histogram's episode sum must equal the stats hold counter.
	h := sys.Metrics.HoldLatency().Snapshot()
	if h.Sum != st.Holds {
		t.Errorf("hold histogram sum %d != stats holds %d", h.Sum, st.Holds)
	}
}

// Two identical runs must export byte-identical Prometheus text and Chrome
// traces — the determinism the exporters promise.
func TestGoldenExportsByteStable(t *testing.T) {
	run := func() (string, string) {
		sys, err := New(WithLanguage(Mesa), WithMetrics(NewMetrics()), WithDevice(NewDisk(12)))
		if err != nil {
			t.Fatal(err)
		}
		mesaAdd(t, sys)
		var prom, chrome bytes.Buffer
		if err := sys.WritePrometheus(&prom); err != nil {
			t.Fatal(err)
		}
		if err := sys.WriteChromeTrace(&chrome); err != nil {
			t.Fatal(err)
		}
		return prom.String(), chrome.String()
	}
	p1, c1 := run()
	p2, c2 := run()
	if p1 != p2 {
		t.Errorf("Prometheus exports differ:\n--- 1 ---\n%s\n--- 2 ---\n%s", p1, p2)
	}
	if c1 != c2 {
		t.Errorf("Chrome traces differ")
	}

	// The trace is valid JSON in the trace_event object format with at
	// least one scheduling span.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(c1), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	spans := 0
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Error("trace has no scheduling spans")
	}
}

func TestWriteChromeTraceWithoutMetrics(t *testing.T) {
	sys, err := New(WithLanguage(Mesa))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Error("WriteChromeTrace succeeded without WithMetrics")
	}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
