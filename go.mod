module dorado

go 1.22
