package dorado

import (
	"testing"

	"dorado/internal/bench"
)

// The benchmark harness: one testing.B per experiment in DESIGN.md's
// index. Each iteration re-runs the full experiment (simulator workload +
// measurement); the benchmark fails if the measured shape stops matching
// the paper, so `go test -bench=.` doubles as the reproduction check.
// EXPERIMENTS.md records the paper-vs-measured values (regenerate them
// with cmd/benchtab).
func runExperiment(b *testing.B, run func() bench.Table) {
	b.Helper()
	var tab bench.Table
	for i := 0; i < b.N; i++ {
		tab = run()
	}
	if tab.Err != nil {
		b.Fatalf("experiment error: %v", tab.Err)
	}
	if !tab.Pass {
		b.Errorf("shape mismatch:\n%s", tab)
	}
}

// BenchmarkE1MesaSimpleOps — "a simple macroinstruction in one cycle".
func BenchmarkE1MesaSimpleOps(b *testing.B) { runExperiment(b, bench.E1MesaSimpleOps) }

// BenchmarkE2OpcodeClasses — µinstructions per opcode class, all four
// emulators (§7's Mesa/BCPL/Lisp counts).
func BenchmarkE2OpcodeClasses(b *testing.B) { runExperiment(b, bench.E2OpcodeClasses) }

// BenchmarkE3BitBlt — 34 Mbit/s simple vs 24 Mbit/s complex raster ops.
func BenchmarkE3BitBlt(b *testing.B) { runExperiment(b, bench.E3BitBlt) }

// BenchmarkE4DiskUtilization — the 10 Mbit/s disk costs 5% of the processor.
func BenchmarkE4DiskUtilization(b *testing.B) { runExperiment(b, bench.E4DiskUtilization) }

// BenchmarkE5FastIO — 530 Mbit/s of fast I/O on 25% of the cycles.
func BenchmarkE5FastIO(b *testing.B) { runExperiment(b, bench.E5FastIO) }

// BenchmarkE6SlowIO — one word per cycle (265 Mbit/s) over IODATA.
func BenchmarkE6SlowIO(b *testing.B) { runExperiment(b, bench.E6SlowIO) }

// BenchmarkE7Placement — 99.9% microstore utilization under the
// page/branch-pair placement constraints.
func BenchmarkE7Placement(b *testing.B) { runExperiment(b, bench.E7Placement) }

// BenchmarkE8GrainAblation — 2-cycle grain (25%) vs 3-cycle grain (37.5%).
func BenchmarkE8GrainAblation(b *testing.B) { runExperiment(b, bench.E8GrainAblation) }

// BenchmarkE9TaskSwitch — 2-cycle wakeup latency, zero-overhead switching.
func BenchmarkE9TaskSwitch(b *testing.B) { runExperiment(b, bench.E9TaskSwitch) }

// BenchmarkE10BypassAblation — Model 0's missing bypasses: bugs + slowdown.
func BenchmarkE10BypassAblation(b *testing.B) { runExperiment(b, bench.E10BypassAblation) }

// BenchmarkE11BranchAblation — free branches vs +1-cycle delayed branches.
func BenchmarkE11BranchAblation(b *testing.B) { runExperiment(b, bench.E11BranchAblation) }

// BenchmarkE12HoldVsAlternatives — Hold vs fixed-wait vs polling (§5.7).
func BenchmarkE12HoldVsAlternatives(b *testing.B) { runExperiment(b, bench.E12HoldVsAlternatives) }

// BenchmarkE13MemoryLatency — hit 2 cycles, miss > 10× hit, storage 1/8 cycles.
func BenchmarkE13MemoryLatency(b *testing.B) { runExperiment(b, bench.E13MemoryLatency) }

// BenchmarkE14FunctionCall — calls ≈50 µinst in Mesa, ≈200 in Lisp.
func BenchmarkE14FunctionCall(b *testing.B) { runExperiment(b, bench.E14FunctionCall) }

// BenchmarkSimulatorThroughput measures the simulator itself: host time
// per simulated machine cycle for a representative Mesa workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	sys, err := NewSystem(Mesa)
	if err != nil {
		b.Fatal(err)
	}
	asm := sys.Asm()
	asm.OpB("LIB", 100).OpB("SL", 4)
	asm.Label("loop")
	asm.OpB("LL", 4).OpW("LIW", 1).Op("SUB").OpB("SL", 4)
	asm.OpB("LL", 4).OpL("JNZ", "loop")
	asm.Op("HALT")
	var cycles, prev uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Boot(asm); err != nil {
			b.Fatal(err)
		}
		if !sys.Run(10_000_000) {
			b.Fatal("did not halt")
		}
		cycles += sys.Machine.Cycle() - prev
		prev = sys.Machine.Cycle()
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "cycles/op")
}
