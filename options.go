package dorado

import (
	"fmt"

	"dorado/internal/core"
	"dorado/internal/emulator"
)

// An Option configures a System built by New.
type Option func(*settings)

type settings struct {
	lang    Language
	hasLang bool
	cfg     Config
	tracer  core.Tracer
	metrics *Metrics
	prof    *core.Profiler
	devices []Device
}

// WithLanguage installs one of the four byte-code emulators (§7). Without
// it the System is a bare microcode-level machine (Language None).
func WithLanguage(l Language) Option {
	return func(s *settings) { s.lang, s.hasLang = l, true }
}

// WithConfig sets the machine configuration. The zero Config — the Dorado
// as built — is the default.
func WithConfig(cfg Config) Option {
	return func(s *settings) { s.cfg = cfg }
}

// WithTracer attaches a cycle tracer (e.g. trace.NewWriter or a Ring).
func WithTracer(t Tracer) Option {
	return func(s *settings) { s.tracer = t }
}

// WithMetrics attaches an observability recorder; pass NewMetrics(). The
// recorder's counters are readable mid-run, and the System's
// WritePrometheus / WriteChromeTrace methods export its data. Metrics-off
// systems pay one nil check per cycle.
func WithMetrics(m *Metrics) Option {
	return func(s *settings) { s.metrics = m }
}

// WithTranslation enables the superblock translator: hot straight-line
// microcode runs are compiled into fused Go closures, typically 1.5x or
// better over the predecoded interpreter on compute-bound workloads
// (identical simulated behavior — the translator falls back to the cycle
// loop on task switches, holds, and IFU dispatches). Pass
// Translation{Enable: true} for the defaults.
//
//	sys, err := dorado.New(dorado.WithTranslation(dorado.Translation{Enable: true}))
func WithTranslation(t Translation) Option {
	return func(s *settings) { s.cfg.Translation = t }
}

// WithDevice attaches an I/O controller to its wakeup task.
func WithDevice(d Device) Option {
	return func(s *settings) { s.devices = append(s.devices, d) }
}

// New builds a System from functional options:
//
//	sys, err := dorado.New(dorado.WithLanguage(dorado.Mesa))
//	sys, err := dorado.New(dorado.WithConfig(cfg), dorado.WithMetrics(dorado.NewMetrics()))
//
// With no options it is a bare machine with the default configuration;
// drop to sys.Machine for the microcode-level interface.
func New(opts ...Option) (*System, error) {
	var st settings
	st.lang = None
	for _, o := range opts {
		o(&st)
	}

	var prog *emulator.Program
	if st.hasLang && st.lang != None {
		var err error
		switch st.lang {
		case Mesa:
			prog, err = emulator.BuildMesa()
		case BCPL:
			prog, err = emulator.BuildBCPL()
		case Lisp:
			prog, err = emulator.BuildLisp()
		case Smalltalk:
			prog, err = emulator.BuildSmalltalk()
		default:
			return nil, fmt.Errorf("%w %v", ErrUnknownLanguage, st.lang)
		}
		if err != nil {
			return nil, err
		}
	} else {
		st.lang = None
	}

	m, err := core.New(st.cfg)
	if err != nil {
		return nil, err
	}
	if st.tracer != nil {
		m.SetTracer(st.tracer)
	}
	if st.metrics != nil {
		m.SetRecorder(st.metrics)
		if prog != nil {
			st.metrics.SetTaskName(0, prog.Name)
		}
	}
	if st.prof != nil {
		m.SetProfiler(st.prof)
	}
	for _, d := range st.devices {
		if err := m.Attach(d); err != nil {
			return nil, err
		}
	}
	return &System{Machine: m, Language: st.lang, Emulator: prog, Metrics: st.metrics, Profiler: st.prof}, nil
}
