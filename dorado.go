// Package dorado is a cycle-level reproduction of the Xerox PARC Dorado
// processor, the machine described in Lampson & Pier, "A Processor for a
// High-Performance Personal Computer" (7th Symposium on Computer
// Architecture, 1980; Xerox PARC CSL-81-1).
//
// The package is a facade over the subsystem packages:
//
//	internal/microcode  the 34-bit microinstruction set (the architecture)
//	internal/masm       the microassembler and page placer
//	internal/memory     cache + storage + map + fast I/O
//	internal/ifu        the instruction fetch unit
//	internal/device     I/O controller models (disk, display, ...)
//	internal/core       the processor: 16 tasks, Hold, data section
//	internal/emulator   Mesa/BCPL/Lisp/Smalltalk byte-code emulators
//	internal/bitblt     the BitBlt raster operation
//	internal/bench      the paper's evaluation, experiment by experiment
//
// Quickstart — run a Mesa byte-code program:
//
//	sys, _ := dorado.New(dorado.WithLanguage(dorado.Mesa))
//	asm := sys.Asm()
//	asm.OpB("LIB", 2).OpB("LIB", 40).Op("ADD").Op("HALT")
//	sys.Boot(asm)
//	sys.Run(10_000)
//	fmt.Println(sys.Stack()) // [42]
//
// New takes functional options: WithLanguage picks an emulator, WithConfig
// a machine configuration, WithMetrics a cycle-level observability
// recorder (Prometheus and Chrome-trace exportable, see WritePrometheus /
// WriteChromeTrace), WithTracer a per-cycle tracer, WithDevice an I/O
// controller. With no options New builds a bare microcode-level machine;
// see examples/ for complete programs and cmd/benchtab for the paper's
// evaluation tables.
package dorado

import (
	"fmt"

	"dorado/internal/bench"
	"dorado/internal/bitblt"
	"dorado/internal/core"
	"dorado/internal/device"
	"dorado/internal/emulator"
	"dorado/internal/lispc"
	"dorado/internal/masm"
	"dorado/internal/mesac"
	"dorado/internal/microcode"
	"dorado/internal/stc"
)

// Re-exported machine types. The zero Config is the Dorado as built:
// 60 ns cycle, 4 K-word cache, 8-cycle storage RAMs, all ablations off.
type (
	// Machine is the Dorado processor with its memory system and IFU.
	Machine = core.Machine
	// Config assembles a Machine.
	Config = core.Config
	// Options select the paper's design-alternative ablations.
	Options = core.Options
	// Stats counts processor activity.
	Stats = core.Stats
	// Device is the hardware half of an I/O controller.
	Device = device.Device
	// Builder assembles microcode programs.
	Builder = masm.Builder
	// MicroProgram is a placed microstore image.
	MicroProgram = masm.Program
	// Asm assembles byte-code programs for an emulator.
	Asm = emulator.Asm
	// BitBltParams describes one raster operation.
	BitBltParams = bitblt.Params
	// Translation configures the superblock translator (see
	// WithTranslation). The zero value leaves translation off.
	Translation = core.Translation
	// TranslationStats counts translator activity (Machine.TranslationStats).
	TranslationStats = core.TranslationStats
	// Tracer receives one event per simulated cycle (see WithTracer).
	Tracer = core.Tracer
	// TraceEvent is one cycle's trace record.
	TraceEvent = core.TraceEvent
	// InstallError is the typed error emulator install paths return
	// (match with errors.As).
	InstallError = emulator.InstallError
)

// CycleNS is the machine cycle time in nanoseconds.
const CycleNS = core.CycleNS

// NewMachine builds a bare machine (microcode level). Load a program
// assembled with NewBuilder, set TPCs, attach devices, and Step or Run.
//
// Deprecated: use New(WithConfig(cfg)) and the System's Machine field;
// NewMachine remains as a thin equivalent wrapper.
func NewMachine(cfg Config) (*Machine, error) { return core.New(cfg) }

// NewBuilder returns an empty microassembler.
func NewBuilder() *Builder { return masm.NewBuilder() }

// Language selects one of the four byte-code emulators of §7.
type Language int

// None marks a System with no emulator installed (a bare machine built by
// New without WithLanguage).
const None Language = -1

const (
	// Mesa is the compile-time-checked stack machine (loads/stores in 1–2
	// microinstructions).
	Mesa Language = iota
	// BCPL is the accumulator machine of the Alto lineage.
	BCPL
	// Lisp is the Interlisp-style machine: 32-bit tagged items, memory
	// stack, runtime checks.
	Lisp
	// Smalltalk is the dynamic-dispatch machine.
	Smalltalk
)

// String returns the language's display name ("Mesa", "BCPL", ...).
func (l Language) String() string {
	switch l {
	case None:
		return "None"
	case Mesa:
		return "Mesa"
	case BCPL:
		return "BCPL"
	case Lisp:
		return "Lisp"
	case Smalltalk:
		return "Smalltalk"
	}
	return fmt.Sprintf("Language(%d)", int(l))
}

// System is a machine built by New — with an emulator installed (the
// configuration a Dorado user saw) or bare (Language None). Metrics is the
// recorder attached via WithMetrics and Profiler the microarchitectural
// profiler attached via WithProfiler; each is nil when not requested.
type System struct {
	Machine  *Machine
	Language Language
	Emulator *emulator.Program
	Metrics  *Metrics
	Profiler *Profiler
}

// NewSystem builds a machine running the given language's emulator.
//
// Deprecated: use New(WithLanguage(lang)). NewSystem delegates to it with
// identical behavior.
func NewSystem(lang Language) (*System, error) {
	return New(WithLanguage(lang))
}

// NewSystemWith is NewSystem with a machine configuration.
//
// Deprecated: use New(WithLanguage(lang), WithConfig(cfg)). NewSystemWith
// delegates to it with identical behavior.
func NewSystemWith(lang Language, cfg Config) (*System, error) {
	return New(WithLanguage(lang), WithConfig(cfg))
}

// Asm returns a byte-code assembler for the system's instruction set.
func (s *System) Asm() *Asm { return emulator.NewAsm(s.Emulator) }

// Boot loads the assembled byte program and installs the emulator: the
// first macroinstruction dispatches on the next Run.
func (s *System) Boot(a *Asm) error {
	if err := a.Install(s.Machine); err != nil {
		return err
	}
	return s.Emulator.InstallOn(s.Machine)
}

// Run executes up to maxCycles, returning true if the program halted.
func (s *System) Run(maxCycles uint64) bool { return s.Machine.Run(maxCycles) }

// Stack returns the hardware evaluation stack of the currently selected
// stack bank, bottom first (meaningful for Mesa and Smalltalk; Lisp keeps
// its stack in memory). STACKPTR is [stack:2][word:6] (§6.3.3): the word
// field is the depth, the bank bits select which of the four 64-word
// stacks the words come from.
func (s *System) Stack() []uint16 {
	sp := int(s.Machine.StackPtr())
	base := sp &^ (core.StackWords - 1)
	n := sp & (core.StackWords - 1)
	out := make([]uint16, n)
	for i := 1; i <= n; i++ {
		out[i-1] = s.Machine.Stack(base + i)
	}
	return out
}

// Acc returns the BCPL accumulator (task 0's T register).
func (s *System) Acc() uint16 { return s.Machine.T(0) }

// LispStack returns the Lisp memory evaluation stack as (tag, value)
// pairs, bottom first.
func (s *System) LispStack() [][2]uint16 { return emulator.LispStack(s.Machine) }

// DefineFunc declares a function header for CALL/SEND (entry byte PC and
// argument count) at the given global slot.
func (s *System) DefineFunc(slot, entryPC, nargs uint16) {
	emulator.DefineFunc(s.Machine, slot, entryPC, nargs)
}

// DefineLispFunc declares a Lisp function header with shallow-bound
// parameter symbols.
func (s *System) DefineLispFunc(slot, entryPC uint16, symbols []uint16) {
	emulator.DefineLispFunc(s.Machine, slot, entryPC, symbols)
}

// CompileMesa compiles the small Mesa-flavored source language (see
// internal/mesac for the grammar) to byte code runnable on a Mesa System.
func CompileMesa(src string) (*mesac.Program, error) { return mesac.Compile(src) }

// CompileLisp compiles s-expression source (see internal/lispc) to byte
// code runnable on a Lisp System.
func CompileLisp(src string) (*lispc.Program, error) { return lispc.Compile(src) }

// CompileSmalltalk compiles the object language (see internal/stc) to byte
// code plus an object-memory image for a Smalltalk System.
func CompileSmalltalk(src string) (*stc.Program, error) { return stc.Compile(src) }

// BootSource compiles src for the system's language (Mesa, Lisp, or
// Smalltalk) and boots it.
func (s *System) BootSource(src string) error {
	switch s.Language {
	case Mesa:
		p, err := mesac.Compile(src)
		if err != nil {
			return err
		}
		p.InstallOn(s.Machine)
		return s.Emulator.InstallOn(s.Machine)
	case Lisp:
		p, err := lispc.Compile(src)
		if err != nil {
			return err
		}
		p.InstallOn(s.Machine)
		return s.Emulator.InstallOn(s.Machine)
	case Smalltalk:
		p, err := stc.Compile(src)
		if err != nil {
			return err
		}
		// The object image is poked after booting so InstallOn's memory
		// initialization cannot clobber it.
		if err := s.Emulator.InstallOn(s.Machine); err != nil {
			return err
		}
		p.InstallOn(s.Machine)
		return nil
	}
	return fmt.Errorf("%w %v (BCPL programs assemble via Asm)", ErrNoCompiler, s.Language)
}

// BuildSystemImage assembles all four emulators into one microstore image
// (any language bootable from the same store, like the production
// machine's writable microstore).
func BuildSystemImage() (*emulator.SystemImage, error) { return emulator.BuildSystemImage() }

// NewBitBlt assembles the BitBlt microcode.
func NewBitBlt() (*bitblt.Programs, error) { return bitblt.Build() }

// Devices.

// NewDisk models the paper's 10 Mbit/s disk: a word every cyclesPerWord
// cycles, two words per wakeup.
func NewDisk(task int) *device.WordSource { return device.NewWordSource(task, 27, 2) }

// NewDisplay models the fast-I/O display; cyclesPerBlock=8 demands the
// full 530 Mbit/s storage bandwidth.
func NewDisplay(task int, m *Machine, cyclesPerBlock int) *device.Display {
	return device.NewDisplay(task, m.Mem(), cyclesPerBlock, 4)
}

// NewEthernet models a ≈3 Mbit/s serial link (the Alto Ethernet's rate).
func NewEthernet(task int) *device.WordSource { return device.NewWordSource(task, 89, 2) }

// Experiments returns the paper-reproduction experiment suite (see
// DESIGN.md for the index and EXPERIMENTS.md for recorded results).
func Experiments() []bench.Experiment { return bench.Experiments() }

// RunExperiments runs every experiment and returns the tables.
func RunExperiments() []bench.Table { return bench.All() }

// Microcode-level conveniences re-exported for examples and tools.

// Word is a decoded 34-bit microinstruction.
type Word = microcode.Word

// Addr is a 12-bit microstore address.
type Addr = microcode.Addr
