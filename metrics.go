package dorado

import (
	"errors"
	"io"

	"dorado/internal/obs"
	"dorado/internal/trace"
)

// Observability types re-exported from internal/obs. Attach a Metrics
// recorder with WithMetrics; while the machine runs, its counters and
// histograms are safe to read concurrently, and once paused the System can
// export everything in standard formats.
type (
	// Metrics is the cycle-level observability recorder.
	Metrics = obs.Recorder
	// MetricsConfig sizes a Metrics recorder (zero value = defaults).
	MetricsConfig = obs.Config
	// MetricsSnapshot is an ordered set of metric families ready for
	// Prometheus rendering.
	MetricsSnapshot = obs.Snapshot
	// TaskSpan is one scheduling interval of the recorded timeline.
	TaskSpan = obs.Span
)

// NewMetrics builds a recorder with default buffer sizes.
func NewMetrics() *Metrics { return obs.NewRecorder(obs.Config{}) }

// NewMetricsWith builds a recorder with explicit buffer sizes.
func NewMetricsWith(cfg MetricsConfig) *Metrics { return obs.NewRecorder(cfg) }

// Snapshot assembles the machine's counters (and the recorder's, when one
// is attached) into an ordered metric set.
func (s *System) Snapshot() *MetricsSnapshot {
	return trace.MetricsSnapshot(s.Machine, s.Metrics)
}

// WritePrometheus renders the current counters in the Prometheus text
// exposition format. Byte-deterministic for identical runs.
func (s *System) WritePrometheus(w io.Writer) error {
	s.flushMetrics()
	return obs.WritePrometheus(w, s.Snapshot())
}

// WriteChromeTrace renders the recorded scheduling spans and utilization
// timeline as Chrome trace_event JSON, loadable in chrome://tracing and
// Perfetto. Requires WithMetrics; call while the machine is paused.
func (s *System) WriteChromeTrace(w io.Writer) error {
	if s.Metrics == nil {
		return errors.New("dorado: WriteChromeTrace needs WithMetrics")
	}
	s.flushMetrics()
	return obs.WriteChromeTrace(w, s.Metrics)
}

// ServeDebug starts an HTTP server exposing /metrics (Prometheus),
// /debug/vars (expvar) and /debug/pprof on addr (use "127.0.0.1:0" for an
// ephemeral port; the chosen address is Addr() on the returned server).
// The /metrics snapshot is the one current at each call to
// (*obs.DebugServer).SetSnapshot; cmd tools refresh it between run slices.
func ServeDebug(addr string, snapshot func() *MetricsSnapshot) (*obs.DebugServer, error) {
	return obs.ServeDebug(addr, snapshot)
}

func (s *System) flushMetrics() {
	if s.Metrics != nil {
		s.Metrics.Flush(s.Machine.Cycle())
	}
}
