package dorado

import (
	"errors"
	"io"

	"dorado/internal/core"
	"dorado/internal/obs/prof"
)

// Microarchitectural profiler re-exports. Attach a Profiler with
// WithProfiler; it charges every cycle to the microaddress occupying the
// processor and records how each superblock execution ends (the abort
// accounting behind the translated-path speedups). Profiler-off systems pay
// one nil check per cycle; see internal/obs/prof for the model and export
// formats.
type (
	// Profiler is the exact-counter attribution state (internal/core).
	Profiler = core.Profiler
	// Profile is the portable symbolized profile document
	// (internal/obs/prof): JSON-marshalable, Merge/Diff-able, exportable
	// as pprof, Prometheus families, or Chrome-trace spans.
	Profile = prof.Profile
	// ExitReason classifies how a superblock execution ended.
	ExitReason = core.ExitReason
)

// NewProfiler builds an empty profiler for WithProfiler.
func NewProfiler() *Profiler { return core.NewProfiler() }

// NumExitReasons sizes per-reason counter arrays (ExitReason values are
// 0..NumExitReasons-1).
const NumExitReasons = core.NumExitReasons

// ErrNoProfiler reports a profile request on a System built without
// WithProfiler.
var ErrNoProfiler = errors.New("dorado: no profiler attached (use WithProfiler)")

// WithProfiler attaches a microarchitectural profiler; pass NewProfiler().
// Read results with System.Profile / WriteProfilePprof while the machine is
// paused.
func WithProfiler(p *Profiler) Option {
	return func(s *settings) { s.prof = p }
}

// Profile builds the symbolized profile from the attached profiler, naming
// microaddresses by the installed emulator's masm symbols (bare "page.word"
// addresses on a System without one). Call while the machine is paused.
func (s *System) Profile() (*Profile, error) {
	if s.Profiler == nil {
		return nil, ErrNoProfiler
	}
	var symbols *prof.SymbolTable
	if s.Emulator != nil && s.Emulator.Micro != nil {
		symbols = prof.NewSymbolTable(s.Emulator.Micro.Symbols)
	}
	return prof.Build(s.Profiler.Snapshot(), symbols), nil
}

// WriteProfilePprof writes the current profile as gzipped pprof protobuf —
// the format `go tool pprof` opens directly.
func (s *System) WriteProfilePprof(w io.Writer) error {
	p, err := s.Profile()
	if err != nil {
		return err
	}
	return prof.WritePprof(w, p)
}

// WriteProfileChromeTrace renders the profiler's recent superblock spans as
// Chrome trace_event JSON (chrome://tracing, Perfetto).
func (s *System) WriteProfileChromeTrace(w io.Writer) error {
	p, err := s.Profile()
	if err != nil {
		return err
	}
	return prof.WriteChromeTrace(w, p)
}
