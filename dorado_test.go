package dorado

import "testing"

func TestQuickstartMesa(t *testing.T) {
	sys, err := NewSystem(Mesa)
	if err != nil {
		t.Fatal(err)
	}
	asm := sys.Asm()
	asm.OpB("LIB", 2).OpB("LIB", 40).Op("ADD").Op("HALT")
	if err := sys.Boot(asm); err != nil {
		t.Fatal(err)
	}
	if !sys.Run(10_000) {
		t.Fatal("did not halt")
	}
	st := sys.Stack()
	if len(st) != 1 || st[0] != 42 {
		t.Fatalf("stack = %v, want [42]", st)
	}
}

func TestBCPLAccumulator(t *testing.T) {
	sys, err := NewSystem(BCPL)
	if err != nil {
		t.Fatal(err)
	}
	asm := sys.Asm()
	asm.OpB("LDK", 40).OpB("ADDK", 2).Op("HALT")
	if err := sys.Boot(asm); err != nil {
		t.Fatal(err)
	}
	if !sys.Run(10_000) {
		t.Fatal("did not halt")
	}
	if sys.Acc() != 42 {
		t.Fatalf("ACC = %d", sys.Acc())
	}
}

func TestAllLanguagesBuild(t *testing.T) {
	for _, l := range []Language{Mesa, BCPL, Lisp, Smalltalk} {
		if _, err := NewSystem(l); err != nil {
			t.Errorf("%v: %v", l, err)
		}
	}
	if _, err := NewSystem(Language(99)); err == nil {
		t.Error("unknown language should fail")
	}
}

func TestMicrocodeLevel(t *testing.T) {
	// The low-level path: hand-assembled microcode on a bare machine.
	b := NewBuilder()
	b.Label("start")
	// (Uses masm types via the builder directly — see internal packages
	// for the full instruction vocabulary.)
	b.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.Load(&p.Words)
	m.Start(p.MustEntry("start"))
	if !m.Run(100) {
		t.Fatal("did not halt")
	}
}

func TestExperimentListComplete(t *testing.T) {
	exps := Experiments()
	if len(exps) != 14 {
		t.Fatalf("%d experiments, want 14", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Errorf("duplicate experiment %s", e.ID)
		}
		seen[e.ID] = true
	}
}
