package dorado

import "errors"

// Sentinel errors returned by the facade. Match them with errors.Is; the
// install paths additionally surface *emulator.InstallError for errors.As.
var (
	// ErrUnknownLanguage reports a Language value the facade does not know.
	ErrUnknownLanguage = errors.New("dorado: unknown language")
	// ErrNoCompiler reports a BootSource call for a language without a
	// source compiler (BCPL programs assemble via Asm).
	ErrNoCompiler = errors.New("dorado: no compiler for language")
)
