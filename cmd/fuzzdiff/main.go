// Command fuzzdiff drives the snapshot-anchored differential fuzzer: each
// seed generates a random-but-valid microprogram, runs it on both the
// predecoded and the reference interpreter with a checkpoint every K
// cycles, and bisects any divergence down to the single microinstruction
// that exposed it, printing a ready-to-paste regression test.
//
// Usage:
//
//	fuzzdiff [-start N] [-seeds N] [-cycles N] [-k N] [-insts N] [-translated] [-fastio]
//
// With -translated the fast side runs the superblock translator instead of
// the plain predecoded loop, hunting translator bugs with the same oracle;
// -fastio attaches the display/scanner fast-I/O pair to both machines. For
// sharded multi-profile campaigns use cmd/fuzzfarm instead.
// Exit status 1 if any seed diverged.
package main

import (
	"flag"
	"fmt"
	"os"

	"dorado/internal/fuzzdiff"
	"dorado/internal/obs"
)

func main() {
	start := flag.Int64("start", 1, "first seed")
	seeds := flag.Int64("seeds", 32, "number of seeds to run")
	cycles := flag.Uint64("cycles", 20000, "simulated cycles per seed")
	k := flag.Uint64("k", 512, "checkpoint interval in cycles")
	insts := flag.Int("insts", 24, "generated instructions per program")
	translated := flag.Bool("translated", false, "fast side uses superblock translation instead of the predecoded loop")
	fastio := flag.Bool("fastio", false, "attach the fast-I/O display/scanner pair to both machines")
	httpAddr := flag.String("http", "", "serve /debug/pprof and /debug/vars on this address while fuzzing")
	flag.Parse()
	if *httpAddr != "" {
		srv, err := obs.ServeDebug(*httpAddr, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fuzzdiff: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "fuzzdiff: debug server on http://%s\n", srv.Addr())
	}

	failed := 0
	for seed := *start; seed < *start+*seeds; seed++ {
		d, err := fuzzdiff.Run(fuzzdiff.Config{
			Seed:            seed,
			Instructions:    *insts,
			Cycles:          *cycles,
			CheckpointEvery: *k,
			Translated:      *translated,
			FastIO:          *fastio,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "fuzzdiff: seed %d: %v\n", seed, err)
			failed++
			continue
		}
		if d != nil {
			failed++
			fmt.Printf("DIVERGENCE %v\n\n%s\n", d, d.Repro)
			continue
		}
		fmt.Printf("seed %d: ok (%d cycles)\n", seed, *cycles)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "fuzzdiff: %d of %d seeds failed\n", failed, *seeds)
		os.Exit(1)
	}
}
