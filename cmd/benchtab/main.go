// Benchtab regenerates the paper's evaluation: it runs every experiment in
// DESIGN.md's index (E1–E14) and prints a paper-vs-measured table for each,
// with a shape verdict. This is the program whose output EXPERIMENTS.md
// records.
//
// Usage:
//
//	benchtab            run everything
//	benchtab E3 E7      run selected experiments
package main

import (
	"fmt"
	"os"

	"dorado/internal/bench"
)

func main() {
	want := map[string]bool{}
	for _, a := range os.Args[1:] {
		want[a] = true
	}
	failures := 0
	for _, e := range bench.Experiments() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		tab := e.Run()
		fmt.Println(tab)
		if tab.Err != nil || !tab.Pass {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchtab: %d experiment(s) did not match the paper's shape\n", failures)
		os.Exit(1)
	}
}
