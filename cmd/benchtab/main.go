// Benchtab regenerates the paper's evaluation: it runs every experiment in
// DESIGN.md's index (E1–E14) and prints a paper-vs-measured table for each,
// with a shape verdict. This is the program whose output EXPERIMENTS.md
// records.
//
// Usage:
//
//	benchtab            run everything
//	benchtab E3 E7      run selected experiments
//	benchtab -host BENCH_SIM.json
//	                    also render the host-throughput report as a
//	                    workload × execution-path table (predecoded,
//	                    reference, instrumented, translated, profiled)
//	benchtab -profile profiles.json
//	                    also render a simbench -profile artifact as a
//	                    workload × abort-reason table (why each workload's
//	                    superblocks exit: fallthrough, IFU dispatch, task
//	                    switch, hold, ...)
//	benchtab -json      emit the tables as JSON instead of text
//	benchtab -json -o tables.json
//	                    write the JSON to a file (atomically: a killed run
//	                    never leaves a truncated document)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dorado/internal/bench"
	"dorado/internal/obs"
	"dorado/internal/obs/prof"
)

func main() {
	asJSON := flag.Bool("json", false, "emit experiment tables as JSON")
	out := flag.String("o", "", "with -json: write to this file instead of stdout")
	httpAddr := flag.String("http", "", "serve /debug/pprof and /debug/vars on this address while experiments run")
	host := flag.String("host", "", "also render this simbench report (e.g. BENCH_SIM.json) as a workload × path table")
	profile := flag.String("profile", "", "also render this simbench -profile artifact as a workload × abort-reason table")
	flag.Parse()
	if *host != "" {
		rep, err := bench.ReadHostReportFile(*host)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(rep.HostTable())
	}
	if *profile != "" {
		data, err := os.ReadFile(*profile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		var rep prof.BenchReport
		if err := json.Unmarshal(data, &rep); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", *profile, err)
			os.Exit(1)
		}
		fmt.Println(prof.AbortTable(&rep))
	}
	if *httpAddr != "" {
		srv, err := obs.ServeDebug(*httpAddr, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "benchtab: debug server on http://%s\n", srv.Addr())
	}
	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[a] = true
	}
	failures := 0
	var tables []bench.TableJSON
	for _, e := range bench.Experiments() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		tab := e.Run()
		if *asJSON {
			tables = append(tables, tab.JSON())
		} else {
			fmt.Println(tab)
		}
		if tab.Err != nil || !tab.Pass {
			failures++
		}
	}
	if *asJSON {
		var err error
		if *out != "" {
			err = bench.WriteJSONFile(*out, tables)
		} else {
			err = bench.WriteJSON(os.Stdout, tables)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchtab: %d experiment(s) did not match the paper's shape\n", failures)
		os.Exit(1)
	}
}
