// Profview renders microarchitectural profiles offline: the top-N hottest
// microaddresses by cycle count (symbolized with masm labels), the
// superblock abort-reason breakdown, and the hottest superblocks with
// their dominant exits.
//
// It reads any of the three JSON shapes the toolchain produces:
//
//   - a simbench -profile artifact (prof.BenchReport) — one report per
//     workload;
//   - a session profile fetched from a fleet daemon with
//     GET /v1/sessions/{id}/profile?format=json;
//   - a merged fleet profile from GET /v1/profile?format=json.
//
// The shape is sniffed from the document, so one command covers the bench
// artifact and both endpoint payloads. For interactive drill-down fetch
// the endpoint without ?format=json and open it with `go tool pprof`
// instead — the server's default encoding is standard gzipped pprof.
//
// Usage:
//
//	profview profiles.json             report every workload/profile
//	profview -n 20 profiles.json       deeper top-N tables
//	profview -workload emulator p.json one workload from a bench artifact
//	profview session.json              a saved ?format=json endpoint payload
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dorado/internal/obs/prof"
)

// document is the union of the three accepted shapes; sniffing checks the
// populated fields rather than trusting a type tag.
type document struct {
	// prof.BenchReport
	Cycles    uint64                 `json:"cycles"`
	Workloads []prof.WorkloadProfile `json:"workloads"`
	// fleet session / merged payloads
	ID       string        `json:"id"`
	Sessions []string      `json:"sessions"`
	Profile  *prof.Profile `json:"profile"`
}

func main() {
	n := flag.Int("n", 10, "rows in the top-address and hottest-block tables")
	workload := flag.String("workload", "", "report only this workload of a bench artifact")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: profview [-n rows] [-workload id] profile.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "profview: %v\n", err)
		os.Exit(1)
	}
	var doc document
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "profview: %s: %v\n", flag.Arg(0), err)
		os.Exit(1)
	}

	switch {
	case len(doc.Workloads) > 0:
		matched := false
		for _, w := range doc.Workloads {
			if *workload != "" && w.ID != *workload {
				continue
			}
			matched = true
			fmt.Printf("=== %s — %s (%d cycles)\n\n", w.ID, w.Name, doc.Cycles)
			report(w.Profile, *n)
		}
		if !matched {
			fmt.Fprintf(os.Stderr, "profview: no workload %q in %s\n", *workload, flag.Arg(0))
			os.Exit(1)
		}
	case doc.Profile != nil:
		switch {
		case doc.ID != "":
			fmt.Printf("=== session %s\n\n", doc.ID)
		case len(doc.Sessions) > 0:
			fmt.Printf("=== fleet merge of %d sessions %v\n\n", len(doc.Sessions), doc.Sessions)
		}
		report(doc.Profile, *n)
	default:
		fmt.Fprintf(os.Stderr, "profview: %s: not a bench profile artifact or a profile endpoint payload\n", flag.Arg(0))
		os.Exit(1)
	}
}

func report(p *prof.Profile, n int) {
	if err := prof.WriteReport(os.Stdout, p, n); err != nil {
		fmt.Fprintf(os.Stderr, "profview: %v\n", err)
		os.Exit(1)
	}
	fmt.Println()
}
