// Dorado boots the simulated machine the way a user saw it: a language
// emulator on task 0 with the disk and display controllers live on their
// tasks, runs a demo byte-code program, and reports what the machine did —
// per-task processor shares, I/O bandwidths, memory behavior.
//
// Usage:
//
//	dorado [flags]
//
//	-lang mesa|bcpl|lisp|smalltalk   emulator to boot (default mesa)
//	-demo sum|fib|calls              byte-code demo program (default sum)
//	-source FILE                     compile and run a source file instead
//	                                 of a demo (Mesa, Lisp, or Smalltalk
//	                                 syntax per -lang)
//	-devices                         attach the disk and display controllers
//	-cycles N                        cycle limit (default 2000000)
//	-stats                           print full machine statistics
//	-save FILE                       write a machine snapshot after the run
//	-restore FILE                    restore a snapshot before running
//	                                 (boot flags must match the saving run:
//	                                 the snapshot carries the whole machine
//	                                 state but not its configuration or
//	                                 device complement)
//	-metrics-out FILE                write a Prometheus text snapshot of the
//	                                 run's counters and histograms
//	-chrometrace FILE                write the scheduling timeline as Chrome
//	                                 trace_event JSON (chrome://tracing,
//	                                 Perfetto)
//	-http ADDR                       serve /metrics, /debug/vars and
//	                                 /debug/pprof while running (the run is
//	                                 sliced so the snapshot stays fresh)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"dorado"
	"dorado/internal/core"
	"dorado/internal/masm"
	"dorado/internal/microcode"
	"dorado/internal/trace"
)

func main() {
	lang := flag.String("lang", "mesa", "emulator: mesa|bcpl|lisp|smalltalk")
	demo := flag.String("demo", "sum", "demo program: sum|fib|calls")
	source := flag.String("source", "", "compile and run this source file (Mesa/Lisp)")
	devices := flag.Bool("devices", false, "attach disk and display controllers")
	cycles := flag.Uint64("cycles", 2_000_000, "cycle limit")
	stats := flag.Bool("stats", false, "print full machine statistics")
	saveFile := flag.String("save", "", "write a machine snapshot to this file after the run")
	restoreFile := flag.String("restore", "", "restore a machine snapshot from this file before running")
	metricsOut := flag.String("metrics-out", "", "write a Prometheus text snapshot to this file after the run")
	chromeTrace := flag.String("chrometrace", "", "write a Chrome trace_event JSON timeline to this file after the run")
	httpAddr := flag.String("http", "", "serve /metrics and /debug/pprof on this address while running")
	flag.Parse()

	language, ok := map[string]dorado.Language{
		"mesa": dorado.Mesa, "bcpl": dorado.BCPL,
		"lisp": dorado.Lisp, "smalltalk": dorado.Smalltalk,
	}[*lang]
	if !ok {
		fatal(fmt.Errorf("unknown language %q", *lang))
	}
	opts := []dorado.Option{dorado.WithLanguage(language)}
	observed := *metricsOut != "" || *chromeTrace != "" || *httpAddr != ""
	if observed {
		opts = append(opts, dorado.WithMetrics(dorado.NewMetrics()))
	}
	sys, err := dorado.New(opts...)
	if err != nil {
		fatal(err)
	}
	var expected []uint16
	if *source != "" {
		text, err := os.ReadFile(*source)
		if err != nil {
			fatal(err)
		}
		if err := sys.BootSource(string(text)); err != nil {
			fatal(err)
		}
		expected = nil
	} else {
		asm := sys.Asm()
		exp, setup, err := writeDemo(language, *demo, asm)
		if err != nil {
			fatal(err)
		}
		expected = exp
		if err := sys.Boot(asm); err != nil {
			fatal(err)
		}
		if setup != nil {
			setup(sys)
		}
	}

	var disk, display interface{ Task() int }
	if *devices {
		d := dorado.NewDisk(11)
		if err := sys.Machine.Attach(d); err != nil {
			fatal(err)
		}
		disp := dorado.NewDisplay(13, sys.Machine, 32) // a quarter of full bandwidth
		disp.SetBase(0x20000)
		if err := sys.Machine.Attach(disp); err != nil {
			fatal(err)
		}
		if err := installDeviceMicrocode(sys); err != nil {
			fatal(err)
		}
		disk, display = d, disp
	}

	what := fmt.Sprintf("demo %q", *demo)
	if *source != "" {
		what = *source
	}
	if *restoreFile != "" {
		snap, err := os.ReadFile(*restoreFile)
		if err != nil {
			fatal(err)
		}
		if err := sys.Machine.Restore(snap); err != nil {
			fatal(fmt.Errorf("restore %s: %w (boot flags must match the run that saved it)", *restoreFile, err))
		}
		what = fmt.Sprintf("%s, resumed from %s at cycle %d", what, *restoreFile, sys.Machine.Cycle())
	}
	fmt.Printf("Dorado: %v emulator, %s\n", language, what)
	var halted bool
	if *httpAddr == "" {
		halted = sys.Run(*cycles)
	} else {
		// Slice the run so the served snapshot tracks the simulation; the
		// machine only advances between publishes, so each snapshot is a
		// consistent paused view.
		var mu sync.Mutex
		var snap *dorado.MetricsSnapshot
		publish := func() {
			s := sys.Snapshot()
			mu.Lock()
			snap = s
			mu.Unlock()
		}
		publish()
		srv, err := dorado.ServeDebug(*httpAddr, func() *dorado.MetricsSnapshot {
			mu.Lock()
			defer mu.Unlock()
			return snap
		})
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("serving /metrics, /debug/vars, /debug/pprof on http://%s\n", srv.Addr())
		const slice = 1 << 16
		for done := uint64(0); done < *cycles && !halted; done += slice {
			n := uint64(slice)
			if rest := *cycles - done; rest < n {
				n = rest
			}
			halted = sys.Run(n)
			publish()
		}
	}
	st := sys.Machine.Stats()
	if halted {
		fmt.Printf("halted after %d cycles (%.3f ms at 60 ns)\n",
			st.Cycles, float64(st.Cycles)*core.CycleNS*1e-6)
	} else {
		fmt.Printf("cycle limit reached (%d)\n", *cycles)
	}
	var result []uint16
	switch language {
	case dorado.BCPL:
		result = []uint16{sys.Acc()}
	case dorado.Lisp:
		for _, item := range sys.LispStack() {
			result = append(result, item[1])
		}
	default:
		result = sys.Stack()
	}
	if expected != nil {
		fmt.Printf("result: %v (expected %v)\n", result, expected)
	} else {
		fmt.Printf("result: %v\n", result)
	}
	if *devices {
		fmt.Printf("disk task %d:    %s of the processor\n", disk.Task(),
			fmt.Sprintf("%.1f%%", 100*st.Utilization(disk.Task())))
		fmt.Printf("display task %d: %s of the processor\n", display.Task(),
			fmt.Sprintf("%.1f%%", 100*st.Utilization(display.Task())))
	}
	if *stats {
		fmt.Print(trace.FormatStats(st))
		ms := sys.Machine.Mem().Stats()
		fmt.Printf("memory: %d reads, %d writes, %d hits, %d misses, %d fast blocks\n",
			ms.Reads, ms.Writes, ms.Hits, ms.Misses, ms.FastReads+ms.FastWrites)
	}
	if *saveFile != "" {
		if err := writeFileAtomic(*saveFile, sys.Machine.Snapshot()); err != nil {
			fatal(err)
		}
		fmt.Printf("saved snapshot to %s (cycle %d)\n", *saveFile, sys.Machine.Cycle())
	}
	if *metricsOut != "" {
		if err := writeExport(*metricsOut, sys.WritePrometheus); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote Prometheus metrics to %s\n", *metricsOut)
	}
	if *chromeTrace != "" {
		if err := writeExport(*chromeTrace, sys.WriteChromeTrace); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote Chrome trace to %s (open in Perfetto or chrome://tracing)\n", *chromeTrace)
	}
}

// writeExport streams one exporter into a freshly created file.
func writeExport(path string, render func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeFileAtomic writes data via a temporary file and rename, so an
// interrupted save never leaves a truncated snapshot behind.
func writeFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}

// writeDemo emits the selected demo for the selected language and returns
// the expected result.
func writeDemo(lang dorado.Language, demo string, a *dorado.Asm) ([]uint16, func(*dorado.System), error) {
	switch lang {
	case dorado.Mesa:
		switch demo {
		case "sum": // sum 1..100
			a.OpB("LIB", 100).OpB("SL", 4)
			a.OpB("LIB", 0).OpB("SL", 5)
			a.Label("loop")
			a.OpB("LL", 5).OpB("LL", 4).Op("ADD").OpB("SL", 5)
			a.OpB("LL", 4).OpW("LIW", 1).Op("SUB").OpB("SL", 4)
			a.OpB("LL", 4).OpL("JNZ", "loop")
			a.OpB("LL", 5).Op("HALT")
			return []uint16{5050}, nil, nil
		case "fib": // iterative fib(20)
			a.OpB("LIB", 0).OpB("SL", 4)  // a
			a.OpB("LIB", 1).OpB("SL", 5)  // b
			a.OpB("LIB", 20).OpB("SL", 6) // n
			a.Label("loop")
			a.OpB("LL", 4).OpB("LL", 5).Op("ADD") // a+b
			a.OpB("LL", 5).OpB("SL", 4)           // a = b
			a.OpB("SL", 5)                        // b = a+b
			a.OpB("LL", 6).OpW("LIW", 1).Op("SUB").OpB("SL", 6)
			a.OpB("LL", 6).OpL("JNZ", "loop")
			a.OpB("LL", 4).Op("HALT")
			return []uint16{6765}, nil, nil
		case "calls": // f(f(f(6))) with f(x) = x*2+1
			a.OpB("LIB", 6)
			a.OpW("CALL", 100).OpW("CALL", 100).OpW("CALL", 100)
			a.Op("HALT")
			a.Label("f")
			a.OpB("LL", 2).OpB("LL", 2).Op("ADD").Op("INC")
			a.Op("RET")
			pc, err := a.LabelPC("f")
			if err != nil {
				return nil, nil, err
			}
			return []uint16{55}, func(s *dorado.System) { s.DefineFunc(100, pc, 1) }, nil
		}
	case dorado.BCPL:
		if demo != "sum" {
			return nil, nil, fmt.Errorf("bcpl supports -demo sum")
		}
		a.OpB("LDK", 1).OpB("STL", 3)
		a.OpB("LDK", 100).OpB("STL", 2)
		a.OpB("LDK", 0).OpB("STG", 0)
		a.Label("loop")
		a.OpB("LDG", 0).OpB("ADDL", 2).OpB("STG", 0)
		a.OpB("LDL", 2).OpB("SUBL", 3).OpB("STL", 2)
		a.OpL("JNZ", "loop")
		a.OpB("LDG", 0).Op("HALT")
		return []uint16{5050}, nil, nil
	case dorado.Lisp:
		if demo != "sum" {
			return nil, nil, fmt.Errorf("lisp supports -demo sum")
		}
		// (setq acc (+ acc n)) loop over fixnums, result on the memory stack.
		a.OpW("PUSHK", 0) // acc stays on the stack
		for n := 1; n <= 100; n++ {
			a.OpW("PUSHK", uint16(n)).Op("ADDF")
		}
		a.Op("HALT")
		return []uint16{5050}, func(s *dorado.System) {}, nil
	case dorado.Smalltalk:
		if demo != "sum" {
			return nil, nil, fmt.Errorf("smalltalk supports -demo sum")
		}
		a.OpW("PUSHK", 0)
		for n := 1; n <= 100; n++ {
			a.OpW("PUSHK", uint16(n)).Op("ADDI")
		}
		a.Op("HALT")
		return []uint16{5050<<1 | 1}, nil, nil
	}
	return nil, nil, fmt.Errorf("language %v has no demo %q", lang, demo)
}

// installDeviceMicrocode assembles the disk and display service routines,
// splices them into free pages of the emulator's microstore image, and
// points the device tasks at them.
func installDeviceMicrocode(sys *dorado.System) error {
	m := sys.Machine
	b := masm.NewBuilder()
	b.EmitAt("dev.disk", masm.I{FF: microcode.FFInput, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	b.Emit(masm.I{A: microcode.ASelStore, R: 14, B: microcode.BSelT,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM})
	b.Emit(masm.I{A: microcode.ASelStore, R: 14, FF: microcode.FFInput,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM, Block: true, Flow: masm.Goto("dev.disk")})
	b.EmitAt("dev.disp", masm.I{A: microcode.ASelT, B: microcode.BSelRM, R: 15,
		ALU: microcode.ALUAplusB, LC: microcode.LCLoadRM, FF: microcode.FFOutput})
	b.Emit(masm.I{Block: true, Flow: masm.Goto("dev.disp")})
	p, err := b.Assemble()
	if err != nil {
		return err
	}
	combined, err := masm.Splice(sys.Emulator.Micro, p)
	if err != nil {
		return err
	}
	m.Load(&combined.Words)
	m.SetIOAddress(11, 11)
	m.SetIOAddress(13, 13)
	m.SetTPC(11, combined.MustEntry("dev.disk"))
	m.SetTPC(13, combined.MustEntry("dev.disp"))
	m.SetRM(14, 0x7800) // disk buffer
	m.SetT(13, 16)      // display block stride
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dorado:", err)
	os.Exit(1)
}
