// Command doclint is the repository's documentation gate: it fails when a
// package lacks a package comment or an exported identifier lacks a doc
// comment, so the API reference implied by the source never rots silently.
//
// Usage:
//
//	go run ./cmd/doclint ./...
//
// Each argument is a directory to check; a trailing "/..." recurses. With
// no arguments it checks "./...". The exit status is non-zero when any
// violation is found, which is how CI wires it in as a gate.
//
// Rules (deliberately those of "go vet"-era review practice, not godoc
// completeness for its own sake):
//
//   - every package must carry a package comment on at least one file;
//   - every exported type, function, and method on an exported type must
//     have a doc comment;
//   - every exported package-level var and const must be documented on
//     either the declaration group, the individual spec, or a trailing
//     line comment;
//   - _test.go files are exempt (test helpers are not API), as are
//     struct fields and interface methods (documented at the type's
//     discretion), and main packages' exported symbols (nothing can
//     import them) — though main packages still need package comments.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var dirs []string
	for _, arg := range args {
		d, err := expand(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		dirs = append(dirs, d...)
	}
	sort.Strings(dirs)

	var total int
	for _, dir := range dirs {
		for _, v := range checkDir(dir) {
			fmt.Println(v)
			total++
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented exported symbol(s)\n", total)
		os.Exit(1)
	}
}

// expand resolves one command-line argument into the list of directories
// that contain Go files, recursing when the argument ends in "/...".
func expand(arg string) ([]string, error) {
	root, recurse := strings.CutSuffix(arg, "/...")
	if root == "" {
		root = "."
	}
	if !recurse {
		return []string{filepath.Clean(root)}, nil
	}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, filepath.Clean(path))
		}
		return nil
	})
	return dirs, err
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// checkDir parses every non-test Go file in dir and returns the formatted
// violations, in file/line order.
func checkDir(dir string) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", dir, err)}
	}
	var out []string
	for _, pkg := range pkgs {
		out = append(out, checkPackage(fset, pkg)...)
	}
	sort.Strings(out)
	return out
}

func checkPackage(fset *token.FileSet, pkg *ast.Package) []string {
	var out []string
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, fmt.Sprintf("%s: %s", fset.Position(pos), fmt.Sprintf(format, args...)))
	}

	var documented bool
	var firstFile *ast.File
	for _, name := range sortedKeys(pkg.Files) {
		f := pkg.Files[name]
		if firstFile == nil {
			firstFile = f
		}
		if f.Doc != nil {
			documented = true
		}
	}
	if !documented && firstFile != nil {
		report(firstFile.Package, "package %s has no package comment", pkg.Name)
	}

	// Exported symbols in a main package have no importers; only the
	// package comment above is required there.
	if pkg.Name == "main" {
		return out
	}

	for _, name := range sortedKeys(pkg.Files) {
		f := pkg.Files[name]
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || d.Doc != nil {
					continue
				}
				if recv := receiverName(d); recv != "" {
					if !ast.IsExported(recv) {
						continue // method on an unexported type
					}
					report(d.Pos(), "exported method %s.%s is undocumented", recv, d.Name.Name)
				} else {
					report(d.Pos(), "exported function %s is undocumented", d.Name.Name)
				}
			case *ast.GenDecl:
				checkGenDecl(report, d)
			}
		}
	}
	return out
}

// checkGenDecl flags undocumented exported names in a type, var, or const
// declaration. A group comment covers every spec in the group; a spec doc
// or trailing line comment covers that spec alone.
func checkGenDecl(report func(token.Pos, string, ...any), d *ast.GenDecl) {
	if d.Tok != token.TYPE && d.Tok != token.VAR && d.Tok != token.CONST {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "exported type %s is undocumented", s.Name.Name)
			}
		case *ast.ValueSpec:
			if d.Doc != nil || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					report(n.Pos(), "exported %s %s is undocumented", d.Tok, n.Name)
				}
			}
		}
	}
}

// receiverName returns the base type name of a method receiver, or "" for
// a plain function.
func receiverName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

func sortedKeys(m map[string]*ast.File) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
