// Simbench measures host performance: how many simulated Dorado cycles per
// second the simulator sustains on the machine running it, across the §7
// workload families (emulator mix, disk, fast I/O, BitBlt). Each workload
// runs five times — on the predecoded hot loop, on the reference
// interpreter (per-cycle decode, the pre-optimization baseline), on the
// hot loop with an observability recorder attached, on the superblock
// translator (hot microcode traces fused into Go closures), and on the hot
// loop with a microarchitectural profiler attached — and the report
// records all five plus the predecode speedup, the metrics-on overhead,
// the translated speedup, and the profiler-on overhead.
//
// With -profile PATH the profiler additionally runs over every workload on
// the translated path and the per-workload symbolized profiles (cycle
// attribution plus the superblock abort-reason breakdown) are written as a
// JSON artifact for cmd/profview and benchtab -profile.
//
// With -path only the named path is measured (e.g. -path=translated for a
// quick look at the translator alone); ratios need paired measurements, so
// single-path runs print raw throughput only and write no report.
//
// With -guard the report is additionally checked against the committed
// BENCH_SIM.json baseline (cmd/benchguard's thresholds), re-measuring on
// failure up to -attempts times. The guard MUST run inside simbench
// rather than a separate binary: function placement differs between
// binaries, which alone shifts the hot loop's predecode ratio by more
// than the 3% budget — baseline and current must come from the same
// executable to be comparable. cmd/benchguard compares two report files
// after the fact.
//
// Usage:
//
// With -fleet the report additionally measures fleet scaling: aggregate
// cycles/sec with 1→N sessions simulated concurrently on the
// internal/fleet worker pool (GOMAXPROCS workers), the multi-tenant
// throughput cmd/doradod serves. Each session count is measured twice —
// plain, and with every session carrying an observability recorder
// (Spec.Metrics) — and the instrumented rate lands in the point's
// metrics_cycles_per_sec, which the guard's fleet-metrics-on budget
// bounds. Points also record GOMAXPROCS, and simbench warns when it is
// smaller than the session count (such a point measures queueing, not
// scaling). Without -fleet, an existing fleet section in the baseline
// file is carried over unchanged, so single-machine guard runs do not
// erase the recorded scaling curve.
//
//	simbench                         print the report, write BENCH_SIM.json
//	simbench -cycles 5000000         longer runs (steadier numbers)
//	simbench -o path.json            write elsewhere ("" skips the file)
//	simbench -path translated        measure one path only, report to stdout
//	simbench -guard -o current.json  CI mode: measure, then enforce thresholds
//	simbench -fleet                  also measure 1→8-session fleet scaling
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"dorado/internal/bench"
	"dorado/internal/fleet"
)

func main() {
	cycles := flag.Uint64("cycles", 2_000_000, "simulated cycles per (workload, path) measurement")
	reps := flag.Int("reps", 3, "measurements per (workload, path); the fastest is kept")
	out := flag.String("o", "BENCH_SIM.json", "output JSON path (empty: stdout report only)")
	guard := flag.Bool("guard", false, "check the report against -baseline and exit nonzero on regression")
	baselinePath := flag.String("baseline", "BENCH_SIM.json", "committed baseline report for -guard")
	attempts := flag.Int("attempts", 3, "with -guard: full re-measurements before a failure is final")
	off := flag.Float64("off", bench.DefaultGuardThresholds.MetricsOff, "with -guard: metrics-off allowed fractional regression")
	on := flag.Float64("on", bench.DefaultGuardThresholds.MetricsOn, "with -guard: metrics-on allowed fractional overhead")
	fleetOn := flag.Float64("fleet-on", bench.DefaultGuardThresholds.FleetMetricsOn, "with -guard: instrumented-fleet allowed fractional overhead")
	transMin := flag.Float64("translated-min", bench.DefaultGuardThresholds.TranslatedMin, "with -guard: required translated-over-predecoded speedup")
	transN := flag.Int("translated-workloads", bench.DefaultGuardThresholds.TranslatedWorkloads, "with -guard: workloads that must reach -translated-min")
	profOff := flag.Float64("prof-off", bench.DefaultGuardThresholds.ProfOff, "with -guard: profiler-off allowed fractional regression")
	profOn := flag.Float64("prof-on", bench.DefaultGuardThresholds.ProfOn, "with -guard: profiler-on allowed fractional overhead")
	profOut := flag.String("profile", "", "also run the microarchitectural profiler over every workload and write the per-workload profiles (prof.BenchReport JSON) here; view with cmd/profview")
	onePath := flag.String("path", "", "measure only this path (predecoded, reference, instrumented, translated, profiled); no ratios, no report file")
	doFleet := flag.Bool("fleet", false, "also measure fleet scaling (aggregate cycles/sec, 1→N sessions)")
	fleetMax := flag.Int("fleet-sessions", 8, "with -fleet: largest session count (doubling from 1)")
	fleetCycles := flag.Uint64("fleet-cycles", 250_000, "with -fleet: cycles per run operation")
	fleetOps := flag.Int("fleet-ops", 8, "with -fleet: run operations per session")
	flag.Parse()

	// In guard mode the default output would overwrite the baseline being
	// guarded against; only write where -o was given explicitly.
	outSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "o" {
			outSet = true
		}
	})
	if *guard && !outSet {
		*out = ""
	}

	if *onePath != "" {
		if *guard {
			fmt.Fprintln(os.Stderr, "simbench: -path measures one side of every ratio; it cannot be combined with -guard")
			os.Exit(1)
		}
		switch *onePath {
		case bench.PathPredecoded, bench.PathReference, bench.PathInstrumented, bench.PathTranslated, bench.PathProfiled:
		default:
			fmt.Fprintf(os.Stderr, "simbench: unknown path %q\n", *onePath)
			os.Exit(1)
		}
		fmt.Printf("%-10s %-12s %14s %10s %12s\n", "workload", "path", "cycles/sec", "ns/cycle", "allocs/cycle")
		for _, w := range bench.HostWorkloads() {
			var best bench.HostResult
			for i := 0; i < *reps; i++ {
				r, err := bench.MeasureHost(w, *onePath, *cycles)
				if err != nil {
					fmt.Fprintf(os.Stderr, "simbench: %s: %v\n", w.ID, err)
					os.Exit(1)
				}
				if r.CyclesPerSec > best.CyclesPerSec {
					best = r
				}
			}
			fmt.Printf("%-10s %-12s %14.0f %10.1f %12.4f\n",
				best.Workload, best.Path, best.CyclesPerSec, best.NsPerCycle, best.AllocsPerCycle)
		}
		return
	}

	var baseline *bench.HostReport
	th := bench.GuardThresholds{
		MetricsOff: *off, MetricsOn: *on, FleetMetricsOn: *fleetOn,
		TranslatedMin: *transMin, TranslatedWorkloads: *transN,
		ProfOff: *profOff, ProfOn: *profOn,
	}
	if *guard {
		var err error
		baseline, err = bench.ReadHostReportFile(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: baseline: %v\n", err)
			os.Exit(1)
		}
	}

	if *profOut != "" {
		prep, err := bench.RunProfileReport(*cycles)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: profile: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteJSONFile(*profOut, prep); err != nil {
			fmt.Fprintf(os.Stderr, "simbench: profile: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (per-workload profiles; view with profview)\n", *profOut)
	}

	tries := 1
	if *guard {
		tries = *attempts
		if tries < 1 {
			tries = 1
		}
	}
	for attempt := 1; ; attempt++ {
		rep, err := bench.RunHostReport(*cycles, *reps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
			os.Exit(1)
		}

		fmt.Printf("simbench: %s %s/%s, %d cycles per measurement\n\n",
			rep.GoVersion, rep.GOOS, rep.GOARCH, rep.CyclesPerRun)
		fmt.Printf("%-10s %-12s %14s %10s %12s\n", "workload", "path", "cycles/sec", "ns/cycle", "allocs/cycle")
		for _, r := range rep.Results {
			fmt.Printf("%-10s %-12s %14.0f %10.1f %12.4f\n",
				r.Workload, r.Path, r.CyclesPerSec, r.NsPerCycle, r.AllocsPerCycle)
		}
		fmt.Println()
		for _, w := range bench.HostWorkloads() {
			fmt.Printf("%-10s speedup %.2fx   metrics-on overhead %.1f%%   translated %.2fx   prof-on overhead %.1f%%\n",
				w.ID, rep.Speedup[w.ID], 100*(rep.Overhead[w.ID]-1), rep.Translation[w.ID],
				100*(rep.ProfOverhead[w.ID]-1))
		}

		if *doFleet {
			var sizes []int
			for n := 1; n <= *fleetMax; n *= 2 {
				sizes = append(sizes, n)
			}
			if procs := runtime.GOMAXPROCS(0); procs < *fleetMax {
				fmt.Fprintf(os.Stderr,
					"simbench: warning: GOMAXPROCS=%d < %d sessions; large fleet points measure queueing, not scaling\n",
					procs, *fleetMax)
			}
			opt := fleet.ScalingOptions{
				Sessions:      sizes,
				CyclesPerOp:   *fleetCycles,
				OpsPerSession: *fleetOps,
			}
			points, err := fleet.MeasureScaling(opt)
			if err != nil {
				fmt.Fprintf(os.Stderr, "simbench: fleet: %v\n", err)
				os.Exit(1)
			}
			opt.Metrics = true
			instr, err := fleet.MeasureScaling(opt)
			if err != nil {
				fmt.Fprintf(os.Stderr, "simbench: fleet (metrics): %v\n", err)
				os.Exit(1)
			}
			for i := range points {
				if i < len(instr) && instr[i].Sessions == points[i].Sessions {
					points[i].MetricsCyclesPerSec = instr[i].CyclesPerSec
				}
			}
			rep.Fleet = points
			fmt.Printf("\n%-10s %8s %14s %10s %12s\n", "fleet", "workers", "cycles/sec", "scaling", "metrics-on")
			for _, p := range points {
				over := "n/a"
				if p.MetricsCyclesPerSec > 0 {
					over = fmt.Sprintf("%.1f%%", 100*(p.CyclesPerSec/p.MetricsCyclesPerSec-1))
				}
				fmt.Printf("%-10d %8d %14.0f %9.2fx %12s\n", p.Sessions, p.Workers, p.CyclesPerSec, p.Scaling, over)
			}
		} else if *out != "" {
			// Keep the recorded scaling curve when this run did not
			// re-measure it.
			if prev, err := bench.ReadHostReportFile(*out); err == nil && len(prev.Fleet) > 0 {
				rep.Fleet = prev.Fleet
			}
		}

		if *out != "" {
			if err := bench.WriteJSONFile(*out, rep); err != nil {
				fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("\nwrote %s\n", *out)
		}
		if !*guard {
			return
		}

		checks, ok := bench.Guard(baseline, &rep, th)
		fmt.Printf("\nguard: baseline %s, thresholds off %.0f%% on %.0f%% fleet-on %.0f%% translated %.1fx on %d+ workloads prof-off %.0f%% prof-on %.0f%%\n",
			*baselinePath, 100*th.MetricsOff, 100*th.MetricsOn, 100*th.FleetMetricsOn,
			th.TranslatedMin, th.TranslatedWorkloads, 100*th.ProfOff, 100*th.ProfOn)
		for _, c := range checks {
			fmt.Println(c)
		}
		if ok {
			fmt.Println("guard: all checks passed")
			return
		}
		if attempt >= tries {
			fmt.Fprintln(os.Stderr, "guard: FAILED")
			os.Exit(1)
		}
		fmt.Printf("guard: attempt %d/%d failed, re-measuring\n\n", attempt, tries)
	}
}
