// Simbench measures host performance: how many simulated Dorado cycles per
// second the simulator sustains on the machine running it, across the §7
// workload families (emulator mix, disk, fast I/O, BitBlt). Each workload
// runs twice — on the predecoded hot loop and on the reference interpreter
// (per-cycle decode, the pre-optimization baseline) — and the report
// records both plus the speedup.
//
// Usage:
//
//	simbench                         print the report, write BENCH_SIM.json
//	simbench -cycles 5000000         longer runs (steadier numbers)
//	simbench -o path.json            write elsewhere ("" skips the file)
package main

import (
	"flag"
	"fmt"
	"os"

	"dorado/internal/bench"
)

func main() {
	cycles := flag.Uint64("cycles", 2_000_000, "simulated cycles per (workload, path) measurement")
	out := flag.String("o", "BENCH_SIM.json", "output JSON path (empty: stdout report only)")
	flag.Parse()

	rep, err := bench.RunHostReport(*cycles)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("simbench: %s %s/%s, %d cycles per measurement\n\n",
		rep.GoVersion, rep.GOOS, rep.GOARCH, rep.CyclesPerRun)
	fmt.Printf("%-10s %-11s %14s %10s %12s\n", "workload", "path", "cycles/sec", "ns/cycle", "allocs/cycle")
	for _, r := range rep.Results {
		fmt.Printf("%-10s %-11s %14.0f %10.1f %12.4f\n",
			r.Workload, r.Path, r.CyclesPerSec, r.NsPerCycle, r.AllocsPerCycle)
	}
	fmt.Println()
	for _, w := range bench.HostWorkloads() {
		fmt.Printf("%-10s speedup %.2fx\n", w.ID, rep.Speedup[w.ID])
	}

	if *out != "" {
		if err := bench.WriteJSONFile(*out, rep); err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
}
