// Benchguard enforces the performance budgets by comparing two simbench
// reports: the metrics-off hot loop must hold the committed baseline's
// predecode speedup to within 3%, the metrics-on (instrumented) path must
// stay within 20% of the same run's predecoded throughput, and the
// superblock-translated path must beat the same run's predecoded path by
// 1.5x on at least two workloads. A failed check exits nonzero.
//
// Both reports must come from the same simbench executable: function
// placement differs between binaries, which alone shifts the hot loop's
// predecode ratio by more than the 3% budget. For live CI gating use
// `simbench -guard`, which measures and checks inside one process;
// benchguard is the offline comparator for reports already on disk.
//
// Usage:
//
//	benchguard -current current.json             compare against BENCH_SIM.json
//	benchguard -baseline a.json -current b.json  compare two saved reports
//	benchguard -off 0.05 -on 0.20                loosen the thresholds
package main

import (
	"flag"
	"fmt"
	"os"

	"dorado/internal/bench"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_SIM.json", "committed baseline report")
	currentPath := flag.String("current", "", "current report JSON (required)")
	off := flag.Float64("off", bench.DefaultGuardThresholds.MetricsOff, "metrics-off allowed fractional regression")
	on := flag.Float64("on", bench.DefaultGuardThresholds.MetricsOn, "metrics-on allowed fractional overhead")
	transMin := flag.Float64("translated-min", bench.DefaultGuardThresholds.TranslatedMin, "required translated-over-predecoded speedup (0 disables)")
	transN := flag.Int("translated-workloads", bench.DefaultGuardThresholds.TranslatedWorkloads, "workloads that must reach -translated-min")
	flag.Parse()

	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -current is required (use `simbench -guard` for live measurement)")
		os.Exit(2)
	}
	baseline, err := bench.ReadHostReportFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: baseline: %v\n", err)
		os.Exit(1)
	}
	current, err := bench.ReadHostReportFile(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: current: %v\n", err)
		os.Exit(1)
	}

	th := bench.GuardThresholds{
		MetricsOff: *off, MetricsOn: *on,
		TranslatedMin: *transMin, TranslatedWorkloads: *transN,
	}
	checks, ok := bench.Guard(baseline, current, th)
	fmt.Printf("benchguard: baseline %s (%s %s/%s), thresholds off %.0f%% on %.0f%%\n",
		*baselinePath, baseline.GoVersion, baseline.GOOS, baseline.GOARCH,
		100*th.MetricsOff, 100*th.MetricsOn)
	for _, c := range checks {
		fmt.Println(c)
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "benchguard: FAILED")
		os.Exit(1)
	}
	fmt.Println("benchguard: all checks passed")
}
