// Command fuzzfarm runs a sharded differential-fuzzing campaign: seed
// ranges fan out across a bounded worker pool, every seed runs the full
// machine/path profile mix (reference vs predecoded and vs translated, on
// bare and on fast-I/O device-driven machines), each divergence is
// minimized and banked as a ready-to-paste regression test in the corpus
// directory, and the whole campaign lands in one JSON report.
//
// Usage:
//
//	fuzzfarm [-start N] [-seeds N] [-shards N] [-workers N]
//	         [-cycles N] [-k N] [-insts N] [-translated]
//	         [-duration D] [-corpus DIR] [-report FILE] [-q]
//
// -translated restricts the mix to the translated profiles (translator
// hunting); the default runs all four. -duration time-boxes the campaign
// for CI: seeds not started by the deadline are skipped and the report is
// marked interrupted. SIGINT/SIGTERM stop the same way — in-flight seeds
// finish and the partial report is still written. Exit status 1 if any
// divergence or harness error was found.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dorado/internal/bench"
	"dorado/internal/fuzzfarm"
)

func main() {
	start := flag.Int64("start", 1, "first seed")
	seeds := flag.Int64("seeds", 256, "number of seeds to run")
	shards := flag.Int("shards", 8, "contiguous seed ranges to schedule")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	cycles := flag.Uint64("cycles", 20000, "simulated cycles per work unit")
	k := flag.Uint64("k", 512, "checkpoint interval in cycles")
	insts := flag.Int("insts", 24, "generated instructions per program")
	translated := flag.Bool("translated", false, "run only the translated profiles")
	duration := flag.Duration("duration", 0, "time-box the campaign (0 = run to completion)")
	corpus := flag.String("corpus", "", "directory for deduped regression-test corpus entries")
	report := flag.String("report", "", "write the JSON campaign report to this file")
	quiet := flag.Bool("q", false, "suppress per-seed progress")
	flag.Parse()

	cfg := fuzzfarm.Config{
		StartSeed: *start,
		Seeds:     *seeds,
		Shards:    *shards,
		Workers:   *workers,
		Duration:  *duration,
		CorpusDir: *corpus,
	}
	cfg.Fuzz.Cycles = *cycles
	cfg.Fuzz.CheckpointEvery = *k
	cfg.Fuzz.Instructions = *insts
	if *translated {
		cfg.Profiles = fuzzfarm.TranslatedProfiles()
	}
	if !*quiet {
		cfg.Progress = func(done, total int64) {
			if done%32 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "fuzzfarm: %d/%d seeds\n", done, total)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	began := time.Now()
	rep, err := fuzzfarm.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fuzzfarm: %v\n", err)
		os.Exit(1)
	}
	if *report != "" {
		if err := bench.WriteJSONFile(*report, rep); err != nil {
			fmt.Fprintf(os.Stderr, "fuzzfarm: %v\n", err)
			os.Exit(1)
		}
	}

	for i := range rep.Findings {
		f := &rep.Findings[i]
		fmt.Printf("DIVERGENCE profile=%s seed=%d cycle=%d pc=%04o key=%s corpus=%s\n",
			f.Profile, f.Seed, f.Cycle, f.PC, f.Key, f.CorpusFile)
	}
	for _, e := range rep.Errors {
		fmt.Fprintf(os.Stderr, "fuzzfarm: ERROR %s\n", e)
	}
	status := "complete"
	if rep.Interrupted {
		status = "interrupted"
	}
	fmt.Printf("fuzzfarm: %s: %d/%d seeds x %d profiles, %d cycles in %v (%.0f cycles/s), %d divergences, %d errors\n",
		status, rep.SeedsRun, rep.Seeds, len(rep.Profiles), rep.Cycles,
		time.Since(began).Round(time.Millisecond), rep.CyclesPerSec, rep.Divergences, len(rep.Errors))

	if rep.Divergences > 0 || len(rep.Errors) > 0 {
		os.Exit(1)
	}
}
