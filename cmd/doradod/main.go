// Doradod serves a fleet of simulated Dorados over HTTP/JSON: many
// concurrently simulated machines behind one scheduler, the service shape
// the ROADMAP's related work argues scales — parallel deployment of simple
// processors rather than one faster one.
//
// Each session is one machine built through the dorado.New facade.
// Operations on a session are serialized; different sessions run in
// parallel on a bounded worker pool. Full queues reject with 429 (back
// off and retry), idle sessions are parked to snapshots and revived on
// demand, and SIGINT/SIGTERM (or POST /v1/drain) drains gracefully:
// in-flight operations finish, new ones get 503.
//
// With -store DIR the fleet survives restarts: parked snapshots land in a
// content-addressed store under DIR, a graceful drain parks every live
// session into it, and the next doradod over the same DIR lists those
// sessions as parked and revives each lazily on first touch. Any stored
// snapshot hash can also seed a brand-new session ({"from":"<hash>"} on
// POST /v1/sessions). The store garbage-collects itself: a periodic
// sweeper (-gc-every) reclaims snapshots no session references once they
// are older than -gc-age, and POST /v1/store/gc runs a sweep on demand.
// GET /v1/store reports the store's inventory. Sessions created with a
// "webhook" URL get every run completion POSTed there — gated by the
// -webhook-allow origin allowlist. docs/OPERATIONS.md is the operator
// runbook for all of this.
//
// Usage:
//
//	doradod [flags]
//
//	-addr ADDR            listen address (default 127.0.0.1:7480)
//	-workers N            worker goroutines (default GOMAXPROCS)
//	-max-sessions N       session limit (default 64)
//	-queue N              per-session operation queue depth (default 8)
//	-idle-evict DUR       park sessions idle this long, 0 disables
//	                      (default 5m)
//	-store DIR            durable snapshot store directory; parked
//	                      sessions persist across restarts (default
//	                      none: snapshots stay in memory)
//	-gc-age DUR           store GC: reclaim snapshots unreferenced by
//	                      the manifest and older than DUR; 0 reclaims
//	                      unreferenced snapshots immediately (default
//	                      24h)
//	-gc-every DUR         store GC sweep interval; 0 disables the
//	                      periodic sweeper (POST /v1/store/gc still
//	                      works) (default 1h)
//	-webhook-allow LIST   comma-separated origin allowlist for session
//	                      webhooks, e.g. "https://hooks.example.com";
//	                      "*" allows any origin (default empty:
//	                      webhooks rejected)
//	-drain-timeout DUR    shutdown grace period (default 30s)
//	-log-level LEVEL      structured-log verbosity: debug, info, warn,
//	                      error, or off (default info; debug adds one
//	                      record per fleet operation with its queue-wait
//	                      and service-time split)
//
// The API (see internal/fleet.Server for the route list). Sessions can
// mount I/O controllers at creation — pass "devices" with catalog names
// (disk, ethernet, display, scanner, loopback, pulse; see docs/API.md
// §7a) and the machine is built with them attached; devices survive
// park/revive because they are part of the session's Spec:
//
//	curl -X POST localhost:7480/v1/sessions -d '{"language":"mesa","metrics":true}'
//	curl -X POST localhost:7480/v1/sessions -d '{"devices":[{"name":"disk","start":"disk"}]}'
//	curl -X POST localhost:7480/v1/sessions/s1/boot -d '{"source":"return 6*7;"}'
//	curl -X POST localhost:7480/v1/sessions/s1/runs -d '{"cycles":100000}'
//	curl localhost:7480/v1/sessions/s1/runs/r1        # poll the async run
//	curl -X POST localhost:7480/v1/sessions/s1/run -d '{"cycles":100000}'  # deprecated sync form
//	curl -X POST localhost:7480/v1/sessions/s1/park   # snapshot + evict now
//	curl localhost:7480/v1/sessions/s1
//	curl localhost:7480/v1/sessions/s1/trace          # Chrome trace_event JSON
//	curl localhost:7480/v1/sessions/s1/obs            # wakeup/latency summary
//	curl -N localhost:7480/v1/sessions/s1/events      # live SSE stats stream
//	curl localhost:7480/metrics
//
// Profiling: sessions created with {"profile":true} carry a
// microarchitectural profiler (add {"translation":true} for the
// superblock translator whose abort accounting the profile explains).
// GET /v1/sessions/{id}/profile serves gzipped pprof — `go tool pprof
// 'http://localhost:7480/v1/sessions/s1/profile'` opens it directly, hot
// microaddresses named by their masm symbols — and ?format=json the
// symbolized document (render offline with cmd/profview).
// GET /v1/profile merges every profiled session into one fleet-wide
// profile. See docs/OPERATIONS.md ("Profiling a live fleet"):
//
//	curl -X POST localhost:7480/v1/sessions -d '{"profile":true,"translation":true}'
//	go tool pprof 'http://localhost:7480/v1/sessions/s1/profile'
//	curl 'localhost:7480/v1/sessions/s1/profile?format=json' | profview /dev/stdin
//	curl 'localhost:7480/v1/profile'                  # fleet-wide merge
//
// Run endpoints: POST /v1/sessions/{id}/runs is the primary form — it
// answers 202 with a run id at admission, the result is pollable at
// GET /v1/sessions/{id}/runs/{rid}, and the completion also arrives as a
// "run" event on the session's SSE stream. POST /v1/sessions/{id}/run is
// the deprecated synchronous wrapper over the same machinery, kept for
// existing clients (simbench -fleet among them).
//
// Observability rides on the same listener: /metrics is the Prometheus
// scrape target (fleet counters, per-operation queue-wait and service-time
// histograms, per-session cycle counters), /healthz reports session counts
// by state, /debug/vars is expvar, /debug/pprof is the usual profiler
// surface. Sessions created with "metrics":true additionally serve the
// per-session trace, obs, and events endpoints above. Logs are structured
// (log/slog, text format, one line per HTTP request at info; one line per
// fleet operation at debug) with request ids correlating the two.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"dorado/internal/fleet"
	"dorado/internal/obs"
	"dorado/internal/store"
)

// parseLogLevel maps the -log-level flag onto a slog handler; "off"
// returns nil, which disables both the access log and the operation log.
func parseLogLevel(s string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(s) {
	case "off", "none":
		return nil, nil
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q", s)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7480", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines executing session operations")
	maxSessions := flag.Int("max-sessions", 64, "maximum live+parked sessions")
	queue := flag.Int("queue", 8, "per-session operation queue depth")
	idle := flag.Duration("idle-evict", 5*time.Minute, "park sessions idle this long (0 disables)")
	storeDir := flag.String("store", "", "durable snapshot store directory (empty: in-memory parking only)")
	gcAge := flag.Duration("gc-age", 24*time.Hour, "reclaim unreferenced snapshots older than this (0: immediately)")
	gcEvery := flag.Duration("gc-every", time.Hour, "periodic store GC sweep interval (0: disable the sweeper)")
	webhookAllow := flag.String("webhook-allow", "", `comma-separated webhook origin allowlist ("*": any; empty: reject all)`)
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown grace period")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, error, off")
	flag.Parse()

	logger, err := parseLogLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	var snapStore *store.Store
	if *storeDir != "" {
		if snapStore, err = store.Open(*storeDir); err != nil {
			fatal(err)
		}
	}
	// Flag zero means "now"/"off"; Config zero means "use the default" —
	// translate so the flag surface stays the intuitive one.
	gcAgeCfg, gcEveryCfg := *gcAge, *gcEvery
	if gcAgeCfg <= 0 {
		gcAgeCfg = -1 // reclaim unreferenced snapshots regardless of age
	}
	if gcEveryCfg <= 0 {
		gcEveryCfg = -1 // no periodic sweeper; POST /v1/store/gc only
	}
	var allow []string
	for _, o := range strings.Split(*webhookAllow, ",") {
		if o = strings.TrimSpace(o); o != "" {
			allow = append(allow, o)
		}
	}
	mgr := fleet.New(fleet.Config{
		Workers:      *workers,
		MaxSessions:  *maxSessions,
		QueueDepth:   *queue,
		IdleAfter:    *idle,
		Logger:       logger,
		Store:        snapStore,
		GCMaxAge:     gcAgeCfg,
		GCEvery:      gcEveryCfg,
		WebhookAllow: allow,
	})
	srv := fleet.NewServer(mgr)
	srv.DrainTimeout = *drainTimeout
	obs.RegisterDebug(srv.Mux())
	expvar.Publish("fleet_sessions", expvar.Func(func() any { return mgr.Sessions() }))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv}
	fmt.Printf("doradod: serving on http://%s (%d workers, %d sessions max)\n",
		ln.Addr(), *workers, *maxSessions)
	if snapStore != nil {
		fmt.Printf("doradod: durable store at %s (%d stored sessions adopted)\n",
			snapStore.Dir(), len(snapStore.Sessions()))
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("doradod: %v, draining\n", sig)
	case err := <-errc:
		fatal(err)
	}

	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
	if err := mgr.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "doradod: drain: %v\n", err)
	}
	cancelDrain()
	// Fresh budget for the HTTP listener: a slow drain must not leave
	// Shutdown an already-expired context and cut off in-flight responses.
	shutCtx, cancelShut := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancelShut()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "doradod: shutdown: %v\n", err)
	}
	fmt.Println("doradod: stopped")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "doradod:", err)
	os.Exit(1)
}
