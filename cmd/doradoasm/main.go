// Doradoasm assembles Dorado microassembly (.dasm) into a placed
// microstore image, reporting the placement statistics the paper's §7
// discusses (pages, branch pairs, utilization), and can run the program on
// a simulated machine.
//
// Usage:
//
//	doradoasm [flags] program.dasm
//
//	-listing        print the placed program
//	-run LABEL      run the machine starting at LABEL until Halt
//	-cycles N       cycle limit for -run (default 1000000)
//	-trace          disassemble every executed cycle (with -run)
//	-stats          print machine statistics after -run
//	-debug          drop into the console debugger instead of running
//	                (breakpoints, stepping, inspection; 'q' quits)
//
// The source format is documented on masm.ParseText; see
// examples/microcode/multiply.dasm for a worked example.
package main

import (
	"flag"
	"fmt"
	"os"

	"dorado/internal/console"
	"dorado/internal/core"
	"dorado/internal/masm"
	"dorado/internal/trace"
)

func main() {
	listing := flag.Bool("listing", false, "print the placed program")
	run := flag.String("run", "", "run the machine starting at this label")
	cycles := flag.Uint64("cycles", 1_000_000, "cycle limit for -run")
	doTrace := flag.Bool("trace", false, "trace every executed cycle (with -run)")
	stats := flag.Bool("stats", false, "print machine statistics after -run")
	debug := flag.Bool("debug", false, "start the console debugger (with -run)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: doradoasm [flags] program.dasm")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := masm.AssembleText(string(src))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("placed: %v\n", prog.Stats)
	if *listing {
		fmt.Print(prog.Listing())
	}
	if *run == "" {
		return
	}
	entry, err := prog.Entry(*run)
	if err != nil {
		fatal(err)
	}
	m, err := core.New(core.Config{})
	if err != nil {
		fatal(err)
	}
	m.Load(&prog.Words)
	m.Start(entry)
	if *doTrace {
		m.SetTracer(trace.NewWriter(os.Stdout, prog))
	}
	if *debug {
		console.New(m, prog).REPL(os.Stdin, os.Stdout)
		return
	}
	halted := m.Run(*cycles)
	if halted {
		fmt.Printf("halted at %v after %d cycles (%.3f ms simulated)\n",
			m.HaltPC(), m.Cycle(), float64(m.Cycle())*core.CycleNS*1e-6)
	} else {
		fmt.Printf("cycle limit %d reached (task %d at %v)\n", *cycles, m.CurTask(), m.CurPC())
	}
	if *stats {
		fmt.Print(trace.FormatStats(m.Stats()))
		fmt.Printf("T=%#04x Q=%#04x COUNT=%d STKP=%d RM0..7 = % 04x\n",
			m.T(0), m.Q(), m.Count(), m.StackPtr(),
			[]uint16{m.RM(0), m.RM(1), m.RM(2), m.RM(3), m.RM(4), m.RM(5), m.RM(6), m.RM(7)})
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "doradoasm:", err)
	os.Exit(1)
}
