// Package lispc is a small compiler from s-expressions to the Lisp
// emulator's byte codes — the Interlisp side of §3's "byte code compilers
// exist for Mesa, Interlisp and Smalltalk". Where mesac demonstrates the
// cheap path (hardware stack, compile-time checking), lispc's output pays
// the costs §7 attributes to Lisp: every value is a two-word tagged item
// on the memory stack, every primitive type-checks at run time, and every
// call shallow-binds its parameter symbols.
//
// The language:
//
//	program = (define (name params...) body...)* expr
//	expr    = number
//	        | nil
//	        | name                     ; a parameter or let binding
//	        | (+ a b) | (- a b)        ; fixnum, type-checked
//	        | (car e) | (cdr e) | (cons a b)
//	        | (if0 n then else)        ; fixnum-zero test
//	        | (ifnil e then else)      ; NIL test
//	        | (let ((name e)...) body...)
//	        | (name args...)           ; call
//
// A function body (and a let body) is an implicit sequence; every form
// yields a value and non-final values are popped. Recursion is the loop
// construct, as in the Interlisp of the period.
package lispc

import (
	"fmt"

	"dorado/internal/core"
	"dorado/internal/emulator"
)

// Program is a compiled Lisp macroprogram.
type Program struct {
	Code  []byte
	Funcs []FuncInfo
	// Symbols lists the parameter-symbol value cells the compiler
	// allocated in the heap (two words each).
	Symbols map[string]uint16
}

// FuncInfo records one compiled function.
type FuncInfo struct {
	Name   string
	Slot   uint16
	Entry  uint16
	Params []string
}

// Compile translates source text.
func Compile(src string) (*Program, error) {
	forms, err := ParseForms(src)
	if err != nil {
		return nil, err
	}
	lisp, err := emulator.BuildLisp()
	if err != nil {
		return nil, err
	}
	c := &lcompiler{
		asm:     emulator.NewAsm(lisp),
		funcs:   map[string]*FuncInfo{},
		symbols: map[string]uint16{},
	}
	if err := c.program(forms); err != nil {
		return nil, err
	}
	code, err := c.asm.Bytes()
	if err != nil {
		return nil, err
	}
	p := &Program{Code: code, Symbols: c.symbols}
	for _, name := range c.order {
		fi := *c.funcs[name]
		pc, err := c.asm.LabelPC("fn." + name)
		if err != nil {
			return nil, err
		}
		fi.Entry = pc
		p.Funcs = append(p.Funcs, fi)
	}
	return p, nil
}

// InstallOn loads code, function headers, and symbol cells.
func (p *Program) InstallOn(m *core.Machine) {
	emulator.LoadCode(m, p.Code)
	for _, f := range p.Funcs {
		syms := make([]uint16, len(f.Params))
		for i, prm := range f.Params {
			syms[i] = p.Symbols[f.Name+"."+prm]
		}
		emulator.DefineLispFunc(m, f.Slot, f.Entry, syms)
	}
}

// symBase is the heap address where the compiler allocates parameter
// symbol cells (two words each).
const symBase = emulator.VAHeap + 0x0800

const firstSlot = 0x100

// lcompiler is the code generator.
type lcompiler struct {
	asm     *emulator.Asm
	funcs   map[string]*FuncInfo
	order   []string
	symbols map[string]uint16
	labels  int

	// scope: name → frame word offset of the binding's tag word.
	env    map[string]uint8
	nextSl uint8
	inFunc bool
}

func (c *lcompiler) newLabel(stem string) string {
	c.labels++
	return fmt.Sprintf(".%s%d", stem, c.labels)
}

func (c *lcompiler) program(forms []*Sexpr) error {
	// Pass 1: collect definitions.
	var body []*Sexpr
	for _, f := range forms {
		if f.isDefine() {
			name, params, err := f.defineHead()
			if err != nil {
				return err
			}
			if _, dup := c.funcs[name]; dup {
				return fmt.Errorf("lispc: %s defined twice", name)
			}
			c.funcs[name] = &FuncInfo{
				Name:   name,
				Slot:   uint16(firstSlot + 4*len(c.order)),
				Params: params,
			}
			for _, prm := range params {
				key := name + "." + prm
				c.symbols[key] = uint16(symBase + 2*len(c.symbols))
			}
			c.order = append(c.order, name)
			continue
		}
		body = append(body, f)
	}
	if len(body) == 0 {
		return fmt.Errorf("lispc: no top-level expression")
	}
	// Main body.
	c.env = map[string]uint8{}
	c.nextSl = 4
	for i, f := range body {
		if err := c.expr(f); err != nil {
			return err
		}
		if i != len(body)-1 {
			c.popDiscard()
		}
	}
	c.asm.Op("HALT")
	// Function bodies.
	for _, f := range forms {
		if !f.isDefine() {
			continue
		}
		if err := c.define(f); err != nil {
			return err
		}
	}
	return nil
}

// popDiscard drops the top item (two words) by storing it into a scratch
// local.
func (c *lcompiler) popDiscard() {
	c.asm.OpB("POPL", 30) // frame scratch slot
}

func (c *lcompiler) define(f *Sexpr) error {
	name, params, err := f.defineHead()
	if err != nil {
		return err
	}
	c.asm.Label("fn." + name)
	c.env = map[string]uint8{}
	// CALLF stores arguments in pop order from frame word 4: the LAST
	// argument's item lands at words 4,5.
	for i, prm := range params {
		c.env[prm] = uint8(4 + 2*(len(params)-1-i))
	}
	c.nextSl = uint8(4 + 2*len(params))
	c.inFunc = true
	body := f.list[2:]
	if len(body) == 0 {
		return fmt.Errorf("lispc: %s has an empty body", name)
	}
	for i, b := range body {
		if err := c.expr(b); err != nil {
			return err
		}
		if i != len(body)-1 {
			c.popDiscard()
		}
	}
	c.asm.Op("RETF")
	c.inFunc = false
	return nil
}

func (c *lcompiler) expr(e *Sexpr) error {
	switch {
	case e.isNumber:
		c.asm.OpW("PUSHK", e.num)
		return nil
	case e.atom == "nil":
		c.asm.Op("PUSHNIL")
		return nil
	case e.atom != "":
		off, ok := c.env[e.atom]
		if !ok {
			return fmt.Errorf("lispc: unbound variable %s", e.atom)
		}
		c.asm.OpB("PUSHL", off)
		return nil
	}
	if len(e.list) == 0 {
		return fmt.Errorf("lispc: empty form")
	}
	head := e.list[0].atom
	args := e.list[1:]
	binop := func(op string) error {
		if len(args) != 2 {
			return fmt.Errorf("lispc: %s takes 2 arguments", head)
		}
		if err := c.expr(args[0]); err != nil {
			return err
		}
		if err := c.expr(args[1]); err != nil {
			return err
		}
		c.asm.Op(op)
		return nil
	}
	switch head {
	case "+":
		return binop("ADDF")
	case "-":
		return binop("SUBF")
	case "cons":
		return binop("CONS")
	case "car", "cdr":
		if len(args) != 1 {
			return fmt.Errorf("lispc: %s takes 1 argument", head)
		}
		if err := c.expr(args[0]); err != nil {
			return err
		}
		c.asm.Op(map[string]string{"car": "CAR", "cdr": "CDR"}[head])
		return nil
	case "if0", "ifnil":
		if len(args) != 3 {
			return fmt.Errorf("lispc: %s takes (test then else)", head)
		}
		thenL, endL := c.newLabel("t"), c.newLabel("e")
		if err := c.expr(args[0]); err != nil {
			return err
		}
		jump := "JZF"
		if head == "ifnil" {
			jump = "JNIL"
		}
		c.asm.OpL(jump, thenL)
		if err := c.expr(args[2]); err != nil { // else arm
			return err
		}
		c.asm.OpL("JMP", endL)
		c.asm.Label(thenL)
		if err := c.expr(args[1]); err != nil {
			return err
		}
		c.asm.Label(endL)
		return nil
	case "let":
		if len(args) < 2 || len(e.list[1].list) == 0 && e.list[1].atom != "" {
			// bindings list may be empty; body required
		}
		if len(args) < 2 {
			return fmt.Errorf("lispc: let needs bindings and a body")
		}
		saved := map[string]uint8{}
		var added []string
		for _, b := range args[0].list {
			if len(b.list) != 2 || b.list[0].atom == "" {
				return fmt.Errorf("lispc: let binding must be (name expr)")
			}
			name := b.list[0].atom
			if err := c.expr(b.list[1]); err != nil {
				return err
			}
			slot := c.nextSl
			c.nextSl += 2
			c.asm.OpB("POPL", slot)
			if old, had := c.env[name]; had {
				saved[name] = old
			}
			c.env[name] = slot
			added = append(added, name)
		}
		body := args[1:]
		for i, b := range body {
			if err := c.expr(b); err != nil {
				return err
			}
			if i != len(body)-1 {
				c.popDiscard()
			}
		}
		for _, name := range added {
			if old, had := saved[name]; had {
				c.env[name] = old
			} else {
				delete(c.env, name)
			}
		}
		return nil
	}
	// Function call.
	fi, ok := c.funcs[head]
	if !ok {
		return fmt.Errorf("lispc: undefined function %s", head)
	}
	if len(args) != len(fi.Params) {
		return fmt.Errorf("lispc: %s takes %d argument(s), got %d", head, len(fi.Params), len(args))
	}
	for _, a := range args {
		if err := c.expr(a); err != nil {
			return err
		}
	}
	c.asm.OpW("CALLF", fi.Slot)
	return nil
}
