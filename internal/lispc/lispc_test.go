package lispc

import (
	"strings"
	"testing"

	"dorado/internal/core"
	"dorado/internal/emulator"
)

// run compiles and executes src, returning the (tag, value) left on the
// memory evaluation stack.
func run(t *testing.T, src string) [2]uint16 {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	lisp, err := emulator.BuildLisp()
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	prog.InstallOn(m)
	if err := lisp.InstallOn(m); err != nil {
		t.Fatal(err)
	}
	if !m.Run(50_000_000) {
		t.Fatalf("did not halt (task %d pc %v)", m.CurTask(), m.CurPC())
	}
	st := emulator.LispStack(m)
	if len(st) != 1 {
		t.Fatalf("stack = %v, want one item", st)
	}
	return st[0]
}

func fixnum(v uint16) [2]uint16 { return [2]uint16{emulator.TagFixnum, v} }

func TestLiteralsAndArith(t *testing.T) {
	cases := []struct {
		src  string
		want [2]uint16
	}{
		{"42", fixnum(42)},
		{"(+ 2 40)", fixnum(42)},
		{"(- 50 8)", fixnum(42)},
		{"(+ (+ 1 2) (- 50 11))", fixnum(42)},
		{"nil", [2]uint16{emulator.TagNil, 0}},
	}
	for _, c := range cases {
		if got := run(t, c.src); got != c.want {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestListPrimitives(t *testing.T) {
	if got := run(t, "(car (cons 7 nil))"); got != fixnum(7) {
		t.Errorf("car = %v", got)
	}
	if got := run(t, "(car (cdr (cons 1 (cons 2 nil))))"); got != fixnum(2) {
		t.Errorf("cadr = %v", got)
	}
	if got := run(t, "(cdr (cons 1 nil))"); got != [2]uint16{emulator.TagNil, 0} {
		t.Errorf("cdr = %v", got)
	}
}

func TestConditionals(t *testing.T) {
	if got := run(t, "(if0 0 1 2)"); got != fixnum(1) {
		t.Errorf("if0 zero = %v", got)
	}
	if got := run(t, "(if0 5 1 2)"); got != fixnum(2) {
		t.Errorf("if0 nonzero = %v", got)
	}
	if got := run(t, "(ifnil nil 1 2)"); got != fixnum(1) {
		t.Errorf("ifnil nil = %v", got)
	}
	if got := run(t, "(ifnil (cons 1 nil) 1 2)"); got != fixnum(2) {
		t.Errorf("ifnil cons = %v", got)
	}
}

func TestLet(t *testing.T) {
	src := "(let ((a 30) (b 12)) (+ a b))"
	if got := run(t, src); got != fixnum(42) {
		t.Errorf("let = %v", got)
	}
	// Shadowing restores.
	src2 := "(let ((a 1)) (+ (let ((a 40)) a) (+ a 1)))"
	if got := run(t, src2); got != fixnum(42) {
		t.Errorf("shadowed let = %v", got)
	}
}

func TestFunctionCall(t *testing.T) {
	src := `
(define (double x) (+ x x))
(double (double 10))
`
	if got := run(t, src); got != fixnum(40) {
		t.Errorf("double = %v", got)
	}
}

func TestRecursiveCountdownSum(t *testing.T) {
	// sum(n) = n + sum(n-1), recursion as the loop. Depth 91 fits the
	// 96-frame pool; see TestFrameExhaustionTraps for the overflow case.
	src := `
(define (sum n)
  (if0 n 0 (+ n (sum (- n 1)))))
(sum 90)
`
	if got := run(t, src); got != fixnum(90*91/2) {
		t.Errorf("sum(90) = %v", got)
	}
}

func TestFrameExhaustionTraps(t *testing.T) {
	// Recursion deeper than the frame pool must halt at the trap (the
	// Mesa-style frame-availability check in CALLF), not run on corrupted
	// frames.
	src := `
(define (sum n)
  (if0 n 0 (+ n (sum (- n 1)))))
(sum 200)
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	lisp, err := emulator.BuildLisp()
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	prog.InstallOn(m)
	if err := lisp.InstallOn(m); err != nil {
		t.Fatal(err)
	}
	if !m.Run(50_000_000) {
		t.Fatal("did not halt")
	}
	trap := lisp.Micro.MustEntry("l.trap")
	if m.HaltPC() != trap {
		t.Fatalf("halted at %v, want the trap %v", m.HaltPC(), trap)
	}
}

func TestRecursiveFib(t *testing.T) {
	src := `
(define (fib n)
  (if0 n 0
    (if0 (- n 1) 1
      (+ (fib (- n 1)) (fib (- n 2))))))
(fib 12)
`
	if got := run(t, src); got != fixnum(144) {
		t.Errorf("fib(12) = %v", got)
	}
}

func TestListLengthAndAppend(t *testing.T) {
	src := `
(define (range n)
  (if0 n nil (cons n (range (- n 1)))))
(define (length l)
  (ifnil l 0 (+ 1 (length (cdr l)))))
(length (range 10))
`
	if got := run(t, src); got != fixnum(10) {
		t.Errorf("length = %v", got)
	}
}

func TestSequenceBodies(t *testing.T) {
	// Non-final body forms are evaluated and discarded.
	src := `
(define (f x)
  (+ x 1)
  (+ x 2))
(f 40)
`
	if got := run(t, src); got != fixnum(42) {
		t.Errorf("sequence = %v", got)
	}
}

func TestShallowBindingAcrossRecursion(t *testing.T) {
	// Each recursive activation rebinds n; unwinding must restore outer
	// bindings (this is the CALLF/RETF binding stack at depth).
	src := `
(define (probe n)
  (if0 n n (+ (probe (- n 1)) n)))
(probe 30)
`
	if got := run(t, src); got != fixnum(465) {
		t.Errorf("probe = %v", got)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"x", "unbound"},
		{"(bogus 1)", "undefined function"},
		{"(define (f a) a) (f 1 2)", "argument"},
		{"(+ 1)", "takes 2"},
		{"(car)", "takes 1"},
		{"(if0 1 2)", "takes"},
		{"(define (f) 1) (define (f) 2) (f)", "twice"},
		{"(", "unterminated"},
		{")", "unexpected"},
		{"(define (f))", ""}, // empty body caught at compile
		{"99999", "bad number"},
	}
	for _, c := range cases {
		_, err := Compile(c.src)
		if err == nil {
			t.Errorf("%q compiled without error", c.src)
			continue
		}
		if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %v, want mention of %q", c.src, err, c.want)
		}
	}
}
