package lispc

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Sexpr is a parsed s-expression: an atom, a number, or a list. The
// reader is shared with the other s-expression front ends (internal/stc).
type Sexpr struct {
	atom     string
	isNumber bool
	num      uint16
	list     []*Sexpr
	isList   bool
}

// Atom returns the atom text ("" for numbers and lists).
func (e *Sexpr) Atom() string { return e.atom }

// IsNumber reports whether e is a numeric literal.
func (e *Sexpr) IsNumber() bool { return e.isNumber }

// Number returns the numeric value (0 unless IsNumber).
func (e *Sexpr) Number() uint16 { return e.num }

// List returns the elements (nil for atoms).
func (e *Sexpr) List() []*Sexpr { return e.list }

// Head returns the leading atom of a list form ("" otherwise).
func (e *Sexpr) Head() string {
	if e.isList && len(e.list) > 0 {
		return e.list[0].atom
	}
	return ""
}

func (e *Sexpr) isDefine() bool {
	return e.isList && len(e.list) >= 3 && e.list[0].atom == "define"
}

// defineHead extracts (define (name params...) ...).
func (e *Sexpr) defineHead() (name string, params []string, err error) {
	head := e.list[1]
	if !head.isList || len(head.list) == 0 || head.list[0].atom == "" {
		return "", nil, fmt.Errorf("lispc: define needs (name params...)")
	}
	name = head.list[0].atom
	for _, p := range head.list[1:] {
		if p.atom == "" || p.isNumber {
			return "", nil, fmt.Errorf("lispc: %s: parameter names must be atoms", name)
		}
		params = append(params, p.atom)
	}
	return name, params, nil
}

// ParseForms reads a sequence of top-level forms. Comments run from ';'
// to end of line.
func ParseForms(src string) ([]*Sexpr, error) {
	p := &sparser{src: src}
	var out []*Sexpr
	for {
		p.skipSpace()
		if p.eof() {
			return out, nil
		}
		e, err := p.parse()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}

type sparser struct {
	src string
	pos int
	ln  int
}

func (p *sparser) eof() bool { return p.pos >= len(p.src) }

func (p *sparser) skipSpace() {
	for !p.eof() {
		ch := p.src[p.pos]
		switch {
		case ch == ';':
			for !p.eof() && p.src[p.pos] != '\n' {
				p.pos++
			}
		case ch == '\n':
			p.ln++
			p.pos++
		case ch == ' ' || ch == '\t' || ch == '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *sparser) parse() (*Sexpr, error) {
	p.skipSpace()
	if p.eof() {
		return nil, fmt.Errorf("lispc: unexpected end of input")
	}
	if p.src[p.pos] == '(' {
		p.pos++
		e := &Sexpr{isList: true}
		for {
			p.skipSpace()
			if p.eof() {
				return nil, fmt.Errorf("lispc: unterminated list")
			}
			if p.src[p.pos] == ')' {
				p.pos++
				return e, nil
			}
			sub, err := p.parse()
			if err != nil {
				return nil, err
			}
			e.list = append(e.list, sub)
		}
	}
	if p.src[p.pos] == ')' {
		return nil, fmt.Errorf("lispc: unexpected )")
	}
	start := p.pos
	for !p.eof() && !strings.ContainsRune("() \t\r\n;", rune(p.src[p.pos])) {
		p.pos++
	}
	word := p.src[start:p.pos]
	if word == "" {
		return nil, fmt.Errorf("lispc: empty atom")
	}
	if unicode.IsDigit(rune(word[0])) || (word[0] == '-' && len(word) > 1 && unicode.IsDigit(rune(word[1]))) {
		v, err := strconv.ParseInt(word, 0, 32)
		if err != nil || v > 0xFFFF || v < -0x8000 {
			return nil, fmt.Errorf("lispc: bad number %q", word)
		}
		return &Sexpr{isNumber: true, num: uint16(v)}, nil
	}
	return &Sexpr{atom: strings.ToLower(word)}, nil
}
