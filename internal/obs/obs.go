// Package obs is the simulator's observability layer: the software
// analogue of the Dorado's console microcomputer (§6.2), which watched the
// running processor from out of band, and of the hardware event counters
// the paper's evaluation (§7) is built from.
//
// The package has two halves:
//
//   - a Recorder, fed one call per cycle by core's hot loop when attached
//     (and costing exactly one nil check per cycle when not): wakeup-edge
//     counters, a hold-latency histogram, a wakeup-to-run histogram (the
//     empirical check on the paper's two-cycle claim, §5.4), per-task
//     scheduling spans, and a sampled per-task utilization timeline;
//   - exporters that render collected data in standard formats: Prometheus
//     text exposition (WritePrometheus), Chrome trace_event JSON that loads
//     in chrome://tracing and Perfetto (WriteChromeTrace), and an expvar +
//     pprof debug server for the cmd tools (ServeDebug).
//
// Concurrency model: the simulation is single-goroutine, so the Recorder
// has a single writer — core's Step loop. Scalar counters and histogram
// buckets are updated with atomic adds so a concurrent scraper (the
// ServeDebug /metrics endpoint, or an expvar poll) reads coherent
// monotonic values without stopping the machine; the event-shaped data
// (spans, timeline) is append-only and must be exported only while the
// machine is paused, which is how the cmd tools use it. Atomics are spent
// only where events happen — the per-cycle fast path is bit tests on two
// machine words — which is what keeps the metrics-on overhead within the
// budget the bench guard enforces (see DESIGN.md §9).
package obs

import (
	"math/bits"
	"strconv"
	"sync/atomic"
)

// MaxTasks is the number of microcode priority levels the recorder tracks
// (mirrors core.NumTasks; the two are asserted equal in core's tests).
const MaxTasks = 16

// Span is one scheduling interval: task held the processor from cycle
// Start up to but not including cycle End.
type Span struct {
	Task  int
	Start uint64
	End   uint64
}

// Slice is one utilization-timeline sample: per-task cycle counts over
// [Start, Start+Interval).
type Slice struct {
	Start  uint64
	Cycles [MaxTasks]uint32
}

// Config sizes the recorder. The zero value picks usable defaults.
type Config struct {
	// MaxSpans bounds the scheduling-span buffer (default 1<<16); spans
	// beyond it are counted in SpansDropped rather than stored, so a long
	// run cannot grow without bound.
	MaxSpans int
	// TimelineInterval is the utilization sampling period in cycles,
	// rounded up to a power of two (default 4096).
	TimelineInterval uint64
	// MaxSlices bounds the timeline buffer (default 1<<14).
	MaxSlices int
}

func (c Config) withDefaults() Config {
	if c.MaxSpans == 0 {
		c.MaxSpans = 1 << 16
	}
	if c.TimelineInterval == 0 {
		c.TimelineInterval = 4096
	}
	// Round up to a power of two so the hot loop masks instead of dividing.
	if c.TimelineInterval&(c.TimelineInterval-1) != 0 {
		c.TimelineInterval = 1 << bits.Len64(c.TimelineInterval)
	}
	if c.MaxSlices == 0 {
		c.MaxSlices = 1 << 14
	}
	return c
}

// Recorder accumulates observability data for one machine. Attach it with
// the facade's WithMetrics option (or core.Machine.SetRecorder) and read
// it through Snapshot/Spans/Timeline after — or, for the atomic counters,
// during — a run.
type Recorder struct {
	cfg Config

	// Counters (atomic; readable mid-run).
	wakeups      [MaxTasks]atomic.Uint64 // rising wakeup-line edges per task
	spansDropped atomic.Uint64
	slicesLost   atomic.Uint64

	// Histograms (atomic buckets; readable mid-run).
	holdLatency Histogram // consecutive held cycles per hold episode (§5.7)
	wakeupToRun Histogram // wakeup edge → first executed cycle (§5.4)

	// Hot-loop scratch (single writer, never read concurrently).
	fastKey   uint64           // prevLines | spanTask<<16, or ^0 (see Cycle)
	prevLines uint16           // last cycle's wakeup latch, for edge detection
	wakeAt    [MaxTasks]uint64 // cycle+1 of the pending wakeup edge; 0 = none
	holdStart uint64           // cycle+1 the open hold episode began; 0 = none
	spanTask  int              // task of the open scheduling span
	spanStart uint64
	names     [MaxTasks]string

	// Event buffers (single writer; export only while paused).
	spans     []Span
	timeline  []Slice
	lastTaken [MaxTasks]uint64 // task-cycle counters at the previous sample
	nextAt    uint64           // cycle of the next timeline sample
}

// NewRecorder builds a recorder; NewRecorder(Config{}) is the usual call.
func NewRecorder(cfg Config) *Recorder {
	r := &Recorder{cfg: cfg.withDefaults()}
	r.holdLatency = NewHistogram(HoldLatencyBounds)
	r.wakeupToRun = NewHistogram(WakeupBounds)
	r.Reset()
	return r
}

// Reset clears all collected data (counters, histograms, spans, timeline)
// so the recorder can observe a fresh run.
func (r *Recorder) Reset() {
	for t := range r.wakeups {
		r.wakeups[t].Store(0)
		r.wakeAt[t] = 0
		r.lastTaken[t] = 0
	}
	r.spansDropped.Store(0)
	r.slicesLost.Store(0)
	r.holdLatency.Reset()
	r.wakeupToRun.Reset()
	r.fastKey = ^uint64(0) // first cycle must take the slow path
	r.prevLines = 0
	r.holdStart = 0
	r.spanTask = -1
	r.spanStart = 0
	r.spans = r.spans[:0]
	r.timeline = r.timeline[:0]
	r.nextAt = r.cfg.TimelineInterval
}

// SetTaskName labels a task in exports ("emulator", "disk", ...).
func (r *Recorder) SetTaskName(task int, name string) {
	if task >= 0 && task < MaxTasks {
		r.names[task] = name
	}
}

// TaskName returns the label for a task ("task N" when unset).
func (r *Recorder) TaskName(task int) string {
	if task >= 0 && task < MaxTasks && r.names[task] != "" {
		return r.names[task]
	}
	return "task " + strconv.Itoa(task)
}

// heldKeyBit marks a held cycle in the fast-path key, above the 16 line
// bits and 4 task bits.
const heldKeyBit = 1 << 20

// NeedsCycle reports whether Cycle has any work to do this cycle. It is
// small enough to inline, so core's hot loop guards the Cycle call with it
// and an event-free cycle costs a few compares and no call. Cycle leaves
// fastKey = prevLines | spanTask<<16 (| heldKeyBit mid-episode) when a
// next cycle in the same state needs no bookkeeping — steady runs of
// unheld execution *and* steady hold episodes both ride the fast path —
// and poisons it (^0) while a pending wakeup edge for the running task
// forces per-cycle attention. The timeline sample deadline is checked
// separately because it is a moving cycle count.
func (r *Recorder) NeedsCycle(now uint64, task int, held bool, lines uint16) bool {
	key := uint64(lines) | uint64(uint16(task))<<16
	if held {
		key |= heldKeyBit
	}
	return key != r.fastKey || now+1 >= r.nextAt
}

// Cycle records one machine cycle. It is the hot-loop hook: core calls it
// once per cycle when the recorder is attached (and, for speed, only when
// NeedsCycle says there is work). Calling it on a no-event cycle is
// harmless — it re-checks NeedsCycle and returns.
//
//	now        the cycle just simulated
//	task       the task that occupied the processor this cycle
//	held       whether the instruction was held (§5.7)
//	lines      this cycle's WAKEUP latch (bit per task)
//	taskCycles the machine's running per-task cycle counters
func (r *Recorder) Cycle(now uint64, task int, held bool, lines uint16, taskCycles *[MaxTasks]uint64) {
	if !r.NeedsCycle(now, task, held, lines) {
		return
	}
	// Wakeup edges: a line that is up this cycle and was down last cycle.
	// Most cycles have none, so the common path is two ALU ops and a branch.
	if edges := lines &^ r.prevLines; edges != 0 {
		r.prevLines = lines
		for edges != 0 {
			t := bits.TrailingZeros16(edges)
			edges &= edges - 1
			r.wakeups[t].Add(1)
			// Task 0's line is wired high (§5.1): its single boot-time
			// edge is not a wakeup whose latency means anything.
			if t != 0 && r.wakeAt[t] == 0 {
				r.wakeAt[t] = now + 1 // +1 so zero means "no pending edge"
			}
		}
	} else {
		r.prevLines = lines
	}

	// Wakeup-to-run: the task running now had a pending edge at cycle w.
	// The paper's pipeline (§5.4) makes this 2 in the undisturbed case.
	if w := r.wakeAt[task]; w != 0 {
		r.wakeupToRun.Observe(now - (w - 1))
		r.wakeAt[task] = 0
	}

	// Hold episodes: note where one starts, record its length on release.
	// The cycles in between ride the fast path (heldKeyBit), so a long
	// storage-latency hold costs two slow cycles, not one per held cycle.
	if held {
		if r.holdStart == 0 {
			r.holdStart = now + 1 // +1 so zero means "no open episode"
		}
	} else if r.holdStart != 0 {
		r.holdLatency.Observe(now - (r.holdStart - 1))
		r.holdStart = 0
	}

	// Scheduling spans: close the open span when occupancy changes.
	if task != r.spanTask {
		if r.spanTask >= 0 {
			r.endSpan(now)
		}
		r.spanTask = task
		r.spanStart = now
	}

	// Utilization timeline: sample the per-task counters every interval.
	if now+1 >= r.nextAt {
		r.sample(now+1, taskCycles)
	}

	// Re-arm the fast path: encode the state an event-free next cycle will
	// present, or poison the key while a pending edge for the running task
	// needs per-cycle bookkeeping.
	key := uint64(r.prevLines) | uint64(uint16(r.spanTask))<<16
	if held {
		key |= heldKeyBit
	}
	if r.wakeAt[task] != 0 {
		key = ^uint64(0)
	}
	r.fastKey = key
}

// Flush closes the open scheduling span and hold episode at end-of-run so
// exports account for every cycle up to now.
func (r *Recorder) Flush(now uint64) {
	if r.holdStart != 0 {
		r.holdLatency.Observe(now - (r.holdStart - 1))
		r.holdStart = 0
	}
	if r.spanTask >= 0 && now > r.spanStart {
		r.endSpan(now)
		r.spanStart = now
	}
	r.fastKey = ^uint64(0) // resuming after a flush re-enters the slow path
}

func (r *Recorder) endSpan(end uint64) {
	if len(r.spans) >= r.cfg.MaxSpans {
		r.spansDropped.Add(1)
		return
	}
	r.spans = append(r.spans, Span{Task: r.spanTask, Start: r.spanStart, End: end})
}

func (r *Recorder) sample(at uint64, taskCycles *[MaxTasks]uint64) {
	r.nextAt = at + r.cfg.TimelineInterval
	if len(r.timeline) >= r.cfg.MaxSlices {
		r.slicesLost.Add(1)
		return
	}
	s := Slice{Start: at - r.cfg.TimelineInterval}
	for t := 0; t < MaxTasks; t++ {
		s.Cycles[t] = uint32(taskCycles[t] - r.lastTaken[t])
		r.lastTaken[t] = taskCycles[t]
	}
	r.timeline = append(r.timeline, s)
}

// Wakeups returns the rising-edge count for a task (atomic; safe mid-run).
func (r *Recorder) Wakeups(task int) uint64 { return r.wakeups[task&(MaxTasks-1)].Load() }

// WakeupsTotal sums the per-task wakeup edges (excluding task 0, whose
// line is wired high, §5.1 — it contributes exactly one boot-time edge).
func (r *Recorder) WakeupsTotal() uint64 {
	var n uint64
	for t := 1; t < MaxTasks; t++ {
		n += r.wakeups[t].Load()
	}
	return n
}

// SpansDropped reports spans lost to the MaxSpans cap.
func (r *Recorder) SpansDropped() uint64 { return r.spansDropped.Load() }

// HoldLatency returns the hold-episode-length histogram.
func (r *Recorder) HoldLatency() *Histogram { return &r.holdLatency }

// WakeupToRun returns the wakeup-to-first-run latency histogram.
func (r *Recorder) WakeupToRun() *Histogram { return &r.wakeupToRun }

// Spans returns the recorded scheduling spans. Export-only: call while the
// machine is not running (after Flush for the tail span).
func (r *Recorder) Spans() []Span { return r.spans }

// Timeline returns the utilization samples. Export-only.
func (r *Recorder) Timeline() []Slice { return r.timeline }

// TimelineInterval returns the effective sampling period in cycles.
func (r *Recorder) TimelineInterval() uint64 { return r.cfg.TimelineInterval }
