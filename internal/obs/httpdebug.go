package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// DebugServer is the cmd tools' observability endpoint: expvar
// (/debug/vars), pprof (/debug/pprof/), and a Prometheus scrape target
// (/metrics) whose content comes from a snapshot function, all on one
// listener. It stands in for the Dorado's console microcomputer port: an
// out-of-band window onto the running machine.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server

	mu   sync.Mutex
	snap func() *Snapshot
}

// RegisterDebug mounts the out-of-band inspection endpoints — expvar
// (/debug/vars) and pprof (/debug/pprof/...) — on an existing mux, so a
// server with its own routes (cmd/doradod) shares the exporters ServeDebug
// uses.
func RegisterDebug(mux *http.ServeMux) {
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// RegisterMetrics mounts a Prometheus scrape target on /metrics. The
// snapshot function is called once per scrape and must be safe to run
// concurrently with the simulation; a nil snapshot (or nil result) renders
// no families.
func RegisterMetrics(mux *http.ServeMux, snapshot func() *Snapshot) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if snapshot == nil {
			return
		}
		if s := snapshot(); s != nil {
			WritePrometheus(w, s) //nolint:errcheck // client disconnects only
		}
	})
}

// ServeDebug starts a debug server on addr (e.g. "localhost:6060").
// snapshot may be nil (the /metrics endpoint then reports no families);
// swap it later with SetSnapshot. The server runs until Close.
func ServeDebug(addr string, snapshot func() *Snapshot) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{ln: ln, snap: snapshot}

	mux := http.NewServeMux()
	RegisterDebug(mux)
	RegisterMetrics(mux, d.snapshot)

	d.srv = &http.Server{Handler: mux}
	go d.srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	return d, nil
}

// snapshot reads the swappable snapshot source (see SetSnapshot).
func (d *DebugServer) snapshot() *Snapshot {
	d.mu.Lock()
	f := d.snap
	d.mu.Unlock()
	if f == nil {
		return nil
	}
	return f()
}

// Addr returns the bound address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// SetSnapshot installs the /metrics source. The function is called per
// scrape; it must be safe to run concurrently with the simulation (the
// cmd tools publish a fresh snapshot between run slices, see cmd/dorado).
func (d *DebugServer) SetSnapshot(f func() *Snapshot) {
	d.mu.Lock()
	d.snap = f
	d.mu.Unlock()
}

// Close shuts the listener down.
func (d *DebugServer) Close() error { return d.srv.Close() }
