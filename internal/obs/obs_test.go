package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]uint64{1, 2, 4})
	for _, v := range []uint64{1, 2, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	want := []uint64{1, 2, 2, 2} // ≤1, (1,2], (2,4], +Inf
	for i, w := range want {
		if got := h.BucketCount(i); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 7 || h.Sum() != 117 {
		t.Errorf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if m := h.Mean(); m < 16.0 || m > 17.0 {
		t.Errorf("mean = %v", m)
	}
	s := h.Snapshot()
	if s.Total != 7 || len(s.Counts) != 4 {
		t.Errorf("snapshot = %+v", s)
	}
	h.Reset()
	if h.Count() != 0 || h.BucketCount(0) != 0 {
		t.Error("reset left samples behind")
	}
}

// feed drives the recorder like core's hot loop: cycles[i] describes cycle
// i as (task, held, wakeup lines).
type fed struct {
	task  int
	held  bool
	lines uint16
}

func feed(r *Recorder, cycles []fed) {
	var taskCycles [MaxTasks]uint64
	for now, c := range cycles {
		taskCycles[c.task]++
		r.Cycle(uint64(now), c.task, c.held, c.lines, &taskCycles)
	}
	r.Flush(uint64(len(cycles)))
}

func TestRecorderWakeupEdges(t *testing.T) {
	r := NewRecorder(Config{})
	feed(r, []fed{
		{task: 0, lines: 1},        // task 0's line is wired high
		{task: 0, lines: 1 | 1<<4}, // task 4 raises its line: edge
		{task: 0, lines: 1 | 1<<4}, // still up: no new edge
		{task: 4, lines: 1},        // task 4 runs (dropped its line)
		{task: 0, lines: 1 | 1<<4}, // second request: edge
		{task: 0, lines: 1 | 1<<4},
		{task: 4, lines: 1}, // runs two cycles after the edge again
	})
	if got := r.Wakeups(4); got != 2 {
		t.Errorf("task 4 wakeups = %d, want 2", got)
	}
	if got := r.Wakeups(0); got != 1 {
		t.Errorf("task 0 wakeups = %d, want 1 (boot edge)", got)
	}
	if got := r.WakeupsTotal(); got != 2 {
		t.Errorf("total = %d, want 2 (task 0 excluded)", got)
	}
	// Both wakeups ran 2 cycles after their edge.
	ws := r.WakeupToRun().Snapshot()
	if ws.Total != 2 || ws.Sum != 4 {
		t.Errorf("wakeup-to-run: total=%d sum=%d, want 2 and 4", ws.Total, ws.Sum)
	}
}

func TestRecorderHoldEpisodes(t *testing.T) {
	r := NewRecorder(Config{})
	feed(r, []fed{
		{task: 0, lines: 1},
		{task: 0, held: true, lines: 1},
		{task: 0, held: true, lines: 1},
		{task: 0, lines: 1},
		{task: 0, held: true, lines: 1}, // open at end of run: Flush closes
	})
	h := r.HoldLatency().Snapshot()
	if h.Total != 2 || h.Sum != 3 {
		t.Errorf("hold episodes: total=%d sum=%d, want 2 episodes, 3 held cycles", h.Total, h.Sum)
	}
}

func TestRecorderSpansAndTimeline(t *testing.T) {
	r := NewRecorder(Config{TimelineInterval: 4})
	feed(r, []fed{
		{task: 0, lines: 1}, {task: 0, lines: 1},
		{task: 4, lines: 1}, {task: 4, lines: 1}, {task: 4, lines: 1},
		{task: 0, lines: 1}, {task: 0, lines: 1}, {task: 0, lines: 1},
	})
	spans := r.Spans()
	want := []Span{{0, 0, 2}, {4, 2, 5}, {0, 5, 8}}
	if len(spans) != len(want) {
		t.Fatalf("spans = %v, want %v", spans, want)
	}
	for i := range want {
		if spans[i] != want[i] {
			t.Errorf("span %d = %v, want %v", i, spans[i], want[i])
		}
	}
	tl := r.Timeline()
	if len(tl) != 2 {
		t.Fatalf("timeline = %v, want 2 slices", tl)
	}
	if tl[0].Cycles[0] != 2 || tl[0].Cycles[4] != 2 {
		t.Errorf("slice 0 = %v", tl[0].Cycles)
	}
	if tl[1].Cycles[4] != 1 || tl[1].Cycles[0] != 3 {
		t.Errorf("slice 1 = %v", tl[1].Cycles)
	}
}

func TestRecorderSpanCap(t *testing.T) {
	r := NewRecorder(Config{MaxSpans: 2})
	cycles := make([]fed, 10)
	for i := range cycles {
		cycles[i] = fed{task: i % 2, lines: 1}
	}
	feed(r, cycles)
	if len(r.Spans()) != 2 {
		t.Errorf("%d spans stored, want cap 2", len(r.Spans()))
	}
	if r.SpansDropped() == 0 {
		t.Error("no drops counted")
	}
}

func TestRecorderReset(t *testing.T) {
	r := NewRecorder(Config{})
	feed(r, []fed{{task: 0, lines: 1}, {task: 3, held: true, lines: 1 << 3}})
	r.Reset()
	if r.WakeupsTotal() != 0 || len(r.Spans()) != 0 || len(r.Timeline()) != 0 ||
		r.HoldLatency().Count() != 0 {
		t.Error("reset left data behind")
	}
}

func TestWritePrometheus(t *testing.T) {
	var s Snapshot
	s.Add("dorado_cycles_total", "Simulated cycles.", "counter", Sample{Value: 42})
	s.Add("dorado_task_cycles_total", "Per-task cycles.", "counter",
		Sample{Label: TaskLabel(0), Value: 40}, Sample{Label: TaskLabel(4), Value: 2})
	h := NewHistogram([]uint64{1, 2})
	h.Observe(2)
	h.Observe(7)
	s.AddHistogram("dorado_hold_latency_cycles", "Hold episode lengths.", h.Snapshot())

	var b bytes.Buffer
	if err := WritePrometheus(&b, &s); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE dorado_cycles_total counter",
		"dorado_cycles_total 42",
		`dorado_task_cycles_total{task="4"} 2`,
		"# TYPE dorado_hold_latency_cycles histogram",
		`dorado_hold_latency_cycles_bucket{le="2"} 1`,
		`dorado_hold_latency_cycles_bucket{le="+Inf"} 2`,
		"dorado_hold_latency_cycles_sum 9",
		"dorado_hold_latency_cycles_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	r := NewRecorder(Config{TimelineInterval: 4})
	r.SetTaskName(4, "disk")
	feed(r, []fed{
		{task: 0, lines: 1}, {task: 0, lines: 1},
		{task: 4, lines: 1}, {task: 4, lines: 1},
		{task: 0, lines: 1},
	})
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, r); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, b.String())
	}
	var spans, meta int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			spans++
			if ev["name"] == "disk" {
				if ev["ts"] != 0.12 { // cycle 2 × 60 ns = 0.12 µs
					t.Errorf("disk span ts = %v, want 0.12", ev["ts"])
				}
			}
		case "M":
			meta++
		}
	}
	if spans != 3 {
		t.Errorf("%d span events, want 3", spans)
	}
	if meta < 3 { // process_name + ≥2 thread_name rows
		t.Errorf("%d metadata events", meta)
	}
}

func TestUsecFormatting(t *testing.T) {
	cases := map[uint64]string{0: "0.00", 1: "0.06", 2: "0.12", 17: "1.02", 1000: "60.00"}
	for cycles, want := range cases {
		if got := string(usec(cycles)); got != want {
			t.Errorf("usec(%d) = %q, want %q", cycles, got, want)
		}
	}
}

func TestDebugServer(t *testing.T) {
	var s Snapshot
	s.Add("dorado_cycles_total", "", "counter", Sample{Value: 7})
	d, err := ServeDebug("127.0.0.1:0", func() *Snapshot { return &s })
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + d.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, "dorado_cycles_total 7") {
		t.Errorf("/metrics = %q", out)
	}
	if out := get("/debug/vars"); !strings.Contains(out, "cmdline") {
		t.Errorf("/debug/vars = %.100q", out)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}

func TestTaskNameDefault(t *testing.T) {
	r := NewRecorder(Config{})
	if got := r.TaskName(11); got != "task 11" {
		t.Errorf("TaskName(11) = %q", got)
	}
	r.SetTaskName(11, "disk")
	if got := r.TaskName(11); got != "disk" {
		t.Errorf("TaskName(11) = %q", got)
	}
}

func ExampleWritePrometheus() {
	var s Snapshot
	s.Add("dorado_cycles_total", "Simulated cycles.", "counter", Sample{Value: 100})
	WritePrometheus(io.Discard, &s)
	fmt.Println("ok")
	// Output: ok
}
