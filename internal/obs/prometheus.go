package obs

import (
	"fmt"
	"io"
	"strconv"
)

// Sample is one labeled value of a metric. Label is the rendered label set
// ("" or a full `{name="value"}` clause) so the exporter stays a plain
// loop and the output is byte-deterministic in slice order.
type Sample struct {
	Label string
	Value uint64
}

// Metric is one exposition family: a counter/gauge with samples, or a
// histogram (plain, or a labeled vector like {op="run"}).
type Metric struct {
	Name string
	Help string
	Type string // "counter", "gauge", or "histogram"

	Samples []Sample           // counter/gauge
	Hist    *HistogramSnapshot // plain histogram
	Hists   []LabeledHistogram // histogram vector (one family, many label sets)
}

// LabeledHistogram is one member of a histogram vector: the rendered
// label pair ("op=\"run\"", no braces — it is merged with the le label)
// and the bucket data.
type LabeledHistogram struct {
	Label string
	Hist  HistogramSnapshot
}

// Snapshot is an ordered set of metric families — the document
// WritePrometheus renders. Builders (internal/trace.MetricsSnapshot, the
// facade) append families in a fixed order, so two identical runs export
// byte-identical text.
type Snapshot struct {
	Metrics []Metric
}

// Add appends a counter/gauge family.
func (s *Snapshot) Add(name, help, typ string, samples ...Sample) {
	s.Metrics = append(s.Metrics, Metric{Name: name, Help: help, Type: typ, Samples: samples})
}

// AddHistogram appends a histogram family.
func (s *Snapshot) AddHistogram(name, help string, h HistogramSnapshot) {
	s.Metrics = append(s.Metrics, Metric{Name: name, Help: help, Type: "histogram", Hist: &h})
}

// AddHistogramVec appends one histogram family with several label sets —
// a single # TYPE header, one bucket series per member (the Prometheus
// shape for dorado_fleet_op_*_us{op="run",le="…"}).
func (s *Snapshot) AddHistogramVec(name, help string, hists ...LabeledHistogram) {
	s.Metrics = append(s.Metrics, Metric{Name: name, Help: help, Type: "histogram", Hists: hists})
}

// TaskLabel renders the standard task label clause.
func TaskLabel(task int) string { return `{task="` + strconv.Itoa(task) + `"}` }

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers, one sample per line,
// histograms as cumulative le-labeled buckets with _sum and _count.
func WritePrometheus(w io.Writer, s *Snapshot) error {
	for _, m := range s.Metrics {
		if m.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Type); err != nil {
			return err
		}
		if m.Type == "histogram" {
			if m.Hist != nil {
				if err := writeHist(w, m.Name, "", m.Hist); err != nil {
					return err
				}
			}
			for i := range m.Hists {
				if err := writeHist(w, m.Name, m.Hists[i].Label, &m.Hists[i].Hist); err != nil {
					return err
				}
			}
			continue
		}
		for _, smp := range m.Samples {
			if _, err := fmt.Fprintf(w, "%s%s %d\n", m.Name, smp.Label, smp.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHist renders one histogram's bucket series. label is either "" or
// a rendered pair like `op="run"`, merged ahead of the le label (and onto
// the _sum/_count lines).
func writeHist(w io.Writer, name, label string, h *HistogramSnapshot) error {
	lePrefix, tail := "", ""
	if label != "" {
		lePrefix = label + ","
		tail = "{" + label + "}"
	}
	var cum uint64
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"%d\"} %d\n", name, lePrefix, b, cum); err != nil {
			return err
		}
	}
	cum += h.Counts[len(h.Bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, lePrefix, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n%s_count%s %d\n", name, tail, h.Sum, name, tail, h.Total); err != nil {
		return err
	}
	return nil
}
