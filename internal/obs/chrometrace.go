package obs

import (
	"encoding/json"
	"io"
	"strconv"
)

// cycleNS is the simulated cycle time the trace timeline is scaled by
// (60 ns, §1 of the paper; mirrors core.CycleNS without the import).
const cycleNS = 60

// traceEvent is one Chrome trace_event object. Field order is fixed, so
// json.Marshal output is byte-deterministic.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   json.Number    `json:"ts"`
	Dur  json.Number    `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceDoc is the trace_event JSON object format, which both
// chrome://tracing and Perfetto load.
type traceDoc struct {
	TraceEvents []traceEvent   `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData,omitempty"`
}

// usec renders a cycle count as a microsecond timestamp with two decimals
// (60 ns per cycle ⇒ multiples of 0.06 µs, so two decimals are exact).
// Integer math keeps the string — and therefore the export — byte-stable.
func usec(cycles uint64) json.Number {
	ns := cycles * cycleNS
	return json.Number(strconv.FormatUint(ns/1000, 10) + "." +
		pad2((ns%1000)/10))
}

func pad2(v uint64) string {
	if v < 10 {
		return "0" + strconv.FormatUint(v, 10)
	}
	return strconv.FormatUint(v, 10)
}

// WriteChromeTrace renders the recorder's scheduling spans and utilization
// timeline as Chrome trace_event JSON: one timeline row ("thread") per
// task, a duration event per scheduling span, and a counter track with the
// per-slice busy-cycle series. Load the file in chrome://tracing or
// https://ui.perfetto.dev to see the §6.2.1 task multiplexing laid out in
// time. Call Recorder.Flush first so the trailing span is closed.
func WriteChromeTrace(w io.Writer, r *Recorder) error {
	doc := traceDoc{
		TraceEvents: []traceEvent{},
		OtherData: map[string]any{
			"cycle_ns": cycleNS,
			"source":   "dorado simulator (internal/obs)",
		},
	}
	if dropped := r.SpansDropped(); dropped > 0 {
		doc.OtherData["spans_dropped"] = dropped
	}

	// Name the process and the task rows that actually appear.
	doc.TraceEvents = append(doc.TraceEvents, traceEvent{
		Name: "process_name", Ph: "M", Ts: "0", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "Dorado processor"},
	})
	var seen [MaxTasks]bool
	for _, sp := range r.Spans() {
		seen[sp.Task] = true
	}
	for t := 0; t < MaxTasks; t++ {
		if !seen[t] {
			continue
		}
		doc.TraceEvents = append(doc.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Ts: "0", Pid: 1, Tid: t,
			Args: map[string]any{"name": r.TaskName(t)},
		})
	}

	// Scheduling spans: complete ("X") events, one per processor tenancy.
	for _, sp := range r.Spans() {
		doc.TraceEvents = append(doc.TraceEvents, traceEvent{
			Name: r.TaskName(sp.Task), Cat: "task", Ph: "X",
			Ts: usec(sp.Start), Dur: usec(sp.End - sp.Start),
			Pid: 1, Tid: sp.Task,
			Args: map[string]any{"cycles": sp.End - sp.Start},
		})
	}

	// Utilization timeline: a counter ("C") series of busy cycles per task
	// over each sampling interval.
	for _, sl := range r.Timeline() {
		args := map[string]any{}
		for t := 0; t < MaxTasks; t++ {
			if sl.Cycles[t] != 0 {
				args[r.TaskName(t)] = sl.Cycles[t]
			}
		}
		if len(args) == 0 {
			continue
		}
		doc.TraceEvents = append(doc.TraceEvents, traceEvent{
			Name: "busy cycles", Cat: "utilization", Ph: "C",
			Ts: usec(sl.Start), Pid: 1, Tid: 0, Args: args,
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
