package prof

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"dorado/internal/core"
)

// Offline report rendering shared by cmd/profview and cmd/benchtab: top-N
// hot microaddresses, the abort-reason breakdown, and the hottest (and
// most-aborted) superblocks.

// Top returns the n hottest microaddresses by cycles (ties break by
// address, so the report is deterministic).
func Top(p *Profile, n int) []Addr {
	rows := append([]Addr(nil), p.Addrs...)
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Cycles != rows[j].Cycles {
			return rows[i].Cycles > rows[j].Cycles
		}
		return rows[i].Addr < rows[j].Addr
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// HottestBlocks returns the n superblocks that retired the most fused
// cycles (ties break by start address).
func HottestBlocks(p *Profile, n int) []Block {
	rows := append([]Block(nil), p.Blocks...)
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Cycles != rows[j].Cycles {
			return rows[i].Cycles > rows[j].Cycles
		}
		return rows[i].Start < rows[j].Start
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// ReasonCount is one row of the abort-reason breakdown.
type ReasonCount struct {
	Reason string
	Count  uint64
	Abort  bool
}

// Breakdown returns the block-exit reasons in enum order, zero rows
// omitted, with each reason's abort classification.
func Breakdown(p *Profile) []ReasonCount {
	var rows []ReasonCount
	for r := core.ExitReason(0); r < core.NumExitReasons; r++ {
		if n := p.Exits[r.String()]; n != 0 {
			rows = append(rows, ReasonCount{Reason: r.String(), Count: n, Abort: r.Abort()})
		}
	}
	return rows
}

// AbortRatio returns the fraction of block endings that were aborts
// (terminator never reached, guard rejections included) — the headline
// number for "why is this workload not speeding up".
func AbortRatio(p *Profile) float64 {
	var aborts, total uint64
	for _, row := range Breakdown(p) {
		total += row.Count
		if row.Abort {
			aborts += row.Count
		}
	}
	if total == 0 {
		return 0
	}
	return float64(aborts) / float64(total)
}

// WriteReport renders the human-readable profile report: totals, top-n hot
// microaddresses, the abort-reason breakdown, and the hottest blocks.
func WriteReport(w io.Writer, p *Profile, n int) error {
	if _, err := fmt.Fprintf(w, "cycles %d  executed %d  holds %d  stalls %d\n",
		p.Cycles, p.Executed, p.Holds, p.Cycles-p.Executed-p.Holds); err != nil {
		return err
	}

	if rows := Top(p, n); len(rows) > 0 {
		fmt.Fprintf(w, "\nTop %d microaddresses by cycles:\n", len(rows))
		fmt.Fprintf(w, "  %-6s %-24s %10s %6s %10s %10s\n", "addr", "symbol", "cycles", "%", "executed", "holds")
		for _, a := range rows {
			fmt.Fprintf(w, "  %-6s %-24s %10d %5.1f%% %10d %10d\n",
				a.Addr, a.Name, a.Cycles, pct(a.Cycles, p.Cycles), a.Executed, a.Holds)
		}
	}

	if rows := Breakdown(p); len(rows) > 0 {
		var total uint64
		for _, row := range rows {
			total += row.Count
		}
		fmt.Fprintf(w, "\nSuperblock exits (%d, %.1f%% aborts):\n", total, 100*AbortRatio(p))
		for _, row := range rows {
			kind := "exit"
			if row.Abort {
				kind = "abort"
			}
			fmt.Fprintf(w, "  %-14s %-5s %10d %5.1f%%\n", row.Reason, kind, row.Count, pct(row.Count, total))
		}
	}

	if rows := HottestBlocks(p, n); len(rows) > 0 {
		fmt.Fprintf(w, "\nHottest %d superblocks by fused cycles:\n", len(rows))
		fmt.Fprintf(w, "  %-6s %-24s %5s %10s %10s %s\n", "start", "symbol", "insts", "entries", "cycles", "top exits")
		for _, b := range rows {
			fmt.Fprintf(w, "  %-6s %-24s %5d %10d %10d %s\n",
				b.Start, b.Name, b.Instructions, b.Entries, b.Cycles, topExits(b.Exits, 3))
		}
	}
	return nil
}

func pct(n, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

// topExits renders a block's k most frequent exit reasons as
// "reason:count" pairs (count-descending, reason as tiebreak).
func topExits(exits map[string]uint64, k int) string {
	type kv struct {
		reason string
		count  uint64
	}
	rows := make([]kv, 0, len(exits))
	for r, n := range exits {
		rows = append(rows, kv{r, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].count != rows[j].count {
			return rows[i].count > rows[j].count
		}
		return rows[i].reason < rows[j].reason
	})
	if len(rows) > k {
		rows = rows[:k]
	}
	s := ""
	for i, row := range rows {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s:%d", row.reason, row.count)
	}
	return s
}

// WorkloadProfile is one workload's profile in a simbench -profile
// artifact.
type WorkloadProfile struct {
	ID      string   `json:"id"`
	Name    string   `json:"name"`
	Profile *Profile `json:"profile"`
}

// BenchReport is the simbench -profile artifact: one profile per §7 host
// workload, consumed by cmd/profview and cmd/benchtab.
type BenchReport struct {
	Cycles    uint64            `json:"cycles"` // cycles simulated per workload
	Workloads []WorkloadProfile `json:"workloads"`
}

// AbortTable renders a bench artifact as a workload × exit-reason table
// (percent of superblock exits per reason, every reason in enum order, and
// the abort ratio), the layout benchtab -profile prints. It reads the
// abort story across workloads at a glance — which §7 family's
// superblocks run to their static end, and which die on dispatch,
// scheduling, or memory holds.
func AbortTable(rep *BenchReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "superblock exit reasons, %% of exits (%d cycles per workload)\n", rep.Cycles)
	fmt.Fprintf(&b, "%-10s %8s", "workload", "exits")
	for r := core.ExitReason(0); r < core.NumExitReasons; r++ {
		fmt.Fprintf(&b, " %13s", r)
	}
	fmt.Fprintf(&b, " %7s\n", "aborts")
	for _, w := range rep.Workloads {
		var total uint64
		for _, n := range w.Profile.Exits {
			total += n
		}
		fmt.Fprintf(&b, "%-10s %8d", w.ID, total)
		for r := core.ExitReason(0); r < core.NumExitReasons; r++ {
			if n := w.Profile.Exits[r.String()]; n != 0 {
				fmt.Fprintf(&b, " %12.1f%%", pct(n, total))
			} else {
				fmt.Fprintf(&b, " %13s", "-")
			}
		}
		fmt.Fprintf(&b, " %6.1f%%\n", 100*AbortRatio(w.Profile))
	}
	return b.String()
}
