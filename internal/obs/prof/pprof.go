package prof

import (
	"compress/gzip"
	"io"
)

// This file serializes a Profile in the pprof profile.proto format so
// `go tool pprof` (and the pprof web UI) open Dorado microcode profiles
// directly. The encoder is a minimal hand-rolled protobuf writer — the
// format is stable and tiny (varints plus length-delimited fields), and
// the repo's no-new-dependencies rule rules out the protobuf module.
//
// The mapping onto pprof's model: each masm symbol becomes a synthetic
// Function (filename "microstore"), each microaddress a Location whose
// address is the microaddress and whose Line points at its symbol's
// Function with the offset as the line number. Samples are depth-1 stacks
// with three values — executed instructions, held cycles, total cycles —
// with cycles last, which pprof picks as the default sample type.

// profile.proto field numbers (github.com/google/pprof/proto/profile.proto).
const (
	profSampleType   = 1
	profSample       = 2
	profLocation     = 4
	profFunction     = 5
	profStringTable  = 6
	profPeriodType   = 11
	profPeriod       = 12
	profDefaultType  = 14
	valueTypeType    = 1
	valueTypeUnit    = 2
	sampleLocationID = 1
	sampleValue      = 2
	locationID       = 1
	locationAddress  = 3
	locationLine     = 4
	lineFunctionID   = 1
	lineLine         = 2
	functionID       = 1
	functionName     = 2
	functionSystem   = 3
	functionFilename = 4
)

// protoBuf is an append-only protobuf writer (proto3 semantics: zero
// values are simply not written).
type protoBuf struct{ b []byte }

func (p *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

// uintField writes a varint-typed field (wire type 0), omitting zeros.
func (p *protoBuf) uintField(field int, v uint64) {
	if v == 0 {
		return
	}
	p.varint(uint64(field)<<3 | 0)
	p.varint(v)
}

// bytesField writes a length-delimited field (wire type 2).
func (p *protoBuf) bytesField(field int, b []byte) {
	p.varint(uint64(field)<<3 | 2)
	p.varint(uint64(len(b)))
	p.b = append(p.b, b...)
}

// packedField writes a packed repeated varint field (wire type 2).
func (p *protoBuf) packedField(field int, vs ...uint64) {
	var inner protoBuf
	for _, v := range vs {
		inner.varint(v)
	}
	p.bytesField(field, inner.b)
}

// strings interns the pprof string table (index 0 must be "").
type strtab struct {
	index map[string]uint64
	table []string
}

func newStrings() *strtab {
	return &strtab{index: map[string]uint64{"": 0}, table: []string{""}}
}

func (s *strtab) id(str string) uint64 {
	if i, ok := s.index[str]; ok {
		return i
	}
	i := uint64(len(s.table))
	s.index[str] = i
	s.table = append(s.table, str)
	return i
}

func valueType(st *strtab, typ, unit string) []byte {
	var b protoBuf
	b.uintField(valueTypeType, st.id(typ))
	b.uintField(valueTypeUnit, st.id(unit))
	return b.b
}

// MarshalPprof renders the profile as uncompressed profile.proto bytes.
// Rows keep the Profile's address order, so the output is deterministic.
func MarshalPprof(p *Profile) []byte {
	st := newStrings()
	var out protoBuf

	out.bytesField(profSampleType, valueType(st, "executed", "instructions"))
	out.bytesField(profSampleType, valueType(st, "holds", "cycles"))
	out.bytesField(profSampleType, valueType(st, "cycles", "cycles"))

	// One Function per distinct row name. Profile names are already either
	// "SYMBOL+off" or bare addresses; strip the offset back off so pprof
	// aggregates by symbol and the offset lands in the line number.
	funcIDs := map[string]uint64{}
	var funcs protoBuf
	function := func(name string) uint64 {
		if id, ok := funcIDs[name]; ok {
			return id
		}
		id := uint64(len(funcIDs) + 1)
		funcIDs[name] = id
		var f protoBuf
		f.uintField(functionID, id)
		f.uintField(functionName, st.id(name))
		f.uintField(functionSystem, st.id(name))
		f.uintField(functionFilename, st.id("microstore"))
		funcs.bytesField(profFunction, f.b)
		return id
	}

	var locs, samples protoBuf
	for i, a := range p.Addrs {
		locID := uint64(i + 1)
		name, off := splitOffset(a.Name)
		var line protoBuf
		line.uintField(lineFunctionID, function(name))
		line.uintField(lineLine, uint64(off))
		var loc protoBuf
		loc.uintField(locationID, locID)
		loc.uintField(locationAddress, uint64(a.Addr))
		loc.bytesField(locationLine, line.b)
		locs.bytesField(profLocation, loc.b)

		var smp protoBuf
		smp.packedField(sampleLocationID, locID)
		smp.packedField(sampleValue, a.Executed, a.Holds, a.Cycles)
		samples.bytesField(profSample, smp.b)
	}

	out.b = append(out.b, samples.b...)
	out.b = append(out.b, locs.b...)
	out.b = append(out.b, funcs.b...)
	out.bytesField(profPeriodType, valueType(st, "cycles", "cycles"))
	out.uintField(profPeriod, 1)
	out.uintField(profDefaultType, st.id("cycles"))
	var tbl protoBuf
	for _, s := range st.table {
		tbl.bytesField(profStringTable, []byte(s))
	}
	out.b = append(out.b, tbl.b...)
	return out.b
}

// splitOffset splits "SYMBOL+off" into (SYMBOL, off); names without an
// offset (bare symbols, "page.word" addresses) return offset 0.
func splitOffset(name string) (string, int) {
	for i := len(name) - 1; i >= 0; i-- {
		c := name[i]
		if c == '+' {
			off := 0
			for _, d := range name[i+1:] {
				if d < '0' || d > '9' {
					return name, 0
				}
				off = off*10 + int(d-'0')
			}
			return name[:i], off
		}
		if c < '0' || c > '9' {
			break
		}
	}
	return name, 0
}

// WritePprof writes the profile as gzipped profile.proto — the on-wire
// format pprof tools expect from a profile endpoint.
func WritePprof(w io.Writer, p *Profile) error {
	gz := gzip.NewWriter(w)
	if _, err := gz.Write(MarshalPprof(p)); err != nil {
		return err
	}
	return gz.Close()
}
