package prof

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"dorado/internal/core"
	"dorado/internal/microcode"
	"dorado/internal/obs"
)

// testSnapshot is a small hand-built core snapshot: two routines, one
// superblock with mixed exits, two spans.
func testSnapshot() core.Snapshot {
	var exits, blkExits [core.NumExitReasons]uint64
	blkExits[core.ExitBranch] = 7
	blkExits[core.ExitTaskSwitch] = 2
	blkExits[core.ExitGuardFail] = 1
	exits = blkExits
	return core.Snapshot{
		Addrs: []core.AddrCount{
			{Addr: 0x10, Cycles: 100, Executed: 90, Holds: 10},
			{Addr: 0x11, Cycles: 50, Executed: 50},
			{Addr: 0x20, Cycles: 25, Executed: 20, Holds: 5},
		},
		Blocks: []core.BlockSnapshot{{
			Start: 0x10, Instructions: 4, Compiled: 1, Entries: 9, Cycles: 120,
			Exits:   blkExits,
			ExitPCs: []core.PCCount{{PC: 0x14, Count: 7}, {PC: 0x20, Count: 3}},
		}},
		Exits: exits,
		Spans: []core.BlockSpan{
			{Start: 40, Cycles: 12, Block: 0x10, Reason: core.ExitBranch},
			{Start: 60, Cycles: 8, Block: 0x10, Reason: core.ExitTaskSwitch},
		},
	}
}

func testSymbols() *SymbolTable {
	return NewSymbolTable(map[string]microcode.Addr{
		"LOOP": 0x10,
		"SVC":  0x20,
	})
}

func TestSymbolTable(t *testing.T) {
	st := testSymbols()
	for _, tc := range []struct {
		addr microcode.Addr
		want string
	}{
		{0x10, "LOOP"},
		{0x13, "LOOP+3"},
		{0x20, "SVC"},
		{0x25, "SVC+5"},
		{0x05, "00.5"}, // before the first symbol: bare address
	} {
		if got := st.Resolve(tc.addr); got != tc.want {
			t.Errorf("Resolve(%#x) = %q, want %q", tc.addr, got, tc.want)
		}
	}
	var nilTable *SymbolTable
	if got := nilTable.Resolve(0x21); got != "02.1" {
		t.Errorf("nil table Resolve = %q, want bare address", got)
	}
	// Two labels on one address resolve to the lexicographically smaller.
	st2 := NewSymbolTable(map[string]microcode.Addr{"B": 4, "A": 4})
	if got := st2.Resolve(4); got != "A" {
		t.Errorf("shared-address Resolve = %q, want A", got)
	}
}

func TestBuild(t *testing.T) {
	p := Build(testSnapshot(), testSymbols())
	if p.Cycles != 175 || p.Executed != 160 || p.Holds != 15 {
		t.Errorf("totals = %d/%d/%d, want 175/160/15", p.Cycles, p.Executed, p.Holds)
	}
	if len(p.Addrs) != 3 || p.Addrs[0].Name != "LOOP" || p.Addrs[1].Name != "LOOP+1" {
		t.Errorf("addr rows mis-named: %+v", p.Addrs)
	}
	if len(p.Blocks) != 1 || p.Blocks[0].Name != "LOOP" {
		t.Fatalf("block rows: %+v", p.Blocks)
	}
	b := p.Blocks[0]
	if b.Exits["branch"] != 7 || b.Exits["task_switch"] != 2 || b.Exits["guard_fail"] != 1 {
		t.Errorf("block exits = %v", b.Exits)
	}
	if len(b.ExitPCs) != 2 || b.ExitPCs[0].Name != "LOOP+4" || b.ExitPCs[1].Name != "SVC" {
		t.Errorf("exit PCs = %+v", b.ExitPCs)
	}
	if len(p.Spans) != 2 || p.Spans[1].Reason != "task_switch" || p.Spans[0].Name != "LOOP" {
		t.Errorf("spans = %+v", p.Spans)
	}
	// Marshal is deterministic.
	j1, _ := json.Marshal(p)
	j2, _ := json.Marshal(Build(testSnapshot(), testSymbols()))
	if !bytes.Equal(j1, j2) {
		t.Error("identical builds marshal differently")
	}
}

func TestMerge(t *testing.T) {
	a := Build(testSnapshot(), testSymbols())
	b := Build(testSnapshot(), testSymbols())
	m := Merge(a, b)
	if m.Cycles != 350 {
		t.Errorf("merged cycles = %d, want 350", m.Cycles)
	}
	if len(m.Addrs) != 3 || m.Addrs[0].Cycles != 200 {
		t.Errorf("merged addrs: %+v", m.Addrs)
	}
	if len(m.Blocks) != 1 || m.Blocks[0].Entries != 18 || m.Blocks[0].Exits["branch"] != 14 {
		t.Errorf("merged blocks: %+v", m.Blocks)
	}
	if m.Blocks[0].ExitPCs[0].Count != 14 {
		t.Errorf("merged exit PCs: %+v", m.Blocks[0].ExitPCs)
	}
	if len(m.Spans) != 0 {
		t.Error("merge kept spans across cycle domains")
	}
	if m.Exits["guard_fail"] != 2 {
		t.Errorf("merged exits: %v", m.Exits)
	}
	// Merging with nil members and empty profiles is fine.
	if m2 := Merge(nil, a, &Profile{}); m2.Cycles != a.Cycles {
		t.Errorf("merge with nil/empty = %d cycles, want %d", m2.Cycles, a.Cycles)
	}
}

func TestDiff(t *testing.T) {
	before := Build(testSnapshot(), testSymbols())
	after := Merge(before, before) // doubled counters = "later read"
	d := Diff(before, after)
	if d.Cycles != before.Cycles {
		t.Errorf("window cycles = %d, want %d", d.Cycles, before.Cycles)
	}
	if len(d.Addrs) != 3 || d.Addrs[0].Cycles != 100 {
		t.Errorf("window addrs: %+v", d.Addrs)
	}
	if d.Blocks[0].Exits["branch"] != 7 {
		t.Errorf("window block exits: %v", d.Blocks[0].Exits)
	}
	// Identical reads produce an empty window.
	z := Diff(before, before)
	if len(z.Addrs) != 0 || len(z.Blocks) != 0 || z.Cycles != 0 {
		t.Errorf("self-diff not empty: %+v", z)
	}
}

// scanProto walks top-level (field, wire) records of an encoded message.
func scanProto(t *testing.T, b []byte) map[int]int {
	t.Helper()
	counts := map[int]int{}
	for len(b) > 0 {
		tag, n := uvarint(b)
		if n <= 0 {
			t.Fatal("bad varint in encoding")
		}
		b = b[n:]
		field, wire := int(tag>>3), int(tag&7)
		counts[field]++
		switch wire {
		case 0:
			_, n := uvarint(b)
			b = b[n:]
		case 2:
			l, n := uvarint(b)
			b = b[n:]
			b = b[l:]
		default:
			t.Fatalf("unexpected wire type %d", wire)
		}
	}
	return counts
}

func uvarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b); i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, -1
}

func TestMarshalPprof(t *testing.T) {
	p := Build(testSnapshot(), testSymbols())
	raw := MarshalPprof(p)
	counts := scanProto(t, raw)
	if counts[1] != 3 {
		t.Errorf("%d sample types, want 3", counts[1])
	}
	if counts[2] != len(p.Addrs) {
		t.Errorf("%d samples, want %d", counts[2], len(p.Addrs))
	}
	if counts[4] != len(p.Addrs) {
		t.Errorf("%d locations, want %d", counts[4], len(p.Addrs))
	}
	if counts[5] != 2 { // LOOP and SVC
		t.Errorf("%d functions, want 2", counts[5])
	}
	if counts[6] == 0 {
		t.Error("no string table")
	}
	if !bytes.Contains(raw, []byte("LOOP")) || !bytes.Contains(raw, []byte("SVC")) {
		t.Error("symbol names missing from string table")
	}
	if !bytes.Equal(raw, MarshalPprof(p)) {
		t.Error("marshal not deterministic")
	}

	var gz bytes.Buffer
	if err := WritePprof(&gz, p); err != nil {
		t.Fatalf("WritePprof: %v", err)
	}
	zr, err := gzip.NewReader(&gz)
	if err != nil {
		t.Fatalf("output is not gzip: %v", err)
	}
	back, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	if !bytes.Equal(back, raw) {
		t.Error("gzip round trip mismatch")
	}
}

func TestSplitOffset(t *testing.T) {
	for _, tc := range []struct {
		in   string
		name string
		off  int
	}{
		{"LOOP", "LOOP", 0},
		{"LOOP+3", "LOOP", 3},
		{"LOOP+12", "LOOP", 12},
		{"02.1", "02.1", 0},
		{"A+B+2", "A+B", 2},
	} {
		name, off := splitOffset(tc.in)
		if name != tc.name || off != tc.off {
			t.Errorf("splitOffset(%q) = %q,%d want %q,%d", tc.in, name, off, tc.name, tc.off)
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	p := Build(testSnapshot(), testSymbols())
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, p); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	var spans int
	for _, ev := range doc.TraceEvents {
		if ev["cat"] == "superblock" {
			spans++
		}
	}
	if spans != 2 {
		t.Errorf("%d superblock events, want 2", spans)
	}
}

func TestAddMetrics(t *testing.T) {
	p := Build(testSnapshot(), testSymbols())
	var s obs.Snapshot
	AddMetrics(&s, `{session="s1"}`, p)
	var b bytes.Buffer
	if err := obs.WritePrometheus(&b, &s); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		`dorado_prof_cycles_total{session="s1"} 175`,
		`dorado_prof_block_exits_total{session="s1",reason="branch"} 7`,
		`dorado_prof_block_exits_total{session="s1",reason="guard_fail"} 1`,
		`dorado_prof_block_exits_total{session="s1",reason="ifujump"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Unlabeled form and determinism.
	var s2, s3 obs.Snapshot
	AddMetrics(&s2, "", p)
	AddMetrics(&s3, "", p)
	var b2, b3 bytes.Buffer
	obs.WritePrometheus(&b2, &s2)
	obs.WritePrometheus(&b3, &s3)
	if !bytes.Equal(b2.Bytes(), b3.Bytes()) {
		t.Error("exposition not deterministic")
	}
	if !strings.Contains(b2.String(), `dorado_prof_block_exits_total{reason="branch"} 7`) {
		t.Errorf("unlabeled exposition wrong:\n%s", b2.String())
	}
}

func TestReport(t *testing.T) {
	p := Build(testSnapshot(), testSymbols())
	rows := Top(p, 2)
	if len(rows) != 2 || rows[0].Addr != 0x10 {
		t.Errorf("Top: %+v", rows)
	}
	if got := AbortRatio(p); got < 0.29 || got > 0.31 { // 3 aborts of 10 endings
		t.Errorf("AbortRatio = %v, want 0.3", got)
	}
	br := Breakdown(p)
	if len(br) != 3 || br[0].Reason != "branch" || !br[1].Abort {
		t.Errorf("Breakdown: %+v", br)
	}
	var b bytes.Buffer
	if err := WriteReport(&b, p, 5); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	out := b.String()
	for _, want := range []string{"LOOP", "task_switch", "abort", "Hottest"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestAbortTable(t *testing.T) {
	rep := &BenchReport{
		Cycles: 1000,
		Workloads: []WorkloadProfile{
			{ID: "emulator", Name: "emu", Profile: Build(testSnapshot(), testSymbols())},
		},
	}
	out := AbortTable(rep)
	// One row per workload, every enum reason as a column, and a non-empty
	// abort percentage from the fixture's task_switch/hold exits.
	for _, want := range []string{"emulator", "ifujump", "task_switch", "guard_fail", "30.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("abort table missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "\n") != 3 { // header + column row + one workload
		t.Errorf("abort table rows:\n%s", out)
	}
}
