package prof

import (
	"encoding/json"
	"io"
	"strconv"
)

// Chrome-trace annotation of superblock spans: each recent block execution
// renders as a complete ("X") event on a "superblocks" row, named by the
// block's symbol and tagged with its exit reason — load next to the
// scheduler trace from obs.WriteChromeTrace to see exactly which events
// cut fused runs short. The structs mirror internal/obs's unexported
// trace_event encoding (obs cannot import this package's core dependency,
// so the few lines are duplicated rather than exported).

const cycleNS = 60 // simulated ns per cycle (§1)

type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   json.Number    `json:"ts"`
	Dur  json.Number    `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceDoc struct {
	TraceEvents []traceEvent   `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData,omitempty"`
}

// usec renders a cycle count as a microsecond timestamp with two exact
// decimals (60 ns per cycle ⇒ multiples of 0.06 µs).
func usec(cycles uint64) json.Number {
	ns := cycles * cycleNS
	frac := (ns % 1000) / 10
	s := strconv.FormatUint(ns/1000, 10) + "."
	if frac < 10 {
		s += "0"
	}
	return json.Number(s + strconv.FormatUint(frac, 10))
}

// WriteChromeTrace renders the profile's superblock spans as Chrome
// trace_event JSON: one row, one duration event per block execution, exit
// reason and fused cycle count in args. Loads in chrome://tracing and
// https://ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, p *Profile) error {
	doc := traceDoc{
		TraceEvents: []traceEvent{{
			Name: "process_name", Ph: "M", Ts: "0", Pid: 2, Tid: 0,
			Args: map[string]any{"name": "Dorado superblocks"},
		}, {
			Name: "thread_name", Ph: "M", Ts: "0", Pid: 2, Tid: 0,
			Args: map[string]any{"name": "superblocks"},
		}},
		OtherData: map[string]any{
			"cycle_ns": cycleNS,
			"source":   "dorado simulator (internal/obs/prof)",
		},
	}
	if p.SpansDropped > 0 {
		doc.OtherData["spans_dropped"] = p.SpansDropped
	}
	for _, sp := range p.Spans {
		doc.TraceEvents = append(doc.TraceEvents, traceEvent{
			Name: sp.Name, Cat: "superblock", Ph: "X",
			Ts: usec(sp.Start), Dur: usec(sp.Cycles), Pid: 2, Tid: 0,
			Args: map[string]any{
				"block":  sp.Block.String(),
				"cycles": sp.Cycles,
				"exit":   sp.Reason,
			},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
