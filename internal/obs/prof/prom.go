package prof

import (
	"dorado/internal/core"
	"dorado/internal/obs"
)

// AddMetrics appends the dorado_prof_* families for one profile to a
// Prometheus snapshot. label is a rendered label clause (`{session="s1"}`
// or "") applied to every sample; families append in a fixed order and the
// exit family emits every reason in enum order, so exposition stays
// byte-deterministic.
func AddMetrics(s *obs.Snapshot, label string, p *Profile) {
	s.Add("dorado_prof_cycles_total",
		"Cycles attributed to microaddresses by the profiler.",
		"counter", obs.Sample{Label: label, Value: p.Cycles})
	s.Add("dorado_prof_executed_total",
		"Completed microinstructions attributed by the profiler.",
		"counter", obs.Sample{Label: label, Value: p.Executed})
	s.Add("dorado_prof_holds_total",
		"Held cycles attributed by the profiler.",
		"counter", obs.Sample{Label: label, Value: p.Holds})
	s.Add("dorado_prof_blocks",
		"Distinct superblocks in the profile.",
		"gauge", obs.Sample{Label: label, Value: uint64(len(p.Blocks))})
	var entries, fused uint64
	for _, b := range p.Blocks {
		entries += b.Entries
		fused += b.Cycles
	}
	s.Add("dorado_prof_block_entries_total",
		"Superblock executions recorded by the profiler.",
		"counter", obs.Sample{Label: label, Value: entries})
	s.Add("dorado_prof_block_cycles_total",
		"Fused cycles retired inside superblocks.",
		"counter", obs.Sample{Label: label, Value: fused})
	exits := make([]obs.Sample, 0, int(core.NumExitReasons))
	for r := core.ExitReason(0); r < core.NumExitReasons; r++ {
		exits = append(exits, obs.Sample{
			Label: reasonLabel(label, r.String()),
			Value: p.Exits[r.String()],
		})
	}
	s.Add("dorado_prof_block_exits_total",
		"Superblock exits by reason (guard_fail counts rejected entries).",
		"counter", exits...)
	s.Add("dorado_prof_spans_dropped_total",
		"Superblock spans dropped from the bounded span ring.",
		"counter", obs.Sample{Label: label, Value: p.SpansDropped})
}

// reasonLabel merges a reason pair into an existing rendered label clause.
func reasonLabel(label, reason string) string {
	pair := `reason="` + reason + `"`
	if label == "" {
		return "{" + pair + "}"
	}
	// label is `{...}`: splice the reason pair before the closing brace.
	return label[:len(label)-1] + "," + pair + "}"
}
