// Package prof is the model half of the microarchitectural profiler: it
// turns a core.Profiler snapshot into a portable Profile — microaddresses
// named by masm symbols, superblock lifecycles with abort reasons — and
// exports it as JSON, pprof protobuf (WritePprof), Prometheus families
// (AddMetrics), and Chrome trace_event spans (WriteChromeTrace).
//
// A Profile is a value: Merge folds many (a fleet's sessions) into one,
// Diff subtracts a baseline (two reads of one live session bracket a
// window). Both drop the time-domain span ring, which only makes sense
// inside a single machine's cycle domain.
package prof

import (
	"sort"

	"dorado/internal/core"
	"dorado/internal/microcode"
)

// Addr is one microaddress's attribution row: every cycle the address
// occupied the processor, split into completed instructions, §5.7 holds,
// and (the remainder) DelayedBranch stall cycles.
type Addr struct {
	Addr     microcode.Addr `json:"addr"`
	Name     string         `json:"name"` // "SYMBOL+off", or "page.word" unsymbolized
	Cycles   uint64         `json:"cycles"`
	Executed uint64         `json:"executed"`
	Holds    uint64         `json:"holds"`
}

// PC is one (address, count) pair of a block's exit-PC histogram.
type PC struct {
	PC    microcode.Addr `json:"pc"`
	Name  string         `json:"name"`
	Count uint64         `json:"count"`
}

// Block is one superblock's lifecycle: how often it compiled, entered,
// and — the abort accounting — how each execution ended.
type Block struct {
	Start        microcode.Addr    `json:"start"`
	Name         string            `json:"name"`
	Instructions int               `json:"instructions"`
	Compiled     uint64            `json:"compiled"`
	Entries      uint64            `json:"entries"`
	Cycles       uint64            `json:"cycles"` // fused cycles retired inside
	Exits        map[string]uint64 `json:"exits"`  // reason name → count, zeros omitted
	ExitPCs      []PC              `json:"exit_pcs,omitempty"`
}

// Span is one superblock execution in time (machine cycles).
type Span struct {
	Start  uint64         `json:"start"`
	Cycles uint64         `json:"cycles"`
	Block  microcode.Addr `json:"block"`
	Name   string         `json:"name"`
	Reason string         `json:"reason"`
}

// Profile is the portable profile document. Rows are sorted by address, so
// two identical runs marshal byte-identically.
type Profile struct {
	Cycles   uint64            `json:"cycles"` // total attributed cycles
	Executed uint64            `json:"executed"`
	Holds    uint64            `json:"holds"`
	Addrs    []Addr            `json:"addrs"`
	Blocks   []Block           `json:"blocks,omitempty"`
	Exits    map[string]uint64 `json:"exits,omitempty"` // block exits by reason, all blocks
	Spans    []Span            `json:"spans,omitempty"` // recent block executions, oldest first
	// SpansDropped counts block executions that fell off the profiler's
	// bounded span ring before this profile was taken.
	SpansDropped uint64 `json:"spans_dropped,omitempty"`
}

// SymbolTable resolves microaddresses to masm symbol names: an address maps
// to the nearest preceding label plus offset, the convention debuggers use
// for stripped address spaces. Built once per program, used for every row.
type SymbolTable struct {
	addrs []microcode.Addr
	names []string
}

// NewSymbolTable builds a table from a masm symbol map (label → address).
// When two labels share an address the lexicographically smaller wins, so
// resolution is deterministic. A nil map yields an empty table: Resolve
// falls back to bare "page.word" addresses.
func NewSymbolTable(symbols map[string]microcode.Addr) *SymbolTable {
	names := make([]string, 0, len(symbols))
	for name := range symbols {
		names = append(names, name)
	}
	sort.Strings(names)
	t := &SymbolTable{}
	byAddr := map[microcode.Addr]string{}
	for _, name := range names {
		a := symbols[name]
		if _, taken := byAddr[a]; !taken {
			byAddr[a] = name
		}
	}
	for a := range byAddr {
		t.addrs = append(t.addrs, a)
	}
	sort.Slice(t.addrs, func(i, j int) bool { return t.addrs[i] < t.addrs[j] })
	t.names = make([]string, len(t.addrs))
	for i, a := range t.addrs {
		t.names[i] = byAddr[a]
	}
	return t
}

// Locate returns the nearest symbol at or before a and the offset from it.
// ok is false when no symbol precedes a (or the table is empty).
func (t *SymbolTable) Locate(a microcode.Addr) (name string, offset int, ok bool) {
	if t == nil {
		return "", 0, false
	}
	i := sort.Search(len(t.addrs), func(i int) bool { return t.addrs[i] > a }) - 1
	if i < 0 {
		return "", 0, false
	}
	return t.names[i], int(a - t.addrs[i]), true
}

// Resolve renders a as "SYMBOL" / "SYMBOL+off", or "page.word" when no
// symbol precedes it.
func (t *SymbolTable) Resolve(a microcode.Addr) string {
	name, off, ok := t.Locate(a)
	if !ok {
		return a.String()
	}
	if off == 0 {
		return name
	}
	return name + "+" + itoa(off)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Build turns a core profiler snapshot into a Profile, naming every row
// through the symbol table (nil is allowed: rows keep bare addresses).
func Build(s core.Snapshot, symbols *SymbolTable) *Profile {
	p := &Profile{}
	for _, a := range s.Addrs {
		p.Cycles += a.Cycles
		p.Executed += a.Executed
		p.Holds += a.Holds
		p.Addrs = append(p.Addrs, Addr{
			Addr: a.Addr, Name: symbols.Resolve(a.Addr),
			Cycles: a.Cycles, Executed: a.Executed, Holds: a.Holds,
		})
	}
	for _, b := range s.Blocks {
		blk := Block{
			Start: b.Start, Name: symbols.Resolve(b.Start),
			Instructions: b.Instructions, Compiled: b.Compiled,
			Entries: b.Entries, Cycles: b.Cycles,
			Exits: reasonMap(b.Exits),
		}
		for _, pc := range b.ExitPCs {
			blk.ExitPCs = append(blk.ExitPCs, PC{
				PC: pc.PC, Name: symbols.Resolve(pc.PC), Count: pc.Count,
			})
		}
		p.Blocks = append(p.Blocks, blk)
	}
	p.Exits = reasonMap(s.Exits)
	for _, sp := range s.Spans {
		p.Spans = append(p.Spans, Span{
			Start: sp.Start, Cycles: sp.Cycles, Block: sp.Block,
			Name: symbols.Resolve(sp.Block), Reason: sp.Reason.String(),
		})
	}
	p.SpansDropped = s.SpansDropped
	return p
}

// reasonMap renders a per-reason counter array as a name-keyed map with
// zero entries omitted (nil when all are zero).
func reasonMap(exits [core.NumExitReasons]uint64) map[string]uint64 {
	var m map[string]uint64
	for r, n := range exits {
		if n == 0 {
			continue
		}
		if m == nil {
			m = map[string]uint64{}
		}
		m[core.ExitReason(r).String()] = n
	}
	return m
}

// Merge folds profiles into one: counters sum by address and block start;
// names come from the first profile naming the row. Spans are dropped —
// cycle timestamps from different machines share no clock. Merging a fleet
// session-by-session in a fixed order is deterministic.
func Merge(profiles ...*Profile) *Profile {
	addrs := map[microcode.Addr]*Addr{}
	blocks := map[microcode.Addr]*Block{}
	out := &Profile{}
	for _, p := range profiles {
		if p == nil {
			continue
		}
		out.Cycles += p.Cycles
		out.Executed += p.Executed
		out.Holds += p.Holds
		out.SpansDropped += p.SpansDropped
		for _, a := range p.Addrs {
			row := addrs[a.Addr]
			if row == nil {
				c := a
				addrs[a.Addr] = &c
				continue
			}
			row.Cycles += a.Cycles
			row.Executed += a.Executed
			row.Holds += a.Holds
		}
		for _, b := range p.Blocks {
			row := blocks[b.Start]
			if row == nil {
				c := b
				c.Exits = copyMap(b.Exits)
				c.ExitPCs = append([]PC(nil), b.ExitPCs...)
				blocks[b.Start] = &c
				continue
			}
			row.Compiled += b.Compiled
			row.Entries += b.Entries
			row.Cycles += b.Cycles
			if row.Instructions < b.Instructions {
				row.Instructions = b.Instructions
			}
			row.Exits = addMap(row.Exits, b.Exits)
			row.ExitPCs = addPCs(row.ExitPCs, b.ExitPCs)
		}
		out.Exits = addMap(out.Exits, p.Exits)
	}
	for _, a := range sortedAddrKeys(addrs) {
		out.Addrs = append(out.Addrs, *addrs[a])
	}
	for _, a := range sortedBlockKeys(blocks) {
		out.Blocks = append(out.Blocks, *blocks[a])
	}
	return out
}

// Diff returns after minus before: the window profile between two reads of
// one session's monotonically growing counters. Rows that vanish entirely
// are omitted; counts saturate at zero (a Reset between reads shows as a
// small, not negative, window). Spans are dropped.
func Diff(before, after *Profile) *Profile {
	baseAddr := map[microcode.Addr]Addr{}
	for _, a := range before.Addrs {
		baseAddr[a.Addr] = a
	}
	baseBlock := map[microcode.Addr]Block{}
	for _, b := range before.Blocks {
		baseBlock[b.Start] = b
	}
	out := &Profile{
		Cycles:   sub(after.Cycles, before.Cycles),
		Executed: sub(after.Executed, before.Executed),
		Holds:    sub(after.Holds, before.Holds),
	}
	for _, a := range after.Addrs {
		base := baseAddr[a.Addr]
		d := Addr{
			Addr: a.Addr, Name: a.Name,
			Cycles:   sub(a.Cycles, base.Cycles),
			Executed: sub(a.Executed, base.Executed),
			Holds:    sub(a.Holds, base.Holds),
		}
		if d.Cycles != 0 || d.Executed != 0 || d.Holds != 0 {
			out.Addrs = append(out.Addrs, d)
		}
	}
	for _, b := range after.Blocks {
		base := baseBlock[b.Start]
		d := Block{
			Start: b.Start, Name: b.Name, Instructions: b.Instructions,
			Compiled: sub(b.Compiled, base.Compiled),
			Entries:  sub(b.Entries, base.Entries),
			Cycles:   sub(b.Cycles, base.Cycles),
			Exits:    subMap(b.Exits, base.Exits),
		}
		basePCs := map[microcode.Addr]uint64{}
		for _, pc := range base.ExitPCs {
			basePCs[pc.PC] = pc.Count
		}
		for _, pc := range b.ExitPCs {
			if n := sub(pc.Count, basePCs[pc.PC]); n != 0 {
				d.ExitPCs = append(d.ExitPCs, PC{PC: pc.PC, Name: pc.Name, Count: n})
			}
		}
		if d.Compiled != 0 || d.Entries != 0 || d.Cycles != 0 || len(d.Exits) != 0 {
			out.Blocks = append(out.Blocks, d)
		}
	}
	out.Exits = subMap(after.Exits, before.Exits)
	return out
}

func sub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

func copyMap(m map[string]uint64) map[string]uint64 {
	if m == nil {
		return nil
	}
	c := make(map[string]uint64, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func addMap(dst, src map[string]uint64) map[string]uint64 {
	if len(src) == 0 {
		return dst
	}
	if dst == nil {
		dst = map[string]uint64{}
	}
	for k, v := range src {
		dst[k] += v
	}
	return dst
}

func subMap(a, b map[string]uint64) map[string]uint64 {
	var out map[string]uint64
	for k, v := range a {
		if n := sub(v, b[k]); n != 0 {
			if out == nil {
				out = map[string]uint64{}
			}
			out[k] = n
		}
	}
	return out
}

func sortedAddrKeys(m map[microcode.Addr]*Addr) []microcode.Addr {
	keys := make([]microcode.Addr, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func sortedBlockKeys(m map[microcode.Addr]*Block) []microcode.Addr {
	keys := make([]microcode.Addr, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func addPCs(dst, src []PC) []PC {
	counts := map[microcode.Addr]PC{}
	for _, pc := range dst {
		counts[pc.PC] = pc
	}
	for _, pc := range src {
		row, ok := counts[pc.PC]
		if !ok {
			counts[pc.PC] = pc
			continue
		}
		row.Count += pc.Count
		counts[pc.PC] = row
	}
	keys := make([]microcode.Addr, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]PC, 0, len(keys))
	for _, k := range keys {
		out = append(out, counts[k])
	}
	return out
}
