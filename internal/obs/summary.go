package obs

import "strconv"

// This file is the JSON face of a Recorder: a Summary condenses the
// counters, histograms, and utilization timeline into a document small
// enough to serve from an HTTP endpoint (the fleet's
// GET /v1/sessions/{id}/obs) without shipping every recorded span. The
// Chrome-trace export (chrometrace.go) remains the full-fidelity view;
// the Summary is the at-a-glance one.

// BucketCount is one histogram bucket in a Summary: the number of samples
// at or below Le ("+Inf" for the overflow bucket). Counts are
// per-bucket, not cumulative — the JSON reader sums if it wants CDFs.
type BucketCount struct {
	Le    string `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramSummary is the JSON shape of one histogram: totals, mean, and
// the non-empty buckets.
type HistogramSummary struct {
	Count   uint64        `json:"count"`
	Sum     uint64        `json:"sum"`
	Mean    float64       `json:"mean"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// SummarizeHistogram condenses a histogram into its JSON summary,
// dropping empty buckets.
func SummarizeHistogram(h *Histogram) HistogramSummary {
	sn := h.Snapshot()
	s := HistogramSummary{Count: sn.Total, Sum: sn.Sum}
	if sn.Total > 0 {
		s.Mean = float64(sn.Sum) / float64(sn.Total)
	}
	for i, c := range sn.Counts {
		if c == 0 {
			continue
		}
		le := "+Inf"
		if i < len(sn.Bounds) {
			le = strconv.FormatUint(sn.Bounds[i], 10)
		}
		s.Buckets = append(s.Buckets, BucketCount{Le: le, Count: c})
	}
	return s
}

// TaskCount is one per-task counter sample in a Summary.
type TaskCount struct {
	Task  int    `json:"task"`
	Name  string `json:"name"`
	Count uint64 `json:"count"`
}

// Summary is the condensed JSON view of a Recorder: wakeup counters, the
// two latency histograms, and the utilization timeline rolled up to
// per-task busy-cycle totals. Build one with Summarize.
type Summary struct {
	// Wakeups lists rising wakeup-line edges per task (nonzero tasks only).
	Wakeups []TaskCount `json:"wakeups,omitempty"`
	// WakeupsTotal sums the per-task edges, excluding task 0 (wired high).
	WakeupsTotal uint64 `json:"wakeups_total"`
	// HoldLatency is the hold-episode-length histogram (§5.7), in cycles.
	HoldLatency HistogramSummary `json:"hold_latency"`
	// WakeupToRun is the wakeup-edge-to-first-run histogram (§5.4), in
	// cycles; 2 is the paper's undisturbed case.
	WakeupToRun HistogramSummary `json:"wakeup_to_run"`
	// Utilization is the timeline rolled up: busy cycles per task summed
	// over every recorded slice (nonzero tasks only).
	Utilization []TaskCount `json:"utilization,omitempty"`
	// TimelineInterval is the sampling period in cycles; Slices is how
	// many samples the timeline holds, Spans how many scheduling spans.
	TimelineInterval uint64 `json:"timeline_interval"`
	Slices           int    `json:"slices"`
	Spans            int    `json:"spans"`
	// SpansDropped and SlicesLost count data shed to the buffer caps.
	SpansDropped uint64 `json:"spans_dropped,omitempty"`
	SlicesLost   uint64 `json:"slices_lost,omitempty"`
}

// Summarize condenses the recorder's collected data. Like Spans and
// Timeline it is export-only: call while the machine is paused, after
// Flush, so the tail span and open hold episode are accounted for.
func Summarize(r *Recorder) Summary {
	s := Summary{
		WakeupsTotal:     r.WakeupsTotal(),
		HoldLatency:      SummarizeHistogram(r.HoldLatency()),
		WakeupToRun:      SummarizeHistogram(r.WakeupToRun()),
		TimelineInterval: r.TimelineInterval(),
		Slices:           len(r.Timeline()),
		Spans:            len(r.Spans()),
		SpansDropped:     r.SpansDropped(),
		SlicesLost:       r.slicesLost.Load(),
	}
	var busy [MaxTasks]uint64
	for _, sl := range r.Timeline() {
		for t := 0; t < MaxTasks; t++ {
			busy[t] += uint64(sl.Cycles[t])
		}
	}
	for t := 0; t < MaxTasks; t++ {
		if w := r.Wakeups(t); w != 0 {
			s.Wakeups = append(s.Wakeups, TaskCount{Task: t, Name: r.TaskName(t), Count: w})
		}
		if busy[t] != 0 {
			s.Utilization = append(s.Utilization, TaskCount{Task: t, Name: r.TaskName(t), Count: busy[t]})
		}
	}
	return s
}
