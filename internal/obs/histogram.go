package obs

import "sync/atomic"

// HoldLatencyBounds bucket the length of hold episodes in cycles. The
// paper's Table 3 puts typical holds at a few cycles (cache hit wait) with
// a tail out to storage-miss latency, so the buckets are fine-grained low
// and exponential high.
var HoldLatencyBounds = []uint64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 128, 256}

// WakeupBounds bucket wakeup-to-run latency in cycles. The claim under
// test (§5.4) is that an undisturbed wakeup reaches execution in exactly
// two cycles, so every small value gets its own bucket.
var WakeupBounds = []uint64{1, 2, 3, 4, 5, 6, 8, 12, 16, 32, 64, 128}

// Histogram is a fixed-bucket cumulative histogram over uint64 samples.
// Observe is single-writer (the hot loop); the atomic buckets let a
// concurrent exporter read monotonic values mid-run.
type Histogram struct {
	bounds []uint64 // upper bounds, ascending; an implicit +Inf bucket follows
	counts []atomic.Uint64
	sum    atomic.Uint64
	total  atomic.Uint64
}

// NewHistogram builds a histogram with the given ascending upper bounds.
func NewHistogram(bounds []uint64) Histogram {
	return Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// Reset zeroes all buckets.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sum.Store(0)
	h.total.Store(0)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Mean returns the average sample, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Bounds returns the bucket upper bounds (excluding the implicit +Inf).
func (h *Histogram) Bounds() []uint64 { return h.bounds }

// BucketCount returns the sample count of bucket i (i == len(Bounds())
// addresses the +Inf bucket).
func (h *Histogram) BucketCount(i int) uint64 { return h.counts[i].Load() }

// HistogramSnapshot is a point-in-time copy for exporters.
type HistogramSnapshot struct {
	Bounds []uint64 // ascending upper bounds; +Inf bucket is implicit
	Counts []uint64 // len(Bounds)+1 per-bucket counts
	Sum    uint64
	Total  uint64
}

// Snapshot copies the histogram. With the single-writer model the copy is
// coherent whenever the writer is between cycles; mid-run it is monotone
// but buckets may trail the totals by one sample.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum.Load(),
		Total:  h.total.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}
