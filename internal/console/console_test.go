package console

import (
	"bytes"
	"strings"
	"testing"

	"dorado/internal/core"
	"dorado/internal/masm"
	"dorado/internal/microcode"
)

func debugMachine(t *testing.T) (*Debugger, *masm.Program) {
	t.Helper()
	p, err := masm.AssembleText(`
start:  ff=count=9
loop:   alu=a+1 a=t lc=t
        br count,done,loop
done:   const=0x2A alu=b lc=rm r=1
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.Load(&p.Words)
	m.Start(p.MustEntry("start"))
	return New(m, p), p
}

func TestBreakpointByLabel(t *testing.T) {
	d, p := debugMachine(t)
	if _, err := d.Break("done"); err != nil {
		t.Fatal(err)
	}
	msg := d.Run(10_000)
	if !strings.Contains(msg, "breakpoint") || !strings.Contains(msg, "done") {
		t.Fatalf("run stopped with %q", msg)
	}
	if d.M.CurPC() != p.MustEntry("done") {
		t.Fatalf("stopped at %v", d.M.CurPC())
	}
	// The loop ran to completion before the break.
	if d.M.T(0) != 10 {
		t.Errorf("T = %d at breakpoint", d.M.T(0))
	}
	// Continuing past the breakpoint requires a step first.
	d.Step(1)
	msg = d.Run(10_000)
	if !strings.Contains(msg, "halted") {
		t.Fatalf("second run: %q", msg)
	}
	if d.M.RM(1) != 0x2A {
		t.Errorf("RM1 = %#x after halt", d.M.RM(1))
	}
}

func TestBreakpointByAddressForms(t *testing.T) {
	d, p := debugMachine(t)
	a := p.MustEntry("loop")
	// page.word form.
	if _, err := d.Break(a.String()); err != nil {
		t.Fatalf("page.word form: %v", err)
	}
	if err := d.Clear(a.String()); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Break("zzz"); err == nil {
		t.Error("unknown label should fail")
	}
}

func TestExecCommands(t *testing.T) {
	d, _ := debugMachine(t)
	var out bytes.Buffer
	cmds := []string{
		"b done",
		"breaks",
		"run",
		"regs",
		"where",
		"stack",
		"tasks",
		"step 1",
		"run 100",
		"mem 0 4",
	}
	for _, c := range cmds {
		if err := d.Exec(c, &out); err != nil {
			t.Fatalf("%q: %v", c, err)
		}
	}
	s := out.String()
	for _, want := range []string{"breakpoint at", "T=000a", "halted", "task 0"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if err := d.Exec("bogus", &out); err == nil {
		t.Error("unknown command should error")
	}
	if err := d.Exec("", &out); err != nil {
		t.Error("blank line should be ignored")
	}
}

func TestREPL(t *testing.T) {
	d, _ := debugMachine(t)
	in := strings.NewReader("b done\nrun\nregs\nq\n")
	var out bytes.Buffer
	d.REPL(in, &out)
	if !strings.Contains(out.String(), "breakpoint") {
		t.Fatalf("REPL output:\n%s", out.String())
	}
}

func TestResolveNumeric(t *testing.T) {
	d, _ := debugMachine(t)
	a, err := d.resolve("12A")
	if err != nil || a != microcode.Addr(0x12A) {
		t.Fatalf("hex resolve: %v %v", a, err)
	}
	a, err = d.resolve("0F.3")
	if err != nil || a != microcode.MakeAddr(0x0F, 3) {
		t.Fatalf("page.word resolve: %v %v", a, err)
	}
}
