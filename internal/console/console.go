// Package console is the debugging face of the simulated Dorado — the
// role of the machine's console microcomputer (§6.2: "an interface to a
// console and monitoring microcomputer which is used for initialization
// and debugging", talking to the processor through CPREG). It provides
// microstore breakpoints, single-stepping, register and memory inspection,
// and a small command language usable from tests, tools, or a terminal.
package console

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"dorado/internal/core"
	"dorado/internal/masm"
	"dorado/internal/microcode"
)

// Debugger drives a Machine under inspection.
type Debugger struct {
	M    *core.Machine
	prog *masm.Program // optional: symbols and listing

	breaks map[microcode.Addr]bool
}

// New wraps a machine; prog may be nil (no symbols).
func New(m *core.Machine, prog *masm.Program) *Debugger {
	return &Debugger{M: m, prog: prog, breaks: map[microcode.Addr]bool{}}
}

// Break sets a breakpoint at a label or numeric address ("12A" hex or
// "page.word" forms are accepted).
func (d *Debugger) Break(where string) (microcode.Addr, error) {
	a, err := d.resolve(where)
	if err != nil {
		return 0, err
	}
	d.breaks[a] = true
	return a, nil
}

// Clear removes a breakpoint.
func (d *Debugger) Clear(where string) error {
	a, err := d.resolve(where)
	if err != nil {
		return err
	}
	delete(d.breaks, a)
	return nil
}

// resolve turns a label or address string into a microstore address.
func (d *Debugger) resolve(where string) (microcode.Addr, error) {
	if d.prog != nil {
		if a, err := d.prog.Entry(where); err == nil {
			return a, nil
		}
	}
	s := where
	if page, word, ok := strings.Cut(s, "."); ok {
		p, err1 := strconv.ParseUint(page, 16, 8)
		w, err2 := strconv.ParseUint(word, 16, 8)
		if err1 == nil && err2 == nil && w < microcode.PageSize {
			return microcode.MakeAddr(uint8(p), uint8(w)), nil
		}
	}
	if v, err := strconv.ParseUint(s, 16, 16); err == nil && v < microcode.StoreSize {
		return microcode.Addr(v), nil
	}
	return 0, fmt.Errorf("console: cannot resolve %q (no such label; addresses are hex or page.word)", where)
}

// symbol returns the best label for an address.
func (d *Debugger) symbol(a microcode.Addr) string {
	if d.prog == nil {
		return ""
	}
	var names []string
	for n, na := range d.prog.Symbols {
		if na == a {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) > 0 {
		return names[0]
	}
	return ""
}

// Run executes until a breakpoint, Halt, or the cycle budget. It returns
// the reason it stopped.
func (d *Debugger) Run(maxCycles uint64) string {
	limit := d.M.Cycle() + maxCycles
	for d.M.Cycle() < limit {
		if d.M.Halted() {
			return fmt.Sprintf("halted at %v after %d cycles", d.M.HaltPC(), d.M.Cycle())
		}
		if d.breaks[d.M.CurPC()] {
			return fmt.Sprintf("breakpoint at %s", d.where())
		}
		d.M.Step()
	}
	return fmt.Sprintf("cycle budget exhausted at %s", d.where())
}

// Step executes n cycles (stopping early at Halt).
func (d *Debugger) Step(n int) {
	for i := 0; i < n && !d.M.Halted(); i++ {
		d.M.Step()
	}
}

// where describes the current position.
func (d *Debugger) where() string {
	a := d.M.CurPC()
	if s := d.symbol(a); s != "" {
		return fmt.Sprintf("%v (%s), task %d, cycle %d", a, s, d.M.CurTask(), d.M.Cycle())
	}
	return fmt.Sprintf("%v, task %d, cycle %d", a, d.M.CurTask(), d.M.Cycle())
}

// Exec runs one debugger command, writing its output to w:
//
//	b WHERE        set a breakpoint (label, hex address, or page.word)
//	d WHERE        delete a breakpoint
//	run [N]        run up to N cycles (default 1000000) or to break/halt
//	step [N]       execute N cycles (default 1)
//	where          show the next instruction
//	regs           show the data-section registers
//	tasks          show per-task cycles and TPCs
//	mem ADDR [N]   dump N memory words at hex VA (default 8)
//	stack          show the hardware stack
//	breaks         list breakpoints
func (d *Debugger) Exec(line string, w io.Writer) error {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	arg := func(i int, def uint64) uint64 {
		if len(fields) > i {
			if v, err := strconv.ParseUint(fields[i], 0, 64); err == nil {
				return v
			}
		}
		return def
	}
	switch fields[0] {
	case "b", "break":
		if len(fields) < 2 {
			return fmt.Errorf("console: b needs a location")
		}
		a, err := d.Break(fields[1])
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "breakpoint at %v\n", a)
	case "d", "delete":
		if len(fields) < 2 {
			return fmt.Errorf("console: d needs a location")
		}
		return d.Clear(fields[1])
	case "run":
		fmt.Fprintln(w, d.Run(arg(1, 1_000_000)))
	case "step", "s":
		d.Step(int(arg(1, 1)))
		fmt.Fprintln(w, d.where())
	case "where", "w":
		fmt.Fprintf(w, "%s\n  %v\n", d.where(), d.currentWord())
	case "regs", "r":
		d.regs(w)
	case "tasks":
		d.tasks(w)
	case "mem":
		if len(fields) < 2 {
			return fmt.Errorf("console: mem needs an address")
		}
		va, err := strconv.ParseUint(fields[1], 16, 32)
		if err != nil {
			return fmt.Errorf("console: bad address %q", fields[1])
		}
		n := arg(2, 8)
		for i := uint64(0); i < n; i++ {
			fmt.Fprintf(w, "%06x: %04x\n", va+i, d.M.Mem().Peek(uint32(va+i)))
		}
	case "stack":
		depth := int(d.M.StackPtr() & 0x3F)
		fmt.Fprintf(w, "STKP=%d:", d.M.StackPtr())
		for i := 1; i <= depth; i++ {
			fmt.Fprintf(w, " %04x", d.M.Stack(i))
		}
		fmt.Fprintln(w)
	case "breaks":
		var as []microcode.Addr
		for a := range d.breaks {
			as = append(as, a)
		}
		sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
		for _, a := range as {
			fmt.Fprintf(w, "%v %s\n", a, d.symbol(a))
		}
	default:
		return fmt.Errorf("console: unknown command %q", fields[0])
	}
	return nil
}

func (d *Debugger) currentWord() microcode.Word {
	if d.prog != nil {
		return d.prog.Words[d.M.CurPC()]
	}
	return microcode.Word{}
}

func (d *Debugger) regs(w io.Writer) {
	m := d.M
	fmt.Fprintf(w, "T=%04x Q=%04x COUNT=%d RBASE=%d MEMBASE=%d STKP=%02x SHIFTCTL=%04x CPREG=%04x\n",
		m.T(m.CurTask()), m.Q(), m.Count(), m.RBase(), m.MemBase(),
		m.StackPtr(), m.ShiftCtl(), m.CPReg())
	for row := 0; row < 2; row++ {
		fmt.Fprintf(w, "RM%02d:", row*8)
		for i := 0; i < 8; i++ {
			fmt.Fprintf(w, " %04x", m.RM(row*8+i))
		}
		fmt.Fprintln(w)
	}
}

func (d *Debugger) tasks(w io.Writer) {
	st := d.M.Stats()
	for t := 0; t < core.NumTasks; t++ {
		if st.TaskCycles[t] == 0 && d.M.TPC(t) == 0 {
			continue
		}
		marker := " "
		if t == d.M.CurTask() {
			marker = "*"
		}
		fmt.Fprintf(w, "%s task %-2d tpc=%v cycles=%d (%.1f%%)\n",
			marker, t, d.M.TPC(t), st.TaskCycles[t], 100*st.Utilization(t))
	}
}

// REPL reads commands from r until EOF or "q".
func (d *Debugger) REPL(r io.Reader, w io.Writer) {
	sc := bufio.NewScanner(r)
	fmt.Fprint(w, "> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "q" || line == "quit" {
			return
		}
		if err := d.Exec(line, w); err != nil {
			fmt.Fprintln(w, err)
		}
		fmt.Fprint(w, "> ")
	}
}
