package mesac

import (
	"fmt"
	"strconv"
)

// expr compiles one expression, leaving its value on the evaluation stack.
// Precedence, loosest first: comparisons; | ^; &; + -; <<; unary -.
func (c *compiler) expr() error {
	if err := c.bitOr(); err != nil {
		return err
	}
	if c.toks[c.pos].kind != tkPunct {
		return nil
	}
	op := c.toks[c.pos].text
	switch op {
	case "==", "!=", "<", ">", "<=", ">=":
		c.pos++
		// For > and <= we evaluate the operands in swapped order so that
		// every comparison reduces to "difference, test".
		if op == ">" || op == "<=" {
			// need rhs; lhs on the stack: compile rhs first is impossible
			// now (lhs already emitted) — instead compute lhs-rhs and pick
			// the test accordingly below.
		}
		if err := c.bitOr(); err != nil {
			return err
		}
		c.asm.Op("SUB") // lhs - rhs
		t, e := c.newLabel("ct"), c.newLabel("ce")
		emit01 := func(onTaken, onFall uint8, jump string) {
			c.asm.OpL(jump, t)
			c.asm.OpB("LIB", onFall)
			c.asm.OpL("JMP", e)
			c.asm.Label(t)
			c.asm.OpB("LIB", onTaken)
			c.asm.Label(e)
		}
		switch op {
		case "==":
			emit01(1, 0, "JZ")
		case "!=":
			emit01(0, 1, "JZ")
		case "<": // lhs-rhs < 0
			emit01(1, 0, "JN")
		case ">=":
			emit01(0, 1, "JN")
		case ">": // lhs-rhs > 0  ⇔  not negative and not zero
			nz, done := c.newLabel("cg"), c.newLabel("cgx")
			c.asm.Op("DUP")
			c.asm.OpL("JN", t) // negative → 0
			c.asm.OpL("JNZ", nz)
			c.asm.OpB("LIB", 0) // zero → 0
			c.asm.OpL("JMP", done)
			c.asm.Label(nz)
			c.asm.OpB("LIB", 1)
			c.asm.OpL("JMP", done)
			c.asm.Label(t)
			c.asm.Op("DROP") // the DUPed difference
			c.asm.OpB("LIB", 0)
			c.asm.Label(done)
			_ = e
		case "<=": // lhs-rhs <= 0 ⇔ negative or zero
			nz, done := c.newLabel("cl"), c.newLabel("clx")
			c.asm.Op("DUP")
			c.asm.OpL("JN", t)
			c.asm.OpL("JNZ", nz)
			c.asm.OpB("LIB", 1)
			c.asm.OpL("JMP", done)
			c.asm.Label(nz)
			c.asm.OpB("LIB", 0)
			c.asm.OpL("JMP", done)
			c.asm.Label(t)
			c.asm.Op("DROP")
			c.asm.OpB("LIB", 1)
			c.asm.Label(done)
			_ = e
		}
	}
	return nil
}

func (c *compiler) binaryLevel(next func() error, ops map[string]string) error {
	if err := next(); err != nil {
		return err
	}
	for c.toks[c.pos].kind == tkPunct {
		mnemonic, ok := ops[c.toks[c.pos].text]
		if !ok {
			return nil
		}
		c.pos++
		if err := next(); err != nil {
			return err
		}
		c.asm.Op(mnemonic)
	}
	return nil
}

func (c *compiler) bitOr() error {
	return c.binaryLevel(c.bitAnd, map[string]string{"|": "OR", "^": "XOR"})
}

func (c *compiler) bitAnd() error {
	return c.binaryLevel(c.addSub, map[string]string{"&": "AND"})
}

func (c *compiler) addSub() error {
	return c.binaryLevel(c.mulShift, map[string]string{"+": "ADD", "-": "SUB"})
}

// mulShift handles * and <<-by-constant.
func (c *compiler) mulShift() error {
	if err := c.unary(); err != nil {
		return err
	}
	for c.toks[c.pos].kind == tkPunct {
		switch c.toks[c.pos].text {
		case "*":
			c.pos++
			if err := c.unary(); err != nil {
				return err
			}
			c.asm.Op("MUL")
		case "<<":
			c.pos++
			n, err := c.number()
			if err != nil {
				return fmt.Errorf("mesac: << needs a constant count: %v", err)
			}
			if n > 15 {
				return fmt.Errorf("mesac: shift count %d out of range", n)
			}
			c.asm.OpB("LSH", uint8(n))
		default:
			return nil
		}
	}
	return nil
}

func (c *compiler) unary() error {
	if c.peekPunct("-") {
		c.pos++
		if err := c.unary(); err != nil {
			return err
		}
		c.asm.Op("NEG")
		return nil
	}
	return c.primary()
}

func (c *compiler) primary() error {
	tok := c.toks[c.pos]
	switch tok.kind {
	case tkNumber:
		v, err := c.number()
		if err != nil {
			return err
		}
		if v < 256 {
			c.asm.OpB("LIB", uint8(v))
		} else {
			c.asm.OpW("LIW", v)
		}
		return nil
	case tkKeyword:
		if tok.text == "global" {
			c.pos++
			slot, err := c.number()
			if err != nil {
				return err
			}
			c.asm.OpB("LG", uint8(slot))
			return nil
		}
		return fmt.Errorf("mesac: unexpected %q in expression", tok.text)
	case tkName:
		name := tok.text
		if c.peekAt(1, "(") {
			return c.call(name)
		}
		slot, ok := c.locals[name]
		if !ok {
			return fmt.Errorf("mesac: undeclared variable %q", name)
		}
		c.pos++
		c.asm.OpB("LL", slot)
		return nil
	case tkPunct:
		if tok.text == "(" {
			c.pos++
			if err := c.expr(); err != nil {
				return err
			}
			return c.expect(")")
		}
	}
	return fmt.Errorf("mesac: unexpected %q in expression", tok.text)
}

func (c *compiler) call(name string) error {
	fi, ok := c.funcs[name]
	if !ok {
		return fmt.Errorf("mesac: call to undefined function %q", name)
	}
	c.pos++ // name
	c.pos++ // "("
	args := 0
	for !c.peekPunct(")") {
		if args > 0 {
			if err := c.expect(","); err != nil {
				return err
			}
		}
		if err := c.expr(); err != nil {
			return err
		}
		args++
	}
	c.pos++ // ")"
	fi.callArgs = append(fi.callArgs, args)
	c.asm.OpW("CALL", fi.Slot)
	return nil
}

// number parses a numeric token.
func (c *compiler) number() (uint16, error) {
	tok := c.toks[c.pos]
	if tok.kind != tkNumber {
		return 0, fmt.Errorf("mesac: number expected, got %q", tok.text)
	}
	v, err := strconv.ParseUint(tok.text, 0, 16)
	if err != nil {
		return 0, fmt.Errorf("mesac: bad number %q", tok.text)
	}
	c.pos++
	return uint16(v), nil
}
