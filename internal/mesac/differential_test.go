package mesac

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// expr is a random expression tree with a Go evaluator and a source
// renderer; compiling and running the rendered source through the whole
// stack (compiler → byte code → emulator microcode → cycle simulator) must
// produce the Go value. This differentially tests the compiler, the Mesa
// emulator microcode, and the processor's ALU at once.
type exprNode struct {
	op   string // "" for a literal
	val  uint16
	l, r *exprNode
}

func genExpr(r *rand.Rand, depth int) *exprNode {
	if depth == 0 || r.Intn(3) == 0 {
		return &exprNode{val: uint16(r.Intn(1 << 16))}
	}
	ops := []string{"+", "-", "*", "&", "|", "^", "==", "!=", "<", ">", "<=", ">="}
	// Comparisons only near the root (they yield 0/1, fine anywhere, but
	// keeping them shallow keeps the trees interesting).
	op := ops[r.Intn(len(ops))]
	return &exprNode{
		op: op,
		l:  genExpr(r, depth-1),
		r:  genExpr(r, depth-1),
	}
}

func (e *exprNode) eval() uint16 {
	if e.op == "" {
		return e.val
	}
	a, b := e.l.eval(), e.r.eval()
	switch e.op {
	case "+":
		return a + b
	case "-":
		return a - b
	case "*":
		return a * b
	case "&":
		return a & b
	case "|":
		return a | b
	case "^":
		return a ^ b
	case "==":
		return b01(a == b)
	case "!=":
		return b01(a != b)
	case "<":
		return b01(int16(a) < int16(b))
	case ">":
		return b01(int16(a) > int16(b))
	case "<=":
		return b01(int16(a) <= int16(b))
	case ">=":
		return b01(int16(a) >= int16(b))
	}
	panic("op")
}

func b01(b bool) uint16 {
	if b {
		return 1
	}
	return 0
}

func (e *exprNode) render(sb *strings.Builder) {
	if e.op == "" {
		fmt.Fprintf(sb, "%d", e.val)
		return
	}
	sb.WriteString("(")
	e.l.render(sb)
	sb.WriteString(" " + e.op + " ")
	e.r.render(sb)
	sb.WriteString(")")
}

func TestExpressionsDifferential(t *testing.T) {
	// Comparison semantics are signed 16-bit; the Go model above matches.
	// Note: the machine's < compiles to "difference is negative", which
	// differs from true signed comparison when the subtraction overflows.
	// Constrain operands of comparisons to a safe range (|x| < 2^14), as
	// the real Mesa compiler's bounds discipline did.
	rng := rand.New(rand.NewSource(1981))
	trials := 0
	for trials < 60 {
		e := genExpr(rng, 3)
		if !comparisonsSafe(e) {
			continue
		}
		trials++
		var sb strings.Builder
		sb.WriteString("return ")
		e.render(&sb)
		sb.WriteString(";")
		want := e.eval()
		if got := run(t, sb.String()); got != want {
			t.Fatalf("%s = %d, want %d", sb.String(), got, want)
		}
	}
}

// comparisonsSafe rejects trees where a comparison's operands might
// overflow the subtraction (the documented limit of the machine idiom).
func comparisonsSafe(e *exprNode) bool {
	if e == nil || e.op == "" {
		return true
	}
	switch e.op {
	case "<", ">", "<=", ">=":
		a, b := e.l.eval(), e.r.eval()
		d := int32(int16(a)) - int32(int16(b))
		if d > 0x7FFF || d < -0x8000 {
			return false
		}
	}
	return comparisonsSafe(e.l) && comparisonsSafe(e.r)
}
