package mesac

import (
	"strings"
	"testing"

	"dorado/internal/core"
	"dorado/internal/emulator"
)

// run compiles src, runs it on a Mesa system, and returns the value left
// on the evaluation stack by main's return.
func run(t *testing.T, src string) uint16 {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	mesa, err := emulator.BuildMesa()
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	prog.InstallOn(m)
	if err := mesa.InstallOn(m); err != nil {
		t.Fatal(err)
	}
	if !m.Run(10_000_000) {
		t.Fatalf("program did not halt (task %d pc %v)", m.CurTask(), m.CurPC())
	}
	depth := int(m.StackPtr() & 0x3F)
	if depth != 1 {
		t.Fatalf("stack depth %d at halt, want 1", depth)
	}
	return m.Stack(1)
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want uint16
	}{
		{"return 2 + 40;", 42},
		{"return 50 - 8;", 42},
		{"return 6 * 7;", 42},
		{"return (2 + 4) * 7;", 42},
		{"return 0xF0 & 0x3C;", 0x30},
		{"return 0x0F | 0xF0;", 0xFF},
		{"return 0xFF ^ 0x0F;", 0xF0},
		{"return 21 << 1;", 42},
		{"return -1;", 0xFFFF},
		{"return 10 - -32;", 42},
		{"return 1000;", 1000},
		{"return 2 + 3 * 4;", 14}, // precedence
	}
	for _, c := range cases {
		if got := run(t, c.src); got != c.want {
			t.Errorf("%q = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestComparisons(t *testing.T) {
	cases := []struct {
		src  string
		want uint16
	}{
		{"return 3 == 3;", 1},
		{"return 3 == 4;", 0},
		{"return 3 != 4;", 1},
		{"return 3 < 4;", 1},
		{"return 4 < 3;", 0},
		{"return 3 < 3;", 0},
		{"return 4 > 3;", 1},
		{"return 3 > 4;", 0},
		{"return 3 > 3;", 0},
		{"return 3 <= 3;", 1},
		{"return 3 <= 2;", 0},
		{"return 2 <= 3;", 1},
		{"return 3 >= 3;", 1},
		{"return 3 >= 4;", 0},
		{"return -1 < 1;", 1}, // signed
		{"return 1 > -1;", 1},
	}
	for _, c := range cases {
		if got := run(t, c.src); got != c.want {
			t.Errorf("%q = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestVariablesAndWhile(t *testing.T) {
	src := `
var sum = 0;
var i = 1;
while i <= 100 {
    sum = sum + i;
    i = i + 1;
}
return sum;
`
	if got := run(t, src); got != 5050 {
		t.Fatalf("sum = %d", got)
	}
}

func TestIfElse(t *testing.T) {
	src := `
var x = 10;
if x > 5 {
    x = x * 2;
} else {
    x = 0;
}
if x == 3 {
    x = 99;
}
return x;
`
	if got := run(t, src); got != 20 {
		t.Fatalf("x = %d", got)
	}
}

func TestFunctions(t *testing.T) {
	src := `
func add3(a, b, c) {
    return a + b + c;
}
func twice(x) {
    return x + x;
}
return add3(1, twice(4), 100) + twice(twice(2));
`
	if got := run(t, src); got != 1+8+100+8 {
		t.Fatalf("got %d", got)
	}
}

func TestRecursiveFib(t *testing.T) {
	src := `
func fib(n) {
    if n < 2 { return n; }
    return fib(n-1) + fib(n-2);
}
return fib(12);
`
	if got := run(t, src); got != 144 {
		t.Fatalf("fib(12) = %d", got)
	}
}

func TestGCD(t *testing.T) {
	plain := `
func mod(a, b) {
    while a >= b { a = a - b; }
    return a;
}
func gcd(a, b) {
    while b != 0 {
        var t = b;
        b = mod(a, b);
        a = t;
    }
    return a;
}
return gcd(1071, 462);
`
	if got := run(t, plain); got != 21 {
		t.Fatalf("gcd = %d", got)
	}
}

func TestGlobals(t *testing.T) {
	src := `
func bump() {
    global 5 = global 5 + 1;
    return global 5;
}
global 5 = 40;
bump();
return bump();
`
	if got := run(t, src); got != 42 {
		t.Fatalf("global = %d", got)
	}
}

func TestForwardCall(t *testing.T) {
	src := `
return f(20);
func f(x) { return g(x) + 1; }
func g(x) { return x + x; }
`
	if got := run(t, src); got != 41 {
		t.Fatalf("forward call = %d", got)
	}
}

func TestNestedWhileLoops(t *testing.T) {
	// Note: "var" has function-level scope (a declaration inside a loop
	// body would redeclare on the next iteration), so declarations hoist.
	hoisted := `
var total = 0;
var i = 0;
var j = 0;
while i < 10 {
    j = 0;
    while j < 10 {
        total = total + 1;
        j = j + 1;
    }
    i = i + 1;
}
return total;
`
	if got := run(t, hoisted); got != 100 {
		t.Fatalf("nested loops = %d", got)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src, wantErr string
	}{
		{"return x;", "undeclared"},
		{"x = 1;", "undeclared"},
		{"var a = 1; var a = 2; return a;", "redeclared"},
		{"return f(1);", "undefined function"},
		{"func f(a) { return a; } return f(1, 2);", "argument"},
		{"func f() { return 1; } func f() { return 2; } return f();", "twice"},
		{"return 1 +;", "unexpected"},
		{"return (1;", "expected"},
		{"while 1 { return 1;", "unterminated"},
		{"return 5 << 99;", "out of range"},
		{"return @;", "unexpected character"},
	}
	for _, c := range cases {
		_, err := Compile(c.src)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%q: error = %v, want mention of %q", c.src, err, c.wantErr)
		}
	}
}

func TestExpressionStatementDrops(t *testing.T) {
	// Expression statements must not leak stack values.
	src := `
func noisy() { return 7; }
noisy();
noisy();
return 1;
`
	if got := run(t, src); got != 1 {
		t.Fatalf("got %d", got)
	}
}
