package mesac

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tkEOF tokenKind = iota
	tkName
	tkNumber
	tkKeyword
	tkPunct
)

type token struct {
	kind tokenKind
	text string
	line int
}

var keywords = map[string]bool{
	"func": true, "var": true, "while": true, "if": true,
	"else": true, "return": true, "global": true,
}

// twoCharPuncts are matched before single characters.
var twoCharPuncts = []string{"==", "!=", "<=", ">=", "<<"}

// lex tokenizes source text. Comments run from "//" to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		ch := src[i]
		switch {
		case ch == '\n':
			line++
			i++
		case ch == ' ' || ch == '\t' || ch == '\r':
			i++
		case ch == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case unicode.IsDigit(rune(ch)):
			j := i
			for j < len(src) && (isAlnum(src[j])) {
				j++
			}
			toks = append(toks, token{tkNumber, src[i:j], line})
			i = j
		case unicode.IsLetter(rune(ch)) || ch == '_':
			j := i
			for j < len(src) && (isAlnum(src[j]) || src[j] == '_') {
				j++
			}
			word := src[i:j]
			kind := tkName
			if keywords[word] {
				kind = tkKeyword
			}
			toks = append(toks, token{kind, word, line})
			i = j
		default:
			matched := false
			for _, p := range twoCharPuncts {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, token{tkPunct, p, line})
					i += len(p)
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			if strings.ContainsRune("+-*&|^<>=(){};,!", rune(ch)) {
				toks = append(toks, token{tkPunct, string(ch), line})
				i++
			} else {
				return nil, fmt.Errorf("mesac: line %d: unexpected character %q", line, ch)
			}
		}
	}
	toks = append(toks, token{tkEOF, "", line})
	return toks, nil
}

func isAlnum(b byte) bool {
	return b >= '0' && b <= '9' || b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z'
}

// Parser cursor helpers.

func (c *compiler) eof() bool { return c.toks[c.pos].kind == tkEOF }

func (c *compiler) peekKw(kw string) bool {
	t := c.toks[c.pos]
	return t.kind == tkKeyword && t.text == kw
}

func (c *compiler) peekPunct(p string) bool {
	t := c.toks[c.pos]
	return t.kind == tkPunct && t.text == p
}

func (c *compiler) peekAt(off int, p string) bool {
	if c.pos+off >= len(c.toks) {
		return false
	}
	t := c.toks[c.pos+off]
	return t.kind == tkPunct && t.text == p
}

func (c *compiler) expect(p string) error {
	if !c.peekPunct(p) {
		t := c.toks[c.pos]
		return fmt.Errorf("mesac: line %d: expected %q, got %q", t.line, p, t.text)
	}
	c.pos++
	return nil
}
