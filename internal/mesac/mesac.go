// Package mesac is a small compiler from a Mesa-flavored expression
// language to the emulator's byte codes — the role the real Mesa compiler
// played above the Dorado (§3: "byte code compilers exist for Mesa ...";
// the machine is "optimized for the execution of languages that are
// compiled into streams of byte codes").
//
// The language is deliberately tiny but complete enough for real
// workloads — recursive functions, loops, globals:
//
//	func fib(n) {
//	    if n < 2 { return n; }
//	    return fib(n-1) + fib(n-2);
//	}
//	return fib(12);
//
// Grammar (statements end with ';', blocks are braced):
//
//	program  = funcdef* stmt*
//	funcdef  = "func" name "(" [name ("," name)*] ")" block
//	stmt     = "var" name "=" expr ";"
//	         | name "=" expr ";"
//	         | "global" number "=" expr ";"
//	         | "while" expr block
//	         | "if" expr block ["else" block]
//	         | "return" expr ";"
//	         | expr ";"
//	expr     = comparison over + - with * & | ^ << and unary -
//	primary  = number | name | "global" number | name "(" args ")" | "(" expr ")"
//
// Numbers are 16-bit (decimal or 0x hex). Comparisons yield 0 or 1. All
// arithmetic is the machine's: 16-bit wrapping.
package mesac

import (
	"fmt"

	"dorado/internal/core"
	"dorado/internal/emulator"
)

// Program is a compiled macroprogram: byte code plus the function headers
// the Mesa CALL opcode resolves through the global area.
type Program struct {
	Code  []byte
	Funcs []FuncInfo
}

// FuncInfo records one compiled function.
type FuncInfo struct {
	Name  string
	Slot  uint16 // global-area header slot
	Entry uint16 // byte PC
	Args  int

	compiled bool  // definition seen
	callArgs []int // argument counts at call sites, checked after compile
}

// Compile translates source text.
func Compile(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	c := &compiler{toks: toks, funcs: map[string]*FuncInfo{}}
	if err := c.program(); err != nil {
		return nil, err
	}
	code, err := c.asm.Bytes()
	if err != nil {
		return nil, err
	}
	p := &Program{Code: code}
	for _, f := range c.order {
		fi := *c.funcs[f]
		pc, err := c.asm.LabelPC("f." + f)
		if err != nil {
			return nil, err
		}
		fi.Entry = pc
		p.Funcs = append(p.Funcs, fi)
	}
	return p, nil
}

// InstallOn loads the program and its function headers into a Mesa system
// machine (the emulator must already be installed or installed after —
// headers live in data memory, code in the code area).
func (p *Program) InstallOn(m *core.Machine) {
	emulator.LoadCode(m, p.Code)
	for _, f := range p.Funcs {
		emulator.DefineFunc(m, f.Slot, f.Entry, uint16(f.Args))
	}
}

// compiler holds parse and codegen state. Code generation goes straight
// into the byte-code assembler; control flow uses generated labels.
type compiler struct {
	toks  []token
	pos   int
	asm   *emulator.Asm
	funcs map[string]*FuncInfo
	order []string

	// current function scope
	locals map[string]uint8 // name → frame slot
	nextSl uint8
	labels int
	inFunc bool
}

const firstFuncSlot = 0x100 // global-area slots for function headers

func (c *compiler) program() error {
	mesa, err := emulator.BuildMesa()
	if err != nil {
		return err
	}
	c.asm = emulator.NewAsm(mesa)

	// Pre-scan function names so forward calls resolve.
	for i := 0; i+1 < len(c.toks); i++ {
		if c.toks[i].kind == tkKeyword && c.toks[i].text == "func" &&
			c.toks[i+1].kind == tkName {
			name := c.toks[i+1].text
			if _, dup := c.funcs[name]; dup {
				return fmt.Errorf("mesac: function %q defined twice", name)
			}
			c.funcs[name] = &FuncInfo{
				Name: name,
				Slot: uint16(firstFuncSlot + 2*len(c.order)),
			}
			c.order = append(c.order, name)
		}
	}

	// Main body first (execution starts at byte 0); function bodies after.
	var fnStarts []int
	c.locals = map[string]uint8{}
	c.nextSl = 2 // frame slots 0,1 are the saved-L/PC links
	for !c.eof() {
		if c.peekKw("func") {
			fnStarts = append(fnStarts, c.pos)
			if err := c.skipFunc(); err != nil {
				return err
			}
			continue
		}
		if err := c.stmt(); err != nil {
			return err
		}
	}
	c.asm.Op("HALT")
	for _, at := range fnStarts {
		c.pos = at
		if err := c.funcdef(); err != nil {
			return err
		}
	}
	// Argument-count check (deferred so forward calls work).
	for _, name := range c.order {
		fi := c.funcs[name]
		for _, n := range fi.callArgs {
			if n != fi.Args {
				return fmt.Errorf("mesac: %s takes %d argument(s), called with %d", name, fi.Args, n)
			}
		}
	}
	return nil
}

// skipFunc advances past a function definition without compiling it.
func (c *compiler) skipFunc() error {
	c.pos += 2 // func name
	if err := c.expect("("); err != nil {
		return err
	}
	for !c.eof() && !c.peekPunct(")") {
		c.pos++
	}
	if err := c.expect(")"); err != nil {
		return err
	}
	return c.skipBlock()
}

func (c *compiler) skipBlock() error {
	if err := c.expect("{"); err != nil {
		return err
	}
	depth := 1
	for !c.eof() && depth > 0 {
		switch {
		case c.peekPunct("{"):
			depth++
		case c.peekPunct("}"):
			depth--
		}
		c.pos++
	}
	if depth != 0 {
		return fmt.Errorf("mesac: unbalanced braces")
	}
	return nil
}

func (c *compiler) funcdef() error {
	c.pos++ // "func"
	name := c.toks[c.pos].text
	c.pos++
	fi := c.funcs[name]
	if err := c.expect("("); err != nil {
		return err
	}
	var params []string
	for !c.peekPunct(")") {
		if len(params) > 0 {
			if err := c.expect(","); err != nil {
				return err
			}
		}
		if c.toks[c.pos].kind != tkName {
			return fmt.Errorf("mesac: parameter name expected, got %q", c.toks[c.pos].text)
		}
		params = append(params, c.toks[c.pos].text)
		c.pos++
	}
	c.pos++ // ")"
	fi.Args = len(params)

	c.asm.Label("f." + name)
	c.locals = map[string]uint8{}
	// The CALL microcode moves arguments in pop order: the LAST argument
	// lands in frame slot 2. Map parameters accordingly.
	for i, p := range params {
		c.locals[p] = uint8(2 + len(params) - 1 - i)
	}
	c.nextSl = uint8(2 + len(params))
	fi.compiled = true
	c.inFunc = true
	err := c.block()
	c.inFunc = false
	if err != nil {
		return err
	}
	// Implicit "return 0" for functions that fall off the end.
	c.asm.OpB("LIB", 0)
	c.asm.Op("RET")
	return nil
}

func (c *compiler) block() error {
	if err := c.expect("{"); err != nil {
		return err
	}
	for !c.peekPunct("}") {
		if c.eof() {
			return fmt.Errorf("mesac: unterminated block")
		}
		if err := c.stmt(); err != nil {
			return err
		}
	}
	c.pos++ // "}"
	return nil
}

func (c *compiler) newLabel(stem string) string {
	c.labels++
	return fmt.Sprintf(".%s%d", stem, c.labels)
}

func (c *compiler) stmt() error {
	switch {
	case c.peekKw("var"):
		c.pos++
		name := c.toks[c.pos].text
		if c.toks[c.pos].kind != tkName {
			return fmt.Errorf("mesac: variable name expected")
		}
		if _, dup := c.locals[name]; dup {
			return fmt.Errorf("mesac: variable %q redeclared", name)
		}
		c.pos++
		if err := c.expect("="); err != nil {
			return err
		}
		if err := c.expr(); err != nil {
			return err
		}
		c.locals[name] = c.nextSl
		c.asm.OpB("SL", c.nextSl)
		c.nextSl++
		return c.expect(";")

	case c.peekKw("global"):
		// global N = expr;  (or a bare global expression statement)
		if c.toks[c.pos+2].text == "=" && c.toks[c.pos+2].kind == tkPunct {
			c.pos++
			slot, err := c.number()
			if err != nil {
				return err
			}
			c.pos++ // "="
			if err := c.expr(); err != nil {
				return err
			}
			c.asm.OpB("SG", uint8(slot))
			return c.expect(";")
		}
		// fall through to expression statement
		if err := c.expr(); err != nil {
			return err
		}
		c.asm.Op("DROP")
		return c.expect(";")

	case c.peekKw("while"):
		c.pos++
		top, end := c.newLabel("w"), c.newLabel("we")
		c.asm.Label(top)
		if err := c.expr(); err != nil {
			return err
		}
		c.asm.OpL("JZ", end)
		if err := c.block(); err != nil {
			return err
		}
		c.asm.OpL("JMP", top)
		c.asm.Label(end)
		return nil

	case c.peekKw("if"):
		c.pos++
		els, end := c.newLabel("ie"), c.newLabel("ix")
		if err := c.expr(); err != nil {
			return err
		}
		c.asm.OpL("JZ", els)
		if err := c.block(); err != nil {
			return err
		}
		if c.peekKw("else") {
			c.pos++
			c.asm.OpL("JMP", end)
			c.asm.Label(els)
			if err := c.block(); err != nil {
				return err
			}
			c.asm.Label(end)
		} else {
			c.asm.Label(els)
		}
		return nil

	case c.peekKw("return"):
		c.pos++
		if err := c.expr(); err != nil {
			return err
		}
		if c.inFunc {
			c.asm.Op("RET")
		} else {
			c.asm.Op("HALT") // main's return: leave the result on the stack
		}
		return c.expect(";")

	case c.toks[c.pos].kind == tkName && c.peekAt(1, "="):
		name := c.toks[c.pos].text
		slot, ok := c.locals[name]
		if !ok {
			return fmt.Errorf("mesac: assignment to undeclared variable %q", name)
		}
		c.pos += 2
		if err := c.expr(); err != nil {
			return err
		}
		c.asm.OpB("SL", slot)
		return c.expect(";")

	default:
		if err := c.expr(); err != nil {
			return err
		}
		c.asm.Op("DROP") // expression statement: discard the value
		return c.expect(";")
	}
}
