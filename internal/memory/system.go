package memory

import (
	"fmt"
)

// Config sizes and times the memory system. The defaults correspond to the
// machine the paper describes.
type Config struct {
	// CacheWords is the cache capacity in 16-bit words (default 4096).
	CacheWords int
	// CacheWays is the set associativity (default 2).
	CacheWays int
	// StorageWords is the real-memory size in words (default 1<<20 = 2 MB;
	// the Dorado supported up to 4 M words = 8 MB).
	StorageWords int
	// HitLatency is the cycle count from Fetch to MD-ready on a hit
	// (default 2: "a cache which has a latency of two cycles, and can
	// deliver a word every cycle", §3).
	HitLatency int
	// MissLatency is the Fetch-to-MD-ready count on a miss (default 26:
	// "the difference between the best case and the worst is more than an
	// order of magnitude", §5.7).
	MissLatency int
	// StorageCycle is the minimum spacing of storage references in cycles
	// (default 8: "the maximum rate at which storage references can be made
	// is one every eight cycles; this is the cycle time of the main storage
	// RAMs", §6.2.1).
	StorageCycle int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.CacheWords == 0 {
		c.CacheWords = 4096
	}
	if c.CacheWays == 0 {
		c.CacheWays = 2
	}
	if c.StorageWords == 0 {
		c.StorageWords = 1 << 20
	}
	if c.HitLatency == 0 {
		c.HitLatency = 2
	}
	if c.MissLatency == 0 {
		c.MissLatency = 26
	}
	if c.StorageCycle == 0 {
		c.StorageCycle = 8
	}
	return c
}

// NumTasks matches the processor's 16 microcode tasks.
const NumTasks = 16

// mdState is one task's memory-data register state (task-specific, §5.3:
// "the memory data register" is among the task-specific registers).
type mdState struct {
	val     uint16
	readyAt uint64 // cycle at which val may be used
	issueAt uint64 // cycle the fetch was issued (for the fixed-wait ablation)
	pending bool   // a fetch is outstanding
}

// Stats counts memory-system activity.
type Stats struct {
	Reads      uint64 // processor fetches
	Writes     uint64 // processor stores
	Hits       uint64
	Misses     uint64
	Writebacks uint64
	StorageOps uint64 // storage-pipe occupancies (fills, writebacks, fast blocks)
	FastReads  uint64 // fast-I/O blocks read
	FastWrites uint64 // fast-I/O blocks written
	MapFaults  uint64 // references past the end of real storage (wrapped)
	Faults     uint64 // protection/vacancy faults (see map.go)
}

// System is the memory subsystem: base registers, page map, cache timing,
// storage pipe, and per-task MD state.
type System struct {
	cfg   Config
	data  []uint16 // real storage, indexed by real address
	cache *cache

	base  [32]uint32          // 28-bit base registers (MEMBASE selects one)
	vmapx map[uint32]mapEntry // page map overrides: translation + flags (identity default)

	md            [NumTasks]mdState
	storageFreeAt uint64 // next cycle a storage reference may start

	fault       Fault
	faultNotify func(Fault)

	stats Stats
}

// PageWords is the map page size in words.
const PageWords = 256

// VAMask masks a 28-bit virtual address.
const VAMask = 1<<28 - 1

// New builds a memory system.
func New(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	c, err := newCache(cfg.CacheWords, cfg.CacheWays)
	if err != nil {
		return nil, err
	}
	if cfg.StorageWords <= 0 || cfg.StorageWords%LineWords != 0 {
		return nil, fmt.Errorf("memory: storage size %d not a multiple of %d", cfg.StorageWords, LineWords)
	}
	return &System{
		cfg:   cfg,
		data:  make([]uint16, cfg.StorageWords),
		cache: c,
		vmapx: map[uint32]mapEntry{},
	}, nil
}

// Config returns the effective configuration.
func (s *System) Config() Config { return s.cfg }

// Stats returns a snapshot of the counters.
func (s *System) Stats() Stats {
	st := s.stats
	st.Hits = s.cache.hits
	st.Misses = s.cache.misses
	st.Writebacks = s.cache.writebacks
	return st
}

// SetBase loads base register i (28 bits).
func (s *System) SetBase(i int, va uint32) { s.base[i&31] = va & VAMask }

// Base reads base register i.
func (s *System) Base(i int) uint32 { return s.base[i&31] }

// SetBaseLo loads the low 16 bits of base register i, preserving the high
// bits (the FF PutBaseLo path: base registers load from the 16-bit B bus
// in two halves).
func (s *System) SetBaseLo(i int, lo uint16) {
	s.base[i&31] = s.base[i&31]&^0xFFFF | uint32(lo)
}

// SetBaseHi loads the high 12 bits of base register i.
func (s *System) SetBaseHi(i int, hi uint16) {
	s.base[i&31] = s.base[i&31]&0xFFFF | uint32(hi&0xFFF)<<16
}

// BaseLo reads the low 16 bits of base register i.
func (s *System) BaseLo(i int) uint16 { return uint16(s.base[i&31]) }

// VA forms the virtual address for a reference: base[membase] + displacement.
func (s *System) VA(membase uint8, disp uint16) uint32 {
	return (s.base[membase&31] + uint32(disp)) & VAMask
}

// MapSet overrides the translation of virtual page vp to real page rp
// (clearing any Vacant flag; other flags are preserved).
func (s *System) MapSet(vp, rp uint32) {
	vp &= VAMask / PageWords
	e := s.entry(vp)
	e.rp = rp
	e.flags.Vacant = false
	s.vmapx[vp] = e
}

// MapGet returns the real page for virtual page vp.
func (s *System) MapGet(vp uint32) uint32 {
	vp &= VAMask / PageWords
	if e, ok := s.vmapx[vp]; ok {
		return e.rp
	}
	return vp
}

// translate maps a virtual address to a real storage index.
func (s *System) translate(va uint32) uint32 {
	va &= VAMask
	ra := s.MapGet(va/PageWords)*PageWords + va%PageWords
	if int(ra) >= len(s.data) {
		s.stats.MapFaults++
		ra %= uint32(len(s.data))
	}
	return ra
}

// storageFree reports whether a storage reference can start at cycle now.
func (s *System) storageFree(now uint64) bool { return now >= s.storageFreeAt }

// takeStorage occupies the storage pipe for n back-to-back RAM cycles.
func (s *System) takeStorage(now uint64, n int) {
	s.storageFreeAt = now + uint64(n*s.cfg.StorageCycle)
	s.stats.StorageOps += uint64(n)
}

// CanRead reports, without side effects, whether StartRead would accept a
// reference at cycle now. The processor evaluates this during its Hold
// phase, before committing any state change (§5.7).
func (s *System) CanRead(task int, va uint32, now uint64) bool {
	md := &s.md[task&15]
	if md.pending && now < md.readyAt {
		return false
	}
	return s.cache.peek(va) || s.storageFree(now)
}

// CanWrite reports, without side effects, whether StartWrite would accept a
// reference at cycle now.
func (s *System) CanWrite(va uint32, now uint64) bool {
	return s.cache.peek(va) || s.storageFree(now)
}

// StartRead begins a fetch for task at va. It returns false when the memory
// cannot accept the reference this cycle (the processor asserts Hold and
// retries): the task already has a fetch outstanding, or the reference
// misses while the storage pipe is busy.
func (s *System) StartRead(task int, va uint32, now uint64) bool {
	md := &s.md[task&15]
	if md.pending && now < md.readyAt {
		return false // one outstanding fetch per task; use MD first
	}
	hit := s.cache.peek(va)
	if !hit && !s.storageFree(now) {
		return false // retried via Hold; counted once when accepted
	}
	s.stats.Reads++
	s.checkRef(task, va, false) // flag maintenance + vacancy fault
	latency := s.cfg.HitLatency
	if hit {
		s.cache.lookup(va) // LRU + hit accounting
	} else {
		s.cache.misses++ // accounted here; fill() below does the install
		if s.cache.fill(va) {
			s.takeStorage(now, 2) // line fill + victim writeback
		} else {
			s.takeStorage(now, 1)
		}
		latency = s.cfg.MissLatency
	}
	md.val = s.data[s.translate(va)]
	md.readyAt = now + uint64(latency)
	md.issueAt = now
	md.pending = true
	return true
}

// StartWrite begins a store of data to va for task. Stores do not touch MD;
// they return false (Hold) only when they miss while the storage pipe is
// busy. The cache is write-allocate, write-back.
func (s *System) StartWrite(task int, va uint32, data uint16, now uint64) bool {
	hit := s.cache.peek(va)
	if !hit && !s.storageFree(now) {
		return false
	}
	s.stats.Writes++
	if s.checkRef(task, va, true) {
		// A faulting store is accepted (the instruction completes; §5.7's
		// Hold is not for faults) but its data is suppressed; the fault
		// task cleans up.
		return true
	}
	if hit {
		s.cache.lookup(va)
	} else {
		s.cache.misses++
		if s.cache.fill(va) {
			s.takeStorage(now, 2)
		} else {
			s.takeStorage(now, 1)
		}
	}
	s.cache.markDirty(va)
	s.data[s.translate(va)] = data
	return true
}

// MDReady reports whether task's most recent fetch has delivered (§5.7: the
// processor holds an instruction that uses MD before this point).
func (s *System) MDReady(task int, now uint64) bool {
	md := &s.md[task&15]
	return !md.pending || now >= md.readyAt
}

// MDReadyFixed is the §5.7 ablation of MDReady: a design without Hold that
// "waits a fixed (unfortunately, maximum) time" treats every fetch as if it
// took the full miss latency.
func (s *System) MDReadyFixed(task int, now uint64) bool {
	md := &s.md[task&15]
	return !md.pending || now >= md.issueAt+uint64(s.cfg.MissLatency)
}

// MD returns task's memory-data word. Call only when MDReady; a too-early
// call is a simulator-usage bug, not a hardware possibility.
func (s *System) MD(task int, now uint64) uint16 {
	md := &s.md[task&15]
	if md.pending && now < md.readyAt {
		panic("memory: MD read before ready (processor must Hold)")
	}
	md.pending = false
	return md.val
}

// Warm installs va's cache line without any timing effects — a setup
// helper for tests and benchmarks that need a known-warm cache.
func (s *System) Warm(va uint32) {
	if !s.cache.peek(va) {
		s.cache.fill(va)
	}
}

// Peek reads a word functionally (no timing effects). For tests, loaders,
// and devices outside the timed paths.
func (s *System) Peek(va uint32) uint16 { return s.data[s.translate(va)] }

// Poke writes a word functionally.
func (s *System) Poke(va uint32, v uint16) { s.data[s.translate(va)] = v }

// Flush writes back and invalidates the cache line covering va (FF op).
func (s *System) Flush(va uint32, now uint64) {
	if s.cache.invalidate(va) {
		s.takeStorage(now, 1)
	}
}

// CacheResident reports whether va's line is resident (no side effects).
func (s *System) CacheResident(va uint32) bool { return s.cache.peek(va) }

// FastRead transfers one aligned 16-word block from storage to a device
// without polluting the cache (§5.8). It returns ok=false while the storage
// pipe is busy; the device retries. Dirty cached data is observed correctly
// because contents live in the flat store.
func (s *System) FastRead(va uint32, now uint64) (block [LineWords]uint16, ok bool) {
	if !s.storageFree(now) {
		return block, false
	}
	va &^= LineWords - 1
	for i := range block {
		block[i] = s.data[s.translate(va+uint32(i))]
	}
	s.takeStorage(now, 1)
	s.stats.FastReads++
	return block, true
}

// FastWrite transfers one aligned 16-word block from a device to storage,
// invalidating any cached copy so the processor sees the new data.
func (s *System) FastWrite(va uint32, block [LineWords]uint16, now uint64) bool {
	if !s.storageFree(now) {
		return false
	}
	va &^= LineWords - 1
	for i := range block {
		s.data[s.translate(va+uint32(i))] = block[i]
	}
	s.cache.invalidate(va)
	s.takeStorage(now, 1)
	s.stats.FastWrites++
	return true
}
