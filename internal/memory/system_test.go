package memory

import (
	"testing"
	"testing/quick"
)

func newSys(t *testing.T, cfg Config) *System {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestHitLatencyTwoCycles(t *testing.T) {
	s := newSys(t, Config{})
	s.Poke(100, 0xBEEF)
	// Warm the line.
	if !s.StartRead(0, 100, 0) {
		t.Fatal("cold read rejected")
	}
	for !s.MDReady(0, 1000) {
		t.Fatal("never ready")
	}
	s.MD(0, 1000)
	// Hit: issued at cycle 2000, ready at 2002, not before.
	if !s.StartRead(0, 100, 2000) {
		t.Fatal("hit read rejected")
	}
	if s.MDReady(0, 2001) {
		t.Error("ready after 1 cycle; hit latency should be 2")
	}
	if !s.MDReady(0, 2002) {
		t.Error("not ready after 2 cycles")
	}
	if got := s.MD(0, 2002); got != 0xBEEF {
		t.Errorf("MD = %#04x, want 0xbeef", got)
	}
}

func TestMissLatency(t *testing.T) {
	s := newSys(t, Config{})
	s.Poke(0x5000, 0x1234)
	if !s.StartRead(3, 0x5000, 10) {
		t.Fatal("miss read rejected with free storage")
	}
	if s.MDReady(3, 10+25) {
		t.Error("ready before miss latency elapsed")
	}
	if !s.MDReady(3, 10+26) {
		t.Error("not ready at miss latency")
	}
	if got := s.MD(3, 36); got != 0x1234 {
		t.Errorf("MD = %#04x", got)
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMissHitGapIsOrderOfMagnitude(t *testing.T) {
	// §5.7: best case vs worst case differ by more than an order of
	// magnitude. Our defaults: 2 vs 26.
	cfg := Config{}.withDefaults()
	if cfg.MissLatency < 10*cfg.HitLatency {
		t.Errorf("miss %d vs hit %d: not an order of magnitude", cfg.MissLatency, cfg.HitLatency)
	}
}

func TestStoragePipeBackpressure(t *testing.T) {
	s := newSys(t, Config{})
	// First miss occupies the storage pipe for one RAM cycle (8 cycles).
	if !s.StartRead(0, 0x1000, 0) {
		t.Fatal("first miss rejected")
	}
	// A second miss (different task, different line) cannot start until
	// cycle 8.
	if s.StartRead(1, 0x2000, 3) {
		t.Error("second miss accepted while storage busy")
	}
	if !s.StartRead(1, 0x2000, 8) {
		t.Error("second miss rejected after storage cycle elapsed")
	}
}

func TestHitUnderMiss(t *testing.T) {
	s := newSys(t, Config{})
	// Warm a line for task 1.
	s.StartRead(1, 64, 0)
	s.MD(1, 100)
	// Task 0 misses at cycle 200 (storage busy until 208).
	if !s.StartRead(0, 0x3000, 200) {
		t.Fatal("miss rejected")
	}
	// Task 1 can still hit in the cache during the miss (the cache is
	// fully segmented, §3).
	if !s.StartRead(1, 64, 201) {
		t.Error("hit under miss rejected")
	}
	if !s.MDReady(1, 203) {
		t.Error("hit under miss not ready at +2")
	}
}

func TestOneOutstandingFetchPerTask(t *testing.T) {
	s := newSys(t, Config{})
	if !s.StartRead(0, 0x1000, 0) {
		t.Fatal("first read rejected")
	}
	// Same task, before data ready: must hold.
	if s.StartRead(0, 0x1010, 5) {
		t.Error("second fetch accepted while first outstanding")
	}
	// After MD is ready the next fetch is fine even without reading MD.
	if !s.StartRead(0, 64, 40) {
		t.Error("fetch after ready rejected")
	}
}

func TestWriteReadBack(t *testing.T) {
	s := newSys(t, Config{})
	if !s.StartWrite(0, 777, 0xCAFE, 0) {
		t.Fatal("write rejected")
	}
	if !s.StartRead(0, 777, 20) {
		t.Fatal("read rejected")
	}
	if got := s.MD(0, 60); got != 0xCAFE {
		t.Errorf("read back %#04x", got)
	}
}

func TestWriteMissAllocates(t *testing.T) {
	s := newSys(t, Config{})
	if !s.StartWrite(0, 0x4000, 1, 0) {
		t.Fatal("write miss rejected")
	}
	if !s.CacheResident(0x4000) {
		t.Error("write-allocate did not install the line")
	}
	// Subsequent read is a hit.
	if !s.StartRead(0, 0x4001, 100) {
		t.Fatal("read rejected")
	}
	if !s.MDReady(0, 102) {
		t.Error("read after write-allocate should hit (ready at +2)")
	}
}

func TestDirtyEvictionCostsWriteback(t *testing.T) {
	s := newSys(t, Config{CacheWords: 64, CacheWays: 2}) // 2 sets × 2 ways
	// Three lines mapping to the same set: with 2 sets of 2 ways and line
	// 16, set = (va/16) % 2, so va 0, 64, 128 share set 0.
	s.StartWrite(0, 0, 7, 0) // dirty line A
	s.StartRead(0, 64, 100)  // line B
	s.MD(0, 200)
	base := s.Stats().Writebacks
	s.StartRead(0, 128, 300) // evicts dirty A
	if s.Stats().Writebacks != base+1 {
		t.Errorf("writebacks = %d, want %d", s.Stats().Writebacks, base+1)
	}
	// Data survives eviction.
	s.StartRead(0, 0, 500)
	if got := s.MD(0, 600); got != 7 {
		t.Errorf("evicted data lost: %d", got)
	}
}

func TestBaseRegistersAndVA(t *testing.T) {
	s := newSys(t, Config{})
	s.SetBase(5, 0x10000)
	if got := s.VA(5, 0x1234); got != 0x11234 {
		t.Errorf("VA = %#x", got)
	}
	// 28-bit wrap.
	s.SetBase(6, VAMask)
	if got := s.VA(6, 1); got != 0 {
		t.Errorf("VA wrap = %#x", got)
	}
}

func TestMapOverride(t *testing.T) {
	s := newSys(t, Config{})
	s.MapSet(10, 20)
	s.Poke(20*PageWords+5, 0xABCD) // writes through the map: vpage 10 → rpage 20... Poke uses translate too
	if got := s.Peek(10*PageWords + 5); got != 0xABCD {
		t.Errorf("mapped read = %#04x", got)
	}
	if s.MapGet(10) != 20 {
		t.Errorf("MapGet = %d", s.MapGet(10))
	}
	if s.MapGet(11) != 11 {
		t.Errorf("identity MapGet = %d", s.MapGet(11))
	}
}

func TestFastIOBypassesCache(t *testing.T) {
	s := newSys(t, Config{})
	for i := uint32(0); i < LineWords; i++ {
		s.Poke(0x8000+i, uint16(i)*3)
	}
	blk, ok := s.FastRead(0x8000, 100)
	if !ok {
		t.Fatal("fast read rejected with free storage")
	}
	for i := range blk {
		if blk[i] != uint16(i)*3 {
			t.Errorf("blk[%d] = %d", i, blk[i])
		}
	}
	if s.CacheResident(0x8000) {
		t.Error("fast read polluted the cache")
	}
}

func TestFastReadSeesDirtyData(t *testing.T) {
	s := newSys(t, Config{})
	s.StartWrite(0, 0x8000, 0x7777, 0) // dirty in cache
	blk, ok := s.FastRead(0x8000, 50)
	if !ok {
		t.Fatal("fast read rejected")
	}
	if blk[0] != 0x7777 {
		t.Errorf("fast read missed dirty data: %#04x", blk[0])
	}
}

func TestFastWriteInvalidatesCache(t *testing.T) {
	s := newSys(t, Config{})
	s.StartRead(0, 0x8000, 0)
	s.MD(0, 100)
	var blk [LineWords]uint16
	blk[0] = 0x9999
	if !s.FastWrite(0x8000, blk, 200) {
		t.Fatal("fast write rejected")
	}
	s.StartRead(0, 0x8000, 300)
	if got := s.MD(0, 400); got != 0x9999 {
		t.Errorf("processor read stale data %#04x after fast write", got)
	}
}

func TestFastIORateLimit(t *testing.T) {
	s := newSys(t, Config{})
	if _, ok := s.FastRead(0, 0); !ok {
		t.Fatal("first block rejected")
	}
	if _, ok := s.FastRead(16, 4); ok {
		t.Error("second block accepted before storage cycle elapsed")
	}
	if _, ok := s.FastRead(16, 8); !ok {
		t.Error("second block rejected at 8 cycles")
	}
	// Full-rate streaming: one block per 8 cycles = 16 words × 16 bits /
	// (8 × 60ns) = 533 Mbit/s — the paper's 530 Mbit/s I/O bandwidth.
	words := 2 * LineWords
	bits := float64(words * 16)
	seconds := float64(16) * 60e-9
	mbits := bits / seconds / 1e6
	if mbits < 500 || mbits > 560 {
		t.Errorf("streaming bandwidth %.0f Mbit/s, want ≈533", mbits)
	}
}

func TestFlush(t *testing.T) {
	s := newSys(t, Config{})
	s.StartWrite(0, 0x100, 5, 0)
	if !s.CacheResident(0x100) {
		t.Fatal("line not resident")
	}
	before := s.Stats().Writebacks
	s.Flush(0x100, 10)
	if s.CacheResident(0x100) {
		t.Error("flush left line resident")
	}
	if s.Stats().Writebacks != before+1 {
		t.Error("dirty flush did not count a writeback")
	}
}

func TestPeekPokeRoundTrip(t *testing.T) {
	s := newSys(t, Config{StorageWords: 1 << 16})
	f := func(va uint32, v uint16) bool {
		va &= 0xFFFF
		s.Poke(va, v)
		return s.Peek(va) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{CacheWords: 100}); err == nil {
		t.Error("want error for non-divisible cache size")
	}
	if _, err := New(Config{CacheWords: 96, CacheWays: 2}); err == nil {
		t.Error("want error for non-power-of-two sets")
	}
	if _, err := New(Config{StorageWords: 17}); err == nil {
		t.Error("want error for odd storage size")
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := newSys(t, Config{})
	s.StartRead(0, 0, 0) // miss
	s.MD(0, 100)
	s.StartRead(0, 1, 200) // hit
	s.MD(0, 300)
	s.StartWrite(0, 2, 9, 400) // hit
	st := s.Stats()
	if st.Reads != 2 || st.Writes != 1 || st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}
