package memory

import "testing"

// BenchmarkStartReadHit measures the hot path of the simulation: a cache
// hit per call.
func BenchmarkStartReadHit(b *testing.B) {
	s, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	s.Warm(64)
	now := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 3
		s.StartRead(0, 64, now)
		s.MD(0, now+2)
	}
}

// BenchmarkStartReadMissSweep measures miss handling over a large stride.
func BenchmarkStartReadMissSweep(b *testing.B) {
	s, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	now := uint64(0)
	va := uint32(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 40
		va = (va + LineWords) & VAMask
		s.StartRead(0, va, now)
		s.MD(0, now+30)
	}
}
