// Package memory models the Dorado memory system (described in the
// companion report: Clark et al., "The memory system of a high-performance
// personal computer", CSL-81-1) at the fidelity the processor paper depends
// on:
//
//   - Virtual addresses are formed by adding a 16-bit displacement (the
//     MEMADDRESS bus, a copy of the processor's A bus) to one of 32
//     28-bit base registers selected by MEMBASE (§6.3.2 of the processor
//     paper).
//   - A page map translates virtual pages (256 words) to real pages.
//   - The cache answers a reference every cycle with a two-cycle latency
//     (§3), and is fully segmented: a new reference can start every cycle.
//   - Main storage is pipelined with an eight-cycle RAM cycle: a storage
//     reference (cache miss fill, writeback, or fast-I/O block) can start
//     at most once every eight cycles (§6.2.1).
//   - The memory tells the processor when data is ready via Hold (§5.7):
//     MDReady answers whether the task's most recent fetch has completed;
//     the processor converts a premature use into a "no-op, jump to self".
//   - Fast I/O moves aligned 16-word blocks directly between storage and
//     devices without polluting the cache (§5.8).
//
// Fidelity note: data movement is functional-immediate — a single flat
// store holds the contents, and the cache holds only *timing* metadata
// (tags, LRU, dirty bits). Timing (hit/miss latency, storage-pipe
// occupancy, writeback traffic) is modeled cycle-accurately; the contents
// of a location during the few cycles a miss is in flight are not. The
// paper's performance claims are cycle-count properties, which this
// preserves.
package memory
