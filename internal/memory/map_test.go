package memory

import "testing"

func TestMapFlagsRefAndDirty(t *testing.T) {
	s := newSys(t, Config{})
	s.SetMapFlags(4, MapFlags{}) // extend page 4 with flag tracking
	if f := s.MapFlagsOf(4); f.Ref || f.Dirty {
		t.Fatal("fresh page already referenced")
	}
	s.StartRead(0, 4*PageWords+3, 0)
	s.MD(0, 100)
	if f := s.MapFlagsOf(4); !f.Ref || f.Dirty {
		t.Errorf("after read: %+v", f)
	}
	s.StartWrite(0, 4*PageWords+3, 9, 200)
	if f := s.MapFlagsOf(4); !f.Dirty {
		t.Errorf("after write: %+v", f)
	}
}

func TestWriteProtectFault(t *testing.T) {
	s := newSys(t, Config{})
	s.Poke(5*PageWords, 0x1111)
	s.SetMapFlags(5, MapFlags{WP: true})
	var seen []Fault
	s.OnFault(func(f Fault) { seen = append(seen, f) })

	if !s.StartWrite(3, 5*PageWords, 0x2222, 10) {
		t.Fatal("faulting store must still be accepted (no Hold for faults)")
	}
	if got := s.Peek(5*PageWords + 0); got != 0x1111 {
		t.Errorf("write-protected data changed: %#04x", got)
	}
	if len(seen) != 1 || seen[0].Kind != FaultWP || seen[0].Task != 3 {
		t.Fatalf("fault callback = %+v", seen)
	}
	f, ok := s.TakeFault()
	if !ok || f.Kind != FaultWP || f.VA != 5*PageWords {
		t.Fatalf("TakeFault = %+v, %v", f, ok)
	}
	if _, ok := s.TakeFault(); ok {
		t.Error("fault not cleared by TakeFault")
	}
	// Reads of a WP page are fine.
	if !s.StartRead(0, 5*PageWords, 100) {
		t.Error("read of WP page refused")
	}
	if _, ok := s.LastFault(); ok {
		t.Error("read of WP page faulted")
	}
}

func TestVacantPageFaults(t *testing.T) {
	s := newSys(t, Config{})
	s.SetMapFlags(7, MapFlags{Vacant: true})
	s.StartRead(2, 7*PageWords+1, 0)
	f, ok := s.LastFault()
	if !ok || f.Kind != FaultVacant || f.Task != 2 {
		t.Fatalf("vacant read fault = %+v, %v", f, ok)
	}
	s.TakeFault()
	// MapSet re-maps the page and clears Vacant.
	s.MapSet(7, 9)
	s.StartRead(2, 7*PageWords+1, 100)
	if _, ok := s.LastFault(); ok {
		t.Error("mapped page still faulting")
	}
	if s.MapGet(7) != 9 {
		t.Errorf("translation = %d", s.MapGet(7))
	}
}

func TestFaultStats(t *testing.T) {
	s := newSys(t, Config{})
	s.SetMapFlags(8, MapFlags{WP: true})
	s.StartWrite(0, 8*PageWords, 1, 0)
	s.StartWrite(0, 8*PageWords+1, 2, 100)
	if got := s.Stats().Faults; got != 2 {
		t.Errorf("fault count = %d", got)
	}
}

func TestUnextendedPagesHaveNoFlagOverhead(t *testing.T) {
	s := newSys(t, Config{})
	s.StartRead(0, 100, 0)
	if len(s.vmapx) != 0 {
		t.Error("plain reference materialized a map entry")
	}
}

func TestStorageWrapCountsMapFault(t *testing.T) {
	s := newSys(t, Config{StorageWords: 1 << 12})
	before := s.Stats().MapFaults
	s.Poke(1<<12+5, 7) // past the end of real storage: wraps + counts
	if s.Stats().MapFaults != before+1 {
		t.Errorf("MapFaults = %d", s.Stats().MapFaults)
	}
	if s.Peek(5) != 7 {
		t.Errorf("wrapped write landed at %d", s.Peek(5))
	}
}
