package memory

import "fmt"

// LineWords is the cache line ("munch") size in 16-bit words. It equals the
// fast-I/O block size: storage moves data in 16-word units (§5.8).
const LineWords = 16

// cache is set-associative timing metadata over virtual addresses. The data
// itself lives in System.data; the cache tracks which lines would be
// resident, their dirtiness, and LRU order, to decide hit vs miss and
// writeback traffic.
type cache struct {
	sets  int
	ways  int
	lines []line // sets × ways
	clock uint32 // LRU timestamp source
	// stats
	hits, misses, writebacks uint64
}

type line struct {
	valid bool
	dirty bool
	tag   uint32 // va / LineWords / sets
	lru   uint32 // smaller = older
}

func newCache(words, ways int) (*cache, error) {
	if words%(LineWords*ways) != 0 {
		return nil, fmt.Errorf("memory: cache size %d not divisible by ways×line (%d×%d)", words, ways, LineWords)
	}
	sets := words / (LineWords * ways)
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("memory: cache set count %d not a power of two", sets)
	}
	return &cache{sets: sets, ways: ways, lines: make([]line, sets*ways)}, nil
}

func (c *cache) set(va uint32) []line {
	s := int(va/LineWords) & (c.sets - 1)
	return c.lines[s*c.ways : (s+1)*c.ways]
}

func (c *cache) tag(va uint32) uint32 { return va / LineWords / uint32(c.sets) }

// lookup reports whether va hits, updating LRU on hit.
func (c *cache) lookup(va uint32) bool {
	set := c.set(va)
	t := c.tag(va)
	for i := range set {
		if set[i].valid && set[i].tag == t {
			c.touch(&set[i])
			c.hits++
			return true
		}
	}
	c.misses++
	return false
}

// peek is lookup without LRU/stat side effects.
func (c *cache) peek(va uint32) bool {
	set := c.set(va)
	t := c.tag(va)
	for i := range set {
		if set[i].valid && set[i].tag == t {
			return true
		}
	}
	return false
}

func (c *cache) touch(l *line) {
	c.clock++
	l.lru = c.clock
}

// fill installs the line containing va, returning whether a dirty victim
// was evicted (which costs a writeback storage cycle).
func (c *cache) fill(va uint32) (evictedDirty bool) {
	set := c.set(va)
	victim := &set[0]
	for i := range set {
		if !set[i].valid {
			victim = &set[i]
			break
		}
		if set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	evictedDirty = victim.valid && victim.dirty
	if evictedDirty {
		c.writebacks++
	}
	*victim = line{valid: true, tag: c.tag(va)}
	c.touch(victim)
	return evictedDirty
}

// markDirty marks va's line dirty (assumes resident).
func (c *cache) markDirty(va uint32) {
	set := c.set(va)
	t := c.tag(va)
	for i := range set {
		if set[i].valid && set[i].tag == t {
			set[i].dirty = true
			return
		}
	}
}

// invalidate drops the line containing va if resident, reporting whether it
// was dirty (caller accounts the writeback).
func (c *cache) invalidate(va uint32) (wasDirty bool) {
	set := c.set(va)
	t := c.tag(va)
	for i := range set {
		if set[i].valid && set[i].tag == t {
			wasDirty = set[i].dirty
			set[i] = line{}
			if wasDirty {
				c.writebacks++
			}
			return wasDirty
		}
	}
	return false
}
