package memory

// The page map with protection and usage flags, from the memory-system
// companion report (Clark et al.): each virtual page carries, besides its
// real-page translation, a write-protect bit and hardware-maintained
// referenced and dirty bits; a reference that violates protection or
// touches a vacant page raises a fault, which on the Dorado woke a
// dedicated fault-handling microcode task rather than trapping the
// processor (faults are just another I/O-style event in a machine whose
// scheduler is free).

// MapFlags are the per-page map bits.
type MapFlags struct {
	// WP write-protects the page: stores fault and are suppressed.
	WP bool
	// Vacant marks the page as unmapped: any reference faults (reads
	// return garbage — here, the identity-mapped contents).
	Vacant bool
	// Ref is set by hardware on any reference to the page.
	Ref bool
	// Dirty is set by hardware on any store to the page.
	Dirty bool
}

// FaultKind classifies a map fault.
type FaultKind int

const (
	// FaultNone means no fault has occurred since the last TakeFault.
	FaultNone FaultKind = iota
	// FaultWP is a store to a write-protected page.
	FaultWP
	// FaultVacant is any reference to a vacant page.
	FaultVacant
)

// String returns the fault kind's short name ("wp", "vacant", ...).
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultWP:
		return "write-protect"
	case FaultVacant:
		return "vacant"
	}
	return "FaultKind(?)"
}

// Fault describes a map fault: the virtual address and what went wrong.
type Fault struct {
	Kind FaultKind
	VA   uint32
	Task int // the task whose reference faulted
}

// mapEntry is one page's translation and flags.
type mapEntry struct {
	rp    uint32
	flags MapFlags
}

// SetMapFlags sets the protection bits of virtual page vp (preserving the
// translation; identity if none was set).
func (s *System) SetMapFlags(vp uint32, f MapFlags) {
	vp &= VAMask / PageWords
	e := s.entry(vp)
	e.flags.WP = f.WP
	e.flags.Vacant = f.Vacant
	e.flags.Ref = f.Ref
	e.flags.Dirty = f.Dirty
	s.vmapx[vp] = e
}

// MapFlagsOf returns the flags of virtual page vp.
func (s *System) MapFlagsOf(vp uint32) MapFlags {
	vp &= VAMask / PageWords
	if e, ok := s.vmapx[vp]; ok {
		return e.flags
	}
	return MapFlags{}
}

// entry fetches (or synthesizes) the extended map entry for vp.
func (s *System) entry(vp uint32) mapEntry {
	if e, ok := s.vmapx[vp]; ok {
		return e
	}
	return mapEntry{rp: s.MapGet(vp)}
}

// LastFault returns the most recent fault, if any, without clearing it.
func (s *System) LastFault() (Fault, bool) { return s.fault, s.fault.Kind != FaultNone }

// TakeFault returns and clears the most recent fault — what the fault
// task's microcode does first.
func (s *System) TakeFault() (Fault, bool) {
	f := s.fault
	s.fault = Fault{}
	return f, f.Kind != FaultNone
}

// checkRef applies the flag side effects of a reference to va and reports
// a fault (recording it and counting it). Stores to WP pages must also be
// suppressed by the caller.
func (s *System) checkRef(task int, va uint32, isStore bool) (faulted bool) {
	vp := (va & VAMask) / PageWords
	e, ok := s.vmapx[vp]
	if !ok {
		return false // unextended pages have no flags to maintain
	}
	switch {
	case e.flags.Vacant:
		s.recordFault(Fault{Kind: FaultVacant, VA: va & VAMask, Task: task})
		faulted = true
	case isStore && e.flags.WP:
		s.recordFault(Fault{Kind: FaultWP, VA: va & VAMask, Task: task})
		faulted = true
	}
	e.flags.Ref = true
	if isStore && !faulted {
		e.flags.Dirty = true
	}
	s.vmapx[vp] = e
	return faulted
}

func (s *System) recordFault(f Fault) {
	s.fault = f
	s.stats.Faults++
	if s.faultNotify != nil {
		s.faultNotify(f)
	}
}

// OnFault installs a callback invoked at every map fault (the processor
// uses it to wake the fault-handling task).
func (s *System) OnFault(fn func(Fault)) { s.faultNotify = fn }
