package memory

import (
	"fmt"
	"sort"

	"dorado/internal/state"
)

// Snapshot sections owned by the memory system. The configuration section
// exists so a restore into a differently-sized or differently-timed memory
// fails loudly instead of continuing with divergent timing.
const (
	sectMemConfig  = "MCFG"
	sectMemState   = "MEMS"
	sectMemStorage = "MDAT"
	sectMemCache   = "MCCH"
)

// SaveState appends the memory system's complete state to a snapshot:
// configuration fingerprint, base registers, page map, per-task MD state,
// storage-pipe timing, fault latch, counters, the cache's residency/LRU
// metadata, and the full storage contents.
func (s *System) SaveState(e *state.Encoder) {
	e.Section(sectMemConfig)
	e.U32(uint32(s.cfg.CacheWords))
	e.U32(uint32(s.cfg.CacheWays))
	e.U32(uint32(s.cfg.StorageWords))
	e.U32(uint32(s.cfg.HitLatency))
	e.U32(uint32(s.cfg.MissLatency))
	e.U32(uint32(s.cfg.StorageCycle))

	e.Section(sectMemState)
	e.U64(s.storageFreeAt)
	for _, b := range s.base {
		e.U32(b)
	}
	for i := range s.md {
		md := &s.md[i]
		e.U16(md.val)
		e.U64(md.readyAt)
		e.U64(md.issueAt)
		e.Bool(md.pending)
	}
	e.U8(uint8(s.fault.Kind))
	e.U32(s.fault.VA)
	e.U8(uint8(s.fault.Task))
	e.U64(s.stats.Reads)
	e.U64(s.stats.Writes)
	e.U64(s.stats.StorageOps)
	e.U64(s.stats.FastReads)
	e.U64(s.stats.FastWrites)
	e.U64(s.stats.MapFaults)
	e.U64(s.stats.Faults)
	// The page-map overrides, sorted by virtual page so the encoding is
	// canonical (Go map iteration order is deliberately random).
	vps := make([]uint32, 0, len(s.vmapx))
	for vp := range s.vmapx {
		vps = append(vps, vp)
	}
	sort.Slice(vps, func(i, j int) bool { return vps[i] < vps[j] })
	e.U32(uint32(len(vps)))
	for _, vp := range vps {
		ent := s.vmapx[vp]
		e.U32(vp)
		e.U32(ent.rp)
		e.Bool(ent.flags.WP)
		e.Bool(ent.flags.Vacant)
		e.Bool(ent.flags.Ref)
		e.Bool(ent.flags.Dirty)
	}

	e.Section(sectMemCache)
	e.U32(s.cache.clock)
	e.U64(s.cache.hits)
	e.U64(s.cache.misses)
	e.U64(s.cache.writebacks)
	for i := range s.cache.lines {
		l := &s.cache.lines[i]
		e.Bool(l.valid)
		e.Bool(l.dirty)
		e.U32(l.tag)
		e.U32(l.lru)
	}

	e.Section(sectMemStorage)
	e.U16s(s.data)
}

// LoadState restores the memory system from a snapshot taken by SaveState.
// The target system must have been built with the identical configuration.
func (s *System) LoadState(d *state.Decoder) error {
	if err := d.Section(sectMemConfig); err != nil {
		return err
	}
	got := Config{
		CacheWords:   int(d.U32()),
		CacheWays:    int(d.U32()),
		StorageWords: int(d.U32()),
		HitLatency:   int(d.U32()),
		MissLatency:  int(d.U32()),
		StorageCycle: int(d.U32()),
	}
	if err := d.Err(); err != nil {
		return err
	}
	if got != s.cfg {
		return fmt.Errorf("memory: snapshot config %+v, machine config %+v", got, s.cfg)
	}

	if err := d.Section(sectMemState); err != nil {
		return err
	}
	s.storageFreeAt = d.U64()
	for i := range s.base {
		s.base[i] = d.U32()
	}
	for i := range s.md {
		md := &s.md[i]
		md.val = d.U16()
		md.readyAt = d.U64()
		md.issueAt = d.U64()
		md.pending = d.Bool()
	}
	s.fault = Fault{Kind: FaultKind(d.U8()), VA: d.U32(), Task: int(d.U8())}
	s.stats.Reads = d.U64()
	s.stats.Writes = d.U64()
	s.stats.StorageOps = d.U64()
	s.stats.FastReads = d.U64()
	s.stats.FastWrites = d.U64()
	s.stats.MapFaults = d.U64()
	s.stats.Faults = d.U64()
	n := d.U32()
	s.vmapx = make(map[uint32]mapEntry, n)
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		vp := d.U32()
		var ent mapEntry
		ent.rp = d.U32()
		ent.flags.WP = d.Bool()
		ent.flags.Vacant = d.Bool()
		ent.flags.Ref = d.Bool()
		ent.flags.Dirty = d.Bool()
		s.vmapx[vp] = ent
	}

	if err := d.Section(sectMemCache); err != nil {
		return err
	}
	s.cache.clock = d.U32()
	s.cache.hits = d.U64()
	s.cache.misses = d.U64()
	s.cache.writebacks = d.U64()
	for i := range s.cache.lines {
		l := &s.cache.lines[i]
		l.valid = d.Bool()
		l.dirty = d.Bool()
		l.tag = d.U32()
		l.lru = d.U32()
	}

	if err := d.Section(sectMemStorage); err != nil {
		return err
	}
	d.U16s(s.data)
	return d.Err()
}
