package core

import (
	"testing"

	"dorado/internal/masm"
	"dorado/internal/microcode"
)

// buildMachine assembles b and loads it into a fresh machine with task 0
// started at the "start" label.
func buildMachine(t *testing.T, cfg Config, b *masm.Builder) *Machine {
	t.Helper()
	m, _ := buildMachineProg(t, cfg, b)
	return m
}

// buildMachineProg is buildMachine returning the placed program too (for
// tests that set up device-task TPCs from labels).
func buildMachineProg(t *testing.T, cfg Config, b *masm.Builder) (*Machine, *masm.Program) {
	t.Helper()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Load(&p.Words)
	start, err := p.Entry("start")
	if err != nil {
		t.Fatal(err)
	}
	m.Start(start)
	return m, p
}

// mustHalt runs until Halt, failing on timeout.
func mustHalt(t *testing.T, m *Machine, max uint64) {
	t.Helper()
	if !m.Run(max) {
		t.Fatalf("machine did not halt in %d cycles (task %d pc %v)", max, m.CurTask(), m.CurPC())
	}
}

func TestIncrementLoop(t *testing.T) {
	// T counts up while COUNT counts 9→0: ten iterations.
	b := masm.NewBuilder()
	b.EmitAt("start", masm.I{FF: microcode.FFCountBase + 9})
	b.EmitAt("loop", masm.I{LC: microcode.LCLoadT, ALU: microcode.ALUAplus1, A: microcode.ASelT})
	b.Emit(masm.I{Flow: masm.Branch(microcode.CondCountNZ, "", "loop")})
	b.Halt()
	m := buildMachine(t, Config{}, b)
	mustHalt(t, m, 1000)
	if got := m.T(0); got != 10 {
		t.Errorf("T = %d, want 10", got)
	}
	// 1 setup + 10×(inc+branch) + halt.
	if m.Stats().Executed != 1+20+1 {
		t.Errorf("executed %d instructions", m.Stats().Executed)
	}
}

func TestConstantsIntoRegisters(t *testing.T) {
	b := masm.NewBuilder()
	b.EmitAt("start", masm.I{Const: 0x00FE, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	b.Emit(masm.I{Const: 0xFF80, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadRM, R: 5})
	b.Emit(masm.I{Const: 0x4200, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadRM, R: 6})
	b.Halt()
	m := buildMachine(t, Config{}, b)
	mustHalt(t, m, 100)
	if m.T(0) != 0x00FE {
		t.Errorf("T = %#04x", m.T(0))
	}
	if m.RM(5) != 0xFF80 {
		t.Errorf("RM5 = %#04x", m.RM(5))
	}
	if m.RM(6) != 0x4200 {
		t.Errorf("RM6 = %#04x", m.RM(6))
	}
}

func TestRMBankViaRBase(t *testing.T) {
	b := masm.NewBuilder()
	// RBASE←2 via put-from-B (constant 2 on B), then RM[2*16+3] ← T.
	b.EmitAt("start", masm.I{Const: 2, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFPutRBase})
	b.Emit(masm.I{Const: 0x0077, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadRM, R: 3})
	b.Halt()
	m := buildMachine(t, Config{}, b)
	mustHalt(t, m, 100)
	if m.RM(2*16+3) != 0x0077 {
		t.Errorf("RM[35] = %#04x", m.RM(2*16+3))
	}
	if m.RM(3) != 0 {
		t.Errorf("RM[3] = %#04x, bank not applied", m.RM(3))
	}
}

func TestCallReturn(t *testing.T) {
	b := masm.NewBuilder()
	b.EmitAt("start", masm.I{Flow: masm.Call("sub")})
	// Continuation (must be at call+1): mark T bit 1.
	b.Emit(masm.I{Const: 0x0001, HasConst: true, ALU: microcode.ALUAorB, A: microcode.ASelT, LC: microcode.LCLoadT})
	b.Halt()
	// Subroutine: T ← 0x0100.
	b.EmitAt("sub", masm.I{Const: 0x0100, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT, Flow: masm.Return()})
	m := buildMachine(t, Config{}, b)
	mustHalt(t, m, 100)
	if m.T(0) != 0x0101 {
		t.Errorf("T = %#04x: call/return path broken", m.T(0))
	}
}

func TestNestedCallViaLinkSave(t *testing.T) {
	// LINK is a single task-specific register; nested calls save it
	// explicitly (the paper: LINK "can also be loaded from a data bus").
	b := masm.NewBuilder()
	b.EmitAt("start", masm.I{Flow: masm.Call("outer")})
	b.Emit(masm.I{Const: 0x0001, HasConst: true, ALU: microcode.ALUAorB, A: microcode.ASelT, LC: microcode.LCLoadT})
	b.Halt()
	b.EmitAt("outer", masm.I{FF: microcode.FFGetLink, LC: microcode.LCLoadRM, R: 9})
	b.Emit(masm.I{Flow: masm.Call("inner")})
	b.Emit(masm.I{B: microcode.BSelRM, R: 9, FF: microcode.FFPutLink, Flow: masm.Return()}) // restore + return
	b.EmitAt("inner", masm.I{Const: 0x0010, HasConst: true, ALU: microcode.ALUAorB, A: microcode.ASelT, LC: microcode.LCLoadT, Flow: masm.Return()})
	m := buildMachine(t, Config{}, b)
	mustHalt(t, m, 100)
	if m.T(0) != 0x0011 {
		t.Errorf("T = %#04x: nested call broken", m.T(0))
	}
}

func TestStackPushPop(t *testing.T) {
	b := masm.NewBuilder()
	// Push 3 constants, then pop and sum them.
	b.EmitAt("start", masm.I{Const: 10, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadRM, Block: true, R: 1}) // push 10
	b.Emit(masm.I{Const: 20, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadRM, Block: true, R: 1})            // push 20
	b.Emit(masm.I{Const: 30, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadRM, Block: true, R: 1})            // push 30
	// T ← pop (30); then T ← T + pop twice.
	b.Emit(masm.I{ALU: microcode.ALUA, Block: true, R: 15, LC: microcode.LCLoadT}) // pop: delta −1
	b.Emit(masm.I{ALU: microcode.ALUAplusB, Block: true, R: 15, B: microcode.BSelT, LC: microcode.LCLoadT})
	b.Emit(masm.I{ALU: microcode.ALUAplusB, Block: true, R: 15, B: microcode.BSelT, LC: microcode.LCLoadT})
	b.Halt()
	m := buildMachine(t, Config{}, b)
	mustHalt(t, m, 100)
	if m.T(0) != 60 {
		t.Errorf("T = %d, want 60", m.T(0))
	}
	if m.StackPtr() != 0 {
		t.Errorf("STACKPTR = %d, want 0", m.StackPtr())
	}
}

func TestStackUnderflowSetsError(t *testing.T) {
	b := masm.NewBuilder()
	// Pop from an empty stack → StackError branch condition.
	b.EmitAt("start", masm.I{ALU: microcode.ALUA, Block: true, R: 15, LC: microcode.LCLoadT})
	b.Emit(masm.I{Flow: masm.Branch(microcode.CondStackError, "ok", "err")})
	b.EmitAt("ok", masm.I{Flow: masm.Goto("done")})
	b.EmitAt("err", masm.I{Const: 0x00EE, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	b.EmitAt("done", masm.I{FF: microcode.FFHalt, Flow: masm.Self()})
	m := buildMachine(t, Config{}, b)
	mustHalt(t, m, 100)
	if m.T(0) != 0x00EE {
		t.Errorf("T = %#04x: underflow not detected", m.T(0))
	}
}

func TestFourIndependentStacks(t *testing.T) {
	b := masm.NewBuilder()
	// Select stack 2 (STACKPTR = 0x80), push 7; select stack 0, push 9.
	b.EmitAt("start", masm.I{Const: 0x0080, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFPutStackPtr})
	b.Emit(masm.I{Const: 7, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadRM, Block: true, R: 1})
	b.Emit(masm.I{Const: 0, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFPutStackPtr})
	b.Emit(masm.I{Const: 9, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadRM, Block: true, R: 1})
	b.Halt()
	m := buildMachine(t, Config{}, b)
	mustHalt(t, m, 100)
	if m.Stack(0x81) != 7 {
		t.Errorf("stack2[1] = %d", m.Stack(0x81))
	}
	if m.Stack(0x01) != 9 {
		t.Errorf("stack0[1] = %d", m.Stack(0x01))
	}
}

func TestBranchConditions(t *testing.T) {
	// Compare-and-branch in one instruction: T-RM sets flags, branch on zero.
	b := masm.NewBuilder()
	b.EmitAt("start", masm.I{Const: 5, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	b.Emit(masm.I{Const: 5, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadRM, R: 1})
	b.Emit(masm.I{ALU: microcode.ALUAminusB, A: microcode.ASelT, B: microcode.BSelRM, R: 1,
		Flow: masm.Branch(microcode.CondALUZero, "ne", "eq")})
	b.EmitAt("ne", masm.I{Const: 0x00BB, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT, Flow: masm.Goto("done")})
	b.EmitAt("eq", masm.I{Const: 0x00AA, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	b.EmitAt("done", masm.I{FF: microcode.FFHalt, Flow: masm.Self()})
	m := buildMachine(t, Config{}, b)
	mustHalt(t, m, 100)
	if m.T(0) != 0x00AA {
		t.Errorf("T = %#04x: equal compare took wrong arm", m.T(0))
	}
}

func TestMemoryFetchStore(t *testing.T) {
	b := masm.NewBuilder()
	// RM1 = address 100; store T=0x1234 to mem[100]; fetch it back into T.
	b.EmitAt("start", masm.I{Const: 100, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadRM, R: 1})
	b.Emit(masm.I{Const: 0x12FF, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	b.Emit(masm.I{A: microcode.ASelStore, R: 1, B: microcode.BSelT})
	b.Emit(masm.I{Const: 0, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT}) // clear T
	b.Emit(masm.I{A: microcode.ASelFetch, R: 1})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadT}) // holds until MD ready
	b.Halt()
	m := buildMachine(t, Config{}, b)
	mustHalt(t, m, 1000)
	if m.T(0) != 0x12FF {
		t.Errorf("T = %#04x after store/fetch round trip", m.T(0))
	}
	if m.Mem().Peek(100) != 0x12FF {
		t.Errorf("mem[100] = %#04x", m.Mem().Peek(100))
	}
	st := m.Stats()
	if st.HoldMD == 0 {
		t.Error("MD use after fetch should have held at least one cycle")
	}
}

func TestHoldCostHitVsMiss(t *testing.T) {
	// Fetch+use with a warm cache holds ~1 cycle; a cold miss holds ~25.
	prog := func() *masm.Builder {
		b := masm.NewBuilder()
		b.EmitAt("start", masm.I{Const: 64, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadRM, R: 1})
		b.Emit(masm.I{A: microcode.ASelFetch, R: 1})
		b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadT})
		b.Emit(masm.I{A: microcode.ASelFetch, R: 1}) // second fetch: now warm
		b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadT})
		b.Halt()
		return b
	}
	m := buildMachine(t, Config{}, prog())
	mustHalt(t, m, 1000)
	st := m.Stats()
	// Cold: 25 held cycles (miss latency 26, MD used the cycle after issue);
	// warm: 1 held cycle (hit latency 2).
	if st.HoldMD < 20 || st.HoldMD > 30 {
		t.Errorf("HoldMD = %d, want ≈26 (miss) + 1 (hit)", st.HoldMD)
	}
}

func TestShifterThroughMicrocode(t *testing.T) {
	b := masm.NewBuilder()
	// RM1=0x1234, T=0x5678; SHIFTCTL=rot4; Shift → T.
	b.EmitAt("start", masm.I{Const: 0x1200, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadRM, R: 1})
	b.Emit(masm.I{Const: 0x0034, HasConst: true, ALU: microcode.ALUAorB, A: microcode.ASelRM, R: 1, LC: microcode.LCLoadRM})
	b.Emit(masm.I{Const: 0x5600, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	b.Emit(masm.I{Const: 0x0078, HasConst: true, ALU: microcode.ALUAorB, A: microcode.ASelT, LC: microcode.LCLoadT})
	b.Emit(masm.I{FF: microcode.FFRotBase + 4})
	b.Emit(masm.I{FF: microcode.FFShiftNoMask, R: 1, LC: microcode.LCLoadT})
	b.Halt()
	m := buildMachine(t, Config{}, b)
	mustHalt(t, m, 100)
	if m.T(0) != 0x2345 {
		t.Errorf("shift result = %#04x, want 0x2345", m.T(0))
	}
}

func TestDispatch8Execution(t *testing.T) {
	b := masm.NewBuilder()
	labels := []string{"d0", "d1", "d2", "d3", "d4", "d5", "d6", "d7"}
	b.EmitAt("start", masm.I{Const: 5, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	b.Emit(masm.I{B: microcode.BSelT, Flow: masm.Dispatch8(labels...)})
	for i, l := range labels {
		b.EmitAt(l, masm.I{Const: uint16(0x10 + i), HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT, Flow: masm.Goto("done")})
	}
	b.EmitAt("done", masm.I{FF: microcode.FFHalt, Flow: masm.Self()})
	m := buildMachine(t, Config{}, b)
	mustHalt(t, m, 100)
	if m.T(0) != 0x15 {
		t.Errorf("dispatch landed at %#04x, want 0x15", m.T(0))
	}
}

func TestDispatch256Execution(t *testing.T) {
	b := masm.NewBuilder()
	table := make([]string, 256)
	for i := range table {
		table[i] = "low"
		if i >= 128 {
			table[i] = "high"
		}
	}
	b.EmitAt("start", masm.I{Const: 0x00C3, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	b.Emit(masm.I{B: microcode.BSelT, Flow: masm.Dispatch256(table)})
	b.EmitAt("low", masm.I{Const: 1, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT, Flow: masm.Goto("done")})
	b.EmitAt("high", masm.I{Const: 2, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT, Flow: masm.Goto("done")})
	b.EmitAt("done", masm.I{FF: microcode.FFHalt, Flow: masm.Self()})
	m := buildMachine(t, Config{}, b)
	mustHalt(t, m, 100)
	if m.T(0) != 2 {
		t.Errorf("dispatch256(0xC3) landed wrong: T=%d", m.T(0))
	}
}

func TestMultiplyMicrocode(t *testing.T) {
	// Full 16-step multiply in microcode: Q=multiplier, RM1=multiplicand,
	// T accumulates; loop via COUNT.
	b := masm.NewBuilder()
	b.EmitAt("start", masm.I{Const: 0xFF00, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT}) // T=0xFF00 temp
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFPutQ})                                             // Q=0xFF00 (multiplier)
	b.Emit(masm.I{Const: 0x00FF, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadRM, R: 1})     // RM1=0x00FF
	b.Emit(masm.I{Const: 0, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT})                 // T=0
	b.Emit(masm.I{FF: microcode.FFCountBase + 15})
	b.EmitAt("mul", masm.I{FF: microcode.FFMulStep, A: microcode.ASelT, B: microcode.BSelRM, R: 1, LC: microcode.LCLoadT})
	b.Emit(masm.I{Flow: masm.Branch(microcode.CondCountNZ, "", "mul")})
	b.Halt()
	m := buildMachine(t, Config{}, b)
	mustHalt(t, m, 1000)
	got := uint32(m.T(0))<<16 | uint32(m.Q())
	if got != 0xFF00*0x00FF {
		t.Errorf("product = %#x, want %#x", got, 0xFF00*0x00FF)
	}
}

func TestHaltFromUnusedStore(t *testing.T) {
	// Jumping into unplaced microstore halts instead of executing garbage.
	b := masm.NewBuilder()
	b.EmitAt("start", masm.I{Const: 0x0FFF, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFPutLink})
	b.Emit(masm.I{Flow: masm.Return()}) // top of the store: never placed
	m := buildMachine(t, Config{}, b)
	mustHalt(t, m, 100)
	if m.HaltPC() != 0x0FFF {
		t.Errorf("halted at %v, want 0FF.F", m.HaltPC())
	}
}

func TestIOAddressAndLoopback(t *testing.T) {
	// Covered in sched_test.go with devices; here: IOADDRESS put/get.
	b := masm.NewBuilder()
	b.EmitAt("start", masm.I{Const: 7, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFPutIOAddress})
	b.Emit(masm.I{FF: microcode.FFGetIOAddress, LC: microcode.LCLoadRM, R: 2})
	b.Halt()
	m := buildMachine(t, Config{}, b)
	mustHalt(t, m, 100)
	if m.RM(2) != 7 {
		t.Errorf("IOADDRESS readback = %d", m.RM(2))
	}
}

func TestLoadBothWritesRMAndT(t *testing.T) {
	b := masm.NewBuilder()
	b.EmitAt("start", masm.I{Const: 0x00AB, HasConst: true, ALU: microcode.ALUB,
		LC: microcode.LCLoadBoth, R: 6})
	b.Halt()
	m := buildMachine(t, Config{}, b)
	mustHalt(t, m, 100)
	if m.RM(6) != 0x00AB || m.T(0) != 0x00AB {
		t.Errorf("LoadBoth: RM6=%#x T=%#x", m.RM(6), m.T(0))
	}
}

func TestStackOverflowSetsError(t *testing.T) {
	// 64 pushes fit stack 0 exactly... the 64th crosses into word 0 again:
	// pushing from word 63 wraps and must flag.
	b := masm.NewBuilder()
	b.EmitAt("start", masm.I{FF: microcode.FFCountBase + 14}) // 15 iterations of 4+... use explicit loop of 63 pushes? Use COUNT 62.
	b.Emit(masm.I{Const: 62, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFPutCount})
	b.EmitAt("push", masm.I{Const: 1, HasConst: true, ALU: microcode.ALUB,
		LC: microcode.LCLoadRM, Block: true, R: 1,
		Flow: masm.Branch(microcode.CondCountNZ, "more", "push")})
	// 63 pushes done (ptr=63); no error yet.
	b.EmitAt("more", masm.I{Flow: masm.Branch(microcode.CondStackError, "ok1", "bad")})
	b.EmitAt("ok1", masm.I{Const: 1, HasConst: true, ALU: microcode.ALUB,
		LC: microcode.LCLoadRM, Block: true, R: 1}) // the 64th push: overflow
	b.Emit(masm.I{Flow: masm.Branch(microcode.CondStackError, "bad2", "flagged")})
	b.EmitAt("bad", masm.I{FF: microcode.FFHalt, Flow: masm.Self()})
	b.EmitAt("bad2", masm.I{FF: microcode.FFHalt, Flow: masm.Self()})
	b.EmitAt("flagged", masm.I{Const: 0x0042, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	b.Halt()
	m := buildMachine(t, Config{}, b)
	mustHalt(t, m, 10_000)
	if m.T(0) != 0x0042 {
		t.Fatalf("overflow detection path wrong (T=%#x, STKP=%d)", m.T(0), m.StackPtr())
	}
}

func TestDispatch8FromQ(t *testing.T) {
	// The dispatch selector comes from the B bus; any B source works.
	b := masm.NewBuilder()
	labels := []string{"q0", "q1", "q2", "q3", "q4", "q5", "q6", "q7"}
	b.EmitAt("start", masm.I{Const: 6, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFPutQ})
	b.Emit(masm.I{B: microcode.BSelQ, Flow: masm.Dispatch8(labels...)})
	for i, l := range labels {
		b.EmitAt(l, masm.I{Const: uint16(i), HasConst: true, ALU: microcode.ALUB,
			LC: microcode.LCLoadT, Flow: masm.Goto("fin")})
	}
	b.EmitAt("fin", masm.I{FF: microcode.FFHalt, Flow: masm.Self()})
	m := buildMachine(t, Config{}, b)
	mustHalt(t, m, 100)
	if m.T(0) != 6 {
		t.Errorf("dispatch on Q landed at %d", m.T(0))
	}
}
