package core

import (
	"bytes"
	"testing"

	"dorado/internal/device"
	"dorado/internal/ifu"
	"dorado/internal/masm"
	"dorado/internal/memory"
	"dorado/internal/microcode"
)

// The translated-path differential harness. The tracer-based diffMachines
// cannot exercise translation (an attached tracer routes Run through the
// generic loop), so these tests compare machine *snapshots* instead: all
// three execution paths — reference, predecoded, translated — run the same
// scenario in lockstep chunks and must produce byte-identical snapshots at
// every chunk boundary. The chunk size is prime so the cycle budget
// repeatedly expires mid-superblock, covering the partial-block exit.

// translateTestCfg makes blocks form fast in short tests.
var translateTestCfg = Translation{Enable: true, HotThreshold: 4}

// smallMem keeps per-chunk snapshots cheap (a snapshot embeds storage).
var smallMem = memory.Config{CacheWords: 256, CacheWays: 2, StorageWords: 1 << 16}

// diffTranslated builds the scenario on all three paths and lockstep-runs
// them, comparing snapshots every chunk cycles. Returns the translated
// machine for stats assertions.
func diffTranslated(t *testing.T, name string, total, chunk uint64, build func(cfg Config) (*Machine, error)) *Machine {
	t.Helper()
	ref, err := build(Config{Reference: true})
	if err != nil {
		t.Fatalf("%s: build reference: %v", name, err)
	}
	pre, err := build(Config{})
	if err != nil {
		t.Fatalf("%s: build predecoded: %v", name, err)
	}
	tr, err := build(Config{Translation: translateTestCfg})
	if err != nil {
		t.Fatalf("%s: build translated: %v", name, err)
	}
	machines := []*Machine{ref, pre, tr}
	labels := []string{"reference", "predecoded", "translated"}
	for done := uint64(0); done < total; done += chunk {
		k := chunk
		if left := total - done; left < k {
			k = left
		}
		for _, m := range machines {
			m.RunCycles(k)
		}
		base := ref.Snapshot()
		for i := 1; i < len(machines); i++ {
			snap := machines[i].Snapshot()
			if !bytes.Equal(base, snap) {
				t.Fatalf("%s: %s snapshot diverges from reference at cycle %d, first differing byte %d",
					name, labels[i], ref.Cycle(), firstDiffIndex(base, snap))
			}
		}
		if ref.Halted() {
			break
		}
	}
	return tr
}

func firstDiffIndex(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func TestTranslationConfigValidation(t *testing.T) {
	if _, err := New(Config{Translation: Translation{Enable: true}, Reference: true}); err == nil {
		t.Error("New accepted Translation with Reference")
	}
	if _, err := New(Config{Translation: Translation{Enable: true}, Options: Options{NoBypass: true}}); err == nil {
		t.Error("New accepted Translation with an Options ablation")
	}
	m, err := New(Config{Translation: Translation{Enable: true}})
	if err != nil {
		t.Fatalf("New rejected plain Translation: %v", err)
	}
	if m.trans == nil {
		t.Fatal("Translation enabled but no translator allocated")
	}
	if got := m.trans.cfg; got.HotThreshold != 64 || got.MaxBlock != 48 {
		t.Errorf("defaults = %+v, want HotThreshold 64, MaxBlock 48", got)
	}
	if m2, err := New(Config{}); err != nil || m2.trans != nil {
		t.Errorf("plain machine got a translator (err %v)", err)
	}
}

// TestTranslatedDifferentialALU: a hot data-section loop — §5.9 constants,
// COUNT branch, CALL/RETURN, Q, FF RM-redirect — the fuseALU template's
// home turf plus fused terminators (branch, return).
func TestTranslatedDifferentialALU(t *testing.T) {
	bl := masm.NewBuilder()
	bl.EmitAt("start", masm.I{ALU: microcode.ALUB, Const: 0x00FF, HasConst: true, LC: microcode.LCLoadT})
	bl.Emit(masm.I{FF: microcode.FFCountBase + 9, Flow: masm.Goto("loop")})
	bl.EmitAt("loop", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelT, LC: microcode.LCLoadT})
	bl.Emit(masm.I{FF: microcode.FFPutQ, ALU: microcode.ALUAplusB, A: microcode.ASelT, B: microcode.BSelRM, R: 1, LC: microcode.LCLoadRM, Flow: masm.Call("sub")})
	bl.Emit(masm.I{FF: microcode.FFRMDestBase + 5, ALU: microcode.ALUAxorB, A: microcode.ASelT, B: microcode.BSelQ, LC: microcode.LCLoadRM, R: 1})
	bl.Emit(masm.I{ALU: microcode.ALUAminusB, A: microcode.ASelRM, R: 5, B: microcode.BSelT,
		Flow: masm.Branch(microcode.CondCountNZ, "done", "loop")})
	bl.EmitAt("done", masm.I{FF: microcode.FFHalt, Flow: masm.Self()})
	bl.EmitAt("sub", masm.I{ALU: microcode.ALUAorB, A: microcode.ASelT, B: microcode.BSelQ,
		LC: microcode.LCLoadT, Flow: masm.Return()})
	p := mustProgram(t, bl)
	tr := diffTranslated(t, "alu", 600, 7, func(cfg Config) (*Machine, error) {
		cfg.Memory = smallMem
		m, err := New(cfg)
		if err != nil {
			return nil, err
		}
		m.Load(&p.Words)
		m.SetRM(1, 0x1234)
		m.Start(p.MustEntry("start"))
		return m, nil
	})
	st := tr.TranslationStats()
	if st.BlocksBuilt == 0 || st.Entries == 0 {
		t.Errorf("hot ALU loop built no superblocks: %+v", st)
	}
}

// TestTranslatedDifferentialStackMemory: the task-0 stack modifier (blocks
// become task0Only) interleaved with memory fetches whose MD use holds
// mid-block — the fallback contract for holds inside fused runs.
func TestTranslatedDifferentialStackMemory(t *testing.T) {
	bl := masm.NewBuilder()
	bl.EmitAt("start", masm.I{FF: microcode.FFCountBase + 40, Flow: masm.Goto("loop")})
	bl.EmitAt("loop", masm.I{Block: true, R: 1, ALU: microcode.ALUB, Const: 0x0011, HasConst: true,
		LC: microcode.LCLoadRM}) // push
	bl.Emit(masm.I{FF: microcode.FFMemBaseBase + 2, A: microcode.ASelFetch, R: 2}) // fetch base2+RM[2]
	bl.Emit(masm.I{ALU: microcode.ALUAplusB, A: microcode.ASelMD, B: microcode.BSelRM,
		Block: true, R: 0, LC: microcode.LCLoadRM}) // MD + top (holds until MD ready)
	bl.Emit(masm.I{A: microcode.ASelStore, R: 2, B: microcode.BSelT})
	bl.Emit(masm.I{Block: true, R: 0xF, ALU: microcode.ALUA, A: microcode.ASelRM, LC: microcode.LCLoadT,
		Flow: masm.Branch(microcode.CondCountNZ, "done", "loop")}) // pop
	bl.EmitAt("done", masm.I{FF: microcode.FFHalt, Flow: masm.Self()})
	p := mustProgram(t, bl)
	tr := diffTranslated(t, "stack-memory", 1200, 7, func(cfg Config) (*Machine, error) {
		cfg.Memory = smallMem
		m, err := New(cfg)
		if err != nil {
			return nil, err
		}
		m.Load(&p.Words)
		m.Mem().SetBase(2, 0x6000)
		m.Mem().Poke(0x6010, 0x0300)
		m.SetRM(2, 0x10)
		m.Start(p.MustEntry("start"))
		return m, nil
	})
	st := tr.TranslationStats()
	if st.BlocksBuilt == 0 {
		t.Errorf("hot stack loop built no superblocks: %+v", st)
	}
	if s := tr.Stats(); s.Holds == 0 {
		t.Errorf("scenario produced no holds; mid-block hold fallback not exercised")
	}
}

// TestTranslatedDifferentialDevices: two controllers thrash task switches —
// wakeups preempt task 0 mid-block, service blocks Block-release, and the
// generic runBlock scheduler epilogue runs every fused cycle.
func TestTranslatedDifferentialDevices(t *testing.T) {
	bl := masm.NewBuilder()
	bl.EmitAt("emu", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 0, LC: microcode.LCLoadRM})
	bl.Emit(masm.I{ALU: microcode.ALUAplusB, A: microcode.ASelRM, R: 0, B: microcode.BSelT, LC: microcode.LCLoadT})
	bl.Emit(masm.I{ALU: microcode.ALUAxorB, A: microcode.ASelT, B: microcode.BSelRM, R: 0,
		LC: microcode.LCLoadT, Flow: masm.Goto("emu")})
	bl.EmitAt("svc", masm.I{FF: microcode.FFInput, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	bl.Emit(masm.I{A: microcode.ASelStore, R: 1, B: microcode.BSelT,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM, Block: true, Flow: masm.Goto("svc")})
	p := mustProgram(t, bl)
	tr := diffTranslated(t, "devices", 20_000, 101, func(cfg Config) (*Machine, error) {
		cfg.Memory = smallMem
		m, err := New(cfg)
		if err != nil {
			return nil, err
		}
		m.Load(&p.Words)
		m.Start(p.MustEntry("emu"))
		for _, task := range []int{9, 11} {
			if err := m.Attach(newProbeBench(task)); err != nil {
				return nil, err
			}
			m.SetIOAddress(task, uint16(task))
			m.SetTPC(task, p.MustEntry("svc"))
			m.SetRM(1, 0x6000)
		}
		return m, nil
	})
	st := tr.TranslationStats()
	if st.BlocksBuilt == 0 || st.Entries == 0 {
		t.Errorf("device scenario built no superblocks: %+v", st)
	}
	if s := tr.Stats(); s.TaskSwitches == 0 {
		t.Errorf("device scenario produced no task switches; preemption fallback not exercised")
	}
}

// TestTranslatedDifferentialIdlers: time-driven controllers implementing
// device.Idler (WordSource, Pulse) let runBlock hoist the per-cycle device
// scan under a quiet-horizon promise; the three paths must stay
// byte-identical through wakeups, preemptions, and service, and the
// horizon must actually engage (QuietCycles > 0).
func TestTranslatedDifferentialIdlers(t *testing.T) {
	bl := masm.NewBuilder()
	bl.EmitAt("emu", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 0, LC: microcode.LCLoadRM})
	bl.Emit(masm.I{ALU: microcode.ALUAplusB, A: microcode.ASelRM, R: 0, B: microcode.BSelT, LC: microcode.LCLoadT})
	bl.Emit(masm.I{ALU: microcode.ALUAxorB, A: microcode.ASelT, B: microcode.BSelRM, R: 0,
		LC: microcode.LCLoadT, Flow: masm.Goto("emu")})
	bl.EmitAt("svc", masm.I{FF: microcode.FFInput, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	bl.Emit(masm.I{A: microcode.ASelStore, R: 1, B: microcode.BSelT,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM, Block: true, Flow: masm.Goto("svc")})
	bl.EmitAt("psvc", masm.I{Block: true, Flow: masm.Goto("psvc")})
	p := mustProgram(t, bl)
	tr := diffTranslated(t, "idlers", 20_000, 101, func(cfg Config) (*Machine, error) {
		cfg.Memory = smallMem
		m, err := New(cfg)
		if err != nil {
			return nil, err
		}
		m.Load(&p.Words)
		m.Start(p.MustEntry("emu"))
		if err := m.Attach(device.NewWordSource(11, 23, 2)); err != nil {
			return nil, err
		}
		m.SetIOAddress(11, 11)
		m.SetTPC(11, p.MustEntry("svc"))
		m.SetRM(1, 0x6000)
		if err := m.Attach(device.NewPulse(9, 97)); err != nil {
			return nil, err
		}
		m.SetTPC(9, p.MustEntry("psvc"))
		return m, nil
	})
	st := tr.TranslationStats()
	if st.BlocksBuilt == 0 || st.Entries == 0 {
		t.Errorf("idler scenario built no superblocks: %+v", st)
	}
	if st.QuietCycles == 0 {
		t.Error("idler devices attached but no fused cycle skipped the device scan")
	}
	if s := tr.Stats(); s.TaskSwitches == 0 {
		t.Errorf("idler scenario produced no task switches; wakeup fallback not exercised")
	}
}

// TestTranslateDevUnsafeBlock: an FF that can poke a device (Output) keeps
// the containing block off the quiet-horizon path.
func TestTranslateDevUnsafeBlock(t *testing.T) {
	bl := masm.NewBuilder()
	bl.EmitAt("start", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelT, LC: microcode.LCLoadT})
	bl.Emit(masm.I{FF: microcode.FFOutput, B: microcode.BSelT, Flow: masm.Goto("start")})
	p := mustProgram(t, bl)
	m, err := New(Config{Memory: smallMem, Translation: translateTestCfg})
	if err != nil {
		t.Fatal(err)
	}
	m.Load(&p.Words)
	b := m.translate(p.MustEntry("start"))
	if b == nil {
		t.Fatal("loop did not translate")
	}
	if b.devSafe {
		t.Error("block containing FF Output marked devSafe")
	}
	if !b.ifuSafe {
		t.Error("block without FF IFUReset not marked ifuSafe")
	}
}

// TestLoadIdempotent: reloading an identical microstore image neither
// re-decodes nor flushes the superblock caches.
func TestLoadIdempotent(t *testing.T) {
	bl := masm.NewBuilder()
	bl.EmitAt("start", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelT, LC: microcode.LCLoadT, Flow: masm.Goto("start")})
	p := mustProgram(t, bl)
	m, err := New(Config{Memory: smallMem, Translation: translateTestCfg})
	if err != nil {
		t.Fatal(err)
	}
	m.Load(&p.Words)
	m.Start(p.MustEntry("start"))
	m.RunCycles(100)
	st := m.TranslationStats()
	if st.BlocksBuilt == 0 {
		t.Fatalf("loop not translated: %+v", st)
	}
	m.Load(&p.Words) // identical image: must be a no-op
	if got := m.TranslationStats().Invalidations; got != st.Invalidations {
		t.Errorf("identical Load bumped Invalidations %d → %d", st.Invalidations, got)
	}
	a := p.MustEntry("start")
	m.SetIM(a, m.IM(a)) // identical word: must be a no-op
	if got := m.TranslationStats().Invalidations; got != st.Invalidations {
		t.Errorf("identical SetIM bumped Invalidations %d → %d", st.Invalidations, got)
	}
}

// TestTranslatedDifferentialIFU: macroinstruction handlers ending in
// IFUJUMP — the dynamically-dispatched terminator — get hot and fuse; the
// IFU dispatch hold at an empty buffer exercises the held-terminator exit.
func TestTranslatedDifferentialIFU(t *testing.T) {
	bl := masm.NewBuilder()
	bl.EmitAt("start", masm.I{Flow: masm.IFUJump()})
	bl.EmitAt("op1", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelT, LC: microcode.LCLoadT})
	bl.Emit(masm.I{ALU: microcode.ALUAplusB, A: microcode.ASelRM, R: 2, B: microcode.BSelT, LC: microcode.LCLoadRM})
	bl.Emit(masm.I{ALU: microcode.ALUAxorB, A: microcode.ASelT, B: microcode.BSelRM, R: 2, Flow: masm.IFUJump()})
	bl.EmitAt("haltop", masm.I{FF: microcode.FFHalt, Flow: masm.Self()})
	p := mustProgram(t, bl)
	tr := diffTranslated(t, "ifu", 4000, 13, func(cfg Config) (*Machine, error) {
		cfg.Memory = smallMem
		m, err := New(cfg)
		if err != nil {
			return nil, err
		}
		m.Load(&p.Words)
		m.Start(p.MustEntry("start"))
		code := make([]byte, 0, 402)
		for i := 0; i < 400; i++ {
			code = append(code, 1)
		}
		code = append(code, 2, 0)
		for i := 0; i+1 < len(code); i += 2 {
			m.Mem().Poke(0x4000+uint32(i/2), uint16(code[i])<<8|uint16(code[i+1]))
		}
		u := m.IFU()
		u.SetCodeBase(0x4000)
		if err := u.SetEntry(1, ifu.Entry{Handler: p.MustEntry("op1"), Name: "OP1"}); err != nil {
			return nil, err
		}
		if err := u.SetEntry(2, ifu.Entry{Handler: p.MustEntry("haltop"), Name: "HALT"}); err != nil {
			return nil, err
		}
		u.Reset(0, 0)
		return m, nil
	})
	st := tr.TranslationStats()
	if st.BlocksBuilt == 0 || st.Entries == 0 {
		t.Errorf("IFU handler loop built no superblocks: %+v", st)
	}
	if !tr.Halted() || tr.T(0) != 400 {
		t.Errorf("macro program end state: halted=%v T=%d, want halted, T=400", tr.Halted(), tr.T(0))
	}
}

// TestTranslatedSetIMInvalidation: a microstore write flushes the block
// cache, so a rewritten instruction takes effect even at a hot address
// whose old body was fused into a superblock.
func TestTranslatedSetIMInvalidation(t *testing.T) {
	bl := masm.NewBuilder()
	bl.EmitAt("start", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelT, LC: microcode.LCLoadT})
	bl.Emit(masm.I{ALU: microcode.ALUAminus1, A: microcode.ASelT, LC: microcode.LCLoadT, Flow: masm.Goto("start")})
	p := mustProgram(t, bl)
	m, err := New(Config{Memory: smallMem, Translation: translateTestCfg})
	if err != nil {
		t.Fatal(err)
	}
	m.Load(&p.Words)
	m.Start(p.MustEntry("start"))
	m.RunCycles(100)
	if st := m.TranslationStats(); st.BlocksBuilt == 0 {
		t.Fatalf("loop not translated after 100 cycles: %+v", st)
	}
	inv := m.TranslationStats().Invalidations
	a := p.MustEntry("start")
	w := m.IM(a)
	w.FF = microcode.FFHalt
	m.SetIM(a, w)
	if got := m.TranslationStats().Invalidations; got != inv+1 {
		t.Errorf("SetIM bumped Invalidations %d → %d, want %d", inv, got, inv+1)
	}
	m.RunCycles(10)
	if !m.Halted() {
		t.Fatal("rewritten microword did not take effect on the translated path")
	}
}

// TestTranslatedRestore: Restore flushes the block cache — a snapshot taken
// from a hot translated machine rehydrates onto the generic cycle loop and
// re-translates, staying in lockstep with a predecoded machine restored
// from the same bytes.
func TestTranslatedRestore(t *testing.T) {
	bl := masm.NewBuilder()
	bl.EmitAt("start", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelT, LC: microcode.LCLoadT})
	bl.Emit(masm.I{ALU: microcode.ALUAplusB, A: microcode.ASelT, B: microcode.BSelRM, R: 3, LC: microcode.LCLoadRM})
	bl.Emit(masm.I{ALU: microcode.ALUAxorB, A: microcode.ASelT, B: microcode.BSelQ, Flow: masm.Goto("start")})
	p := mustProgram(t, bl)
	build := func(cfg Config) (*Machine, error) {
		cfg.Memory = smallMem
		m, err := New(cfg)
		if err != nil {
			return nil, err
		}
		m.Load(&p.Words)
		m.SetRM(3, 7)
		m.Start(p.MustEntry("start"))
		return m, nil
	}
	hot, err := build(Config{Translation: translateTestCfg})
	if err != nil {
		t.Fatal(err)
	}
	hot.RunCycles(500)
	if st := hot.TranslationStats(); st.BlocksBuilt == 0 {
		t.Fatalf("machine not hot before snapshot: %+v", st)
	}
	snap := hot.Snapshot()

	pre, err := build(Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := build(Config{Translation: translateTestCfg})
	if err != nil {
		t.Fatal(err)
	}
	tr.RunCycles(123) // dirty the profile/caches so Restore must flush them
	if err := pre.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if err := tr.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if st := tr.TranslationStats(); st.Invalidations == 0 {
		t.Error("Restore did not invalidate the translation caches")
	}
	for i := 0; i < 40; i++ {
		pre.RunCycles(11)
		tr.RunCycles(11)
		ps, ts := pre.Snapshot(), tr.Snapshot()
		if !bytes.Equal(ps, ts) {
			t.Fatalf("restored paths diverge at cycle %d, first differing byte %d",
				pre.Cycle(), firstDiffIndex(ps, ts))
		}
	}
	if st := tr.TranslationStats(); st.BlocksBuilt == 0 {
		t.Error("restored machine never re-translated its hot loop")
	}
}

// TestTranslateBlockShapes checks the fusion rules directly: closed loops
// unroll in whole iterations up to MaxBlock, stack-modifier words force
// task0Only, and a run into an interior revisit (not the start) stops.
func TestTranslateBlockShapes(t *testing.T) {
	bl := masm.NewBuilder()
	bl.EmitAt("start", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelT, LC: microcode.LCLoadT})
	bl.Emit(masm.I{Block: true, R: 1, ALU: microcode.ALUB, Const: 1, HasConst: true, LC: microcode.LCLoadRM})
	bl.Emit(masm.I{Block: true, R: 0xF, ALU: microcode.ALUA, A: microcode.ASelRM, Flow: masm.Goto("start")})
	bl.EmitAt("self", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelT, Flow: masm.Goto("self")})
	bl.EmitAt("head", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelT, Flow: masm.Goto("inner")})
	bl.EmitAt("inner", masm.I{ALU: microcode.ALUAminus1, A: microcode.ASelT, Flow: masm.Goto("inner")})
	p := mustProgram(t, bl)
	m, err := New(Config{Memory: smallMem, Translation: translateTestCfg})
	if err != nil {
		t.Fatal(err)
	}
	m.Load(&p.Words)
	maxBlock := m.trans.cfg.MaxBlock

	b := m.translate(p.MustEntry("start"))
	if b == nil {
		t.Fatal("three-word loop did not translate")
	}
	if len(b.code)%3 != 0 || len(b.code) < 3 || len(b.code) > maxBlock {
		t.Errorf("loop of 3 unrolled to %d instructions, want a whole multiple of 3 within MaxBlock %d",
			len(b.code), maxBlock)
	}
	if !b.task0Only {
		t.Error("block with stack-modifier words not marked task0Only")
	}
	if b := m.translate(p.MustEntry("self")); b == nil || len(b.code) != maxBlock {
		t.Errorf("single-word self-loop should unroll to MaxBlock %d, got %+v", maxBlock, b)
	}
	// head→inner: inner is a closed loop on itself, but from head's block the
	// revisit is interior, so the run stops there (the inner loop gets its
	// own block when it becomes hot).
	if b := m.translate(p.MustEntry("head")); b != nil && len(b.code) != 2 {
		t.Errorf("run into an interior loop fused %d instructions, want 2", len(b.code))
	}
}
