package core

import "dorado/internal/microcode"

// decoded is the predecoded form of one microstore word: every per-cycle
// bit extraction exec used to perform on the packed 34-bit Word — the
// NextControl decode, the FF classification, the §5.9 constant, the hold
// predicates — done once, when the word enters the microstore.
//
// The real Dorado splits instruction decode across pipeline stages so that
// by the time an instruction executes, its control lines are already
// resolved (§5.4–5.5). The simulator's analogue is this struct: Load (and
// every microstore write, see SetIM) decodes each Word into a decoded, and
// the hot loop executes straight off the precomputed fields. The reference
// interpreter (Config.Reference) instead re-derives a decoded from the raw
// Word every cycle, which is the seed simulator's behavior; the two paths
// share exec and are proved cycle-for-cycle identical by the differential
// tests.
type decoded struct {
	op     microcode.NextOp // resolved NextControl (kind, word, condition)
	constB uint16           // the §5.9 constant when isConstB

	aSel  microcode.ASelect
	bSel  microcode.BSelect
	raddr uint8 // RAddr, pre-masked to 4 bits
	aluOp uint8 // ALUFM index, pre-masked to 4 bits
	ff    uint8 // raw FF byte (address bits for long transfers/dispatches)
	next  uint8 // raw NextControl byte (diagnostics only)
	ffop  uint8 // FF operation to execute; FFNop when FF is data

	stackDelta int8 // signed STACKPTR adjustment when the stack modifier is on
	ffMemBase  int8 // same-instruction FF MEMBASE override (0..31), or -1
	ffRMDest   int8 // FF RM-write redirection low nibble (0..15), or -1

	block       bool
	isConstB    bool // B is an FF constant; bVal = constB with no bus read
	usesMD      bool // holds while the task's MD is not ready (§5.7)
	usesIFUData bool // holds while the IFU has no operand
	ifuJump     bool // NextControl is IFUJUMP (holds until dispatch ready)
	startsMem   bool // ASel starts a memory reference
	isStore     bool // ...and that reference is a write
	loadsT      bool
	loadsRM     bool
}

// decodeWord flattens one microinstruction. It is the single point of
// truth for both execution paths: the predecode cache stores its result,
// the reference interpreter calls it every cycle.
func decodeWord(w microcode.Word) decoded {
	op := w.NextOp()
	ffop := w.FFOp()
	d := decoded{
		op:          op,
		aSel:        w.ASel,
		bSel:        w.BSel,
		raddr:       w.RAddr & 0xF,
		aluOp:       w.ALUOp & 0xF,
		ff:          w.FF,
		next:        w.Next,
		ffop:        ffop,
		stackDelta:  w.StackDelta(),
		ffMemBase:   -1,
		ffRMDest:    -1,
		block:       w.Block,
		usesMD:      w.UsesMD(),
		usesIFUData: w.UsesIFUData(),
		ifuJump:     op.Kind == microcode.NextIFUJump,
		startsMem:   w.ASel.StartsMemRef(),
		isStore:     w.ASel.IsStore(),
		loadsT:      w.LC.LoadsT(),
		loadsRM:     w.LC.LoadsRM(),
	}
	if w.BSel.IsConst() {
		d.isConstB = true
		d.constB = w.BSel.ConstValue(w.FF)
	}
	if ffop >= microcode.FFMemBaseBase && ffop < microcode.FFMemBaseBase+32 {
		d.ffMemBase = int8(ffop - microcode.FFMemBaseBase)
	}
	if ffop >= microcode.FFRMDestBase && ffop < microcode.FFRMDestBase+16 {
		d.ffRMDest = int8(ffop & 0xF)
	}
	return d
}

// predecodeAll rebuilds the whole predecode cache from the microstore.
func (m *Machine) predecodeAll() {
	for i := range m.im {
		m.dim[i] = decodeWord(m.im[i])
	}
}
