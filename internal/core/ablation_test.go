package core

import (
	"testing"

	"dorado/internal/masm"
	"dorado/internal/microcode"
)

func TestNoBypassProducesStaleReads(t *testing.T) {
	// T ← 5; T ← T+1 immediately after. With bypassing (the real Dorado)
	// the second instruction sees 5 and computes 6. With the Model-0 gap
	// (NoBypass) it reads the stale T — the paper's "subtle bugs".
	prog := func() *masm.Builder {
		b := masm.NewBuilder()
		b.EmitAt("start", masm.I{Const: 5, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT})
		b.Emit(masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelT, LC: microcode.LCLoadT})
		b.Halt()
		return b
	}
	m := buildMachine(t, Config{}, prog())
	mustHalt(t, m, 100)
	if m.T(0) != 6 {
		t.Errorf("bypassed: T = %d, want 6", m.T(0))
	}
	m = buildMachine(t, Config{Options: Options{NoBypass: true}}, prog())
	mustHalt(t, m, 100)
	if m.T(0) == 6 {
		t.Error("NoBypass produced the bypassed answer; ablation not modeled")
	}
	if m.T(0) != 1 { // stale T=0, +1
		t.Errorf("NoBypass: T = %d, want 1 (stale read)", m.T(0))
	}
}

func TestNoBypassWithPaddingIsCorrectButSlower(t *testing.T) {
	// Inserting a NOP between dependent instructions (what Model-0
	// microcoders had to do) restores correctness at a 1-cycle cost.
	b := masm.NewBuilder()
	b.EmitAt("start", masm.I{Const: 5, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	b.Emit(masm.I{}) // padding
	b.Emit(masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelT, LC: microcode.LCLoadT})
	b.Halt()
	m := buildMachine(t, Config{Options: Options{NoBypass: true}}, b)
	mustHalt(t, m, 100)
	if m.T(0) != 6 {
		t.Errorf("padded NoBypass: T = %d, want 6", m.T(0))
	}
}

func TestNoBypassRMChain(t *testing.T) {
	// RM writes suffer the same delay.
	b := masm.NewBuilder()
	b.EmitAt("start", masm.I{Const: 7, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadRM, R: 3})
	b.Emit(masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 3, LC: microcode.LCLoadRM})
	b.Halt()
	m := buildMachine(t, Config{Options: Options{NoBypass: true}}, b)
	mustHalt(t, m, 100)
	if m.RM(3) != 1 {
		t.Errorf("NoBypass RM chain = %d, want 1 (stale)", m.RM(3))
	}
	// The delayed write of instruction 2 (stale 0 + 1) lands during Halt,
	// overwriting instruction 1's 7.
}

func TestDelayedBranchCostsOneCyclePerBranch(t *testing.T) {
	// A COUNT loop of N iterations has N conditional branches; the
	// delayed-branch design adds exactly N dead cycles.
	prog := func() *masm.Builder {
		b := masm.NewBuilder()
		b.EmitAt("start", masm.I{FF: microcode.FFCountBase + 9})
		b.EmitAt("loop", masm.I{LC: microcode.LCLoadT, ALU: microcode.ALUAplus1, A: microcode.ASelT})
		b.Emit(masm.I{Flow: masm.Branch(microcode.CondCountNZ, "", "loop")})
		b.Halt()
		return b
	}
	m1 := buildMachine(t, Config{}, prog())
	mustHalt(t, m1, 1000)
	m2 := buildMachine(t, Config{Options: Options{DelayedBranch: true}}, prog())
	mustHalt(t, m2, 1000)
	if m2.T(0) != m1.T(0) {
		t.Fatalf("delayed branch changed the result: %d vs %d", m2.T(0), m1.T(0))
	}
	branches := uint64(10) // the branch executes 10 times
	if m2.Cycle() != m1.Cycle()+branches {
		t.Errorf("delayed branch cost %d extra cycles, want %d",
			m2.Cycle()-m1.Cycle(), branches)
	}
	if m2.Stats().BranchStalls != branches {
		t.Errorf("BranchStalls = %d, want %d", m2.Stats().BranchStalls, branches)
	}
}

func TestFixedWaitMemoryPaysWorstCase(t *testing.T) {
	// A cache-hit fetch+use costs ~1 held cycle with Hold, but the full
	// miss latency in the fixed-wait design (§5.7's first alternative).
	prog := func() *masm.Builder {
		b := masm.NewBuilder()
		b.EmitAt("start", masm.I{Const: 64, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadRM, R: 1})
		b.Emit(masm.I{A: microcode.ASelFetch, R: 1}) // warm it
		b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadT})
		b.Emit(masm.I{A: microcode.ASelFetch, R: 1}) // hit
		b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadT})
		b.Halt()
		return b
	}
	m1 := buildMachine(t, Config{}, prog())
	mustHalt(t, m1, 1000)
	m2 := buildMachine(t, Config{Options: Options{FixedWaitMemory: true}}, prog())
	mustHalt(t, m2, 1000)
	if m2.T(0) != m1.T(0) {
		t.Fatalf("fixed-wait changed the result")
	}
	if m2.Cycle() <= m1.Cycle()+20 {
		t.Errorf("fixed-wait cost only %d extra cycles; want ≈25 per hit",
			m2.Cycle()-m1.Cycle())
	}
}

func TestPollingWithProbeMD(t *testing.T) {
	// The §5.7 polling alternative: microcode probes MD readiness and spins.
	// Works, but the spin cycles are burned by this task instead of being
	// available to others.
	b := masm.NewBuilder()
	b.EmitAt("start", masm.I{Const: 0x4000, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadRM, R: 1})
	b.Emit(masm.I{A: microcode.ASelFetch, R: 1}) // miss
	b.EmitAt("poll", masm.I{FF: microcode.FFProbeMD})
	b.Emit(masm.I{Flow: masm.Branch(microcode.CondMB, "poll", "ready")})
	b.EmitAt("ready", masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadT})
	b.Halt()
	m := buildMachine(t, Config{}, b)
	m.Mem().Poke(0x4000, 0x00AB)
	mustHalt(t, m, 1000)
	if m.T(0) != 0x00AB {
		t.Errorf("polled read = %#04x", m.T(0))
	}
	st := m.Stats()
	if st.HoldMD != 0 {
		t.Errorf("polling path should not hold on MD; HoldMD=%d", st.HoldMD)
	}
	// The poll loop executed many times: executed count ≫ instruction count.
	if st.Executed < 20 {
		t.Errorf("executed %d: poll loop did not spin", st.Executed)
	}
}

// TestInstructionPipelineTiming validates the Figure-2 property the
// simulator must preserve: one microinstruction completes per cycle, and a
// result is usable by the immediately following instruction (bypassing).
func TestInstructionPipelineTiming(t *testing.T) {
	b := masm.NewBuilder()
	b.Label("start")
	const n = 20
	for i := 0; i < n; i++ {
		b.Emit(masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelT, LC: microcode.LCLoadT})
	}
	b.Halt()
	m := buildMachine(t, Config{}, b)
	mustHalt(t, m, 1000)
	if m.T(0) != n {
		t.Errorf("T = %d, want %d: back-to-back dependent instructions broken", m.T(0), n)
	}
	if m.Cycle() != n+1 {
		t.Errorf("%d instructions took %d cycles, want %d (one per cycle)", n+1, m.Cycle(), n+1)
	}
}

// TestTaskPipelineTiming validates Figure 3: wakeup at cycle c, NEXT shows
// the task at c+1, first instruction at c+2 — and the switch itself costs
// the emulator nothing.
func TestTaskPipelineTiming(t *testing.T) {
	b := masm.NewBuilder()
	emulatorLoop(b)
	b.EmitAt("svc", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 1, LC: microcode.LCLoadRM})
	b.Emit(masm.I{Block: true, Flow: masm.Goto("svc")})
	m, prog := buildMachineProg(t, Config{}, b)
	p := newProbe(5, 20)
	if err := m.Attach(p); err != nil {
		t.Fatal(err)
	}
	m.SetTPC(5, prog.MustEntry("svc"))
	for m.Cycle() < 60 {
		m.Step()
	}
	if len(p.notified) != 1 || p.notified[0] != 21 {
		t.Errorf("NEXT at %v, want [21] (wakeup+1)", p.notified)
	}
	// The emulator executed on every cycle except the two service cycles.
	st := m.Stats()
	if st.TaskCycles[0]+st.TaskCycles[5] != st.Cycles {
		t.Errorf("cycles unaccounted: %d+%d != %d", st.TaskCycles[0], st.TaskCycles[5], st.Cycles)
	}
	if st.TaskCycles[5] != 2 {
		t.Errorf("service consumed %d cycles, want 2", st.TaskCycles[5])
	}
}
