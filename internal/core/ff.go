package core

import (
	"fmt"

	"dorado/internal/microcode"
)

// execFF performs the instruction's FF function (§5.5's "catchall").
// It receives the A-bus value (for memory-management addresses), the
// RM/stack word and implicitly T (the shifter's 32-bit input, §6.3.4), the
// B-bus value (the data for "put" functions), and the ALU result; it
// returns the value for the RESULT bus (the ALU result unless the function
// overrides it).
func (m *Machine) execFF(ff uint8, d *decoded, aVal, rmVal, bVal, res uint16, now uint64) uint16 {
	ts := &m.tasks[m.curTask]
	switch {
	case ff >= microcode.FFRotBase && ff < microcode.FFRotBase+32:
		m.shiftCtl = microcode.EncodeShiftCtl(microcode.ShiftCtl{Count: ff - microcode.FFRotBase})
		return res
	case ff >= microcode.FFMemBaseBase && ff < microcode.FFMemBaseBase+32:
		m.membase = ff - microcode.FFMemBaseBase
		return res
	case ff >= microcode.FFCountBase && ff < microcode.FFCountBase+16:
		m.count = uint16(ff - microcode.FFCountBase)
		return res
	case ff >= microcode.FFRMDestBase && ff < microcode.FFRMDestBase+16:
		return res // RM write redirection; applied in exec's store phase
	}

	switch ff {
	case microcode.FFReadyB:
		m.ready |= 1 << (bVal & 15) // explicit wakeup (§6.2.1)
	case microcode.FFReadTPC:
		return uint16(m.tasks[bVal&15].tpc)
	case microcode.FFWriteTPC:
		m.tasks[m.count&15].tpc = microcode.Addr(bVal) & microcode.AddrMask
	case microcode.FFCPRegGet:
		return m.cpreg
	case microcode.FFCPRegPut:
		m.cpreg = bVal
	case microcode.FFFlushCache:
		m.mem.Flush(m.mem.VA(m.membase, aVal), now)
	case microcode.FFMapSet:
		m.mem.MapSet(m.mem.VA(m.membase, aVal)/256, uint32(bVal))
	case microcode.FFMapGet:
		return uint16(m.mem.MapGet(m.mem.VA(m.membase, aVal) / 256))
	case microcode.FFIFUReset:
		m.ifu.Reset(bVal, now)
	case microcode.FFSetMB:
		ts.mb = true
	case microcode.FFClearMB:
		ts.mb = false
	case microcode.FFProbeMD:
		ts.mb = m.mem.MDReady(m.curTask, now)
	case microcode.FFStackReset:
		m.stackPtr = uint8(bVal)
		ts.stackErr = false
	case microcode.FFHalt:
		m.halted = true
		m.haltPC = m.curPC

	case microcode.FFPutRBase:
		m.rbase = uint8(bVal) & 0xF
	case microcode.FFPutStackPtr:
		m.stackPtr = uint8(bVal)
	case microcode.FFPutMemBase:
		m.membase = uint8(bVal) & 0x1F
	case microcode.FFPutShiftCtl:
		m.shiftCtl = bVal
	case microcode.FFPutIOAddress:
		ts.ioadr = bVal
	case microcode.FFPutCount:
		m.count = bVal
	case microcode.FFPutQ:
		m.q = bVal
	case microcode.FFPutALUFM:
		m.alufm[d.aluOp] = microcode.DecodeALUCtl(uint8(bVal))
	case microcode.FFPutLink:
		ts.link = microcode.Addr(bVal) & microcode.AddrMask
	case microcode.FFPutBaseLo:
		m.mem.SetBaseLo(int(m.membase), bVal)
	case microcode.FFPutBaseHi:
		m.mem.SetBaseHi(int(m.membase), bVal)

	case microcode.FFGetRBase:
		return uint16(m.rbase)
	case microcode.FFGetStackPtr:
		return uint16(m.stackPtr)
	case microcode.FFGetMemBase:
		return uint16(m.membase)
	case microcode.FFGetShiftCtl:
		return m.shiftCtl
	case microcode.FFGetIOAddress:
		return ts.ioadr
	case microcode.FFGetCount:
		return m.count
	case microcode.FFGetQ:
		return m.q
	case microcode.FFGetALUFM:
		return uint16(microcode.EncodeALUCtl(m.alufm[d.aluOp]))
	case microcode.FFGetLink:
		return uint16(ts.link)
	case microcode.FFGetMacroPC:
		return uint16(m.ifu.PC())
	case microcode.FFGetBaseLo:
		return m.mem.BaseLo(int(m.membase))
	case microcode.FFGetFaultHi:
		f, _ := m.mem.LastFault()
		return uint16(f.Kind)<<12 | uint16(f.VA>>16)&0x0FFF
	case microcode.FFGetFaultLo:
		f, _ := m.mem.TakeFault()
		return uint16(f.VA)

	case microcode.FFShiftNoMask:
		s := microcode.DecodeShiftCtl(m.shiftCtl)
		s.LMask, s.RMask = 0, 0
		return s.Shift(rmVal, ts.t, 0)
	case microcode.FFShiftMaskZ:
		return microcode.DecodeShiftCtl(m.shiftCtl).Shift(rmVal, ts.t, 0)
	case microcode.FFShiftMaskMD:
		md := m.mem.MD(m.curTask, now) // readiness checked in the hold phase
		return microcode.DecodeShiftCtl(m.shiftCtl).Shift(rmVal, ts.t, md)
	case microcode.FFALULsh:
		return res << 1
	case microcode.FFALURsh:
		return res >> 1
	case microcode.FFMulStep:
		return m.mulStep(aVal, bVal)
	case microcode.FFDivStep:
		return m.divStep(aVal, bVal)

	case microcode.FFOutput:
		if dev := m.byAddr[ts.ioadr&15]; dev != nil {
			dev.Output(bVal, now)
		}
	case microcode.FFIOAttenAck:
		// Explicit service acknowledgement — the grain-3 ablation's notify
		// (§6.2.1), and a general-purpose device poke otherwise.
		if dev := m.byAddr[ts.ioadr&15]; dev != nil {
			dev.NotifyNext(now)
		}
	case microcode.FFDevCtl:
		if dev := m.byAddr[ts.ioadr&15]; dev != nil {
			dev.Control(bVal, now)
		}

	default:
		panic(fmt.Sprintf("core: reserved FF %#02x at %v", ff, m.curPC))
	}
	return res
}
