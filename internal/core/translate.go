package core

import (
	"math/bits"

	"dorado/internal/microcode"
)

// This file is the superblock translator: the third execution path
// (reference → predecoded → translated). A lightweight profiler counts how
// often each microword executes on the generic loop; when a word crosses
// Translation.HotThreshold, the translator walks the predecoded successor
// chain from it and fuses the straight-line run into a superblock — a
// single Go closure that executes the whole run without per-cycle
// NextControl dispatch. Successor addresses, subroutine-linkage values, and
// per-instruction specializations are resolved once, at translation time;
// the block loops then execute fused cycles with the scheduler work either
// hoisted to block entry (runBlockFast, the quiescent task-0 case) or
// reduced to the exact per-cycle minimum step performs (runBlock, the
// device-machine case).
//
// The fallback contract (DESIGN.md §12): any event the fused path cannot
// retire exactly — a Hold, a pending higher-priority task, a device wakeup
// that could preempt, an IFUJUMP or other dynamic NextControl past the
// block's terminator, FF Halt, or an exhausted cycle budget — returns
// control to the existing cycle loop, which re-executes from the current
// (task, PC) with unmodified semantics. Translation is therefore an
// optimization of *how* a cycle is computed, never of *which* cycles
// happen: a translated machine is cycle-for-cycle, snapshot-for-snapshot
// identical to the predecoded and reference interpreters, which the
// differential tests and internal/fuzzdiff enforce.

// Translation configures the superblock translator. The zero value
// disables it; Enable with zero tuning fields picks the defaults. The
// translator requires the as-built machine (no Options ablations, not
// Reference) — core.New rejects other combinations.
type Translation struct {
	// Enable turns the translated execution path on.
	Enable bool
	// HotThreshold is how many times a microword must execute on the
	// generic loop before a superblock is built at its address (default 64).
	HotThreshold uint32
	// MaxBlock bounds the number of microinstructions fused into one
	// superblock (default 48).
	MaxBlock int
}

func (t Translation) withDefaults() Translation {
	if t.HotThreshold == 0 {
		t.HotThreshold = 64
	}
	if t.MaxBlock <= 0 {
		t.MaxBlock = 48
	}
	return t
}

// TranslationStats counts translator activity. The counters are
// diagnostics, not machine state: they are not serialized into snapshots
// and accumulate across invalidations.
type TranslationStats struct {
	// BlocksBuilt is the number of superblocks ever constructed.
	BlocksBuilt uint64 `json:"blocks_built"`
	// Instructions is the total number of microinstructions fused into
	// those blocks.
	Instructions uint64 `json:"instructions"`
	// Entries counts block executions (entries into a fused closure).
	Entries uint64 `json:"entries"`
	// FusedCycles counts machine cycles retired inside superblocks — the
	// coverage the translator actually achieves (compare Machine.Cycle).
	FusedCycles uint64 `json:"fused_cycles"`
	// QuietCycles counts fused cycles that skipped the per-cycle device
	// scan under a device.Idler quiet-horizon promise.
	QuietCycles uint64 `json:"quiet_cycles"`
	// Invalidations counts whole-cache flushes (microstore writes, Load,
	// Restore).
	Invalidations uint64 `json:"invalidations"`
}

// instExit is a fused instruction's report to the block loop.
type instExit uint8

const (
	// instOK: the instruction executed and curPC advanced to its static
	// successor; the block continues.
	instOK instExit = iota
	// instEnd: the block's terminator executed (its successor may be
	// dynamic — branch, return, dispatch, IFU jump); curPC is set and the
	// block is done.
	instEnd
	// instHeld: the instruction held (§5.7) — no state changed beyond the
	// hold counters and curPC is unchanged; the generic loop retries it.
	instHeld
	// instLoop: a fused BRANCH terminator resolved to the block's own start
	// (curPC is set to it); the block loop restarts at its first
	// instruction without leaving the fused path.
	instLoop
)

// instFn executes one fused microinstruction. The machine's curPC equals
// the instruction's address on entry; on instOK/instEnd the fn has advanced
// it. Fused instructions never Block-release the processor: words with the
// Block bit force the containing block task0Only (where Block is the stack
// modifier, §6.3.1), so the release path stays exclusive to step.
type instFn func(m *Machine, now uint64) instExit

// superblock is one fused straight-line run of decoded microwords.
type superblock struct {
	start microcode.Addr
	code  []instFn
	// addrs maps each code slot to its microstore address, so an attached
	// Profiler can charge fused cycles to exact microaddresses.
	addrs []microcode.Addr
	// termReason is the ExitReason an instEnd from the terminator reports:
	// ExitIFUJump for an IFUJUMP terminator, ExitBranch for the other
	// dynamic kinds, ExitFallThrough when the block has no terminator.
	termReason ExitReason
	// task0Only marks blocks containing stack-modifier (Block-bit) words:
	// under task 0 the bit selects a stack operation, under any other task
	// it releases the processor, so such blocks only run as task 0.
	task0Only bool
	// devSafe: no instruction in the block has an FF that can mutate a
	// device (Input, Output, DevCtl, IOAttenAck), so a device.Idler quiet
	// promise taken at block entry cannot be violated from inside the block
	// and runBlock may skip the per-cycle device scan until the horizon.
	devSafe bool
	// ifuSafe: no instruction can start the IFU (FF IFUReset), so when the
	// IFU is stopped at block entry it stays stopped and its per-cycle Tick
	// (a no-op on a stopped unit) is skipped.
	ifuSafe bool
}

// translator is the per-machine translation state: profile counters and
// the block cache, both derived from the microstore and rebuilt on demand —
// never serialized (the snapshot stays path-agnostic).
type translator struct {
	cfg Translation
	// counts profiles generic-loop executions per microstore address.
	counts [microcode.StoreSize]uint32
	// blocks caches one superblock per start address (nil: none yet).
	blocks [microcode.StoreSize]*superblock
	// noBlock marks addresses where translation was attempted and declined
	// (run too short), so the generic loop stops re-trying them.
	noBlock [microcode.StoreSize]bool
	stats   TranslationStats
}

// reset flushes the profile and block caches. Called on any microstore
// write (SetIM, Load) and on Restore, so a snapshot taken mid-block always
// rehydrates onto the cycle loop deterministically.
func (t *translator) reset() {
	if t == nil {
		return
	}
	t.counts = [microcode.StoreSize]uint32{}
	t.blocks = [microcode.StoreSize]*superblock{}
	t.noBlock = [microcode.StoreSize]bool{}
	t.stats.Invalidations++
}

// TranslationStats returns the translator's activity counters (zero when
// translation is disabled).
func (m *Machine) TranslationStats() TranslationStats {
	if m.trans == nil {
		return TranslationStats{}
	}
	return m.trans.stats
}

// runTranslated is Run's hot loop when translation is enabled (and no
// tracer is attached — a tracer needs one event per cycle, which only the
// generic loop produces). Cold addresses execute on the generic step while
// the profiler counts them; hot addresses execute through their superblock.
func (m *Machine) runTranslated(limit uint64) {
	t := m.trans
	for !m.halted && m.cycle < limit {
		pc := m.curPC
		if b := t.blocks[pc]; b != nil {
			// Entry guard: a pending task switch (BESTNEXTTASK above the
			// running task) must happen on the generic loop, a task0Only
			// block only runs as task 0, and owed stall cycles burn
			// generically.
			if m.bestNext <= m.curTask && (!b.task0Only || m.curTask == 0) && m.stalls == 0 {
				t.stats.Entries++
				if len(m.att) == 0 && m.rec == nil && m.ready == 0 &&
					m.curTask == 0 && m.bestNext == 0 {
					m.runBlockFast(b, limit)
				} else {
					m.runBlock(b, limit)
				}
				continue
			}
			// Entry guard rejected a compiled block: the cycle runs on the
			// generic loop. Each rejected attempt is one guard-fail event —
			// sustained rejection (a long higher-priority burst) shows up as
			// a proportionally large count, which is the point.
			if p := m.prof; p != nil {
				p.blockExit(pc, ExitGuardFail, pc, 0, m.cycle)
			}
		} else if !t.noBlock[pc] {
			c := t.counts[pc] + 1
			t.counts[pc] = c
			if c >= t.cfg.HotThreshold {
				if nb := m.translate(pc); nb != nil {
					t.blocks[pc] = nb
					continue
				}
				t.noBlock[pc] = true
			}
		}
		m.step(false)
	}
}

// runBlockFast executes fused cycles on a quiescent single-task machine:
// no devices attached, no recorder, READY empty, task 0 running, and no
// better task pending (the caller checked all five). Under those
// preconditions step's wakeup latch is the constant line for task 0,
// arbitration always re-selects task 0, and the NEXT-bus notify has no
// listener — so the whole scheduler epilogue is hoisted out and each cycle
// is: budget/quiescence check, IFU tick, fused instruction, cycle count.
// The READY check re-establishes the preconditions every cycle: an FF
// ReadyB or a memory-fault wakeup lands in READY mid-cycle and is seen at
// the top of the next one, exactly when step's wakeup latch would first
// see it (the arbitration it feeds happens one cycle later still, and
// m.bestNext is left at 0 — the value step would have computed from the
// preceding cycle's empty latch).
func (m *Machine) runBlockFast(b *superblock, limit uint64) {
	n := uint64(0)
	code := b.code
	reason := ExitFallThrough
	lastHeld := false
	// A stopped IFU stays stopped (nothing in the block can Reset it, see
	// ifuSafe), so its no-op Tick is hoisted out of the cycle loop.
	tickIFU := !b.ifuSafe || m.ifu.Running()
	for i := 0; i < len(code); {
		if m.cycle >= limit {
			reason = ExitLimit
			break
		}
		if m.ready != 0 {
			// Quiescence broken mid-hold means the hold is what the generic
			// loop must retire; otherwise another task became ready.
			if lastHeld {
				reason = ExitHold
			} else {
				reason = ExitTaskSwitch
			}
			break
		}
		now := m.cycle
		if tickIFU {
			m.ifu.Tick(now)
		}
		exit := code[i](m, now)
		// Service granted to task 0 every cycle it runs: step clears the
		// winner's READY flipflop in its epilogue, so an FF ReadyB naming
		// task 0 must vanish here exactly as it would there. Other bits
		// survive into READY and trip the quiescence check above.
		m.ready &^= 1
		m.cycle++
		n++
		if p := m.prof; p != nil {
			p.cycle(b.addrs[i], exit == instHeld, exit != instHeld)
		}
		lastHeld = exit == instHeld
		if m.halted {
			reason = ExitHalt
			break
		}
		switch exit {
		case instOK:
			i++
		case instLoop:
			// Loop-back branch taken to the block's own start: restart the
			// fused run; the quiescence check above still runs every cycle.
			i = 0
		case instHeld:
			// §5.7 no-op-jump-to-self — the retired cycle changed no state
			// and curPC is unchanged, so retry the same fused instruction
			// next cycle; memory timing and the IFU advance with now.
		default:
			reason = b.termReason
			goto out // instEnd: terminator done, curPC points past the block
		}
	}
out:
	m.trans.stats.FusedCycles += n
	if p := m.prof; p != nil {
		p.blockExit(b.start, reason, m.curPC, n, m.cycle)
	}
}

// runBlock executes fused cycles on a machine with live controllers, a
// recorder, or a non-zero task: each cycle performs exactly step's
// per-cycle scheduler work — device ticks, the WAKEUP latch, the READY
// clear and NEXT-bus notify, arbitration into BESTNEXTTASK, and the
// recorder hook — with only the instruction fetch/decode/dispatch replaced
// by the fused closure. The entry guard in runTranslated plus the per-cycle
// BESTNEXTTASK check guarantee the running task keeps the processor for
// every fused cycle, so the task-switch half of step's epilogue can never
// be needed; the moment a higher-priority task is pending the block returns
// before executing the cycle and the generic loop runs it.
func (m *Machine) runBlock(b *superblock, limit uint64) {
	n := uint64(0)
	code := b.code
	// Loop invariants: no fused instruction switches tasks, attaches
	// devices, or swaps the recorder, so the running task (and its READY
	// bit and NEXT-bus listener) are hoisted out of the cycle loop.
	att := m.att
	rec := m.rec
	cur := m.curTask
	readyBit := uint16(1) << cur
	nextDev := m.devs[cur]
	// Quiet horizon (device.Idler): when every attached controller promises
	// it is between events, the per-cycle Tick/Wakeup scan is skipped until
	// the earliest promised cycle. Sound only while nothing in the block can
	// poke a device (b.devSafe); a device without the Idler view pins the
	// horizon to "scan every cycle".
	horizon := b.devSafe && m.anyIdler
	quiet := uint64(0) // first cycle requiring a device scan
	tickIFU := !b.ifuSafe || m.ifu.Running()
	reason := ExitFallThrough
	lastHeld := false
	for i := 0; i < len(code); {
		if m.cycle >= limit {
			reason = ExitLimit
			break
		}
		if m.bestNext > cur {
			// A higher-priority task won arbitration: distinguish a device
			// wakeup (the fast-I/O churn) from READY-flipflop work, and a
			// break taken while the head instruction held from both.
			switch {
			case lastHeld:
				reason = ExitHold
			case m.devs[m.bestNext] != nil:
				reason = ExitDeviceWakeup
			default:
				reason = ExitTaskSwitch
			}
			break
		}
		now := m.cycle
		lines := uint16(1) | m.ready
		scan := !horizon || now >= quiet
		if scan {
			for j := range att {
				att[j].dev.Tick(now)
			}
		} else {
			m.trans.stats.QuietCycles++
		}
		if tickIFU {
			m.ifu.Tick(now)
		}
		if scan {
			for j := range att {
				if att[j].dev.Wakeup() {
					lines |= att[j].bit
				}
			}
			if horizon {
				quiet = ^uint64(0)
				for j := range att {
					q := uint64(0)
					if att[j].idler != nil {
						q = att[j].idler.IdleUntil(now)
					}
					if q < quiet {
						quiet = q
					}
				}
				if quiet <= now {
					quiet = now + 1
				}
			}
		}
		exit := code[i](m, now)
		// Service granted to the running task, as step's epilogue does
		// (translation excludes the ExplicitNotify ablation).
		m.ready &^= readyBit
		if nextDev != nil {
			nextDev.NotifyNext(now)
		}
		m.bestNext = 15 - bits.LeadingZeros16(lines)
		if rec != nil && rec.NeedsCycle(now, cur, exit == instHeld, lines) {
			rec.Cycle(now, cur, exit == instHeld, lines, &m.stats.TaskCycles)
		}
		m.cycle++
		n++
		if p := m.prof; p != nil {
			p.cycle(b.addrs[i], exit == instHeld, exit != instHeld)
		}
		lastHeld = exit == instHeld
		if m.halted {
			reason = ExitHalt
			break
		}
		switch exit {
		case instOK:
			i++
		case instLoop:
			i = 0 // loop-back branch taken to the block's own start
		case instHeld:
			// Retry the same fused instruction; the top-of-cycle
			// BESTNEXTTASK check hands a preempting wakeup to the generic
			// loop exactly one arbitration later, as step would.
		default:
			reason = b.termReason
			goto out // instEnd
		}
	}
out:
	m.trans.stats.FusedCycles += n
	if p := m.prof; p != nil {
		p.blockExit(b.start, reason, m.curPC, n, m.cycle)
	}
}

// translate fuses the straight-line run beginning at start into a
// superblock, or returns nil when the run is too short to be worth one.
// The run extends through statically-addressed NextControls (GOTO, CALL,
// LGOTO, LCALL) and closes with one dynamically-addressed terminator
// (BRANCH, RETURN, IFUJUMP, DISP8, DISP256) when present; it stops early
// at a reserved NextControl (left for the generic loop to diagnose), at
// MaxBlock, or when the chain revisits an interior address. A run that
// closes back on start is a statically-proven loop: it is unrolled —
// whole iterations replicated up to MaxBlock — so tight one- and
// two-word spin loops (the §7 I/O-benchmark emulator background, and the
// inner loops of block transfers) amortize block entry over many cycles.
func (m *Machine) translate(start microcode.Addr) *superblock {
	t := m.trans
	b := &superblock{start: start, devSafe: true, ifuSafe: true}
	visited := make([]microcode.Addr, 0, t.cfg.MaxBlock)
	visited = append(visited, start)
	pc := start
	iterLen := 0 // instructions per unrolled iteration, once known
	for len(b.code) < t.cfg.MaxBlock {
		d := &m.dim[pc]
		if d.block {
			b.task0Only = true
		}
		switch d.ffop {
		case microcode.FFInput, microcode.FFOutput, microcode.FFDevCtl, microcode.FFIOAttenAck:
			b.devSafe = false
		case microcode.FFIFUReset:
			b.ifuSafe = false
		}
		switch d.op.Kind {
		case microcode.NextGoto, microcode.NextCall,
			microcode.NextLongGoto, microcode.NextLongCall:
			next, link := staticNext(pc, d)
			b.code = append(b.code, fuseInst(d, next, link))
			b.addrs = append(b.addrs, pc)
			if next == start {
				// Closed loop: unroll further whole iterations.
				if iterLen == 0 {
					iterLen = len(b.code)
				}
				if len(b.code)+iterLen > t.cfg.MaxBlock {
					goto done
				}
				pc = next
				continue
			}
			if iterLen == 0 {
				// First pass: stop at an interior revisit. While unrolling
				// (iterLen set) the chain is already proven to cycle through
				// start, so interior addresses repeat by construction.
				if blockContains(visited, next) {
					goto done
				}
				visited = append(visited, next)
			}
			pc = next
		case microcode.NextBranch, microcode.NextReturn, microcode.NextIFUJump,
			microcode.NextDispatch8, microcode.NextDispatch256:
			b.code = append(b.code, fuseTerm(start, pc, d))
			b.addrs = append(b.addrs, pc)
			if d.op.Kind == microcode.NextIFUJump {
				b.termReason = ExitIFUJump
			} else {
				b.termReason = ExitBranch
			}
			goto done
		default:
			// Reserved NextControl: end the block before it; executing it on
			// the generic loop panics exactly as the other paths do.
			goto done
		}
	}
done:
	if len(b.code) < 2 {
		return nil
	}
	t.stats.BlocksBuilt++
	t.stats.Instructions += uint64(len(b.code))
	if p := m.prof; p != nil {
		p.blockCompiled(start, len(b.code))
	}
	return b
}

// blockContains reports whether a is already part of the run (blocks are
// short, so a linear scan at translation time beats a map).
func blockContains(addrs []microcode.Addr, a microcode.Addr) bool {
	for _, x := range addrs {
		if x == a {
			return true
		}
	}
	return false
}

// staticNext resolves a statically-addressed NextControl at translation
// time: the successor address and, for the CALL kinds, the LINK value —
// both exactly as nextAddr computes them per cycle (§6.2.2).
func staticNext(pc microcode.Addr, d *decoded) (next, link microcode.Addr) {
	link = (pc + 1) & microcode.AddrMask
	switch d.op.Kind {
	case microcode.NextGoto, microcode.NextCall:
		next = pc&^microcode.Addr(microcode.WordMask) | microcode.Addr(d.op.W)
	case microcode.NextLongGoto, microcode.NextLongCall:
		next = microcode.MakeAddr(d.ff, d.op.W)
	}
	return next, link
}

// fuseInst compiles one statically-successored microword: a specialized
// closure when the word fits a template, the exec-backed generic closure
// otherwise.
func fuseInst(d *decoded, next, link microcode.Addr) instFn {
	isCall := d.op.Kind == microcode.NextCall || d.op.Kind == microcode.NextLongCall
	if fn := fuseALU(d, next, link, isCall); fn != nil {
		return fn
	}
	if fn := fuseWide(d, next, link, isCall); fn != nil {
		return fn
	}
	return fuseExec(d, next, link, isCall)
}

// fuseExec is the generic fused form: execute through exec (identical
// semantics by construction — hold detection, memory issue, FF, stores),
// then advance to the pre-resolved successor instead of re-deriving it.
func fuseExec(d *decoded, next, link microcode.Addr, isCall bool) instFn {
	// exec computes the successor and linkage itself via nextAddr; next and
	// link exist so the translator has one closure shape per word. They are
	// asserted equal in the package tests.
	_ = link
	_ = isCall
	return func(m *Machine, now uint64) instExit {
		held, _, _ := m.exec(d, now)
		if held {
			return instHeld
		}
		m.curPC = next
		return instOK
	}
}

// fuseTerm compiles the block's dynamically-successored terminator: a
// specialized closure for the two-way BRANCH (both targets are page-relative
// constants, §6.2.2), exec in full for the rest (RETURN, IFUJUMP, dispatch —
// linkage reads, IFU dispatch side effects, dispatch address arithmetic).
func fuseTerm(start, pc microcode.Addr, d *decoded) instFn {
	if d.op.Kind == microcode.NextBranch {
		if fn := fuseBranch(start, pc, d); fn != nil {
			return fn
		}
	}
	return func(m *Machine, now uint64) instExit {
		held, _, nextPC := m.exec(d, now)
		if held {
			return instHeld
		}
		m.curPC = nextPC
		return instEnd
	}
}

// Operand-source kinds for the specialized templates.
const (
	srcConst = iota
	srcRM
	srcT
	srcQ
	srcMD
)

// fuseALU compiles the register/stack ALU template: no hold sources, no
// memory reference, no FF operation, register or constant operands, result
// to T/RM/stack. This is the §6.3 data-section fast case — the bulk of
// emulator opcode bodies and BitBlt setup code — with every per-cycle
// decode branch of exec resolved at translation time. Returns nil when the
// word does not fit the template.
func fuseALU(d *decoded, next, link microcode.Addr, isCall bool) instFn {
	if d.usesMD || d.usesIFUData || d.ifuJump || d.startsMem ||
		d.ffop != microcode.FFNop || d.ffRMDest >= 0 || d.ffMemBase >= 0 {
		return nil
	}
	var aKind int
	switch d.aSel {
	case microcode.ASelRM:
		aKind = srcRM
	case microcode.ASelT:
		aKind = srcT
	default:
		return nil
	}
	bKind := srcConst
	bConst := d.constB
	if !d.isConstB {
		switch d.bSel {
		case microcode.BSelRM:
			bKind = srcRM
		case microcode.BSelT:
			bKind = srcT
		case microcode.BSelQ:
			bKind = srcQ
		default:
			return nil
		}
	}
	raddr := d.raddr
	aluIdx := d.aluOp
	loadsT, loadsRM := d.loadsT, d.loadsRM
	if d.block {
		// Stack-modifier variant (§6.3.3): the containing block is
		// task0Only, so the stack unconditionally replaces RM.
		delta := int(d.stackDelta)
		return func(m *Machine, now uint64) instExit {
			m.stats.TaskCycles[0]++
			ts := &m.tasks[0]
			rmVal := m.stack[m.stackPtr]
			word := int(m.stackPtr) & (StackWords - 1)
			nw := word + delta
			if nw < 0 || nw >= StackWords {
				ts.stackErr = true
			}
			stNewPtr := m.stackPtr&^uint8(StackWords-1) | uint8(nw&(StackWords-1))
			aVal := rmVal
			if aKind == srcT {
				aVal = ts.t
			}
			var bVal uint16
			switch bKind {
			case srcConst:
				bVal = bConst
			case srcRM:
				bVal = rmVal
			case srcT:
				bVal = ts.t
			case srcQ:
				bVal = m.q
			}
			ctl := m.alufm[aluIdx]
			res, carry, ovf := aluOp(ctl, aVal, bVal, ts.savedCarry)
			ts.zero = res == 0
			ts.neg = res&0x8000 != 0
			ts.carry = carry
			ts.ovf = ovf
			if ctl.Fn.IsArith() {
				ts.savedCarry = carry
			}
			if loadsT {
				ts.t = res
			}
			if loadsRM {
				m.stack[stNewPtr] = res
			}
			m.stackPtr = stNewPtr
			if isCall {
				ts.link = link
			}
			m.stats.Executed++
			m.stats.TaskExecuted[0]++
			m.curPC = next
			return instOK
		}
	}
	return func(m *Machine, now uint64) instExit {
		cur := m.curTask
		m.stats.TaskCycles[cur]++
		ts := &m.tasks[cur]
		rIndex := m.rbase<<4 | raddr
		var aVal uint16
		if aKind == srcT {
			aVal = ts.t
		} else {
			aVal = m.rm[rIndex]
		}
		var bVal uint16
		switch bKind {
		case srcConst:
			bVal = bConst
		case srcRM:
			bVal = m.rm[rIndex]
		case srcT:
			bVal = ts.t
		case srcQ:
			bVal = m.q
		}
		ctl := m.alufm[aluIdx]
		res, carry, ovf := aluOp(ctl, aVal, bVal, ts.savedCarry)
		ts.zero = res == 0
		ts.neg = res&0x8000 != 0
		ts.carry = carry
		ts.ovf = ovf
		if ctl.Fn.IsArith() {
			ts.savedCarry = carry
		}
		if loadsT {
			ts.t = res
		}
		if loadsRM {
			m.rm[rIndex] = res
		}
		if isCall {
			ts.link = link
		}
		m.stats.Executed++
		m.stats.TaskExecuted[cur]++
		m.curPC = next
		return instOK
	}
}

// fuseWide compiles the memory/MD template: the inner-loop shape of block
// transfers (§7's BitBlt) and emulator frame access — Fetch/Store words
// with a same-instruction FF MEMBASE constant, MD operands, FF RM-write
// redirection, and FF COUNT constants. Hold detection (MD readiness, cache
// admission with the pre-applied base, §5.7) is kept per cycle because it
// must be, but every decode branch — operand routing, the FF dispatch, the
// destination index — is resolved at translation time. The admitted FF
// subset never overrides RESULT, so the ALU result is the stored value.
// Returns nil when the word does not fit.
func fuseWide(d *decoded, next, link microcode.Addr, isCall bool) instFn {
	if d.usesIFUData || d.ifuJump || d.block {
		return nil
	}
	countConst := -1
	switch {
	case d.ffop == microcode.FFNop, d.ffMemBase >= 0, d.ffRMDest >= 0:
	case d.ffop >= microcode.FFCountBase && d.ffop < microcode.FFCountBase+16:
		countConst = int(d.ffop - microcode.FFCountBase)
	default:
		return nil
	}
	var aKind int
	switch d.aSel {
	case microcode.ASelRM, microcode.ASelFetch, microcode.ASelStore:
		aKind = srcRM // MEMADDRESS is a copy of A: aVal is the RM word
	case microcode.ASelT:
		aKind = srcT
	case microcode.ASelMD:
		aKind = srcMD
	default:
		return nil
	}
	bKind := srcConst
	bConst := d.constB
	if !d.isConstB {
		switch d.bSel {
		case microcode.BSelRM:
			bKind = srcRM
		case microcode.BSelT:
			bKind = srcT
		case microcode.BSelQ:
			bKind = srcQ
		case microcode.BSelMD:
			bKind = srcMD
		default:
			return nil
		}
	}
	usesMD := d.usesMD
	startsMem, isStore := d.startsMem, d.isStore
	mbConst := int(d.ffMemBase)
	raddr := d.raddr
	wRaddr := raddr
	if d.ffRMDest >= 0 {
		wRaddr = uint8(d.ffRMDest)
	}
	aluIdx := d.aluOp
	loadsT, loadsRM := d.loadsT, d.loadsRM
	return func(m *Machine, now uint64) instExit {
		cur := m.curTask
		m.stats.TaskCycles[cur]++
		// Hold phase, in exec's order: MD readiness, then memory admission
		// with the same-instruction MEMBASE constant pre-applied exactly as
		// the issue below will use it. No state changes on a hold.
		if usesMD && !m.mdReady(now) {
			m.stats.HoldMD++
			m.stats.Holds++
			return instHeld
		}
		rIndex := m.rbase<<4 | raddr
		if startsMem {
			mb := m.membase
			if mbConst >= 0 {
				mb = uint8(mbConst)
			}
			va := m.mem.VA(mb, m.rm[rIndex])
			ok := false
			if isStore {
				ok = m.mem.CanWrite(va, now)
			} else {
				ok = m.mem.CanRead(cur, va, now)
			}
			if !ok {
				m.stats.HoldMem++
				m.stats.Holds++
				return instHeld
			}
		}
		ts := &m.tasks[cur]
		var aVal uint16
		switch aKind {
		case srcT:
			aVal = ts.t
		case srcMD:
			aVal = m.mem.MD(cur, now)
		default:
			aVal = m.rm[rIndex]
		}
		var bVal uint16
		switch bKind {
		case srcConst:
			bVal = bConst
		case srcRM:
			bVal = m.rm[rIndex]
		case srcT:
			bVal = ts.t
		case srcQ:
			bVal = m.q
		case srcMD:
			bVal = m.mem.MD(cur, now)
		}
		ctl := m.alufm[aluIdx]
		res, carry, ovf := aluOp(ctl, aVal, bVal, ts.savedCarry)
		ts.zero = res == 0
		ts.neg = res&0x8000 != 0
		ts.carry = carry
		ts.ovf = ovf
		if ctl.Fn.IsArith() {
			ts.savedCarry = carry
		}
		// FF effects for the admitted subset (execFF order: before the
		// memory issue, so a MEMBASE constant governs this reference).
		if mbConst >= 0 {
			m.membase = uint8(mbConst)
		}
		if countConst >= 0 {
			m.count = uint16(countConst)
		}
		if startsMem {
			va := m.mem.VA(m.membase, aVal)
			if isStore {
				if !m.mem.StartWrite(cur, va, bVal, now) {
					panic("core: StartWrite refused after CanWrite")
				}
			} else {
				if !m.mem.StartRead(cur, va, now) {
					panic("core: StartRead refused after CanRead")
				}
			}
		}
		if loadsT {
			ts.t = res
		}
		if loadsRM {
			m.rm[m.rbase<<4|wRaddr] = res
		}
		if isCall {
			ts.link = link
		}
		m.stats.Executed++
		m.stats.TaskExecuted[cur]++
		m.curPC = next
		return instOK
	}
}

// fuseBranch compiles a two-way BRANCH terminator whose data section fits
// the wide template: both successors are page-relative constants resolved
// here (untaken, and untaken with the condition ORed into the low bit,
// §5.5), so the word that closes a block-transfer inner loop — store, count
// decrement, loop-back — runs fused like the rest of the loop instead of
// through exec. The body mirrors fuseWide exactly; the condition kinds
// admitted are the ALU flags, COUNT≠0 (with its decrement side effect), the
// stack-error latch (cleared by the test), and MB. Returns nil when the
// word does not fit. A successor equal to the block's own start (the
// count-controlled loop-back that closes §7 BitBlt's inner loop) reports
// instLoop so the block loop restarts without re-entering through
// runTranslated.
func fuseBranch(start, pc microcode.Addr, d *decoded) instFn {
	if d.usesIFUData || d.ifuJump || d.block {
		return nil
	}
	cond := d.op.Cond
	switch cond {
	case microcode.CondALUZero, microcode.CondALUNeg, microcode.CondCarry,
		microcode.CondCountNZ, microcode.CondOverflow, microcode.CondStackError,
		microcode.CondMB:
	default:
		return nil
	}
	countConst := -1
	switch {
	case d.ffop == microcode.FFNop, d.ffMemBase >= 0, d.ffRMDest >= 0:
	case d.ffop >= microcode.FFCountBase && d.ffop < microcode.FFCountBase+16:
		countConst = int(d.ffop - microcode.FFCountBase)
	default:
		return nil
	}
	var aKind int
	switch d.aSel {
	case microcode.ASelRM, microcode.ASelFetch, microcode.ASelStore:
		aKind = srcRM
	case microcode.ASelT:
		aKind = srcT
	case microcode.ASelMD:
		aKind = srcMD
	default:
		return nil
	}
	bKind := srcConst
	bConst := d.constB
	if !d.isConstB {
		switch d.bSel {
		case microcode.BSelRM:
			bKind = srcRM
		case microcode.BSelT:
			bKind = srcT
		case microcode.BSelQ:
			bKind = srcQ
		case microcode.BSelMD:
			bKind = srcMD
		default:
			return nil
		}
	}
	usesMD := d.usesMD
	startsMem, isStore := d.startsMem, d.isStore
	mbConst := int(d.ffMemBase)
	raddr := d.raddr
	wRaddr := raddr
	if d.ffRMDest >= 0 {
		wRaddr = uint8(d.ffRMDest)
	}
	aluIdx := d.aluOp
	loadsT, loadsRM := d.loadsT, d.loadsRM
	untaken := pc&^microcode.Addr(microcode.WordMask) | microcode.Addr(d.op.W)
	taken := untaken | 1
	takenExit, untakenExit := instEnd, instEnd
	if taken == start {
		takenExit = instLoop
	}
	if untaken == start {
		untakenExit = instLoop
	}
	return func(m *Machine, now uint64) instExit {
		cur := m.curTask
		m.stats.TaskCycles[cur]++
		if usesMD && !m.mdReady(now) {
			m.stats.HoldMD++
			m.stats.Holds++
			return instHeld
		}
		rIndex := m.rbase<<4 | raddr
		if startsMem {
			mb := m.membase
			if mbConst >= 0 {
				mb = uint8(mbConst)
			}
			va := m.mem.VA(mb, m.rm[rIndex])
			ok := false
			if isStore {
				ok = m.mem.CanWrite(va, now)
			} else {
				ok = m.mem.CanRead(cur, va, now)
			}
			if !ok {
				m.stats.HoldMem++
				m.stats.Holds++
				return instHeld
			}
		}
		ts := &m.tasks[cur]
		var aVal uint16
		switch aKind {
		case srcT:
			aVal = ts.t
		case srcMD:
			aVal = m.mem.MD(cur, now)
		default:
			aVal = m.rm[rIndex]
		}
		var bVal uint16
		switch bKind {
		case srcConst:
			bVal = bConst
		case srcRM:
			bVal = m.rm[rIndex]
		case srcT:
			bVal = ts.t
		case srcQ:
			bVal = m.q
		case srcMD:
			bVal = m.mem.MD(cur, now)
		}
		ctl := m.alufm[aluIdx]
		res, carry, ovf := aluOp(ctl, aVal, bVal, ts.savedCarry)
		ts.zero = res == 0
		ts.neg = res&0x8000 != 0
		ts.carry = carry
		ts.ovf = ovf
		if ctl.Fn.IsArith() {
			ts.savedCarry = carry
		}
		if mbConst >= 0 {
			m.membase = uint8(mbConst)
		}
		if countConst >= 0 {
			m.count = uint16(countConst)
		}
		if startsMem {
			va := m.mem.VA(m.membase, aVal)
			if isStore {
				if !m.mem.StartWrite(cur, va, bVal, now) {
					panic("core: StartWrite refused after CanWrite")
				}
			} else {
				if !m.mem.StartRead(cur, va, now) {
					panic("core: StartRead refused after CanRead")
				}
			}
		}
		if loadsT {
			ts.t = res
		}
		if loadsRM {
			m.rm[m.rbase<<4|wRaddr] = res
		}
		// Branch condition (evalCond semantics for the admitted kinds).
		take := false
		switch cond {
		case microcode.CondALUZero:
			take = ts.zero
		case microcode.CondALUNeg:
			take = ts.neg
		case microcode.CondCarry:
			take = ts.carry
		case microcode.CondCountNZ:
			if m.count != 0 {
				m.count--
				take = true
			}
		case microcode.CondOverflow:
			take = ts.ovf
		case microcode.CondStackError:
			take = ts.stackErr
			ts.stackErr = false
		case microcode.CondMB:
			take = ts.mb
		}
		m.stats.Executed++
		m.stats.TaskExecuted[cur]++
		if take {
			m.curPC = taken
			return takenExit
		}
		m.curPC = untaken
		return untakenExit
	}
}
