package core

import (
	"testing"

	"dorado/internal/device"
	"dorado/internal/masm"
	"dorado/internal/microcode"
)

// TestDeterminism runs a complex scenario (emulator + three devices with
// different cadences + cache misses) twice and requires byte-identical
// statistics: the simulator has no hidden nondeterminism, which every
// experiment in internal/bench depends on.
func TestDeterminism(t *testing.T) {
	build := func() (*Machine, *device.WordSource, *device.Display) {
		b := masm.NewBuilder()
		// Emulator: strided fetches (some miss) plus arithmetic.
		b.EmitAt("start", masm.I{Const: 0x00FF, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadRM, R: 2})
		b.Emit(masm.I{B: microcode.BSelRM, R: 2, FF: microcode.FFPutCount})
		b.EmitAt("loop", masm.I{A: microcode.ASelFetch, R: 1, ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM})
		b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadT})
		b.Emit(masm.I{Flow: masm.Branch(microcode.CondCountNZ, "", "loop")})
		b.EmitAt("idle", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 0,
			LC: microcode.LCLoadRM, Flow: masm.Goto("idle")})
		// Disk service.
		b.EmitAt("disk", masm.I{FF: microcode.FFInput, ALU: microcode.ALUB, LC: microcode.LCLoadT})
		b.Emit(masm.I{A: microcode.ASelStore, R: 3, B: microcode.BSelT,
			ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM, Block: true, Flow: masm.Goto("disk")})
		// Display service.
		b.EmitAt("disp", masm.I{A: microcode.ASelT, B: microcode.BSelRM, R: 4,
			ALU: microcode.ALUAplusB, LC: microcode.LCLoadRM, FF: microcode.FFOutput})
		b.Emit(masm.I{Block: true, Flow: masm.Goto("disp")})
		p, err := b.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(Config{})
		if err != nil {
			t.Fatal(err)
		}
		m.Load(&p.Words)
		m.Start(p.MustEntry("start"))
		disk := device.NewWordSource(11, 27, 2)
		if err := m.Attach(disk); err != nil {
			t.Fatal(err)
		}
		m.SetIOAddress(11, 11)
		m.SetTPC(11, p.MustEntry("disk"))
		m.SetRM(3, 0x7000)
		disp := device.NewDisplay(13, m.Mem(), 16, 4)
		disp.SetBase(0x20000)
		if err := m.Attach(disp); err != nil {
			t.Fatal(err)
		}
		m.SetIOAddress(13, 13)
		m.SetTPC(13, p.MustEntry("disp"))
		m.SetT(13, 16)
		m.SetRM(1, 0x5000) // stride target (cold)
		return m, disk, disp
	}
	m1, d1, v1 := build()
	m2, d2, v2 := build()
	m1.Run(100_000)
	m2.Run(100_000)
	if m1.Stats() != m2.Stats() {
		t.Fatalf("stats diverged:\n%+v\n%+v", m1.Stats(), m2.Stats())
	}
	if m1.Mem().Stats() != m2.Mem().Stats() {
		t.Fatalf("memory stats diverged")
	}
	if d1.Consumed() != d2.Consumed() || v1.BlocksMoved() != v2.BlocksMoved() {
		t.Fatalf("device progress diverged")
	}
	if m1.T(0) != m2.T(0) || m1.RM(0) != m2.RM(0) {
		t.Fatalf("register state diverged")
	}
}
