package core

import (
	"testing"

	"dorado/internal/masm"
	"dorado/internal/microcode"
)

// The predecode differential harness: every scenario is built twice — once
// on the reference interpreter (Config.Reference: per-cycle decode, 16-slot
// device scan) and once on the predecoded fast path — stepped in lockstep,
// and compared cycle for cycle (trace stream) and at the end (full
// architectural state). Any divergence is a predecode bug by definition.

// recTracer records every trace event.
type recTracer struct {
	events []TraceEvent
}

func (r *recTracer) Trace(ev TraceEvent) { r.events = append(r.events, ev) }

// diffRun builds the scenario twice, runs both for cycles, and fails the
// test on the first difference.
func diffRun(t *testing.T, name string, cycles uint64, build func(cfg Config) (*Machine, error)) {
	t.Helper()
	ref, err := build(Config{Reference: true})
	if err != nil {
		t.Fatalf("%s: build reference: %v", name, err)
	}
	fast, err := build(Config{})
	if err != nil {
		t.Fatalf("%s: build fast: %v", name, err)
	}
	diffMachines(t, name, ref, fast, cycles)
}

// diffMachines steps both machines cycles times and compares traces and
// final state. The machines must have been identically constructed (apart
// from Config.Reference).
func diffMachines(t *testing.T, name string, ref, fast *Machine, cycles uint64) {
	t.Helper()
	var rt, ft recTracer
	ref.SetTracer(&rt)
	fast.SetTracer(&ft)
	ref.Run(cycles)
	fast.Run(cycles)
	n := len(rt.events)
	if len(ft.events) != n {
		t.Fatalf("%s: trace length differs: reference %d events, predecoded %d", name, n, len(ft.events))
	}
	for i := 0; i < n; i++ {
		if rt.events[i] != ft.events[i] {
			t.Fatalf("%s: trace diverges at event %d:\n  reference:  %+v\n  predecoded: %+v",
				name, i, rt.events[i], ft.events[i])
		}
	}
	if ref.stats != fast.stats {
		t.Errorf("%s: stats differ:\n  reference:  %+v\n  predecoded: %+v", name, ref.stats, fast.stats)
	}
	if ref.cycle != fast.cycle || ref.halted != fast.halted || ref.curTask != fast.curTask || ref.curPC != fast.curPC {
		t.Errorf("%s: control state differs: ref(cycle=%d halted=%v task=%d pc=%v) fast(cycle=%d halted=%v task=%d pc=%v)",
			name, ref.cycle, ref.halted, ref.curTask, ref.curPC, fast.cycle, fast.halted, fast.curTask, fast.curPC)
	}
	if ref.rm != fast.rm {
		t.Errorf("%s: RM contents differ", name)
	}
	if ref.stack != fast.stack || ref.stackPtr != fast.stackPtr {
		t.Errorf("%s: stack state differs", name)
	}
	if ref.tasks != fast.tasks {
		t.Errorf("%s: task state differs:\n  reference:  %+v\n  predecoded: %+v", name, ref.tasks, fast.tasks)
	}
	if ref.count != fast.count || ref.q != fast.q || ref.rbase != fast.rbase ||
		ref.membase != fast.membase || ref.shiftCtl != fast.shiftCtl || ref.cpreg != fast.cpreg {
		t.Errorf("%s: data-section registers differ", name)
	}
	if ref.ready != fast.ready || ref.bestNext != fast.bestNext {
		t.Errorf("%s: scheduler state differs", name)
	}
	// Spot-check memory through the functional port.
	for va := uint32(0x6000); va < 0x6100; va++ {
		if rv, fv := ref.mem.Peek(va), fast.mem.Peek(va); rv != fv {
			t.Errorf("%s: memory differs at %#x: reference %#x, predecoded %#x", name, va, rv, fv)
			break
		}
	}
}

// mustProgram assembles or fails.
func mustProgram(t *testing.T, b *masm.Builder) *masm.Program {
	t.Helper()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPredecodeDifferentialALU covers the data section: ALU ops, branch
// conditions, CALL/RETURN, COUNT loops, §5.9 constants, Q, RBASE, the
// shifter, and FF RM-write redirection.
func TestPredecodeDifferentialALU(t *testing.T) {
	bl := masm.NewBuilder()
	bl.EmitAt("start", masm.I{ALU: microcode.ALUB, Const: 0x00FF, HasConst: true, LC: microcode.LCLoadT})
	bl.Emit(masm.I{ALU: microcode.ALUB, Const: 0xFF07, HasConst: true, LC: microcode.LCLoadRM, R: 1})
	bl.Emit(masm.I{FF: microcode.FFPutQ, ALU: microcode.ALUAplusB, A: microcode.ASelT, B: microcode.BSelRM, R: 1})
	bl.Emit(masm.I{FF: microcode.FFCountBase + 9, Flow: masm.Goto("loop")})
	bl.EmitAt("loop", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelT, LC: microcode.LCLoadT,
		Flow: masm.Branch(microcode.CondCountNZ, "done", "loop")})
	bl.EmitAt("done", masm.I{ALU: microcode.ALUAminus1, A: microcode.ASelT, LC: microcode.LCLoadT,
		Flow: masm.Goto("post")})
	bl.EmitAt("post", masm.I{Flow: masm.Call("sub")})
	bl.Emit(masm.I{FF: microcode.FFRMDestBase + 5, ALU: microcode.ALUAplusB, A: microcode.ASelT,
		B: microcode.BSelQ, LC: microcode.LCLoadRM, R: 1}) // redirected to RM[5]
	bl.Emit(masm.I{FF: microcode.FFRotBase + 3})
	bl.Emit(masm.I{FF: microcode.FFShiftMaskZ, ALU: microcode.ALUA, A: microcode.ASelRM, R: 5,
		LC: microcode.LCLoadT})
	bl.Emit(masm.I{FF: microcode.FFHalt, Flow: masm.Self()})
	bl.EmitAt("sub", masm.I{ALU: microcode.ALUAxorB, A: microcode.ASelT, B: microcode.BSelQ,
		LC: microcode.LCLoadT, Flow: masm.Return()})
	p := mustProgram(t, bl)
	diffRun(t, "alu", 200, func(cfg Config) (*Machine, error) {
		m, err := New(cfg)
		if err != nil {
			return nil, err
		}
		m.Load(&p.Words)
		m.Start(p.MustEntry("start"))
		return m, nil
	})
}

// TestPredecodeDifferentialStackMemory covers the task-0 stack modifier,
// memory fetch/store with MD holds, and the same-instruction FF MEMBASE
// override that the hold phase must anticipate.
func TestPredecodeDifferentialStackMemory(t *testing.T) {
	bl := masm.NewBuilder()
	// Push two values, fetch through MEMBASE 2, add MD, store back.
	bl.EmitAt("start", masm.I{Block: true, R: 1, ALU: microcode.ALUB, Const: 0x0011, HasConst: true,
		LC: microcode.LCLoadRM}) // push 0x11
	bl.Emit(masm.I{Block: true, R: 1, ALU: microcode.ALUB, Const: 0x0022, HasConst: true,
		LC: microcode.LCLoadRM}) // push 0x22
	bl.Emit(masm.I{FF: microcode.FFMemBaseBase + 2, A: microcode.ASelFetch, R: 2}) // fetch base2+RM[2]
	bl.Emit(masm.I{ALU: microcode.ALUAplusB, A: microcode.ASelMD, B: microcode.BSelRM,
		Block: true, R: 0, LC: microcode.LCLoadRM}) // MD + top, replace top
	bl.Emit(masm.I{A: microcode.ASelStore, R: 2, B: microcode.BSelT})
	bl.Emit(masm.I{Block: true, R: 0xF, ALU: microcode.ALUA, A: microcode.ASelRM, LC: microcode.LCLoadT}) // pop
	bl.Emit(masm.I{FF: microcode.FFHalt, Flow: masm.Self()})
	p := mustProgram(t, bl)
	diffRun(t, "stack-memory", 400, func(cfg Config) (*Machine, error) {
		m, err := New(cfg)
		if err != nil {
			return nil, err
		}
		m.Load(&p.Words)
		m.Mem().SetBase(2, 0x6000)
		m.Mem().Poke(0x6010, 0x0300)
		m.SetRM(2, 0x10)
		m.Start(p.MustEntry("start"))
		return m, nil
	})
}

// TestPredecodeDifferentialDevices covers the scheduler with two live
// controllers: wakeups, preemption, Block, FFInput on the B bus, and the
// compact attached-device list against the 16-slot reference scan.
func TestPredecodeDifferentialDevices(t *testing.T) {
	bl := masm.NewBuilder()
	bl.EmitAt("emu", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 0,
		LC: microcode.LCLoadRM, Flow: masm.Goto("emu")})
	bl.EmitAt("svc", masm.I{FF: microcode.FFInput, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	bl.Emit(masm.I{A: microcode.ASelStore, R: 1, B: microcode.BSelT,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM, Block: true, Flow: masm.Goto("svc")})
	p := mustProgram(t, bl)
	diffRun(t, "devices", 20_000, func(cfg Config) (*Machine, error) {
		m, err := New(cfg)
		if err != nil {
			return nil, err
		}
		m.Load(&p.Words)
		m.Start(p.MustEntry("emu"))
		for _, task := range []int{9, 11} {
			if err := m.Attach(newProbeBench(task)); err != nil {
				return nil, err
			}
			m.SetIOAddress(task, uint16(task))
			m.SetTPC(task, p.MustEntry("svc"))
			m.SetRM(1, 0x6000)
		}
		return m, nil
	})
}

// TestPredecodeDifferentialDispatch covers DISPATCH8/DISPATCH256 and long
// transfers, whose FF bytes double as address bits.
func TestPredecodeDifferentialDispatch(t *testing.T) {
	bl := masm.NewBuilder()
	targets := make([]string, 8)
	for i := range targets {
		targets[i] = "t0"
	}
	targets[3] = "t3"
	bl.EmitAt("start", masm.I{ALU: microcode.ALUB, Const: 3, HasConst: true, LC: microcode.LCLoadT})
	bl.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelT, Flow: masm.Dispatch8(targets...)})
	bl.EmitAt("t0", masm.I{FF: microcode.FFHalt})
	bl.EmitAt("t3", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelT, LC: microcode.LCLoadT,
		Flow: masm.Goto("t0")})
	p := mustProgram(t, bl)
	diffRun(t, "dispatch", 100, func(cfg Config) (*Machine, error) {
		m, err := New(cfg)
		if err != nil {
			return nil, err
		}
		m.Load(&p.Words)
		m.Start(p.MustEntry("start"))
		return m, nil
	})
}

// TestPredecodeDifferentialAblations proves the two decode paths agree
// under the paper's design ablations too (they are orthogonal axes).
func TestPredecodeDifferentialAblations(t *testing.T) {
	bl := masm.NewBuilder()
	bl.EmitAt("start", masm.I{FF: microcode.FFCountBase + 7, Flow: masm.Goto("loop")})
	bl.EmitAt("loop", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelT, LC: microcode.LCLoadT,
		Flow: masm.Branch(microcode.CondCountNZ, "done", "loop")})
	bl.EmitAt("done", masm.I{FF: microcode.FFHalt, Flow: masm.Self()})
	p := mustProgram(t, bl)
	for _, opt := range []Options{
		{DelayedBranch: true},
		{FixedWaitMemory: true},
	} {
		opt := opt
		diffRun(t, "ablation", 200, func(cfg Config) (*Machine, error) {
			cfg.Options = opt
			m, err := New(cfg)
			if err != nil {
				return nil, err
			}
			m.Load(&p.Words)
			m.Start(p.MustEntry("start"))
			return m, nil
		})
	}
}

// TestSetIMInvalidation is the predecode invalidation rule: a microstore
// write must take effect on the very next fetch of that address, on both
// paths identically.
func TestSetIMInvalidation(t *testing.T) {
	bl := masm.NewBuilder()
	bl.EmitAt("start", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelT,
		LC: microcode.LCLoadT, Flow: masm.Goto("start")})
	p := mustProgram(t, bl)
	build := func(cfg Config) (*Machine, error) {
		m, err := New(cfg)
		if err != nil {
			return nil, err
		}
		m.Load(&p.Words)
		m.Start(p.MustEntry("start"))
		return m, nil
	}
	ref, err := build(Config{Reference: true})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := build(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*Machine{ref, fast} {
		m.Run(50)
		// Rewrite the loop instruction in place: same increment, but halt.
		a := p.MustEntry("start")
		w := m.IM(a)
		w.FF = microcode.FFHalt
		m.SetIM(a, w)
	}
	diffMachines(t, "setim", ref, fast, 50)
	if !fast.Halted() || !ref.Halted() {
		t.Fatalf("microstore write did not take effect: halted ref=%v fast=%v", ref.Halted(), fast.Halted())
	}
	// The write must have reached both the raw store and the predecode
	// cache; a stale cache would have kept the machine looping.
	if got := fast.IM(p.MustEntry("start")).FF; got != microcode.FFHalt {
		t.Fatalf("IM readback = %#x, want FFHalt", got)
	}
}
