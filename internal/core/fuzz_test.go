package core

import (
	"bytes"
	"testing"

	"dorado/internal/memory"
	"dorado/internal/microcode"
)

// fuzzStepMachine builds one side of the predecode differential pair with a
// small memory (snapshots embed all of storage) and nonzero register state,
// so a fuzzed word's reads and writes land somewhere visible.
func fuzzStepMachine(w microcode.Word, reference bool) (*Machine, error) {
	m, err := New(Config{
		Memory:    memory.Config{CacheWords: 256, CacheWays: 2, StorageWords: 4096},
		Reference: reference,
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 32; i++ {
		m.SetRM(i, uint16(0x1111*i+7))
		m.SetStack(i, uint16(0x0101*i+3))
	}
	m.SetT(0, 0x1234)
	m.SetCount(5)
	m.SetQ(0xBEEF)
	m.SetStackPtr(0x42)
	m.SetShiftCtl(0x0123)
	m.Mem().SetBase(0, 0x100)
	for va := uint32(0); va < 0x200; va++ {
		m.Mem().Poke(va, uint16(0xA000+va))
	}
	m.SetIM(0, w)
	m.Start(0)
	return m, nil
}

// FuzzPredecode feeds random 34-bit microwords through a few steps of both
// interpreter paths and asserts identical state deltas, using snapshot
// byte-equality as the whole-machine oracle. Words the encoding declares
// invalid are skipped — the predecode contract only covers words real
// microcode (which is validated at assembly/load time) can contain.
func FuzzPredecode(f *testing.F) {
	f.Add(uint64(0))
	f.Add(microcode.Word{ALUOp: uint8(microcode.ALUAplus1), ASel: microcode.ASelT,
		LC: microcode.LCLoadT}.Encode())
	f.Add(microcode.Word{RAddr: 3, ASel: microcode.ASelFetch}.Encode())
	f.Add(microcode.Word{FF: microcode.FFHalt}.Encode())
	f.Add(microcode.Word{BSel: microcode.BSelConstLo, FF: 0x55, LC: microcode.LCLoadRM,
		ALUOp: uint8(microcode.ALUB)}.Encode())
	f.Add(uint64(1)<<34 - 1)
	f.Fuzz(func(t *testing.T, raw uint64) {
		w := microcode.Decode(raw & (1<<34 - 1))
		if w.Validate() != nil {
			t.Skip()
		}
		fast, err := fuzzStepMachine(w, false)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := fuzzStepMachine(w, true)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fast.Snapshot(), ref.Snapshot()) {
			t.Fatal("machines differ before the first step (builder bug)")
		}
		// The first step executes the fuzzed word; the rest let its effect on
		// the successor address and task pipeline play out.
		for i := 0; i < 4; i++ {
			fast.Step()
			ref.Step()
			if !bytes.Equal(fast.Snapshot(), ref.Snapshot()) {
				t.Fatalf("interpreters diverge %d step(s) after word %+v (raw %#011x)", i+1, w, raw)
			}
		}
	})
}
