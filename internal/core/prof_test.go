package core

import (
	"bytes"
	"testing"

	"dorado/internal/masm"
	"dorado/internal/microcode"
)

// profTestProgram is the ALU differential scenario reused as a profiling
// subject: a hot loop with CALL/RETURN and a COUNT branch, so translation
// builds blocks and the profile contains both generic and fused cycles.
func profTestProgram(t *testing.T) *masm.Program {
	t.Helper()
	bl := masm.NewBuilder()
	bl.EmitAt("start", masm.I{ALU: microcode.ALUB, Const: 0x00FF, HasConst: true, LC: microcode.LCLoadT})
	bl.Emit(masm.I{FF: microcode.FFCountBase + 9, Flow: masm.Goto("loop")})
	bl.EmitAt("loop", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelT, LC: microcode.LCLoadT})
	bl.Emit(masm.I{FF: microcode.FFPutQ, ALU: microcode.ALUAplusB, A: microcode.ASelT, B: microcode.BSelRM, R: 1, LC: microcode.LCLoadRM, Flow: masm.Call("sub")})
	bl.Emit(masm.I{FF: microcode.FFRMDestBase + 5, ALU: microcode.ALUAxorB, A: microcode.ASelT, B: microcode.BSelQ, LC: microcode.LCLoadRM, R: 1})
	bl.Emit(masm.I{ALU: microcode.ALUAminusB, A: microcode.ASelRM, R: 5, B: microcode.BSelT,
		Flow: masm.Branch(microcode.CondCountNZ, "done", "loop")})
	bl.EmitAt("done", masm.I{FF: microcode.FFHalt, Flow: masm.Self()})
	bl.EmitAt("sub", masm.I{ALU: microcode.ALUAorB, A: microcode.ASelT, B: microcode.BSelQ,
		LC: microcode.LCLoadT, Flow: masm.Return()})
	return mustProgram(t, bl)
}

func profTestMachine(t *testing.T, p *masm.Program, cfg Config) *Machine {
	t.Helper()
	cfg.Memory = smallMem
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m.Load(&p.Words)
	m.SetRM(1, 0x1234)
	m.Start(p.MustEntry("start"))
	return m
}

// TestProfilerAttributionSums: on every execution path, the profiler must
// account for each simulated cycle exactly once — the sum of per-address
// Cycles equals the machine's cycle counter, and each address's held plus
// executed cycles never exceed its total (DelayedBranch stall cycles are
// charged but neither held nor executed).
func TestProfilerAttributionSums(t *testing.T) {
	p := profTestProgram(t)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"reference", Config{Reference: true}},
		{"predecoded", Config{}},
		{"translated", Config{Translation: translateTestCfg}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := profTestMachine(t, p, tc.cfg)
			prof := NewProfiler()
			m.SetProfiler(prof)
			m.RunCycles(500)
			s := prof.Snapshot()
			var cycles, executed, holds uint64
			for _, a := range s.Addrs {
				cycles += a.Cycles
				executed += a.Executed
				holds += a.Holds
				if a.Executed+a.Holds > a.Cycles {
					t.Errorf("%s: addr %s held+executed %d exceeds cycles %d",
						tc.name, a.Addr, a.Executed+a.Holds, a.Cycles)
				}
			}
			if cycles != m.Cycle() {
				t.Errorf("%s: attributed %d cycles, machine ran %d", tc.name, cycles, m.Cycle())
			}
			if executed == 0 {
				t.Errorf("%s: no executed instructions attributed", tc.name)
			}
			if holds != m.Stats().Holds {
				t.Errorf("%s: attributed %d holds, machine counted %d", tc.name, holds, m.Stats().Holds)
			}
		})
	}
}

// TestProfilerBlockAccounting: on the translated path the block table must
// balance — every block's entries equal its non-guard-fail exits, the
// machine-wide exit counters equal the per-block sums, and the fused cycles
// charged to blocks equal the translator's FusedCycles stat.
func TestProfilerBlockAccounting(t *testing.T) {
	p := profTestProgram(t)
	m := profTestMachine(t, p, Config{Translation: translateTestCfg})
	prof := NewProfiler()
	m.SetProfiler(prof)
	// Prime the differential harness cadence: short chunks expire the cycle
	// budget mid-superblock, exercising the ExitLimit path too.
	for i := 0; i < 80; i++ {
		m.RunCycles(7)
	}
	s := prof.Snapshot()
	if len(s.Blocks) == 0 {
		t.Fatal("no superblocks profiled on a hot loop")
	}
	var total [NumExitReasons]uint64
	var fused uint64
	for _, b := range s.Blocks {
		if b.Compiled == 0 {
			t.Errorf("block %s: entered but never compiled", b.Start)
		}
		if b.Instructions < 2 {
			t.Errorf("block %s: %d fused instructions, want >= 2", b.Start, b.Instructions)
		}
		var exits, pcs uint64
		for r, n := range b.Exits {
			total[r] += n
			if ExitReason(r) != ExitGuardFail {
				exits += n
			}
		}
		for _, pc := range b.ExitPCs {
			pcs += pc.Count
		}
		if b.Entries != exits {
			t.Errorf("block %s: %d entries but %d non-guard-fail exits", b.Start, b.Entries, exits)
		}
		if allExits := exits + b.Exits[ExitGuardFail]; pcs != allExits {
			t.Errorf("block %s: exit-PC histogram sums to %d, want %d", b.Start, pcs, allExits)
		}
		fused += b.Cycles
	}
	if total != s.Exits {
		t.Errorf("machine-wide exits %v != per-block sum %v", s.Exits, total)
	}
	if st := m.TranslationStats(); fused != st.FusedCycles {
		t.Errorf("blocks charged %d fused cycles, translator counted %d", fused, st.FusedCycles)
	}
	if s.Exits[ExitBranch] == 0 {
		t.Errorf("branch-terminated loop recorded no branch exits: %v", s.Exits)
	}
	if s.Exits[ExitLimit] == 0 {
		t.Errorf("prime-chunk cadence recorded no limit exits: %v", s.Exits)
	}
}

// TestProfilerDoesNotPerturb: attaching a profiler must not change the
// simulation — snapshots with and without one stay byte-identical on the
// translated path (where the profiler threads through the fused loops).
func TestProfilerDoesNotPerturb(t *testing.T) {
	p := profTestProgram(t)
	plain := profTestMachine(t, p, Config{Translation: translateTestCfg})
	profiled := profTestMachine(t, p, Config{Translation: translateTestCfg})
	profiled.SetProfiler(NewProfiler())
	for i := 0; i < 40; i++ {
		plain.RunCycles(7)
		profiled.RunCycles(7)
		a, b := plain.Snapshot(), profiled.Snapshot()
		if !bytes.Equal(a, b) {
			t.Fatalf("profiled snapshot diverges at cycle %d", plain.Cycle())
		}
	}
}

// TestProfilerReset: Reset returns the profiler to empty and a subsequent
// window accumulates independently.
func TestProfilerReset(t *testing.T) {
	p := profTestProgram(t)
	m := profTestMachine(t, p, Config{Translation: translateTestCfg})
	prof := NewProfiler()
	m.SetProfiler(prof)
	m.RunCycles(300)
	if s := prof.Snapshot(); len(s.Addrs) == 0 {
		t.Fatal("first window empty")
	}
	prof.Reset()
	if s := prof.Snapshot(); len(s.Addrs) != 0 || len(s.Blocks) != 0 {
		t.Fatalf("Reset left state: %d addrs, %d blocks", len(s.Addrs), len(s.Blocks))
	}
	before := m.Cycle()
	m.RunCycles(100)
	s := prof.Snapshot()
	var cycles uint64
	for _, a := range s.Addrs {
		cycles += a.Cycles
	}
	if cycles != m.Cycle()-before {
		t.Errorf("post-Reset window attributed %d cycles, ran %d", cycles, m.Cycle()-before)
	}
}

// TestProfilerOffNoAllocs: with no profiler attached the hot loops must not
// allocate per cycle — the acceptance criterion guarding the prof-off path.
func TestProfilerOffNoAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement")
	}
	p := profTestProgram(t)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"predecoded", Config{}},
		{"translated", Config{Translation: translateTestCfg}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := profTestMachine(t, p, tc.cfg)
			m.RunCycles(2000) // warm up: compile any superblocks first
			if avg := testing.AllocsPerRun(10, func() { m.RunCycles(500) }); avg != 0 {
				t.Errorf("prof-off %s path allocates %.1f per run slice", tc.name, avg)
			}
		})
	}
}

// TestExitReasonStrings: the wire names are stable and total.
func TestExitReasonStrings(t *testing.T) {
	want := []string{
		"fallthrough", "branch", "ifujump", "task_switch",
		"device_wakeup", "hold", "limit", "halt", "guard_fail",
	}
	if int(NumExitReasons) != len(want) {
		t.Fatalf("NumExitReasons = %d, want %d", NumExitReasons, len(want))
	}
	for r := ExitReason(0); r < NumExitReasons; r++ {
		if r.String() != want[r] {
			t.Errorf("ExitReason(%d).String() = %q, want %q", r, r.String(), want[r])
		}
	}
	if ExitReason(250).String() != "unknown" {
		t.Error("out-of-range reason did not stringify as unknown")
	}
	aborts := map[ExitReason]bool{
		ExitTaskSwitch: true, ExitDeviceWakeup: true, ExitHold: true, ExitGuardFail: true,
	}
	for r := ExitReason(0); r < NumExitReasons; r++ {
		if r.Abort() != aborts[r] {
			t.Errorf("ExitReason %s Abort() = %v, want %v", r, r.Abort(), aborts[r])
		}
	}
}
