package core

import (
	"testing"

	"dorado/internal/masm"
	"dorado/internal/microcode"
	"dorado/internal/state"
)

// reportCycleRate emits the host-throughput metric shared by every Step
// benchmark: one benchmark iteration is one simulated 60 ns cycle.
func reportCycleRate(b *testing.B) {
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/sec")
}

// aluLoopMachine builds the pure data-section workload (no memory traffic).
func aluLoopMachine(b *testing.B, cfg Config) *Machine {
	bl := masm.NewBuilder()
	bl.EmitAt("start", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelT,
		LC: microcode.LCLoadT, Flow: masm.Goto("start")})
	p, err := bl.Assemble()
	if err != nil {
		b.Fatal(err)
	}
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	m.Load(&p.Words)
	m.Start(p.MustEntry("start"))
	return m
}

// BenchmarkStepALULoop measures simulator throughput on pure data-section
// work (no memory traffic): host ns per simulated 60 ns cycle.
func BenchmarkStepALULoop(b *testing.B) {
	m := aluLoopMachine(b, Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
	reportCycleRate(b)
}

// BenchmarkStepALULoopReference is the same workload on the reference
// interpreter (per-cycle decode, Config.Reference) — the denominator of the
// predecode speedup.
func BenchmarkStepALULoopReference(b *testing.B) {
	m := aluLoopMachine(b, Config{Reference: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
	reportCycleRate(b)
}

// BenchmarkStepMemoryLoop measures throughput with a cache-hit fetch+use
// per pair of cycles.
func BenchmarkStepMemoryLoop(b *testing.B) {
	bl := masm.NewBuilder()
	bl.EmitAt("start", masm.I{A: microcode.ASelFetch, R: 1})
	bl.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadT,
		Flow: masm.Goto("start")})
	p, err := bl.Assemble()
	if err != nil {
		b.Fatal(err)
	}
	m, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	m.Load(&p.Words)
	m.Start(p.MustEntry("start"))
	m.SetRM(1, 64)
	m.Mem().Warm(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
	reportCycleRate(b)
}

// BenchmarkStepWithDevices measures throughput with two live controllers.
func BenchmarkStepWithDevices(b *testing.B) {
	bl := masm.NewBuilder()
	bl.EmitAt("start", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelT,
		LC: microcode.LCLoadT, Flow: masm.Goto("start")})
	bl.EmitAt("svc", masm.I{FF: microcode.FFInput, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	bl.Emit(masm.I{Block: true, Flow: masm.Goto("svc")})
	p, err := bl.Assemble()
	if err != nil {
		b.Fatal(err)
	}
	m, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	m.Load(&p.Words)
	m.Start(p.MustEntry("start"))
	for _, task := range []int{9, 11} {
		d := newProbeBench(task)
		if err := m.Attach(d); err != nil {
			b.Fatal(err)
		}
		m.SetIOAddress(task, uint16(task))
		m.SetTPC(task, p.MustEntry("svc"))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
	reportCycleRate(b)
}

// newProbeBench is a periodic device for benchmarking.
func newProbeBench(task int) *benchDev { return &benchDev{task: task} }

type benchDev struct {
	task int
	wake bool
	n    uint64
}

func (d *benchDev) Task() int { return d.task }
func (d *benchDev) Tick(now uint64) {
	d.n++
	if d.n%50 == 0 {
		d.wake = true
	}
}
func (d *benchDev) Wakeup() bool           { return d.wake }
func (d *benchDev) NotifyNext(uint64)      { d.wake = false }
func (d *benchDev) Input(uint64) uint16    { return uint16(d.n) }
func (d *benchDev) Output(uint16, uint64)  {}
func (d *benchDev) Control(uint16, uint64) {}
func (d *benchDev) Atten() bool            { return false }
func (d *benchDev) SaveState(e *state.Encoder) {
	e.Bool(d.wake)
	e.U64(d.n)
}
func (d *benchDev) LoadState(dec *state.Decoder) {
	d.wake = dec.Bool()
	d.n = dec.U64()
}
