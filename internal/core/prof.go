package core

import (
	"sort"

	"dorado/internal/microcode"
)

// This file is the core half of the microarchitectural profiler: exact
// per-microaddress cycle attribution plus superblock lifecycle accounting.
// The Profiler is attached with SetProfiler (dorado.WithProfiler at the
// facade) and mirrors the obs.Recorder pattern: detached — the default —
// the hot paths pay one nil check per cycle and allocate nothing; attached,
// every cycle is charged to the microaddress that occupied the processor,
// and every superblock execution reports how it ended (ExitReason). The
// model/merge/export half lives in internal/obs/prof, which reads the
// Snapshot this file produces.

// ExitReason classifies how one superblock execution (or attempt) ended.
// The first three are the graceful ends; the rest are the aborts the
// ROADMAP's "trace through IFUJUMP" item needs attributed: which event
// closes blocks on each workload, and therefore which fallback to attack
// next.
type ExitReason uint8

const (
	// ExitFallThrough: the block ran off its last fused instruction onto a
	// static successor (a run cut short by MaxBlock or an interior revisit).
	ExitFallThrough ExitReason = iota
	// ExitBranch: a BRANCH/RETURN/DISP8/DISP256 terminator retired and set
	// curPC dynamically — the normal side exit.
	ExitBranch
	// ExitIFUJump: the block ended at an IFUJUMP terminator. Emulator
	// workloads end essentially every block here (the ~1x translated result).
	ExitIFUJump
	// ExitTaskSwitch: pending higher-priority work (READY flipflops) broke
	// the block loop before the terminator.
	ExitTaskSwitch
	// ExitDeviceWakeup: a device wakeup raised BESTNEXTTASK above the
	// running task mid-block — the fast-I/O wakeup churn.
	ExitDeviceWakeup
	// ExitHold: the block was broken out of while its current instruction
	// was held (§5.7); the generic loop retires the hold.
	ExitHold
	// ExitLimit: the Run cycle budget expired mid-block.
	ExitLimit
	// ExitHalt: an FF Halt retired inside the block.
	ExitHalt
	// ExitGuardFail: the entry guard rejected a compiled block (pending
	// task switch, non-task-0 entry, or owed stall cycles); no fused cycles
	// ran. Counted once per rejected entry attempt.
	ExitGuardFail
	// NumExitReasons sizes per-reason counter arrays.
	NumExitReasons
)

// String returns the reason's stable wire name (used in JSON profiles and
// Prometheus labels).
func (r ExitReason) String() string {
	if int(r) < len(exitNames) {
		return exitNames[r]
	}
	return "unknown"
}

var exitNames = [...]string{
	"fallthrough", "branch", "ifujump", "task_switch",
	"device_wakeup", "hold", "limit", "halt", "guard_fail",
}

// Abort reports whether the reason ended a block before its terminator
// (guard-fail included): the translator coverage lost to the fallback
// contract, as opposed to a block simply finishing.
func (r ExitReason) Abort() bool {
	switch r {
	case ExitTaskSwitch, ExitDeviceWakeup, ExitHold, ExitGuardFail:
		return true
	}
	return false
}

// blockProf accumulates one superblock's lifecycle counters, keyed by the
// block's start address.
type blockProf struct {
	instructions int // fused instructions at compile time
	compiled     uint64
	entries      uint64
	cycles       uint64
	exits        [NumExitReasons]uint64
	exitPCs      map[microcode.Addr]uint64 // where control went on exit
}

// BlockSpan is one superblock execution laid out in time: the cycle it
// entered, the fused cycles it retired, and how it ended. Spans feed the
// Chrome-trace annotation; the ring keeps the most recent profSpanCap so a
// long run stays bounded.
type BlockSpan struct {
	Start  uint64 // machine cycle the block was entered at
	Cycles uint64 // fused cycles retired
	Block  microcode.Addr
	Reason ExitReason
}

// profSpanCap bounds the span ring (~256 KiB); older spans are dropped and
// counted, mirroring the recorder's SpansDropped contract.
const profSpanCap = 8192

// Profiler is the attribution state SetProfiler hangs on a machine: exact
// per-microaddress cycle/execute/hold counters (fixed arrays — charging a
// cycle is two or three increments, no hashing, no allocation) and a
// per-superblock lifecycle table (allocating, but touched only at block
// granularity, never per cycle). A Profiler belongs to one machine; it is
// not safe for concurrent use with the simulation and, like the recorder
// and the translator caches, is never serialized into snapshots.
type Profiler struct {
	cycles   [microcode.StoreSize]uint64
	executed [microcode.StoreSize]uint64
	holds    [microcode.StoreSize]uint64
	blocks   map[microcode.Addr]*blockProf
	exits    [NumExitReasons]uint64 // fleet of per-block exits, summed

	spans        []BlockSpan // ring of recent block executions
	spanHead     int         // next write position once the ring is full
	spansDropped uint64
}

// NewProfiler returns an empty profiler (three 32 KiB counter planes plus
// an empty block table).
func NewProfiler() *Profiler {
	return &Profiler{blocks: map[microcode.Addr]*blockProf{}}
}

// cycle charges one cycle to addr. held marks a §5.7 held cycle, exec a
// completed instruction; a DelayedBranch stall cycle is neither.
func (p *Profiler) cycle(addr microcode.Addr, held, exec bool) {
	p.cycles[addr]++
	if held {
		p.holds[addr]++
	} else if exec {
		p.executed[addr]++
	}
}

// block returns (creating on demand) the lifecycle record for the
// superblock starting at addr.
func (p *Profiler) block(addr microcode.Addr) *blockProf {
	b := p.blocks[addr]
	if b == nil {
		b = &blockProf{exitPCs: map[microcode.Addr]uint64{}}
		p.blocks[addr] = b
	}
	return b
}

// blockCompiled records a superblock build (start address, fused length).
func (p *Profiler) blockCompiled(addr microcode.Addr, instructions int) {
	b := p.block(addr)
	b.compiled++
	b.instructions = instructions
}

// blockExit records the end of one block execution (or, for ExitGuardFail,
// one rejected entry attempt): the reason, the PC control continued at, the
// fused cycles the execution retired, and the machine cycle it ended at
// (for the span ring; guard fails retire nothing and leave no span).
func (p *Profiler) blockExit(start microcode.Addr, reason ExitReason, exitPC microcode.Addr, cycles, endCycle uint64) {
	b := p.block(start)
	if reason != ExitGuardFail {
		b.entries++
	}
	b.cycles += cycles
	b.exits[reason]++
	b.exitPCs[exitPC]++
	p.exits[reason]++
	if reason == ExitGuardFail {
		return
	}
	sp := BlockSpan{Start: endCycle - cycles, Cycles: cycles, Block: start, Reason: reason}
	if len(p.spans) < profSpanCap {
		p.spans = append(p.spans, sp)
	} else {
		p.spans[p.spanHead] = sp
		p.spanHead = (p.spanHead + 1) % profSpanCap
		p.spansDropped++
	}
}

// AddrCount is one microaddress's attribution counters in a Snapshot.
type AddrCount struct {
	Addr     microcode.Addr
	Cycles   uint64 // cycles the address occupied the processor (held included)
	Executed uint64 // instructions completed at the address
	Holds    uint64 // held cycles at the address
}

// PCCount is one (address, count) pair of a block's exit-PC histogram.
type PCCount struct {
	PC    microcode.Addr
	Count uint64
}

// BlockSnapshot is one superblock's lifecycle record in a Snapshot.
type BlockSnapshot struct {
	Start        microcode.Addr
	Instructions int
	Compiled     uint64 // builds (recompiles after invalidation included)
	Entries      uint64
	Cycles       uint64 // fused cycles retired inside the block
	Exits        [NumExitReasons]uint64
	ExitPCs      []PCCount // sorted by PC
}

// Snapshot is the profiler's complete state at one instant, in
// deterministic order (addresses ascending): the input internal/obs/prof
// builds its Profile model from.
type Snapshot struct {
	Addrs  []AddrCount // non-zero addresses only
	Blocks []BlockSnapshot
	Exits  [NumExitReasons]uint64 // per-reason block exits, all blocks
	Spans  []BlockSpan            // recent block executions, oldest first
	// SpansDropped counts block executions that fell off the span ring.
	SpansDropped uint64
}

// Snapshot copies the profiler's counters out. Call while the machine is
// paused (profiles are read between run slices, like snapshots and traces).
func (p *Profiler) Snapshot() Snapshot {
	var s Snapshot
	for a := 0; a < microcode.StoreSize; a++ {
		if p.cycles[a] == 0 && p.executed[a] == 0 && p.holds[a] == 0 {
			continue
		}
		s.Addrs = append(s.Addrs, AddrCount{
			Addr:     microcode.Addr(a),
			Cycles:   p.cycles[a],
			Executed: p.executed[a],
			Holds:    p.holds[a],
		})
	}
	starts := make([]microcode.Addr, 0, len(p.blocks))
	for a := range p.blocks {
		starts = append(starts, a)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for _, a := range starts {
		b := p.blocks[a]
		bs := BlockSnapshot{
			Start:        a,
			Instructions: b.instructions,
			Compiled:     b.compiled,
			Entries:      b.entries,
			Cycles:       b.cycles,
			Exits:        b.exits,
		}
		pcs := make([]microcode.Addr, 0, len(b.exitPCs))
		for pc := range b.exitPCs {
			pcs = append(pcs, pc)
		}
		sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
		for _, pc := range pcs {
			bs.ExitPCs = append(bs.ExitPCs, PCCount{PC: pc, Count: b.exitPCs[pc]})
		}
		s.Blocks = append(s.Blocks, bs)
	}
	s.Exits = p.exits
	// Unroll the ring oldest-first: once full, spanHead is the oldest slot.
	if len(p.spans) > 0 {
		s.Spans = make([]BlockSpan, 0, len(p.spans))
		s.Spans = append(s.Spans, p.spans[p.spanHead:]...)
		s.Spans = append(s.Spans, p.spans[:p.spanHead]...)
	}
	s.SpansDropped = p.spansDropped
	return s
}

// ExitCounts returns the machine-wide per-reason block exit counters — the
// cheap read fleet metric caches refresh from after every operation
// (Snapshot walks the full counter planes; this copies nine words).
func (p *Profiler) ExitCounts() [NumExitReasons]uint64 { return p.exits }

// Reset clears every counter (the block table included), so one profiler
// can cover successive measurement windows without reallocation of the
// counter planes.
func (p *Profiler) Reset() {
	p.cycles = [microcode.StoreSize]uint64{}
	p.executed = [microcode.StoreSize]uint64{}
	p.holds = [microcode.StoreSize]uint64{}
	p.blocks = map[microcode.Addr]*blockProf{}
	p.exits = [NumExitReasons]uint64{}
	p.spans = p.spans[:0]
	p.spanHead = 0
	p.spansDropped = 0
}

// SetProfiler attaches (or, with nil, detaches) a microarchitectural
// profiler: every cycle is then charged to the microaddress occupying the
// processor — on the generic loop and inside superblocks alike — and every
// superblock execution records how it ended. Detached (the default) the
// cost is one nil check per cycle; the bench guard's prof budgets bound
// both states.
func (m *Machine) SetProfiler(p *Profiler) { m.prof = p }

// Profiler returns the attached profiler, or nil.
func (m *Machine) Profiler() *Profiler { return m.prof }
