package core

import (
	"testing"

	"dorado/internal/masm"
	"dorado/internal/microcode"
	"dorado/internal/obs"
)

// The recorder hook must agree with the constants it mirrors.
func TestObsTaskCountMatches(t *testing.T) {
	if NumTasks != obs.MaxTasks {
		t.Fatalf("core.NumTasks=%d, obs.MaxTasks=%d", NumTasks, obs.MaxTasks)
	}
}

// The headline empirical check: an undisturbed device wakeup reaches its
// first executed instruction exactly two cycles after the edge (§5.4's
// "the latency between a wakeup request and the execution of the first
// microinstruction of the awakened task is two cycles").
func TestRecorderValidatesTwoCycleWakeup(t *testing.T) {
	b := masm.NewBuilder()
	emulatorLoop(b)
	b.EmitAt("svc", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 1, LC: microcode.LCLoadRM})
	b.Emit(masm.I{Block: true, Flow: masm.Goto("svc")})
	m := buildMachine(t, Config{}, b)
	rec := obs.NewRecorder(obs.Config{})
	m.SetRecorder(rec)
	p := newProbe(5, 10, 60, 110)
	if err := m.Attach(p); err != nil {
		t.Fatal(err)
	}
	m.SetTPC(5, mustAssemble(t, b).MustEntry("svc"))
	for m.Cycle() < 200 {
		m.Step()
	}
	rec.Flush(m.Cycle())

	h := rec.WakeupToRun().Snapshot()
	if h.Total != 3 {
		t.Fatalf("wakeup-to-run samples = %d, want 3", h.Total)
	}
	if h.Sum != 6 {
		t.Errorf("wakeup-to-run sum = %d over 3 wakeups, want 6 (2 cycles each)", h.Sum)
	}
	// All three samples land in the le=2 bucket and none in le=1.
	if h.Counts[0] != 0 || h.Counts[1] != 3 {
		t.Errorf("histogram counts = %v (bounds %v)", h.Counts, h.Bounds)
	}
	if got := rec.Wakeups(5); got != 3 {
		t.Errorf("task 5 wakeup edges = %d, want 3", got)
	}
}

func TestRecorderSpansCoverRun(t *testing.T) {
	b := masm.NewBuilder()
	emulatorLoop(b)
	b.EmitAt("svc", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 1, LC: microcode.LCLoadRM})
	b.Emit(masm.I{Block: true, Flow: masm.Goto("svc")})
	m := buildMachine(t, Config{}, b)
	rec := obs.NewRecorder(obs.Config{TimelineInterval: 64})
	m.SetRecorder(rec)
	p := newProbe(5, 10, 50)
	if err := m.Attach(p); err != nil {
		t.Fatal(err)
	}
	m.SetTPC(5, mustAssemble(t, b).MustEntry("svc"))
	for m.Cycle() < 100 {
		m.Step()
	}
	rec.Flush(m.Cycle())

	// Spans tile [0, 100) with no gaps or overlaps, and their per-task
	// cycle totals equal the machine's own counters.
	var covered uint64
	var perTask [NumTasks]uint64
	var prevEnd uint64
	for i, sp := range rec.Spans() {
		if sp.Start != prevEnd {
			t.Errorf("span %d starts at %d, previous ended at %d", i, sp.Start, prevEnd)
		}
		if sp.End <= sp.Start {
			t.Errorf("span %d empty: %+v", i, sp)
		}
		covered += sp.End - sp.Start
		perTask[sp.Task] += sp.End - sp.Start
		prevEnd = sp.End
	}
	if covered != m.Cycle() {
		t.Errorf("spans cover %d cycles, machine ran %d", covered, m.Cycle())
	}
	st := m.Stats()
	for task := 0; task < NumTasks; task++ {
		if perTask[task] != st.TaskCycles[task] {
			t.Errorf("task %d: spans total %d cycles, stats say %d",
				task, perTask[task], st.TaskCycles[task])
		}
	}

	// The timeline's slice sums also match the machine's counters.
	var tl [NumTasks]uint64
	for _, sl := range rec.Timeline() {
		for task := 0; task < NumTasks; task++ {
			tl[task] += uint64(sl.Cycles[task])
		}
	}
	// The last partial interval is not yet sampled; totals must not exceed
	// the stats and must cover all full intervals.
	interval := rec.TimelineInterval()
	full := m.Cycle() / interval * interval
	var tlTotal uint64
	for task := 0; task < NumTasks; task++ {
		tlTotal += tl[task]
		if tl[task] > st.TaskCycles[task] {
			t.Errorf("timeline task %d = %d > stats %d", task, tl[task], st.TaskCycles[task])
		}
	}
	if tlTotal != full {
		t.Errorf("timeline covers %d cycles, want %d full intervals", tlTotal, full)
	}
}

func TestRecorderHoldEpisodesMatchStats(t *testing.T) {
	// A cold-miss MD use holds for the storage latency: one long episode
	// whose length equals the machine's hold counter.
	b := masm.NewBuilder()
	b.EmitAt("start", masm.I{Const: 0x4000, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadRM, R: 1})
	b.Emit(masm.I{A: microcode.ASelFetch, R: 1})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadT})
	b.Halt()
	m := buildMachine(t, Config{}, b)
	rec := obs.NewRecorder(obs.Config{})
	m.SetRecorder(rec)
	mustHalt(t, m, 1000)
	rec.Flush(m.Cycle())

	st := m.Stats()
	h := rec.HoldLatency().Snapshot()
	if st.Holds == 0 {
		t.Fatal("workload produced no holds")
	}
	if h.Sum != st.Holds {
		t.Errorf("histogram sum = %d held cycles, stats = %d", h.Sum, st.Holds)
	}
	if h.Total != 1 {
		t.Errorf("hold episodes = %d, want 1 (single MD miss)", h.Total)
	}
}

// Attaching a recorder must not change simulation semantics: the machine
// with metrics on is cycle-for-cycle identical to the bare one.
func TestRecorderDoesNotPerturbSimulation(t *testing.T) {
	build := func(attach bool) *Machine {
		b := masm.NewBuilder()
		emulatorLoop(b)
		b.EmitAt("svc", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 1, LC: microcode.LCLoadRM})
		b.Emit(masm.I{Block: true, Flow: masm.Goto("svc")})
		m := buildMachine(t, Config{}, b)
		if attach {
			m.SetRecorder(obs.NewRecorder(obs.Config{}))
		}
		p := newProbe(5, 10, 30, 70)
		if err := m.Attach(p); err != nil {
			t.Fatal(err)
		}
		m.SetTPC(5, mustAssemble(t, b).MustEntry("svc"))
		for m.Cycle() < 150 {
			m.Step()
		}
		return m
	}
	bare, rec := build(false), build(true)
	if bare.RM(0) != rec.RM(0) || bare.RM(1) != rec.RM(1) {
		t.Errorf("results diverge: bare RM0/1 = %d/%d, recorded = %d/%d",
			bare.RM(0), bare.RM(1), rec.RM(0), rec.RM(1))
	}
	if bare.Stats() != rec.Stats() {
		t.Errorf("stats diverge:\nbare: %+v\nrec:  %+v", bare.Stats(), rec.Stats())
	}
}

func TestSetRecorderDetach(t *testing.T) {
	b := masm.NewBuilder()
	b.EmitAt("start", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 0, LC: microcode.LCLoadRM, Flow: masm.Goto("start")})
	m := buildMachine(t, Config{}, b)
	rec := obs.NewRecorder(obs.Config{})
	m.SetRecorder(rec)
	if m.Recorder() != rec {
		t.Fatal("Recorder() did not return the attached recorder")
	}
	for m.Cycle() < 10 {
		m.Step()
	}
	m.SetRecorder(nil)
	rec.Flush(m.Cycle())
	before := len(rec.Spans())
	for m.Cycle() < 20 {
		m.Step()
	}
	if len(rec.Spans()) != before {
		t.Error("detached recorder still receiving events")
	}
}
