package core

import (
	"fmt"

	"dorado/internal/microcode"
)

// exec runs the instruction at (curTask, curPC) for one cycle, driven by
// its predecoded form d (from the predecode cache, or rebuilt on the fly by
// the reference interpreter). It returns held=true when the instruction
// could not proceed (§5.7: it becomes "no-op, jump to self": no state
// changes, nextPC = curPC, Block suppressed), blocked=true when the
// instruction released the processor, and the successor address otherwise.
func (m *Machine) exec(d *decoded, now uint64) (held, blocked bool, nextPC microcode.Addr) {
	ts := &m.tasks[m.curTask]
	ffop := d.ffop
	m.stats.TaskCycles[m.curTask]++

	// ---- Hold phase: detect every reason this instruction cannot proceed,
	// without changing any state (§5.7). ----
	if d.usesMD && !m.mdReady(now) {
		return m.hold(&m.stats.HoldMD)
	}
	if d.usesIFUData && !m.ifu.OperandReady() {
		return m.hold(&m.stats.HoldIFU)
	}
	if d.ifuJump && !m.ifu.DispatchReady(now) {
		return m.hold(&m.stats.HoldIFU)
	}
	rIndex := m.rbase<<4 | d.raddr
	useStack := d.block && m.curTask == 0 // "selects a stack operation for task 0" (§6.3.1)
	if d.startsMem {
		var disp uint16
		switch {
		case d.aSel == microcode.ASelFetchIFU || d.aSel == microcode.ASelStoreIFU:
			disp = m.ifu.PeekOperand() // readiness checked above
		case useStack:
			disp = m.stack[m.stackPtr]
		default:
			disp = m.rm[rIndex]
		}
		// An FF MemBase constant in the same instruction takes effect
		// before the reference (FF decodes at t0-t1, §5.5); the hold check
		// must use the same base the issue will.
		mb := m.membase
		if d.ffMemBase >= 0 {
			mb = uint8(d.ffMemBase)
		}
		va := m.mem.VA(mb, disp)
		ok := false
		if d.isStore {
			ok = m.mem.CanWrite(va, now)
		} else {
			ok = m.mem.CanRead(m.curTask, va, now)
		}
		if !ok {
			return m.hold(&m.stats.HoldMem)
		}
	}

	// ---- Operand fetch (first half-cycle, t0–t1 of Figure 2). ----

	// The RM-or-stack word: the stack modifier replaces RM for both the A
	// and B sides and turns RAddress into a signed STACKPTR delta (§6.3.3:
	// "If STACK is used in a microinstruction, it replaces any use of RM").
	var rmVal uint16
	var stNewPtr uint8
	if useStack {
		rmVal = m.stack[m.stackPtr]
		delta := int(d.stackDelta)
		word := int(m.stackPtr) & (StackWords - 1)
		nw := word + delta
		if nw < 0 || nw >= StackWords {
			ts.stackErr = true // underflow/overflow checking (§6.3.3)
		}
		stNewPtr = m.stackPtr&^uint8(StackWords-1) | uint8(nw&(StackWords-1))
	} else {
		rmVal = m.rm[rIndex]
	}

	var aVal uint16
	switch d.aSel {
	case microcode.ASelRM, microcode.ASelFetch, microcode.ASelStore:
		aVal = rmVal
	case microcode.ASelT:
		aVal = ts.t
	case microcode.ASelIFUData, microcode.ASelFetchIFU, microcode.ASelStoreIFU:
		aVal = m.ifu.Operand()
	case microcode.ASelMD:
		aVal = m.mem.MD(m.curTask, now)
	}

	var bVal uint16
	if d.isConstB {
		bVal = d.constB // the §5.9 constant scheme, resolved at predecode
	} else {
		switch d.bSel {
		case microcode.BSelRM:
			bVal = rmVal
		case microcode.BSelT:
			bVal = ts.t
		case microcode.BSelQ:
			bVal = m.q
		case microcode.BSelMD:
			bVal = m.mem.MD(m.curTask, now)
		}
	}
	if ffop == microcode.FFInput {
		// IODATA drives the B bus (§6.3.2: the bus "can serve as a source
		// as well"), so one instruction can move a device word through the
		// ALU *and* into memory — the 3-cycles-per-2-words disk idiom (§7).
		if dev := m.byAddr[ts.ioadr&15]; dev != nil {
			bVal = dev.Input(now)
		} else {
			bVal = 0
		}
	}

	// Model-0 missing bypass (§5.6): the previous instruction's register
	// write lands only now, after this instruction read its operands.
	if m.cfg.Options.NoBypass {
		m.flushPending()
	}

	// ---- ALU (second half-cycle through cycle 3 first half). ----
	ctl := m.alufm[d.aluOp]
	res, carry, ovf := aluOp(ctl, aVal, bVal, ts.savedCarry)
	ts.zero = res == 0
	ts.neg = res&0x8000 != 0
	ts.carry = carry
	ts.ovf = ovf
	if ctl.Fn.IsArith() {
		ts.savedCarry = carry
	}

	// ---- FF function (decoded at t0–t1, §5.5). May drive RESULT. ----
	result := res
	if ffop != microcode.FFNop && ffop != microcode.FFInput {
		result = m.execFF(ffop, d, aVal, rmVal, bVal, res, now)
	}

	// ---- Memory reference issue (MEMADDRESS is a copy of A, §6.3.2).
	// execFF has already applied any same-instruction MEMBASE change. ----
	if d.startsMem {
		va := m.mem.VA(m.membase, aVal)
		if !d.isStore {
			if !m.mem.StartRead(m.curTask, va, now) {
				panic("core: StartRead refused after CanRead")
			}
		} else {
			// The stored word is the B bus — which FFInput may be driving
			// from IODATA (§5.8: memory reference + I/O transfer in one
			// instruction).
			if !m.mem.StartWrite(m.curTask, va, bVal, now) {
				panic("core: StartWrite refused after CanWrite")
			}
		}
	}

	// ---- Result stores (second half of cycle 3, t3–t4). ----
	wIndex := rIndex
	if d.ffRMDest >= 0 {
		// "loading a different register can be specified by FF" (§6.3.3).
		wIndex = m.rbase<<4 | uint8(d.ffRMDest)
	}
	if d.loadsT || d.loadsRM {
		m.storeResult(d, ts, wIndex, stNewPtr, useStack, result)
	}
	if useStack {
		m.stackPtr = stNewPtr
	}

	// ---- NEXTPC (§6.2.2). ----
	nextPC = m.nextAddr(d, ts, bVal, now)
	if d.op.Kind == microcode.NextBranch && m.cfg.Options.DelayedBranch {
		m.stalls = 1 // the conventional-design ablation: +1 cycle per branch
	}

	m.stats.Executed++
	m.stats.TaskExecuted[m.curTask]++
	// For task 0 the Block bit is the stack modifier, not a release: the
	// emulator never blocks (§5.1: task 0 requests service at all times).
	blocked = d.block && m.curTask != 0
	return false, blocked, nextPC
}

// hold accounts one held cycle.
func (m *Machine) hold(counter *uint64) (bool, bool, microcode.Addr) {
	*counter++
	m.stats.Holds++
	return true, false, m.curPC
}

// mdReady consults the memory, honoring the fixed-wait ablation (§5.7).
func (m *Machine) mdReady(now uint64) bool {
	if m.cfg.Options.FixedWaitMemory {
		return m.mem.MDReadyFixed(m.curTask, now)
	}
	return m.mem.MDReady(m.curTask, now)
}

// storeResult routes RESULT to RM/stack and/or T, immediately (bypassed) or
// delayed one instruction (the NoBypass ablation).
func (m *Machine) storeResult(d *decoded, ts *taskState, rIndex, stNewPtr uint8, useStack bool, result uint16) {
	if !m.cfg.Options.NoBypass {
		if d.loadsT {
			ts.t = result
		}
		if d.loadsRM {
			if useStack {
				m.stack[stNewPtr] = result
			} else {
				m.rm[rIndex] = result
			}
		}
		return
	}
	p := pendingWrite{valid: true, val: result}
	if d.loadsT {
		p.toT = true
		p.task = m.curTask
	}
	if d.loadsRM {
		if useStack {
			p.toStack = true
			p.stIndex = stNewPtr
		} else {
			p.toRM = true
			p.rmIndex = rIndex
		}
	}
	m.flushPending() // at most one write can be in flight
	m.pend = p
}

// flushPending lands the delayed register write of the NoBypass ablation.
func (m *Machine) flushPending() {
	if !m.pend.valid {
		return
	}
	if m.pend.toT {
		m.tasks[m.pend.task].t = m.pend.val
	}
	if m.pend.toRM {
		m.rm[m.pend.rmIndex] = m.pend.val
	}
	if m.pend.toStack {
		m.stack[m.pend.stIndex] = m.pend.val
	}
	m.pend = pendingWrite{}
}

// nextAddr computes NEXTPC from the predecoded NextControl (§6.2.2,
// Figure 7).
func (m *Machine) nextAddr(d *decoded, ts *taskState, bVal uint16, now uint64) microcode.Addr {
	op := d.op
	page := m.curPC &^ microcode.Addr(microcode.WordMask)
	switch op.Kind {
	case microcode.NextGoto:
		return page | microcode.Addr(op.W)
	case microcode.NextCall:
		ts.link = (m.curPC + 1) & microcode.AddrMask
		return page | microcode.Addr(op.W)
	case microcode.NextBranch:
		t := page | microcode.Addr(op.W)
		if m.evalCond(op.Cond, ts, now) {
			t |= 1 // ORed into the low bit of NEXTPC (§5.5)
		}
		return t
	case microcode.NextLongGoto:
		return microcode.MakeAddr(d.ff, op.W)
	case microcode.NextLongCall:
		ts.link = (m.curPC + 1) & microcode.AddrMask
		return microcode.MakeAddr(d.ff, op.W)
	case microcode.NextReturn:
		return ts.link
	case microcode.NextIFUJump:
		a := m.ifu.Dispatch(now)
		if e := m.ifu.LastEntry(); e.LoadMemBase {
			// §6.3.3: MEMBASE loaded from the IFU at the start of a
			// macroinstruction.
			m.membase = e.MemBase & 0x1F
		}
		return a
	case microcode.NextDispatch8:
		return page | microcode.Addr(d.ff&0x8) | microcode.Addr(bVal&7)
	case microcode.NextDispatch256:
		return microcode.Addr(d.ff&0xF)<<8 | microcode.Addr(bVal&0xFF)
	}
	panic(fmt.Sprintf("core: reserved NextControl %#02x at %v", d.next, m.curPC))
}

// evalCond evaluates one of the eight branch conditions (§5.5). Conditions
// derive from the *current* instruction's ALU outputs — the Dorado computes
// and uses a branch condition in the same microinstruction, with the
// late-arriving bit folded into the microstore chip select so it costs no
// cycle (§5.5).
func (m *Machine) evalCond(c microcode.Condition, ts *taskState, now uint64) bool {
	switch c {
	case microcode.CondALUZero:
		return ts.zero
	case microcode.CondALUNeg:
		return ts.neg
	case microcode.CondCarry:
		return ts.carry
	case microcode.CondCountNZ:
		// "decremented and tested for zero in one microinstruction" (§6.3.3):
		// taken while COUNT≠0, decrementing as a side effect.
		if m.count != 0 {
			m.count--
			return true
		}
		return false
	case microcode.CondOverflow:
		return ts.ovf
	case microcode.CondStackError:
		v := ts.stackErr
		ts.stackErr = false
		return v
	case microcode.CondIOAtten:
		if d := m.byAddr[ts.ioadr&15]; d != nil {
			return d.Atten()
		}
		return false
	case microcode.CondMB:
		return ts.mb
	}
	return false
}
