package core

import (
	"bytes"
	"testing"

	"dorado/internal/device"
	"dorado/internal/masm"
	"dorado/internal/microcode"
)

// snapMachine builds a machine exercising every snapshotted component: the
// data section, memory traffic, two live devices, and a running IFU.
func snapMachine(t *testing.T, cfg Config) *Machine {
	t.Helper()
	bl := masm.NewBuilder()
	bl.EmitAt("emu", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 0,
		LC: microcode.LCLoadRM})
	bl.Emit(masm.I{FF: microcode.FFMemBaseBase + 2, A: microcode.ASelFetch, R: 0})
	bl.Emit(masm.I{ALU: microcode.ALUAplusB, A: microcode.ASelMD, B: microcode.BSelT,
		LC: microcode.LCLoadT})
	bl.Emit(masm.I{A: microcode.ASelStore, R: 0, B: microcode.BSelT, Flow: masm.Goto("emu")})
	bl.EmitAt("svc", masm.I{FF: microcode.FFInput, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	bl.Emit(masm.I{A: microcode.ASelStore, R: 1, B: microcode.BSelT,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM, Block: true, Flow: masm.Goto("svc")})
	p := mustProgram(t, bl)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Load(&p.Words)
	m.Mem().SetBase(2, 0x6000)
	m.SetRM(0, 0x40)
	m.SetRM(1, 0x6100)
	if err := m.Attach(device.NewWordSource(11, 27, 2)); err != nil {
		t.Fatal(err)
	}
	m.SetIOAddress(11, 11)
	m.SetTPC(11, p.MustEntry("svc"))
	lb := device.NewLoopback(9)
	lb.Arm(true)
	if err := m.Attach(lb); err != nil {
		t.Fatal(err)
	}
	m.SetIOAddress(9, 9)
	m.SetTPC(9, p.MustEntry("svc"))
	m.Start(p.MustEntry("emu"))
	return m
}

// TestSnapshotRoundTrip is the byte-identity property: restoring a snapshot
// into a fresh machine and snapshotting again reproduces the exact bytes.
func TestSnapshotRoundTrip(t *testing.T) {
	for _, ref := range []bool{false, true} {
		m := snapMachine(t, Config{Reference: ref})
		m.RunCycles(5000)
		snap := m.Snapshot()

		fresh := snapMachine(t, Config{Reference: ref})
		if err := fresh.Restore(snap); err != nil {
			t.Fatalf("reference=%v: restore: %v", ref, err)
		}
		again := fresh.Snapshot()
		if !bytes.Equal(snap, again) {
			t.Fatalf("reference=%v: Snapshot→Restore→Snapshot is not byte-identical (%d vs %d bytes)",
				ref, len(snap), len(again))
		}
		// And snapshotting the same machine twice must be deterministic.
		if !bytes.Equal(snap, m.Snapshot()) {
			t.Fatalf("reference=%v: back-to-back snapshots differ", ref)
		}
	}
}

// TestSnapshotSplitRun is the checkpoint property at the core level: running
// N cycles straight through equals running k, snapshotting, restoring into a
// fresh machine, and running N−k — for several k, on both interpreter paths.
func TestSnapshotSplitRun(t *testing.T) {
	const total = 8000
	for _, ref := range []bool{false, true} {
		straight := snapMachine(t, Config{Reference: ref})
		straight.RunCycles(total)
		want := straight.Snapshot()

		for _, k := range []uint64{1, 137, 4000, 7999} {
			first := snapMachine(t, Config{Reference: ref})
			first.RunCycles(k)
			mid := first.Snapshot()

			second := snapMachine(t, Config{Reference: ref})
			if err := second.Restore(mid); err != nil {
				t.Fatalf("reference=%v k=%d: restore: %v", ref, k, err)
			}
			second.RunCycles(total - k)
			if got := second.Snapshot(); !bytes.Equal(got, want) {
				t.Errorf("reference=%v: split at k=%d diverges from straight run", ref, k)
			}
		}
	}
}

// TestSnapshotCrossPath proves a snapshot taken on one interpreter path
// restores onto the other and continues identically: the snapshot holds
// machine state, not interpreter choice.
func TestSnapshotCrossPath(t *testing.T) {
	const k, rest = 3000, 3000

	fast := snapMachine(t, Config{})
	fast.RunCycles(k)
	mid := fast.Snapshot()
	fast.RunCycles(rest)

	ref := snapMachine(t, Config{Reference: true})
	if err := ref.Restore(mid); err != nil {
		t.Fatalf("restore fast snapshot onto reference path: %v", err)
	}
	ref.RunCycles(rest)

	if !bytes.Equal(fast.Snapshot(), ref.Snapshot()) {
		t.Fatal("fast→reference restore diverged from the fast run")
	}
}

// TestRestoreInvalidatesPredecode is the restore analogue of the SetIM rule:
// a machine whose microstore differs from the snapshot must, after Restore,
// execute the *snapshot's* program on the predecoded path — i.e. the dim
// cache was rebuilt, not left stale.
func TestRestoreInvalidatesPredecode(t *testing.T) {
	src := snapMachine(t, Config{})
	src.RunCycles(1000)
	snap := src.Snapshot()
	src.RunCycles(1000)

	dst := snapMachine(t, Config{})
	// Poison every microstore word (and therefore every predecode entry)
	// with halt-in-place before restoring.
	for a := 0; a < microcode.StoreSize; a++ {
		dst.SetIM(microcode.Addr(a), microcode.Word{FF: microcode.FFHalt})
	}
	if err := dst.Restore(snap); err != nil {
		t.Fatal(err)
	}
	dst.RunCycles(1000)
	if dst.Halted() {
		t.Fatal("restored machine executed the poisoned predecode cache")
	}
	if !bytes.Equal(dst.Snapshot(), src.Snapshot()) {
		t.Fatal("restored machine diverged from the source")
	}
}

// TestRestoreRejectsMismatch: a snapshot must not restore onto a machine
// with different ablation options or a different device set.
func TestRestoreRejectsMismatch(t *testing.T) {
	src := snapMachine(t, Config{})
	src.RunCycles(100)
	snap := src.Snapshot()

	wrongOpts := snapMachine(t, Config{Options: Options{DelayedBranch: true}})
	if err := wrongOpts.Restore(snap); err == nil {
		t.Error("restore accepted mismatched ablation options")
	}

	bare, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bare.Restore(snap); err == nil {
		t.Error("restore accepted a machine with no devices attached")
	}

	if err := src.Restore(nil); err == nil {
		t.Error("restore accepted an empty document")
	}
	if err := src.Restore(snap[:len(snap)-3]); err == nil {
		t.Error("restore accepted a truncated document")
	}
}
