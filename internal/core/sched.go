package core

import "math/bits"

// Step advances the machine one 60 ns cycle, reproducing the task pipeline
// of §6.2.1:
//
//	cycle c:   device wakeup lines latch into WAKEUP at t0
//	           (arbitration during c produces BESTNEXTTASK)
//	cycle c+1: NEXT = max(BESTNEXTTASK, THISTASK), or BESTNEXTTASK on Block;
//	           devices see their number on NEXT and may drop the wakeup;
//	           the winner's microinstruction is fetched via its TPC
//	cycle c+2: the instruction executes
//
// which yields the paper's two-cycle wakeup-to-run latency and two-cycle
// minimum allocation grain: a wakeup dropped when NEXT shows the task
// number is latched too late to stop the *next* arbitration, so the task
// always runs at least two instructions.
func (m *Machine) Step() {
	if m.halted {
		return
	}
	m.step(m.tracer != nil)
}

// Run executes until Halt or maxCycles, returning true if halted. This is
// the batched hot loop: the halted check lives in the loop condition and
// the tracer nil-check is hoisted out of the per-cycle path.
func (m *Machine) Run(maxCycles uint64) bool {
	limit := m.cycle + maxCycles
	if m.tracer != nil {
		// A tracer wants one event per cycle, which only the generic loop
		// emits — translation (if configured) idles while it is attached.
		for !m.halted && m.cycle < limit {
			m.step(true)
		}
		return m.halted
	}
	if m.trans != nil {
		m.runTranslated(limit)
		return m.halted
	}
	for !m.halted && m.cycle < limit {
		m.step(false)
	}
	return m.halted
}

// RunCycles advances the machine n cycles (or until Halt) and returns the
// number of cycles actually simulated — the building block cmd/simbench
// times for host-throughput measurement.
func (m *Machine) RunCycles(n uint64) uint64 {
	start := m.cycle
	m.Run(n)
	return m.cycle - start
}

// step is one cycle of the pipeline; traced is the hoisted tracer check.
func (m *Machine) step(traced bool) {
	now := m.cycle

	// Device and IFU hardware advance first: lines raised during this
	// cycle are visible to this cycle's WAKEUP latch. The fast path walks
	// the compact attached-device list; the reference interpreter scans all
	// 16 task slots as the seed simulator did (same devices, same order).
	//
	// WAKEUP latch (t0): device lines, READY flipflops, and task 0, which
	// "requests service from the processor at all times" (§5.1). Latched
	// *before* NotifyNext below, so a wakeup dropped because of this
	// cycle's NEXT first disappears from the next latch — the 2-cycle grain.
	lines := uint16(1) | m.ready
	if m.cfg.Reference {
		for _, d := range m.devs {
			if d != nil {
				d.Tick(now)
			}
		}
		m.ifu.Tick(now)
		for t := 1; t < NumTasks; t++ {
			if m.devs[t] != nil && m.devs[t].Wakeup() {
				lines |= 1 << t
			}
		}
	} else {
		for i := range m.att {
			m.att[i].dev.Tick(now)
		}
		m.ifu.Tick(now)
		for i := range m.att {
			if m.att[i].dev.Wakeup() {
				lines |= m.att[i].bit
			}
		}
	}

	// Execute this cycle's instruction (or burn a DelayedBranch dead cycle).
	execTask := m.curTask
	execPC := m.curPC
	var held, blocked, didExec bool
	var nextPC = m.curPC
	if m.stalls > 0 {
		m.stalls--
		m.stats.BranchStalls++
		m.stats.TaskCycles[m.curTask]++
	} else if m.cfg.Reference {
		// Reference interpreter: decode the packed word from scratch every
		// cycle (the seed behavior; the host-performance baseline).
		d := decodeWord(m.im[m.curPC])
		held, blocked, nextPC = m.exec(&d, now)
		didExec = true
	} else {
		held, blocked, nextPC = m.exec(&m.dim[m.curPC], now)
		didExec = true
	}
	if traced {
		m.tracer.Trace(TraceEvent{
			Cycle: now, Task: m.curTask, PC: m.curPC, Held: held, Word: m.im[m.curPC],
		})
	}

	// NEXT computation: the running task keeps the processor until it
	// blocks, unless a higher-priority task preempts (§6.2.1: "NEXT
	// normally gets the larger of BESTNEXTTASK and THISTASK").
	next := m.bestNext
	if !blocked && m.curTask > next {
		next = m.curTask
	}

	if next != m.curTask {
		// The departing task's state is captured entirely by its TPC; that
		// is the zero-overhead context switch of §5.3.
		m.tasks[m.curTask].tpc = nextPC
		if blocked {
			m.ready &^= 1 << m.curTask
			m.stats.Blocks++
		} else {
			// Preempted: remember to resume it (§6.2.1 READY flipflops).
			m.ready |= 1 << m.curTask
			m.stats.Preemptions++
		}
		m.stats.TaskSwitches++
		m.lastTask = m.curTask
		m.curTask = next
		m.curPC = m.tasks[next].tpc
	} else {
		if blocked {
			// Block with no other requester (or wakeup still latched):
			// the task continues — the §6.2.1 "otherwise it will continue
			// to run" case.
			m.stats.Blocks++
			m.ready &^= 1 << m.curTask
		}
		m.curPC = nextPC
	}
	// Service granted: clear the READY flipflop and let the device see its
	// number on the NEXT bus (§6.2.1) — unless the machine is built with
	// explicit notification (the grain-3 ablation).
	m.ready &^= 1 << next
	if !m.cfg.Options.ExplicitNotify && m.devs[next] != nil {
		m.devs[next].NotifyNext(now)
	}

	// Arbitration: priority-encode this cycle's latch into BESTNEXTTASK
	// for use in the next cycle's NEXT computation.
	m.bestNext = 15 - bits.LeadingZeros16(lines)

	// Observability hook: one predicted-not-taken branch when detached.
	// When a recorder is on, the inlined NeedsCycle guard keeps event-free
	// cycles to a few compares; only cycles with wakeup edges, holds, task
	// switches, or a due timeline sample pay the Cycle call.
	if r := m.rec; r != nil && r.NeedsCycle(now, execTask, held, lines) {
		r.Cycle(now, execTask, held, lines, &m.stats.TaskCycles)
	}
	// Profiler hook: same shape as the recorder's — one predicted-not-taken
	// branch when detached, three array increments when attached.
	if p := m.prof; p != nil {
		p.cycle(execPC, held, didExec && !held)
	}
	m.cycle++
}
