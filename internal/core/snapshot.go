package core

import (
	"fmt"

	"dorado/internal/microcode"
	"dorado/internal/state"
)

// Snapshot sections owned by the processor. The memory system, IFU, and
// devices append their own sections after these.
const (
	sectCoreConfig = "CONF"
	sectCoreCtrl   = "CTRL"
	sectCoreData   = "DATA"
	sectCoreStats  = "STAT"
	sectCoreStore  = "UIMS"
	sectCoreDevs   = "DEVS"
)

// Snapshot captures the complete machine state — control section, data
// section, microstore, counters, memory system, IFU, and every attached
// device — as one versioned binary document (see internal/state).
//
// Config.Reference is deliberately NOT part of the snapshot: it selects an
// interpreter implementation, not machine state, so a snapshot taken on one
// interpreter path restores onto the other. Two machines in identical
// architectural states produce byte-identical snapshots regardless of path,
// which is the equality oracle the differential fuzzer is built on.
func (m *Machine) Snapshot() []byte {
	e := state.NewEncoder()

	e.Section(sectCoreConfig)
	var opt uint8
	if m.cfg.Options.NoBypass {
		opt |= 1 << 0
	}
	if m.cfg.Options.DelayedBranch {
		opt |= 1 << 1
	}
	if m.cfg.Options.ExplicitNotify {
		opt |= 1 << 2
	}
	if m.cfg.Options.FixedWaitMemory {
		opt |= 1 << 3
	}
	e.U8(opt)
	e.U8(uint8(m.cfg.FaultTask))

	e.Section(sectCoreCtrl)
	e.U64(m.cycle)
	e.Bool(m.halted)
	e.U16(uint16(m.haltPC))
	e.U64(m.stalls)
	e.U8(uint8(m.curTask))
	e.U8(uint8(m.lastTask))
	e.U16(uint16(m.curPC))
	e.I8(int8(m.bestNext))
	e.U16(m.ready)
	for i := range m.tasks {
		ts := &m.tasks[i]
		e.U16(uint16(ts.tpc))
		e.U16(uint16(ts.link))
		e.U16(ts.t)
		e.U16(ts.ioadr)
		var fl uint8
		if ts.zero {
			fl |= 1 << 0
		}
		if ts.neg {
			fl |= 1 << 1
		}
		if ts.carry {
			fl |= 1 << 2
		}
		if ts.ovf {
			fl |= 1 << 3
		}
		if ts.savedCarry {
			fl |= 1 << 4
		}
		if ts.mb {
			fl |= 1 << 5
		}
		if ts.stackErr {
			fl |= 1 << 6
		}
		e.U8(fl)
	}

	e.Section(sectCoreData)
	e.U16s(m.rm[:])
	e.U16s(m.stack[:])
	e.U8(m.stackPtr)
	e.U16(m.count)
	e.U16(m.q)
	e.U8(m.rbase)
	e.U8(m.membase)
	e.U16(m.shiftCtl)
	for _, c := range m.alufm {
		e.U8(microcode.EncodeALUCtl(c))
	}
	e.U16(m.cpreg)
	e.Bool(m.pend.valid)
	e.Bool(m.pend.toT)
	e.U8(uint8(m.pend.task))
	e.Bool(m.pend.toRM)
	e.U8(m.pend.rmIndex)
	e.Bool(m.pend.toStack)
	e.U8(m.pend.stIndex)
	e.U16(m.pend.val)

	e.Section(sectCoreStats)
	e.U64(m.stats.Cycles)
	e.U64(m.stats.Executed)
	e.U64(m.stats.Holds)
	e.U64(m.stats.HoldMD)
	e.U64(m.stats.HoldMem)
	e.U64(m.stats.HoldIFU)
	e.U64(m.stats.TaskSwitches)
	e.U64(m.stats.Blocks)
	e.U64(m.stats.Preemptions)
	e.U64(m.stats.BranchStalls)
	for _, c := range m.stats.TaskCycles {
		e.U64(c)
	}
	for _, c := range m.stats.TaskExecuted {
		e.U64(c)
	}

	e.Section(sectCoreStore)
	for i := range m.im {
		e.U64(m.im[i].Encode())
	}

	m.mem.SaveState(e)
	m.ifu.SaveState(e)

	e.Section(sectCoreDevs)
	e.U8(uint8(len(m.att)))
	for _, ad := range m.att {
		e.U8(uint8(ad.task))
		ad.dev.SaveState(e)
	}

	return e.Bytes()
}

// Restore replaces the machine's state with a snapshot taken by Snapshot.
// The target must be configured like the source: same ablation options,
// fault task, memory geometry and timing, IFU timing, and the same device
// set attached to the same tasks (device configuration lives in Go
// constructors, only device *state* is in the snapshot).
//
// Restoring rebuilds the predecode cache from the restored microstore: the
// dim cache is derived state, never serialized, so the restored machine
// executes identically on both interpreter paths.
func (m *Machine) Restore(data []byte) error {
	d, err := state.NewDecoder(data)
	if err != nil {
		return err
	}

	if err := d.Section(sectCoreConfig); err != nil {
		return err
	}
	opt := d.U8()
	faultTask := d.U8()
	if err := d.Err(); err != nil {
		return err
	}
	want := Options{
		NoBypass:        opt&(1<<0) != 0,
		DelayedBranch:   opt&(1<<1) != 0,
		ExplicitNotify:  opt&(1<<2) != 0,
		FixedWaitMemory: opt&(1<<3) != 0,
	}
	if want != m.cfg.Options {
		return fmt.Errorf("core: snapshot options %+v, machine options %+v", want, m.cfg.Options)
	}
	if int(faultTask) != m.cfg.FaultTask {
		return fmt.Errorf("core: snapshot fault task %d, machine fault task %d", faultTask, m.cfg.FaultTask)
	}

	if err := d.Section(sectCoreCtrl); err != nil {
		return err
	}
	m.cycle = d.U64()
	m.halted = d.Bool()
	m.haltPC = microcode.Addr(d.U16())
	m.stalls = d.U64()
	m.curTask = int(d.U8())
	m.lastTask = int(d.U8())
	m.curPC = microcode.Addr(d.U16())
	m.bestNext = int(d.I8())
	m.ready = d.U16()
	for i := range m.tasks {
		ts := &m.tasks[i]
		ts.tpc = microcode.Addr(d.U16())
		ts.link = microcode.Addr(d.U16())
		ts.t = d.U16()
		ts.ioadr = d.U16()
		fl := d.U8()
		ts.zero = fl&(1<<0) != 0
		ts.neg = fl&(1<<1) != 0
		ts.carry = fl&(1<<2) != 0
		ts.ovf = fl&(1<<3) != 0
		ts.savedCarry = fl&(1<<4) != 0
		ts.mb = fl&(1<<5) != 0
		ts.stackErr = fl&(1<<6) != 0
	}

	if err := d.Section(sectCoreData); err != nil {
		return err
	}
	d.U16s(m.rm[:])
	d.U16s(m.stack[:])
	m.stackPtr = d.U8()
	m.count = d.U16()
	m.q = d.U16()
	m.rbase = d.U8()
	m.membase = d.U8()
	m.shiftCtl = d.U16()
	for i := range m.alufm {
		m.alufm[i] = microcode.DecodeALUCtl(d.U8())
	}
	m.cpreg = d.U16()
	m.pend.valid = d.Bool()
	m.pend.toT = d.Bool()
	m.pend.task = int(d.U8())
	m.pend.toRM = d.Bool()
	m.pend.rmIndex = d.U8()
	m.pend.toStack = d.Bool()
	m.pend.stIndex = d.U8()
	m.pend.val = d.U16()

	if err := d.Section(sectCoreStats); err != nil {
		return err
	}
	m.stats.Cycles = d.U64()
	m.stats.Executed = d.U64()
	m.stats.Holds = d.U64()
	m.stats.HoldMD = d.U64()
	m.stats.HoldMem = d.U64()
	m.stats.HoldIFU = d.U64()
	m.stats.TaskSwitches = d.U64()
	m.stats.Blocks = d.U64()
	m.stats.Preemptions = d.U64()
	m.stats.BranchStalls = d.U64()
	for i := range m.stats.TaskCycles {
		m.stats.TaskCycles[i] = d.U64()
	}
	for i := range m.stats.TaskExecuted {
		m.stats.TaskExecuted[i] = d.U64()
	}

	if err := d.Section(sectCoreStore); err != nil {
		return err
	}
	for i := range m.im {
		m.im[i] = microcode.Decode(d.U64())
	}
	if err := d.Err(); err != nil {
		return err
	}
	// The restore-invalidates-predecode rule: dim is derived from im and is
	// never serialized, so it must be rebuilt here, exactly as Load does.
	// Superblock caches are derived state too: flushing them guarantees a
	// snapshot taken mid-block rehydrates onto the generic cycle loop and
	// re-translates from fresh profiles — restore is deterministic whether
	// or not the snapshotting machine had translation on.
	m.predecodeAll()
	m.trans.reset()

	if err := m.mem.LoadState(d); err != nil {
		return err
	}
	if err := m.ifu.LoadState(d); err != nil {
		return err
	}

	if err := d.Section(sectCoreDevs); err != nil {
		return err
	}
	n := int(d.U8())
	if n != len(m.att) {
		return fmt.Errorf("core: snapshot has %d devices, machine has %d attached", n, len(m.att))
	}
	for i := 0; i < n; i++ {
		task := int(d.U8())
		if err := d.Err(); err != nil {
			return err
		}
		if i >= len(m.att) || m.att[i].task != task {
			return fmt.Errorf("core: snapshot device #%d is on task %d, machine differs", i, task)
		}
		m.att[i].dev.LoadState(d)
	}

	return d.Finish()
}
