package core

import (
	"testing"
	"testing/quick"

	"dorado/internal/microcode"
)

func ctl(fn microcode.ALUFn) microcode.ALUCtl { return microcode.ALUCtl{Fn: fn} }

func TestALUArithmetic(t *testing.T) {
	cases := []struct {
		fn    microcode.ALUFn
		a, b  uint16
		want  uint16
		carry bool
	}{
		{microcode.ALUAplusB, 2, 3, 5, false},
		{microcode.ALUAplusB, 0xFFFF, 1, 0, true},
		{microcode.ALUAminusB, 5, 3, 2, true},       // no borrow → carry out
		{microcode.ALUAminusB, 3, 5, 0xFFFE, false}, // borrow
		{microcode.ALUBminusA, 3, 5, 2, true},
		{microcode.ALUAplus1, 0xFFFF, 0, 0, true},
		{microcode.ALUAminus1, 0, 0, 0xFFFF, false},
	}
	for _, c := range cases {
		got, carry, _ := aluOp(ctl(c.fn), c.a, c.b, false)
		if got != c.want || carry != c.carry {
			t.Errorf("%v(%#x,%#x) = %#x,carry=%v; want %#x,%v",
				c.fn, c.a, c.b, got, carry, c.want, c.carry)
		}
	}
}

func TestALULogic(t *testing.T) {
	a, b := uint16(0xF0F0), uint16(0xFF00)
	cases := map[microcode.ALUFn]uint16{
		microcode.ALUA:        a,
		microcode.ALUB:        b,
		microcode.ALUNotA:     ^a,
		microcode.ALUNotB:     ^b,
		microcode.ALUAandB:    a & b,
		microcode.ALUAorB:     a | b,
		microcode.ALUAxorB:    a ^ b,
		microcode.ALUAandNotB: a &^ b,
		microcode.ALUAorNotB:  a | ^b,
		microcode.ALUXnor:     ^(a ^ b),
		microcode.ALUZero:     0,
	}
	for fn, want := range cases {
		got, carry, ovf := aluOp(ctl(fn), a, b, false)
		if got != want || carry || ovf {
			t.Errorf("%v = %#x (carry=%v ovf=%v), want %#x", fn, got, carry, ovf, want)
		}
	}
}

func TestALUAddMatchesIntegers(t *testing.T) {
	f := func(a, b uint16) bool {
		got, carry, _ := aluOp(ctl(microcode.ALUAplusB), a, b, false)
		sum := uint32(a) + uint32(b)
		return got == uint16(sum) && carry == (sum > 0xFFFF)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestALUSubMatchesIntegers(t *testing.T) {
	f := func(a, b uint16) bool {
		got, carry, _ := aluOp(ctl(microcode.ALUAminusB), a, b, false)
		return got == a-b && carry == (a >= b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestALUSignedOverflow(t *testing.T) {
	// 0x7FFF + 1 overflows signed.
	_, _, ovf := aluOp(ctl(microcode.ALUAplusB), 0x7FFF, 1, false)
	if !ovf {
		t.Error("0x7fff+1 should overflow")
	}
	_, _, ovf = aluOp(ctl(microcode.ALUAplusB), 1, 1, false)
	if ovf {
		t.Error("1+1 should not overflow")
	}
	// 0x8000 - 1 overflows signed.
	_, _, ovf = aluOp(ctl(microcode.ALUAminusB), 0x8000, 1, false)
	if !ovf {
		t.Error("-32768 - 1 should overflow")
	}
}

func TestALUCarryControls(t *testing.T) {
	// CarryOne forces A+B+1.
	got, _, _ := aluOp(microcode.ALUCtl{Fn: microcode.ALUAplusB, Cin: microcode.CarryOne}, 2, 3, false)
	if got != 6 {
		t.Errorf("A+B+1 = %d", got)
	}
	// CarryZero turns A-B into A+^B (one less).
	got, _, _ = aluOp(microcode.ALUCtl{Fn: microcode.ALUAminusB, Cin: microcode.CarryZero}, 5, 3, false)
	if got != 1 {
		t.Errorf("A-B-1 = %d", got)
	}
	// CarrySaved chains multi-precision adds.
	got, _, _ = aluOp(microcode.ALUCtl{Fn: microcode.ALUAplusB, Cin: microcode.CarrySaved}, 2, 3, true)
	if got != 6 {
		t.Errorf("A+B+saved = %d", got)
	}
	got, _, _ = aluOp(microcode.ALUCtl{Fn: microcode.ALUAplusB, Cin: microcode.CarrySaved}, 2, 3, false)
	if got != 5 {
		t.Errorf("A+B+0saved = %d", got)
	}
}

func TestMulStepSequence(t *testing.T) {
	// 16 MulSteps compute a full 16×16→32 unsigned multiply.
	check := func(x, y uint16) {
		m := &Machine{}
		m.q = y // multiplier
		acc := uint16(0)
		for i := 0; i < 16; i++ {
			acc = m.mulStep(acc, x)
		}
		got := uint32(acc)<<16 | uint32(m.q)
		want := uint32(x) * uint32(y)
		if got != want {
			t.Errorf("%d × %d = %#08x, want %#08x", x, y, got, want)
		}
	}
	check(3, 5)
	check(0xFFFF, 0xFFFF)
	check(12345, 54321)
	check(0, 999)
	check(0x8000, 2)
}

func TestMulStepProperty(t *testing.T) {
	f := func(x, y uint16) bool {
		m := &Machine{}
		m.q = y
		acc := uint16(0)
		for i := 0; i < 16; i++ {
			acc = m.mulStep(acc, x)
		}
		return uint32(acc)<<16|uint32(m.q) == uint32(x)*uint32(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestDivStepSequence(t *testing.T) {
	check := func(dividend uint32, divisor uint16) {
		if divisor == 0 || dividend/uint32(divisor) > 0xFFFF {
			return
		}
		m := &Machine{}
		m.q = uint16(dividend)
		rem := uint16(dividend >> 16)
		for i := 0; i < 16; i++ {
			rem = m.divStep(rem, divisor)
		}
		if uint32(m.q) != dividend/uint32(divisor) || uint32(rem) != dividend%uint32(divisor) {
			t.Errorf("%d / %d = q%d r%d, want q%d r%d",
				dividend, divisor, m.q, rem, dividend/uint32(divisor), dividend%uint32(divisor))
		}
	}
	check(100, 7)
	check(0xFFFFFFF, 0x7FFF)
	check(65536, 2)
	check(1, 1)
	check(0, 5)
}

func TestDivStepProperty(t *testing.T) {
	f := func(dividend uint32, divisor uint16) bool {
		if divisor == 0 || dividend/uint32(divisor) > 0xFFFF {
			return true
		}
		m := &Machine{}
		m.q = uint16(dividend)
		rem := uint16(dividend >> 16)
		for i := 0; i < 16; i++ {
			rem = m.divStep(rem, divisor)
		}
		return uint32(m.q) == dividend/uint32(divisor) && uint32(rem) == dividend%uint32(divisor)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
