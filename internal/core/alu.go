package core

import "dorado/internal/microcode"

// aluOp evaluates one ALU operation as configured by an ALUFM word
// (§6.3.3). For arithmetic functions the carry-in comes from the ALUFM
// carry control; carry-out and signed overflow are reported for the branch
// conditions.
func aluOp(ctl microcode.ALUCtl, a, b uint16, savedCarry bool) (res uint16, carry, ovf bool) {
	var x, y uint16
	var cin0 uint32
	switch ctl.Fn {
	case microcode.ALUAplusB:
		x, y, cin0 = a, b, 0
	case microcode.ALUAminusB:
		x, y, cin0 = a, ^b, 1
	case microcode.ALUBminusA:
		x, y, cin0 = b, ^a, 1
	case microcode.ALUAplus1:
		x, y, cin0 = a, 0, 1
	case microcode.ALUAminus1:
		x, y, cin0 = a, 0xFFFF, 0
	case microcode.ALUA:
		return a, false, false
	case microcode.ALUB:
		return b, false, false
	case microcode.ALUNotA:
		return ^a, false, false
	case microcode.ALUNotB:
		return ^b, false, false
	case microcode.ALUAandB:
		return a & b, false, false
	case microcode.ALUAorB:
		return a | b, false, false
	case microcode.ALUAxorB:
		return a ^ b, false, false
	case microcode.ALUAandNotB:
		return a &^ b, false, false
	case microcode.ALUAorNotB:
		return a | ^b, false, false
	case microcode.ALUXnor:
		return ^(a ^ b), false, false
	case microcode.ALUZero:
		return 0, false, false
	default:
		return 0, false, false
	}
	cin := cin0
	switch ctl.Cin {
	case microcode.CarryZero:
		cin = 0
	case microcode.CarryOne:
		cin = 1
	case microcode.CarrySaved:
		cin = 0
		if savedCarry {
			cin = 1
		}
	}
	sum := uint32(x) + uint32(y) + cin
	res = uint16(sum)
	carry = sum > 0xFFFF
	ovf = (x^res)&(y^res)&0x8000 != 0
	return res, carry, ovf
}

// mulStep performs one multiply step (§6.3.3: Q "is automatically shifted
// in useful ways during multiply and divide step microinstructions").
//
// With the accumulator in T (the A operand), the multiplicand on B, and the
// multiplier in Q, sixteen consecutive
//
//	T ← MulStep(T, multiplicand)
//
// instructions leave the 32-bit product in T‖Q: each step conditionally
// adds the multiplicand and shifts the (T,Q) pair right one bit.
func (m *Machine) mulStep(a, b uint16) uint16 {
	sum := uint32(a)
	if m.q&1 != 0 {
		sum += uint32(b)
	}
	m.q = m.q>>1 | uint16(sum&1)<<15
	return uint16(sum >> 1) // bit 16 (the carry) lands in bit 15
}

// divStep performs one restoring-divide step: with the 32-bit dividend in
// T‖Q (T = high half, the A operand) and the divisor on B, sixteen
// consecutive
//
//	T ← DivStep(T, divisor)
//
// instructions leave the quotient in Q and the remainder in T (valid when
// the initial T < divisor, i.e. the quotient fits 16 bits).
func (m *Machine) divStep(a, b uint16) uint16 {
	rem := uint32(a)<<1 | uint32(m.q>>15)
	m.q <<= 1
	if rem >= uint32(b) && b != 0 {
		rem -= uint32(b)
		m.q |= 1
	}
	return uint16(rem)
}
