package core

import (
	"math/rand"
	"testing"

	"dorado/internal/device"
	"dorado/internal/masm"
	"dorado/internal/microcode"
)

// loadT emits T ← v (v must satisfy the §5.9 one-instruction rule).
func loadT(v uint16) masm.I {
	return masm.I{Const: v, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT}
}

// loadT2 emits the §5.9 two-instruction form for constants whose bytes are
// both "interesting": T ← hi·256, then T ← T OR lo.
func loadT2(b *masm.Builder, v uint16) {
	b.Emit(masm.I{Const: v & 0xFF00, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	b.Emit(masm.I{Const: v & 0x00FF, HasConst: true, ALU: microcode.ALUAorB,
		A: microcode.ASelT, LC: microcode.LCLoadT})
}

func TestCPRegThroughMicrocode(t *testing.T) {
	b := masm.NewBuilder()
	b.EmitAt("start", loadT(0x00AB))
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFCPRegPut})
	b.Emit(masm.I{FF: microcode.FFCPRegGet, LC: microcode.LCLoadRM, R: 2})
	b.Halt()
	m := buildMachine(t, Config{}, b)
	mustHalt(t, m, 100)
	if m.CPReg() != 0x00AB || m.RM(2) != 0x00AB {
		t.Errorf("CPREG=%#x RM2=%#x", m.CPReg(), m.RM(2))
	}
}

func TestReadWriteTPCThroughMicrocode(t *testing.T) {
	// WriteTPC: TPC[COUNT&15] ← B; ReadTPC: RESULT ← TPC[B&15].
	b := masm.NewBuilder()
	b.EmitAt("start", masm.I{FF: microcode.FFCountBase + 7}) // target task 7
	loadT2(b, 0x0123)
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFWriteTPC})
	b.Emit(loadT(7))
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFReadTPC, LC: microcode.LCLoadRM, R: 3})
	b.Halt()
	m := buildMachine(t, Config{}, b)
	mustHalt(t, m, 100)
	if m.TPC(7) != 0x0123 {
		t.Errorf("TPC[7] = %v", m.TPC(7))
	}
	if m.RM(3) != 0x0123 {
		t.Errorf("ReadTPC = %#x", m.RM(3))
	}
}

func TestReadyBExplicitWakeup(t *testing.T) {
	// Task 0 readies task 6 explicitly (no device); task 6 runs two
	// instructions and blocks forever.
	b := masm.NewBuilder()
	b.EmitAt("start", loadT(6))
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFReadyB})
	b.EmitAt("spin", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 0,
		LC: microcode.LCLoadRM, Flow: masm.Branch(microcode.CondCarry, "spin", "spin2")})
	b.EmitAt("spin2", masm.I{FF: microcode.FFHalt, Flow: masm.Self()})
	b.EmitAt("svc", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 1, LC: microcode.LCLoadRM})
	b.Emit(masm.I{Block: true, Flow: masm.Goto("svc")})
	m, p := buildMachineProg(t, Config{}, b)
	m.SetTPC(6, p.MustEntry("svc"))
	for m.Cycle() < 50 {
		m.Step()
	}
	if m.RM(1) != 1 {
		t.Errorf("explicitly-readied task ran %d times, want 1", m.RM(1))
	}
}

func TestMapOpsThroughMicrocode(t *testing.T) {
	// Map virtual page 3 to real page 5, then fetch through it.
	b := masm.NewBuilder()
	b.EmitAt("start", masm.I{Const: 3 * 256, HasConst: true, ALU: microcode.ALUB,
		LC: microcode.LCLoadRM, R: 1}) // A displacement inside vpage 3
	b.Emit(loadT(5))
	b.Emit(masm.I{A: microcode.ASelRM, R: 1, B: microcode.BSelT, FF: microcode.FFMapSet})
	b.Emit(masm.I{A: microcode.ASelRM, R: 1, FF: microcode.FFMapGet, LC: microcode.LCLoadT})
	b.Emit(masm.I{A: microcode.ASelFetch, R: 1})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: 3})
	b.Halt()
	m := buildMachine(t, Config{}, b)
	// Seed the real page through the (still identity) mapping of vpage 5.
	m.Mem().Poke(5*256, 0x0777)
	mustHalt(t, m, 1000)
	if m.T(0) != 5 {
		t.Errorf("MapGet = %d, want 5", m.T(0))
	}
	if m.RM(3) != 0x0777 {
		t.Errorf("fetch through map = %#x, want 0x0777", m.RM(3))
	}
}

func TestFlushThroughMicrocode(t *testing.T) {
	b := masm.NewBuilder()
	b.EmitAt("start", masm.I{Const: 64, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadRM, R: 1})
	b.Emit(masm.I{A: microcode.ASelFetch, R: 1}) // load the line
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadT})
	b.Emit(masm.I{A: microcode.ASelRM, R: 1, FF: microcode.FFFlushCache})
	b.Halt()
	m := buildMachine(t, Config{}, b)
	mustHalt(t, m, 1000)
	if m.Mem().CacheResident(64) {
		t.Error("line still resident after microcode flush")
	}
}

func TestIOAttenCondition(t *testing.T) {
	att := &attenDev{Nop: device.Nop{TaskNum: 4}}
	b := masm.NewBuilder()
	b.EmitAt("start", loadT(4))
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFPutIOAddress})
	b.Emit(masm.I{Flow: masm.Branch(microcode.CondIOAtten, "calm", "urgent")})
	b.EmitAt("calm", loadT(1))
	b.Emit(masm.I{Flow: masm.Goto("done")})
	b.EmitAt("urgent", loadT(2))
	b.EmitAt("done", masm.I{FF: microcode.FFHalt, Flow: masm.Self()})
	m := buildMachine(t, Config{}, b)
	if err := m.Attach(att); err != nil {
		t.Fatal(err)
	}
	att.atten = true
	mustHalt(t, m, 100)
	if m.T(0) != 2 {
		t.Errorf("attention branch not taken: T=%d", m.T(0))
	}
}

type attenDev struct {
	device.Nop
	atten bool
}

func (d *attenDev) Atten() bool { return d.atten }

func TestCarryAndOverflowBranches(t *testing.T) {
	b := masm.NewBuilder()
	// 0xFFFF + 1 → carry, no signed overflow.
	b.EmitAt("start", loadT(0xFFFF))
	b.Emit(masm.I{A: microcode.ASelT, Const: 1, HasConst: true, ALU: microcode.ALUAplusB,
		Flow: masm.Branch(microcode.CondCarry, "nc", "c")})
	b.EmitAt("nc", masm.I{FF: microcode.FFHalt, Flow: masm.Self()}) // wrong
	// 0x7FFF + 1 → overflow.
	b.EmitAt("c", loadT(0x7FFF))
	b.Emit(masm.I{A: microcode.ASelT, Const: 1, HasConst: true, ALU: microcode.ALUAplusB,
		Flow: masm.Branch(microcode.CondOverflow, "novf", "ovf")})
	b.EmitAt("novf", masm.I{FF: microcode.FFHalt, Flow: masm.Self()}) // wrong
	b.EmitAt("ovf", loadT(0x00AA))
	b.Halt()
	m := buildMachine(t, Config{}, b)
	mustHalt(t, m, 100)
	if m.T(0) != 0x00AA {
		t.Fatalf("halted on a wrong branch arm (T=%#x)", m.T(0))
	}
}

func TestMBFlagThroughMicrocode(t *testing.T) {
	b := masm.NewBuilder()
	b.EmitAt("start", masm.I{FF: microcode.FFSetMB})
	b.Emit(masm.I{Flow: masm.Branch(microcode.CondMB, "clear", "set")})
	b.EmitAt("clear", masm.I{FF: microcode.FFHalt, Flow: masm.Self()}) // wrong
	b.EmitAt("set", masm.I{FF: microcode.FFClearMB})
	b.Emit(masm.I{Flow: masm.Branch(microcode.CondMB, "ok", "bad")})
	b.EmitAt("ok", loadT(0x0042))
	b.Halt()
	b.EmitAt("bad", masm.I{FF: microcode.FFHalt, Flow: masm.Self()})
	m := buildMachine(t, Config{}, b)
	mustHalt(t, m, 100)
	if m.T(0) != 0x0042 {
		t.Fatalf("MB flag path wrong (T=%#x)", m.T(0))
	}
}

func TestDivideMicrocode(t *testing.T) {
	// 32-bit ÷ 16-bit with DivStep: dividend T‖Q, divisor RM1.
	b := masm.NewBuilder()
	b.Label("start")
	loadT2(b, 0x3039) // Q low = 12345
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFPutQ})
	b.Emit(masm.I{Const: 0x0007, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadRM, R: 1})
	b.Emit(loadT(0)) // dividend high = 0
	b.Emit(masm.I{FF: microcode.FFCountBase + 15})
	b.EmitAt("div", masm.I{FF: microcode.FFDivStep, A: microcode.ASelT,
		B: microcode.BSelRM, R: 1, LC: microcode.LCLoadT,
		Flow: masm.Branch(microcode.CondCountNZ, "done", "div")})
	b.EmitAt("done", masm.I{FF: microcode.FFHalt, Flow: masm.Self()})
	m := buildMachine(t, Config{}, b)
	mustHalt(t, m, 1000)
	if m.Q() != 12345/7 || m.T(0) != 12345%7 {
		t.Errorf("12345/7 = q%d r%d, want q%d r%d", m.Q(), m.T(0), 12345/7, 12345%7)
	}
}

func TestALUFMReprogramming(t *testing.T) {
	// Reprogram ALUOp slot 15 (normally "0") to A+B with forced carry-in:
	// a one-instruction A+B+1.
	ctl := microcode.EncodeALUCtl(microcode.ALUCtl{Fn: microcode.ALUAplusB, Cin: microcode.CarryOne})
	b := masm.NewBuilder()
	b.EmitAt("start", loadT(uint16(ctl)))
	b.Emit(masm.I{B: microcode.BSelT, ALU: 15, FF: microcode.FFPutALUFM})
	b.Emit(loadT(20))
	b.Emit(masm.I{A: microcode.ASelT, Const: 21, HasConst: true, ALU: 15, LC: microcode.LCLoadRM, R: 2})
	b.Halt()
	m := buildMachine(t, Config{}, b)
	mustHalt(t, m, 100)
	if m.RM(2) != 42 {
		t.Errorf("A+B+1 through reprogrammed ALUFM = %d, want 42", m.RM(2))
	}
}

func TestALUShiftsThroughMicrocode(t *testing.T) {
	b := masm.NewBuilder()
	b.EmitAt("start", loadT(0x0081))
	b.Emit(masm.I{A: microcode.ASelT, ALU: microcode.ALUA, FF: microcode.FFALULsh,
		LC: microcode.LCLoadRM, R: 1})
	b.Emit(masm.I{A: microcode.ASelT, ALU: microcode.ALUA, FF: microcode.FFALURsh,
		LC: microcode.LCLoadRM, R: 2})
	b.Halt()
	m := buildMachine(t, Config{}, b)
	mustHalt(t, m, 100)
	if m.RM(1) != 0x0102 || m.RM(2) != 0x0040 {
		t.Errorf("lsh=%#x rsh=%#x", m.RM(1), m.RM(2))
	}
}

func TestShiftMaskMDThroughMicrocode(t *testing.T) {
	// Field insert: merge T's low nibble into bits 4..7 of a memory word.
	b2 := masm.NewBuilder()
	b2.EmitAt("start", masm.I{Const: 0x0100, HasConst: true, ALU: microcode.ALUB,
		LC: microcode.LCLoadRM, R: 1})
	loadT2(b2, microcode.EncodeShiftCtl(microcode.FieldInsert(4, 4)))
	b2.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFPutShiftCtl})
	b2.Emit(loadT(0x000A))
	b2.Emit(masm.I{A: microcode.ASelT, ALU: microcode.ALUA, LC: microcode.LCLoadRM, R: 2})
	b2.Emit(masm.I{A: microcode.ASelFetch, R: 1})
	b2.Emit(masm.I{FF: microcode.FFShiftMaskMD, R: 2, LC: microcode.LCLoadT})
	b2.Halt()
	m := buildMachine(t, Config{}, b2)
	m.Mem().Poke(0x0100, 0xF00F)
	mustHalt(t, m, 1000)
	if m.T(0) != 0xF0AF {
		t.Errorf("field insert = %#04x, want 0xf0af", m.T(0))
	}
}

func TestBaseRegisterLoadsThroughMicrocode(t *testing.T) {
	b := masm.NewBuilder()
	b.EmitAt("start", masm.I{FF: microcode.FFMemBaseBase + 9})
	b.Emit(loadT(0x4000))
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFPutBaseLo})
	b.Emit(loadT(0x0002))
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFPutBaseHi})
	b.Emit(masm.I{FF: microcode.FFGetBaseLo, LC: microcode.LCLoadRM, R: 2})
	// Fetch displacement 1 through base 9 = 0x24000.
	b.Emit(masm.I{Const: 1, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadRM, R: 1})
	b.Emit(masm.I{A: microcode.ASelFetch, R: 1})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: 3})
	b.Halt()
	m := buildMachine(t, Config{}, b)
	m.Mem().Poke(0x24001, 0x0BEE)
	mustHalt(t, m, 1000)
	if m.Mem().Base(9) != 0x24000 {
		t.Errorf("base 9 = %#x", m.Mem().Base(9))
	}
	if m.RM(2) != 0x4000 {
		t.Errorf("GetBaseLo = %#x", m.RM(2))
	}
	if m.RM(3) != 0x0BEE {
		t.Errorf("fetch through loaded base = %#x", m.RM(3))
	}
}

// TestEmulatorInvariantUnderDeviceTiming is the zero-overhead property as
// a randomized test: the emulator's final result is identical no matter
// when devices interrupt.
func TestEmulatorInvariantUnderDeviceTiming(t *testing.T) {
	build := func() *masm.Builder {
		b := masm.NewBuilder()
		b.EmitAt("start", masm.I{Const: 0x00FF, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT})
		b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFPutCount})
		b.EmitAt("loop", masm.I{ALU: microcode.ALUAplusB, A: microcode.ASelRM, R: 0,
			B: microcode.BSelT, LC: microcode.LCLoadRM})
		b.Emit(masm.I{LC: microcode.LCLoadT, ALU: microcode.ALUAplus1, A: microcode.ASelT,
			Flow: masm.Branch(microcode.CondCountNZ, "", "loop")})
		b.Halt()
		b.EmitAt("svc", masm.I{FF: microcode.FFInput, ALU: microcode.ALUAplus1,
			A: microcode.ASelRM, R: 9, LC: microcode.LCLoadRM})
		b.Emit(masm.I{Block: true, Flow: masm.Goto("svc")})
		return b
	}
	base := buildMachine(t, Config{}, build())
	mustHalt(t, base, 100000)
	want := base.RM(0)

	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		m, p := buildMachineProg(t, Config{}, build())
		for task := 3; task <= 8; task++ {
			var at []uint64
			for i := 0; i < 5; i++ {
				at = append(at, uint64(rng.Intn(400)))
			}
			pr := newProbe(task, at...)
			if err := m.Attach(pr); err != nil {
				t.Fatal(err)
			}
			m.SetIOAddress(task, uint16(task))
			m.SetTPC(task, p.MustEntry("svc"))
		}
		mustHalt(t, m, 100000)
		if m.RM(0) != want {
			t.Fatalf("trial %d: result %d under random interrupts, want %d", trial, m.RM(0), want)
		}
	}
}

// TestSharedCountSaveRestore documents §5.3's sharing rule: "count and q
// are normally used only by the emulator. However, they can be used by
// other tasks if their contents are explicitly saved and restored." A
// device task that borrows COUNT with save/restore leaves the emulator's
// loop unharmed.
func TestSharedCountSaveRestore(t *testing.T) {
	b := masm.NewBuilder()
	// Emulator: a long COUNT loop.
	b.EmitAt("start", masm.I{Const: 0x00C8, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFPutCount})
	b.EmitAt("loop", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 0, LC: microcode.LCLoadRM})
	b.Emit(masm.I{Flow: masm.Branch(microcode.CondCountNZ, "", "loop")})
	b.Halt()
	// Device: saves COUNT into its own RM register, runs a 3-iteration
	// COUNT loop of its own, restores, blocks.
	b.EmitAt("svc", masm.I{FF: microcode.FFGetCount, LC: microcode.LCLoadRM, R: 9})
	b.Emit(masm.I{FF: microcode.FFCountBase + 2})
	b.EmitAt("svcloop", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 8, LC: microcode.LCLoadRM,
		Flow: masm.Branch(microcode.CondCountNZ, "svcdone", "svcloop")})
	b.EmitAt("svcdone", masm.I{B: microcode.BSelRM, R: 9, FF: microcode.FFPutCount})
	b.Emit(masm.I{Block: true, Flow: masm.Goto("svc")})
	m, p := buildMachineProg(t, Config{}, b)
	pr := newProbe(8, 50, 150)
	if err := m.Attach(pr); err != nil {
		t.Fatal(err)
	}
	m.SetTPC(8, p.MustEntry("svc"))
	mustHalt(t, m, 10_000)
	if m.RM(0) != 201 {
		t.Errorf("emulator loop ran %d times, want 201 (COUNT corrupted?)", m.RM(0))
	}
	if m.RM(8) != 6 {
		t.Errorf("device loop iterations = %d, want 6 (2 wakeups × 3)", m.RM(8))
	}
}
