package core

import (
	"testing"

	"dorado/internal/device"
	"dorado/internal/memory"
)

func TestRegisterAccessors(t *testing.T) {
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.SetT(3, 0x1111)
	if m.T(3) != 0x1111 || m.T(4) != 0 {
		t.Error("T accessor")
	}
	m.SetCount(77)
	if m.Count() != 77 {
		t.Error("Count accessor")
	}
	m.SetQ(88)
	if m.Q() != 88 {
		t.Error("Q accessor")
	}
	m.SetStackPtr(0x42)
	if m.StackPtr() != 0x42 {
		t.Error("StackPtr accessor")
	}
	m.SetStack(7, 0x1234)
	if m.Stack(7) != 0x1234 {
		t.Error("Stack accessor")
	}
	m.SetRBase(5)
	if m.RBase() != 5 {
		t.Error("RBase accessor")
	}
	m.SetRBase(0x1F) // masked to 4 bits
	if m.RBase() != 0xF {
		t.Error("RBase mask")
	}
	m.SetMemBase(31)
	if m.MemBase() != 31 {
		t.Error("MemBase accessor")
	}
	m.SetShiftCtl(0x1357)
	if m.ShiftCtl() != 0x1357 {
		t.Error("ShiftCtl accessor")
	}
	m.SetCPReg(0xAAAA)
	if m.CPReg() != 0xAAAA {
		t.Error("CPReg accessor")
	}
	if m.CurTask() != 0 || m.CurPC() != 0 {
		t.Error("fresh machine position")
	}
	if m.Halted() {
		t.Error("fresh machine halted")
	}
	var st Stats
	if st.Utilization(0) != 0 {
		t.Error("zero-cycle utilization should be 0")
	}
}

func TestAttachValidation(t *testing.T) {
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(&device.Nop{TaskNum: 0}); err == nil {
		t.Error("task 0 (the emulator) must not take a device")
	}
	if err := m.Attach(&device.Nop{TaskNum: 16}); err == nil {
		t.Error("task 16 out of range")
	}
	if err := m.Attach(&device.Nop{TaskNum: 5}); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(&device.Nop{TaskNum: 5}); err == nil {
		t.Error("double attach must fail")
	}
}

func TestBadMemoryConfigPropagates(t *testing.T) {
	if _, err := New(Config{Memory: memory.Config{CacheWords: 100}}); err == nil {
		t.Error("invalid memory config should fail machine construction")
	}
}
