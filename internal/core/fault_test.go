package core

import (
	"testing"

	"dorado/internal/ifu"
	"dorado/internal/masm"
	"dorado/internal/memory"
	"dorado/internal/microcode"
)

// TestFaultTaskHandlesWriteProtect wires the whole fault path: task 0
// stores into a write-protected page; the memory records the fault and the
// machine wakes the fault task, whose microcode reads (and clears) the
// fault registers and counts the event — the Dorado discipline of treating
// faults as service requests rather than traps.
func TestFaultTaskHandlesWriteProtect(t *testing.T) {
	b := masm.NewBuilder()
	// Task 0: two stores into page 6 (write-protected), then spin counting.
	b.EmitAt("start", masm.I{Const: 6 * 256, HasConst: true, ALU: microcode.ALUB,
		LC: microcode.LCLoadRM, R: 1})
	b.Emit(masm.I{A: microcode.ASelStore, R: 1, B: microcode.BSelT})
	// The fault register holds a single fault: give the handler time to
	// service the first before raising the second (back-to-back faults
	// coalesce, exactly like a device re-requesting before NotifyNext).
	b.Emit(masm.I{FF: microcode.FFCountBase + 10})
	b.EmitAt("gap", masm.I{Flow: masm.Branch(microcode.CondCountNZ, "", "gap")})
	b.Emit(masm.I{A: microcode.ASelRM, R: 1, ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM})
	b.Emit(masm.I{A: microcode.ASelStore, R: 1, B: microcode.BSelT})
	b.EmitAt("spin", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 0,
		LC: microcode.LCLoadRM, Flow: masm.Goto("spin")})
	// Task 14, the fault handler: record FaultHi into RM4, FaultLo into
	// RM5 (clearing the fault), bump the fault count in RM6, block.
	b.EmitAt("fault", masm.I{FF: microcode.FFGetFaultHi, LC: microcode.LCLoadRM, R: 4})
	b.Emit(masm.I{FF: microcode.FFGetFaultLo, LC: microcode.LCLoadRM, R: 5})
	b.Emit(masm.I{A: microcode.ASelRM, R: 6, ALU: microcode.ALUAplus1,
		LC: microcode.LCLoadRM, Block: true, Flow: masm.Goto("fault")})
	m, p := buildMachineProg(t, Config{FaultTask: 14}, b)
	m.SetTPC(14, p.MustEntry("fault"))
	m.Mem().SetMapFlags(6, memory.MapFlags{WP: true})
	for m.Cycle() < 200 {
		m.Step()
	}
	if m.RM(6) != 2 {
		t.Fatalf("fault task handled %d faults, want 2", m.RM(6))
	}
	wantHi := uint16(memory.FaultWP)<<12 | uint16((6*256)>>16)
	if m.RM(4) != wantHi {
		t.Errorf("FaultHi = %#04x, want %#04x", m.RM(4), wantHi)
	}
	if m.RM(5) != 6*256+1 {
		t.Errorf("FaultLo = %#04x, want %#04x (second fault's VA)", m.RM(5), 6*256+1)
	}
	// The faulting stores were suppressed.
	if m.Mem().Peek(6*256) != 0 || m.Mem().Peek(6*256+1) != 0 {
		t.Error("write-protected page was modified")
	}
	// Task 0 kept running throughout (faults are not traps).
	if m.RM(0) == 0 {
		t.Error("emulator never resumed after faults")
	}
}

// TestIFULoadsMemBaseOnDispatch exercises §6.3.3's "MEMBASE can be loaded
// from the IFU at the start of a macroinstruction".
func TestIFULoadsMemBaseOnDispatch(t *testing.T) {
	b := masm.NewBuilder()
	b.EmitAt("start", masm.I{Flow: masm.IFUJump()})
	// The handler fetches displacement 1 using whatever MEMBASE the
	// dispatch installed.
	b.EmitAt("h", masm.I{Const: 1, HasConst: true, ALU: microcode.ALUB,
		LC: microcode.LCLoadRM, R: 1})
	b.Emit(masm.I{A: microcode.ASelFetch, R: 1})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadT})
	b.Emit(masm.I{FF: microcode.FFHalt, Flow: masm.Self()})
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.Load(&p.Words)
	m.Start(p.MustEntry("start"))
	m.Mem().SetBase(12, 0x8000)
	m.Mem().Poke(0x8001, 0x0AFE)
	m.Mem().Poke(0x4000, 0x0100) // code: one opcode byte 1
	u := m.IFU()
	u.SetCodeBase(0x4000)
	u.SetEntry(1, ifu.Entry{Handler: p.MustEntry("h"), LoadMemBase: true, MemBase: 12, Name: "MBOP"})
	u.Reset(0, 0)
	mustHalt(t, m, 1000)
	if m.T(0) != 0x0AFE {
		t.Fatalf("fetch used wrong base: T=%#04x", m.T(0))
	}
	if m.MemBase() != 12 {
		t.Errorf("MEMBASE = %d after dispatch", m.MemBase())
	}
}
