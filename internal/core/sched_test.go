package core

import (
	"testing"

	"dorado/internal/device"
	"dorado/internal/ifu"
	"dorado/internal/masm"
	"dorado/internal/microcode"
)

// probe is a test device: it raises its wakeup at chosen cycles and drops
// it when it sees its task on NEXT (like real controller hardware).
type probe struct {
	device.Nop
	raiseAt  map[uint64]bool
	wake     bool
	notified []uint64
	inputs   uint64
}

func newProbe(task int, at ...uint64) *probe {
	p := &probe{Nop: device.Nop{TaskNum: task}, raiseAt: map[uint64]bool{}}
	for _, c := range at {
		p.raiseAt[c] = true
	}
	return p
}

func (p *probe) Tick(now uint64) {
	if p.raiseAt[now] {
		p.wake = true
	}
}
func (p *probe) Wakeup() bool { return p.wake }
func (p *probe) NotifyNext(now uint64) {
	if p.wake {
		p.notified = append(p.notified, now)
	}
	p.wake = false
}
func (p *probe) Input(now uint64) uint16 { p.inputs++; return uint16(p.inputs) }

// emulatorLoop emits an endless task-0 loop incrementing RM0.
func emulatorLoop(b *masm.Builder) {
	b.EmitAt("start", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 0, LC: microcode.LCLoadRM, Flow: masm.Goto("start")})
}

func TestWakeupToRunLatencyIsTwoCycles(t *testing.T) {
	b := masm.NewBuilder()
	emulatorLoop(b)
	// Service: RM1++ then block back to the top.
	b.EmitAt("svc", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 1, LC: microcode.LCLoadRM})
	b.Emit(masm.I{Block: true, Flow: masm.Goto("svc")})
	m := buildMachine(t, Config{}, b)
	p := newProbe(5, 10)
	if err := m.Attach(p); err != nil {
		t.Fatal(err)
	}
	prog := mustAssemble(t, b)
	m.SetTPC(5, prog.MustEntry("svc"))

	for m.Cycle() < 12 {
		m.Step()
		if m.RM(1) != 0 {
			t.Fatalf("service ran before cycle 12 (at %d)", m.Cycle())
		}
	}
	m.Step() // executes cycle 12
	if m.RM(1) != 1 {
		t.Fatalf("service did not run at cycle 12 (wakeup+2); RM1=%d", m.RM(1))
	}
	// NEXT showed the task number one cycle earlier.
	if len(p.notified) != 1 || p.notified[0] != 11 {
		t.Errorf("NotifyNext at %v, want [11]", p.notified)
	}
}

// mustAssemble re-assembles a builder (builders are single-shot per
// Assemble; tests that need symbols assemble once and share).
func mustAssemble(t *testing.T, b *masm.Builder) *masm.Program {
	t.Helper()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTwoInstructionGrain(t *testing.T) {
	// A two-instruction service runs exactly twice per wakeup-service; a
	// one-instruction service (block on the first instruction) still runs
	// two instructions, because the wakeup is cleared from the pipe one
	// latch too late (§6.2.1: "otherwise it will continue to run").
	run := func(oneInst bool) (svcRuns uint16, m *Machine) {
		b := masm.NewBuilder()
		emulatorLoop(b)
		if oneInst {
			b.EmitAt("svc", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 1, LC: microcode.LCLoadRM,
				Block: true, Flow: masm.Goto("svc")})
		} else {
			b.EmitAt("svc", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 1, LC: microcode.LCLoadRM})
			b.Emit(masm.I{Block: true, Flow: masm.Goto("svc")})
		}
		m = buildMachine(t, Config{}, b)
		p := newProbe(5, 10)
		if err := m.Attach(p); err != nil {
			t.Fatal(err)
		}
		m.SetTPC(5, mustAssemble(t, b).MustEntry("svc"))
		for m.Cycle() < 40 {
			m.Step()
		}
		return m.RM(1), m
	}
	if inc, _ := run(false); inc != 1 {
		t.Errorf("2-instruction service incremented %d times per wakeup, want 1", inc)
	}
	// One-instruction service: the task re-runs once before leaving, so the
	// counter advances by 2 for a single wakeup.
	if inc, _ := run(true); inc != 2 {
		t.Errorf("1-instruction service incremented %d times, want 2 (the §6.2.1 grain)", inc)
	}
}

func TestPreemptionPreservesEmulatorResult(t *testing.T) {
	// Task 0 sums COUNT down from 199; a device interrupts every 50 cycles.
	// The final sum must be identical to an undisturbed run: context
	// switches are invisible to the preempted microcode (§5.2).
	build := func() *masm.Builder {
		b := masm.NewBuilder()
		b.EmitAt("start", masm.I{Const: 0x00C7, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT})
		b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFPutCount})
		// loop: RM0 += COUNT (via Get) ... simpler: RM0++ each iteration.
		b.EmitAt("loop", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 0, LC: microcode.LCLoadRM})
		b.Emit(masm.I{Flow: masm.Branch(microcode.CondCountNZ, "", "loop")})
		b.Halt()
		b.EmitAt("svc", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 1, LC: microcode.LCLoadRM})
		b.Emit(masm.I{Block: true, Flow: masm.Goto("svc")})
		return b
	}
	// Undisturbed run.
	b1 := build()
	m1 := buildMachine(t, Config{}, b1)
	mustHalt(t, m1, 10000)
	want := m1.RM(0)
	quiet := m1.Cycle()

	// Interrupted run.
	b2 := build()
	m2 := buildMachine(t, Config{}, b2)
	p := newProbe(7, 50, 100, 150, 200, 250, 300)
	if err := m2.Attach(p); err != nil {
		t.Fatal(err)
	}
	m2.SetTPC(7, mustAssemble(t, b2).MustEntry("svc"))
	mustHalt(t, m2, 10000)
	if m2.RM(0) != want {
		t.Errorf("interrupted emulator computed %d, undisturbed %d", m2.RM(0), want)
	}
	if m2.RM(1) != 6 {
		t.Errorf("services run = %d, want 6", m2.RM(1))
	}
	st := m2.Stats()
	if st.Preemptions == 0 {
		t.Error("no preemptions recorded")
	}
	// Zero-overhead switching: the interrupted run is longer only by the
	// service instructions themselves (2 per wakeup), nothing else.
	if got := m2.Cycle() - quiet; got != 6*2 {
		t.Errorf("interruption overhead = %d cycles, want exactly 12 (6 services × 2 instructions)", got)
	}
}

func TestPriorityOrdering(t *testing.T) {
	// Two devices wake simultaneously; the higher task number runs first.
	b := masm.NewBuilder()
	emulatorLoop(b)
	b.EmitAt("svc5", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 5, LC: microcode.LCLoadRM})
	b.Emit(masm.I{Block: true, Flow: masm.Goto("svc5")})
	b.EmitAt("svc9", masm.I{ALU: microcode.ALUA, A: microcode.ASelRM, R: 5, LC: microcode.LCLoadRM, B: microcode.BSelRM}) // copy RM5 snapshot
	b.Emit(masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 9, LC: microcode.LCLoadRM})
	b.Emit(masm.I{Block: true, Flow: masm.Goto("svc9")})
	m := buildMachine(t, Config{}, b)
	p5, p9 := newProbe(5, 10), newProbe(9, 10)
	if err := m.Attach(p5); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(p9); err != nil {
		t.Fatal(err)
	}
	prog := mustAssemble(t, b)
	m.SetTPC(5, prog.MustEntry("svc5"))
	m.SetTPC(9, prog.MustEntry("svc9"))
	for m.Cycle() < 40 {
		m.Step()
	}
	if m.RM(9) != 1 || m.RM(5) != 1 {
		t.Fatalf("both services should have run: RM9=%d RM5=%d", m.RM(9), m.RM(5))
	}
	// Task 9 ran first: when it snapshotted RM5 (first service instruction),
	// task 5 had not run yet.
	if len(p9.notified) == 0 || len(p5.notified) == 0 || p9.notified[0] >= p5.notified[0] {
		t.Errorf("priority order wrong: task9 notified %v, task5 %v", p9.notified, p5.notified)
	}
}

func TestHigherPriorityRunsDuringHold(t *testing.T) {
	// Task 0 misses in the cache and uses MD immediately: ~25 held cycles.
	// A device waking inside that window is serviced without delaying the
	// emulator at all (§5.7: "Cycles which would otherwise be dead time are
	// consumed instead by higher priority tasks doing useful work").
	build := func() *masm.Builder {
		b := masm.NewBuilder()
		b.EmitAt("start", masm.I{Const: 0x4000, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadRM, R: 1})
		b.Emit(masm.I{A: microcode.ASelFetch, R: 1})                                    // cold miss
		b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadT}) // holds ~25 cycles
		b.Halt()
		b.EmitAt("svc", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 2, LC: microcode.LCLoadRM})
		b.Emit(masm.I{Block: true, Flow: masm.Goto("svc")})
		return b
	}
	b1 := build()
	m1 := buildMachine(t, Config{}, b1)
	mustHalt(t, m1, 1000)
	quiet := m1.Cycle()

	b2 := build()
	m2 := buildMachine(t, Config{}, b2)
	p := newProbe(11, 5) // wakes while the emulator is held
	if err := m2.Attach(p); err != nil {
		t.Fatal(err)
	}
	m2.SetTPC(11, mustAssemble(t, b2).MustEntry("svc"))
	mustHalt(t, m2, 1000)
	if m2.RM(2) != 1 {
		t.Fatalf("device not serviced during hold")
	}
	if m2.Cycle() != quiet {
		t.Errorf("service during hold cost %d extra cycles, want 0 (quiet %d, busy %d)",
			int64(m2.Cycle())-int64(quiet), quiet, m2.Cycle())
	}
	if m2.Stats().TaskCycles[11] == 0 {
		t.Error("task 11 cycles not accounted")
	}
}

func TestBlockReturnsToEmulator(t *testing.T) {
	b := masm.NewBuilder()
	emulatorLoop(b)
	b.EmitAt("svc", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 1, LC: microcode.LCLoadRM})
	b.Emit(masm.I{Block: true, Flow: masm.Goto("svc")})
	m := buildMachine(t, Config{}, b)
	p := newProbe(5, 10)
	if err := m.Attach(p); err != nil {
		t.Fatal(err)
	}
	m.SetTPC(5, mustAssemble(t, b).MustEntry("svc"))
	for m.Cycle() < 100 {
		m.Step()
	}
	st := m.Stats()
	if st.Blocks == 0 {
		t.Error("no blocks recorded")
	}
	// The emulator got every cycle except the service's two instructions
	// (and kept running afterwards).
	if st.TaskCycles[0] != st.Cycles-2 {
		t.Errorf("task0 cycles = %d of %d, want all but 2", st.TaskCycles[0], st.Cycles)
	}
}

func TestExplicitNotifyAblation(t *testing.T) {
	// In ExplicitNotify mode the device never sees NEXT; without an ack its
	// wakeup stays up and the task keeps getting service. Microcode with an
	// FF IOAttenAck (one extra instruction) services correctly — the §6.2.1
	// three-cycle grain.
	b := masm.NewBuilder()
	emulatorLoop(b)
	// The acknowledgement must be in the FIRST service instruction, and even
	// then its effect reaches the arbitration pipeline one latch later — so
	// the task cannot block before its THIRD instruction (§6.2.1: "the
	// notification could not be done earlier than the first instruction ...
	// the grain would be three cycles").
	b.EmitAt("svc", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 1, LC: microcode.LCLoadRM,
		FF: microcode.FFIOAttenAck})
	b.Emit(masm.I{})
	b.Emit(masm.I{Block: true, Flow: masm.Goto("svc")})
	m := buildMachine(t, Config{Options: Options{ExplicitNotify: true}}, b)
	p := newProbe(5, 10)
	if err := m.Attach(p); err != nil {
		t.Fatal(err)
	}
	m.SetIOAddress(5, 5)
	m.SetTPC(5, mustAssemble(t, b).MustEntry("svc"))
	for m.Cycle() < 60 {
		m.Step()
	}
	if m.RM(1) != 1 {
		t.Errorf("explicit-notify service ran %d times, want exactly 1", m.RM(1))
	}
	if len(p.notified) != 1 {
		t.Errorf("device acked %d times", len(p.notified))
	}
	// Grain: task 5 consumed exactly 3 cycles.
	if got := m.Stats().TaskCycles[5]; got != 3 {
		t.Errorf("task5 cycles = %d, want 3 (the grain-3 ablation)", got)
	}
}

func TestSlowIOInputToMemory(t *testing.T) {
	// The disk idiom: one instruction moves a device word to memory while
	// incrementing the buffer pointer (§5.8 "memory reference and I/O
	// transfer in a single instruction").
	b := masm.NewBuilder()
	emulatorLoop(b)
	// svc: T←Input; then mem[RM1]←T, RM1++; then mem[RM1]←Input, RM1++, block.
	b.EmitAt("svc", masm.I{FF: microcode.FFInput, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	b.Emit(masm.I{A: microcode.ASelStore, R: 1, B: microcode.BSelT, ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM})
	b.Emit(masm.I{A: microcode.ASelStore, R: 1, FF: microcode.FFInput, ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM,
		Block: true, Flow: masm.Goto("svc")})
	m := buildMachine(t, Config{}, b)
	p := newProbe(6, 20)
	if err := m.Attach(p); err != nil {
		t.Fatal(err)
	}
	m.SetIOAddress(6, 6)
	m.SetTPC(6, mustAssemble(t, b).MustEntry("svc"))
	m.SetRM(1, 0x300) // buffer pointer
	for m.Cycle() < 200 {
		m.Step()
	}
	if m.Mem().Peek(0x300) != 1 || m.Mem().Peek(0x301) != 2 {
		t.Errorf("device words not in memory: %d,%d", m.Mem().Peek(0x300), m.Mem().Peek(0x301))
	}
	if m.RM(1) != 0x302 {
		t.Errorf("buffer pointer = %#x, want 0x302", m.RM(1))
	}
}

func TestIFUMacroProgram(t *testing.T) {
	// A two-opcode macro machine: INC (T++) and HALTOP, each handler one
	// microinstruction ending in IFUJump.
	b := masm.NewBuilder()
	b.EmitAt("start", masm.I{Flow: masm.IFUJump()}) // boot: dispatch first opcode
	b.EmitAt("inc", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelT, LC: microcode.LCLoadT, Flow: masm.IFUJump()})
	b.EmitAt("haltop", masm.I{FF: microcode.FFHalt, Flow: masm.Self()})
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.Load(&p.Words)
	m.Start(p.MustEntry("start"))

	// Macroprogram: 5 × INC, then HALT.
	code := []byte{1, 1, 1, 1, 1, 2}
	for i := 0; i+1 < len(code); i += 2 {
		m.Mem().Poke(0x4000+uint32(i/2), uint16(code[i])<<8|uint16(code[i+1]))
	}
	u := m.IFU()
	u.SetCodeBase(0x4000)
	if err := u.SetEntry(1, ifu.Entry{Handler: p.MustEntry("inc"), Name: "INC"}); err != nil {
		t.Fatal(err)
	}
	if err := u.SetEntry(2, ifu.Entry{Handler: p.MustEntry("haltop"), Name: "HALT"}); err != nil {
		t.Fatal(err)
	}
	u.Reset(0, 0)
	mustHalt(t, m, 1000)
	if m.T(0) != 5 {
		t.Errorf("T = %d, want 5", m.T(0))
	}
	// Steady-state: each INC is one microinstruction — one cycle each once
	// the IFU buffer is warm. Total should be small.
	if m.Cycle() > 30 {
		t.Errorf("macro program took %d cycles; IFU pipelining broken", m.Cycle())
	}
}

func TestIFUOperandDelivery(t *testing.T) {
	// Opcode with alpha operand: T ← T + alpha.
	b := masm.NewBuilder()
	b.EmitAt("start", masm.I{Flow: masm.IFUJump()})
	b.EmitAt("addi", masm.I{ALU: microcode.ALUAplusB, A: microcode.ASelIFUData, B: microcode.BSelT, LC: microcode.LCLoadT, Flow: masm.IFUJump()})
	b.EmitAt("haltop", masm.I{FF: microcode.FFHalt, Flow: masm.Self()})
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.Load(&p.Words)
	m.Start(p.MustEntry("start"))
	code := []byte{1, 10, 1, 20, 1, 30, 2, 0}
	for i := 0; i+1 < len(code); i += 2 {
		m.Mem().Poke(0x4000+uint32(i/2), uint16(code[i])<<8|uint16(code[i+1]))
	}
	u := m.IFU()
	u.SetCodeBase(0x4000)
	u.SetEntry(1, ifu.Entry{Handler: p.MustEntry("addi"), Operands: 1, Name: "ADDI"})
	u.SetEntry(2, ifu.Entry{Handler: p.MustEntry("haltop"), Name: "HALT"})
	u.Reset(0, 0)
	mustHalt(t, m, 1000)
	if m.T(0) != 60 {
		t.Errorf("T = %d, want 60", m.T(0))
	}
}
