// Package core implements the Dorado processor: the paper's primary
// contribution. It executes the microinstruction set of internal/microcode
// one 60 ns cycle at a time, with:
//
//   - 16 fixed-priority microcode tasks multiplexed over the processor,
//     switched on demand with zero overhead (§5.1–5.3): all vital state
//     (TPC, LINK, T, MD, IOADDRESS, branch conditions) is task-indexed;
//   - the two-stage task-arbitration pipeline of §5.4/§6.2.1 (WAKEUP latch →
//     priority encode → TPC read → switch), reproducing the two-cycle
//     wakeup-to-run latency and two-cycle minimum grain;
//   - Hold (§5.7): an instruction that uses not-ready memory data, starts a
//     reference the memory cannot accept, or consumes IFU output that is
//     not ready becomes "no-op, jump to self" while the clocks keep running,
//     so higher-priority tasks absorb the dead cycles;
//   - the data section of §6.3: 16-bit ALU behind ALUFM, 256-word RM bank
//     addressed through RBASE, four 64-word hardware stacks with
//     overflow/underflow checking, task-specific T, shared COUNT and Q,
//     the 32-bit barrel shifter with zero/MD masking, and the FF catalog;
//   - data bypassing (§5.6): architecturally, results of instruction n are
//     visible to instruction n+1; the Model-0 ablation (Options.NoBypass)
//     delays register-file writes by one instruction, reproducing the
//     behavior the paper calls "a number of subtle bugs and a significant
//     loss of performance".
//
// Pipeline fidelity: the real machine overlaps fetch and execute over three
// cycles (Figure 2), but with universal bypassing the architectural effect
// is exactly one microinstruction per cycle, which is how the simulator
// executes. The timing phenomena the paper analyzes — Hold, wakeup latency,
// allocation grain, branch cost, bypass cost — are modeled explicitly,
// several of them behind Options ablations so the paper's design arguments
// can be re-measured.
package core

import (
	"fmt"

	"dorado/internal/device"
	"dorado/internal/ifu"
	"dorado/internal/memory"
	"dorado/internal/microcode"
	"dorado/internal/obs"
)

// CycleNS is the machine cycle time in nanoseconds (60 ns, §1; stitchwelded
// prototypes ran at 50 ns, §6.4).
const CycleNS = 60

// NumTasks is the number of microcode priority levels (§5.1).
const NumTasks = 16

// StackWords is the depth of one hardware stack (§6.3.3: "four stacks of
// 64 words each"); STACKPTR is [stack:2][word:6].
const StackWords = 64

// NumStacks is the number of hardware stacks (§6.3.3).
const NumStacks = 4

// Options select the paper's design-alternative ablations. The zero value
// is the Dorado as built.
type Options struct {
	// NoBypass reproduces the Model-0 gaps in bypass logic (§5.6):
	// register-file writes become visible to the *second* following
	// instruction instead of the first. Microcode that has not been padded
	// (masm's PadForNoBypass) computes wrong answers — exactly the paper's
	// "subtle bugs".
	NoBypass bool
	// DelayedBranch reproduces the conventional alternative to the
	// late-condition-select branch (§5.5): every conditional branch inserts
	// one dead cycle for the target fetch.
	DelayedBranch bool
	// ExplicitNotify reproduces the simpler task-scheduler design of
	// §6.2.1: devices are not told their task number appears on NEXT;
	// microcode must acknowledge wakeups explicitly (FF IOAttenAck),
	// raising the minimum allocation grain from two cycles to three.
	ExplicitNotify bool
	// FixedWaitMemory reproduces the first §5.7 alternative to Hold:
	// every use of memory data waits the fixed worst-case (miss) time.
	FixedWaitMemory bool
}

// Config assembles a Machine.
type Config struct {
	Memory  memory.Config
	IFU     ifu.Config
	Options Options
	// FaultTask, when 1..15, is woken (via its READY flipflop) whenever the
	// memory system records a map fault — the Dorado's fault-handling
	// discipline: faults are service requests to a microcode task, not
	// processor traps.
	FaultTask int
	// Reference selects the unoptimized reference interpreter: every cycle
	// re-decodes the packed microword from scratch and the scheduler scans
	// all 16 device slots, as the seed simulator did. The predecoded fast
	// path (the default) must be cycle-for-cycle identical to it; the
	// differential tests diff the two, and cmd/simbench uses it as the
	// host-performance baseline. Simulation semantics are unaffected.
	Reference bool
	// Translation enables the superblock translator (translate.go): hot
	// straight-line microcode runs execute as fused Go closures instead of
	// per-cycle dispatch. Like Reference it selects how cycles are computed,
	// not what they compute, and is excluded from snapshots. It requires the
	// as-built machine: New rejects Translation combined with Reference or
	// with any Options ablation.
	Translation Translation
}

// taskState groups the task-specific registers (§5.3).
type taskState struct {
	tpc   microcode.Addr // microcode program counter
	link  microcode.Addr // subroutine linkage (§6.2.3)
	t     uint16         // working storage
	ioadr uint16         // IOADDRESS: which device Input/Output talks to
	// branch-condition register (§5.3)
	zero, neg, carry, ovf bool
	savedCarry            bool // for CarrySaved multi-precision arithmetic
	mb                    bool // the MB flag (FF SetMB/ClearMB/ProbeMD)
	stackErr              bool
}

// pendingWrite models the Model-0 missing bypass: a register-file write
// that has left the ALU but not yet reached the RAM.
type pendingWrite struct {
	valid   bool
	toT     bool
	task    int // for T
	toRM    bool
	rmIndex uint8
	toStack bool
	stIndex uint8
	val     uint16
}

// Machine is one Dorado processor with its memory system, IFU, and devices.
type Machine struct {
	cfg Config

	im  [microcode.StoreSize]microcode.Word
	dim [microcode.StoreSize]decoded // predecode cache, in step with im
	mem *memory.System
	ifu *ifu.Unit

	devs   [NumTasks]device.Device // by task number
	byAddr [NumTasks]device.Device // by IOADDRESS (low 4 bits)
	att    []attachedDev           // attached devices in task order (hot loop)
	// anyIdler: at least one attached device implements device.Idler, so
	// the translated path can try the quiet-horizon device-scan hoist.
	anyIdler bool

	// Control section (§6.2).
	tasks    [NumTasks]taskState
	ready    uint16 // READY flipflops: preempted or explicitly-readied tasks
	bestNext int    // BESTNEXTTASK pipeline register
	curTask  int    // THISTASK
	lastTask int    // LASTTASK
	curPC    microcode.Addr

	// Data section (§6.3).
	rm       [256]uint16
	stack    [256]uint16 // four 64-word stacks (§6.3.3)
	stackPtr uint8       // [stack:2][word:6]
	count    uint16
	q        uint16
	rbase    uint8 // 4 bits
	membase  uint8 // 5 bits
	shiftCtl uint16
	alufm    [16]microcode.ALUCtl
	cpreg    uint16

	pend pendingWrite // NoBypass delayed write

	tracer Tracer
	rec    *obs.Recorder // attached metrics recorder, or nil (the fast path)
	trans  *translator   // superblock translator, or nil (predecoded path)
	prof   *Profiler     // microarchitectural profiler, or nil (the fast path)

	halted bool
	haltPC microcode.Addr
	cycle  uint64
	stalls uint64 // DelayedBranch dead cycles owed
	stats  Stats
}

// Stats counts processor activity.
type Stats struct {
	Cycles       uint64
	Executed     uint64 // instructions completed (not held)
	Holds        uint64
	HoldMD       uint64 // held on memory data not ready
	HoldMem      uint64 // held on memory unable to accept a reference
	HoldIFU      uint64 // held on IFU dispatch/operand not ready
	TaskSwitches uint64
	Blocks       uint64
	Preemptions  uint64
	BranchStalls uint64 // DelayedBranch ablation dead cycles
	TaskCycles   [NumTasks]uint64
	TaskExecuted [NumTasks]uint64
}

// Utilization returns the fraction of cycles spent running task t.
func (s *Stats) Utilization(t int) float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.TaskCycles[t]) / float64(s.Cycles)
}

// New builds a Machine.
func New(cfg Config) (*Machine, error) {
	mem, err := memory.New(cfg.Memory)
	if err != nil {
		return nil, err
	}
	if cfg.Translation.Enable {
		if cfg.Reference {
			return nil, fmt.Errorf("core: Translation requires the predecoded path, not Reference")
		}
		if cfg.Options != (Options{}) {
			return nil, fmt.Errorf("core: Translation supports only the as-built machine (Options must be zero)")
		}
	}
	m := &Machine{
		cfg:   cfg,
		mem:   mem,
		ifu:   ifu.New(mem, cfg.IFU),
		alufm: microcode.DefaultALUFM(),
	}
	if cfg.Translation.Enable {
		m.trans = &translator{cfg: cfg.Translation.withDefaults()}
	}
	// Unloaded microstore halts immediately.
	for i := range m.im {
		m.im[i] = microcode.Word{FF: microcode.FFHalt}
	}
	m.predecodeAll()
	if ft := cfg.FaultTask; ft > 0 && ft < NumTasks {
		mem.OnFault(func(memory.Fault) { m.ready |= 1 << ft })
	}
	return m, nil
}

// Mem returns the memory system.
func (m *Machine) Mem() *memory.System { return m.mem }

// IFU returns the instruction fetch unit.
func (m *Machine) IFU() *ifu.Unit { return m.ifu }

// Load installs a microstore image (e.g. masm.Program.Words) and rebuilds
// the predecode cache. Reloading an identical image is a no-op — the
// derived caches (predecode, superblocks) stay warm, which matters to
// callers that re-Load the same program per work item (BitBlt runs one
// Setup per blit).
func (m *Machine) Load(im *[microcode.StoreSize]microcode.Word) {
	if m.im == *im {
		return
	}
	m.im = *im
	m.predecodeAll()
	m.trans.reset()
}

// SetIM writes one microstore word. This is the invalidation point of the
// predecode layer: the written word is re-decoded immediately, so a
// subsequent fetch of a executes the new instruction on both the fast and
// the reference path. Loaders and the console must route single-word
// microstore writes through here (bulk images go through Load). The
// superblock caches are flushed whole — any block may have fused the old
// word — and rebuild from fresh profiles.
func (m *Machine) SetIM(a microcode.Addr, w microcode.Word) {
	a &= microcode.AddrMask
	if m.im[a] == w {
		return // rewriting the same word invalidates nothing
	}
	m.im[a] = w
	m.dim[a] = decodeWord(w)
	m.trans.reset()
}

// IM reads one microstore word.
func (m *Machine) IM(a microcode.Addr) microcode.Word { return m.im[a&microcode.AddrMask] }

// attachedDev pairs a device with its precomputed wakeup-line bit so the
// scheduler's hot loop touches only live controllers.
type attachedDev struct {
	dev  device.Device
	task int
	bit  uint16
	// idler is dev's optional quiet-horizon view (device.Idler), resolved
	// once at Attach so the translated path's hot loop never type-asserts;
	// nil when the device does not implement it.
	idler device.Idler
}

// Attach registers a device on its task number; its IOADDRESS is the task
// number as well (the convention all bundled microcode uses).
func (m *Machine) Attach(d device.Device) error {
	t := d.Task()
	if t <= 0 || t >= NumTasks {
		return fmt.Errorf("core: device task %d out of range 1..15", t)
	}
	if m.devs[t] != nil {
		return fmt.Errorf("core: task %d already has a device", t)
	}
	m.devs[t] = d
	m.byAddr[t] = d
	// Rebuild the compact device list in task order, so Tick and wakeup
	// sampling visit controllers exactly as the 16-slot scan did.
	m.att = m.att[:0]
	m.anyIdler = false
	for task := 1; task < NumTasks; task++ {
		if dev := m.devs[task]; dev != nil {
			idler, _ := dev.(device.Idler)
			if idler != nil {
				m.anyIdler = true
			}
			m.att = append(m.att, attachedDev{dev: dev, task: task, bit: 1 << task, idler: idler})
		}
	}
	return nil
}

// Start boots (or re-boots) the machine: task 0 begins executing at a on
// the next Step, and a previous Halt is cleared.
func (m *Machine) Start(a microcode.Addr) {
	m.SetTPC(0, a)
	m.curTask = 0
	m.curPC = a
	m.halted = false
}

// SetTPC sets a task's microcode program counter. Call before running, and
// for every task that has a device (a wakeup to a task with a zero TPC runs
// whatever is at microstore address 0).
func (m *Machine) SetTPC(task int, a microcode.Addr) { m.tasks[task&15].tpc = a }

// TPC reads a task's program counter.
func (m *Machine) TPC(task int) microcode.Addr { return m.tasks[task&15].tpc }

// Halted reports whether the machine has executed FF Halt.
func (m *Machine) Halted() bool { return m.halted }

// HaltPC returns the address of the halting instruction.
func (m *Machine) HaltPC() microcode.Addr { return m.haltPC }

// Cycle returns the current cycle number.
func (m *Machine) Cycle() uint64 { return m.cycle }

// Stats returns a snapshot of the counters.
func (m *Machine) Stats() Stats {
	s := m.stats
	s.Cycles = m.cycle
	return s
}

// Register accessors for tests, loaders, and the console.

// RM reads general register i (absolute index, not RBASE-relative).
func (m *Machine) RM(i int) uint16 { return m.rm[i&0xFF] }

// SetRM writes general register i.
func (m *Machine) SetRM(i int, v uint16) { m.rm[i&0xFF] = v }

// T reads a task's T register.
func (m *Machine) T(task int) uint16 { return m.tasks[task&15].t }

// SetT writes a task's T register.
func (m *Machine) SetT(task int, v uint16) { m.tasks[task&15].t = v }

// Count reads COUNT.
func (m *Machine) Count() uint16 { return m.count }

// SetCount writes COUNT.
func (m *Machine) SetCount(v uint16) { m.count = v }

// Q reads the multiply/divide aid register.
func (m *Machine) Q() uint16 { return m.q }

// SetQ writes Q.
func (m *Machine) SetQ(v uint16) { m.q = v }

// StackPtr reads STACKPTR ([stack:2][word:6]).
func (m *Machine) StackPtr() uint8 { return m.stackPtr }

// SetStackPtr writes STACKPTR.
func (m *Machine) SetStackPtr(v uint8) { m.stackPtr = v }

// Stack reads stack word i (absolute index into the 256-word stack memory).
func (m *Machine) Stack(i int) uint16 { return m.stack[i&0xFF] }

// SetStack writes stack word i.
func (m *Machine) SetStack(i int, v uint16) { m.stack[i&0xFF] = v }

// RBase reads the RM bank register.
func (m *Machine) RBase() uint8 { return m.rbase }

// SetRBase writes the RM bank register.
func (m *Machine) SetRBase(v uint8) { m.rbase = v & 0xF }

// MemBase reads the 5-bit base-register selector.
func (m *Machine) MemBase() uint8 { return m.membase }

// SetMemBase writes the base-register selector.
func (m *Machine) SetMemBase(v uint8) { m.membase = v & 0x1F }

// SetIOAddress sets a task's IOADDRESS register.
func (m *Machine) SetIOAddress(task int, v uint16) { m.tasks[task&15].ioadr = v }

// ShiftCtl reads the SHIFTCTL register.
func (m *Machine) ShiftCtl() uint16 { return m.shiftCtl }

// SetShiftCtl writes the SHIFTCTL register.
func (m *Machine) SetShiftCtl(v uint16) { m.shiftCtl = v }

// CPReg reads the console-processor register (§6.2.3).
func (m *Machine) CPReg() uint16 { return m.cpreg }

// SetCPReg writes the console-processor register.
func (m *Machine) SetCPReg(v uint16) { m.cpreg = v }

// CurTask returns the task executing in the current cycle.
func (m *Machine) CurTask() int { return m.curTask }

// CurPC returns the address of the instruction executing this cycle.
func (m *Machine) CurPC() microcode.Addr { return m.curPC }

// TraceEvent describes one executed (or held) cycle for a Tracer.
type TraceEvent struct {
	Cycle uint64
	Task  int
	PC    microcode.Addr
	Held  bool
	Word  microcode.Word
}

// Tracer receives one event per cycle when installed (debugging aid;
// stands in for the Dorado's console-processor monitoring, §6.2).
type Tracer interface {
	Trace(ev TraceEvent)
}

// SetTracer installs (or, with nil, removes) a cycle tracer.
func (m *Machine) SetTracer(t Tracer) { m.tracer = t }

// SetRecorder attaches (or, with nil, detaches) a metrics recorder: the
// hot loop then feeds it one obs.Recorder.Cycle call per cycle — wakeup
// edges, hold episodes, scheduling spans, utilization samples. Detached
// (the default), the only cost is a nil check per cycle; the bench guard
// (cmd/benchguard) enforces both budgets.
func (m *Machine) SetRecorder(r *obs.Recorder) { m.rec = r }

// Recorder returns the attached metrics recorder, or nil.
func (m *Machine) Recorder() *obs.Recorder { return m.rec }
