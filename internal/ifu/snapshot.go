package ifu

import (
	"fmt"

	"dorado/internal/microcode"
	"dorado/internal/state"
)

const (
	sectIFUConfig = "IFUC"
	sectIFUState  = "IFUS"
)

// SaveState appends the IFU's state: configuration fingerprint, decode
// table, prefetch buffer, operand latch, timing, and counters.
func (u *Unit) SaveState(e *state.Encoder) {
	e.Section(sectIFUConfig)
	e.U32(uint32(u.cfg.FetchLatency))
	e.U32(uint32(u.cfg.BufferBytes))
	e.U32(uint32(u.cfg.DecodeLatency))

	e.Section(sectIFUState)
	e.Bool(u.hasIll)
	e.U16(uint16(u.Illegal))
	e.U32(u.codeBase)
	e.U32(u.bytePC)
	e.U32(u.headPC)
	e.U64(u.readyAt)
	e.Bool(u.running)
	e.Bytes32(u.buf)
	e.U16(u.ops[0])
	e.U16(u.ops[1])
	e.U8(u.opHead)
	e.U8(u.opLen)
	saveEntry(e, &u.last)
	e.U64(u.stats.Dispatches)
	e.U64(u.stats.Resets)
	e.U64(u.stats.BytesRead)
	e.U64(u.stats.WordsFetch)
	for i := range u.table {
		saveEntry(e, &u.table[i])
	}
}

func saveEntry(e *state.Encoder, ent *Entry) {
	e.Bool(ent.Valid)
	e.U16(uint16(ent.Handler))
	e.U8(uint8(ent.Operands))
	e.Bool(ent.Wide)
	e.Bool(ent.LoadMemBase)
	e.U8(ent.MemBase)
	e.String(ent.Name)
}

func loadEntry(d *state.Decoder, ent *Entry) {
	ent.Valid = d.Bool()
	ent.Handler = microcode.Addr(d.U16())
	ent.Operands = int(d.U8())
	ent.Wide = d.Bool()
	ent.LoadMemBase = d.Bool()
	ent.MemBase = d.U8()
	ent.Name = d.String()
}

// LoadState restores the IFU from a snapshot taken by SaveState. The target
// unit must have been built with the identical timing configuration.
func (u *Unit) LoadState(d *state.Decoder) error {
	if err := d.Section(sectIFUConfig); err != nil {
		return err
	}
	got := Config{
		FetchLatency:  int(d.U32()),
		BufferBytes:   int(d.U32()),
		DecodeLatency: int(d.U32()),
	}
	if err := d.Err(); err != nil {
		return err
	}
	if got != u.cfg {
		return fmt.Errorf("ifu: snapshot config %+v, machine config %+v", got, u.cfg)
	}

	if err := d.Section(sectIFUState); err != nil {
		return err
	}
	u.hasIll = d.Bool()
	u.Illegal = microcode.Addr(d.U16())
	u.codeBase = d.U32()
	u.bytePC = d.U32()
	u.headPC = d.U32()
	u.readyAt = d.U64()
	u.running = d.Bool()
	buf := d.Bytes32()
	if len(buf) > u.cfg.BufferBytes {
		return fmt.Errorf("ifu: snapshot buffer holds %d bytes, capacity is %d", len(buf), u.cfg.BufferBytes)
	}
	// Full capacity up front, as in Reset: the prefetcher's appends must
	// stay within the backing array so Step never allocates.
	u.buf = make([]byte, len(buf), u.cfg.BufferBytes)
	copy(u.buf, buf)
	u.ops[0] = d.U16()
	u.ops[1] = d.U16()
	u.opHead = d.U8()
	u.opLen = d.U8()
	loadEntry(d, &u.last)
	u.stats.Dispatches = d.U64()
	u.stats.Resets = d.U64()
	u.stats.BytesRead = d.U64()
	u.stats.WordsFetch = d.U64()
	for i := range u.table {
		loadEntry(d, &u.table[i])
	}
	return d.Err()
}
