// Package ifu models the Dorado instruction fetch unit (described in the
// companion report: Lampson et al., "An instruction fetch unit for a
// high-performance personal computer").
//
// The IFU fetches the macroinstruction byte stream, decodes opcodes and
// operands using a writable decode table, and presents two things to the
// processor (§5.8 of the processor paper):
//
//   - the handler microaddress for the next macroinstruction, consumed by
//     the IFUJUMP NextControl: "any microinstruction can specify that it is
//     the last of a macroinstruction, in which case the successor address
//     is supplied by the IFU";
//   - operand bytes on the IFUDATA bus: "as each operand is used, the IFU
//     provides the next one on IFUDATA".
//
// When the IFU has not finished decoding (after a jump, or when its
// prefetcher falls behind), an IFUJUMP or IFUDATA use is held, exactly like
// a memory Hold (§5.7).
//
// Timing model: the IFU owns a cache port that delivers one word (two
// bytes) per cycle into a small byte buffer after a fixed startup latency.
// A macroinstruction can dispatch when all its bytes are buffered and one
// decode cycle has passed, which sustains back-to-back one-cycle simple
// opcodes (the paper's headline "executes a simple macroinstruction in one
// cycle") while charging a restart penalty after jumps.
package ifu

import (
	"fmt"

	"dorado/internal/memory"
	"dorado/internal/microcode"
)

// Entry is one decode-table row: how the IFU handles one opcode byte.
type Entry struct {
	// Valid marks the opcode as implemented; dispatching an invalid opcode
	// returns the table's Illegal handler.
	Valid bool
	// Handler is the microstore address of the opcode's emulator microcode.
	Handler microcode.Addr
	// Operands is the number of operand bytes following the opcode (0..2).
	Operands int
	// Wide presents two operand bytes as one 16-bit IFUDATA value
	// (alpha<<8 | beta) in a single read instead of two byte reads.
	Wide bool
	// LoadMemBase, when set, makes the dispatch load the processor's
	// MEMBASE register with MemBase — §6.3.3: MEMBASE "can be loaded from
	// the IFU at the start of a macroinstruction".
	LoadMemBase bool
	// MemBase is the MEMBASE value for LoadMemBase (0..31).
	MemBase uint8
	// Name labels the opcode in traces and errors.
	Name string
}

// Config sizes the IFU timing model.
type Config struct {
	// FetchLatency is the startup delay, in cycles, before the first word
	// of a refill arrives (default 2 — a cache hit).
	FetchLatency int
	// BufferBytes is the prefetch buffer capacity (default 8, enough to
	// cover decode of the longest instruction plus prefetch slack).
	BufferBytes int
	// DecodeLatency is the pipeline delay, in cycles, between the bytes of
	// an instruction arriving and its dispatch being ready (default 1).
	DecodeLatency int
}

func (c Config) withDefaults() Config {
	if c.FetchLatency == 0 {
		c.FetchLatency = 2
	}
	if c.BufferBytes == 0 {
		c.BufferBytes = 8
	}
	if c.DecodeLatency == 0 {
		c.DecodeLatency = 1
	}
	return c
}

// Stats counts IFU activity.
type Stats struct {
	Dispatches uint64 // macroinstructions dispatched
	Resets     uint64 // jumps/restarts
	BytesRead  uint64 // bytes consumed from the stream
	WordsFetch uint64 // words prefetched from memory
}

// Unit is the instruction fetch unit.
type Unit struct {
	cfg   Config
	mem   *memory.System
	table [256]Entry
	// Illegal is the handler used for invalid opcodes (set it before
	// running; dispatching an invalid opcode without it is an error and
	// halts decode).
	Illegal microcode.Addr
	hasIll  bool

	codeBase uint32 // word VA of byte 0 of the code segment

	bytePC  uint32 // byte offset of the next *unbuffered* byte (prefetch head)
	buf     []byte // prefetched bytes; buf[0] is at stream position headPC
	headPC  uint32 // byte offset of buf[0]
	readyAt uint64 // cycle at which buffered bytes become usable (refill/decode latency)

	// Current (dispatched) instruction's pending operands. A fixed array
	// (instructions carry at most one wide or two byte operands) so the
	// dispatch/consume cycle never allocates.
	ops    [2]uint16
	opHead uint8 // next operand to deliver
	opLen  uint8 // operands latched by the current instruction
	last   Entry // most recently dispatched entry

	running bool
	stats   Stats
}

// New builds an IFU reading code through mem.
func New(mem *memory.System, cfg Config) *Unit {
	return &Unit{cfg: cfg.withDefaults(), mem: mem}
}

// SetEntry installs a decode-table row for opcode op.
func (u *Unit) SetEntry(op uint8, e Entry) error {
	if e.Operands < 0 || e.Operands > 2 {
		return fmt.Errorf("ifu: opcode %#02x: %d operand bytes (max 2)", op, e.Operands)
	}
	if e.Wide && e.Operands != 2 {
		return fmt.Errorf("ifu: opcode %#02x: Wide requires 2 operand bytes", op)
	}
	e.Valid = true
	u.table[op] = e
	return nil
}

// ResetTable clears every decode entry and the Illegal handler (rebooting
// a different emulator on the same machine).
func (u *Unit) ResetTable() {
	u.table = [256]Entry{}
	u.hasIll = false
	u.Illegal = 0
}

// SetIllegal installs the handler for invalid opcodes.
func (u *Unit) SetIllegal(h microcode.Addr) {
	u.Illegal = h
	u.hasIll = true
}

// SetCodeBase points the IFU at the word VA holding byte 0 of the
// macroprogram. Byte n lives in the high (even n) or low (odd n) half of
// word codeBase+n/2.
func (u *Unit) SetCodeBase(va uint32) { u.codeBase = va }

// Stats returns a snapshot of the counters.
func (u *Unit) Stats() Stats { return u.stats }

// PC returns the byte offset of the next macroinstruction to dispatch.
func (u *Unit) PC() uint32 { return u.headPC }

// Running reports whether the IFU is fetching — a Reset has started it and
// nothing has stopped it since. A stopped IFU's Tick is a no-op.
func (u *Unit) Running() bool { return u.running }

// Reset restarts the IFU at byte offset pc (the FF IFUReset operation; B
// carries the 16-bit target). The buffer refills from scratch, modeling the
// macro-jump penalty.
func (u *Unit) Reset(pc uint16, now uint64) {
	u.bytePC = uint32(pc)
	u.headPC = uint32(pc)
	if cap(u.buf) < u.cfg.BufferBytes {
		// Full capacity up front: with the copy-down in Dispatch, the
		// buffer never reallocates again, keeping Step allocation-free.
		u.buf = make([]byte, 0, u.cfg.BufferBytes)
	}
	u.buf = u.buf[:0]
	u.opHead, u.opLen = 0, 0
	u.readyAt = now + uint64(u.cfg.FetchLatency)
	u.running = true
	u.stats.Resets++
}

// Tick advances the prefetcher one cycle: after the startup latency, one
// word (two bytes) arrives per cycle until the buffer is full.
func (u *Unit) Tick(now uint64) {
	if !u.running || len(u.buf)+2 > u.cfg.BufferBytes || now < u.readyAt {
		return
	}
	// Fetch the word containing bytePC. Byte order within the stream is
	// high byte first.
	w := u.mem.Peek(u.codeBase + u.bytePC/2)
	if u.bytePC%2 == 0 {
		u.buf = append(u.buf, byte(w>>8), byte(w))
		u.bytePC += 2
	} else {
		u.buf = append(u.buf, byte(w))
		u.bytePC++
	}
	u.stats.WordsFetch++
}

// peekEntry returns the decode entry for the buffered opcode. An invalid
// opcode with no Illegal handler never becomes ready (the machine holds
// until its cycle limit; set an Illegal handler in real microcode).
func (u *Unit) peekEntry() (Entry, bool) {
	if len(u.buf) == 0 {
		return Entry{}, false
	}
	e := u.table[u.buf[0]]
	if !e.Valid {
		if !u.hasIll {
			return Entry{}, false
		}
		e = Entry{Valid: true, Handler: u.Illegal, Name: "ILLEGAL"}
	}
	if len(u.buf) < 1+e.Operands {
		return Entry{}, false
	}
	return e, true
}

// DispatchReady reports whether an IFUJUMP can complete at cycle now: the
// next instruction's bytes are buffered and decoded. When false the
// processor holds.
func (u *Unit) DispatchReady(now uint64) bool {
	if !u.running || now < u.readyAt+uint64(u.cfg.DecodeLatency) {
		return false
	}
	_, ok := u.peekEntry()
	return ok
}

// Dispatch consumes the next macroinstruction: it returns the handler
// address and latches the instruction's operands for IFUDATA. Call only
// when DispatchReady. The full decode entry is available from LastEntry
// (the processor applies LoadMemBase from it).
func (u *Unit) Dispatch(now uint64) microcode.Addr {
	e, ok := u.peekEntry()
	if !ok {
		panic("ifu: Dispatch while not ready (processor must Hold)")
	}
	u.last = e
	n := 1 + e.Operands
	u.opHead, u.opLen = 0, 0
	if e.Wide {
		u.ops[0] = uint16(u.buf[1])<<8 | uint16(u.buf[2])
		u.opLen = 1
	} else {
		for i := 0; i < e.Operands; i++ {
			u.ops[i] = uint16(u.buf[1+i])
		}
		u.opLen = uint8(e.Operands)
	}
	// Copy-down instead of re-slicing: the buffer keeps its backing array,
	// so the prefetcher's appends stay within capacity (no allocation).
	u.buf = u.buf[:copy(u.buf, u.buf[n:])]
	u.headPC += uint32(n)
	u.stats.BytesRead += uint64(n)
	u.stats.Dispatches++
	return e.Handler
}

// PeekOperand returns the next operand without consuming it (the processor
// uses it during its hold phase to form a memory address it may not be able
// to issue this cycle). Call only when OperandReady.
func (u *Unit) PeekOperand() uint16 {
	if u.opHead >= u.opLen {
		panic("ifu: PeekOperand with no operand")
	}
	return u.ops[u.opHead]
}

// LastEntry returns the decode entry of the most recent Dispatch.
func (u *Unit) LastEntry() Entry { return u.last }

// OperandReady reports whether an IFUDATA read can complete: dispatch has
// latched at least one unconsumed operand. Operands are buffered with the
// instruction, so they are ready as soon as it dispatches.
func (u *Unit) OperandReady() bool { return u.opHead < u.opLen }

// Operand consumes the next operand ("as each operand is used, the IFU
// provides the next one", §6.3.2). Call only when OperandReady.
func (u *Unit) Operand() uint16 {
	if u.opHead >= u.opLen {
		panic("ifu: IFUDATA read with no operand (processor must Hold)")
	}
	v := u.ops[u.opHead]
	u.opHead++
	return v
}
