package ifu

import (
	"testing"

	"dorado/internal/memory"
)

// loadBytes writes a byte stream into memory at word VA base.
func loadBytes(m *memory.System, base uint32, bs []byte) {
	for i := 0; i+1 < len(bs); i += 2 {
		m.Poke(base+uint32(i/2), uint16(bs[i])<<8|uint16(bs[i+1]))
	}
	if len(bs)%2 == 1 {
		m.Poke(base+uint32(len(bs)/2), uint16(bs[len(bs)-1])<<8)
	}
}

func newUnit(t *testing.T, bs []byte) *Unit {
	t.Helper()
	m, err := memory.New(memory.Config{})
	if err != nil {
		t.Fatal(err)
	}
	loadBytes(m, 0x1000, bs)
	u := New(m, Config{})
	u.SetCodeBase(0x1000)
	return u
}

// run ticks the unit until DispatchReady or the deadline.
func waitReady(t *testing.T, u *Unit, from uint64, deadline uint64) uint64 {
	t.Helper()
	for now := from; now < deadline; now++ {
		u.Tick(now)
		if u.DispatchReady(now) {
			return now
		}
	}
	t.Fatalf("dispatch never ready by cycle %d", deadline)
	return 0
}

func TestDispatchSimpleOpcode(t *testing.T) {
	u := newUnit(t, []byte{0x10, 0x10, 0x10})
	if err := u.SetEntry(0x10, Entry{Handler: 0x123, Name: "NOP"}); err != nil {
		t.Fatal(err)
	}
	u.Reset(0, 0)
	now := waitReady(t, u, 0, 100)
	if h := u.Dispatch(now); h != 0x123 {
		t.Fatalf("handler = %v", h)
	}
	if u.PC() != 1 {
		t.Errorf("PC = %d after 1-byte dispatch", u.PC())
	}
}

func TestDispatchNotReadyBeforeLatency(t *testing.T) {
	u := newUnit(t, []byte{0x10})
	u.SetEntry(0x10, Entry{Handler: 1})
	u.Reset(0, 100)
	// FetchLatency 2 + DecodeLatency 1: nothing before cycle 103.
	for now := uint64(100); now < 103; now++ {
		u.Tick(now)
		if u.DispatchReady(now) {
			t.Fatalf("ready too early at %d", now)
		}
	}
}

func TestOperandsByteAndWide(t *testing.T) {
	u := newUnit(t, []byte{0x20, 0xAB, 0x30, 0xCD, 0xEF, 0x10})
	u.SetEntry(0x10, Entry{Handler: 1, Name: "zero"})
	u.SetEntry(0x20, Entry{Handler: 2, Operands: 1, Name: "one"})
	u.SetEntry(0x30, Entry{Handler: 3, Operands: 2, Wide: true, Name: "wide"})
	u.Reset(0, 0)

	now := waitReady(t, u, 0, 100)
	if h := u.Dispatch(now); h != 2 {
		t.Fatalf("first handler = %v", h)
	}
	if !u.OperandReady() {
		t.Fatal("operand not ready after dispatch")
	}
	if v := u.Operand(); v != 0x00AB {
		t.Errorf("alpha = %#04x", v)
	}
	if u.OperandReady() {
		t.Error("extra operand after consuming alpha")
	}

	now = waitReady(t, u, now+1, now+100)
	if h := u.Dispatch(now); h != 3 {
		t.Fatalf("second handler = %v", h)
	}
	if v := u.Operand(); v != 0xCDEF {
		t.Errorf("wide operand = %#04x", v)
	}

	now = waitReady(t, u, now+1, now+100)
	if h := u.Dispatch(now); h != 1 {
		t.Fatalf("third handler = %v", h)
	}
	if u.OperandReady() {
		t.Error("zero-operand opcode latched operands")
	}
}

func TestBackToBackDispatchRate(t *testing.T) {
	// With a warm buffer, 1-byte opcodes dispatch every cycle: "a simple
	// macroinstruction in one cycle".
	code := make([]byte, 64)
	for i := range code {
		code[i] = 0x10
	}
	u := newUnit(t, code)
	u.SetEntry(0x10, Entry{Handler: 7})
	u.Reset(0, 0)
	now := waitReady(t, u, 0, 100)
	// Let the buffer fill fully.
	for ; now < 20; now++ {
		u.Tick(now)
	}
	dispatches := 0
	for ; now < 30; now++ {
		u.Tick(now)
		if !u.DispatchReady(now) {
			t.Fatalf("buffer underrun at cycle %d after %d dispatches", now, dispatches)
		}
		u.Dispatch(now)
		dispatches++
	}
	if dispatches != 10 {
		t.Fatalf("dispatched %d in 10 cycles", dispatches)
	}
}

func TestResetPenalty(t *testing.T) {
	u := newUnit(t, []byte{0x10, 0x10, 0x10, 0x10})
	u.SetEntry(0x10, Entry{Handler: 7})
	u.Reset(0, 0)
	first := waitReady(t, u, 0, 100)
	if first < 3 {
		t.Errorf("first dispatch ready at %d; want ≥3 (fetch 2 + decode 1)", first)
	}
	// A jump (Reset) pays the same restart penalty.
	u.Reset(2, 1000)
	again := waitReady(t, u, 1000, 1100)
	if again-1000 < 3 {
		t.Errorf("post-jump dispatch ready after %d cycles; want ≥3", again-1000)
	}
}

func TestIllegalOpcode(t *testing.T) {
	u := newUnit(t, []byte{0x99})
	u.SetIllegal(0xABC)
	u.Reset(0, 0)
	now := waitReady(t, u, 0, 100)
	if h := u.Dispatch(now); h != 0xABC {
		t.Fatalf("illegal handler = %v", h)
	}
}

func TestIllegalWithoutHandlerNeverReady(t *testing.T) {
	u := newUnit(t, []byte{0x99})
	u.Reset(0, 0)
	for now := uint64(0); now < 50; now++ {
		u.Tick(now)
		if u.DispatchReady(now) {
			t.Fatal("invalid opcode became ready without an Illegal handler")
		}
	}
}

func TestOddByteAlignment(t *testing.T) {
	// Jumping to an odd byte offset must fetch the low half of the word.
	u := newUnit(t, []byte{0x10, 0x20, 0xAB})
	u.SetEntry(0x20, Entry{Handler: 5, Operands: 1})
	u.Reset(1, 0)
	now := waitReady(t, u, 0, 100)
	if h := u.Dispatch(now); h != 5 {
		t.Fatalf("handler = %v", h)
	}
	if v := u.Operand(); v != 0xAB {
		t.Errorf("operand = %#02x", v)
	}
}

func TestSetEntryValidation(t *testing.T) {
	u := newUnit(t, nil)
	if err := u.SetEntry(1, Entry{Operands: 3}); err == nil {
		t.Error("want error for 3 operands")
	}
	if err := u.SetEntry(1, Entry{Operands: 1, Wide: true}); err == nil {
		t.Error("want error for Wide with 1 operand")
	}
}

func TestStats(t *testing.T) {
	u := newUnit(t, []byte{0x20, 0x01, 0x20, 0x02})
	u.SetEntry(0x20, Entry{Handler: 1, Operands: 1})
	u.Reset(0, 0)
	now := waitReady(t, u, 0, 100)
	u.Dispatch(now)
	now = waitReady(t, u, now+1, now+100)
	u.Dispatch(now)
	st := u.Stats()
	if st.Dispatches != 2 || st.BytesRead != 4 || st.Resets != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLastEntryAndMemBase(t *testing.T) {
	u := newUnit(t, []byte{0x11, 0x10})
	u.SetEntry(0x10, Entry{Handler: 1, Name: "PLAIN"})
	u.SetEntry(0x11, Entry{Handler: 2, Name: "MB", LoadMemBase: true, MemBase: 7})
	u.Reset(0, 0)
	now := waitReady(t, u, 0, 100)
	u.Dispatch(now)
	if e := u.LastEntry(); !e.LoadMemBase || e.MemBase != 7 || e.Name != "MB" {
		t.Fatalf("LastEntry = %+v", e)
	}
	now = waitReady(t, u, now+1, now+100)
	u.Dispatch(now)
	if e := u.LastEntry(); e.LoadMemBase {
		t.Fatalf("LastEntry did not update: %+v", e)
	}
}

func TestPeekOperandDoesNotConsume(t *testing.T) {
	u := newUnit(t, []byte{0x20, 0x55})
	u.SetEntry(0x20, Entry{Handler: 1, Operands: 1})
	u.Reset(0, 0)
	now := waitReady(t, u, 0, 100)
	u.Dispatch(now)
	if u.PeekOperand() != 0x55 || u.PeekOperand() != 0x55 {
		t.Fatal("peek consumed or returned wrong value")
	}
	if u.Operand() != 0x55 {
		t.Fatal("operand after peek")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PeekOperand on empty should panic (simulator-usage bug)")
		}
	}()
	u.PeekOperand()
}
