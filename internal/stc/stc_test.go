package stc

import (
	"strings"
	"testing"

	"dorado/internal/core"
	"dorado/internal/emulator"
)

// run compiles and executes src, returning the raw top-of-stack word.
func run(t *testing.T, src string) uint16 {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	st, err := emulator.BuildSmalltalk()
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.InstallOn(m); err != nil {
		t.Fatal(err)
	}
	prog.InstallOn(m) // after InstallOn: the image must survive booting
	if !m.Run(50_000_000) {
		t.Fatalf("did not halt (task %d pc %v)", m.CurTask(), m.CurPC())
	}
	depth := int(m.StackPtr() & 0x3F)
	if depth != 1 {
		t.Fatalf("stack depth %d at halt", depth)
	}
	return m.Stack(1)
}

func tagged(v uint16) uint16 { return v<<1 | 1 }

func TestLiteralAndAdd(t *testing.T) {
	if got := run(t, "(+ 20 22)"); got != tagged(42) {
		t.Fatalf("got %d", got)
	}
}

func TestFieldAccessThroughSend(t *testing.T) {
	src := `
(class Point (x y)
  (method getx () (field x))
  (method gety () (field y))
  (method sum () (+ (field x) (field y))))
(instance p Point 30 12)
(send p sum)
`
	if got := run(t, src); got != tagged(42) {
		t.Fatalf("sum = %d", got)
	}
}

func TestSendWithArguments(t *testing.T) {
	src := `
(class Point (x y)
  (method plus (n) (+ (field x) n)))
(instance p Point 40 0)
(send p plus 2)
`
	if got := run(t, src); got != tagged(42) {
		t.Fatalf("plus = %d", got)
	}
}

func TestSetFieldMutates(t *testing.T) {
	src := `
(class Counter (n)
  (method bump (d) (setfield n (+ (field n) d)))
  (method value () (field n)))
(instance c Counter 0)
(send c bump 20)
(send c bump 22)
(send c value)
`
	if got := run(t, src); got != tagged(42) {
		t.Fatalf("counter = %d", got)
	}
}

func TestPolymorphism(t *testing.T) {
	// Two classes answer the same selector differently.
	src := `
(class Cat ()
  (method legs () 4))
(class Bird ()
  (method legs () 2))
(instance felix Cat)
(instance tweety Bird)
(+ (send felix legs) (send tweety legs))
`
	if got := run(t, src); got != tagged(6) {
		t.Fatalf("legs = %d", got)
	}
}

func TestIntegerClassMethods(t *testing.T) {
	// Tagged integers dispatch through the SmallInteger class slot.
	src := `
(class Integer ()
  (method double () (+ self self))
  (method plus (n) (+ self n)))
(send (send 10 double) plus 22)
`
	if got := run(t, src); got != tagged(42) {
		t.Fatalf("integer methods = %d", got)
	}
}

func TestSelfSendsAndNesting(t *testing.T) {
	src := `
(class Point (x y)
  (method getx () (field x))
  (method gety () (field y))
  (method manhattan () (+ (send self getx) (send self gety))))
(instance p Point 17 25)
(send p manhattan)
`
	if got := run(t, src); got != tagged(42) {
		t.Fatalf("manhattan = %d", got)
	}
}

func TestObjectsAsArguments(t *testing.T) {
	src := `
(class Point (x y)
  (method getx () (field x))
  (method addx (other) (+ (field x) (send other getx))))
(instance a Point 30 0)
(instance b Point 12 0)
(send a addx b)
`
	if got := run(t, src); got != tagged(42) {
		t.Fatalf("addx = %d", got)
	}
}

func TestSequenceDiscards(t *testing.T) {
	src := `
(class Counter (n)
  (method bump () (setfield n (+ (field n) 1)))
  (method value () (field n)))
(instance c Counter 0)
(send c bump)
(send c bump)
(send c bump)
(send c value)
`
	if got := run(t, src); got != tagged(3) {
		t.Fatalf("bumps = %d", got)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"(send q getx)", "unbound"},
		{"(class P (x)) (instance p P 1 2) (send p getx)", "field"},
		{"(class P (x) (method m () (field y))) (instance p P 1) (send p m)", "no field"},
		{"(class P ()) (class P ()) 1", "twice"},
		{"(class P () (method m () self)) 1", ""}, // ok actually? self needs... method compiles fine; main is 1 — compiles.
		{"(field x)", "outside a method"},
		{"(setfield x 1)", "outside a method"},
		{"self", "outside a method"},
		{"(+ 1)", "takes 2"},
		{"(instance p Nope 1) 1", "unknown class"},
	}
	for _, c := range cases {
		_, err := Compile(c.src)
		if c.want == "" {
			if err != nil {
				t.Errorf("%q should compile: %v", c.src, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %v, want mention of %q", c.src, err, c.want)
		}
	}
}

func TestInheritance(t *testing.T) {
	// Square extends Rect: inherits fields and methods, overrides one.
	src := `
(class Rect (w h)
  (method width () (field w))
  (method kind () 1)
  (method sum () (+ (field w) (field h))))
(class Square (tag) (extends Rect)
  (method kind () 2))
(instance s Square 20 20 1)
(+ (+ (send s sum) (send s kind)) (send s width))
`
	// sum (inherited) = 40, kind (overridden) = 2, width (inherited) = 20.
	if got := run(t, src); got != tagged(62) {
		t.Fatalf("inheritance = %d, want %d", got, tagged(62))
	}
}

func TestInheritanceTwoLevels(t *testing.T) {
	src := `
(class A ()
  (method base () 7))
(class B () (extends A))
(class C () (extends B)
  (method own () 35))
(instance c C)
(+ (send c base) (send c own))
`
	if got := run(t, src); got != tagged(42) {
		t.Fatalf("two-level chain = %d", got)
	}
}

func TestMessageNotUnderstoodAtChainTop(t *testing.T) {
	src := `
(class A ())
(class B () (extends A))
(instance b B)
(send b nothing)
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	st, err := emulator.BuildSmalltalk()
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.InstallOn(m); err != nil {
		t.Fatal(err)
	}
	prog.InstallOn(m)
	if !m.Run(1_000_000) {
		t.Fatal("did not halt")
	}
	if m.HaltPC() != st.Micro.MustEntry("s.trap") {
		t.Fatalf("halted at %v, want the trap", m.HaltPC())
	}
}

func TestExtendsUnknownClass(t *testing.T) {
	if _, err := Compile("(class B () (extends Nope)) 1"); err == nil {
		t.Fatal("extends of unknown class should fail")
	}
}
