// Package stc compiles a small object language to the Smalltalk
// emulator's byte codes — the third of §3's byte-code compilers. It is the
// demanding customer of the SEND machinery: every operation on an object
// is a dynamic dispatch through the receiver's class and method
// dictionary, at the cost experiment E2 measures (~57 microinstructions a
// send).
//
// The syntax is s-expression shaped (see internal/lispc for the reader):
//
//	(class Point (x y)
//	  (method getx () (field x))
//	  (method plus (n) (+ (field x) n))
//	  (method bump (d) (setfield x (+ (field x) d))))
//	(instance p Point 30 12)
//	(send p plus 5)                         ; the main expression
//
// Semantics:
//
//   - Classes declare fields (instance variables) and methods; methods take
//     zero or more parameters and return their last expression's value.
//   - (instance name Class v...) creates a static instance in the heap
//     with the given (SmallInteger) field values.
//   - (send recv selector args...) is a message send; selectors are
//     resolved per receiver class at run time, so two classes may answer
//     the same selector differently.
//   - self, (field f), (setfield f e) work inside methods; parameters are
//     referred to by name. (+ a b) is SmallInteger addition (type-checked
//     by the emulator's microcode). Integer literals are auto-tagged.
//   - (class Integer () (method ...)) gives tagged integers methods.
//   - (class Sub (ownFields) (extends Super) methods...) inherits the
//     superclass's instance layout and methods; the SEND microcode walks
//     the superclass chain on a dictionary miss, trapping ("message not
//     understood") only at the top.
package stc

import (
	"fmt"

	"dorado/internal/core"
	"dorado/internal/emulator"
	"dorado/internal/lispc"
)

// Program is a compiled Smalltalk world: byte code, method headers, and
// the object memory image (classes, dictionaries, instances).
type Program struct {
	Code    []byte
	Methods []Method
	// Image maps heap word addresses to initial contents.
	Image map[uint32]uint16
	// Instances maps instance names to their oops.
	Instances map[string]uint16
	// Selectors maps selector names to their bytes.
	Selectors map[string]uint8
}

// Method records one compiled method.
type Method struct {
	Class, Name string
	Slot        uint16
	Entry       uint16
	Params      int
}

// Heap layout the compiler manages.
const (
	classBase    = emulator.VAHeap + 0x0100
	dictBase     = emulator.VAHeap + 0x0400
	instanceBase = emulator.VAHeap + 0x0A00
	methodSlot0  = 0x180 // global-area header slots
)

// Compile translates source text.
func Compile(src string) (*Program, error) {
	forms, err := lispc.ParseForms(src)
	if err != nil {
		return nil, err
	}
	st, err := emulator.BuildSmalltalk()
	if err != nil {
		return nil, err
	}
	c := &scompiler{
		asm:       emulator.NewAsm(st),
		classes:   map[string]*sclass{},
		selectors: map[string]uint8{},
		instances: map[string]uint16{},
		image:     map[uint32]uint16{},
	}
	if err := c.program(forms); err != nil {
		return nil, err
	}
	code, err := c.asm.Bytes()
	if err != nil {
		return nil, err
	}
	p := &Program{
		Code:      code,
		Image:     c.image,
		Instances: c.instances,
		Selectors: c.selectors,
	}
	for _, m := range c.methods {
		pc, err := c.asm.LabelPC(m.label)
		if err != nil {
			return nil, err
		}
		p.Methods = append(p.Methods, Method{
			Class: m.class, Name: m.sel, Slot: m.slot, Entry: pc, Params: m.params,
		})
	}
	// Patch method entry PCs into the image's header slots.
	for _, m := range p.Methods {
		p.Image[uint32(emulator.VAGlobal)+uint32(m.Slot)] = m.Entry
		p.Image[uint32(emulator.VAGlobal)+uint32(m.Slot)+1] = 0
	}
	return p, nil
}

// InstallOn loads the code and object memory.
func (p *Program) InstallOn(m *core.Machine) {
	emulator.LoadCode(m, p.Code)
	for addr, v := range p.Image {
		m.Mem().Poke(addr, v)
	}
}

type sclass struct {
	name   string
	fields map[string]uint8 // name → instance-variable index (0-based)
	order  []string
	dict   []dictEntry
	oop    uint16 // class object address
	super  *sclass
}

type dictEntry struct {
	selector uint8
	slot     uint16
}

type smethod struct {
	class, sel string
	label      string
	slot       uint16
	params     int
}

type scompiler struct {
	asm       *emulator.Asm
	classes   map[string]*sclass
	selectors map[string]uint8
	instances map[string]uint16
	image     map[uint32]uint16
	methods   []smethod

	nextClass    uint16
	nextInstance uint16
	nextSelector uint8
	nextSlot     uint16
	labels       int

	// method scope
	cur    *sclass
	params map[string]uint8
}

func (c *scompiler) selector(name string) uint8 {
	if s, ok := c.selectors[name]; ok {
		return s
	}
	c.nextSelector++
	c.selectors[name] = c.nextSelector
	return c.nextSelector
}

func (c *scompiler) newLabel() string {
	c.labels++
	return fmt.Sprintf(".s%d", c.labels)
}

func (c *scompiler) program(forms []*lispc.Sexpr) error {
	// Pass 1: class shapes and method slots (so sends compile before the
	// method bodies do).
	var mains []*lispc.Sexpr
	for _, f := range forms {
		switch f.Head() {
		case "class":
			if err := c.declareClass(f); err != nil {
				return err
			}
		case "instance", "": // handled later / main expression
			mains = append(mains, f)
		default:
			mains = append(mains, f)
		}
	}
	// Pass 2: instances (need class shapes).
	var body []*lispc.Sexpr
	for _, f := range mains {
		if f.Head() == "instance" {
			if err := c.declareInstance(f); err != nil {
				return err
			}
			continue
		}
		body = append(body, f)
	}
	if len(body) == 0 {
		return fmt.Errorf("stc: no main expression")
	}
	// Main code.
	c.cur, c.params = nil, map[string]uint8{}
	for i, f := range body {
		if err := c.expr(f); err != nil {
			return err
		}
		if i != len(body)-1 {
			c.asm.OpB("STL", 30) // discard
		}
	}
	c.asm.Op("HALT")
	// Method bodies.
	for _, f := range forms {
		if f.Head() != "class" {
			continue
		}
		if err := c.compileMethods(f); err != nil {
			return err
		}
	}
	// Emit the object image: class objects and dictionaries.
	dictAddr := uint32(dictBase)
	for _, f := range forms {
		if f.Head() != "class" {
			continue
		}
		cl := c.classes[f.List()[1].Atom()]
		super := uint16(0)
		if cl.super != nil {
			super = cl.super.oop
		}
		c.image[uint32(cl.oop)] = super
		c.image[uint32(cl.oop)+1] = uint16(dictAddr)
		c.image[uint32(cl.oop)+2] = uint16(len(cl.dict))
		for _, d := range cl.dict {
			c.image[dictAddr] = uint16(d.selector)
			c.image[dictAddr+1] = d.slot
			dictAddr += 2
		}
		if cl.name == "integer" { // the reader lowercases atoms
			c.image[emulator.SIClassSlot] = cl.oop
		}
	}
	return nil
}

func (c *scompiler) declareClass(f *lispc.Sexpr) error {
	l := f.List()
	if len(l) < 3 || l[1].Atom() == "" {
		return fmt.Errorf("stc: class needs a name and a field list")
	}
	name := l[1].Atom()
	if _, dup := c.classes[name]; dup {
		return fmt.Errorf("stc: class %s declared twice", name)
	}
	cl := &sclass{
		name:   name,
		fields: map[string]uint8{},
		oop:    uint16(classBase) + 16*c.nextClass,
	}
	c.nextClass++
	members := l[3:]
	// Optional (extends Super) right after the field list: the subclass
	// inherits the superclass's instance layout and, at run time, its
	// methods (the SEND microcode walks the chain on a dictionary miss).
	if len(members) > 0 && members[0].Head() == "extends" {
		supName := members[0].List()[1].Atom()
		sup, ok := c.classes[supName]
		if !ok {
			return fmt.Errorf("stc: %s extends unknown class %s (declare the superclass first)", name, supName)
		}
		cl.super = sup
		for _, f := range sup.order {
			cl.fields[f] = uint8(len(cl.order))
			cl.order = append(cl.order, f)
		}
		members = members[1:]
	}
	for _, fld := range l[2].List() {
		if fld.Atom() == "" {
			return fmt.Errorf("stc: %s: field names must be atoms", name)
		}
		if _, dup := cl.fields[fld.Atom()]; dup {
			return fmt.Errorf("stc: %s: field %s shadows an inherited field", name, fld.Atom())
		}
		cl.fields[fld.Atom()] = uint8(len(cl.order))
		cl.order = append(cl.order, fld.Atom())
	}
	c.classes[name] = cl
	// Reserve method slots.
	for _, m := range members {
		if m.Head() != "method" || len(m.List()) < 4 {
			return fmt.Errorf("stc: %s: expected (method name (params) body...)", name)
		}
		sel := m.List()[1].Atom()
		slot := uint16(methodSlot0) + 2*c.nextSlot
		c.nextSlot++
		cl.dict = append(cl.dict, dictEntry{selector: c.selector(sel), slot: slot})
		c.methods = append(c.methods, smethod{
			class: name, sel: sel,
			label:  fmt.Sprintf("m.%s.%s", name, sel),
			slot:   slot,
			params: len(m.List()[2].List()),
		})
	}
	return nil
}

func (c *scompiler) declareInstance(f *lispc.Sexpr) error {
	l := f.List()
	if len(l) < 3 || l[1].Atom() == "" || l[2].Atom() == "" {
		return fmt.Errorf("stc: instance needs (instance name Class values...)")
	}
	name, clname := l[1].Atom(), l[2].Atom()
	cl, ok := c.classes[clname]
	if !ok {
		return fmt.Errorf("stc: instance %s of unknown class %s", name, clname)
	}
	vals := l[3:]
	if len(vals) != len(cl.order) {
		return fmt.Errorf("stc: %s has %d field(s), instance %s gives %d",
			clname, len(cl.order), name, len(vals))
	}
	oop := uint16(instanceBase) + 16*c.nextInstance
	c.nextInstance++
	c.image[uint32(oop)] = cl.oop
	for i, v := range vals {
		if !v.IsNumber() {
			return fmt.Errorf("stc: instance %s: field values must be integers", name)
		}
		c.image[uint32(oop)+1+uint32(i)] = v.Number()<<1 | 1 // tagged
	}
	c.instances[name] = oop
	return nil
}

func (c *scompiler) compileMethods(f *lispc.Sexpr) error {
	cl := c.classes[f.List()[1].Atom()]
	members := f.List()[3:]
	if len(members) > 0 && members[0].Head() == "extends" {
		members = members[1:]
	}
	for _, m := range members {
		sel := m.List()[1].Atom()
		c.asm.Label(fmt.Sprintf("m.%s.%s", cl.name, sel))
		c.cur = cl
		c.params = map[string]uint8{}
		params := m.List()[2].List()
		// SEND stores arguments in pop order from frame slot 3 (slot 2 is
		// the receiver): the LAST argument lands at slot 3.
		for i, prm := range params {
			c.params[prm.Atom()] = uint8(3 + len(params) - 1 - i)
		}
		body := m.List()[3:]
		if len(body) == 0 {
			return fmt.Errorf("stc: %s>>%s has an empty body", cl.name, sel)
		}
		for i, b := range body {
			if err := c.expr(b); err != nil {
				return fmt.Errorf("stc: %s>>%s: %v", cl.name, sel, err)
			}
			if i != len(body)-1 {
				c.asm.OpB("STL", 30)
			}
		}
		c.asm.Op("RETTOP")
	}
	c.cur = nil
	return nil
}

func (c *scompiler) expr(e *lispc.Sexpr) error {
	switch {
	case e.IsNumber():
		c.asm.OpW("PUSHK", e.Number())
		return nil
	case e.Atom() == "self":
		if c.cur == nil {
			return fmt.Errorf("stc: self outside a method")
		}
		c.asm.Op("PUSHSELF")
		return nil
	case e.Atom() != "":
		if slot, ok := c.params[e.Atom()]; ok {
			c.asm.OpB("PUSHL", slot)
			return nil
		}
		if oop, ok := c.instances[e.Atom()]; ok {
			c.pushPointer(oop)
			return nil
		}
		return fmt.Errorf("stc: unbound name %q", e.Atom())
	}
	l := e.List()
	if len(l) == 0 {
		return fmt.Errorf("stc: empty form")
	}
	switch l[0].Atom() {
	case "+":
		if len(l) != 3 {
			return fmt.Errorf("stc: + takes 2 arguments")
		}
		if err := c.expr(l[1]); err != nil {
			return err
		}
		if err := c.expr(l[2]); err != nil {
			return err
		}
		c.asm.Op("ADDI")
		return nil
	case "field":
		if c.cur == nil {
			return fmt.Errorf("stc: field outside a method")
		}
		idx, ok := c.cur.fields[l[1].Atom()]
		if !ok {
			return fmt.Errorf("stc: class %s has no field %s", c.cur.name, l[1].Atom())
		}
		c.asm.OpB("PUSHIV", idx+1)
		return nil
	case "setfield":
		if c.cur == nil {
			return fmt.Errorf("stc: setfield outside a method")
		}
		if len(l) != 3 {
			return fmt.Errorf("stc: setfield takes (setfield name expr)")
		}
		idx, ok := c.cur.fields[l[1].Atom()]
		if !ok {
			return fmt.Errorf("stc: class %s has no field %s", c.cur.name, l[1].Atom())
		}
		if err := c.expr(l[2]); err != nil {
			return err
		}
		c.asm.OpB("STIV", idx+1)
		c.asm.OpB("PUSHIV", idx+1) // setfield yields the stored value
		return nil
	case "send":
		if len(l) < 3 || l[2].Atom() == "" {
			return fmt.Errorf("stc: send takes (send recv selector args...)")
		}
		if err := c.expr(l[1]); err != nil {
			return err
		}
		args := l[3:]
		for _, a := range args {
			if err := c.expr(a); err != nil {
				return err
			}
		}
		c.asm.OpB2("SEND", c.selector(l[2].Atom()), uint8(len(args)))
		return nil
	}
	return fmt.Errorf("stc: unknown form %q", l[0].Atom())
}

// pushPointer materializes an even object pointer on the stack. PUSHK can
// only produce tagged (odd) SmallIntegers, so the compiler parks pointers
// in reserved boot-frame slots (initialized through the install image) and
// PUSHLs them — the role Smalltalk's literal frame played.
func (c *scompiler) pushPointer(oop uint16) {
	slot := c.pointerSlot(oop)
	c.asm.OpB("PUSHL", slot)
}

// pointerSlot assigns a boot-frame slot holding the pointer (poked by the
// install image; the boot frame is at emulator.VAFrames).
func (c *scompiler) pointerSlot(oop uint16) uint8 {
	// Slots 8..29 of the boot frame are reserved for compiler pointers.
	for slot := uint8(8); slot < 30; slot++ {
		addr := uint32(emulator.VAFrames) + uint32(slot)
		if v, ok := c.image[addr]; ok {
			if v == oop {
				return slot
			}
			continue
		}
		c.image[addr] = oop
		return slot
	}
	panic("stc: out of pointer slots")
}
