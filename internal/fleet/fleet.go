// Package fleet is the concurrent simulation service layer: a session
// manager that owns many independently simulated Dorado machines and runs
// them on a bounded worker pool, the first step from "simulator library"
// toward the production-scale service the ROADMAP aims at.
//
// The design follows the parallel-deployment argument of the related work
// (Schirmer's NOP papers): aggregate throughput comes from running many
// simple, independent machines behind a scheduler, not from making one
// machine faster. Each session is one Dorado built through the public
// dorado.New facade; the Manager serializes operations within a session
// (a machine is single-threaded by construction) while running different
// sessions in parallel, up to Config.Workers at a time.
//
// Concurrency model, in one paragraph: every session has a bounded FIFO of
// pending operations and a scheduled flag. Submitting an operation appends
// to the FIFO (rejecting with ErrOverloaded when full — backpressure is an
// error, never an unbounded queue) and, if the session is not already
// scheduled, places it on the run queue. Worker goroutines pop a session,
// execute exactly one operation — so a session cannot starve the pool —
// and re-enqueue the session if more work arrived meanwhile. The scheduled
// flag guarantees a session is owned by at most one worker, which is the
// whole per-session serialization argument: operation bodies touch the
// machine without any lock of their own.
//
// Idle sessions are evicted to reclaim memory: a janitor parks any session
// unused for Config.IdleAfter by serializing it through the machine's
// snapshot (internal/state) and dropping the live machine; the next
// operation transparently rebuilds the machine from the session's Spec and
// restores the snapshot. Drain stops admission and waits for every accepted
// operation to finish, then stops the workers — the graceful-shutdown path
// cmd/doradod runs on SIGTERM.
//
// With Config.Store set, parking is durable: snapshots land in a
// content-addressed on-disk store (internal/store) instead of memory, a
// graceful Drain parks every remaining live session into it, and a fresh
// Manager over the same directory lists the stored sessions as parked and
// revives each lazily on first touch — the restart-safe deployment shape.
// Any stored snapshot can also seed a brand-new session (CreateFrom), the
// fork-from-snapshot primitive behind microcode A/B experiments.
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dorado/internal/store"
)

// Sentinel errors returned by Manager operations. Match with errors.Is;
// the HTTP server maps them onto status codes (429, 503, 404, 409).
var (
	// ErrOverloaded reports that a session's operation queue is full. The
	// caller should back off and retry; cmd/doradod returns 429.
	ErrOverloaded = errors.New("fleet: session queue full")
	// ErrDraining reports that the manager is shutting down and admits no
	// new operations; cmd/doradod returns 503.
	ErrDraining = errors.New("fleet: manager draining")
	// ErrNotFound reports an unknown or destroyed session id.
	ErrNotFound = errors.New("fleet: no such session")
	// ErrTooManySessions reports that Config.MaxSessions are already live.
	ErrTooManySessions = errors.New("fleet: session limit reached")
	// ErrNoMetrics reports a trace or obs read on a session created
	// without Spec.Metrics; cmd/doradod returns 409.
	ErrNoMetrics = errors.New("fleet: session has no metrics recorder")
	// ErrNoProfiler reports a profile read on a session created without
	// Spec.Profile; cmd/doradod returns 409.
	ErrNoProfiler = errors.New("fleet: session has no profiler")
	// ErrBusy reports a Park on a session that is scheduled or has pending
	// operations; the caller should let the queue empty and retry.
	// cmd/doradod returns 409.
	ErrBusy = errors.New("fleet: session busy")
	// ErrNoStore reports a durability operation (Park-to-disk listing,
	// CreateFrom) on a manager configured without Config.Store;
	// cmd/doradod returns 409.
	ErrNoStore = errors.New("fleet: no snapshot store configured")
)

// Config sizes a Manager. The zero value picks usable defaults.
type Config struct {
	// Workers is the number of worker goroutines executing session
	// operations — the cross-session parallelism bound. Default GOMAXPROCS.
	Workers int
	// MaxSessions bounds the number of sessions (live + parked).
	// Default 64.
	MaxSessions int
	// QueueDepth bounds each session's pending-operation FIFO; a full
	// queue rejects with ErrOverloaded. Default 8.
	QueueDepth int
	// IdleAfter parks sessions unused for this long (snapshot taken, live
	// machine released). Zero disables eviction.
	IdleAfter time.Duration
	// SweepEvery is the janitor period. Default IdleAfter/4 (min 1s) when
	// eviction is enabled.
	SweepEvery time.Duration
	// Logger, when set, receives one structured debug record per completed
	// operation (session, op kind, queue-wait and service-time in µs, and
	// the request id when the submitting context carries one — see
	// RequestID). Nil disables operation logging; the latency histograms
	// are always recorded.
	Logger *slog.Logger
	// Store, when set, makes parked sessions durable: park writes the
	// snapshot into this content-addressed store (with the session's Spec
	// as sidecar metadata and a manifest entry), New lists the store's
	// sessions as parked, revival loads the blob lazily on first touch,
	// and Drain parks every remaining live session before stopping — so a
	// restart over the same store directory resumes the fleet. Nil keeps
	// parked snapshots in memory only (the pre-store behavior).
	Store *store.Store
	// GCMaxAge is the store GC policy: an unreferenced snapshot must be
	// at least this old before a sweep reclaims it. Zero picks the
	// default (24h); negative reclaims unreferenced snapshots
	// immediately. Only meaningful with Store set.
	GCMaxAge time.Duration
	// GCEvery is the period of the manager's background store-GC sweeper.
	// Zero picks the default (1h); negative disables periodic sweeps
	// (on-demand GCStore still works). Only meaningful with Store set.
	GCEvery time.Duration

	// WebhookAllow is the origin allowlist for Spec.Webhook URLs, entries
	// like "http://127.0.0.1:9000" or "https://hooks.example.com" (one
	// entry "*" allows any origin — development only). Empty rejects
	// every webhook: outbound calls to operator-unapproved hosts are an
	// SSRF hazard, so delivery is strictly opt-in.
	WebhookAllow []string
	// WebhookBackoff is the first retry delay after a failed webhook
	// delivery; it doubles per attempt. Default 250ms.
	WebhookBackoff time.Duration
	// WebhookClient issues webhook POSTs. Nil uses a client with a 10s
	// timeout.
	WebhookClient *http.Client

	// now is the test clock hook; nil means time.Now.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.IdleAfter > 0 && c.SweepEvery <= 0 {
		c.SweepEvery = c.IdleAfter / 4
		if c.SweepEvery < time.Second {
			c.SweepEvery = time.Second
		}
	}
	if c.GCMaxAge == 0 {
		c.GCMaxAge = 24 * time.Hour
	}
	if c.GCEvery == 0 {
		c.GCEvery = time.Hour
	}
	if c.WebhookBackoff <= 0 {
		c.WebhookBackoff = 250 * time.Millisecond
	}
	if c.WebhookClient == nil {
		c.WebhookClient = &http.Client{Timeout: 10 * time.Second}
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Manager owns a pool of simulated machines and the worker pool that runs
// them. Create one with New; it is safe for concurrent use.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*Session
	nextID   uint64
	draining bool

	// runq carries sessions with pending work to the workers. It is a
	// slice guarded by runMu, not a bounded channel: a destroyed session
	// stays scheduled until its queued operations finish, so the number of
	// scheduled sessions can briefly exceed MaxSessions — a fixed-capacity
	// channel could fill and deadlock the workers (the only consumers) on
	// the re-enqueue send. The queue is still naturally bounded: a session
	// appears at most once (the scheduled flag).
	runMu    sync.Mutex
	runCond  *sync.Cond
	runq     []*Session
	stopping bool // set by Drain once all operations finished; workers exit

	opsWG sync.WaitGroup // accepted-but-unfinished operations
	// runWG tracks the per-run completion waiters (runs.go), which also
	// carry webhook delivery; Drain waits for them after the operations
	// themselves, and deliveries abort on the drain signal, so shutdown
	// stays bounded.
	runWG    sync.WaitGroup
	workerWG sync.WaitGroup
	stopOnce sync.Once
	janitorC chan struct{} // closed to stop the janitor

	// drainC is closed the moment Drain begins — before the wait for
	// in-flight operations — so long-lived observers (the SSE event
	// streams) shut down promptly instead of holding shutdown hostage.
	drainC    chan struct{}
	drainOnce sync.Once

	// nLive / nParked cache session residency so Health and liveness
	// probes read two atomics instead of walking the session table under
	// locks. Updated at every create/park/revive/destroy transition.
	nLive   atomic.Int64
	nParked atomic.Int64

	counters counters
	lat      *opHistograms
}

// New builds a Manager and starts its workers (and, when eviction is
// configured, its janitor). With Config.Store set it also adopts the
// store's manifest: every recorded session is registered as parked —
// no machine built, no blob read — and revives lazily on first touch.
// Stop it with Drain.
func New(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:      cfg,
		sessions: map[string]*Session{},
		janitorC: make(chan struct{}),
		drainC:   make(chan struct{}),
		lat:      newOpHistograms(),
	}
	m.runCond = sync.NewCond(&m.runMu)
	if cfg.Store != nil {
		m.adoptStore()
	}
	m.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	if cfg.IdleAfter > 0 {
		go m.janitor()
	}
	if cfg.Store != nil && cfg.GCEvery > 0 {
		go m.gcJanitor()
	}
	return m
}

// adoptStore registers every manifest session as parked-on-disk and
// advances the id counter past the restored sequence numbers. An entry
// whose Spec no longer decodes is skipped (and logged) rather than
// poisoning startup; its blob stays in the store untouched.
func (m *Manager) adoptStore() {
	for _, e := range m.cfg.Store.Sessions() {
		var spec Spec
		if err := json.Unmarshal(e.Spec, &spec); err != nil {
			if m.cfg.Logger != nil {
				m.cfg.Logger.Warn("fleet: skipping stored session with undecodable spec",
					"session", e.ID, "err", err)
			}
			continue
		}
		now := m.cfg.now()
		s := &Session{
			id:         e.ID,
			seq:        e.Seq,
			spec:       spec,
			birth:      now,
			lastUsed:   now,
			parkedHash: e.Hash,
		}
		s.stats.parked.Store(true)
		s.stats.cycles.Store(e.Cycle)
		m.sessions[s.id] = s
		if e.Seq > m.nextID {
			m.nextID = e.Seq
		}
		m.nParked.Add(1)
		m.counters.adopted.Add(1)
	}
}

// Workers returns the configured worker-pool size.
func (m *Manager) Workers() int { return m.cfg.Workers }

// enqueue places a scheduled session on the run queue and wakes a worker.
// It never blocks, whatever the queue length — the property the deadlock
// freedom of the pool rests on.
func (m *Manager) enqueue(s *Session) {
	m.runMu.Lock()
	m.runq = append(m.runq, s)
	m.runMu.Unlock()
	m.runCond.Signal()
}

// dequeue blocks until a session is runnable and pops it, or returns nil
// when the manager is stopping and the queue has fully drained.
func (m *Manager) dequeue() *Session {
	m.runMu.Lock()
	defer m.runMu.Unlock()
	for len(m.runq) == 0 {
		if m.stopping {
			return nil
		}
		m.runCond.Wait()
	}
	s := m.runq[0]
	copy(m.runq, m.runq[1:])
	m.runq[len(m.runq)-1] = nil
	m.runq = m.runq[:len(m.runq)-1]
	return s
}

// worker executes one queued operation per scheduling round, then yields
// the session back to the runnable queue if more work arrived. The
// scheduled flag (owned by the session lock) guarantees at most one worker
// holds a session, so operation bodies run the machine without locks.
func (m *Manager) worker() {
	defer m.workerWG.Done()
	for {
		s := m.dequeue()
		if s == nil {
			return
		}
		s.mu.Lock()
		op := s.pending[0]
		copy(s.pending, s.pending[1:])
		s.pending = s.pending[:len(s.pending)-1]
		if s.parkedLocked() {
			// Revive before unlocking: the rebuild mutates s.sys, and a
			// concurrent janitor sweep must observe either parked or live,
			// never a half-built machine. The same path serves in-memory
			// parks and store-backed parks (including sessions adopted
			// from a previous process's store) — see reviveLocked.
			s.reviveLocked(m)
		}
		sys, reviveErr := s.sys, s.reviveErr
		s.mu.Unlock()

		var res opResult
		res.queue = time.Since(op.enqueued)
		ran := false
		switch {
		case reviveErr != nil:
			res.err = reviveErr
		case op.ctx.Err() != nil:
			// The submitter gave up while the operation sat in the queue;
			// skip the body rather than burn service time nobody reads.
			res.err = op.ctx.Err()
		default:
			start := time.Now()
			res.value, res.err = op.fn(sys)
			res.service = time.Since(start)
			ran = true
		}
		if res.err == nil && sys != nil {
			s.noteStats(sys)
		}
		// Account the operation here, not in submit: a canceled submitter
		// has already returned, and success/latency bookkeeping must not
		// depend on anyone reading the result.
		m.lat.observe(op.kind, res.queue, res.service, ran)
		if res.err == nil {
			m.counters.ops[op.kind].Add(1)
		}
		m.logOp(s.id, op, res)
		op.done <- res

		s.mu.Lock()
		if len(s.pending) > 0 {
			s.mu.Unlock()
			m.enqueue(s)
		} else {
			s.scheduled = false
			s.mu.Unlock()
		}
		// Done only after the re-enqueue decision: Drain stops the workers
		// once this counter hits zero, and pending work implies a nonzero
		// count, so no enqueue above can race the shutdown.
		m.opsWG.Done()
	}
}

// logOp emits the per-operation structured record (see Config.Logger).
func (m *Manager) logOp(id string, op *op, res opResult) {
	if m.cfg.Logger == nil {
		return
	}
	attrs := []slog.Attr{
		slog.String("session", id),
		slog.String("op", op.kind.String()),
		slog.Int64("queue_us", res.queue.Microseconds()),
		slog.Int64("service_us", res.service.Microseconds()),
	}
	if req := RequestID(op.ctx); req != "" {
		attrs = append(attrs, slog.String("req", req))
	}
	if res.err != nil {
		attrs = append(attrs, slog.String("err", res.err.Error()))
	}
	m.cfg.Logger.LogAttrs(op.ctx, slog.LevelDebug, "fleet op", attrs...)
}

// submitAsync queues fn on the session and returns the accepted operation
// without waiting for it. It enforces, in order: drain state, session
// existence, and queue bound — the admission decision is synchronous even
// when the result will be consumed asynchronously (the runs resource), so
// backpressure errors still reach the submitter immediately. ctx rides on
// the operation: the worker skips the body if it is canceled at pickup,
// and the operation log records its request id (see RequestID).
func (m *Manager) submitAsync(ctx context.Context, id string, kind opKind, fn func(sys *system) (any, error)) (*op, error) {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.counters.rejectedDrain.Add(1)
		return nil, ErrDraining
	}
	s := m.sessions[id]
	if s == nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	// Count the operation before releasing the lock: Drain flips draining
	// under the same lock, so once it begins waiting, no new Add can slip
	// in behind it.
	m.opsWG.Add(1)
	m.mu.Unlock()

	o := &op{ctx: ctx, kind: kind, fn: fn, done: make(chan opResult, 1), enqueued: time.Now()}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		m.opsWG.Done()
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if len(s.pending) >= m.cfg.QueueDepth {
		s.mu.Unlock()
		m.opsWG.Done()
		m.counters.rejectedLoad.Add(1)
		return nil, fmt.Errorf("%w: session %q has %d operations pending", ErrOverloaded, id, m.cfg.QueueDepth)
	}
	s.pending = append(s.pending, o)
	s.lastUsed = m.cfg.now()
	enqueue := !s.scheduled
	if enqueue {
		s.scheduled = true
	}
	s.mu.Unlock()
	if enqueue {
		m.enqueue(s)
	}
	return o, nil
}

// submit queues fn on the session and waits for its result. ctx scopes
// the wait: if it is canceled before a worker runs the operation, the
// body is skipped and submit returns ctx's error.
func (m *Manager) submit(ctx context.Context, id string, kind opKind, fn func(sys *system) (any, error)) (any, error) {
	o, err := m.submitAsync(ctx, id, kind, fn)
	if err != nil {
		return nil, err
	}
	// done is buffered, so a departed caller never blocks the worker; the
	// worker also sees the canceled ctx and skips the body if it has not
	// started yet.
	select {
	case res := <-o.done:
		return res.value, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// janitor periodically parks idle sessions.
func (m *Manager) janitor() {
	t := time.NewTicker(m.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-m.janitorC:
			return
		case <-t.C:
			m.Sweep()
		}
	}
}

// gcJanitor periodically sweeps the durable store for unreferenced
// snapshots (Config.GCEvery / Config.GCMaxAge). It shares the janitor's
// stop channel, so Drain ends it.
func (m *Manager) gcJanitor() {
	t := time.NewTicker(m.cfg.GCEvery)
	defer t.Stop()
	for {
		select {
		case <-m.janitorC:
			return
		case <-t.C:
			if _, err := m.GCStore(-1); err != nil && m.cfg.Logger != nil {
				m.cfg.Logger.Warn("fleet: store GC sweep failed", "err", err)
			}
		}
	}
}

// GCStore runs one GC sweep of the durable store, reclaiming every
// snapshot (whole blob or recipe + orphaned sections) that no manifest
// entry references, no in-flight fork or park has pinned, and that is
// older than the age threshold. A negative maxAge uses the configured
// Config.GCMaxAge; zero reclaims every unreferenced snapshot immediately.
// The background sweeper calls it on a timer; POST /v1/store/gc and tests
// call it on demand. ErrNoStore without Config.Store.
func (m *Manager) GCStore(maxAge time.Duration) (store.SweepResult, error) {
	if m.cfg.Store == nil {
		return store.SweepResult{}, ErrNoStore
	}
	if maxAge < 0 {
		maxAge = m.cfg.GCMaxAge
	}
	if maxAge < 0 {
		maxAge = 0
	}
	return m.cfg.Store.Sweep(store.GCPolicy{MaxAge: maxAge})
}

// StoreStats inventories the durable store — what GET /v1/store serves.
// ErrNoStore without Config.Store.
func (m *Manager) StoreStats() (store.Stats, error) {
	if m.cfg.Store == nil {
		return store.Stats{}, ErrNoStore
	}
	return m.cfg.Store.Stats(), nil
}

// Sweep parks every session idle for at least Config.IdleAfter and returns
// how many it parked. The janitor calls it on a timer; it is exported so
// tests and operators can force a pass.
func (m *Manager) Sweep() int {
	if m.cfg.IdleAfter <= 0 {
		return 0
	}
	cutoff := m.cfg.now().Add(-m.cfg.IdleAfter)
	m.mu.Lock()
	list := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		list = append(list, s)
	}
	m.mu.Unlock()

	parked := 0
	for _, s := range list {
		if s.park(m, cutoff) {
			m.counters.evicted.Add(1)
			parked++
		}
	}
	return parked
}

// Drain gracefully shuts the manager down: new operations are rejected
// with ErrDraining, every already-accepted operation runs to completion,
// then the workers and janitor stop. With Config.Store set, every session
// still live after the workers stop is parked into the store, so a
// subsequent process over the same directory resumes the whole fleet. If
// ctx expires first, Drain returns ctx.Err() with the workers still
// running (call again to finish). Drain is idempotent.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
	// Wake long-lived observers (SSE streams) first: they are not
	// operations, so the opsWG wait below neither sees nor needs them, but
	// the HTTP server's shutdown does — a stream that lingered would hold
	// the listener open past the drain.
	m.drainOnce.Do(func() { close(m.drainC) })

	done := make(chan struct{})
	go func() {
		m.opsWG.Wait()
		// Then the run waiters: each consumes a result the workers have
		// now delivered and aborts any webhook backoff on the drain
		// signal closed above, so this wait is bounded by one in-flight
		// HTTP attempt at most.
		m.runWG.Wait()
		close(done)
	}()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-done:
	}
	m.stopOnce.Do(func() {
		m.runMu.Lock()
		m.stopping = true
		m.runMu.Unlock()
		m.runCond.Broadcast()
		m.workerWG.Wait()
		close(m.janitorC)
		if m.cfg.Store != nil {
			// The workers are gone and admission is closed, so every
			// session is idle; park them all while the process still can.
			cutoff := m.cfg.now().Add(time.Nanosecond)
			m.mu.Lock()
			list := make([]*Session, 0, len(m.sessions))
			for _, s := range m.sessions {
				list = append(list, s)
			}
			m.mu.Unlock()
			for _, s := range list {
				s.park(m, cutoff)
			}
		}
	})
	return nil
}

// Draining reports whether Drain has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// DrainSignal returns a channel closed the moment Drain begins. Long-
// lived observers (the SSE event streams) select on it so a graceful
// shutdown terminates them promptly.
func (m *Manager) DrainSignal() <-chan struct{} { return m.drainC }
