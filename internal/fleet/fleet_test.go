package fleet

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"dorado"
	"dorado/internal/memory"
	"dorado/internal/obs"
)

// tctx is the background context tests thread through Manager operations.
var tctx = context.Background()

// smallSpec keeps test machines light: 32 KB of storage instead of 2 MB.
func smallSpec() Spec {
	return Spec{Machine: dorado.Config{Memory: memory.Config{StorageWords: 1 << 14}}}
}

func drainNow(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestCreateLoadRunReadState(t *testing.T) {
	m := New(Config{Workers: 2})
	defer drainNow(t, m)

	id, err := m.Create(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if id != "s1" {
		t.Fatalf("first session id = %q", id)
	}
	res, err := m.LoadMicrocode(tctx, id, SpinMicrocode, "start")
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement == "" {
		t.Error("empty placement report")
	}
	r, err := m.Run(tctx, id, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ran != 1000 || r.Cycle != 1000 || r.Halted {
		t.Fatalf("run = %+v", r)
	}
	st, err := m.ReadState(tctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycle != 1000 || st.Halted || st.Language != "None" {
		t.Fatalf("state = %+v", st)
	}
	infos := m.Sessions()
	if len(infos) != 1 || infos[0].ID != id || infos[0].Cycle != 1000 || infos[0].Parked {
		t.Fatalf("sessions = %+v", infos)
	}
}

func TestMesaSessionBootSource(t *testing.T) {
	m := New(Config{Workers: 2})
	defer drainNow(t, m)

	id, err := m.Create(Spec{Language: "mesa"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.BootSource(tctx, id, "return 6*7;"); err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(tctx, id, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Halted {
		t.Fatal("program did not halt")
	}
	st, err := m.ReadState(tctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Stack) != 1 || st.Stack[0] != 42 {
		t.Fatalf("stack = %v", st.Stack)
	}
	if err := m.BootSource(tctx, id, "syntax error ("); err == nil {
		t.Fatal("bad source accepted")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	m := New(Config{Workers: 2})
	defer drainNow(t, m)

	id, err := m.Create(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadMicrocode(tctx, id, SpinMicrocode, "start"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(tctx, id, 1000); err != nil {
		t.Fatal(err)
	}
	snap, err := m.Snapshot(tctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(tctx, id, 1000); err != nil {
		t.Fatal(err)
	}
	if err := m.Restore(tctx, id, snap); err != nil {
		t.Fatal(err)
	}
	st, err := m.ReadState(tctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycle != 1000 {
		t.Fatalf("restored cycle = %d, want 1000", st.Cycle)
	}
	again, err := m.Snapshot(tctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, again) {
		t.Fatal("snapshot→restore→snapshot is not byte-identical")
	}
	if err := m.Restore(tctx, id, []byte("junk")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

// blockSession parks the (single) worker inside an operation on id until
// the returned release function is called.
func blockSession(t *testing.T, m *Manager, id string) (running <-chan struct{}, release func()) {
	t.Helper()
	started := make(chan struct{})
	gate := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := m.submit(tctx, id, opRun, func(*system) (any, error) {
			close(started)
			<-gate
			return RunResult{}, nil
		})
		if err != nil {
			t.Errorf("blocking op: %v", err)
		}
	}()
	return started, func() { close(gate); <-done }
}

func TestBackpressureOverload(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 1})
	defer drainNow(t, m)

	id, err := m.Create(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	running, release := blockSession(t, m, id)
	<-running

	// The worker is busy; one operation fits in the queue, the next must
	// be rejected.
	queued := make(chan error, 1)
	go func() {
		_, err := m.Run(tctx, id, 1)
		queued <- err
	}()
	waitQueue(t, m, id, 1)
	if _, err := m.Run(tctx, id, 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overload error = %v", err)
	}
	release()
	if err := <-queued; err != nil {
		t.Fatalf("queued op: %v", err)
	}
	if got := m.counters.rejectedLoad.Load(); got != 1 {
		t.Fatalf("rejected counter = %d", got)
	}
}

// waitQueue blocks until the session's pending queue reaches depth n.
func waitQueue(t *testing.T, m *Manager, id string, n int) {
	t.Helper()
	s, ok := m.lookup(id)
	if !ok {
		t.Fatal("session vanished")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		depth := len(s.pending)
		s.mu.Unlock()
		if depth >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d", n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestDrainRejectsAndCompletes(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 4})
	id, err := m.Create(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	running, release := blockSession(t, m, id)
	<-running

	// A short-deadline drain must time out while the operation is stuck.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	err = m.Drain(ctx)
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain with stuck op = %v", err)
	}

	// Admission is already closed.
	if _, err := m.Run(tctx, id, 1); !errors.Is(err, ErrDraining) {
		t.Fatalf("run while draining = %v", err)
	}
	if _, err := m.Create(smallSpec()); !errors.Is(err, ErrDraining) {
		t.Fatalf("create while draining = %v", err)
	}

	release()
	drainNow(t, m)
	// Idempotent.
	drainNow(t, m)
}

// TestDestroyRecreateAtCapNoDeadlock is the regression test for the
// worker-pool deadlock: a destroyed session stays scheduled until its
// queued operations finish, so destroy-then-recreate at the session cap
// briefly yields more scheduled sessions than MaxSessions. With the old
// fixed-capacity runnable channel the lone worker blocked forever on the
// re-enqueue send; the run queue must absorb the excess.
func TestDestroyRecreateAtCapNoDeadlock(t *testing.T) {
	m := New(Config{Workers: 1, MaxSessions: 1, QueueDepth: 4})
	defer drainNow(t, m)

	a, err := m.Create(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	running, release := blockSession(t, m, a)
	<-running

	// Queue a second operation so a stays scheduled after Destroy.
	queued := make(chan error, 1)
	go func() {
		_, err := m.Run(tctx, a, 1)
		queued <- err
	}()
	waitQueue(t, m, a, 1)
	if err := m.Destroy(a); err != nil {
		t.Fatal(err)
	}
	b, err := m.Create(smallSpec())
	if err != nil {
		t.Fatalf("recreate at cap: %v", err)
	}

	// Two sessions are now scheduled (the destroyed a and the new b) with
	// MaxSessions = 1. Release the worker and require both to finish.
	submitted := make(chan error, 1)
	go func() {
		_, err := m.Run(tctx, b, 1)
		submitted <- err
	}()
	release()
	for name, c := range map[string]chan error{"queued op on destroyed session": queued, "op on recreated session": submitted} {
		select {
		case err := <-c:
			if err != nil {
				t.Errorf("%s: %v", name, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s deadlocked", name)
		}
	}
}

func TestIdleEvictionAndRevival(t *testing.T) {
	clock := struct {
		sync.Mutex
		t time.Time
	}{t: time.Unix(1000, 0)}
	now := func() time.Time {
		clock.Lock()
		defer clock.Unlock()
		return clock.t
	}
	m := New(Config{Workers: 1, IdleAfter: time.Minute, SweepEvery: time.Hour, now: now})
	defer drainNow(t, m)

	id, err := m.Create(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadMicrocode(tctx, id, SpinMicrocode, "start"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(tctx, id, 500); err != nil {
		t.Fatal(err)
	}

	if n := m.Sweep(); n != 0 {
		t.Fatalf("fresh session parked (%d)", n)
	}
	clock.Lock()
	clock.t = clock.t.Add(2 * time.Minute)
	clock.Unlock()
	if n := m.Sweep(); n != 1 {
		t.Fatalf("sweep parked %d sessions, want 1", n)
	}
	infos := m.Sessions()
	if !infos[0].Parked {
		t.Fatalf("session not parked: %+v", infos[0])
	}

	// ReadState reports the parked-ness it observed, then revives.
	st, err := m.ReadState(tctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Parked {
		t.Error("ReadState.Parked = false for a parked session")
	}
	if st, err = m.ReadState(tctx, id); err != nil {
		t.Fatal(err)
	} else if st.Parked {
		t.Error("ReadState.Parked = true after revival")
	}

	// The revived machine carries its state; runs continue from cycle 500.
	r, err := m.Run(tctx, id, 500)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycle != 1000 {
		t.Fatalf("revived cycle = %d, want 1000", r.Cycle)
	}
	if m.counters.evicted.Load() != 1 || m.counters.revived.Load() != 1 {
		t.Fatalf("evicted/revived = %d/%d",
			m.counters.evicted.Load(), m.counters.revived.Load())
	}
}

func TestDestroyAndLimits(t *testing.T) {
	m := New(Config{Workers: 1, MaxSessions: 2})
	defer drainNow(t, m)

	a, err := m.Create(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(smallSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(smallSpec()); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("over-limit create = %v", err)
	}
	if err := m.Destroy(a); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(tctx, a, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("run destroyed = %v", err)
	}
	if err := m.Destroy(a); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double destroy = %v", err)
	}
	if _, err := m.Create(smallSpec()); err != nil {
		t.Fatalf("create after destroy: %v", err)
	}
	if _, err := m.Run(tctx, "nope", 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown id = %v", err)
	}
}

func TestMetricsSnapshotFamilies(t *testing.T) {
	m := New(Config{Workers: 1})
	defer drainNow(t, m)

	id, err := m.Create(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadMicrocode(tctx, id, SpinMicrocode, "start"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(tctx, id, 2048); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, m.MetricsSnapshot()); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`dorado_fleet_sessions{state="live"} 1`,
		`dorado_fleet_ops_total{op="run"} 1`,
		`dorado_fleet_ops_total{op="microcode"} 1`,
		`dorado_fleet_cycles_total 2048`,
		`dorado_fleet_session_cycles_total{session="s1"} 2048`,
		`dorado_fleet_rejected_total{reason="overloaded"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
	// Export is deterministic for a quiet fleet.
	var again bytes.Buffer
	if err := obs.WritePrometheus(&again, m.MetricsSnapshot()); err != nil {
		t.Fatal(err)
	}
	if text != again.String() {
		t.Error("metrics export not deterministic")
	}
}

func TestMeasureScalingSmoke(t *testing.T) {
	points, err := MeasureScaling(ScalingOptions{
		Sessions:      []int{1, 2},
		CyclesPerOp:   20_000,
		OpsPerSession: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[0].Scaling != 1 {
		t.Fatalf("points = %+v", points)
	}
	for _, p := range points {
		if p.CyclesPerSec <= 0 || p.SimCycles != uint64(p.Sessions)*40_000 {
			t.Fatalf("bad point %+v", p)
		}
	}
}
