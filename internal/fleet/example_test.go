package fleet_test

import (
	"context"
	"encoding/json"
	"fmt"

	"dorado/internal/fleet"
)

// ExampleManager_ObsSummary creates an instrumented session, runs it, and
// reads the condensed observability summary — what GET
// /v1/sessions/{id}/obs serves.
func ExampleManager_ObsSummary() {
	m := fleet.New(fleet.Config{Workers: 1})
	defer m.Drain(context.Background()) //nolint:errcheck // Background never expires

	ctx := context.Background()
	id, err := m.Create(fleet.Spec{Metrics: true})
	if err != nil {
		panic(err)
	}
	if _, err := m.LoadMicrocode(ctx, id, fleet.SpinMicrocode, "start"); err != nil {
		panic(err)
	}
	if _, err := m.Run(ctx, id, 10_000); err != nil {
		panic(err)
	}
	res, err := m.ObsSummary(ctx, id)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.ID, res.Cycle, res.Obs.TimelineInterval > 0)
	// Output: s1 10000 true
}

// ExampleManager_TraceJSON exports a session's Chrome trace_event
// document — what GET /v1/sessions/{id}/trace serves; load it at
// chrome://tracing or ui.perfetto.dev.
func ExampleManager_TraceJSON() {
	m := fleet.New(fleet.Config{Workers: 1})
	defer m.Drain(context.Background()) //nolint:errcheck // Background never expires

	ctx := context.Background()
	id, err := m.Create(fleet.Spec{Metrics: true})
	if err != nil {
		panic(err)
	}
	if _, err := m.LoadMicrocode(ctx, id, fleet.SpinMicrocode, "start"); err != nil {
		panic(err)
	}
	if _, err := m.Run(ctx, id, 5_000); err != nil {
		panic(err)
	}
	data, err := m.TraceJSON(ctx, id)
	if err != nil {
		panic(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		panic(err)
	}
	fmt.Println(len(doc.TraceEvents) > 0)
	// Output: true
}

// ExampleManager_Health reads the O(1) liveness summary — what GET
// /healthz serves: session counts by residency from cached atomics, never
// a lock.
func ExampleManager_Health() {
	m := fleet.New(fleet.Config{Workers: 1})
	defer m.Drain(context.Background()) //nolint:errcheck // Background never expires

	if _, err := m.Create(fleet.Spec{}); err != nil {
		panic(err)
	}
	if _, err := m.Create(fleet.Spec{Language: "mesa"}); err != nil {
		panic(err)
	}
	h := m.Health()
	fmt.Println(h.Status, h.Sessions.Active, h.Sessions.Parked)
	// Output: ok 2 0
}
