package fleet_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"dorado/internal/fleet"
	"dorado/internal/store"
)

// ExampleManager_ObsSummary creates an instrumented session, runs it, and
// reads the condensed observability summary — what GET
// /v1/sessions/{id}/obs serves.
func ExampleManager_ObsSummary() {
	m := fleet.New(fleet.Config{Workers: 1})
	defer m.Drain(context.Background()) //nolint:errcheck // Background never expires

	ctx := context.Background()
	id, err := m.Create(fleet.Spec{Metrics: true})
	if err != nil {
		panic(err)
	}
	if _, err := m.LoadMicrocode(ctx, id, fleet.SpinMicrocode, "start"); err != nil {
		panic(err)
	}
	if _, err := m.Run(ctx, id, 10_000); err != nil {
		panic(err)
	}
	res, err := m.ObsSummary(ctx, id)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.ID, res.Cycle, res.Obs.TimelineInterval > 0)
	// Output: s1 10000 true
}

// ExampleManager_TraceJSON exports a session's Chrome trace_event
// document — what GET /v1/sessions/{id}/trace serves; load it at
// chrome://tracing or ui.perfetto.dev.
func ExampleManager_TraceJSON() {
	m := fleet.New(fleet.Config{Workers: 1})
	defer m.Drain(context.Background()) //nolint:errcheck // Background never expires

	ctx := context.Background()
	id, err := m.Create(fleet.Spec{Metrics: true})
	if err != nil {
		panic(err)
	}
	if _, err := m.LoadMicrocode(ctx, id, fleet.SpinMicrocode, "start"); err != nil {
		panic(err)
	}
	if _, err := m.Run(ctx, id, 5_000); err != nil {
		panic(err)
	}
	data, err := m.TraceJSON(ctx, id)
	if err != nil {
		panic(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		panic(err)
	}
	fmt.Println(len(doc.TraceEvents) > 0)
	// Output: true
}

// ExampleManager_SubmitRun submits an asynchronous run and polls it to
// completion — the Manager-level mirror of POST /v1/sessions/{id}/runs
// followed by GET /v1/sessions/{id}/runs/{rid}. The submit returns at
// admission; the result becomes available when the worker finishes.
func ExampleManager_SubmitRun() {
	m := fleet.New(fleet.Config{Workers: 1})
	defer m.Drain(context.Background()) //nolint:errcheck // Background never expires

	ctx := context.Background()
	id, err := m.Create(fleet.Spec{})
	if err != nil {
		panic(err)
	}
	if _, err := m.LoadMicrocode(ctx, id, fleet.SpinMicrocode, "start"); err != nil {
		panic(err)
	}
	v, err := m.SubmitRun(ctx, id, 1000)
	if err != nil {
		panic(err)
	}
	for v.Status != fleet.RunDone && v.Status != fleet.RunFailed {
		time.Sleep(time.Millisecond)
		if v, err = m.GetRun(id, v.ID); err != nil {
			panic(err)
		}
	}
	fmt.Println(v.ID, v.Status, v.Result.Ran)
	// Output: r1 done 1000
}

// ExampleManager_Park parks a session into a durable store and restarts
// the fleet over the same directory — what `doradod -store DIR` does
// across a process restart. Park can race the worker's hand-off for an
// instant after an operation completes, so real clients retry ErrBusy.
func ExampleManager_Park() {
	dir, err := os.MkdirTemp("", "dorado-store-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	sdb, err := store.Open(dir)
	if err != nil {
		panic(err)
	}
	m := fleet.New(fleet.Config{Workers: 1, Store: sdb})

	ctx := context.Background()
	id, err := m.Create(fleet.Spec{})
	if err != nil {
		panic(err)
	}
	if _, err := m.LoadMicrocode(ctx, id, fleet.SpinMicrocode, "start"); err != nil {
		panic(err)
	}
	if _, err := m.Run(ctx, id, 1000); err != nil {
		panic(err)
	}
	var res fleet.ParkResult
	for {
		if res, err = m.Park(id); !errors.Is(err, fleet.ErrBusy) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err != nil {
		panic(err)
	}
	m.Drain(ctx) //nolint:errcheck // Background never expires

	// "Restart": a fresh Manager over the same store directory adopts the
	// parked session and revives it lazily on first touch.
	sdb2, err := store.Open(dir)
	if err != nil {
		panic(err)
	}
	m2 := fleet.New(fleet.Config{Workers: 1, Store: sdb2})
	defer m2.Drain(ctx) //nolint:errcheck // Background never expires
	info := m2.Sessions()[0]
	st, err := m2.ReadState(ctx, info.ID)
	if err != nil {
		panic(err)
	}
	fmt.Println(info.Parked, info.Snapshot == res.Snapshot, st.Cycle)
	// Output: true true 1000
}

// ExampleManager_CreateFrom forks a new session from a stored snapshot
// hash — what POST /v1/sessions with {"from":"<hash>"} does. The fork
// starts at the donor's exact state and then diverges independently.
func ExampleManager_CreateFrom() {
	dir, err := os.MkdirTemp("", "dorado-store-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	sdb, err := store.Open(dir)
	if err != nil {
		panic(err)
	}
	m := fleet.New(fleet.Config{Workers: 1, Store: sdb})
	defer m.Drain(context.Background()) //nolint:errcheck // Background never expires

	ctx := context.Background()
	id, err := m.Create(fleet.Spec{})
	if err != nil {
		panic(err)
	}
	if _, err := m.LoadMicrocode(ctx, id, fleet.SpinMicrocode, "start"); err != nil {
		panic(err)
	}
	if _, err := m.Run(ctx, id, 1000); err != nil {
		panic(err)
	}
	var res fleet.ParkResult
	for {
		if res, err = m.Park(id); !errors.Is(err, fleet.ErrBusy) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err != nil {
		panic(err)
	}

	fork, err := m.CreateFrom(res.Snapshot)
	if err != nil {
		panic(err)
	}
	if _, err := m.Run(ctx, fork, 500); err != nil {
		panic(err)
	}
	forkSt, err := m.ReadState(ctx, fork)
	if err != nil {
		panic(err)
	}
	origSt, err := m.ReadState(ctx, id)
	if err != nil {
		panic(err)
	}
	fmt.Println(origSt.Cycle, forkSt.Cycle)
	// Output: 1000 1500
}

// ExampleManager_Health reads the O(1) liveness summary — what GET
// /healthz serves: session counts by residency from cached atomics, never
// a lock.
func ExampleManager_Health() {
	m := fleet.New(fleet.Config{Workers: 1})
	defer m.Drain(context.Background()) //nolint:errcheck // Background never expires

	if _, err := m.Create(fleet.Spec{}); err != nil {
		panic(err)
	}
	if _, err := m.Create(fleet.Spec{Language: "mesa"}); err != nil {
		panic(err)
	}
	h := m.Health()
	fmt.Println(h.Status, h.Sessions.Active, h.Sessions.Parked)
	// Output: ok 2 0
}

// ExampleManager_GCStore runs the store lifecycle end to end: three parks
// of a progressing session leave three snapshots in the store, the
// manifest references only the newest, and one sweep (what POST
// /v1/store/gc does, with max_age_ms 0 here) reclaims the two superseded
// ones. StoreStats is what GET /v1/store serves.
func ExampleManager_GCStore() {
	dir, err := os.MkdirTemp("", "dorado-store-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	sdb, err := store.Open(dir)
	if err != nil {
		panic(err)
	}
	m := fleet.New(fleet.Config{Workers: 1, Store: sdb})
	defer m.Drain(context.Background()) //nolint:errcheck // Background never expires

	ctx := context.Background()
	id, err := m.Create(fleet.Spec{})
	if err != nil {
		panic(err)
	}
	if _, err := m.LoadMicrocode(ctx, id, fleet.SpinMicrocode, "start"); err != nil {
		panic(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Run(ctx, id, 1000); err != nil {
			panic(err)
		}
		for {
			if _, err = m.Park(id); !errors.Is(err, fleet.ErrBusy) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		if err != nil {
			panic(err)
		}
	}

	before, err := m.StoreStats()
	if err != nil {
		panic(err)
	}
	res, err := m.GCStore(0) // 0: no age grace, reclaim all unreferenced
	if err != nil {
		panic(err)
	}
	after, err := m.StoreStats()
	if err != nil {
		panic(err)
	}
	st, err := m.ReadState(ctx, id) // the referenced snapshot still revives
	if err != nil {
		panic(err)
	}
	fmt.Println(before.Recipes, res.ReclaimedRecipes, after.Recipes, after.Bytes < before.Bytes, st.Cycle)
	// Output: 3 2 1 true 3000
}

// ExampleManager_Profile reads a profiled session's microarchitectural
// profile — what GET /v1/sessions/{id}/profile?format=json serves. The
// session carries a profiler (Spec.Profile) and the superblock translator,
// so the profile attributes every cycle to its microaddress and records
// why each superblock execution ended.
func ExampleManager_Profile() {
	m := fleet.New(fleet.Config{Workers: 1})
	defer m.Drain(context.Background()) //nolint:errcheck // Background never expires

	ctx := context.Background()
	spec := fleet.Spec{Profile: true}
	spec.Machine.Translation.Enable = true
	id, err := m.Create(spec)
	if err != nil {
		panic(err)
	}
	if _, err := m.LoadMicrocode(ctx, id, fleet.SpinMicrocode, "start"); err != nil {
		panic(err)
	}
	if _, err := m.Run(ctx, id, 10_000); err != nil {
		panic(err)
	}
	res, err := m.Profile(ctx, id)
	if err != nil {
		panic(err)
	}
	var cycles uint64
	for _, a := range res.Profile.Addrs {
		cycles += a.Cycles
	}
	fmt.Println(res.ID, cycles, res.Translation.BlocksBuilt > 0, len(res.Profile.Blocks) > 0)
	// Output: s1 10000 true true
}

// ExampleManager_FleetProfile merges every profiled session into one
// fleet-wide profile — what GET /v1/profile serves. Sessions without a
// profiler are skipped; the merge is deterministic (creation order).
func ExampleManager_FleetProfile() {
	m := fleet.New(fleet.Config{Workers: 1})
	defer m.Drain(context.Background()) //nolint:errcheck // Background never expires

	ctx := context.Background()
	for i := 0; i < 2; i++ {
		id, err := m.Create(fleet.Spec{Profile: true})
		if err != nil {
			panic(err)
		}
		if _, err := m.LoadMicrocode(ctx, id, fleet.SpinMicrocode, "start"); err != nil {
			panic(err)
		}
		if _, err := m.Run(ctx, id, 5_000); err != nil {
			panic(err)
		}
	}
	if _, err := m.Create(fleet.Spec{}); err != nil { // unprofiled bystander
		panic(err)
	}
	res, err := m.FleetProfile(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Sessions, res.Profile.Cycles)
	// Output: [s1 s2] 10000
}

// ExampleManager_webhook delivers a run completion by webhook: the
// session's Spec names a receiver URL (origin-allowlisted via
// Config.WebhookAllow / doradod -webhook-allow), and every terminal run
// view is POSTed there as JSON — push instead of polling GetRun.
func ExampleManager_webhook() {
	got := make(chan fleet.RunView, 1)
	rcv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var v fleet.RunView
		if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
			panic(err)
		}
		got <- v
		w.WriteHeader(http.StatusNoContent)
	}))
	defer rcv.Close()

	m := fleet.New(fleet.Config{Workers: 1, WebhookAllow: []string{rcv.URL}})
	defer m.Drain(context.Background()) //nolint:errcheck // Background never expires

	ctx := context.Background()
	id, err := m.Create(fleet.Spec{Webhook: rcv.URL + "/hooks/dorado"})
	if err != nil {
		panic(err)
	}
	if _, err := m.LoadMicrocode(ctx, id, fleet.SpinMicrocode, "start"); err != nil {
		panic(err)
	}
	if _, err := m.SubmitRun(ctx, id, 2000); err != nil {
		panic(err)
	}
	v := <-got
	fmt.Println(v.Session, v.ID, v.Status, v.Result.Cycle)
	// Output: s1 r1 done 2000
}
