package fleet

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// webhookSpec is smallSpec plus a delivery URL.
func webhookSpec(url string) Spec {
	sp := smallSpec()
	sp.Webhook = url
	return sp
}

// runToCompletion submits a run and waits for its terminal view.
func runToCompletion(t *testing.T, m *Manager, id string) {
	t.Helper()
	if _, err := m.LoadMicrocode(tctx, id, SpinMicrocode, "start"); err != nil {
		t.Fatal(err)
	}
	v, err := m.SubmitRun(tctx, id, 100)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := m.GetRun(id, v.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.Status == RunDone || got.Status == RunFailed {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s never finished", v.ID)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitCounter polls an atomic until it reaches want.
func waitCounter(t *testing.T, c *atomic.Uint64, want uint64, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want %d", what, c.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
	if got := c.Load(); got != want {
		t.Fatalf("%s = %d, want %d", what, got, want)
	}
}

// TestWebhookRetryThenDeliver: a receiver that fails twice then accepts
// sees exactly three attempts, and the fleet counts two retries and one
// delivery — the bounded-retry ladder working as documented.
func TestWebhookRetryThenDeliver(t *testing.T) {
	var calls atomic.Uint64
	var last atomic.Value
	rcv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "flaky", http.StatusInternalServerError)
			return
		}
		var v RunView
		if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
			t.Errorf("webhook body: %v", err)
		}
		last.Store(v)
		if r.Header.Get("Dorado-Event") != "run" || r.Header.Get("Dorado-Session") == "" {
			t.Errorf("webhook headers = %v", r.Header)
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer rcv.Close()

	m := New(Config{
		Workers:        1,
		WebhookAllow:   []string{rcv.URL},
		WebhookBackoff: time.Millisecond,
	})
	defer drainNow(t, m)
	id, err := m.Create(webhookSpec(rcv.URL))
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, m, id)

	waitCounter(t, &m.counters.webhookDelivered, 1, "delivered")
	if got := m.counters.webhookRetried.Load(); got != 2 {
		t.Fatalf("retried = %d, want 2", got)
	}
	if got := m.counters.webhookDropped.Load(); got != 0 {
		t.Fatalf("dropped = %d, want 0", got)
	}
	v, _ := last.Load().(RunView)
	if v.Session != id || v.Status != RunDone || v.Result == nil {
		t.Fatalf("delivered view = %+v", v)
	}
}

// TestWebhookDeadLetter: a receiver that never accepts exhausts the four
// attempts and the event is dropped, not retried forever.
func TestWebhookDeadLetter(t *testing.T) {
	var calls atomic.Uint64
	rcv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer rcv.Close()

	m := New(Config{
		Workers:        1,
		WebhookAllow:   []string{"*"},
		WebhookBackoff: time.Millisecond,
	})
	defer drainNow(t, m)
	id, err := m.Create(webhookSpec(rcv.URL))
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, m, id)

	waitCounter(t, &m.counters.webhookDropped, 1, "dropped")
	if got := calls.Load(); got != webhookMaxAttempts {
		t.Fatalf("attempts = %d, want %d", got, webhookMaxAttempts)
	}
	if got := m.counters.webhookDelivered.Load(); got != 0 {
		t.Fatalf("delivered = %d, want 0", got)
	}
}

// TestWebhookAllowlist: Create rejects webhooks outside the allowlist
// (and any webhook at all when the allowlist is empty) with a client
// error, before the session exists.
func TestWebhookAllowlist(t *testing.T) {
	m := New(Config{Workers: 1, WebhookAllow: []string{"https://hooks.example.com"}})
	defer drainNow(t, m)
	for _, url := range []string{
		"https://evil.example.net/exfil",
		"ftp://hooks.example.com/x",
		"http://hooks.example.com/x", // scheme mismatch: http != https
		"not a url at all ://",
	} {
		if _, err := m.Create(webhookSpec(url)); !errors.Is(err, errBadInput) {
			t.Errorf("Create(webhook=%q): %v", url, err)
		}
	}
	// Allowed origin, any path.
	if _, err := m.Create(webhookSpec("https://hooks.example.com/deep/path?x=1")); err != nil {
		t.Errorf("allowlisted webhook rejected: %v", err)
	}

	empty := New(Config{Workers: 1})
	defer drainNow(t, empty)
	if _, err := empty.Create(webhookSpec("https://hooks.example.com/x")); !errors.Is(err, errBadInput) {
		t.Errorf("empty allowlist accepted a webhook: %v", err)
	}
}
