package fleet

import (
	"bufio"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"

	"dorado/internal/store"
)

// waitRun polls a run until it reaches a terminal status.
func waitRun(t *testing.T, m *Manager, id, rid string) RunView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := m.GetRun(id, rid)
		if err != nil {
			t.Fatalf("get run %s/%s: %v", id, rid, err)
		}
		if v.Status == RunDone || v.Status == RunFailed {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s/%s stuck in %q", id, rid, v.Status)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubmitRunLifecycle(t *testing.T) {
	m := New(Config{Workers: 1})
	defer drainNow(t, m)
	id, err := m.Create(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadMicrocode(tctx, id, SpinMicrocode, "start"); err != nil {
		t.Fatal(err)
	}

	v, err := m.SubmitRun(tctx, id, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != "r1" || v.Session != id || v.Cycles != 1000 || v.Submitted.IsZero() {
		t.Fatalf("submitted view = %+v", v)
	}
	done := waitRun(t, m, id, v.ID)
	if done.Status != RunDone || done.Result == nil || done.Finished == nil {
		t.Fatalf("terminal view = %+v", done)
	}
	if done.Result.Ran != 1000 || done.Result.Cycle != 1000 || done.Result.Halted {
		t.Fatalf("result = %+v", done.Result)
	}

	// The run stays pollable, and the listing shows it.
	runs, err := m.Runs(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].ID != "r1" || runs[0].Status != RunDone {
		t.Fatalf("runs = %+v", runs)
	}
	if _, err := m.GetRun(id, "r99"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown run: %v", err)
	}
	if _, err := m.GetRun("nope", "r1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown session: %v", err)
	}
}

// TestRunRetention: finished runs beyond the per-session bound are
// evicted oldest-first; the newest stays pollable.
func TestRunRetention(t *testing.T) {
	m := New(Config{Workers: 1})
	defer drainNow(t, m)
	id, err := m.Create(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadMicrocode(tctx, id, SpinMicrocode, "start"); err != nil {
		t.Fatal(err)
	}
	total := maxRunsRetained + 8
	var last RunView
	for i := 0; i < total; i++ {
		if last, err = m.SubmitRun(tctx, id, 10); err != nil {
			t.Fatal(err)
		}
		waitRun(t, m, id, last.ID)
	}
	runs, err := m.Runs(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != maxRunsRetained {
		t.Fatalf("retained %d runs, want %d", len(runs), maxRunsRetained)
	}
	if runs[len(runs)-1].ID != last.ID {
		t.Fatalf("newest retained = %s, want %s", runs[len(runs)-1].ID, last.ID)
	}
	if _, err := m.GetRun(id, "r1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("oldest run should be evicted: %v", err)
	}
}

// TestServerAsyncRunLifecycle is the HTTP lifecycle: submit → 202 with a
// run id → the completion arrives on the SSE stream as a "run" event →
// the result is pollable at GET .../runs/{rid}.
func TestServerAsyncRunLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	id := createSession(t, ts.URL, "")
	loadAndRun(t, ts.URL, id, 2000)

	// Subscribe before submitting so the completion event cannot be missed.
	resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/events?interval_ms=10000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if ev, ok := readSSE(t, br); !ok || ev.name != "stats" {
		t.Fatalf("first event = %+v, ok %v", ev, ok)
	}

	var sub RunView
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+id+"/runs",
		map[string]uint64{"cycles": 3000}, &sub); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if sub.ID == "" || sub.Session != id {
		t.Fatalf("submitted = %+v", sub)
	}

	// The run-complete notification rides the stream.
	var runEv RunView
	for {
		ev, ok := readSSE(t, br)
		if !ok {
			t.Fatal("stream ended before the run event")
		}
		if ev.name != "run" {
			continue
		}
		if err := json.Unmarshal([]byte(ev.data), &runEv); err != nil {
			t.Fatalf("run event %q: %v", ev.data, err)
		}
		break
	}
	if runEv.ID != sub.ID || runEv.Status != RunDone || runEv.Result == nil || runEv.Result.Cycle != 5000 {
		t.Fatalf("run event = %+v", runEv)
	}

	// Poll the result; it matches the event.
	var got RunView
	if code := call(t, "GET", ts.URL+"/v1/sessions/"+id+"/runs/"+sub.ID, nil, &got); code != http.StatusOK {
		t.Fatalf("get run: status %d", code)
	}
	if got.Status != RunDone || got.Result == nil || got.Result.Ran != 3000 {
		t.Fatalf("polled run = %+v", got)
	}
	var list struct {
		Runs []RunView `json:"runs"`
	}
	if code := call(t, "GET", ts.URL+"/v1/sessions/"+id+"/runs", nil, &list); code != http.StatusOK {
		t.Fatalf("list runs: status %d", code)
	}
	// loadAndRun's sync run shares the resource, so both runs are listed.
	if len(list.Runs) != 2 {
		t.Fatalf("runs listed = %+v", list.Runs)
	}
}

// TestServerErrorEnvelope: every error path answers the one typed
// envelope with a stable code and, on session routes, the session state.
func TestServerErrorEnvelope(t *testing.T) {
	m, ts := newTestServer(t, Config{Workers: 1, MaxSessions: 2})

	var env ErrorEnvelope
	if code := call(t, "GET", ts.URL+"/v1/sessions/nope", nil, &env); code != http.StatusNotFound {
		t.Fatalf("unknown session: status %d", code)
	}
	if env.Code != "not_found" || env.SessionState != "unknown" || env.Error == "" {
		t.Fatalf("envelope = %+v", env)
	}

	id := createSession(t, ts.URL, "")
	env = ErrorEnvelope{}
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+id+"/run",
		map[string]uint64{"cycles": 0}, &env); code != http.StatusBadRequest {
		t.Fatalf("zero cycles: status %d", code)
	}
	if env.Code != "bad_request" || env.SessionState != "live" {
		t.Fatalf("envelope = %+v", env)
	}

	// Park while an operation is in flight → busy, state live.
	running, release := blockSession(t, m, id)
	<-running
	env = ErrorEnvelope{}
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+id+"/park", nil, &env); code != http.StatusConflict {
		t.Fatalf("busy park: status %d", code)
	}
	if env.Code != "busy" || env.SessionState != "live" {
		t.Fatalf("envelope = %+v", env)
	}
	release()

	// Storeless fork → no_store (no session named, so no session_state).
	env = ErrorEnvelope{}
	if code := call(t, "POST", ts.URL+"/v1/sessions",
		map[string]string{"from": "abc"}, &env); code != http.StatusConflict {
		t.Fatalf("storeless fork: status %d", code)
	}
	if env.Code != "no_store" || env.SessionState != "" {
		t.Fatalf("envelope = %+v", env)
	}

	// Session limit → too_many_sessions.
	createSession(t, ts.URL, "")
	env = ErrorEnvelope{}
	if code := call(t, "POST", ts.URL+"/v1/sessions", map[string]string{}, &env); code != http.StatusInsufficientStorage {
		t.Fatalf("session limit: status %d", code)
	}
	if env.Code != "too_many_sessions" {
		t.Fatalf("envelope = %+v", env)
	}

	// Trace without metrics → no_metrics.
	env = ErrorEnvelope{}
	if code := call(t, "GET", ts.URL+"/v1/sessions/"+id+"/trace", nil, &env); code != http.StatusConflict {
		t.Fatalf("no-metrics trace: status %d", code)
	}
	if env.Code != "no_metrics" || env.SessionState != "live" {
		t.Fatalf("envelope = %+v", env)
	}

	// Draining → draining.
	if code := call(t, "POST", ts.URL+"/v1/drain", nil, nil); code != http.StatusOK {
		t.Fatal("drain failed")
	}
	env = ErrorEnvelope{}
	if code := call(t, "GET", ts.URL+"/v1/sessions/"+id, nil, &env); code != http.StatusServiceUnavailable {
		t.Fatalf("draining read: status %d", code)
	}
	if env.Code != "draining" {
		t.Fatalf("envelope = %+v", env)
	}
}

// TestServerRestartDurability is the restart story over HTTP: park via
// the API, tear the whole server down (drain included), stand a new one
// up over the same store directory, and check the fleet came back —
// parked, hash-matching, lazily revivable.
func TestServerRestartDurability(t *testing.T) {
	dir := t.TempDir()
	m, ts := newTestServer(t, Config{Workers: 1, Store: openStore(t, dir)})
	id := createSession(t, ts.URL, "mesa")
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+id+"/boot",
		map[string]string{"source": "return 6*7;"}, nil); code != http.StatusOK {
		t.Fatalf("boot: status %d", code)
	}
	var run RunResult
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+id+"/run",
		map[string]uint64{"cycles": 1_000_000}, &run); code != http.StatusOK || !run.Halted {
		t.Fatalf("run: status %d, %+v", code, run)
	}
	res := parkNow(t, m, id)
	if res.Snapshot == "" {
		t.Fatalf("park = %+v", res)
	}
	ts.Close()
	drainNow(t, m)

	// Second process over the same directory.
	_, ts2 := newTestServer(t, Config{Workers: 1, Store: openStore(t, dir)})
	var list struct {
		Sessions []Info `json:"sessions"`
	}
	if code := call(t, "GET", ts2.URL+"/v1/sessions", nil, &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if len(list.Sessions) != 1 {
		t.Fatalf("sessions = %+v", list.Sessions)
	}
	in := list.Sessions[0]
	if in.ID != id || !in.Parked || in.Snapshot != res.Snapshot || in.Language != "Mesa" {
		t.Fatalf("adopted = %+v", in)
	}

	// The stored blob is readable by hash without touching the session.
	blob := getBytes(t, ts2.URL+"/v1/snapshots/"+res.Snapshot)
	if got := store.Hash(blob); got != res.Snapshot {
		t.Fatalf("blob hash = %s, want %s", got, res.Snapshot)
	}

	// First touch revives: the program state (42 on the stack) survived
	// the restart.
	var st State
	if code := call(t, "GET", ts2.URL+"/v1/sessions/"+id, nil, &st); code != http.StatusOK {
		t.Fatalf("state: status %d", code)
	}
	if !st.Parked || st.Cycle != run.Cycle || len(st.Stack) != 1 || st.Stack[0] != 42 {
		t.Fatalf("revived state = %+v", st)
	}

	// Fork the stored snapshot into a second session over the API.
	var forked struct {
		ID string `json:"id"`
	}
	if code := call(t, "POST", ts2.URL+"/v1/sessions",
		map[string]string{"from": res.Snapshot}, &forked); code != http.StatusCreated {
		t.Fatalf("fork: status %d", code)
	}
	var fst State
	if code := call(t, "GET", ts2.URL+"/v1/sessions/"+forked.ID, nil, &fst); code != http.StatusOK {
		t.Fatalf("fork state: status %d", code)
	}
	if fst.Cycle != run.Cycle || len(fst.Stack) != 1 || fst.Stack[0] != 42 {
		t.Fatalf("fork state = %+v", fst)
	}
}

// TestStressAsyncRunsWithDurableChurn mixes async runs, explicit parks,
// janitor sweeps, and store persistence from many goroutines under the
// race detector, then restarts over the store and verifies every
// session's exact cycle count survived.
func TestStressAsyncRunsWithDurableChurn(t *testing.T) {
	const (
		sessions   = 8
		iterations = 5
		perRun     = 100
	)
	dir := t.TempDir()
	m := New(Config{
		Workers:     4,
		MaxSessions: sessions,
		QueueDepth:  8,
		IdleAfter:   time.Millisecond,
		SweepEvery:  time.Hour,
		Store:       openStore(t, dir),
	})

	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(1)
	go func() { // sweeper: constant durable-park pressure
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.Sweep()
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	var wg sync.WaitGroup
	ids := make([]string, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := m.Create(smallSpec())
			if err != nil {
				t.Errorf("create: %v", err)
				return
			}
			ids[i] = id
			if _, err := m.LoadMicrocode(tctx, id, SpinMicrocode, "start"); err != nil {
				t.Errorf("load: %v", err)
				return
			}
			for n := 1; n <= iterations; n++ {
				v, err := m.SubmitRun(tctx, id, perRun)
				if err != nil {
					t.Errorf("%s submit: %v", id, err)
					return
				}
				fin := waitRun(t, m, id, v.ID)
				if fin.Status != RunDone || fin.Result.Cycle != uint64(n*perRun) {
					t.Errorf("%s run %d = %+v", id, n, fin)
					return
				}
				// Explicit park now and then; ErrBusy is expected noise
				// right after a run completes.
				if n%2 == 0 {
					if _, err := m.Park(id); err != nil && !errors.Is(err, ErrBusy) {
						t.Errorf("%s park: %v", id, err)
						return
					}
				}
				if st, err := m.ReadState(tctx, id); err != nil || st.Cycle != uint64(n*perRun) {
					t.Errorf("%s state after %d = %+v, %v", id, n, st, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	aux.Wait()
	drainNow(t, m)

	// Restart over the same store: every session is back with its exact
	// final cycle count.
	m2 := New(Config{Workers: 2, Store: openStore(t, dir)})
	defer drainNow(t, m2)
	infos := m2.Sessions()
	if len(infos) != sessions {
		t.Fatalf("restarted fleet has %d sessions, want %d", len(infos), sessions)
	}
	const want = uint64(iterations * perRun)
	for _, in := range infos {
		if !in.Parked {
			t.Errorf("%s not parked after restart", in.ID)
		}
		st, err := m2.ReadState(tctx, in.ID)
		if err != nil || st.Cycle != want {
			t.Errorf("%s revived cycle = %d (%v), want %d", in.ID, st.Cycle, err, want)
		}
	}
}
