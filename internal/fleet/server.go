package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"dorado"
	"dorado/internal/obs"
)

// Server is the HTTP/JSON face of a Manager — the handler cmd/doradod
// serves. Every session operation maps to one route; fleet errors map to
// status codes (ErrOverloaded → 429, ErrDraining → 503, ErrNotFound → 404,
// ErrNoMetrics → 409, bad input → 400). Every request gets a request id
// ("r1", "r2", ...) threaded through its context, so the access log and
// the manager's per-operation log correlate (see RequestID).
//
// Routes (all JSON unless noted):
//
//	POST   /v1/sessions               create a session {"language":"mesa","metrics":true,
//	                                  "devices":[{"name":"disk","start":"disk"}]} (see DeviceSpec)
//	GET    /v1/sessions               list sessions
//	GET    /v1/sessions/{id}          read architectural state
//	DELETE /v1/sessions/{id}          destroy the session
//	POST   /v1/sessions/{id}/microcode  {"text": "...", "start": "label"}
//	POST   /v1/sessions/{id}/boot       {"source": "..."} (compile + boot)
//	POST   /v1/sessions/{id}/run        {"cycles": N}
//	GET    /v1/sessions/{id}/snapshot   machine snapshot (octet-stream)
//	PUT    /v1/sessions/{id}/snapshot   restore a snapshot (octet-stream)
//	GET    /v1/sessions/{id}/trace      Chrome trace_event export (metrics sessions)
//	GET    /v1/sessions/{id}/obs        observability summary (metrics sessions)
//	GET    /v1/sessions/{id}/events     live stats stream (Server-Sent Events)
//	POST   /v1/drain                  drain the manager (graceful shutdown)
//	GET    /healthz                   liveness JSON (503 while draining)
//	GET    /metrics                   Prometheus text exposition
type Server struct {
	mgr *Manager
	mux *http.ServeMux
	// DrainTimeout bounds the /v1/drain request (default 30s).
	DrainTimeout time.Duration
	// Logger, when set, receives one structured record per request (request
	// id, method, path, status, duration). NewServer seeds it from the
	// manager's Config.Logger; nil disables access logging.
	Logger *slog.Logger

	reqSeq atomic.Uint64
}

// ctxKey is unexported so only this package can store request ids.
type ctxKey int

const requestIDKey ctxKey = iota

// RequestID returns the request id the server middleware stored in ctx, or
// "" when ctx carries none (direct Manager calls, tests). The manager's
// per-operation log attaches it so one slow HTTP request can be followed
// through submit, queue wait, and execution.
func RequestID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// statusWriter records the status code for the access log. Unwrap exposes
// the underlying writer so http.NewResponseController reaches Flush — the
// SSE stream depends on it.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// maxSnapshotBody bounds restore uploads; a full machine snapshot is a few
// hundred KiB, so 64 MiB is generous without being a memory hazard.
const maxSnapshotBody = 64 << 20

// NewServer wraps a Manager in its HTTP API.
func NewServer(m *Manager) *Server {
	s := &Server{mgr: m, mux: http.NewServeMux(), DrainTimeout: 30 * time.Second, Logger: m.cfg.Logger}
	s.mux.HandleFunc("POST /v1/sessions", s.createSession)
	s.mux.HandleFunc("GET /v1/sessions", s.listSessions)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.readState)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.destroySession)
	s.mux.HandleFunc("POST /v1/sessions/{id}/microcode", s.loadMicrocode)
	s.mux.HandleFunc("POST /v1/sessions/{id}/boot", s.bootSource)
	s.mux.HandleFunc("POST /v1/sessions/{id}/run", s.runCycles)
	s.mux.HandleFunc("GET /v1/sessions/{id}/snapshot", s.getSnapshot)
	s.mux.HandleFunc("PUT /v1/sessions/{id}/snapshot", s.putSnapshot)
	s.mux.HandleFunc("GET /v1/sessions/{id}/trace", s.traceJSON)
	s.mux.HandleFunc("GET /v1/sessions/{id}/obs", s.obsSummary)
	s.mux.HandleFunc("GET /v1/sessions/{id}/events", s.streamEvents)
	s.mux.HandleFunc("POST /v1/drain", s.drain)
	s.mux.HandleFunc("GET /healthz", s.healthz)
	obs.RegisterMetrics(s.mux, m.MetricsSnapshot)
	return s
}

// Mux exposes the underlying mux so callers (cmd/doradod) can mount
// additional routes — the expvar/pprof debug endpoints — beside the API.
// Handlers reached through the mux directly bypass the request-id and
// access-log middleware; serve through the Server to get both.
func (s *Server) Mux() *http.ServeMux { return s.mux }

// ServeHTTP implements http.Handler: it assigns the request id, serves
// through the mux, and emits the access-log record.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := "r" + strconv.FormatUint(s.reqSeq.Add(1), 10)
	r = r.WithContext(context.WithValue(r.Context(), requestIDKey, id))
	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()
	s.mux.ServeHTTP(sw, r)
	if s.Logger != nil {
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		s.Logger.LogAttrs(r.Context(), slog.LevelInfo, "http request",
			slog.String("req", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", code),
			slog.Int64("us", time.Since(start).Microseconds()))
	}
}

// httpError renders a fleet error as JSON with the mapped status code.
func httpError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrOverloaded):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrTooManySessions):
		code = http.StatusInsufficientStorage
	case errors.Is(err, ErrNoMetrics):
		code = http.StatusConflict
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func badRequest(w http.ResponseWriter, err error) {
	writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client disconnects only
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<24))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// parseLanguage maps the wire name onto a dorado.Language; "" and "none"
// select a bare machine.
func parseLanguage(name string) (dorado.Language, error) {
	switch strings.ToLower(name) {
	case "", "none":
		return dorado.None, nil
	case "mesa":
		return dorado.Mesa, nil
	case "bcpl":
		return dorado.BCPL, nil
	case "lisp":
		return dorado.Lisp, nil
	case "smalltalk":
		return dorado.Smalltalk, nil
	}
	return dorado.None, fmt.Errorf("unknown language %q", name)
}

func (s *Server) createSession(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Language string       `json:"language"`
		Metrics  bool         `json:"metrics"`
		Devices  []DeviceSpec `json:"devices"`
	}
	if err := decodeJSON(r, &req); err != nil && err != io.EOF {
		badRequest(w, err)
		return
	}
	if _, err := parseLanguage(req.Language); err != nil {
		badRequest(w, err)
		return
	}
	if err := validateDevices(req.Devices); err != nil {
		badRequest(w, err)
		return
	}
	id, err := s.mgr.Create(Spec{Language: req.Language, Metrics: req.Metrics, Devices: req.Devices})
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": id})
}

func (s *Server) listSessions(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"sessions": s.mgr.Sessions()})
}

func (s *Server) readState(w http.ResponseWriter, r *http.Request) {
	st, err := s.mgr.ReadState(r.Context(), r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) destroySession(w http.ResponseWriter, r *http.Request) {
	if err := s.mgr.Destroy(r.PathValue("id")); err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"destroyed": true})
}

func (s *Server) loadMicrocode(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Text  string `json:"text"`
		Start string `json:"start"`
	}
	if err := decodeJSON(r, &req); err != nil {
		badRequest(w, err)
		return
	}
	if req.Start == "" {
		req.Start = "start"
	}
	res, err := s.mgr.LoadMicrocode(r.Context(), r.PathValue("id"), req.Text, req.Start)
	if err != nil {
		if isFleetErr(err) {
			httpError(w, err)
		} else {
			badRequest(w, err) // assembly / placement / label errors
		}
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) bootSource(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Source string `json:"source"`
	}
	if err := decodeJSON(r, &req); err != nil {
		badRequest(w, err)
		return
	}
	if err := s.mgr.BootSource(r.Context(), r.PathValue("id"), req.Source); err != nil {
		if isFleetErr(err) {
			httpError(w, err)
		} else {
			badRequest(w, err) // compile errors
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"booted": true})
}

func (s *Server) runCycles(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Cycles uint64 `json:"cycles"`
	}
	if err := decodeJSON(r, &req); err != nil {
		badRequest(w, err)
		return
	}
	if req.Cycles == 0 {
		badRequest(w, errors.New("cycles must be positive"))
		return
	}
	res, err := s.mgr.Run(r.Context(), r.PathValue("id"), req.Cycles)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) getSnapshot(w http.ResponseWriter, r *http.Request) {
	data, err := s.mgr.Snapshot(r.Context(), r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data) //nolint:errcheck // client disconnects only
}

func (s *Server) putSnapshot(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSnapshotBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				map[string]string{"error": fmt.Sprintf("snapshot exceeds %d bytes", maxSnapshotBody)})
			return
		}
		badRequest(w, err)
		return
	}
	if err := s.mgr.Restore(r.Context(), r.PathValue("id"), data); err != nil {
		if isFleetErr(err) {
			httpError(w, err)
		} else {
			badRequest(w, err) // malformed or mismatched snapshot
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"restored": true})
}

func (s *Server) drain(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), s.DrainTimeout)
	defer cancel()
	if err := s.mgr.Drain(ctx); err != nil {
		writeJSON(w, http.StatusGatewayTimeout, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"drained": true})
}

func (s *Server) traceJSON(w http.ResponseWriter, r *http.Request) {
	data, err := s.mgr.TraceJSON(r.Context(), r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data) //nolint:errcheck // client disconnects only
}

func (s *Server) obsSummary(w http.ResponseWriter, r *http.Request) {
	res, err := s.mgr.ObsSummary(r.Context(), r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	h := s.mgr.Health()
	code := http.StatusOK
	if h.Draining {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// isFleetErr reports whether err is one of the manager's sentinels (whose
// status mapping should win over the generic 400 for user input).
func isFleetErr(err error) bool {
	return errors.Is(err, ErrOverloaded) || errors.Is(err, ErrDraining) ||
		errors.Is(err, ErrNotFound) || errors.Is(err, ErrTooManySessions) ||
		errors.Is(err, ErrNoMetrics)
}
