package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"dorado"
	"dorado/internal/obs"
	"dorado/internal/obs/prof"
	"dorado/internal/store"
)

// Server is the HTTP/JSON face of a Manager — the handler cmd/doradod
// serves. Every session operation maps to one route; every error is the
// uniform ErrorEnvelope JSON with the sentinel-mapped status code
// (ErrOverloaded → 429, ErrDraining → 503, ErrNotFound → 404,
// ErrTooManySessions → 507, ErrNoMetrics/ErrBusy/ErrNoStore → 409, bad
// input → 400). Every request gets a request id ("r1", "r2", ...)
// threaded through its context, so the access log and the manager's
// per-operation log correlate (see RequestID).
//
// Routes (all JSON unless noted):
//
//	POST   /v1/sessions               create a session {"language":"mesa","metrics":true,
//	                                  "devices":[{"name":"disk","start":"disk"}]} (see DeviceSpec),
//	                                  or fork one from a stored snapshot {"from":"<hash>"}
//	GET    /v1/sessions               list sessions
//	GET    /v1/sessions/{id}          read architectural state
//	DELETE /v1/sessions/{id}          destroy the session
//	POST   /v1/sessions/{id}/microcode  {"text": "...", "start": "label"}
//	POST   /v1/sessions/{id}/boot       {"source": "..."} (compile + boot)
//	POST   /v1/sessions/{id}/runs       submit an async run {"cycles": N} → 202 + run id
//	GET    /v1/sessions/{id}/runs       list the session's retained runs
//	GET    /v1/sessions/{id}/runs/{rid} poll one run's status/result
//	POST   /v1/sessions/{id}/run        synchronous run {"cycles": N} (deprecated: submits
//	                                    an async run and waits; prefer the runs resource)
//	POST   /v1/sessions/{id}/park       snapshot + evict now; returns the store hash
//	GET    /v1/sessions/{id}/snapshot   machine snapshot (octet-stream)
//	PUT    /v1/sessions/{id}/snapshot   restore a snapshot (octet-stream)
//	GET    /v1/snapshots/{hash}         read a stored snapshot blob (octet-stream)
//	GET    /v1/store                  durable-store stats (blob/section/recipe
//	                                  counts and bytes, dedupe and GC counters)
//	POST   /v1/store/gc               sweep the store now; optional body
//	                                  {"max_age_ms": N} overrides the configured
//	                                  GC age threshold for this sweep
//	GET    /v1/sessions/{id}/trace      Chrome trace_event export (metrics sessions)
//	GET    /v1/sessions/{id}/obs        observability summary (metrics sessions)
//	GET    /v1/sessions/{id}/profile    microarchitectural profile (profile sessions):
//	                                    gzipped pprof by default (go tool pprof opens the
//	                                    URL directly), ?format=json for the symbolized
//	                                    JSON document with superblock abort accounting
//	GET    /v1/profile                  fleet-wide merged profile (pprof, ?format=json)
//	GET    /v1/sessions/{id}/events     live stats stream (Server-Sent Events; run
//	                                    completions arrive as "run" events)
//	POST   /v1/drain                  drain the manager (graceful shutdown)
//	GET    /healthz                   liveness JSON (503 while draining)
//	GET    /metrics                   Prometheus text exposition
type Server struct {
	mgr *Manager
	mux *http.ServeMux
	// DrainTimeout bounds the /v1/drain request (default 30s).
	DrainTimeout time.Duration
	// Logger, when set, receives one structured record per request (request
	// id, method, path, status, duration). NewServer seeds it from the
	// manager's Config.Logger; nil disables access logging.
	Logger *slog.Logger

	reqSeq atomic.Uint64
}

// ctxKey is unexported so only this package can store request ids.
type ctxKey int

const requestIDKey ctxKey = iota

// RequestID returns the request id the server middleware stored in ctx, or
// "" when ctx carries none (direct Manager calls, tests). The manager's
// per-operation log attaches it so one slow HTTP request can be followed
// through submit, queue wait, and execution.
func RequestID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// statusWriter records the status code for the access log. Unwrap exposes
// the underlying writer so http.NewResponseController reaches Flush — the
// SSE stream depends on it.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// maxSnapshotBody bounds restore uploads; a full machine snapshot is a few
// hundred KiB, so 64 MiB is generous without being a memory hazard.
const maxSnapshotBody = 64 << 20

// NewServer wraps a Manager in its HTTP API.
func NewServer(m *Manager) *Server {
	s := &Server{mgr: m, mux: http.NewServeMux(), DrainTimeout: 30 * time.Second, Logger: m.cfg.Logger}
	s.mux.HandleFunc("POST /v1/sessions", s.createSession)
	s.mux.HandleFunc("GET /v1/sessions", s.listSessions)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.readState)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.destroySession)
	s.mux.HandleFunc("POST /v1/sessions/{id}/microcode", s.loadMicrocode)
	s.mux.HandleFunc("POST /v1/sessions/{id}/boot", s.bootSource)
	s.mux.HandleFunc("POST /v1/sessions/{id}/runs", s.startRun)
	s.mux.HandleFunc("GET /v1/sessions/{id}/runs", s.listRuns)
	s.mux.HandleFunc("GET /v1/sessions/{id}/runs/{rid}", s.getRun)
	s.mux.HandleFunc("POST /v1/sessions/{id}/run", s.runCycles)
	s.mux.HandleFunc("POST /v1/sessions/{id}/park", s.parkSession)
	s.mux.HandleFunc("GET /v1/sessions/{id}/snapshot", s.getSnapshot)
	s.mux.HandleFunc("PUT /v1/sessions/{id}/snapshot", s.putSnapshot)
	s.mux.HandleFunc("GET /v1/snapshots/{hash}", s.getStoredSnapshot)
	s.mux.HandleFunc("GET /v1/store", s.storeStats)
	s.mux.HandleFunc("POST /v1/store/gc", s.storeGC)
	s.mux.HandleFunc("GET /v1/sessions/{id}/trace", s.traceJSON)
	s.mux.HandleFunc("GET /v1/sessions/{id}/obs", s.obsSummary)
	s.mux.HandleFunc("GET /v1/sessions/{id}/profile", s.sessionProfile)
	s.mux.HandleFunc("GET /v1/profile", s.fleetProfile)
	s.mux.HandleFunc("GET /v1/sessions/{id}/events", s.streamEvents)
	s.mux.HandleFunc("POST /v1/drain", s.drain)
	s.mux.HandleFunc("GET /healthz", s.healthz)
	obs.RegisterMetrics(s.mux, m.MetricsSnapshot)
	return s
}

// Mux exposes the underlying mux so callers (cmd/doradod) can mount
// additional routes — the expvar/pprof debug endpoints — beside the API.
// Handlers reached through the mux directly bypass the request-id and
// access-log middleware; serve through the Server to get both.
func (s *Server) Mux() *http.ServeMux { return s.mux }

// ServeHTTP implements http.Handler: it assigns the request id, serves
// through the mux, and emits the access-log record.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := "r" + strconv.FormatUint(s.reqSeq.Add(1), 10)
	r = r.WithContext(context.WithValue(r.Context(), requestIDKey, id))
	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()
	s.mux.ServeHTTP(sw, r)
	if s.Logger != nil {
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		s.Logger.LogAttrs(r.Context(), slog.LevelInfo, "http request",
			slog.String("req", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", code),
			slog.Int64("us", time.Since(start).Microseconds()))
	}
}

// ErrorEnvelope is the uniform JSON error body every fleet endpoint
// returns: a stable machine-readable code, the human-readable error, and
// — when the failing route names a session — that session's residency,
// so a client distinguishing "404 because destroyed" from "409 because
// busy" never parses error strings.
type ErrorEnvelope struct {
	// Code is the stable classification: "overloaded", "draining",
	// "not_found", "too_many_sessions", "no_metrics", "no_profiler",
	// "busy", "no_store", "bad_request", "too_large", or "internal".
	Code string `json:"code"`
	// Error is the underlying error text.
	Error string `json:"error"`
	// SessionState reports the named session's residency at error time:
	// "live", "parked", "failed" (sticky revive error), or "unknown".
	// Omitted on routes that name no session.
	SessionState string `json:"session_state,omitempty"`
}

// errBadInput tags client-input errors (malformed JSON, unknown language,
// assembly failures) so writeError classifies them "bad_request"/400
// instead of "internal"/500.
var errBadInput = errors.New("bad request")

// classifyErr maps an error onto its envelope code and HTTP status.
func classifyErr(err error) (string, int) {
	var tooBig *http.MaxBytesError
	switch {
	case errors.Is(err, ErrOverloaded):
		return "overloaded", http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return "draining", http.StatusServiceUnavailable
	case errors.Is(err, ErrNotFound), errors.Is(err, store.ErrNoBlob):
		return "not_found", http.StatusNotFound
	case errors.Is(err, ErrTooManySessions):
		return "too_many_sessions", http.StatusInsufficientStorage
	case errors.Is(err, ErrNoMetrics):
		return "no_metrics", http.StatusConflict
	case errors.Is(err, ErrNoProfiler):
		return "no_profiler", http.StatusConflict
	case errors.Is(err, ErrBusy):
		return "busy", http.StatusConflict
	case errors.Is(err, ErrNoStore):
		return "no_store", http.StatusConflict
	case errors.As(err, &tooBig):
		return "too_large", http.StatusRequestEntityTooLarge
	case errors.Is(err, errBadInput):
		return "bad_request", http.StatusBadRequest
	}
	return "internal", http.StatusInternalServerError
}

// writeError renders any handler error as the ErrorEnvelope with its
// mapped status. All fleet error responses funnel through here.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, err error) {
	code, status := classifyErr(err)
	env := ErrorEnvelope{Code: code, Error: err.Error()}
	if id := r.PathValue("id"); id != "" {
		env.SessionState = s.mgr.sessionState(id)
	}
	writeJSON(w, status, env)
}

// badRequest wraps a client-input error with the bad_request tag and
// renders it through the envelope.
func (s *Server) badRequest(w http.ResponseWriter, r *http.Request, err error) {
	s.writeError(w, r, fmt.Errorf("%w: %w", errBadInput, err))
}

// sessionState classifies a session for the error envelope. It takes
// only the session lock, so it is safe on any error path.
func (m *Manager) sessionState(id string) string {
	s, ok := m.lookup(id)
	if !ok {
		return "unknown"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.reviveErr != nil:
		return "failed"
	case s.parkedLocked():
		return "parked"
	default:
		return "live"
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client disconnects only
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<24))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// parseLanguage maps the wire name onto a dorado.Language; "" and "none"
// select a bare machine.
func parseLanguage(name string) (dorado.Language, error) {
	switch strings.ToLower(name) {
	case "", "none":
		return dorado.None, nil
	case "mesa":
		return dorado.Mesa, nil
	case "bcpl":
		return dorado.BCPL, nil
	case "lisp":
		return dorado.Lisp, nil
	case "smalltalk":
		return dorado.Smalltalk, nil
	}
	return dorado.None, fmt.Errorf("unknown language %q", name)
}

func (s *Server) createSession(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Language string `json:"language"`
		Metrics  bool   `json:"metrics"`
		// Profile attaches a microarchitectural profiler (Spec.Profile).
		Profile bool `json:"profile"`
		// Translation enables the superblock translator on the session's
		// machine — the usual companion of Profile, whose abort accounting
		// explains the translator's coverage.
		Translation bool         `json:"translation"`
		Devices     []DeviceSpec `json:"devices"`
		// Webhook is a URL run completions are POSTed to; its origin
		// must be in the server's allowlist (doradod -webhook-allow).
		Webhook string `json:"webhook"`
		// From forks the new session from a stored snapshot hash; the
		// blob's Spec sidecar supplies the machine description, so From is
		// exclusive with the other fields.
		From string `json:"from"`
	}
	if err := decodeJSON(r, &req); err != nil && err != io.EOF {
		s.badRequest(w, r, err)
		return
	}
	if req.From != "" {
		if req.Language != "" || req.Metrics || req.Profile || req.Translation || len(req.Devices) != 0 || req.Webhook != "" {
			s.badRequest(w, r, errors.New(`"from" forks a stored snapshot and takes no other fields`))
			return
		}
		id, err := s.mgr.CreateFrom(req.From)
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"id": id})
		return
	}
	if _, err := parseLanguage(req.Language); err != nil {
		s.badRequest(w, r, err)
		return
	}
	if err := validateDevices(req.Devices); err != nil {
		s.badRequest(w, r, err)
		return
	}
	spec := Spec{Language: req.Language, Metrics: req.Metrics, Profile: req.Profile, Devices: req.Devices, Webhook: req.Webhook}
	if req.Translation {
		spec.Machine.Translation = dorado.Translation{Enable: true}
	}
	id, err := s.mgr.Create(spec)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": id})
}

func (s *Server) listSessions(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"sessions": s.mgr.Sessions()})
}

func (s *Server) readState(w http.ResponseWriter, r *http.Request) {
	st, err := s.mgr.ReadState(r.Context(), r.PathValue("id"))
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) destroySession(w http.ResponseWriter, r *http.Request) {
	if err := s.mgr.Destroy(r.PathValue("id")); err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"destroyed": true})
}

func (s *Server) loadMicrocode(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Text  string `json:"text"`
		Start string `json:"start"`
	}
	if err := decodeJSON(r, &req); err != nil {
		s.badRequest(w, r, err)
		return
	}
	if req.Start == "" {
		req.Start = "start"
	}
	res, err := s.mgr.LoadMicrocode(r.Context(), r.PathValue("id"), req.Text, req.Start)
	if err != nil {
		if isFleetErr(err) {
			s.writeError(w, r, err)
		} else {
			s.badRequest(w, r, err) // assembly / placement / label errors
		}
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) bootSource(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Source string `json:"source"`
	}
	if err := decodeJSON(r, &req); err != nil {
		s.badRequest(w, r, err)
		return
	}
	if err := s.mgr.BootSource(r.Context(), r.PathValue("id"), req.Source); err != nil {
		if isFleetErr(err) {
			s.writeError(w, r, err)
		} else {
			s.badRequest(w, r, err) // compile errors
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"booted": true})
}

// decodeCycles parses the shared {"cycles": N} request body.
func (s *Server) decodeCycles(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	var req struct {
		Cycles uint64 `json:"cycles"`
	}
	if err := decodeJSON(r, &req); err != nil {
		s.badRequest(w, r, err)
		return 0, false
	}
	if req.Cycles == 0 {
		s.badRequest(w, r, errors.New("cycles must be positive"))
		return 0, false
	}
	return req.Cycles, true
}

// runCycles is the deprecated synchronous run endpoint: it submits an
// async run and waits for it, so it shares admission, execution, and
// accounting with the runs resource. New clients should POST .../runs
// and poll (or watch the SSE stream).
func (s *Server) runCycles(w http.ResponseWriter, r *http.Request) {
	cycles, ok := s.decodeCycles(w, r)
	if !ok {
		return
	}
	res, err := s.mgr.Run(r.Context(), r.PathValue("id"), cycles)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// startRun submits an asynchronous run and answers 202 Accepted with the
// queued run's view; the id in it is pollable immediately.
func (s *Server) startRun(w http.ResponseWriter, r *http.Request) {
	cycles, ok := s.decodeCycles(w, r)
	if !ok {
		return
	}
	v, err := s.mgr.SubmitRun(r.Context(), r.PathValue("id"), cycles)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusAccepted, v)
}

func (s *Server) listRuns(w http.ResponseWriter, r *http.Request) {
	runs, err := s.mgr.Runs(r.PathValue("id"))
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"runs": runs})
}

func (s *Server) getRun(w http.ResponseWriter, r *http.Request) {
	v, err := s.mgr.GetRun(r.PathValue("id"), r.PathValue("rid"))
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// parkSession snapshots and evicts the session right now (vs waiting for
// the idle janitor); with a store configured the response carries the
// durable snapshot's hash.
func (s *Server) parkSession(w http.ResponseWriter, r *http.Request) {
	res, err := s.mgr.Park(r.PathValue("id"))
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// getStoredSnapshot serves a stored blob by content hash, without
// touching (or reviving) any session.
func (s *Server) getStoredSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.mgr.cfg.Store == nil {
		s.writeError(w, r, ErrNoStore)
		return
	}
	data, err := s.mgr.cfg.Store.Get(r.PathValue("hash"))
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data) //nolint:errcheck // client disconnects only
}

func (s *Server) getSnapshot(w http.ResponseWriter, r *http.Request) {
	data, err := s.mgr.Snapshot(r.Context(), r.PathValue("id"))
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data) //nolint:errcheck // client disconnects only
}

func (s *Server) putSnapshot(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSnapshotBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, r, fmt.Errorf("snapshot exceeds %d bytes: %w", maxSnapshotBody, err))
			return
		}
		s.badRequest(w, r, err)
		return
	}
	if err := s.mgr.Restore(r.Context(), r.PathValue("id"), data); err != nil {
		if isFleetErr(err) {
			s.writeError(w, r, err)
		} else {
			s.badRequest(w, r, err) // malformed or mismatched snapshot
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"restored": true})
}

// storeStats serves GET /v1/store: the durable store's inventory and
// lifecycle counters (409 no_store without -store).
func (s *Server) storeStats(w http.ResponseWriter, r *http.Request) {
	st, err := s.mgr.StoreStats()
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// storeGC serves POST /v1/store/gc: run one GC sweep now. The optional
// body {"max_age_ms": N} overrides the configured age threshold for this
// sweep only (0 reclaims every unreferenced snapshot immediately — the
// "disk full" recovery lever, see docs/OPERATIONS.md).
func (s *Server) storeGC(w http.ResponseWriter, r *http.Request) {
	var req struct {
		MaxAgeMS *int64 `json:"max_age_ms"`
	}
	if err := decodeJSON(r, &req); err != nil && err != io.EOF {
		s.badRequest(w, r, err)
		return
	}
	maxAge := -1 * time.Millisecond // negative: use the configured policy
	if req.MaxAgeMS != nil {
		if *req.MaxAgeMS < 0 {
			s.badRequest(w, r, errors.New("max_age_ms must be non-negative"))
			return
		}
		maxAge = time.Duration(*req.MaxAgeMS) * time.Millisecond
	}
	res, err := s.mgr.GCStore(maxAge)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) drain(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), s.DrainTimeout)
	defer cancel()
	if err := s.mgr.Drain(ctx); err != nil {
		writeJSON(w, http.StatusGatewayTimeout, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"drained": true})
}

func (s *Server) traceJSON(w http.ResponseWriter, r *http.Request) {
	data, err := s.mgr.TraceJSON(r.Context(), r.PathValue("id"))
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data) //nolint:errcheck // client disconnects only
}

func (s *Server) obsSummary(w http.ResponseWriter, r *http.Request) {
	res, err := s.mgr.ObsSummary(r.Context(), r.PathValue("id"))
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// sessionProfile serves one session's microarchitectural profile: gzipped
// pprof protobuf by default (so `go tool pprof <url>` works), the
// symbolized JSON document with ?format=json.
func (s *Server) sessionProfile(w http.ResponseWriter, r *http.Request) {
	res, err := s.mgr.Profile(r.Context(), r.PathValue("id"))
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.writeProfile(w, r, res, res.Profile)
}

// fleetProfile serves the merged fleet-wide profile in the same two
// formats as sessionProfile.
func (s *Server) fleetProfile(w http.ResponseWriter, r *http.Request) {
	res, err := s.mgr.FleetProfile(r.Context())
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.writeProfile(w, r, res, res.Profile)
}

// writeProfile renders a profile response: v as JSON when format=json, the
// bare profile as gzipped pprof otherwise.
func (s *Server) writeProfile(w http.ResponseWriter, r *http.Request, v any, p *prof.Profile) {
	switch format := r.URL.Query().Get("format"); format {
	case "json":
		writeJSON(w, http.StatusOK, v)
	case "", "pprof":
		w.Header().Set("Content-Type", "application/octet-stream")
		prof.WritePprof(w, p) //nolint:errcheck // client disconnects only
	default:
		s.badRequest(w, r, fmt.Errorf("unknown profile format %q (want pprof or json)", format))
	}
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	h := s.mgr.Health()
	code := http.StatusOK
	if h.Draining {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// isFleetErr reports whether err is one of the manager's sentinels (whose
// status mapping should win over the generic 400 for user input).
func isFleetErr(err error) bool {
	return errors.Is(err, ErrOverloaded) || errors.Is(err, ErrDraining) ||
		errors.Is(err, ErrNotFound) || errors.Is(err, ErrTooManySessions) ||
		errors.Is(err, ErrNoMetrics) || errors.Is(err, ErrNoProfiler) ||
		errors.Is(err, ErrBusy) ||
		errors.Is(err, ErrNoStore) || errors.Is(err, store.ErrNoBlob)
}
