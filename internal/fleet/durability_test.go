package fleet

import (
	"errors"
	"testing"
	"time"

	"dorado/internal/store"
)

// parkNow parks a session, retrying the transient ErrBusy window right
// after an operation completes (the worker may still hold the scheduled
// flag for an instant).
func parkNow(t *testing.T, m *Manager, id string) ParkResult {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := m.Park(id)
		if err == nil {
			return res
		}
		if !errors.Is(err, ErrBusy) || time.Now().After(deadline) {
			t.Fatalf("park %s: %v", id, err)
		}
		time.Sleep(time.Millisecond)
	}
}

// openStore opens a snapshot store rooted in dir.
func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	sdb, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return sdb
}

// TestDurableParkByteIdentical is the park/revive drift check: parking,
// reviving from the store blob, and parking again must produce the same
// content hash — the from-disk revival path reproduces the machine
// byte-exactly.
func TestDurableParkByteIdentical(t *testing.T) {
	dir := t.TempDir()
	m := New(Config{Workers: 1, Store: openStore(t, dir)})
	defer drainNow(t, m)

	id, err := m.Create(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadMicrocode(tctx, id, SpinMicrocode, "start"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(tctx, id, 1000); err != nil {
		t.Fatal(err)
	}

	res := parkNow(t, m, id)
	if !res.Parked || res.Snapshot == "" {
		t.Fatalf("park = %+v", res)
	}
	blob, err := m.cfg.Store.Get(res.Snapshot)
	if err != nil {
		t.Fatalf("stored blob unreadable: %v", err)
	}
	if store.Hash(blob) != res.Snapshot {
		t.Fatal("blob does not hash to its name")
	}
	// Parking again while parked is an idempotent success.
	again := parkNow(t, m, id)
	if again.Snapshot != res.Snapshot {
		t.Fatalf("re-park hash = %s, want %s", again.Snapshot, res.Snapshot)
	}

	// First touch revives from the store blob.
	st, err := m.ReadState(tctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Parked || st.Cycle != 1000 {
		t.Fatalf("revived state = %+v", st)
	}
	if m.counters.revived.Load() != 1 || m.counters.persisted.Load() != 1 {
		t.Fatalf("revived=%d persisted=%d", m.counters.revived.Load(), m.counters.persisted.Load())
	}

	// The drift check: a second park of the revived machine must address
	// the exact same bytes.
	reparked := parkNow(t, m, id)
	if reparked.Snapshot != res.Snapshot {
		t.Fatalf("park after revival = %s, want %s (revival drifted)", reparked.Snapshot, res.Snapshot)
	}
}

// TestRestartRevival is the restart story at the Manager level: a fresh
// Manager over the same store directory lists the parked session, its
// listing carries the stored hash, and first touch revives the exact
// bytes the previous process parked.
func TestRestartRevival(t *testing.T) {
	dir := t.TempDir()
	m := New(Config{Workers: 1, Store: openStore(t, dir)})

	id, err := m.Create(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadMicrocode(tctx, id, SpinMicrocode, "start"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(tctx, id, 1000); err != nil {
		t.Fatal(err)
	}
	res := parkNow(t, m, id)
	drainNow(t, m)

	// "Restart": a brand-new Manager over a brand-new Store handle.
	m2 := New(Config{Workers: 1, Store: openStore(t, dir)})
	defer drainNow(t, m2)
	infos := m2.Sessions()
	if len(infos) != 1 {
		t.Fatalf("sessions after restart = %+v", infos)
	}
	in := infos[0]
	if in.ID != id || !in.Parked || in.Snapshot != res.Snapshot || in.Cycle != 1000 {
		t.Fatalf("adopted session = %+v, want parked %s @1000 with %s", in, id, res.Snapshot)
	}
	if m2.counters.adopted.Load() != 1 {
		t.Fatalf("adopted counter = %d", m2.counters.adopted.Load())
	}

	// First touch revives; the serialized machine is byte-identical to the
	// pre-restart park.
	snap, err := m2.Snapshot(tctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if store.Hash(snap) != res.Snapshot {
		t.Fatal("revived snapshot differs from the pre-restart bytes")
	}
	st, err := m2.ReadState(tctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycle != 1000 || st.Parked {
		t.Fatalf("post-revival state = %+v", st)
	}

	// New ids continue past the adopted sequence instead of colliding.
	id2, err := m2.Create(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Fatalf("restarted manager reissued id %q", id2)
	}

	// Destroy removes the manifest entry but keeps the blob (fork
	// fodder). id2 is live and unparked, so it has no entry yet — the
	// manifest is empty after the destroy.
	if err := m2.Destroy(id); err != nil {
		t.Fatal(err)
	}
	sdb := openStore(t, dir)
	if list := sdb.Sessions(); len(list) != 0 {
		t.Fatalf("manifest after destroy = %+v", list)
	}
	if !sdb.Has(res.Snapshot) {
		t.Fatal("destroy deleted the content-addressed blob")
	}
}

// TestDrainParksIntoStore: sessions still live at drain time are parked
// into the store, so an abrupt-but-graceful shutdown loses nothing.
func TestDrainParksIntoStore(t *testing.T) {
	dir := t.TempDir()
	m := New(Config{Workers: 2, Store: openStore(t, dir)})

	var ids []string
	for i := 0; i < 3; i++ {
		id, err := m.Create(smallSpec())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.LoadMicrocode(tctx, id, SpinMicrocode, "start"); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(tctx, id, uint64(100*(i+1))); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	drainNow(t, m) // no explicit park: Drain must persist all three

	m2 := New(Config{Workers: 1, Store: openStore(t, dir)})
	defer drainNow(t, m2)
	infos := m2.Sessions()
	if len(infos) != len(ids) {
		t.Fatalf("restarted fleet = %+v", infos)
	}
	for i, in := range infos {
		want := uint64(100 * (i + 1))
		if in.ID != ids[i] || !in.Parked || in.Cycle != want || in.Snapshot == "" {
			t.Fatalf("session %d = %+v, want %s parked @%d", i, in, ids[i], want)
		}
		st, err := m2.ReadState(tctx, in.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Cycle != want {
			t.Fatalf("revived %s cycle = %d, want %d", in.ID, st.Cycle, want)
		}
	}
}

// TestCreateFromFork: any stored snapshot seeds a new session that then
// diverges independently of the original.
func TestCreateFromFork(t *testing.T) {
	dir := t.TempDir()
	m := New(Config{Workers: 1, Store: openStore(t, dir)})
	defer drainNow(t, m)

	id, err := m.Create(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadMicrocode(tctx, id, SpinMicrocode, "start"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(tctx, id, 1000); err != nil {
		t.Fatal(err)
	}
	res := parkNow(t, m, id)

	fork, err := m.CreateFrom(res.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if fork == id {
		t.Fatalf("fork reused id %q", fork)
	}
	if st, err := m.ReadState(tctx, fork); err != nil || st.Cycle != 1000 {
		t.Fatalf("fork state = %+v, %v", st, err)
	}
	if _, err := m.Run(tctx, fork, 500); err != nil {
		t.Fatal(err)
	}
	forkSt, err := m.ReadState(tctx, fork)
	if err != nil {
		t.Fatal(err)
	}
	origSt, err := m.ReadState(tctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if forkSt.Cycle != 1500 || origSt.Cycle != 1000 {
		t.Fatalf("fork=%d orig=%d, want 1500/1000", forkSt.Cycle, origSt.Cycle)
	}
	if m.counters.forked.Load() != 1 {
		t.Fatalf("forked counter = %d", m.counters.forked.Load())
	}

	// Unknown hashes and storeless managers fail with typed sentinels.
	if _, err := m.CreateFrom("0000000000000000000000000000000000000000000000000000000000000000"); !errors.Is(err, store.ErrNoBlob) {
		t.Fatalf("unknown hash: %v", err)
	}
	plain := New(Config{Workers: 1})
	defer drainNow(t, plain)
	if _, err := plain.CreateFrom(res.Snapshot); !errors.Is(err, ErrNoStore) {
		t.Fatalf("storeless fork: %v", err)
	}
}

// TestParkBusy: a session with in-flight work refuses an explicit park
// with ErrBusy instead of waiting or corrupting the queue.
func TestParkBusy(t *testing.T) {
	m := New(Config{Workers: 1})
	defer drainNow(t, m)
	id, err := m.Create(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	running, release := blockSession(t, m, id)
	<-running
	if _, err := m.Park(id); !errors.Is(err, ErrBusy) {
		t.Fatalf("park while busy: %v", err)
	}
	release()
	// Without a store, parking still works — snapshot held in memory,
	// hash empty.
	res := parkNow(t, m, id)
	if !res.Parked || res.Snapshot != "" {
		t.Fatalf("storeless park = %+v", res)
	}
	if _, err := m.Park("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("park unknown: %v", err)
	}
}
