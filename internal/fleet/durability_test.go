package fleet

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dorado/internal/store"
)

// parkNow parks a session, retrying the transient ErrBusy window right
// after an operation completes (the worker may still hold the scheduled
// flag for an instant).
func parkNow(t *testing.T, m *Manager, id string) ParkResult {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := m.Park(id)
		if err == nil {
			return res
		}
		if !errors.Is(err, ErrBusy) || time.Now().After(deadline) {
			t.Fatalf("park %s: %v", id, err)
		}
		time.Sleep(time.Millisecond)
	}
}

// openStore opens a snapshot store rooted in dir.
func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	sdb, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return sdb
}

// TestDurableParkByteIdentical is the park/revive drift check: parking,
// reviving from the store blob, and parking again must produce the same
// content hash — the from-disk revival path reproduces the machine
// byte-exactly.
func TestDurableParkByteIdentical(t *testing.T) {
	dir := t.TempDir()
	m := New(Config{Workers: 1, Store: openStore(t, dir)})
	defer drainNow(t, m)

	id, err := m.Create(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadMicrocode(tctx, id, SpinMicrocode, "start"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(tctx, id, 1000); err != nil {
		t.Fatal(err)
	}

	res := parkNow(t, m, id)
	if !res.Parked || res.Snapshot == "" {
		t.Fatalf("park = %+v", res)
	}
	blob, err := m.cfg.Store.Get(res.Snapshot)
	if err != nil {
		t.Fatalf("stored blob unreadable: %v", err)
	}
	if store.Hash(blob) != res.Snapshot {
		t.Fatal("blob does not hash to its name")
	}
	// Parking again while parked is an idempotent success.
	again := parkNow(t, m, id)
	if again.Snapshot != res.Snapshot {
		t.Fatalf("re-park hash = %s, want %s", again.Snapshot, res.Snapshot)
	}

	// First touch revives from the store blob.
	st, err := m.ReadState(tctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Parked || st.Cycle != 1000 {
		t.Fatalf("revived state = %+v", st)
	}
	if m.counters.revived.Load() != 1 || m.counters.persisted.Load() != 1 {
		t.Fatalf("revived=%d persisted=%d", m.counters.revived.Load(), m.counters.persisted.Load())
	}

	// The drift check: a second park of the revived machine must address
	// the exact same bytes.
	reparked := parkNow(t, m, id)
	if reparked.Snapshot != res.Snapshot {
		t.Fatalf("park after revival = %s, want %s (revival drifted)", reparked.Snapshot, res.Snapshot)
	}

	// A zero-grace GC sweep must not touch the manifest-referenced
	// snapshot, and what survives must still reassemble to the exact bytes
	// parked — the sectioned storage is invisible to the drift guarantee.
	if _, err := m.GCStore(0); err != nil {
		t.Fatal(err)
	}
	after, err := m.cfg.Store.Get(res.Snapshot)
	if err != nil {
		t.Fatalf("snapshot unreadable after GC: %v", err)
	}
	if store.Hash(after) != res.Snapshot {
		t.Fatal("post-GC reassembly drifted from the parked bytes")
	}
}

// TestRestartRevival is the restart story at the Manager level: a fresh
// Manager over the same store directory lists the parked session, its
// listing carries the stored hash, and first touch revives the exact
// bytes the previous process parked.
func TestRestartRevival(t *testing.T) {
	dir := t.TempDir()
	m := New(Config{Workers: 1, Store: openStore(t, dir)})

	id, err := m.Create(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadMicrocode(tctx, id, SpinMicrocode, "start"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(tctx, id, 1000); err != nil {
		t.Fatal(err)
	}
	res := parkNow(t, m, id)
	drainNow(t, m)

	// "Restart": a brand-new Manager over a brand-new Store handle.
	m2 := New(Config{Workers: 1, Store: openStore(t, dir)})
	defer drainNow(t, m2)
	infos := m2.Sessions()
	if len(infos) != 1 {
		t.Fatalf("sessions after restart = %+v", infos)
	}
	in := infos[0]
	if in.ID != id || !in.Parked || in.Snapshot != res.Snapshot || in.Cycle != 1000 {
		t.Fatalf("adopted session = %+v, want parked %s @1000 with %s", in, id, res.Snapshot)
	}
	if m2.counters.adopted.Load() != 1 {
		t.Fatalf("adopted counter = %d", m2.counters.adopted.Load())
	}

	// First touch revives; the serialized machine is byte-identical to the
	// pre-restart park.
	snap, err := m2.Snapshot(tctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if store.Hash(snap) != res.Snapshot {
		t.Fatal("revived snapshot differs from the pre-restart bytes")
	}
	st, err := m2.ReadState(tctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycle != 1000 || st.Parked {
		t.Fatalf("post-revival state = %+v", st)
	}

	// New ids continue past the adopted sequence instead of colliding.
	id2, err := m2.Create(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Fatalf("restarted manager reissued id %q", id2)
	}

	// Destroy removes the manifest entry but keeps the blob (fork
	// fodder). id2 is live and unparked, so it has no entry yet — the
	// manifest is empty after the destroy.
	if err := m2.Destroy(id); err != nil {
		t.Fatal(err)
	}
	sdb := openStore(t, dir)
	if list := sdb.Sessions(); len(list) != 0 {
		t.Fatalf("manifest after destroy = %+v", list)
	}
	if !sdb.Has(res.Snapshot) {
		t.Fatal("destroy deleted the content-addressed blob")
	}
}

// TestDrainParksIntoStore: sessions still live at drain time are parked
// into the store, so an abrupt-but-graceful shutdown loses nothing.
func TestDrainParksIntoStore(t *testing.T) {
	dir := t.TempDir()
	m := New(Config{Workers: 2, Store: openStore(t, dir)})

	var ids []string
	for i := 0; i < 3; i++ {
		id, err := m.Create(smallSpec())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.LoadMicrocode(tctx, id, SpinMicrocode, "start"); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(tctx, id, uint64(100*(i+1))); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	drainNow(t, m) // no explicit park: Drain must persist all three

	m2 := New(Config{Workers: 1, Store: openStore(t, dir)})
	defer drainNow(t, m2)
	infos := m2.Sessions()
	if len(infos) != len(ids) {
		t.Fatalf("restarted fleet = %+v", infos)
	}
	for i, in := range infos {
		want := uint64(100 * (i + 1))
		if in.ID != ids[i] || !in.Parked || in.Cycle != want || in.Snapshot == "" {
			t.Fatalf("session %d = %+v, want %s parked @%d", i, in, ids[i], want)
		}
		st, err := m2.ReadState(tctx, in.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Cycle != want {
			t.Fatalf("revived %s cycle = %d, want %d", in.ID, st.Cycle, want)
		}
	}
}

// TestCreateFromFork: any stored snapshot seeds a new session that then
// diverges independently of the original.
func TestCreateFromFork(t *testing.T) {
	dir := t.TempDir()
	m := New(Config{Workers: 1, Store: openStore(t, dir)})
	defer drainNow(t, m)

	id, err := m.Create(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadMicrocode(tctx, id, SpinMicrocode, "start"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(tctx, id, 1000); err != nil {
		t.Fatal(err)
	}
	res := parkNow(t, m, id)

	fork, err := m.CreateFrom(res.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if fork == id {
		t.Fatalf("fork reused id %q", fork)
	}
	if st, err := m.ReadState(tctx, fork); err != nil || st.Cycle != 1000 {
		t.Fatalf("fork state = %+v, %v", st, err)
	}
	if _, err := m.Run(tctx, fork, 500); err != nil {
		t.Fatal(err)
	}
	forkSt, err := m.ReadState(tctx, fork)
	if err != nil {
		t.Fatal(err)
	}
	origSt, err := m.ReadState(tctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if forkSt.Cycle != 1500 || origSt.Cycle != 1000 {
		t.Fatalf("fork=%d orig=%d, want 1500/1000", forkSt.Cycle, origSt.Cycle)
	}
	if m.counters.forked.Load() != 1 {
		t.Fatalf("forked counter = %d", m.counters.forked.Load())
	}

	// Unknown hashes and storeless managers fail with typed sentinels.
	if _, err := m.CreateFrom("0000000000000000000000000000000000000000000000000000000000000000"); !errors.Is(err, store.ErrNoBlob) {
		t.Fatalf("unknown hash: %v", err)
	}
	plain := New(Config{Workers: 1})
	defer drainNow(t, plain)
	if _, err := plain.CreateFrom(res.Snapshot); !errors.Is(err, ErrNoStore) {
		t.Fatalf("storeless fork: %v", err)
	}
}

// TestParkBusy: a session with in-flight work refuses an explicit park
// with ErrBusy instead of waiting or corrupting the queue.
func TestParkBusy(t *testing.T) {
	m := New(Config{Workers: 1})
	defer drainNow(t, m)
	id, err := m.Create(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	running, release := blockSession(t, m, id)
	<-running
	if _, err := m.Park(id); !errors.Is(err, ErrBusy) {
		t.Fatalf("park while busy: %v", err)
	}
	release()
	// Without a store, parking still works — snapshot held in memory,
	// hash empty.
	res := parkNow(t, m, id)
	if !res.Parked || res.Snapshot != "" {
		t.Fatalf("storeless park = %+v", res)
	}
	if _, err := m.Park("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("park unknown: %v", err)
	}
}

// TestGCReclaimsSupersededParks is the lifecycle acceptance check: parking
// a session after each of N work bursts leaves N snapshots in the store,
// only the newest of which the manifest references; a sweep reclaims the
// other N-1 (store bytes demonstrably fall), and the surviving snapshot
// still revives the session.
func TestGCReclaimsSupersededParks(t *testing.T) {
	const parks = 4
	dir := t.TempDir()
	m := New(Config{Workers: 1, Store: openStore(t, dir), GCMaxAge: -1})
	defer drainNow(t, m)

	id, err := m.Create(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadMicrocode(tctx, id, SpinMicrocode, "start"); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < parks; i++ {
		if _, err := m.Run(tctx, id, 100); err != nil {
			t.Fatal(err)
		}
		res := parkNow(t, m, id)
		if seen[res.Snapshot] {
			t.Fatalf("park %d reused hash %s", i, res.Snapshot)
		}
		seen[res.Snapshot] = true
	}

	before, err := m.StoreStats()
	if err != nil {
		t.Fatal(err)
	}
	if before.Recipes != parks {
		t.Fatalf("recipes before GC = %d, want %d", before.Recipes, parks)
	}
	res, err := m.GCStore(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReclaimedRecipes != parks-1 {
		t.Fatalf("sweep = %+v, want %d recipes reclaimed", res, parks-1)
	}
	after, err := m.StoreStats()
	if err != nil {
		t.Fatal(err)
	}
	if after.Bytes >= before.Bytes {
		t.Fatalf("store bytes %d -> %d: GC did not reclaim", before.Bytes, after.Bytes)
	}
	if after.GCRuns == 0 || after.GCReclaimedBytes != uint64(res.ReclaimedBytes) {
		t.Fatalf("gc stats = %+v vs sweep %+v", after, res)
	}

	// The manifest-referenced snapshot survived; the session revives.
	st, err := m.ReadState(tctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycle != parks*100 {
		t.Fatalf("revived cycle = %d, want %d", st.Cycle, parks*100)
	}
}

// TestReparkDedupesSections is the storage-efficiency acceptance check:
// a session that runs on between parks shares most of its snapshot (the
// memory images) with the previous park, so the second park must grow the
// store by less than half the snapshot size.
func TestReparkDedupesSections(t *testing.T) {
	dir := t.TempDir()
	m := New(Config{Workers: 1, Store: openStore(t, dir)})
	defer drainNow(t, m)

	id, err := m.Create(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadMicrocode(tctx, id, SpinMicrocode, "start"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(tctx, id, 100); err != nil {
		t.Fatal(err)
	}
	first := parkNow(t, m, id)
	before, _ := m.StoreStats()

	// Advance the machine so the next snapshot differs, then re-park.
	if _, err := m.Run(tctx, id, 100); err != nil {
		t.Fatal(err)
	}
	second := parkNow(t, m, id)
	if second.Snapshot == first.Snapshot {
		t.Fatal("snapshots identical; re-park measures nothing")
	}
	after, _ := m.StoreStats()

	snap, err := m.cfg.Store.Get(second.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	grew := after.Bytes - before.Bytes
	if grew >= int64(len(snap))/2 {
		t.Fatalf("re-park grew the store by %d bytes for a %d-byte snapshot (dedupe < 50%%)",
			grew, len(snap))
	}
	if after.SectionsDeduped == before.SectionsDeduped {
		t.Fatal("no sections deduped on re-park")
	}
}

// TestGCChurn races park/revive/fork against concurrent GC sweeps: with
// the pin discipline in place, no session and no fork may ever observe a
// missing snapshot, whatever interleaving the race detector provokes.
func TestGCChurn(t *testing.T) {
	const (
		sessions   = 4
		iterations = 8
	)
	dir := t.TempDir()
	m := New(Config{
		Workers:     4,
		MaxSessions: 64,
		Store:       openStore(t, dir),
		GCMaxAge:    -1, // every unreferenced snapshot is immediately fair game
	})
	defer drainNow(t, m)

	stop := make(chan struct{})
	var gcWG sync.WaitGroup
	gcWG.Add(1)
	go func() { // the adversary: sweep as aggressively as possible
		defer gcWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := m.GCStore(0); err != nil {
					t.Errorf("GC sweep: %v", err)
					return
				}
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			id, err := m.Create(smallSpec())
			if err != nil {
				t.Errorf("create: %v", err)
				return
			}
			if _, err := m.LoadMicrocode(tctx, id, SpinMicrocode, "start"); err != nil {
				t.Errorf("load: %v", err)
				return
			}
			cycles := uint64(0)
			for j := 0; j < iterations; j++ {
				if _, err := m.Run(tctx, id, 50); err != nil {
					t.Errorf("run %s: %v", id, err)
					return
				}
				cycles += 50
				res := parkNow(t, m, id)
				// Fork from the snapshot we just parked — the read path the
				// pins protect against a concurrent sweep.
				fork, err := m.CreateFrom(res.Snapshot)
				if err != nil {
					t.Errorf("fork of %s: %v (snapshot lost to GC?)", res.Snapshot, err)
					return
				}
				st, err := m.ReadState(tctx, fork)
				if err != nil || st.Cycle != cycles {
					t.Errorf("fork state = %+v, %v (want cycle %d)", st, err, cycles)
					return
				}
				if err := m.Destroy(fork); err != nil {
					t.Errorf("destroy fork: %v", err)
					return
				}
				// Revive the original and keep going.
				if st, err := m.ReadState(tctx, id); err != nil || st.Cycle != cycles {
					t.Errorf("revived state = %+v, %v (want cycle %d)", st, err, cycles)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	gcWG.Wait()

	// Zero lost sessions: every original is still listed and readable.
	infos := m.Sessions()
	if len(infos) != sessions {
		t.Fatalf("sessions after churn = %d, want %d", len(infos), sessions)
	}
	for _, in := range infos {
		if st, err := m.ReadState(tctx, in.ID); err != nil || st.Cycle != iterations*50 {
			t.Fatalf("session %s after churn = %+v, %v", in.ID, st, err)
		}
	}
}
