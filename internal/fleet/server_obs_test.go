package fleet

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"dorado"
	"dorado/internal/memory"
)

// createMetricsSession creates a session with an observability recorder
// attached over the HTTP API.
func createMetricsSession(t *testing.T, base string) string {
	t.Helper()
	var res struct {
		ID string `json:"id"`
	}
	if code := call(t, "POST", base+"/v1/sessions",
		map[string]any{"metrics": true}, &res); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	return res.ID
}

// loadAndRun loads the spin workload and runs cycles over the API.
func loadAndRun(t *testing.T, base, id string, cycles uint64) {
	t.Helper()
	if code := call(t, "POST", base+"/v1/sessions/"+id+"/microcode",
		map[string]string{"text": SpinMicrocode}, nil); code != http.StatusOK {
		t.Fatalf("microcode: status %d", code)
	}
	if code := call(t, "POST", base+"/v1/sessions/"+id+"/run",
		map[string]uint64{"cycles": cycles}, nil); code != http.StatusOK {
		t.Fatalf("run: status %d", code)
	}
}

func TestServerTraceAndObs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	id := createMetricsSession(t, ts.URL)
	loadAndRun(t, ts.URL, id, 5000)

	// /trace returns Chrome trace_event JSON.
	resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	err = json.NewDecoder(resp.Body).Decode(&trace)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || err != nil {
		t.Fatalf("trace: status %d, decode %v", resp.StatusCode, err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("trace content-type = %q", ct)
	}
	if len(trace.TraceEvents) == 0 {
		t.Error("trace has no events")
	}

	// /obs returns the condensed summary with the machine's cycle counter.
	var obsRes ObsResult
	if code := call(t, "GET", ts.URL+"/v1/sessions/"+id+"/obs", nil, &obsRes); code != http.StatusOK {
		t.Fatalf("obs: status %d", code)
	}
	if obsRes.ID != id || obsRes.Cycle != 5000 || obsRes.Revived {
		t.Fatalf("obs = %+v", obsRes)
	}
	if obsRes.Obs.TimelineInterval == 0 {
		t.Error("obs summary has no timeline interval")
	}

	// A session without a recorder refuses with 409.
	plain := createSession(t, ts.URL, "")
	for _, path := range []string{"/trace", "/obs"} {
		var errBody struct {
			Error string `json:"error"`
		}
		if code := call(t, "GET", ts.URL+"/v1/sessions/"+plain+path, nil, &errBody); code != http.StatusConflict {
			t.Errorf("%s on plain session: status %d", path, code)
		}
		if !strings.Contains(errBody.Error, "no metrics") {
			t.Errorf("%s error = %q", path, errBody.Error)
		}
	}

	// Unknown sessions 404 on every observability route.
	for _, path := range []string{"/trace", "/obs", "/events"} {
		if code := call(t, "GET", ts.URL+"/v1/sessions/nope"+path, nil, nil); code != http.StatusNotFound {
			t.Errorf("%s on unknown session: status %d", path, code)
		}
	}
}

// TestServerTraceParkedSession exports a trace from a parked session: the
// request revives the machine, and the resulting document is valid Chrome
// trace JSON covering the span since revival.
func TestServerTraceParkedSession(t *testing.T) {
	clock := struct {
		sync.Mutex
		t time.Time
	}{t: time.Unix(1000, 0)}
	now := func() time.Time {
		clock.Lock()
		defer clock.Unlock()
		return clock.t
	}
	m, ts := newTestServer(t, Config{Workers: 1, IdleAfter: time.Minute, SweepEvery: time.Hour, now: now})

	id, err := m.Create(Spec{
		Metrics: true,
		Machine: dorado.Config{Memory: memory.Config{StorageWords: 1 << 14}},
	})
	if err != nil {
		t.Fatal(err)
	}
	loadAndRun(t, ts.URL, id, 3000)

	clock.Lock()
	clock.t = clock.t.Add(2 * time.Minute)
	clock.Unlock()
	if n := m.Sweep(); n != 1 {
		t.Fatalf("sweep parked %d sessions, want 1", n)
	}
	if h := m.Health(); h.Sessions.Parked != 1 || h.Sessions.Active != 0 {
		t.Fatalf("health after park = %+v", h)
	}

	resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	err = json.NewDecoder(resp.Body).Decode(&trace)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || err != nil {
		t.Fatalf("parked trace: status %d, decode %v", resp.StatusCode, err)
	}
	// The revived recorder is fresh, so the document has only metadata
	// events — but it must still be a well-formed trace.
	if len(trace.TraceEvents) == 0 {
		t.Error("parked trace has no events at all")
	}
	if h := m.Health(); h.Sessions.Active != 1 || h.Sessions.Parked != 0 {
		t.Fatalf("health after revival = %+v", h)
	}
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	name string
	data string
}

// readSSE parses one event from the stream (blocking until it arrives).
func readSSE(t *testing.T, r *bufio.Reader) (sseEvent, bool) {
	t.Helper()
	var ev sseEvent
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return ev, false
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			ev.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.data = strings.TrimPrefix(line, "data: ")
		case line == "" && ev.name != "":
			return ev, true
		}
	}
}

func TestServerEventsStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	id := createSession(t, ts.URL, "")
	loadAndRun(t, ts.URL, id, 2000)

	resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/events?interval_ms=50")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)
	ev, ok := readSSE(t, br)
	if !ok || ev.name != "stats" {
		t.Fatalf("first event = %+v, ok %v", ev, ok)
	}
	var stats Event
	if err := json.Unmarshal([]byte(ev.data), &stats); err != nil {
		t.Fatalf("stats data %q: %v", ev.data, err)
	}
	if stats.ID != id || stats.Cycle != 2000 || stats.Parked {
		t.Fatalf("stats = %+v", stats)
	}

	// Destroying the session terminates the stream with a bye event.
	if code := call(t, "DELETE", ts.URL+"/v1/sessions/"+id, nil, nil); code != http.StatusOK {
		t.Fatalf("destroy: status %d", code)
	}
	for {
		ev, ok := readSSE(t, br)
		if !ok {
			t.Fatal("stream ended without a bye event")
		}
		if ev.name == "bye" {
			if !strings.Contains(ev.data, "destroyed") {
				t.Fatalf("bye data = %q", ev.data)
			}
			break
		}
	}

	// A bad interval is a 400, not a silent default.
	if code := call(t, "GET", ts.URL+"/v1/sessions/"+createSession(t, ts.URL, "")+"/events?interval_ms=nope",
		nil, nil); code != http.StatusBadRequest {
		t.Fatalf("bad interval: status %d", code)
	}
}

// TestServerEventsDrain is the drain regression test: an in-flight
// /events stream must terminate promptly (with a "drain" bye) when the
// manager drains, rather than holding the connection — and the drain
// request itself must not wait on the stream.
func TestServerEventsDrain(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	id := createSession(t, ts.URL, "")

	// Long interval: without the drain signal the next event would be 10
	// seconds out, so a prompt bye can only come from DrainSignal.
	resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/events?interval_ms=10000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if ev, ok := readSSE(t, br); !ok || ev.name != "stats" {
		t.Fatalf("first event = %+v, ok %v", ev, ok)
	}

	drained := make(chan int, 1)
	go func() {
		drained <- call(t, "POST", ts.URL+"/v1/drain", nil, nil)
	}()

	byeC := make(chan sseEvent, 1)
	go func() {
		for {
			ev, ok := readSSE(t, br)
			if !ok {
				return
			}
			if ev.name == "bye" {
				byeC <- ev
				return
			}
		}
	}()
	select {
	case ev := <-byeC:
		if !strings.Contains(ev.data, "drain") {
			t.Fatalf("bye data = %q", ev.data)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no bye event after drain")
	}
	select {
	case code := <-drained:
		if code != http.StatusOK {
			t.Fatalf("drain: status %d", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain blocked by the event stream")
	}
}

func TestServerHealthzCounts(t *testing.T) {
	m, ts := newTestServer(t, Config{Workers: 1})
	var h Health
	if code := call(t, "GET", ts.URL+"/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if h.Status != "ok" || h.Sessions.Total != 0 {
		t.Fatalf("empty health = %+v", h)
	}
	a := createSession(t, ts.URL, "")
	createSession(t, ts.URL, "")
	if code := call(t, "GET", ts.URL+"/healthz", nil, &h); code != http.StatusOK {
		t.Fatal("healthz failed")
	}
	if h.Sessions.Active != 2 || h.Sessions.Parked != 0 || h.Sessions.Total != 2 {
		t.Fatalf("health after creates = %+v", h)
	}
	if err := m.Destroy(a); err != nil {
		t.Fatal(err)
	}
	if code := call(t, "GET", ts.URL+"/healthz", nil, &h); code != http.StatusOK {
		t.Fatal("healthz failed")
	}
	if h.Sessions.Active != 1 || h.Sessions.Total != 1 {
		t.Fatalf("health after destroy = %+v", h)
	}
}

// TestServerOpLatencyMetrics checks the per-operation queue-wait and
// service-time histogram vectors reach the Prometheus exposition with op
// labels.
func TestServerOpLatencyMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	id := createSession(t, ts.URL, "")
	loadAndRun(t, ts.URL, id, 1000)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %v status %d", err, resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE dorado_fleet_op_queue_us histogram",
		"# TYPE dorado_fleet_op_service_us histogram",
		`dorado_fleet_op_queue_us_bucket{op="run",le="+Inf"} 1`,
		`dorado_fleet_op_service_us_count{op="run"} 1`,
		`dorado_fleet_op_service_us_count{op="microcode"} 1`,
		`dorado_fleet_op_queue_us_count{op="snapshot"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
