package fleet

import (
	"bytes"
	"compress/gzip"
	"context"
	"io"
	"net/http"
	"sync"
	"testing"

	"dorado/internal/obs/prof"
)

// createProfiledSession creates a bare microcode session with the profiler
// (and, when translated is set, the superblock translator) attached.
func createProfiledSession(t *testing.T, base string, translated bool) string {
	t.Helper()
	var res struct {
		ID string `json:"id"`
	}
	body := map[string]any{"profile": true, "translation": translated}
	if code := call(t, "POST", base+"/v1/sessions", body, &res); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	return res.ID
}

// fetchRaw does a GET and returns status, Content-Type, and the raw body.
func fetchRaw(t *testing.T, url string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), data
}

func TestServerProfileEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	// Unknown session: 404 regardless of format.
	if code := call(t, "GET", ts.URL+"/v1/sessions/nope/profile", nil, nil); code != http.StatusNotFound {
		t.Fatalf("profile of unknown session: status %d", code)
	}

	// A session created without Spec.Profile: 409 no_profiler.
	plain := createSession(t, ts.URL, "")
	var env ErrorEnvelope
	if code := call(t, "GET", ts.URL+"/v1/sessions/"+plain+"/profile?format=json", nil, &env); code != http.StatusConflict {
		t.Fatalf("profile of uninstrumented session: status %d", code)
	}
	if env.Code != "no_profiler" {
		t.Fatalf("envelope code = %q, want no_profiler", env.Code)
	}

	// A profiled, translated session running real microcode.
	id := createProfiledSession(t, ts.URL, true)
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+id+"/microcode",
		map[string]string{"text": SpinMicrocode, "start": "start"}, nil); code != http.StatusOK {
		t.Fatalf("microcode: status %d", code)
	}
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+id+"/run",
		map[string]uint64{"cycles": 5000}, nil); code != http.StatusOK {
		t.Fatalf("run: status %d", code)
	}

	// JSON form: symbolized addresses and the translator's counters.
	var res ProfileResult
	if code := call(t, "GET", ts.URL+"/v1/sessions/"+id+"/profile?format=json", nil, &res); code != http.StatusOK {
		t.Fatalf("profile json: status %d", code)
	}
	if res.ID != id || res.Profile == nil || len(res.Profile.Addrs) == 0 {
		t.Fatalf("profile json = %+v", res)
	}
	var total uint64
	symbolized := false
	for _, a := range res.Profile.Addrs {
		total += a.Cycles
		if a.Name != a.Addr.String() { // unsymbolized names fall back to "page.word"
			symbolized = true
		}
	}
	if total == 0 || !symbolized {
		t.Fatalf("profile addrs: total cycles %d, symbolized %v", total, symbolized)
	}
	if res.Translation.BlocksBuilt == 0 || len(res.Profile.Blocks) == 0 {
		t.Fatalf("translated session built no superblocks: %+v", res.Translation)
	}

	// Default form: gzipped pprof protobuf that decompresses to something.
	code, ctype, body := fetchRaw(t, ts.URL+"/v1/sessions/"+id+"/profile")
	if code != http.StatusOK || ctype != "application/octet-stream" {
		t.Fatalf("profile pprof: status %d, content-type %q", code, ctype)
	}
	zr, err := gzip.NewReader(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("profile body is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil || len(raw) == 0 {
		t.Fatalf("decompressing pprof: %d bytes, %v", len(raw), err)
	}

	// Unknown format: 400.
	if code := call(t, "GET", ts.URL+"/v1/sessions/"+id+"/profile?format=bogus", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("bogus format: status %d", code)
	}
}

func TestServerProfileRevivesParked(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	id := createProfiledSession(t, ts.URL, false)
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+id+"/microcode",
		map[string]string{"text": SpinMicrocode, "start": "start"}, nil); code != http.StatusOK {
		t.Fatalf("microcode: status %d", code)
	}
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+id+"/run",
		map[string]uint64{"cycles": 1000}, nil); code != http.StatusOK {
		t.Fatalf("run: status %d", code)
	}
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+id+"/park", nil, nil); code != http.StatusOK {
		t.Fatalf("park: status %d", code)
	}

	// Reading the profile revives the session. The profiler is rebuilt
	// fresh at revival, so the counters restart — but the microstore (and
	// with it the stashed symbol table) survives the round trip.
	var res ProfileResult
	if code := call(t, "GET", ts.URL+"/v1/sessions/"+id+"/profile?format=json", nil, &res); code != http.StatusOK {
		t.Fatalf("profile after park: status %d", code)
	}
	if !res.Revived {
		t.Fatal("profile read did not report revival")
	}
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+id+"/run",
		map[string]uint64{"cycles": 1000}, nil); code != http.StatusOK {
		t.Fatalf("run after revival: status %d", code)
	}
	var res2 ProfileResult
	if code := call(t, "GET", ts.URL+"/v1/sessions/"+id+"/profile?format=json", nil, &res2); code != http.StatusOK {
		t.Fatalf("profile after revival: status %d", code)
	}
	if res2.Revived || len(res2.Profile.Addrs) == 0 {
		t.Fatalf("post-revival profile = revived %v, %d addrs", res2.Revived, len(res2.Profile.Addrs))
	}
	for _, a := range res2.Profile.Addrs {
		if a.Name != a.Addr.String() {
			return // symbol table survived the park/revive round trip
		}
	}
	t.Fatal("post-revival profile lost its symbols")
}

func TestServerFleetProfileMergedDeterministic(t *testing.T) {
	m, ts := newTestServer(t, Config{Workers: 4})

	// Two profiled sessions and one uninstrumented bystander.
	a := createProfiledSession(t, ts.URL, false)
	b := createProfiledSession(t, ts.URL, true)
	plain := createSession(t, ts.URL, "")
	ctx := context.Background()
	for _, id := range []string{a, b} {
		if _, err := m.LoadMicrocode(ctx, id, SpinMicrocode, "start"); err != nil {
			t.Fatal(err)
		}
	}

	// Hammer both sessions from concurrent clients while scraping the
	// merged profile — the race detector checks the read path against
	// running machines.
	var wg sync.WaitGroup
	for _, id := range []string{a, b} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 20 {
				if _, err := m.Run(ctx, id, 500); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range 10 {
			if code, _, _ := fetchRaw(t, ts.URL+"/v1/profile"); code != http.StatusOK {
				t.Errorf("fleet profile during runs: status %d", code)
				return
			}
		}
	}()
	wg.Wait()

	// Quiesced, the merged view is deterministic: same sessions in
	// creation order, byte-identical on repeat, bystander excluded.
	var res FleetProfileResult
	if code := call(t, "GET", ts.URL+"/v1/profile?format=json", nil, &res); code != http.StatusOK {
		t.Fatalf("fleet profile: status %d", code)
	}
	if len(res.Sessions) != 2 || res.Sessions[0] != a || res.Sessions[1] != b {
		t.Fatalf("fleet profile sessions = %v, want [%s %s] (not %s)", res.Sessions, a, b, plain)
	}
	code1, _, body1 := fetchRaw(t, ts.URL+"/v1/profile?format=json")
	code2, _, body2 := fetchRaw(t, ts.URL+"/v1/profile?format=json")
	if code1 != http.StatusOK || code2 != http.StatusOK || !bytes.Equal(body1, body2) {
		t.Fatalf("merged profile not deterministic (%d, %d)", code1, code2)
	}

	// The merged totals equal the per-session sums.
	var pa, pb ProfileResult
	call(t, "GET", ts.URL+"/v1/sessions/"+a+"/profile?format=json", nil, &pa)
	call(t, "GET", ts.URL+"/v1/sessions/"+b+"/profile?format=json", nil, &pb)
	sum := func(p *prof.Profile) uint64 {
		var n uint64
		for _, ad := range p.Addrs {
			n += ad.Cycles
		}
		return n
	}
	if got, want := sum(res.Profile), sum(pa.Profile)+sum(pb.Profile); got != want {
		t.Fatalf("merged cycles = %d, want %d", got, want)
	}
}
