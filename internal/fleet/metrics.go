package fleet

import (
	"sync/atomic"

	"dorado"
	"dorado/internal/obs"
)

// counters is the manager's scrape-safe bookkeeping: every field is
// atomic, updated on the operation paths and read by MetricsSnapshot
// without stopping any simulation.
type counters struct {
	ops           [numOpKinds]atomic.Uint64
	rejectedLoad  atomic.Uint64 // ErrOverloaded rejections
	rejectedDrain atomic.Uint64
	created       atomic.Uint64
	destroyed     atomic.Uint64
	evicted       atomic.Uint64
	revived       atomic.Uint64
	adopted       atomic.Uint64 // sessions restored from a store manifest at startup
	persisted     atomic.Uint64 // snapshots written durably at park
	forked        atomic.Uint64 // sessions created from a stored snapshot (CreateFrom)
	runsSubmitted atomic.Uint64 // async runs accepted (includes the sync wrapper)
	cycles        atomic.Uint64 // simulated cycles, all sessions ever

	webhookDelivered atomic.Uint64 // run webhooks acknowledged with a 2xx
	webhookRetried   atomic.Uint64 // delivery attempts that failed and were retried
	webhookDropped   atomic.Uint64 // dead-lettered deliveries (retries exhausted, origin rejected, or drain)
}

// MetricsSnapshot assembles the fleet's Prometheus families: manager-level
// counters plus one cycles/instructions sample per session, in creation
// order so identical fleets export identical text. It reads only atomics
// and the session table, never a running machine — safe to call from a
// scrape handler at any time.
func (m *Manager) MetricsSnapshot() *obs.Snapshot {
	m.mu.Lock()
	list := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		list = append(list, s)
	}
	draining := m.draining
	m.mu.Unlock()
	sortSessions(list)

	live, parked, queued := 0, 0, 0
	cyc := make([]obs.Sample, 0, len(list))
	exec := make([]obs.Sample, 0, len(list))
	holds := make([]obs.Sample, 0, len(list))
	var transBlocks, transEntries, transFused, transInvalids []obs.Sample
	var profExits []obs.Sample
	for _, s := range list {
		s.mu.Lock()
		if s.sys == nil {
			parked++
		} else {
			live++
		}
		queued += len(s.pending)
		s.mu.Unlock()
		label := `{session="` + s.id + `"}`
		cyc = append(cyc, obs.Sample{Label: label, Value: s.stats.cycles.Load()})
		exec = append(exec, obs.Sample{Label: label, Value: s.stats.executed.Load()})
		holds = append(holds, obs.Sample{Label: label, Value: s.stats.holds.Load()})
		// Translator families export only for sessions with translation
		// enabled, profiler exits only with Spec.Profile — all-zero series
		// for the rest would just bloat the scrape.
		if s.spec.Machine.Translation.Enable {
			transBlocks = append(transBlocks, obs.Sample{Label: label, Value: s.stats.transBlocks.Load()})
			transEntries = append(transEntries, obs.Sample{Label: label, Value: s.stats.transEntries.Load()})
			transFused = append(transFused, obs.Sample{Label: label, Value: s.stats.transFused.Load()})
			transInvalids = append(transInvalids, obs.Sample{Label: label, Value: s.stats.transInvalids.Load()})
		}
		if s.spec.Profile {
			for r := dorado.ExitReason(0); r < dorado.NumExitReasons; r++ {
				profExits = append(profExits, obs.Sample{
					Label: `{session="` + s.id + `",reason="` + r.String() + `"}`,
					Value: s.stats.profExits[r].Load(),
				})
			}
		}
	}

	sn := &obs.Snapshot{}
	sn.Add("dorado_fleet_sessions", "Sessions owned by the manager, by residency.", "gauge",
		obs.Sample{Label: `{state="live"}`, Value: uint64(live)},
		obs.Sample{Label: `{state="parked"}`, Value: uint64(parked)})
	sn.Add("dorado_fleet_workers", "Worker goroutines executing session operations.", "gauge",
		obs.Sample{Value: uint64(m.cfg.Workers)})
	sn.Add("dorado_fleet_queue_depth", "Operations waiting in session queues.", "gauge",
		obs.Sample{Value: uint64(queued)})
	sn.Add("dorado_fleet_draining", "1 while the manager is draining.", "gauge",
		obs.Sample{Value: b2u(draining)})

	opSamples := make([]obs.Sample, 0, int(numOpKinds))
	for k := opKind(0); k < numOpKinds; k++ {
		opSamples = append(opSamples, obs.Sample{
			Label: `{op="` + k.String() + `"}`, Value: m.counters.ops[k].Load(),
		})
	}
	sn.Add("dorado_fleet_ops_total", "Successfully completed session operations, by kind.", "counter", opSamples...)
	sn.Add("dorado_fleet_rejected_total", "Rejected operations, by reason.", "counter",
		obs.Sample{Label: `{reason="overloaded"}`, Value: m.counters.rejectedLoad.Load()},
		obs.Sample{Label: `{reason="draining"}`, Value: m.counters.rejectedDrain.Load()})
	sn.Add("dorado_fleet_sessions_created_total", "Sessions ever created.", "counter",
		obs.Sample{Value: m.counters.created.Load()})
	sn.Add("dorado_fleet_sessions_destroyed_total", "Sessions ever destroyed.", "counter",
		obs.Sample{Value: m.counters.destroyed.Load()})
	sn.Add("dorado_fleet_sessions_evicted_total", "Idle sessions parked to a snapshot.", "counter",
		obs.Sample{Value: m.counters.evicted.Load()})
	sn.Add("dorado_fleet_sessions_revived_total", "Parked sessions rebuilt on demand.", "counter",
		obs.Sample{Value: m.counters.revived.Load()})
	sn.Add("dorado_fleet_sessions_adopted_total", "Sessions adopted from the store manifest at startup.", "counter",
		obs.Sample{Value: m.counters.adopted.Load()})
	sn.Add("dorado_fleet_snapshots_persisted_total", "Snapshots written durably to the store at park.", "counter",
		obs.Sample{Value: m.counters.persisted.Load()})
	sn.Add("dorado_fleet_sessions_forked_total", "Sessions created from a stored snapshot.", "counter",
		obs.Sample{Value: m.counters.forked.Load()})
	sn.Add("dorado_fleet_runs_submitted_total", "Async runs accepted, including the sync wrapper's.", "counter",
		obs.Sample{Value: m.counters.runsSubmitted.Load()})
	sn.Add("dorado_fleet_cycles_total", "Simulated cycles across all sessions.", "counter",
		obs.Sample{Value: m.counters.cycles.Load()})
	sn.Add("dorado_fleet_webhook_delivered_total", "Run webhooks acknowledged by the receiver (2xx).", "counter",
		obs.Sample{Value: m.counters.webhookDelivered.Load()})
	sn.Add("dorado_fleet_webhook_retried_total", "Failed webhook attempts that were retried.", "counter",
		obs.Sample{Value: m.counters.webhookRetried.Load()})
	sn.Add("dorado_fleet_webhook_dropped_total", "Dead-lettered webhook deliveries (retries exhausted, origin rejected, or drain).", "counter",
		obs.Sample{Value: m.counters.webhookDropped.Load()})

	if m.cfg.Store != nil {
		st := m.cfg.Store.Stats()
		sn.Add("dorado_store_blobs", "Durable-store payload files, by kind.", "gauge",
			obs.Sample{Label: `{kind="whole"}`, Value: uint64(st.Blobs)},
			obs.Sample{Label: `{kind="recipe"}`, Value: uint64(st.Recipes)},
			obs.Sample{Label: `{kind="section"}`, Value: uint64(st.Sections)})
		sn.Add("dorado_store_bytes", "Durable-store payload bytes (whole blobs + sections + recipes).", "gauge",
			obs.Sample{Value: uint64(st.Bytes)})
		sn.Add("dorado_store_sessions", "Sessions the store manifest references.", "gauge",
			obs.Sample{Value: uint64(st.Sessions)})
		sn.Add("dorado_store_sections_deduped_total", "Snapshot sections not rewritten because an identical blob existed.", "counter",
			obs.Sample{Value: st.SectionsDeduped})
		sn.Add("dorado_store_deduped_bytes_total", "Bytes those deduplicated sections would have written.", "counter",
			obs.Sample{Value: st.DedupedBytes})
		sn.Add("dorado_store_gc_runs_total", "Completed store GC sweeps.", "counter",
			obs.Sample{Value: st.GCRuns})
		sn.Add("dorado_store_gc_reclaimed_bytes_total", "Bytes reclaimed by store GC sweeps.", "counter",
			obs.Sample{Value: st.GCReclaimedBytes})
	}

	sn.AddHistogramVec("dorado_fleet_op_queue_us",
		"Operation queue wait (submit accepted to worker pickup), microseconds, by kind.",
		snapshotVec(&m.lat.queue)...)
	sn.AddHistogramVec("dorado_fleet_op_service_us",
		"Operation service time (body execution), microseconds, by kind.",
		snapshotVec(&m.lat.service)...)

	sn.Add("dorado_fleet_session_cycles_total", "Machine cycle counter per session.", "counter", cyc...)
	sn.Add("dorado_fleet_session_instructions_total", "Executed microinstructions per session.", "counter", exec...)
	sn.Add("dorado_fleet_session_holds_total", "Held cycles per session.", "counter", holds...)
	if len(transBlocks) > 0 {
		sn.Add("dorado_translate_blocks_built_total", "Superblocks compiled, per translated session.", "counter", transBlocks...)
		sn.Add("dorado_translate_entries_total", "Superblock executions, per translated session.", "counter", transEntries...)
		sn.Add("dorado_translate_fused_cycles_total", "Cycles retired inside superblocks, per translated session.", "counter", transFused...)
		sn.Add("dorado_translate_invalidations_total", "Translation-cache flushes, per translated session.", "counter", transInvalids...)
	}
	if len(profExits) > 0 {
		sn.Add("dorado_prof_block_exits_total",
			"Superblock exits by reason, per profiled session (guard_fail counts rejected entries).",
			"counter", profExits...)
	}
	return sn
}

// Health is the cheap liveness view served by GET /healthz: session counts
// by residency plus the drain flag. Assembled from cached atomics only —
// no session locks, no table walk — so probes stay O(1) however busy the
// fleet is.
type Health struct {
	Status   string `json:"status"` // "ok" or "draining"
	Draining bool   `json:"draining,omitempty"`
	Sessions struct {
		Active int64 `json:"active"`
		Parked int64 `json:"parked"`
		Total  int64 `json:"total"`
	} `json:"sessions"`
}

// Health reports the manager's liveness summary. It reads three atomics
// and one channel, so it is safe to call at any probe frequency.
func (m *Manager) Health() Health {
	var h Health
	h.Status = "ok"
	select {
	case <-m.drainC:
		h.Status = "draining"
		h.Draining = true
	default:
	}
	h.Sessions.Active = m.nLive.Load()
	h.Sessions.Parked = m.nParked.Load()
	h.Sessions.Total = h.Sessions.Active + h.Sessions.Parked
	return h
}

func b2u(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}
