package fleet

// Webhook delivery for run completions: a session created with
// Spec.Webhook gets every terminal RunView POSTed to that URL, so
// non-SSE clients stop polling GetRun. Delivery rides on the run's
// completion waiter (runs.go) — already off the worker path, already
// drain-tracked — with bounded retry and exponential backoff; a delivery
// that exhausts its attempts is dead-lettered into the dropped counter
// (dorado_fleet_webhook_dropped_total) and logged, never retried forever.
//
// Outbound HTTP to arbitrary session-supplied URLs is an SSRF hazard, so
// webhooks are allowlist-gated twice: Create rejects a Spec whose
// webhook origin is not in Config.WebhookAllow (doradod -webhook-allow),
// and delivery re-checks — a Spec can also enter through a store sidecar
// (CreateFrom, adoption) written under an older allowlist, and the check
// at delivery time is the one that actually guards the socket.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// webhookMaxAttempts bounds delivery: one initial attempt plus three
// retries, after which the event is dead-lettered.
const webhookMaxAttempts = 4

// webhookOrigin canonicalizes a webhook URL to its origin
// ("scheme://host[:port]", lowercased) for allowlist matching.
func webhookOrigin(raw string) (string, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("webhook url %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("webhook url %q: scheme must be http or https", raw)
	}
	if u.Host == "" {
		return "", fmt.Errorf("webhook url %q: missing host", raw)
	}
	return strings.ToLower(u.Scheme + "://" + u.Host), nil
}

// checkWebhook validates a webhook URL against the configured origin
// allowlist. An empty allowlist rejects everything (delivery is strictly
// operator-opt-in); the entry "*" allows any origin.
func (m *Manager) checkWebhook(raw string) error {
	origin, err := webhookOrigin(raw)
	if err != nil {
		return err
	}
	for _, a := range m.cfg.WebhookAllow {
		if a == "*" {
			return nil
		}
		if ao, err := webhookOrigin(a); err == nil && ao == origin {
			return nil
		}
	}
	return fmt.Errorf("webhook origin %s is not allowlisted (see -webhook-allow)", origin)
}

// deliverWebhook POSTs a terminal run view to the session's webhook with
// bounded retry. It runs on the run's completion waiter goroutine (runWG
// tracked), and its backoff sleeps abort on the drain signal so shutdown
// never waits out a retry ladder.
func (m *Manager) deliverWebhook(hook string, v RunView) {
	if err := m.checkWebhook(hook); err != nil {
		m.counters.webhookDropped.Add(1)
		if m.cfg.Logger != nil {
			m.cfg.Logger.Warn("fleet: webhook dropped (origin not allowlisted)",
				"session", v.Session, "run", v.ID, "err", err)
		}
		return
	}
	body, err := json.Marshal(v)
	if err != nil {
		m.counters.webhookDropped.Add(1)
		return
	}
	backoff := m.cfg.WebhookBackoff
	for attempt := 1; ; attempt++ {
		err := m.postWebhook(hook, body, v)
		if err == nil {
			m.counters.webhookDelivered.Add(1)
			return
		}
		if attempt >= webhookMaxAttempts {
			m.counters.webhookDropped.Add(1)
			if m.cfg.Logger != nil {
				m.cfg.Logger.Warn("fleet: webhook dead-lettered",
					"session", v.Session, "run", v.ID, "attempts", attempt, "err", err)
			}
			return
		}
		m.counters.webhookRetried.Add(1)
		select {
		case <-time.After(backoff):
			backoff *= 2
		case <-m.drainC:
			// Draining: abandon the retry ladder rather than hold
			// shutdown hostage; the event is dead-lettered.
			m.counters.webhookDropped.Add(1)
			return
		}
	}
}

// postWebhook issues one delivery attempt. Success is any 2xx response.
func (m *Manager) postWebhook(hook string, body []byte, v RunView) error {
	req, err := http.NewRequest(http.MethodPost, hook, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Dorado-Event", "run")
	req.Header.Set("Dorado-Session", v.Session)
	req.Header.Set("Dorado-Run", v.ID)
	resp, err := m.cfg.WebhookClient.Do(req)
	if err != nil {
		return err
	}
	// Drain a little so the connection can be reused, then close.
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck // best-effort drain
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("webhook: receiver answered %s", resp.Status)
	}
	return nil
}
