package fleet

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// This file is the async runs resource: a run is a first-class object
// with an id, a status, and a result that outlives the request that
// submitted it. SubmitRun returns as soon as the run is admitted to the
// session's queue (backpressure errors still arrive synchronously);
// clients poll GetRun or watch the session's SSE stream for the
// run-complete event. The synchronous Manager.Run is a thin wrapper that
// submits and waits — one execution path for both API shapes.

// RunStatus is a run's lifecycle position.
type RunStatus string

// Run lifecycle states, in order. A run is "queued" from admission until
// a worker picks it up, "running" while the machine advances, and ends
// as exactly one of "done" or "failed".
const (
	RunQueued  RunStatus = "queued"
	RunRunning RunStatus = "running"
	RunDone    RunStatus = "done"
	RunFailed  RunStatus = "failed"
)

// maxRunsRetained bounds each session's finished-run history: submitting
// a run beyond the bound evicts the oldest finished one. In-flight runs
// are never evicted.
const maxRunsRetained = 32

// run is one asynchronous run-cycles operation. The channel closes at
// completion; everything behind mu is the mutable status snapshot that
// GetRun serves.
type run struct {
	id      string
	session string
	cycles  uint64
	done    chan struct{}

	mu        sync.Mutex
	status    RunStatus
	res       RunResult
	err       error
	submitted time.Time
	finished  time.Time
}

func (r *run) setRunning() {
	r.mu.Lock()
	if r.status == RunQueued {
		r.status = RunRunning
	}
	r.mu.Unlock()
}

func (r *run) finish(res RunResult, err error, at time.Time) {
	r.mu.Lock()
	if err != nil {
		r.status = RunFailed
		r.err = err
	} else {
		r.status = RunDone
		r.res = res
	}
	r.finished = at
	r.mu.Unlock()
	close(r.done)
}

func (r *run) finishedLocked() bool {
	return r.status == RunDone || r.status == RunFailed
}

// view assembles the wire representation under the run's lock.
func (r *run) view() RunView {
	r.mu.Lock()
	defer r.mu.Unlock()
	v := RunView{
		ID:        r.id,
		Session:   r.session,
		Cycles:    r.cycles,
		Status:    r.status,
		Submitted: r.submitted,
	}
	switch r.status {
	case RunDone:
		res := r.res
		v.Result = &res
		v.Finished = &r.finished
	case RunFailed:
		v.Error = r.err.Error()
		v.Finished = &r.finished
	}
	return v
}

// RunView is the wire representation of a run: what POST .../runs
// returns, what GET .../runs/{rid} polls, and what the SSE "run" event
// carries.
type RunView struct {
	ID      string    `json:"id"`
	Session string    `json:"session"`
	Cycles  uint64    `json:"cycles"`
	Status  RunStatus `json:"status"`
	// Result is set once Status is "done".
	Result *RunResult `json:"result,omitempty"`
	// Error is set once Status is "failed".
	Error     string     `json:"error,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Finished  *time.Time `json:"finished,omitempty"`
}

// detach severs an operation context from its submitting HTTP request —
// an accepted async run must keep executing after the client disconnects
// — while carrying the request id forward so the operation log still
// correlates the run with the request that submitted it.
func detach(ctx context.Context) context.Context {
	out := context.Background()
	if id := RequestID(ctx); id != "" {
		out = context.WithValue(out, requestIDKey, id)
	}
	return out
}

// submitRun admits a run-cycles operation and returns its run object
// without waiting. Admission is synchronous — ErrDraining, ErrNotFound,
// and ErrOverloaded surface here, never inside a queued run.
func (m *Manager) submitRun(ctx context.Context, id string, cycles uint64) (*run, error) {
	s, ok := m.lookup(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	r := &run{
		session:   id,
		cycles:    cycles,
		done:      make(chan struct{}),
		status:    RunQueued,
		submitted: m.cfg.now(),
	}
	// The waiter registration must precede admission and happen under the
	// manager lock, mirroring submitAsync's opsWG accounting: Drain flips
	// draining under the same lock before it waits on runWG, so once it
	// begins waiting no new Add can slip in behind it — an Add after
	// enqueueing would race runWG.Add against runWG.Wait (the op can
	// finish, and opsWG.Wait return, before the submitter resumes) and
	// let Drain miss the waiter. Registered-then-rejected admissions just
	// Done the registration.
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.counters.rejectedDrain.Add(1)
		return nil, ErrDraining
	}
	m.runWG.Add(1)
	m.mu.Unlock()
	o, err := m.submitAsync(detach(ctx), id, opRun, func(sys *system) (any, error) {
		r.setRunning()
		before := sys.Machine.Cycle()
		sys.Machine.Run(cycles)
		ran := sys.Machine.Cycle() - before
		m.counters.cycles.Add(ran)
		return RunResult{Ran: ran, Cycle: sys.Machine.Cycle(), Halted: sys.Machine.Halted()}, nil
	})
	if err != nil {
		m.runWG.Done()
		return nil, err
	}
	s.addRun(r)
	m.counters.runsSubmitted.Add(1)
	// The waiter owns completion: it flips the run's terminal status,
	// fans the view out to the session's SSE watchers, and delivers the
	// session's webhook if one is configured. It always ends — the worker
	// pool always delivers exactly one result per accepted op, even
	// during drain, and webhook retries abort on the drain signal. runWG
	// is what Drain waits on after the operations themselves.
	go func() {
		defer m.runWG.Done()
		res := <-o.done
		rr, _ := res.value.(RunResult)
		r.finish(rr, res.err, m.cfg.now())
		v := r.view()
		s.notifyRun(v)
		if s.spec.Webhook != "" { // immutable after Create; safe to read
			m.deliverWebhook(s.spec.Webhook, v)
		}
	}()
	return r, nil
}

// SubmitRun starts an asynchronous run of up to cycles cycles on the
// session and returns immediately with the queued run's view. The run
// executes even if the caller goes away; read its progress with GetRun
// or subscribe to the session's event stream for the terminal "run"
// event.
func (m *Manager) SubmitRun(ctx context.Context, id string, cycles uint64) (RunView, error) {
	r, err := m.submitRun(ctx, id, cycles)
	if err != nil {
		return RunView{}, err
	}
	return r.view(), nil
}

// GetRun reports one run of a session. Runs are retained after
// completion (bounded per session; the oldest finished runs are evicted
// first), so results stay pollable.
func (m *Manager) GetRun(id, rid string) (RunView, error) {
	s, ok := m.lookup(id)
	if !ok {
		return RunView{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	s.mu.Lock()
	r := s.runs[rid]
	s.mu.Unlock()
	if r == nil {
		return RunView{}, fmt.Errorf("%w: run %q of session %q", ErrNotFound, rid, id)
	}
	return r.view(), nil
}

// Runs lists a session's retained runs in submission order.
func (m *Manager) Runs(id string) ([]RunView, error) {
	s, ok := m.lookup(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	s.mu.Lock()
	runs := make([]*run, 0, len(s.runOrder))
	for _, rid := range s.runOrder {
		runs = append(runs, s.runs[rid])
	}
	s.mu.Unlock()
	out := make([]RunView, 0, len(runs))
	for _, r := range runs {
		out = append(out, r.view())
	}
	return out, nil
}

// addRun registers an admitted run under a fresh per-session id ("r1",
// "r2", ...) and evicts the oldest finished run beyond the retention
// bound.
func (s *Session) addRun(r *run) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.runSeq++
	r.id = fmt.Sprintf("r%d", s.runSeq)
	if s.runs == nil {
		s.runs = map[string]*run{}
	}
	s.runs[r.id] = r
	s.runOrder = append(s.runOrder, r.id)
	if len(s.runOrder) <= maxRunsRetained {
		return
	}
	for i, rid := range s.runOrder {
		old := s.runs[rid]
		old.mu.Lock()
		evictable := old.finishedLocked()
		old.mu.Unlock()
		if evictable {
			delete(s.runs, rid)
			s.runOrder = append(s.runOrder[:i], s.runOrder[i+1:]...)
			return
		}
	}
}

// subscribeRuns registers a watcher channel for the session's run-complete
// events. The channel is buffered; a watcher that falls behind misses
// events rather than blocking completion (SSE clients resynchronize by
// polling GetRun).
func (s *Session) subscribeRuns() chan RunView {
	c := make(chan RunView, 8)
	s.mu.Lock()
	if s.watchers == nil {
		s.watchers = map[chan RunView]struct{}{}
	}
	s.watchers[c] = struct{}{}
	s.mu.Unlock()
	return c
}

func (s *Session) unsubscribeRuns(c chan RunView) {
	s.mu.Lock()
	delete(s.watchers, c)
	s.mu.Unlock()
}

// notifyRun fans a terminal run view out to the session's watchers.
func (s *Session) notifyRun(v RunView) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.watchers {
		select {
		case c <- v:
		default: // slow watcher: drop rather than block completion
		}
	}
}
