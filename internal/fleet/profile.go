package fleet

import (
	"context"
	"errors"
	"fmt"

	"dorado"
	"dorado/internal/obs/prof"
)

// Profile operations: per-session symbolized profiles and the fleet-wide
// merged view behind GET /v1/sessions/{id}/profile and GET /v1/profile.

// ProfileResult is one session's profile read: the symbolized Profile plus
// enough session context to interpret it.
type ProfileResult struct {
	ID    string `json:"id"`
	Cycle uint64 `json:"cycle"`
	// Revived reports the session was parked when the profile was
	// requested: the profiler was recreated at revival, so the profile
	// covers only the span since then.
	Revived bool          `json:"revived,omitempty"`
	Profile *prof.Profile `json:"profile"`
	// Translation is the superblock translator's counters, for reading the
	// profile's abort accounting against the translator's coverage.
	Translation dorado.TranslationStats `json:"translation"`
}

// symbolsFor picks the session's symbol table: the built-in emulator
// program's symbols when one is installed, else whatever LoadMicrocode
// stashed (nil on a bare session — profiles then name bare addresses).
func (s *Session) symbolsFor(sys *dorado.System) *prof.SymbolTable {
	if sys.Emulator != nil && sys.Emulator.Micro != nil {
		return prof.NewSymbolTable(sys.Emulator.Micro.Symbols)
	}
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.symbols
}

// Profile reads one session's microarchitectural profile. Requires
// Spec.Profile (ErrNoProfiler otherwise). Like the other reads it is a
// serialized operation — safe while other clients run the machine — and it
// revives a parked session.
func (m *Manager) Profile(ctx context.Context, id string) (ProfileResult, error) {
	wasParked := false
	s, ok := m.lookup(id)
	if ok {
		s.mu.Lock()
		wasParked = s.parkedLocked()
		s.mu.Unlock()
	}
	v, err := m.submit(ctx, id, opProfile, func(sys *system) (any, error) {
		if sys.Profiler == nil {
			return nil, fmt.Errorf("%w: %q", ErrNoProfiler, id)
		}
		return ProfileResult{
			ID:          id,
			Cycle:       sys.Machine.Cycle(),
			Profile:     prof.Build(sys.Profiler.Snapshot(), s.symbolsFor(sys)),
			Translation: sys.Machine.TranslationStats(),
		}, nil
	})
	if err != nil {
		return ProfileResult{}, err
	}
	r := v.(ProfileResult)
	r.Revived = wasParked
	return r, nil
}

// FleetProfileResult is the merged fleet-wide profile: one Profile summing
// every profiled session, plus the ids it covers, in creation order.
type FleetProfileResult struct {
	Sessions []string      `json:"sessions"`
	Profile  *prof.Profile `json:"profile"`
}

// FleetProfile merges every profiled session's profile into one. Sessions
// are read serially in creation order — each read is an ordinary
// serialized operation on its session — and merged in that same order, so
// identical fleets produce identical merged profiles. Sessions without a
// profiler are skipped (a fleet with none yields an empty profile);
// sessions destroyed mid-walk are skipped too. Note the read revives
// parked profiled sessions.
func (m *Manager) FleetProfile(ctx context.Context) (FleetProfileResult, error) {
	m.mu.Lock()
	list := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		list = append(list, s)
	}
	m.mu.Unlock()
	sortSessions(list)

	res := FleetProfileResult{Sessions: []string{}}
	profiles := make([]*prof.Profile, 0, len(list))
	for _, s := range list {
		if !s.spec.Profile { // immutable after Create; safe to read
			continue
		}
		r, err := m.Profile(ctx, s.id)
		switch {
		case err == nil:
			res.Sessions = append(res.Sessions, s.id)
			profiles = append(profiles, r.Profile)
		case errors.Is(err, ErrNotFound), errors.Is(err, ErrNoProfiler):
			// Destroyed mid-walk, or raced a respec; skip.
		default:
			return FleetProfileResult{}, err
		}
	}
	res.Profile = prof.Merge(profiles...)
	return res, nil
}
