package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dorado/internal/store"
)

// newTestServer builds a manager + HTTP server; the manager is returned so
// tests can reach behind the API (block workers, force sweeps).
func newTestServer(t *testing.T, cfg Config) (*Manager, *httptest.Server) {
	t.Helper()
	m := New(cfg)
	ts := httptest.NewServer(NewServer(m))
	t.Cleanup(func() {
		ts.Close()
		drainNow(t, m)
	})
	return m, ts
}

// call does one JSON request and decodes the response body into out (when
// non-nil), returning the status code.
func call(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	switch b := body.(type) {
	case nil:
	case []byte:
		rd = bytes.NewReader(b)
	default:
		data, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

func createSession(t *testing.T, base, lang string) string {
	t.Helper()
	var res struct {
		ID string `json:"id"`
	}
	if code := call(t, "POST", base+"/v1/sessions", map[string]any{"language": lang}, &res); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	return res.ID
}

func TestServerSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	id := createSession(t, ts.URL, "mesa")

	// Boot source, run to halt, read the result off the stack.
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+id+"/boot",
		map[string]string{"source": "return 6*7;"}, nil); code != http.StatusOK {
		t.Fatalf("boot: status %d", code)
	}
	var run RunResult
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+id+"/run",
		map[string]uint64{"cycles": 1_000_000}, &run); code != http.StatusOK {
		t.Fatalf("run: status %d", code)
	}
	if !run.Halted {
		t.Fatalf("run = %+v", run)
	}
	var st State
	if code := call(t, "GET", ts.URL+"/v1/sessions/"+id, nil, &st); code != http.StatusOK {
		t.Fatalf("state: status %d", code)
	}
	if len(st.Stack) != 1 || st.Stack[0] != 42 || st.Language != "Mesa" {
		t.Fatalf("state = %+v", st)
	}

	// Listing includes the session.
	var list struct {
		Sessions []Info `json:"sessions"`
	}
	if code := call(t, "GET", ts.URL+"/v1/sessions", nil, &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if len(list.Sessions) != 1 || list.Sessions[0].ID != id || !list.Sessions[0].Halted {
		t.Fatalf("list = %+v", list.Sessions)
	}

	// Destroy, then every session route 404s.
	if code := call(t, "DELETE", ts.URL+"/v1/sessions/"+id, nil, nil); code != http.StatusOK {
		t.Fatalf("destroy: status %d", code)
	}
	for _, probe := range []struct{ method, path string }{
		{"GET", "/v1/sessions/" + id},
		{"DELETE", "/v1/sessions/" + id},
		{"POST", "/v1/sessions/" + id + "/run"},
		{"GET", "/v1/sessions/" + id + "/snapshot"},
	} {
		body := any(nil)
		if probe.method == "POST" {
			body = map[string]uint64{"cycles": 1}
		}
		if code := call(t, probe.method, ts.URL+probe.path, body, nil); code != http.StatusNotFound {
			t.Errorf("%s %s after destroy: status %d", probe.method, probe.path, code)
		}
	}
}

func TestServerMicrocodeAndSnapshot(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	id := createSession(t, ts.URL, "")

	var load LoadResult
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+id+"/microcode",
		map[string]string{"text": SpinMicrocode, "start": "start"}, &load); code != http.StatusOK {
		t.Fatalf("microcode: status %d", code)
	}
	if load.Placement == "" {
		t.Error("no placement report")
	}
	// Bad microassembly is the caller's fault.
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+id+"/microcode",
		map[string]string{"text": "bogus clause=1"}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad microcode: status %d", code)
	}

	var run RunResult
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+id+"/run",
		map[string]uint64{"cycles": 1000}, &run); code != http.StatusOK || run.Cycle != 1000 {
		t.Fatalf("run: status %d, %+v", code, run)
	}

	// Snapshot bytes round-trip through the API.
	resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %v status %d", err, resp.StatusCode)
	}
	if resp.Header.Get("Content-Type") != "application/octet-stream" {
		t.Errorf("snapshot content-type = %q", resp.Header.Get("Content-Type"))
	}
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+id+"/run",
		map[string]uint64{"cycles": 500}, nil); code != http.StatusOK {
		t.Fatalf("second run: status %d", code)
	}
	if code := call(t, "PUT", ts.URL+"/v1/sessions/"+id+"/snapshot", snap, nil); code != http.StatusOK {
		t.Fatalf("restore: status %d", code)
	}
	var st State
	if code := call(t, "GET", ts.URL+"/v1/sessions/"+id, nil, &st); code != http.StatusOK || st.Cycle != 1000 {
		t.Fatalf("restored state: status %d, %+v", code, st)
	}
	// Garbage restore is a 400, not a crash.
	if code := call(t, "PUT", ts.URL+"/v1/sessions/"+id+"/snapshot", []byte("junk"), nil); code != http.StatusBadRequest {
		t.Fatalf("junk restore: status %d", code)
	}
}

// zeroes is an endless stream of zero bytes for oversized-upload tests.
type zeroes struct{}

func (zeroes) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}

func TestServerSnapshotTooLarge(t *testing.T) {
	m := New(Config{Workers: 1})
	defer drainNow(t, m)
	srv := NewServer(m)
	id, err := m.Create(smallSpec())
	if err != nil {
		t.Fatal(err)
	}

	// An upload one byte over the cap is an explicit 413, not a confusing
	// restore failure on a silently truncated body.
	req := httptest.NewRequest("PUT", "/v1/sessions/"+id+"/snapshot",
		io.LimitReader(zeroes{}, maxSnapshotBody+1))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized snapshot: status %d, body %s", rec.Code, rec.Body)
	}
}

func TestServerValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	if code := call(t, "POST", ts.URL+"/v1/sessions",
		map[string]string{"language": "fortran"}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad language: status %d", code)
	}
	if code := call(t, "POST", ts.URL+"/v1/sessions",
		[]byte(`{"language": `), nil); code != http.StatusBadRequest {
		t.Fatalf("truncated JSON: status %d", code)
	}
	id := createSession(t, ts.URL, "")
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+id+"/run",
		map[string]uint64{"cycles": 0}, nil); code != http.StatusBadRequest {
		t.Fatalf("zero cycles: status %d", code)
	}
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+id+"/boot",
		map[string]string{"source": "func ("}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad source: status %d", code)
	}
}

func TestServerOverload429(t *testing.T) {
	m, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	id := createSession(t, ts.URL, "")

	running, release := blockSession(t, m, id)
	<-running
	// Fill the queue behind the stuck worker...
	queued := make(chan int, 1)
	go func() {
		queued <- call(t, "POST", ts.URL+"/v1/sessions/"+id+"/run", map[string]uint64{"cycles": 1}, nil)
	}()
	waitQueue(t, m, id, 1)
	// ...so the next request bounces with 429.
	var errBody struct {
		Error string `json:"error"`
	}
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+id+"/run",
		map[string]uint64{"cycles": 1}, &errBody); code != http.StatusTooManyRequests {
		t.Fatalf("overload: status %d", code)
	}
	if !strings.Contains(errBody.Error, "queue full") {
		t.Errorf("overload body = %+v", errBody)
	}
	release()
	if code := <-queued; code != http.StatusOK {
		t.Fatalf("queued run: status %d", code)
	}
}

func TestServerDrain(t *testing.T) {
	m, ts := newTestServer(t, Config{Workers: 1})
	id := createSession(t, ts.URL, "")

	if code := call(t, "GET", ts.URL+"/healthz", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	var res struct {
		Drained bool `json:"drained"`
	}
	if code := call(t, "POST", ts.URL+"/v1/drain", nil, &res); code != http.StatusOK || !res.Drained {
		t.Fatalf("drain: status %d, %+v", code, res)
	}
	// Draining: operations 503, health 503, metrics still served.
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+id+"/run",
		map[string]uint64{"cycles": 1}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("run after drain: status %d", code)
	}
	if code := call(t, "POST", ts.URL+"/v1/sessions", map[string]string{}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("create after drain: status %d", code)
	}
	if code := call(t, "GET", ts.URL+"/healthz", nil, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain: status %d", code)
	}
	if !m.Draining() {
		t.Error("manager not draining")
	}
}

func TestServerMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	id := createSession(t, ts.URL, "")
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+id+"/microcode",
		map[string]string{"text": SpinMicrocode}, nil); code != http.StatusOK {
		t.Fatalf("microcode: status %d", code)
	}
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+id+"/run",
		map[string]uint64{"cycles": 4096}, nil); code != http.StatusOK {
		t.Fatalf("run: status %d", code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %v status %d", err, resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE dorado_fleet_sessions gauge",
		fmt.Sprintf(`dorado_fleet_session_cycles_total{session="%s"} 4096`, id),
		`dorado_fleet_ops_total{op="run"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestServerStoreEndpoints(t *testing.T) {
	m, ts := newTestServer(t, Config{Workers: 1, Store: openStore(t, t.TempDir()), GCMaxAge: -1})
	id := createSession(t, ts.URL, "")
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+id+"/microcode",
		map[string]any{"text": SpinMicrocode, "start": "start"}, nil); code != http.StatusOK {
		t.Fatalf("microcode: status %d", code)
	}
	// Two parks with work in between: the store holds two snapshots, the
	// manifest references one.
	for i := 0; i < 2; i++ {
		if code := call(t, "POST", ts.URL+"/v1/sessions/"+id+"/run",
			map[string]any{"cycles": 100}, nil); code != http.StatusOK {
			t.Fatalf("run: status %d", code)
		}
		parkNow(t, m, id)
	}

	var before store.Stats
	if code := call(t, "GET", ts.URL+"/v1/store", nil, &before); code != http.StatusOK {
		t.Fatalf("store stats: status %d", code)
	}
	if before.Sessions != 1 || before.Recipes != 2 || before.Bytes == 0 {
		t.Fatalf("stats = %+v", before)
	}

	// A sweep with no age grace reclaims the superseded snapshot; bytes
	// demonstrably fall.
	var res store.SweepResult
	if code := call(t, "POST", ts.URL+"/v1/store/gc",
		map[string]any{"max_age_ms": 0}, &res); code != http.StatusOK {
		t.Fatalf("gc: status %d", code)
	}
	if res.ReclaimedRecipes != 1 || res.ReclaimedBytes == 0 {
		t.Fatalf("sweep = %+v", res)
	}
	var after store.Stats
	call(t, "GET", ts.URL+"/v1/store", nil, &after)
	if after.Bytes >= before.Bytes || after.GCRuns != 1 {
		t.Fatalf("after gc = %+v (before %+v)", after, before)
	}

	// An empty body means "use the configured policy" (immediate here).
	if code := call(t, "POST", ts.URL+"/v1/store/gc", nil, &res); code != http.StatusOK {
		t.Fatalf("gc default policy: status %d", code)
	}
	// Negative ages are client errors.
	if code := call(t, "POST", ts.URL+"/v1/store/gc", map[string]any{"max_age_ms": -5}, nil); code != http.StatusBadRequest {
		t.Fatalf("gc negative age: status %d", code)
	}
}

func TestServerStoreEndpointsWithoutStore(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	var e ErrorEnvelope
	if code := call(t, "GET", ts.URL+"/v1/store", nil, &e); code != http.StatusConflict || e.Code != "no_store" {
		t.Fatalf("stats without store: %d %+v", code, e)
	}
	if code := call(t, "POST", ts.URL+"/v1/store/gc", nil, &e); code != http.StatusConflict || e.Code != "no_store" {
		t.Fatalf("gc without store: %d %+v", code, e)
	}
}

func TestServerCreateWebhook(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, WebhookAllow: []string{"https://hooks.example.com"}})
	// Disallowed origin is rejected at create time.
	var e ErrorEnvelope
	if code := call(t, "POST", ts.URL+"/v1/sessions",
		map[string]any{"webhook": "https://evil.example.net/x"}, &e); code != http.StatusBadRequest {
		t.Fatalf("bad webhook origin: status %d (%+v)", code, e)
	}
	// webhook and from are mutually exclusive with the spec fields.
	if code := call(t, "POST", ts.URL+"/v1/sessions",
		map[string]any{"from": strings.Repeat("a", 64), "webhook": "https://hooks.example.com/x"}, &e); code != http.StatusBadRequest {
		t.Fatalf("from+webhook: status %d", code)
	}
	// Allowlisted webhook creates fine.
	var res struct {
		ID string `json:"id"`
	}
	if code := call(t, "POST", ts.URL+"/v1/sessions",
		map[string]any{"webhook": "https://hooks.example.com/runs"}, &res); code != http.StatusCreated {
		t.Fatalf("allowlisted webhook: status %d", code)
	}
	if res.ID == "" {
		t.Fatal("no session id")
	}
}
