package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dorado"
	"dorado/internal/masm"
	"dorado/internal/obs"
	"dorado/internal/obs/prof"
	"dorado/internal/store"
)

// system aliases the facade's System so operation bodies read naturally.
type system = dorado.System

// Spec describes the machine a session simulates. It is retained for the
// session's lifetime: reviving a parked session rebuilds the machine from
// the Spec and restores the parked snapshot onto it.
type Spec struct {
	// Language selects a byte-code emulator by name ("mesa", "bcpl",
	// "lisp", "smalltalk", case-insensitive); "" or "none" builds a bare
	// microcode-level machine.
	Language string
	// Machine is the machine configuration (zero = the Dorado as built).
	Machine dorado.Config
	// Metrics attaches a cycle-level observability recorder to the
	// session's machine (dorado.WithMetrics); it costs a few percent of
	// throughput and enables the per-session wakeup/latency histograms,
	// the Chrome-trace export (GET /v1/sessions/{id}/trace), and the obs
	// summary (GET /v1/sessions/{id}/obs).
	Metrics bool
	// MetricsConfig sizes the recorder when Metrics is set: span and
	// timeline buffer bounds and the utilization sampling interval. The
	// zero value picks the obs defaults. Note that parking a session
	// serializes only machine state: a revived session runs with a fresh
	// recorder, so trace data covers the span since revival.
	MetricsConfig obs.Config
	// Profile attaches a microarchitectural profiler (dorado.WithProfiler):
	// every cycle is charged to its microaddress and superblock executions
	// record their exit reason. Enables GET /v1/sessions/{id}/profile and
	// the session's dorado_prof_* metric families. Like the recorder, the
	// profiler is recreated fresh at revival: a revived session's profile
	// covers the span since then.
	Profile bool
	// Devices mounts I/O controllers on the session's machine (see
	// DeviceSpec for the catalog). Devices are part of the Spec, so a
	// revived session gets the same controllers back before its snapshot —
	// which includes their mutable state — is restored.
	Devices []DeviceSpec
	// Webhook, when set, is a URL every terminal run view is POSTed to
	// (JSON RunView body, bounded retry with exponential backoff) — the
	// push alternative to polling GetRun or holding an SSE stream. The
	// URL's origin must be in the manager's Config.WebhookAllow
	// (doradod -webhook-allow); Create rejects it otherwise, and
	// delivery re-checks, so a sidecar Spec restored under a narrower
	// allowlist is dead-lettered instead of called.
	Webhook string
}

func (sp Spec) build() (*dorado.System, error) {
	lang, err := parseLanguage(sp.Language)
	if err != nil {
		return nil, err
	}
	opts := []dorado.Option{dorado.WithConfig(sp.Machine)}
	if lang != dorado.None {
		opts = append(opts, dorado.WithLanguage(lang))
	}
	if sp.Metrics {
		opts = append(opts, dorado.WithMetrics(dorado.NewMetricsWith(sp.MetricsConfig)))
	}
	if sp.Profile {
		opts = append(opts, dorado.WithProfiler(dorado.NewProfiler()))
	}
	sys, err := dorado.New(opts...)
	if err != nil {
		return nil, err
	}
	// Devices attach after New: the fast-I/O controllers need the built
	// machine's memory system, which no functional option can reach.
	for _, ds := range sp.Devices {
		if err := ds.attach(sys.Machine); err != nil {
			return nil, err
		}
	}
	return sys, nil
}

// op is one queued unit of work; done is buffered so a worker never blocks
// on a departed caller. ctx is the submitter's context: the worker skips
// the body if it is already canceled at pickup, and the operation log
// reads its request id. enqueued stamps admission for the queue-wait
// histogram.
type op struct {
	ctx      context.Context
	kind     opKind
	fn       func(sys *system) (any, error)
	done     chan opResult
	enqueued time.Time
}

type opResult struct {
	value   any
	err     error
	queue   time.Duration // admission → worker pickup
	service time.Duration // fn execution (zero when the body was skipped)
}

// opKind indexes the manager's per-operation counters and latency
// histograms.
type opKind int

// Operation kinds, in metrics-export order.
const (
	opRun opKind = iota
	opMicrocode
	opBoot
	opState
	opSnapshot
	opRestore
	opTrace
	opObs
	opProfile
	numOpKinds
)

func (k opKind) String() string {
	return [...]string{"run", "microcode", "boot", "state", "snapshot", "restore", "trace", "obs", "profile"}[k]
}

// Session is one simulated machine owned by a Manager. All fields behind
// mu are protected by it; the stats block is atomic so metric scrapes
// never contend with the simulation.
type Session struct {
	id    string
	seq   uint64 // creation order, for stable metric export
	spec  Spec
	birth time.Time

	mu        sync.Mutex
	pending   []*op
	scheduled bool
	closed    bool
	lastUsed  time.Time
	sys       *dorado.System
	parked    []byte // in-memory snapshot of an evicted session; nil while live
	// parkedHash is the store address of the parked snapshot when the
	// manager has a Config.Store: park writes the blob and keeps only the
	// hash, and sessions adopted from a previous process's manifest start
	// with nothing but it. Revival prefers the in-memory bytes and falls
	// back to fetching the hash (reviveLocked).
	parkedHash string
	reviveErr  error // sticky failure rebuilding a parked session
	// symbols names microaddresses in profiles for sessions whose microcode
	// arrived via LoadMicrocode (emulator sessions resolve through the
	// built-in program's symbols instead). Survives park/revive — symbols
	// describe the microstore image, which the snapshot restores.
	symbols *prof.SymbolTable

	// Async-run bookkeeping (runs.go): the per-session run registry and
	// the SSE watchers notified on run completion. Guarded by mu.
	runSeq   uint64
	runs     map[string]*run
	runOrder []string
	watchers map[chan RunView]struct{}

	stats sessionStats
}

// parkedLocked reports whether the session currently exists only as a
// snapshot — in memory, or as a store blob named by parkedHash. Caller
// holds s.mu.
func (s *Session) parkedLocked() bool {
	return s.sys == nil && (s.parked != nil || s.parkedHash != "")
}

// sessionStats caches machine counters so scrapes and event streams read
// atomics instead of racing the hot loop. The owning worker refreshes it
// after every operation; parked flips at park/revive under the session
// lock but is stored atomically so lock-free readers (SSE, healthz) see
// a coherent value.
type sessionStats struct {
	cycles     atomic.Uint64
	executed   atomic.Uint64
	holds      atomic.Uint64
	halted     atomic.Bool
	ops        atomic.Uint64
	parked     atomic.Bool
	taskCycles [obs.MaxTasks]atomic.Uint64

	// Translator activity (zero on sessions without translation) for the
	// dorado_translate_* families.
	transBlocks   atomic.Uint64
	transEntries  atomic.Uint64
	transFused    atomic.Uint64
	transInvalids atomic.Uint64

	// Superblock exits by reason (sessions with Spec.Profile) for the
	// dorado_prof_block_exits_total family.
	profExits [dorado.NumExitReasons]atomic.Uint64
}

// ID returns the session's identifier ("s1", "s2", ...).
func (s *Session) ID() string { return s.id }

// noteStats refreshes the scrape-safe counters; called only by the worker
// that owns the session, while it still owns it.
func (s *Session) noteStats(sys *dorado.System) {
	st := sys.Machine.Stats()
	s.stats.cycles.Store(st.Cycles)
	s.stats.executed.Store(st.Executed)
	s.stats.holds.Store(st.Holds)
	s.stats.halted.Store(sys.Machine.Halted())
	for t := 0; t < obs.MaxTasks && t < len(st.TaskCycles); t++ {
		s.stats.taskCycles[t].Store(st.TaskCycles[t])
	}
	ts := sys.Machine.TranslationStats()
	s.stats.transBlocks.Store(ts.BlocksBuilt)
	s.stats.transEntries.Store(ts.Entries)
	s.stats.transFused.Store(ts.FusedCycles)
	s.stats.transInvalids.Store(ts.Invalidations)
	if sys.Profiler != nil {
		exits := sys.Profiler.ExitCounts()
		for r := range exits {
			s.stats.profExits[r].Store(exits[r])
		}
	}
	s.stats.ops.Add(1)
}

// park snapshots and releases the machine if the session has been idle
// since before cutoff. Safe against the workers: a scheduled session (one
// a worker owns or will own) is never parked. With a store configured the
// snapshot is persisted and only its hash retained; if persistence fails
// the session still parks, falling back to the in-memory bytes so no
// state is lost (only durability).
func (s *Session) park(m *Manager, cutoff time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.scheduled || len(s.pending) > 0 || s.sys == nil || !s.lastUsed.Before(cutoff) {
		return false
	}
	snap := s.sys.Machine.Snapshot()
	s.sys = nil
	s.parked = snap
	s.parkedHash = ""
	if m.cfg.Store != nil {
		hash, err := m.persist(s, snap)
		if err == nil {
			s.parkedHash = hash
			s.parked = nil // the blob is durable; don't hold a second copy
		} else if m.cfg.Logger != nil {
			m.cfg.Logger.Warn("fleet: parking session in memory only (store write failed)",
				"session", s.id, "err", err)
		}
	}
	s.stats.parked.Store(true)
	m.nLive.Add(-1)
	m.nParked.Add(1)
	return true
}

// persist writes a parked session's snapshot into the durable store:
// blob first, then its Spec sidecar, then the manifest entry — in that
// order, so the manifest never names a blob that is not already durable.
// The snapshot goes through the section-dedupe path (store.PutSnapshot),
// so re-parking a mostly-unchanged session writes only the sections that
// changed. The hash is pinned for the whole sequence: between the blob
// write and the manifest entry the snapshot is unreferenced, and the pin
// is what keeps a concurrent GC sweep from reclaiming it in that window.
// Caller holds s.mu.
func (m *Manager) persist(s *Session, snap []byte) (string, error) {
	specJSON, err := json.Marshal(s.spec)
	if err != nil {
		return "", err
	}
	hash := store.Hash(snap)
	unpin := m.cfg.Store.Pin(hash)
	defer unpin()
	if _, err := m.cfg.Store.PutSnapshot(snap); err != nil {
		return "", err
	}
	if err := m.cfg.Store.PutMeta(hash, specJSON); err != nil {
		return "", err
	}
	err = m.cfg.Store.SaveSession(store.Entry{
		ID:       s.id,
		Seq:      s.seq,
		Spec:     specJSON,
		Hash:     hash,
		Cycle:    s.stats.cycles.Load(),
		ParkedAt: m.cfg.now(),
	})
	if err != nil {
		return "", err
	}
	m.counters.persisted.Add(1)
	return hash, nil
}

// reviveLocked rebuilds a parked session's machine and restores its
// snapshot — from the in-memory bytes when present, else from the store
// blob named by parkedHash (a store-backed park, or a session adopted
// from a previous process's manifest). Both shapes share one path: build
// the machine from the Spec (devices and all), then Restore, so a
// from-disk revival cannot drift from an in-memory one. Caller holds
// s.mu. A failure is sticky: the session keeps reporting it rather than
// silently restarting from scratch.
func (s *Session) reviveLocked(m *Manager) {
	data := s.parked
	var err error
	if data == nil && s.parkedHash != "" {
		data, err = m.cfg.Store.Get(s.parkedHash)
	}
	var sys *dorado.System
	if err == nil {
		sys, err = s.spec.build()
	}
	if err == nil {
		err = sys.Machine.Restore(data)
	}
	if err != nil {
		s.reviveErr = fmt.Errorf("fleet: reviving session %s: %w", s.id, err)
		return
	}
	s.sys = sys
	s.parked = nil
	s.stats.parked.Store(false)
	m.nParked.Add(-1)
	m.nLive.Add(1)
	m.counters.revived.Add(1)
}

// Create builds a new session from spec and returns its id. A
// Spec.Webhook whose origin is not in Config.WebhookAllow is rejected
// up front (as a bad_request over HTTP) — better at create time than a
// dead-letter per run.
func (m *Manager) Create(spec Spec) (string, error) {
	if spec.Webhook != "" {
		if err := m.checkWebhook(spec.Webhook); err != nil {
			return "", fmt.Errorf("%w: %w", errBadInput, err)
		}
	}
	sys, err := spec.build()
	if err != nil {
		return "", err
	}
	spec.Language = sys.Language.String() // canonical name for listings and revival
	s, err := m.register(spec, sys)
	if err != nil {
		return "", err
	}
	m.counters.created.Add(1)
	return s.id, nil
}

// CreateFrom builds a new session seeded from a stored snapshot: the
// blob's Spec sidecar describes the machine, the blob restores its
// state. This is the fork primitive — any number of sessions can branch
// from one stored snapshot (say, to A/B different microcode against
// identical machine state). Requires Config.Store (ErrNoStore
// otherwise); an unknown hash reports store.ErrNoBlob.
func (m *Manager) CreateFrom(hash string) (string, error) {
	if m.cfg.Store == nil {
		return "", ErrNoStore
	}
	// Pin the donor for the whole read: the hash may be unreferenced
	// (Destroy keeps blobs as fork fodder), and the pin is the guarantee
	// a concurrent GC sweep cannot delete it between Meta and Get.
	unpin := m.cfg.Store.Pin(hash)
	defer unpin()
	meta, err := m.cfg.Store.Meta(hash)
	if err != nil {
		return "", err
	}
	var spec Spec
	if err := json.Unmarshal(meta, &spec); err != nil {
		return "", fmt.Errorf("fleet: snapshot %s spec: %w", hash, err)
	}
	data, err := m.cfg.Store.Get(hash)
	if err != nil {
		return "", err
	}
	sys, err := spec.build()
	if err != nil {
		return "", err
	}
	if err := sys.Machine.Restore(data); err != nil {
		return "", fmt.Errorf("fleet: restoring snapshot %s: %w", hash, err)
	}
	spec.Language = sys.Language.String()
	s, err := m.register(spec, sys)
	if err != nil {
		return "", err
	}
	s.noteStats(sys) // no worker has touched it yet; seed the cached counters
	m.counters.forked.Add(1)
	return s.id, nil
}

// register adds a built machine to the session table under a fresh id,
// enforcing the drain and session-count gates. Create and CreateFrom
// share it.
func (m *Manager) register(spec Spec, sys *dorado.System) (*Session, error) {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	if len(m.sessions) >= m.cfg.MaxSessions {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w (%d)", ErrTooManySessions, m.cfg.MaxSessions)
	}
	m.nextID++
	s := &Session{
		id:       fmt.Sprintf("s%d", m.nextID),
		seq:      m.nextID,
		spec:     spec,
		birth:    m.cfg.now(),
		lastUsed: m.cfg.now(),
		sys:      sys,
	}
	m.sessions[s.id] = s
	m.mu.Unlock()
	m.nLive.Add(1)
	return s, nil
}

// ParkResult reports an explicit Park: whether the session is parked and,
// when a store is configured, the content hash its snapshot is durable
// under (usable with CreateFrom and GET /v1/snapshots/{hash}).
type ParkResult struct {
	Parked bool `json:"parked"`
	// Snapshot is the store hash of the parked snapshot; empty when the
	// manager has no store (the snapshot is held in memory).
	Snapshot string `json:"snapshot,omitempty"`
}

// Park immediately snapshots and evicts a session, without waiting for
// the idle janitor. Parking an already-parked session is an idempotent
// success. A session with queued or running operations reports ErrBusy —
// let the queue empty and retry.
func (m *Manager) Park(id string) (ParkResult, error) {
	s, ok := m.lookup(id)
	if !ok {
		return ParkResult{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	// Any instant in the future beats lastUsed; idleness is not required
	// for an explicit park, only quiescence (no queued or scheduled work).
	if s.park(m, m.cfg.now().Add(time.Nanosecond)) {
		s.mu.Lock()
		defer s.mu.Unlock()
		return ParkResult{Parked: true, Snapshot: s.parkedHash}, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return ParkResult{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	case s.parkedLocked():
		return ParkResult{Parked: true, Snapshot: s.parkedHash}, nil
	default:
		return ParkResult{}, fmt.Errorf("%w: session %q has queued or running work", ErrBusy, id)
	}
}

// Destroy removes a session. Operations already queued on it complete;
// new ones get ErrNotFound. With a store configured the session's
// manifest entry is removed too (its snapshot blob stays — content-
// addressed blobs may seed forks).
func (m *Manager) Destroy(id string) error {
	m.mu.Lock()
	s := m.sessions[id]
	delete(m.sessions, id)
	m.mu.Unlock()
	if s == nil {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	s.mu.Lock()
	s.closed = true
	wasParked := s.parkedLocked()
	s.mu.Unlock()
	if wasParked {
		m.nParked.Add(-1)
	} else {
		m.nLive.Add(-1)
	}
	if m.cfg.Store != nil {
		if err := m.cfg.Store.DeleteSession(id); err != nil && m.cfg.Logger != nil {
			m.cfg.Logger.Warn("fleet: destroyed session lingers in store manifest",
				"session", id, "err", err)
		}
	}
	m.counters.destroyed.Add(1)
	return nil
}

// RunResult reports one run-cycles operation.
type RunResult struct {
	// Ran is the number of cycles actually simulated (less than requested
	// when the machine halts).
	Ran uint64 `json:"ran"`
	// Cycle is the machine's cycle counter after the run.
	Cycle uint64 `json:"cycle"`
	// Halted reports whether the machine has executed a Halt.
	Halted bool `json:"halted"`
}

// Run advances the session's machine by up to cycles cycles and waits
// for the result. It is the synchronous wrapper over the async runs
// resource (SubmitRun): the run is submitted like any other and Run
// blocks on its completion. If ctx expires first, Run returns early but
// the accepted run still executes — poll it with GetRun.
func (m *Manager) Run(ctx context.Context, id string, cycles uint64) (RunResult, error) {
	r, err := m.submitRun(ctx, id, cycles)
	if err != nil {
		return RunResult{}, err
	}
	select {
	case <-r.done:
	case <-ctx.Done():
		return RunResult{}, ctx.Err()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.res, r.err
}

// LoadResult reports a load-microcode operation.
type LoadResult struct {
	// Entry is the placed microstore address of the start label.
	Entry uint16 `json:"entry"`
	// Placement summarizes how the placer packed the program.
	Placement string `json:"placement"`
}

// LoadMicrocode assembles microassembly text (the doradoasm format, see
// masm.ParseText), loads the placed image into the session's microstore,
// and starts task 0 at the named label. Devices in the session's Spec that
// name a Start label get their task's TPC pointed at it, so one request
// wires the program and its service routines together.
func (m *Manager) LoadMicrocode(ctx context.Context, id, text, start string) (LoadResult, error) {
	var devices []DeviceSpec
	sess, found := m.lookup(id)
	if found {
		devices = sess.spec.Devices // immutable after Create; safe to read
	}
	v, err := m.submit(ctx, id, opMicrocode, func(sys *system) (any, error) {
		prog, err := masm.AssembleText(text)
		if err != nil {
			return nil, err
		}
		entry, err := prog.Entry(start)
		if err != nil {
			return nil, err
		}
		// Resolve every device Start label before touching the machine, so
		// a bad label leaves the previous program running.
		type tpc struct {
			task  int
			entry uint16
		}
		var tpcs []tpc
		for _, ds := range devices {
			if ds.Start == "" {
				continue
			}
			n, err := ds.normalize()
			if err != nil {
				return nil, err
			}
			de, err := prog.Entry(ds.Start)
			if err != nil {
				return nil, fmt.Errorf("device %q: %w", ds.Name, err)
			}
			tpcs = append(tpcs, tpc{n.Task, uint16(de)})
		}
		sys.Machine.Load(&prog.Words)
		sys.Machine.Start(entry)
		for _, t := range tpcs {
			sys.Machine.SetTPC(t.task, dorado.Addr(t.entry))
		}
		if found {
			// Retain the program's symbols so profiles name microaddresses
			// by label; built once here, read by every profile op.
			st := prof.NewSymbolTable(prog.Symbols)
			sess.mu.Lock()
			sess.symbols = st
			sess.mu.Unlock()
		}
		return LoadResult{Entry: uint16(entry), Placement: prog.Stats.String()}, nil
	})
	if err != nil {
		return LoadResult{}, err
	}
	return v.(LoadResult), nil
}

// BootSource compiles source text for the session's language (Mesa, Lisp,
// or Smalltalk) and boots it, exactly as dorado.(*System).BootSource.
func (m *Manager) BootSource(ctx context.Context, id, source string) error {
	_, err := m.submit(ctx, id, opBoot, func(sys *system) (any, error) {
		return nil, sys.BootSource(source)
	})
	return err
}

// State is a read of one session's architectural and scheduling state.
type State struct {
	ID       string `json:"id"`
	Language string `json:"language"`
	// Parked reports that the session was evicted (snapshot-only) when the
	// read was submitted; the read itself revives it.
	Parked bool `json:"parked"`
	// Queue is the number of operations pending behind this read.
	Queue    int    `json:"queue"`
	Cycle    uint64 `json:"cycle"`
	Executed uint64 `json:"executed"`
	Halted   bool   `json:"halted"`
	// Stack is the hardware evaluation stack (Mesa/Smalltalk sessions).
	Stack []uint16 `json:"stack,omitempty"`
	// Acc is task 0's T register (the BCPL accumulator).
	Acc uint16 `json:"acc"`
}

// ReadState runs a serialized read of the session's machine state. Note
// that the read revives a parked session (State.Parked reports whether it
// had to); use Sessions for a listing that leaves parked sessions parked.
func (m *Manager) ReadState(ctx context.Context, id string) (State, error) {
	wasParked := false
	if s, ok := m.lookup(id); ok {
		s.mu.Lock()
		wasParked = s.parkedLocked()
		s.mu.Unlock()
	}
	v, err := m.submit(ctx, id, opState, func(sys *system) (any, error) {
		s, _ := m.lookup(id)
		st := State{
			ID:       id,
			Language: sys.Language.String(),
			Cycle:    sys.Machine.Cycle(),
			Executed: sys.Machine.Stats().Executed,
			Halted:   sys.Machine.Halted(),
			Stack:    sys.Stack(),
			Acc:      sys.Acc(),
		}
		if s != nil {
			s.mu.Lock()
			st.Queue = len(s.pending)
			s.mu.Unlock()
		}
		return st, nil
	})
	if err != nil {
		return State{}, err
	}
	st := v.(State)
	st.Parked = wasParked
	return st, nil
}

// Snapshot serializes the session's complete machine state (the versioned
// internal/state document).
func (m *Manager) Snapshot(ctx context.Context, id string) ([]byte, error) {
	v, err := m.submit(ctx, id, opSnapshot, func(sys *system) (any, error) {
		return sys.Machine.Snapshot(), nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]byte), nil
}

// Restore replaces the session's machine state with a snapshot previously
// taken from a session with the same Spec.
func (m *Manager) Restore(ctx context.Context, id string, data []byte) error {
	_, err := m.submit(ctx, id, opRestore, func(sys *system) (any, error) {
		return nil, sys.Machine.Restore(data)
	})
	return err
}

// TraceJSON exports the session's cycle-level trace in the Chrome
// trace_event format (load it at chrome://tracing or ui.perfetto.dev).
// The session must have been created with Spec.Metrics; otherwise the
// call fails with ErrNoMetrics. The export runs as a serialized
// operation, so it is safe to request while other clients are running the
// machine — it simply waits its turn in the session's queue — and it
// revives a parked session (the trace then covers the span since
// revival; parking serializes only machine state).
func (m *Manager) TraceJSON(ctx context.Context, id string) ([]byte, error) {
	v, err := m.submit(ctx, id, opTrace, func(sys *system) (any, error) {
		if sys.Metrics == nil {
			return nil, fmt.Errorf("%w: %q", ErrNoMetrics, id)
		}
		sys.Metrics.Flush(sys.Machine.Cycle())
		var buf bytes.Buffer
		if err := obs.WriteChromeTrace(&buf, sys.Metrics); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]byte), nil
}

// ObsResult is the response of an obs-summary operation: the condensed
// JSON view of the session's recorder plus enough session context to read
// it (where the machine's cycle counter stands, and whether the summary
// covers only the span since a revival).
type ObsResult struct {
	ID    string `json:"id"`
	Cycle uint64 `json:"cycle"`
	// Revived reports that the session was parked when the summary was
	// requested: the recorder was recreated at revival, so the counters
	// cover only the span since then.
	Revived bool        `json:"revived,omitempty"`
	Obs     obs.Summary `json:"obs"`
	// Translation surfaces the machine's superblock-translator counters
	// (all zero on sessions built without translation).
	Translation dorado.TranslationStats `json:"translation"`
}

// ObsSummary condenses the session's observability recorder — wakeup
// counters, hold-latency and wakeup-to-run histograms, the utilization
// timeline rolled up per task — into a JSON-ready Summary. Requires
// Spec.Metrics, like TraceJSON.
func (m *Manager) ObsSummary(ctx context.Context, id string) (ObsResult, error) {
	wasParked := false
	if s, ok := m.lookup(id); ok {
		s.mu.Lock()
		wasParked = s.parkedLocked()
		s.mu.Unlock()
	}
	v, err := m.submit(ctx, id, opObs, func(sys *system) (any, error) {
		if sys.Metrics == nil {
			return nil, fmt.Errorf("%w: %q", ErrNoMetrics, id)
		}
		sys.Metrics.Flush(sys.Machine.Cycle())
		return ObsResult{
			ID:          id,
			Cycle:       sys.Machine.Cycle(),
			Obs:         obs.Summarize(sys.Metrics),
			Translation: sys.Machine.TranslationStats(),
		}, nil
	})
	if err != nil {
		return ObsResult{}, err
	}
	r := v.(ObsResult)
	r.Revived = wasParked
	return r, nil
}

func (m *Manager) lookup(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	return s, ok
}

// Info is one row of the session listing. It is assembled from cached
// counters, so listing does not serialize behind the sessions' queues.
type Info struct {
	ID       string `json:"id"`
	Language string `json:"language"`
	// Devices lists the mounted controllers' catalog names, in Spec order.
	Devices []string `json:"devices,omitempty"`
	Parked  bool     `json:"parked"`
	// Snapshot is the content hash of the session's most recently
	// persisted snapshot (managers with Config.Store only). For a parked
	// session it names the exact bytes revival will restore; it also
	// seeds forks via CreateFrom.
	Snapshot string `json:"snapshot,omitempty"`
	Queue    int    `json:"queue"`
	Cycle    uint64 `json:"cycle"`
	Halted   bool   `json:"halted"`
	Ops      uint64 `json:"ops"`
}

// Sessions lists every session in creation order.
func (m *Manager) Sessions() []Info {
	m.mu.Lock()
	list := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		list = append(list, s)
	}
	m.mu.Unlock()
	sortSessions(list)
	out := make([]Info, 0, len(list))
	for _, s := range list {
		s.mu.Lock()
		parked, queue, snap := s.sys == nil, len(s.pending), s.parkedHash
		s.mu.Unlock()
		var devs []string
		for _, ds := range s.spec.Devices {
			devs = append(devs, ds.Name)
		}
		out = append(out, Info{
			ID:       s.id,
			Language: s.spec.Language,
			Devices:  devs,
			Parked:   parked,
			Snapshot: snap,
			Queue:    queue,
			Cycle:    s.stats.cycles.Load(),
			Halted:   s.stats.halted.Load(),
			Ops:      s.stats.ops.Load(),
		})
	}
	return out
}

func sortSessions(list []*Session) {
	sort.Slice(list, func(i, j int) bool { return list[i].seq < list[j].seq })
}
