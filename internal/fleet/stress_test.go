package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dorado"
)

// TestStressConcurrentSessions drives 32 sessions through the full
// operation surface — load, run, snapshot, restore, read-state — from 32
// concurrent drivers while a sweeper goroutine aggressively parks idle
// sessions and scrapers read the listing and metrics, all under whatever
// scheduler interleaving the race detector provokes. Each driver checks
// exact cycle accounting: per-session operations are serialized and the
// machine is deterministic, so after every iteration the cycle counter
// must match the driver's model even when the session was parked and
// revived in between.
func TestStressConcurrentSessions(t *testing.T) {
	const (
		sessions   = 32
		iterations = 6
	)
	m := New(Config{
		Workers:     4,
		MaxSessions: sessions,
		QueueDepth:  4,
		// Eviction pressure: everything idle for 1ms is fair game for the
		// sweeper below (the built-in janitor period is too coarse here).
		IdleAfter:  time.Millisecond,
		SweepEvery: time.Hour,
	})
	defer drainNow(t, m)

	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(2)
	go func() { // sweeper: constant park pressure
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.Sweep()
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	go func() { // scraper: listings and metrics race the drivers
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.Sessions()
				m.MetricsSnapshot()
				time.Sleep(300 * time.Microsecond)
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			id, err := m.Create(smallSpec())
			if err != nil {
				t.Errorf("create: %v", err)
				return
			}
			if _, err := m.LoadMicrocode(tctx, id, SpinMicrocode, "start"); err != nil {
				t.Errorf("%s: load: %v", id, err)
				return
			}
			var model uint64 // expected machine cycle counter
			for it := 0; it < iterations; it++ {
				r, err := m.Run(tctx, id, 2000)
				if err != nil {
					t.Errorf("%s: run: %v", id, err)
					return
				}
				model += 2000
				if r.Cycle != model {
					t.Errorf("%s: cycle %d, want %d", id, r.Cycle, model)
					return
				}
				snap, err := m.Snapshot(tctx, id)
				if err != nil {
					t.Errorf("%s: snapshot: %v", id, err)
					return
				}
				if _, err := m.Run(tctx, id, 1000); err != nil {
					t.Errorf("%s: run past snapshot: %v", id, err)
					return
				}
				if err := m.Restore(tctx, id, snap); err != nil {
					t.Errorf("%s: restore: %v", id, err)
					return
				}
				st, err := m.ReadState(tctx, id)
				if err != nil {
					t.Errorf("%s: state: %v", id, err)
					return
				}
				if st.Cycle != model {
					t.Errorf("%s: restored cycle %d, want %d", id, st.Cycle, model)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	aux.Wait()

	// Deterministic park/revive epilogue (the background sweeper only
	// catches sessions mid-churn when the scheduler is slow enough): once
	// every driver is done, everything is idle, so a sweep past IdleAfter
	// must park every session — and one more run on each must revive it
	// with its cycle count intact.
	time.Sleep(2 * m.cfg.IdleAfter)
	m.Sweep()
	if m.counters.evicted.Load() == 0 {
		t.Error("stress run never parked a session")
	}
	final := uint64(iterations * 2000)
	for i := 1; i <= sessions; i++ {
		id := fmt.Sprintf("s%d", i)
		r, err := m.Run(tctx, id, 100)
		if err != nil {
			t.Fatalf("%s: post-sweep run: %v", id, err)
		}
		if r.Cycle != final+100 {
			t.Errorf("%s: revived cycle %d, want %d", id, r.Cycle, final+100)
		}
	}
	if got := m.counters.created.Load(); got != sessions {
		t.Errorf("created = %d", got)
	}
}

// TestStressTranslatedSessions is the run/snapshot/restore/park/revive
// churn with superblock translation enabled on every session: the
// translator's caches (hotness counters, fused blocks) are per-machine
// derived state that Restore and revival must invalidate, and the race
// detector watches the worker pool hand translated machines between
// goroutines. Cycle accounting stays exact — translation must not change
// what a run operation simulates, only how fast.
func TestStressTranslatedSessions(t *testing.T) {
	const (
		sessions   = 8
		iterations = 6
	)
	spec := smallSpec()
	spec.Machine.Translation = dorado.Translation{Enable: true, HotThreshold: 8}
	m := New(Config{
		Workers:     4,
		MaxSessions: sessions,
		QueueDepth:  4,
		IdleAfter:   time.Millisecond,
		SweepEvery:  time.Hour,
	})
	defer drainNow(t, m)

	stop := make(chan struct{})
	var sweep sync.WaitGroup
	sweep.Add(1)
	go func() { // constant park pressure, so revival rebuilds translators mid-churn
		defer sweep.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.Sweep()
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			id, err := m.Create(spec)
			if err != nil {
				t.Errorf("create: %v", err)
				return
			}
			if _, err := m.LoadMicrocode(tctx, id, SpinMicrocode, "start"); err != nil {
				t.Errorf("%s: load: %v", id, err)
				return
			}
			var model uint64
			for it := 0; it < iterations; it++ {
				// Long enough to cross the hot threshold many times over:
				// the spin loop is translated almost immediately.
				r, err := m.Run(tctx, id, 3000)
				if err != nil {
					t.Errorf("%s: run: %v", id, err)
					return
				}
				model += 3000
				if r.Cycle != model {
					t.Errorf("%s: cycle %d, want %d", id, r.Cycle, model)
					return
				}
				snap, err := m.Snapshot(tctx, id)
				if err != nil {
					t.Errorf("%s: snapshot: %v", id, err)
					return
				}
				if _, err := m.Run(tctx, id, 1000); err != nil {
					t.Errorf("%s: run past snapshot: %v", id, err)
					return
				}
				if err := m.Restore(tctx, id, snap); err != nil {
					t.Errorf("%s: restore: %v", id, err)
					return
				}
				st, err := m.ReadState(tctx, id)
				if err != nil {
					t.Errorf("%s: state: %v", id, err)
					return
				}
				if st.Cycle != model {
					t.Errorf("%s: restored cycle %d, want %d", id, st.Cycle, model)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	sweep.Wait()
}

// TestStressOverloadStorm hammers one session from many submitters with a
// tiny queue: every submission must either succeed or fail cleanly with
// ErrOverloaded, and the session must stay consistent throughout.
func TestStressOverloadStorm(t *testing.T) {
	m := New(Config{Workers: 2, QueueDepth: 2})
	defer drainNow(t, m)

	id, err := m.Create(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadMicrocode(tctx, id, SpinMicrocode, "start"); err != nil {
		t.Fatal(err)
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		ok, shed int
	)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 20; n++ {
				_, err := m.Run(tctx, id, 100)
				mu.Lock()
				switch {
				case err == nil:
					ok++
				case errors.Is(err, ErrOverloaded):
					shed++
				default:
					t.Errorf("unexpected error: %v", err)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if ok == 0 {
		t.Error("no operation ever succeeded")
	}
	st, err := m.ReadState(tctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycle != uint64(ok)*100 {
		t.Errorf("cycle %d, want %d (%d ok, %d shed)", st.Cycle, ok*100, ok, shed)
	}
	if shed > 0 && m.counters.rejectedLoad.Load() == 0 {
		t.Error("shed ops not counted")
	}
}

// TestDrainUnderLoad starts a storm of work across many sessions and
// drains mid-flight: every accepted operation completes, late arrivals are
// refused, and Drain returns once the pool is quiet.
func TestDrainUnderLoad(t *testing.T) {
	m := New(Config{Workers: 4, MaxSessions: 8, QueueDepth: 8})

	ids := make([]string, 8)
	for i := range ids {
		id, err := m.Create(smallSpec())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.LoadMicrocode(tctx, id, SpinMicrocode, "start"); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	var wg sync.WaitGroup
	var accepted, refused atomic64
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for n := 0; n < 50; n++ {
				_, err := m.Run(tctx, id, 500)
				switch {
				case err == nil:
					accepted.add(1)
				case errors.Is(err, ErrDraining):
					refused.add(1)
					return
				case errors.Is(err, ErrOverloaded):
					// Back off and keep going until drain cuts us off.
				default:
					t.Errorf("%s: %v", id, err)
					return
				}
			}
		}(id)
	}

	time.Sleep(2 * time.Millisecond) // let some work through first
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	if accepted.load() == 0 {
		t.Error("drain beat every driver; no operation ran")
	}
}

// TestStressTraceExportDuringRun races the observability surface against
// the operation surface on metrics sessions: while drivers run cycles and
// snapshot/restore, other goroutines continuously export Chrome traces,
// read obs summaries, stream SSE events over HTTP, and scrape Prometheus
// metrics. Everything must serialize cleanly (the race detector is the
// judge), and a final drain must terminate the still-open event streams
// promptly.
func TestStressTraceExportDuringRun(t *testing.T) {
	const nSessions = 4
	m := New(Config{Workers: 4, MaxSessions: nSessions, QueueDepth: 8})
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()

	ids := make([]string, nSessions)
	for i := range ids {
		id, err := m.Create(Spec{
			Metrics: true,
			Machine: smallSpec().Machine,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.LoadMicrocode(tctx, id, SpinMicrocode, "start"); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(3)
		go func(id string) { // driver: run + snapshot/restore churn
			defer wg.Done()
			for it := 0; it < 8; it++ {
				if _, err := m.Run(tctx, id, 2000); err != nil {
					if !errors.Is(err, ErrDraining) {
						t.Errorf("%s: run: %v", id, err)
					}
					return
				}
				snap, err := m.Snapshot(tctx, id)
				if err != nil {
					if !errors.Is(err, ErrDraining) {
						t.Errorf("%s: snapshot: %v", id, err)
					}
					return
				}
				if err := m.Restore(tctx, id, snap); err != nil {
					if !errors.Is(err, ErrDraining) {
						t.Errorf("%s: restore: %v", id, err)
					}
					return
				}
			}
		}(id)
		go func(id string) { // exporter: traces and summaries mid-run
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				data, err := m.TraceJSON(tctx, id)
				if err == nil && len(data) == 0 {
					t.Errorf("%s: empty trace", id)
					return
				}
				if err == nil {
					_, err = m.ObsSummary(tctx, id)
				}
				if err != nil {
					if !errors.Is(err, ErrDraining) {
						t.Errorf("%s: export: %v", id, err)
					}
					return
				}
			}
		}(id)
		go func(id string) { // watcher: SSE stream until drain says bye
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/v1/sessions/" + id + "/events?interval_ms=50")
			if err != nil {
				t.Errorf("%s: events: %v", id, err)
				return
			}
			defer resp.Body.Close()
			// Read until the stream ends; the drain below must close it.
			buf := make([]byte, 4096)
			for {
				if _, err := resp.Body.Read(buf); err != nil {
					return
				}
			}
		}(id)
	}
	wg.Add(1)
	go func() { // scraper: Prometheus export races everything above
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.MetricsSnapshot()
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	// Let the churn overlap, then drain with the SSE streams still open:
	// the drain signal must end them, and every accepted operation must
	// complete.
	time.Sleep(20 * time.Millisecond)
	close(stop)
	drainNow(t, m)
	wg.Wait()
}

// atomic64 is a tiny counter wrapper to keep the test bodies readable.
type atomic64 struct {
	mu sync.Mutex
	v  uint64
}

func (a *atomic64) add(n uint64) { a.mu.Lock(); a.v += n; a.mu.Unlock() }
func (a *atomic64) load() uint64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }
