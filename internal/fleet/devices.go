package fleet

import (
	"fmt"

	"dorado"
	"dorado/internal/device"
)

// ErrUnknownDevice reports a DeviceSpec whose Name is not in the catalog;
// cmd/doradod returns 400.
var ErrUnknownDevice = fmt.Errorf("fleet: unknown device")

// DeviceSpec mounts one I/O controller on a session's machine — the §7
// device configurations (display, disk, fast and slow I/O) as fleet
// sessions, not just bare or emulator machines. The catalog:
//
//	disk      10 Mbit/s word source (a word every 27 cycles, 2 per wakeup)
//	ethernet  ≈3 Mbit/s word source (a word every 89 cycles)
//	display   fast-I/O output: 16-word blocks storage→device, video rate
//	scanner   fast-I/O input: 16-word blocks device→storage
//	loopback  always-ready slow I/O (peak IODATA rate), armed at attach
//	pulse     periodic wakeup latency probe
//
// A session's devices are part of its Spec: reviving a parked session
// reattaches the same controllers before the snapshot (which includes
// their mutable state) is restored onto the machine.
type DeviceSpec struct {
	// Name selects the controller model from the catalog above.
	Name string `json:"name"`
	// Task is the controller's wakeup task (1–15; higher is more urgent).
	// Zero picks the model's conventional task: disk 11, ethernet 10,
	// display 13, scanner 12, loopback 9, pulse 14.
	Task int `json:"task,omitempty"`
	// Rate overrides the device's cycle rate: cycles per word for the word
	// sources, cycles per block for display/scanner, the wakeup period for
	// pulse. Zero picks the model's paper-rate default.
	Rate int `json:"rate,omitempty"`
	// Base is the storage VA that display/scanner block offsets are
	// relative to (ignored by the other models).
	Base uint32 `json:"base,omitempty"`
	// Start optionally names a microcode label: every LoadMicrocode on the
	// session sets this device task's TPC to that label after loading, so
	// one request wires both the program and its service routines. Without
	// it the task's TPC must be set by restoring a snapshot (a wakeup to a
	// task with a zero TPC runs whatever is at microstore address 0).
	Start string `json:"start,omitempty"`
}

// deviceDefaults maps each catalog name to its conventional task and rate.
var deviceDefaults = map[string]struct{ task, rate int }{
	"disk":     {11, 27},
	"ethernet": {10, 89},
	"display":  {13, 8},
	"scanner":  {12, 8},
	"loopback": {9, 0},
	"pulse":    {14, 1000},
}

// normalize validates the spec and fills in catalog defaults. It is called
// both at session creation (where its error becomes a 400) and before every
// rebuild of a parked session.
func (ds DeviceSpec) normalize() (DeviceSpec, error) {
	def, ok := deviceDefaults[ds.Name]
	if !ok {
		return ds, fmt.Errorf("%w %q (catalog: disk, ethernet, display, scanner, loopback, pulse)", ErrUnknownDevice, ds.Name)
	}
	if ds.Task == 0 {
		ds.Task = def.task
	}
	if ds.Task < 1 || ds.Task > 15 {
		return ds, fmt.Errorf("fleet: device %q task %d out of range 1..15", ds.Name, ds.Task)
	}
	if ds.Rate == 0 {
		ds.Rate = def.rate
	}
	return ds, nil
}

// attach builds the controller and mounts it on the machine: Attach plus
// the IOADDRESS convention (task number) all bundled microcode uses.
func (ds DeviceSpec) attach(m *dorado.Machine) error {
	ds, err := ds.normalize()
	if err != nil {
		return err
	}
	var d dorado.Device
	switch ds.Name {
	case "disk", "ethernet":
		d = device.NewWordSource(ds.Task, ds.Rate, 2)
	case "display":
		disp := device.NewDisplay(ds.Task, m.Mem(), ds.Rate, 4)
		disp.SetBase(ds.Base)
		d = disp
	case "scanner":
		sc := device.NewScanner(ds.Task, m.Mem(), ds.Rate, 4)
		sc.SetBase(ds.Base)
		d = sc
	case "loopback":
		lb := device.NewLoopback(ds.Task)
		lb.Arm(true)
		d = lb
	case "pulse":
		d = device.NewPulse(ds.Task, ds.Rate)
	}
	if err := m.Attach(d); err != nil {
		return err
	}
	m.SetIOAddress(ds.Task, uint16(ds.Task))
	return nil
}

// validateDevices normalizes every DeviceSpec and rejects duplicate tasks,
// so session creation fails fast (400) instead of leaving a half-built
// machine behind.
func validateDevices(specs []DeviceSpec) error {
	used := map[int]string{}
	for _, ds := range specs {
		n, err := ds.normalize()
		if err != nil {
			return err
		}
		if prev, ok := used[n.Task]; ok {
			return fmt.Errorf("fleet: devices %q and %q both on task %d", prev, n.Name, n.Task)
		}
		used[n.Task] = n.Name
	}
	return nil
}
