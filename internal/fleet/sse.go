package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"dorado/internal/obs"
)

// This file is the live half of the fleet's observability: a Server-Sent
// Events stream (GET /v1/sessions/{id}/events) pushing periodic snapshots
// of a session's counters while it runs. The stream reads only the
// session's cached atomic stats — never the machine, never a session lock
// around the simulation — so any number of watchers cost the hot loop
// nothing. The flip side: the counters refresh when a worker finishes an
// operation, so a stream shows progress at operation granularity (one
// long /run updates once, at its end).
//
// Besides the periodic "stats" snapshots, the stream carries the runs
// resource's completion notifications: every run that finishes on the
// session emits one "run" event whose data is the terminal RunView, so a
// client that submitted POST .../runs can wait on the stream instead of
// polling. Delivery is best-effort (a slow consumer misses events rather
// than slowing run completion); GetRun remains the source of truth.
//
// A stream ends when the client disconnects, the session is destroyed
// ("bye" event, reason "destroyed"), or the manager starts draining
// ("bye", reason "drain"). The drain case matters operationally: Drain
// closes the manager's DrainSignal before waiting for in-flight
// operations, so streams release their connections immediately instead of
// holding http.Server.Shutdown open.

// Event stream cadence: the default snapshot interval and the bounds the
// ?interval_ms query parameter is clamped to.
const (
	defaultEventInterval = 500 * time.Millisecond
	minEventInterval     = 50 * time.Millisecond
	maxEventInterval     = 10 * time.Second
)

// Event is one SSE stats snapshot ("event: stats"). Counters come from
// the session's scrape cache, refreshed after each completed operation.
type Event struct {
	ID string `json:"id"`
	// Cycle, Executed, Holds, and Halted mirror the machine's counters as
	// of the last completed operation.
	Cycle    uint64 `json:"cycle"`
	Executed uint64 `json:"executed"`
	Holds    uint64 `json:"holds"`
	Halted   bool   `json:"halted"`
	// Parked reports that the session is currently evicted to a snapshot.
	Parked bool `json:"parked"`
	// Ops counts operations completed on the session since creation.
	Ops uint64 `json:"ops"`
	// Tasks is per-task busy cycles (nonzero tasks only) — the live
	// utilization breakdown.
	Tasks []TaskBusy `json:"tasks,omitempty"`
}

// TaskBusy is one task's busy-cycle count in an Event.
type TaskBusy struct {
	Task   int    `json:"task"`
	Cycles uint64 `json:"cycles"`
}

// sessionEvent assembles an Event from the session's atomic stats cache.
func sessionEvent(s *Session) Event {
	ev := Event{
		ID:       s.id,
		Cycle:    s.stats.cycles.Load(),
		Executed: s.stats.executed.Load(),
		Holds:    s.stats.holds.Load(),
		Halted:   s.stats.halted.Load(),
		Parked:   s.stats.parked.Load(),
		Ops:      s.stats.ops.Load(),
	}
	for t := 0; t < obs.MaxTasks; t++ {
		if c := s.stats.taskCycles[t].Load(); c != 0 {
			ev.Tasks = append(ev.Tasks, TaskBusy{Task: t, Cycles: c})
		}
	}
	return ev
}

// streamEvents serves GET /v1/sessions/{id}/events.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess, ok := s.mgr.lookup(id)
	if !ok {
		s.writeError(w, r, fmt.Errorf("%w: %q", ErrNotFound, id))
		return
	}
	interval := defaultEventInterval
	if q := r.URL.Query().Get("interval_ms"); q != "" {
		ms, err := strconv.Atoi(q)
		if err != nil || ms <= 0 {
			s.badRequest(w, r, fmt.Errorf("interval_ms must be a positive integer, got %q", q))
			return
		}
		interval = min(max(time.Duration(ms)*time.Millisecond, minEventInterval), maxEventInterval)
	}
	runC := sess.subscribeRuns()
	defer sess.unsubscribeRuns(runC)

	// Flush must reach the real writer through the access-log wrapper;
	// statusWriter.Unwrap makes the controller's walk succeed.
	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		if _, alive := s.mgr.lookup(id); !alive {
			writeBye(w, rc, "destroyed")
			return
		}
		data, err := json.Marshal(sessionEvent(sess))
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "event: stats\ndata: %s\n\n", data); err != nil {
			return
		}
		if err := rc.Flush(); err != nil {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.mgr.DrainSignal():
			writeBye(w, rc, "drain")
			return
		case rv := <-runC:
			data, err := json.Marshal(rv)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: run\ndata: %s\n\n", data); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
		case <-ticker.C:
		}
	}
}

// writeBye sends the terminal SSE event; errors are moot, the stream is
// ending either way.
func writeBye(w http.ResponseWriter, rc *http.ResponseController, reason string) {
	fmt.Fprintf(w, "event: bye\ndata: {\"reason\":%q}\n\n", reason) //nolint:errcheck
	rc.Flush()                                                      //nolint:errcheck
}
