package fleet

import (
	"bytes"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"
)

// diskMicrocode is the §7 disk service idiom from examples/microcode:
// task 0 spins, the disk task moves two words in three microinstructions.
const diskMicrocode = `
emu:    alu=a+1 a=rm r=0 lc=rm goto emu
disk:   ff=input alu=b lc=t
        a=store r=1 b=t alu=a+1 lc=rm
        a=store r=1 ff=input alu=a+1 lc=rm block goto disk
`

// TestDeviceSessionLifecycle drives a disk-backed session through the full
// HTTP lifecycle: create with a DeviceSpec, load microcode that wires the
// device task via its Start label, run, snapshot, diverge, restore, and
// confirm the snapshot — which embeds the device FIFO — brought the whole
// machine back.
func TestDeviceSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	var created struct {
		ID string `json:"id"`
	}
	if code := call(t, "POST", ts.URL+"/v1/sessions", map[string]any{
		"devices": []map[string]any{{"name": "disk", "start": "disk"}},
	}, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	id := created.ID

	if code := call(t, "POST", ts.URL+"/v1/sessions/"+id+"/microcode", map[string]any{
		"text": diskMicrocode, "start": "emu",
	}, nil); code != http.StatusOK {
		t.Fatalf("microcode: status %d", code)
	}

	var run struct {
		Cycle uint64 `json:"cycle"`
	}
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+id+"/run",
		map[string]any{"cycles": 5000}, &run); code != http.StatusOK {
		t.Fatalf("run: status %d", code)
	}
	if run.Cycle != 5000 {
		t.Fatalf("cycle = %d after run, want 5000", run.Cycle)
	}

	snap := getBytes(t, ts.URL+"/v1/sessions/"+id+"/snapshot")
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}

	// Diverge, restore, and check the machine state came back exactly: a
	// re-taken snapshot must be byte-identical, which covers the device
	// section too (the disk FIFO, timers, and counters are in there).
	if code := call(t, "POST", ts.URL+"/v1/sessions/"+id+"/run",
		map[string]any{"cycles": 3000}, nil); code != http.StatusOK {
		t.Fatal("diverging run failed")
	}
	req, err := http.NewRequest("PUT", ts.URL+"/v1/sessions/"+id+"/snapshot", bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restore: status %d", resp.StatusCode)
	}
	if again := getBytes(t, ts.URL+"/v1/sessions/"+id+"/snapshot"); !bytes.Equal(snap, again) {
		t.Error("snapshot after restore differs from the restored snapshot")
	}

	var st State
	if code := call(t, "GET", ts.URL+"/v1/sessions/"+id, nil, &st); code != http.StatusOK {
		t.Fatal("read state failed")
	}
	if st.Cycle != 5000 {
		t.Errorf("cycle = %d after restore, want 5000", st.Cycle)
	}

	// The listing reports the mounted device.
	var list struct {
		Sessions []Info `json:"sessions"`
	}
	call(t, "GET", ts.URL+"/v1/sessions", nil, &list)
	if len(list.Sessions) != 1 || len(list.Sessions[0].Devices) != 1 || list.Sessions[0].Devices[0] != "disk" {
		t.Errorf("listing devices = %+v, want [disk]", list.Sessions)
	}
}

// TestDeviceSessionsDeterministic: two sessions with identical device Specs
// and microcode, run the same number of cycles, must snapshot
// byte-identically — device simulation in the fleet is deterministic.
func TestDeviceSessionsDeterministic(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	snaps := make([][]byte, 2)
	for i := range snaps {
		var created struct {
			ID string `json:"id"`
		}
		call(t, "POST", ts.URL+"/v1/sessions", map[string]any{
			"devices": []map[string]any{
				{"name": "disk", "start": "disk"},
				{"name": "loopback", "task": 8},
			},
		}, &created)
		if created.ID == "" {
			t.Fatal("create failed")
		}
		if code := call(t, "POST", ts.URL+"/v1/sessions/"+created.ID+"/microcode", map[string]any{
			"text": diskMicrocode, "start": "emu",
		}, nil); code != http.StatusOK {
			t.Fatalf("microcode: status %d", code)
		}
		call(t, "POST", ts.URL+"/v1/sessions/"+created.ID+"/run", map[string]any{"cycles": 4000}, nil)
		snaps[i] = getBytes(t, ts.URL+"/v1/sessions/"+created.ID+"/snapshot")
	}
	if !bytes.Equal(snaps[0], snaps[1]) {
		t.Error("identical device sessions took different snapshots")
	}
}

// TestDeviceSpecValidation: unknown device names, bad tasks, and duplicate
// task claims must all be 400s at creation time, before a session exists.
func TestDeviceSpecValidation(t *testing.T) {
	mgr, ts := newTestServer(t, Config{Workers: 1})

	cases := []struct {
		name    string
		devices []map[string]any
	}{
		{"unknown name", []map[string]any{{"name": "teleporter"}}},
		{"empty name", []map[string]any{{"name": ""}}},
		{"task out of range", []map[string]any{{"name": "disk", "task": 16}}},
		{"duplicate task", []map[string]any{{"name": "disk"}, {"name": "ethernet", "task": 11}}},
	}
	for _, tc := range cases {
		var e struct {
			Error string `json:"error"`
		}
		code := call(t, "POST", ts.URL+"/v1/sessions", map[string]any{"devices": tc.devices}, &e)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (error %q)", tc.name, code, e.Error)
		}
	}
	if got := len(mgr.Sessions()); got != 0 {
		t.Errorf("%d sessions created by rejected requests, want 0", got)
	}
}

// TestDeviceSessionParkRevive: a parked disk-backed session must revive
// with its devices reattached and its snapshot (device FIFO included)
// restored, transparently, on the next operation.
func TestDeviceSessionParkRevive(t *testing.T) {
	clock := struct {
		sync.Mutex
		t time.Time
	}{t: time.Unix(1000, 0)}
	now := func() time.Time {
		clock.Lock()
		defer clock.Unlock()
		return clock.t
	}
	mgr := New(Config{Workers: 1, IdleAfter: time.Minute, SweepEvery: time.Hour, now: now})
	t.Cleanup(func() { drainNow(t, mgr) })

	id, err := mgr.Create(Spec{Devices: []DeviceSpec{{Name: "disk", Start: "disk"}}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := tctx
	if _, err := mgr.LoadMicrocode(ctx, id, diskMicrocode, "emu"); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Run(ctx, id, 4000); err != nil {
		t.Fatal(err)
	}
	before, err := mgr.Snapshot(ctx, id)
	if err != nil {
		t.Fatal(err)
	}

	clock.Lock()
	clock.t = clock.t.Add(2 * time.Minute)
	clock.Unlock()
	if n := mgr.Sweep(); n != 1 {
		t.Fatalf("parked %d sessions, want 1", n)
	}
	after, err := mgr.Snapshot(ctx, id) // revives
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("revived session's snapshot differs: device state lost across park/revive")
	}
}

// getBytes GETs a URL and returns the raw body.
func getBytes(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
