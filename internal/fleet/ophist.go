package fleet

import (
	"time"

	"dorado/internal/obs"
)

// This file is the fleet's operation-latency decomposition. Every
// operation's life splits into two intervals the service cares about
// separately:
//
//   - queue wait: submit accepted the operation → a worker picked it up.
//     Grows with load (more sessions than workers, deep per-session
//     queues) and is the half a bigger worker pool or sharding fixes.
//   - service time: the operation body itself (running the machine,
//     assembling microcode, serializing a snapshot). Grows with the work
//     requested and is the half only a faster simulator fixes.
//
// A slow /run is attributable by comparing the two: a fat queue-wait
// histogram with thin service times means queueing, the reverse means
// execution. Both are recorded per operation kind so a snapshot-heavy
// client cannot hide a run-latency regression (and vice versa), and
// exported as Prometheus histogram vectors with op labels
// (dorado_fleet_op_queue_us, dorado_fleet_op_service_us).

// opLatencyBounds bucket queue-wait and service time in microseconds:
// fine-grained under a millisecond (the uncontended dequeue-and-run
// range), exponential out to 10 s (a 100M-cycle run or a drain stall).
var opLatencyBounds = []uint64{
	50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
	250_000, 500_000, 1_000_000, 2_500_000, 10_000_000,
}

// opHistograms holds the per-operation-kind latency histograms. Observe
// is called by workers (one per completed operation); the atomic buckets
// inside obs.Histogram make concurrent scrapes safe without a lock.
type opHistograms struct {
	queue   [numOpKinds]obs.Histogram
	service [numOpKinds]obs.Histogram
}

func newOpHistograms() *opHistograms {
	var h opHistograms
	for k := opKind(0); k < numOpKinds; k++ {
		h.queue[k] = obs.NewHistogram(opLatencyBounds)
		h.service[k] = obs.NewHistogram(opLatencyBounds)
	}
	return &h
}

// observe records one completed operation. ran reports whether the body
// actually executed — a canceled or revive-failed operation still waited
// in the queue (that interval is real load data) but has no service time
// worth recording.
func (h *opHistograms) observe(k opKind, queue, service time.Duration, ran bool) {
	h.queue[k].Observe(uint64(max64(queue.Microseconds(), 0)))
	if ran {
		h.service[k].Observe(uint64(max64(service.Microseconds(), 0)))
	}
}

// snapshotVec renders one of the two histogram sets as a labeled vector
// in opKind order, so exports are deterministic.
func snapshotVec(hs *[numOpKinds]obs.Histogram) []obs.LabeledHistogram {
	out := make([]obs.LabeledHistogram, 0, int(numOpKinds))
	for k := opKind(0); k < numOpKinds; k++ {
		out = append(out, obs.LabeledHistogram{
			Label: `op="` + k.String() + `"`,
			Hist:  hs[k].Snapshot(),
		})
	}
	return out
}

func max64(v, floor int64) int64 {
	if v < floor {
		return floor
	}
	return v
}
