package fleet

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"dorado/internal/bench"
)

// SpinMicrocode is the fleet benchmark workload: a two-instruction counter
// loop that never halts, so a session can absorb any cycle budget. It is
// also the smallest useful smoke input for the load-microcode API.
const SpinMicrocode = `
; fleet scaling workload: increment T forever
start:  const=0 alu=b lc=t
loop:   alu=a+1 a=t lc=t goto loop
`

// ScalingOptions parameterizes MeasureScaling. The zero value measures
// 1, 2, 4, and 8 sessions, 250k cycles per operation, 8 operations per
// session, without metrics recorders.
type ScalingOptions struct {
	// Sessions are the fleet sizes to measure, in order; the first is the
	// scaling baseline.
	Sessions []int
	// CyclesPerOp is the cycle budget of each run operation.
	CyclesPerOp uint64
	// OpsPerSession is how many run operations each session's driver
	// submits inside the timed region.
	OpsPerSession int
	// Metrics creates the sessions with observability recorders
	// (Spec.Metrics) — the instrumented-fleet configuration the bench
	// guard's FleetMetricsOn budget polices.
	Metrics bool
}

func (o ScalingOptions) withDefaults() ScalingOptions {
	if len(o.Sessions) == 0 {
		o.Sessions = []int{1, 2, 4, 8}
	}
	if o.CyclesPerOp == 0 {
		o.CyclesPerOp = 250_000
	}
	if o.OpsPerSession <= 0 {
		o.OpsPerSession = 8
	}
	return o
}

// MeasureScaling measures aggregate fleet throughput at each requested
// session count: a fresh Manager (GOMAXPROCS workers) runs n sessions of
// the spin workload, each driven by its own goroutine submitting run
// operations back to back — the saturated-service shape, every session
// always having work — and the point records total simulated cycles over
// wall time. On a host with GOMAXPROCS ≥ n the aggregate should approach
// n × the one-session rate; the recorded Workers field says what
// parallelism was actually available.
func MeasureScaling(opt ScalingOptions) ([]bench.FleetPoint, error) {
	opt = opt.withDefaults()
	var points []bench.FleetPoint
	for _, n := range opt.Sessions {
		p, err := measureFleet(n, opt)
		if err != nil {
			return points, err
		}
		if len(points) > 0 {
			p.Scaling = p.CyclesPerSec / points[0].CyclesPerSec
		} else {
			p.Scaling = 1
		}
		points = append(points, p)
	}
	return points, nil
}

func measureFleet(n int, opt ScalingOptions) (bench.FleetPoint, error) {
	m := New(Config{Workers: runtime.GOMAXPROCS(0), MaxSessions: n, QueueDepth: 2})
	defer m.Drain(context.Background()) //nolint:errcheck // Background never expires

	ctx := context.Background()
	ids := make([]string, n)
	for i := range ids {
		id, err := m.Create(Spec{Metrics: opt.Metrics})
		if err != nil {
			return bench.FleetPoint{}, err
		}
		if _, err := m.LoadMicrocode(ctx, id, SpinMicrocode, "start"); err != nil {
			return bench.FleetPoint{}, err
		}
		// Warm the machine (caches, predecode, host branch predictor).
		if _, err := m.Run(ctx, id, opt.CyclesPerOp/4); err != nil {
			return bench.FleetPoint{}, err
		}
		ids[i] = id
	}

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		total  uint64
		firstE error
	)
	start := time.Now()
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			var ran uint64
			for i := 0; i < opt.OpsPerSession; i++ {
				r, err := m.Run(ctx, id, opt.CyclesPerOp)
				if err != nil {
					mu.Lock()
					if firstE == nil {
						firstE = fmt.Errorf("fleet bench: session %s: %w", id, err)
					}
					mu.Unlock()
					return
				}
				ran += r.Ran
			}
			mu.Lock()
			total += ran
			mu.Unlock()
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstE != nil {
		return bench.FleetPoint{}, firstE
	}
	sec := elapsed.Seconds()
	return bench.FleetPoint{
		Sessions:     n,
		Workers:      m.Workers(),
		Gomaxprocs:   runtime.GOMAXPROCS(0),
		SimCycles:    total,
		HostSeconds:  sec,
		CyclesPerSec: float64(total) / sec,
	}, nil
}
