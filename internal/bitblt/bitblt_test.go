package bitblt

import (
	"math/rand"
	"testing"

	"dorado/internal/core"
)

func newMachine(t *testing.T) *core.Machine {
	t.Helper()
	m, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func build(t *testing.T) *Programs {
	t.Helper()
	ps, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

// checkAgainstReference runs p on a fresh machine and on the pure-Go
// reference over identical random memory images, then compares the
// destination rectangles.
func checkAgainstReference(t *testing.T, ps *Programs, p Params, seed int64) uint64 {
	t.Helper()
	m := newMachine(t)
	rng := rand.New(rand.NewSource(seed))
	ref := map[uint32]uint16{}
	for a := uint32(0); a < 0x8000; a++ {
		v := uint16(rng.Uint32())
		m.Mem().Poke(a, v)
		ref[a] = v
	}
	cycles, err := ps.Run(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := Reference(func(a uint32) uint16 { return ref[a] },
		func(a uint32, v uint16) { ref[a] = v }, p); err != nil {
		t.Fatal(err)
	}
	for a := uint32(0); a < 0x8000; a++ {
		if got := m.Mem().Peek(a); got != ref[a] {
			t.Fatalf("%v: mem[%#x] = %#04x, reference %#04x", p.Op, a, got, ref[a])
		}
	}
	return cycles
}

func TestFillMatchesReference(t *testing.T) {
	ps := build(t)
	checkAgainstReference(t, ps, Params{
		Op: Fill, Dst: 0x4000, WidthWords: 20, Height: 8,
		DstPitch: 32, FillValue: 0xA5A5,
	}, 1)
}

func TestCopyMatchesReference(t *testing.T) {
	ps := build(t)
	checkAgainstReference(t, ps, Params{
		Op: Copy, Src: 0x1000, Dst: 0x4000, WidthWords: 24, Height: 10,
		SrcPitch: 32, DstPitch: 40,
	}, 2)
}

func TestCopyShiftedMatchesReference(t *testing.T) {
	ps := build(t)
	for _, off := range []uint8{1, 3, 8, 15} {
		checkAgainstReference(t, ps, Params{
			Op: CopyShifted, Src: 0x1000, Dst: 0x4000, WidthWords: 16, Height: 4,
			SrcPitch: 20, DstPitch: 20, BitOffset: off,
		}, int64(10+off))
	}
}

func TestMergeMatchesReference(t *testing.T) {
	ps := build(t)
	checkAgainstReference(t, ps, Params{
		Op: Merge, Src: 0x1000, Dst: 0x4000, WidthWords: 16, Height: 8,
		SrcPitch: 16, DstPitch: 16, Filter: 0x0FF0,
	}, 3)
}

func TestValidation(t *testing.T) {
	cases := []Params{
		{Op: Copy, WidthWords: 0, Height: 1, SrcPitch: 1, DstPitch: 1},
		{Op: Copy, WidthWords: 4, Height: 1, SrcPitch: 2, DstPitch: 4},
		{Op: Copy, WidthWords: 4, Height: 1, SrcPitch: 4, DstPitch: 2},
		{Op: CopyShifted, WidthWords: 4, Height: 1, SrcPitch: 4, DstPitch: 4, BitOffset: 0},
		{Op: CopyShifted, WidthWords: 4, Height: 1, SrcPitch: 4, DstPitch: 4, BitOffset: 16},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestSimpleFasterThanComplex(t *testing.T) {
	// The paper's claim in shape: erase/scroll (simple) beats the
	// src+dst+filter function (complex).
	ps := build(t)
	base := Params{Src: 0x1000, Dst: 0x4000, WidthWords: 64, Height: 32,
		SrcPitch: 64, DstPitch: 64}
	pCopy := base
	pCopy.Op = Copy
	pMerge := base
	pMerge.Op = Merge
	pMerge.Filter = 0xF0F0
	copyCycles := checkAgainstReference(t, ps, pCopy, 4)
	mergeCycles := checkAgainstReference(t, ps, pMerge, 5)
	if copyCycles >= mergeCycles {
		t.Errorf("Copy (%d cycles) not faster than Merge (%d)", copyCycles, mergeCycles)
	}
	t.Logf("Copy %.1f Mbit/s, Merge %.1f Mbit/s",
		MBitPerSec(pCopy, copyCycles), MBitPerSec(pMerge, mergeCycles))
}

func TestBandwidthOrderOfMagnitude(t *testing.T) {
	// Both figures should land in the tens of Mbit/s, like the paper's
	// 34 and 24.
	ps := build(t)
	p := Params{Op: Copy, Src: 0x1000, Dst: 0x4000, WidthWords: 128, Height: 64,
		SrcPitch: 128, DstPitch: 128}
	cycles := checkAgainstReference(t, ps, p, 6)
	mbps := MBitPerSec(p, cycles)
	if mbps < 10 || mbps > 200 {
		t.Errorf("copy bandwidth %.1f Mbit/s implausible vs paper's 34", mbps)
	}
}
