// Package bitblt implements the Dorado's BitBlt (bit-boundary block
// transfer, §7; called RasterOp in [9]): microcode that creates and updates
// display bitmaps, "making extensive use of the shifting/masking capability
// of the processor".
//
// The paper's numbers, which experiment E3 reproduces in shape:
//
//	"Dorado's BitBlt can move display objects around in memory at
//	34 megabits/sec for simple cases of erasing or scrolling a screen.
//	More complex operations, where the result is a function of the source
//	object, the destination object and a filter, run at 24 megabits/sec."
//
// Four operation classes are microcoded, from cheapest to dearest:
//
//	Fill           dst ← constant                     (1 µinst/word loop)
//	Copy           dst ← src, word-aligned            (2 µinst/word)
//	CopyShifted    dst ← src at a bit offset          (5 µinst/word, barrel shifter)
//	Merge          dst ← (src AND filter) OR (dst AND NOT filter)
//	                                                  (6 µinst/word, two fetches)
//
// Each runs as task-0 microcode over a rectangle of full words (the real
// BitBlt also masked partial edge words; the inner-loop cost structure,
// which is what the bandwidth figures measure, is the same).
package bitblt

import (
	"fmt"

	"dorado/internal/core"
	"dorado/internal/masm"
	"dorado/internal/microcode"
)

// Op selects the transfer function.
type Op int

const (
	// Fill stores a constant (erasing a screen region).
	Fill Op = iota
	// Copy moves word-aligned source to destination (scrolling).
	Copy
	// CopyShifted moves source to destination across a bit boundary,
	// merging adjacent source words through the barrel shifter.
	CopyShifted
	// Merge computes dst = (src AND filter) OR (dst AND NOT filter): the
	// paper's "function of the source object, the destination object and a
	// filter".
	Merge
)

// String returns the operation's name ("Fill", "Copy", "Merge").
func (o Op) String() string {
	switch o {
	case Fill:
		return "Fill"
	case Copy:
		return "Copy"
	case CopyShifted:
		return "CopyShifted"
	case Merge:
		return "Merge"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Params describes one BitBlt call. Addresses are word VAs; the rectangle
// is WidthWords × Height; pitches are full row strides in words.
type Params struct {
	Op         Op
	Src, Dst   uint32
	WidthWords int
	Height     int
	SrcPitch   int
	DstPitch   int
	FillValue  uint16 // Fill
	Filter     uint16 // Merge
	BitOffset  uint8  // CopyShifted: 1..15
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.WidthWords <= 0 || p.Height <= 0 {
		return fmt.Errorf("bitblt: empty rectangle %d×%d", p.WidthWords, p.Height)
	}
	if p.SrcPitch < p.WidthWords && p.Op != Fill {
		return fmt.Errorf("bitblt: source pitch %d < width %d", p.SrcPitch, p.WidthWords)
	}
	if p.DstPitch < p.WidthWords {
		return fmt.Errorf("bitblt: dest pitch %d < width %d", p.DstPitch, p.WidthWords)
	}
	if p.Op == CopyShifted && (p.BitOffset == 0 || p.BitOffset > 15) {
		return fmt.Errorf("bitblt: bit offset %d out of 1..15", p.BitOffset)
	}
	if p.Height*p.SrcPitch > 0xFFFF || p.Height*p.DstPitch > 0xFFFF {
		return fmt.Errorf("bitblt: rectangle exceeds the 16-bit displacement range")
	}
	return nil
}

// Bits returns the number of bits the call transfers.
func (p Params) Bits() float64 { return float64(p.WidthWords) * 16 * float64(p.Height) }

// Register conventions for the BitBlt microcode (RM bank 0). Pointers are
// 16-bit displacements from two dedicated memory base registers, so the
// rectangles can live anywhere in the 28-bit virtual space (§6.3.2).
const (
	rSrc    = 0
	rDst    = 1
	rWidth  = 2 // inner-loop reload value (width-1)
	rHeight = 3
	rSrcGap = 4 // SrcPitch − WidthWords
	rDstGap = 5 // DstPitch − WidthWords
	rFilter = 6
	rPrev   = 8 // CopyShifted: previous source word
	rTmp    = 9

	mbSrc = 8 // base register holding the source bitmap's address
	mbDst = 9 // base register holding the destination bitmap's address
)

// Programs holds the assembled BitBlt microcode and its entry points.
type Programs struct {
	Micro   *masm.Program
	Entries map[Op]microcode.Addr
}

// Build assembles the BitBlt microcode once; it can run any number of
// calls on any machine.
func Build() (*Programs, error) {
	b := masm.NewBuilder()
	emitFill(b)
	emitCopy(b)
	emitCopyShifted(b)
	emitMerge(b)
	p, err := b.Assemble()
	if err != nil {
		return nil, err
	}
	return &Programs{
		Micro: p,
		Entries: map[Op]microcode.Addr{
			Fill:        p.MustEntry("bb.fill"),
			Copy:        p.MustEntry("bb.copy"),
			CopyShifted: p.MustEntry("bb.shift"),
			Merge:       p.MustEntry("bb.merge"),
		},
	}, nil
}

// rowTail emits the between-rows bookkeeping shared by all variants:
// advance src/dst over the row gaps, decrement the row count, loop to
// rowLabel or halt. srcToo controls whether the source pointer advances.
func rowTail(b *masm.Builder, name, rowLabel string, srcToo bool) {
	if srcToo {
		b.Emit(masm.I{A: microcode.ASelRM, R: rSrcGap, ALU: microcode.ALUA, LC: microcode.LCLoadT})
		b.Emit(masm.I{A: microcode.ASelRM, R: rSrc, B: microcode.BSelT,
			ALU: microcode.ALUAplusB, LC: microcode.LCLoadRM})
	}
	b.Emit(masm.I{A: microcode.ASelRM, R: rDstGap, ALU: microcode.ALUA, LC: microcode.LCLoadT})
	b.Emit(masm.I{A: microcode.ASelRM, R: rDst, B: microcode.BSelT,
		ALU: microcode.ALUAplusB, LC: microcode.LCLoadRM})
	b.Emit(masm.I{A: microcode.ASelRM, R: rHeight, ALU: microcode.ALUAminus1,
		LC: microcode.LCLoadRM, Flow: masm.Branch(microcode.CondALUZero, name+".more", name+".done")})
	b.EmitAt(name+".more", masm.I{Flow: masm.Goto(rowLabel)})
	b.EmitAt(name+".done", masm.I{FF: microcode.FFHalt, Flow: masm.Self()})
}

// emitFill: dst words ← Q (the fill value), one microinstruction per word
// (the inner-loop instruction is its own branch target).
func emitFill(b *masm.Builder) {
	b.Label("bb.fill")
	b.EmitAt("bb.fill.row", masm.I{A: microcode.ASelRM, R: rWidth, ALU: microcode.ALUA, LC: microcode.LCLoadT,
		FF: microcode.FFMemBaseBase + mbDst})
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFPutCount})
	b.EmitAt("bb.fill.w", masm.I{A: microcode.ASelStore, R: rDst, B: microcode.BSelQ,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM,
		Flow: masm.Branch(microcode.CondCountNZ, "bb.fill.x", "bb.fill.w")})
	b.EmitAt("bb.fill.x", masm.I{})
	rowTail(b, "bb.fill", "bb.fill.row", false)
}

// emitCopy: word-aligned dst ← src, two microinstructions per word.
func emitCopy(b *masm.Builder) {
	b.Label("bb.copy")
	b.EmitAt("bb.copy.row", masm.I{A: microcode.ASelRM, R: rWidth, ALU: microcode.ALUA, LC: microcode.LCLoadT})
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFPutCount})
	b.EmitAt("bb.copy.w", masm.I{A: microcode.ASelFetch, R: rSrc,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM, FF: microcode.FFMemBaseBase + mbSrc})
	b.Emit(masm.I{A: microcode.ASelStore, R: rDst, B: microcode.BSelMD,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM, FF: microcode.FFMemBaseBase + mbDst,
		Flow: masm.Branch(microcode.CondCountNZ, "bb.copy.x", "bb.copy.w")})
	b.EmitAt("bb.copy.x", masm.I{})
	rowTail(b, "bb.copy", "bb.copy.row", true)
}

// emitCopyShifted: dst ← src shifted left by SHIFTCTL's rotation, merging
// adjacent source words through the barrel shifter (§6.3.4). The caller
// pre-loads SHIFTCTL with the bit offset and rPrev with the word before the
// row's first source word.
func emitCopyShifted(b *masm.Builder) {
	b.Label("bb.shift")
	b.EmitAt("bb.shift.row", masm.I{A: microcode.ASelRM, R: rWidth, ALU: microcode.ALUA, LC: microcode.LCLoadT})
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFPutCount})
	// Prime rPrev with the word at src−1 for this row.
	b.Emit(masm.I{A: microcode.ASelRM, R: rSrc, ALU: microcode.ALUAminus1,
		LC: microcode.LCLoadRM, FF: microcode.FFRMDestBase + rTmp})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rTmp, FF: microcode.FFMemBaseBase + mbSrc})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: rPrev})
	b.EmitAt("bb.shift.w", masm.I{A: microcode.ASelFetch, R: rSrc,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM, FF: microcode.FFMemBaseBase + mbSrc})
	// T and rTmp both get the new source word (LoadBoth), keeping it for
	// the next iteration while the shifter consumes rPrev‖T.
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadBoth, R: rTmp})
	b.Emit(masm.I{FF: microcode.FFShiftNoMask, R: rPrev, LC: microcode.LCLoadT})
	b.Emit(masm.I{A: microcode.ASelRM, R: rTmp, ALU: microcode.ALUA,
		LC: microcode.LCLoadRM, FF: microcode.FFRMDestBase + rPrev})
	b.Emit(masm.I{A: microcode.ASelStore, R: rDst, B: microcode.BSelT,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM, FF: microcode.FFMemBaseBase + mbDst,
		Flow: masm.Branch(microcode.CondCountNZ, "bb.shift.x", "bb.shift.w2")})
	// The 5-instruction body cannot be its own branch target (the pair
	// layout would collide with the fetch at the loop head), so it loops
	// through a hop.
	b.EmitAt("bb.shift.w2", masm.I{Flow: masm.Goto("bb.shift.w")})
	b.EmitAt("bb.shift.x", masm.I{})
	rowTail(b, "bb.shift", "bb.shift.row", true)
}

// emitMerge: dst ← (src AND filter) OR (dst AND NOT filter): two fetches,
// two ALU passes, one store per word.
func emitMerge(b *masm.Builder) {
	b.Label("bb.merge")
	b.EmitAt("bb.merge.row", masm.I{A: microcode.ASelRM, R: rWidth, ALU: microcode.ALUA, LC: microcode.LCLoadT})
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFPutCount})
	b.EmitAt("bb.merge.w", masm.I{A: microcode.ASelFetch, R: rSrc,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM, FF: microcode.FFMemBaseBase + mbSrc})
	b.Emit(masm.I{A: microcode.ASelMD, B: microcode.BSelRM, R: rFilter,
		ALU: microcode.ALUAandB, LC: microcode.LCLoadT}) // T = src & filter
	b.Emit(masm.I{A: microcode.ASelFetch, R: rDst, FF: microcode.FFMemBaseBase + mbDst})
	b.Emit(masm.I{A: microcode.ASelMD, B: microcode.BSelRM, R: rFilter,
		ALU: microcode.ALUAandNotB, LC: microcode.LCLoadRM,
		FF: microcode.FFRMDestBase + rTmp}) // rTmp = dst &^ filter
	b.Emit(masm.I{A: microcode.ASelRM, R: rTmp, B: microcode.BSelT,
		ALU: microcode.ALUAorB, LC: microcode.LCLoadT})
	b.Emit(masm.I{A: microcode.ASelStore, R: rDst, B: microcode.BSelT,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM, FF: microcode.FFMemBaseBase + mbDst,
		Flow: masm.Branch(microcode.CondCountNZ, "bb.merge.x", "bb.merge.w2")})
	b.EmitAt("bb.merge.w2", masm.I{Flow: masm.Goto("bb.merge.w")})
	b.EmitAt("bb.merge.x", masm.I{})
	rowTail(b, "bb.merge", "bb.merge.row", true)
}

// Run executes one BitBlt on m (loading the microcode and parameters) and
// returns the cycles consumed.
func (ps *Programs) Run(m *core.Machine, p Params) (uint64, error) {
	if err := ps.Setup(m, p); err != nil {
		return 0, err
	}
	start := m.Cycle()
	limit := uint64(p.WidthWords*p.Height*200 + 10000)
	if !m.Run(limit) {
		return 0, fmt.Errorf("bitblt: did not finish in %d cycles", limit)
	}
	return m.Cycle() - start, nil
}

// Setup loads the microcode and call parameters and starts the machine at
// the operation's entry point, without running it — callers that need to
// drive the blit cycle by cycle (checkpointing, host-throughput timing)
// advance the machine themselves; the blit is done when the machine halts.
func (ps *Programs) Setup(m *core.Machine, p Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	m.Load(&ps.Micro.Words)
	// The source base is biased by one word so CopyShifted's row-priming
	// read of "the word before the row" stays within the 16-bit positive
	// displacement range.
	m.SetRM(rSrc, 1)
	m.SetRM(rDst, 0)
	m.SetRM(rWidth, uint16(p.WidthWords-1))
	m.SetRM(rHeight, uint16(p.Height))
	m.SetRM(rSrcGap, uint16(p.SrcPitch-p.WidthWords))
	m.SetRM(rDstGap, uint16(p.DstPitch-p.WidthWords))
	m.SetRM(rFilter, p.Filter)
	m.SetQ(p.FillValue)
	m.Mem().SetBase(mbSrc, p.Src-1)
	m.Mem().SetBase(mbDst, p.Dst)
	if p.Op == CopyShifted {
		m.SetShiftCtl(microcode.EncodeShiftCtl(microcode.ShiftCtl{Count: p.BitOffset}))
	}
	m.Start(ps.Entries[p.Op])
	return nil
}

// MBitPerSec converts a cycle count for p into megabits per second at the
// 60 ns machine cycle.
func MBitPerSec(p Params, cycles uint64) float64 {
	return p.Bits() / (float64(cycles) * core.CycleNS * 1e-9) / 1e6
}

// Reference computes the expected destination contents in pure Go.
// mem maps word addresses to values via the peek/poke functions.
func Reference(peek func(uint32) uint16, poke func(uint32, uint16), p Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	for row := 0; row < p.Height; row++ {
		s := p.Src + uint32(row*p.SrcPitch)
		d := p.Dst + uint32(row*p.DstPitch)
		for w := 0; w < p.WidthWords; w++ {
			switch p.Op {
			case Fill:
				poke(d+uint32(w), p.FillValue)
			case Copy:
				poke(d+uint32(w), peek(s+uint32(w)))
			case CopyShifted:
				prev := peek(s + uint32(w) - 1)
				cur := peek(s + uint32(w))
				k := p.BitOffset
				poke(d+uint32(w), prev<<k|cur>>(16-k))
			case Merge:
				src := peek(s + uint32(w))
				dst := peek(d + uint32(w))
				poke(d+uint32(w), src&p.Filter|dst&^p.Filter)
			}
		}
	}
	return nil
}
