package bitblt

import (
	"testing"

	"dorado/internal/core"
)

func benchOp(b *testing.B, op Op) {
	ps, err := Build()
	if err != nil {
		b.Fatal(err)
	}
	p := Params{
		Op: op, Src: 0x10000, Dst: 0x40000, WidthWords: 64, Height: 64,
		SrcPitch: 64, DstPitch: 64, Filter: 0xAAAA, FillValue: 0xFFFF,
	}
	if op == CopyShifted {
		p.BitOffset = 5
	}
	m, err := core.New(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := ps.Run(m, p)
		if err != nil {
			b.Fatal(err)
		}
		cycles += c
	}
	b.ReportMetric(MBitPerSec(p, cycles/uint64(b.N)), "Mbit/s")
}

func BenchmarkFill(b *testing.B)        { benchOp(b, Fill) }
func BenchmarkCopy(b *testing.B)        { benchOp(b, Copy) }
func BenchmarkCopyShifted(b *testing.B) { benchOp(b, CopyShifted) }
func BenchmarkMerge(b *testing.B)       { benchOp(b, Merge) }
