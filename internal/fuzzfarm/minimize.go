package fuzzfarm

import "dorado/internal/fuzzdiff"

// minimize shrinks a diverging work unit to a smaller reproduction. Two
// moves, both verified by rerunning the differential:
//
//   - cycle shrink: the program is unchanged, so cutting Config.Cycles to
//     one past the diverging cycle must reproduce the identical divergence
//     — this always lands, and turns a 20000-cycle scan into a repro that
//     stops right after the bug;
//   - program shrink: halving Config.Instructions generates a *different*
//     program (the generator is seed+size deterministic), so each halving
//     only sticks if the new program still diverges on the same microword
//     at the same microstore address — evidence it is the same underlying
//     bug, smaller.
//
// attempts bounds the halvings (negative disables minimization entirely);
// each attempt costs at most one extra fuzz run of the current best size.
// The returned Config is normalized and reproduces the returned
// Divergence.
func minimize(cfg fuzzdiff.Config, d *fuzzdiff.Divergence, attempts int) (fuzzdiff.Config, *fuzzdiff.Divergence) {
	cfg = cfg.Normalized()
	best, bestD := cfg, d
	if attempts < 0 {
		return best, bestD
	}
	shrinkCycles := func() {
		if best.Cycles <= bestD.Cycle+1 {
			return
		}
		trial := best
		trial.Cycles = bestD.Cycle + 1
		if d2 := sameDivergence(trial, bestD); d2 != nil {
			best, bestD = trial, d2
		}
	}
	shrinkCycles()
	for n := best.Instructions / 2; n >= 2 && attempts > 0; n /= 2 {
		attempts--
		trial := best
		trial.Instructions = n
		// A smaller program may diverge later, so give the trial the full
		// original budget; a success re-shrinks cycles right after.
		trial.Cycles = cfg.Cycles
		if d2 := sameDivergence(trial, bestD); d2 != nil {
			best, bestD = trial, d2
			shrinkCycles()
		}
	}
	return best, bestD
}

// sameDivergence reruns trial and returns its divergence if it pins the
// same microword at the same microstore address as want — the farm's
// definition of "same bug" — and nil on agreement, error, or a different
// divergence.
func sameDivergence(trial fuzzdiff.Config, want *fuzzdiff.Divergence) *fuzzdiff.Divergence {
	d, err := fuzzdiff.Run(trial)
	if err != nil || d == nil {
		return nil
	}
	if d.PC != want.PC || d.Word != want.Word {
		return nil
	}
	return d
}
