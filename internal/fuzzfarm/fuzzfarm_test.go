package fuzzfarm

import (
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"

	"dorado/internal/core"
	"dorado/internal/fuzzdiff"
)

// flipRM5 is the standard seeded bug (the same injector the fuzzdiff
// bisection tests use): flip a bit in RM 5 on the fast path at a fixed
// cycle, so every seed on every profile diverges — and the farm had better
// find all of them.
func flipRM5(at uint64) func(uint64, *core.Machine) {
	return func(cycle uint64, fast *core.Machine) {
		if cycle == at {
			fast.SetRM(5, fast.RM(5)^0x8000)
		}
	}
}

// tamperedConfig is the shared self-test campaign: every seed diverges at
// cycle 300, budgets kept small (tampered runs single-step, and every
// divergence pays a bisection plus minimization reruns) so the whole
// matrix stays fast even under -race.
func tamperedConfig(seeds int64, shards int) Config {
	return Config{
		Seeds:            seeds,
		Shards:           shards,
		Fuzz:             fuzzdiff.Config{Cycles: 600, CheckpointEvery: 256},
		MinimizeAttempts: 2,
		Tamper:           flipRM5(300),
	}
}

func TestShardRange(t *testing.T) {
	cases := []struct {
		start, total int64
		shards       int
	}{
		{1, 10, 3}, {1, 16, 16}, {1, 16, 1}, {100, 7, 4}, {1, 1, 1},
	}
	for _, tc := range cases {
		next := tc.start
		for i := 0; i < tc.shards; i++ {
			first, count := shardRange(tc.start, tc.total, tc.shards, i)
			if first != next {
				t.Fatalf("(%+v) shard %d starts at %d, want %d (ranges must tile)", tc, i, first, next)
			}
			if want := tc.total / int64(tc.shards); count != want && count != want+1 {
				t.Errorf("(%+v) shard %d has %d seeds, want %d or %d", tc, i, count, want, want+1)
			}
			next += count
		}
		if next != tc.start+tc.total {
			t.Errorf("(%+v) ranges cover [%d,%d), want [%d,%d)", tc, tc.start, next, tc.start, tc.start+tc.total)
		}
	}
}

// TestShardDeterminism is the farm's core contract: the same seed range
// produces the identical divergence set — and the identical report, modulo
// wall-clock fields and the per-shard breakdown — for any shard count and
// any worker count. Per-seed fuzz runs are pure functions of their Config,
// so sharding is free to be whatever the scheduler likes.
func TestShardDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign matrix is slow")
	}
	// comparable renders the deterministic part of a report: timing fields
	// and the shard breakdown (whose shape legitimately varies with the
	// shard count) stripped.
	comparable := func(r *Report) string {
		r.StripTiming()
		r.Shards = 0
		r.ShardStats = nil
		b, err := json.MarshalIndent(r, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	var want string
	for _, k := range []int{1, 4, 16} {
		cfg := tamperedConfig(16, k)
		cfg.Workers = 3
		rep, err := Run(tctx(t), cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", k, err)
		}
		if rep.Divergences != 16*len(DefaultProfiles()) {
			t.Fatalf("shards=%d: %d divergences, want %d (every seed x profile is tampered)",
				k, rep.Divergences, 16*len(DefaultProfiles()))
		}
		got := comparable(rep)
		if want == "" {
			want = got
		} else if got != want {
			t.Errorf("shards=%d: report differs from shards=1 baseline:\n%s\nvs\n%s", k, got, want)
		}
	}

	// Worker count is pure parallelism: same shards, serial execution.
	cfg := tamperedConfig(16, 4)
	cfg.Workers = 1
	rep, err := Run(tctx(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := comparable(rep); got != want {
		t.Errorf("workers=1: report differs from workers=3:\n%s\nvs\n%s", got, want)
	}
}

// TestFarmFindsSeededBug is the end-to-end self-test: a tampered campaign
// must detect every injected divergence, minimize each one, and bank
// deduped regression tests in the corpus directory.
func TestFarmFindsSeededBug(t *testing.T) {
	dir := t.TempDir()
	cfg := tamperedConfig(4, 2)
	cfg.CorpusDir = dir
	rep, err := Run(tctx(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantDiv := 4 * len(DefaultProfiles())
	if rep.Divergences != wantDiv || len(rep.Findings) != wantDiv {
		t.Fatalf("found %d divergences (%d findings), want %d", rep.Divergences, len(rep.Findings), wantDiv)
	}
	if rep.Interrupted {
		t.Error("campaign marked interrupted without cancellation")
	}
	if len(rep.Errors) != 0 {
		t.Errorf("harness errors: %v", rep.Errors)
	}

	keys := map[string]string{}
	for _, f := range rep.Findings {
		if f.Cycle != 300 {
			t.Errorf("finding %s/%d: divergence at cycle %d, fault injected at 300", f.Profile, f.Seed, f.Cycle)
		}
		if f.MinCycles != 301 {
			t.Errorf("finding %s/%d: MinCycles = %d, want 301 (cycle shrink to one past the fault)",
				f.Profile, f.Seed, f.MinCycles)
		}
		if f.MinInstructions <= 0 || f.Key == "" || f.CorpusFile == "" {
			t.Errorf("finding %s/%d incomplete: %+v", f.Profile, f.Seed, f)
		}
		if !strings.Contains(f.Repro, "fuzzdiff.Run(fuzzdiff.Config{") {
			t.Errorf("finding %s/%d: repro is not a pasteable test:\n%s", f.Profile, f.Seed, f.Repro)
		}
		if prev, ok := keys[f.Key]; ok && prev != f.CorpusFile {
			t.Errorf("key %s maps to two corpus files: %s and %s", f.Key, prev, f.CorpusFile)
		}
		keys[f.Key] = f.CorpusFile
	}

	// One corpus entry per distinct key, each a .go.txt regression test.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(keys) {
		t.Errorf("%d corpus files for %d distinct keys", len(entries), len(keys))
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go.txt") {
			t.Errorf("corpus entry %s: want .go.txt (must never join a build)", e.Name())
		}
		body, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(body), "func TestFuzzDiffSeed") {
			t.Errorf("corpus entry %s has no test function:\n%s", e.Name(), body)
		}
	}

	// Re-running the identical campaign dedupes against the existing corpus:
	// same findings, zero new files.
	rep2, err := Run(tctx(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Divergences != wantDiv {
		t.Fatalf("second run found %d divergences, want %d", rep2.Divergences, wantDiv)
	}
	again, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(entries) {
		t.Errorf("corpus grew from %d to %d files on an identical re-run (dedupe broken)", len(entries), len(again))
	}
}

// TestFarmCleanCampaign: a small clean campaign over the full profile mix
// must report zero divergences and full accounting — the smoke-sized
// version of the nightly CI invariant.
func TestFarmCleanCampaign(t *testing.T) {
	rep, err := Run(tctx(t), Config{
		Seeds:  4,
		Shards: 2,
		Fuzz:   fuzzdiff.Config{Cycles: 3000, CheckpointEvery: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Divergences != 0 || len(rep.Findings) != 0 {
		t.Fatalf("clean campaign found divergences: %+v", rep.Findings)
	}
	if len(rep.Errors) != 0 {
		t.Fatalf("harness errors: %v", rep.Errors)
	}
	if rep.SeedsRun != 4 || rep.Interrupted {
		t.Errorf("SeedsRun = %d, Interrupted = %t; want 4, false", rep.SeedsRun, rep.Interrupted)
	}
	if rep.Cycles == 0 {
		t.Error("Cycles = 0: throughput accounting missing")
	}
	if len(rep.ShardStats) != 2 {
		t.Fatalf("%d shard stats, want 2", len(rep.ShardStats))
	}
	var seeds int64
	for _, s := range rep.ShardStats {
		seeds += s.SeedsRun
		if s.SeedsRun != s.SeedsTotal {
			t.Errorf("shard %d ran %d/%d seeds in an uninterrupted campaign", s.Shard, s.SeedsRun, s.SeedsTotal)
		}
	}
	if seeds != rep.SeedsRun {
		t.Errorf("shard seed counts sum to %d, report says %d", seeds, rep.SeedsRun)
	}
}

// TestFarmGracefulCancel: cancelling mid-campaign stops cleanly — finished
// work is reported, the rest is skipped, and the report says Interrupted.
func TestFarmGracefulCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	cfg := Config{
		Seeds:   64,
		Shards:  8,
		Workers: 1,
		Fuzz:    fuzzdiff.Config{Cycles: 1000, CheckpointEvery: 256},
		// Cancel as soon as the first seed completes: with one worker the
		// remaining shards (and the current shard's remaining seeds) must be
		// skipped at the next context check.
		Progress: func(done, total int64) { once.Do(cancel) },
	}
	rep, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Interrupted {
		t.Error("report not marked Interrupted after cancellation")
	}
	if rep.SeedsRun == 0 || rep.SeedsRun >= 64 {
		t.Errorf("SeedsRun = %d, want partial progress in (0, 64)", rep.SeedsRun)
	}
	if len(rep.ShardStats) != 8 {
		t.Errorf("%d shard stats, want 8 (skipped shards still report)", len(rep.ShardStats))
	}
}

// TestMinimizeShrinksCycles checks the minimizer directly: the cycle budget
// must shrink to one past the divergence while reproducing the identical
// (PC, word) pair.
func TestMinimizeShrinksCycles(t *testing.T) {
	cfg := fuzzdiff.Config{Seed: 3, Cycles: 4000, CheckpointEvery: 512, Tamper: flipRM5(1234)}
	d, err := fuzzdiff.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("seeded fault not detected")
	}
	best, bestD := minimize(cfg, d, 8)
	if best.Cycles != d.Cycle+1 {
		t.Errorf("minimized Cycles = %d, want %d", best.Cycles, d.Cycle+1)
	}
	if bestD.PC != d.PC || bestD.Word != d.Word {
		t.Errorf("minimized divergence moved: pc %v word %+v, want pc %v word %+v",
			bestD.PC, bestD.Word, d.PC, d.Word)
	}
	if best.Instructions > cfg.Normalized().Instructions {
		t.Errorf("minimization grew the program: %d > %d", best.Instructions, cfg.Normalized().Instructions)
	}
	// Negative attempts disables minimization entirely.
	same, sameD := minimize(cfg, d, -1)
	if same.Cycles != cfg.Normalized().Cycles || sameD != d {
		t.Error("minimize(-1) modified the config or divergence")
	}
}

// TestReproCompilesAndPasses is the compile-and-run check on generated
// repros: the farm writes a minimized Divergence.Repro into a throwaway
// package inside the repository (internal packages are invisible outside
// the module tree) and `go test`s it. The repro encodes a tampered run
// re-executed without the tamper, so the test must compile, run, and pass.
func TestReproCompilesAndPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a go test subprocess")
	}
	d, err := fuzzdiff.Run(fuzzdiff.Config{Seed: 3, Cycles: 2000, CheckpointEvery: 256, Tamper: flipRM5(700)})
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("seeded fault not detected")
	}

	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate test source for repo root")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(self))) // internal/fuzzfarm -> repo root
	dir, err := os.MkdirTemp(root, "reprocheck")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })

	src := `// Package reprocheck is a generated throwaway: it exists only while
// fuzzfarm's TestReproCompilesAndPasses verifies a divergence repro
// compiles and passes verbatim.
package reprocheck

import (
	"testing"

	"dorado/internal/fuzzdiff"
)

` + d.Repro
	if err := os.WriteFile(filepath.Join(dir, "repro_test.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command("go", "test", "-count=1", "./"+filepath.Base(dir))
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("generated repro failed to compile or pass:\n%s\n--- repro ---\n%s", out, d.Repro)
	}
}

// tctx returns a plain background context (kept as a helper so tests read
// uniformly; the repo targets Go 1.22, which has no t.Context).
func tctx(t *testing.T) context.Context {
	t.Helper()
	return context.Background()
}
