package fuzzfarm

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// findingKey content-addresses a finding by what identifies the underlying
// bug — the diverging microstore address, the encoded microword, and the
// detail prefix (which snapshot section the mismatch surfaced in) — and
// deliberately not by seed or profile, so fifty seeds tripping over the
// same microinstruction dedupe to one corpus entry.
func findingKey(f *Finding) string {
	prefix, _, _ := strings.Cut(f.Detail, ":")
	h := sha256.Sum256([]byte(fmt.Sprintf("pc%04o|%#011x|%s", f.PC, f.Raw, prefix)))
	return hex.EncodeToString(h[:])[:16]
}

// writeCorpus assigns every finding its content address and banks one
// regression test per distinct key in dir. A key whose file already exists
// — written earlier in this campaign or by a previous one — is skipped,
// and the finding points at the existing entry, so the corpus accumulates
// distinct bugs across nightly runs instead of drowning in duplicates.
func writeCorpus(dir string, findings []Finding) error {
	for i := range findings {
		findings[i].Key = findingKey(&findings[i])
	}
	if len(findings) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("fuzzfarm: corpus dir: %w", err)
	}
	written := map[string]bool{}
	for i := range findings {
		f := &findings[i]
		name := fmt.Sprintf("div_pc%04o_%s.go.txt", f.PC, f.Key)
		f.CorpusFile = name
		if written[f.Key] {
			continue
		}
		written[f.Key] = true
		path := filepath.Join(dir, name)
		if _, err := os.Stat(path); err == nil {
			continue // a previous campaign already banked this bug
		}
		if err := os.WriteFile(path, []byte(corpusEntry(f)), 0o644); err != nil {
			return fmt.Errorf("fuzzfarm: write corpus entry: %w", err)
		}
	}
	return nil
}

// corpusEntry renders the on-disk regression test: a provenance header plus
// the minimized ready-to-paste repro. The .go.txt extension keeps a
// checked-in corpus out of every build — an entry becomes a real test by
// pasting it into a _test.go file in internal/fuzzdiff when triaged.
func corpusEntry(f *Finding) string {
	return fmt.Sprintf(`// fuzzfarm corpus entry %s
// profile=%s seed=%d cycle=%d task=%d pc=%04o
// word=%s (raw %#011x)
// detail: %s
// minimized: instructions=%d cycles=%d
//
// Paste into a _test.go file in internal/fuzzdiff to adopt as a regression.

%s`, f.Key, f.Profile, f.Seed, f.Cycle, f.Task, f.PC, f.Word, f.Raw,
		f.Detail, f.MinInstructions, f.MinCycles, f.Repro)
}
