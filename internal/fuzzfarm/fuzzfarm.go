// Package fuzzfarm is the differential fuzz farm: it shards deterministic
// fuzzdiff seed ranges across a bounded worker pool and aggregates the
// results into one campaign report, turning the fleet's cross-session
// parallelism discipline into overnight interpreter verification.
//
// The farm exists because the repository now carries three execution paths
// that must stay byte-identical forever — the reference interpreter, the
// predecoded hot loop, and the superblock translator — and the cheapest
// way to keep them honest is volume: millions of generated microprograms,
// each a (seed, profile) work unit that either agrees at every snapshot
// checkpoint or bisects to the exact diverging microinstruction
// (internal/fuzzdiff). Work units are embarrassingly parallel (the NOP
// parallel-deployment argument from the related work: many simple
// independent units behind a scheduler), so the farm is a scheduler, not a
// simulator: seed ranges shard contiguously, shards fan out across
// Config.Workers goroutines, and everything a shard computes is a pure
// function of its seeds — the report is byte-identical for any shard count
// or worker count, modulo wall-clock fields.
//
// A divergence is minimized before it is reported (shrink the cycle budget
// to just past the divergence, then the program size while the same
// microword still diverges at the same microstore address — see minimize)
// and emitted into a corpus directory as a ready-to-paste regression test,
// content-addressed by (PC, microword, detail prefix) so ten seeds hitting
// the same underlying bug dedupe to one corpus entry.
package fuzzfarm

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"dorado/internal/core"
	"dorado/internal/fuzzdiff"
)

// Profile names one machine/path configuration a campaign runs every seed
// under. Profiles multiply coverage the way §7's evaluation does: the same
// microprogram generator exercised on bare machines and on device-driven
// ones, against both fast paths.
type Profile struct {
	// Name labels the profile in reports and corpus entries.
	Name string `json:"name"`
	// Translated runs the fast side through the superblock translator.
	Translated bool `json:"translated"`
	// FastIO attaches the display/scanner fast-I/O pair to both machines.
	FastIO bool `json:"fastio"`
}

// DefaultProfiles returns the full campaign mix: reference vs predecoded
// and vs translated, on bare machines and on device-driven (fast-I/O)
// ones — the §7 configurations.
func DefaultProfiles() []Profile {
	return []Profile{
		{Name: "bare"},
		{Name: "bare-translated", Translated: true},
		{Name: "fastio", FastIO: true},
		{Name: "fastio-translated", Translated: true, FastIO: true},
	}
}

// TranslatedProfiles returns the translated-only half of the mix, for
// campaigns hunting translator bugs specifically.
func TranslatedProfiles() []Profile {
	return []Profile{
		{Name: "bare-translated", Translated: true},
		{Name: "fastio-translated", Translated: true, FastIO: true},
	}
}

// Config describes one campaign. The zero value is not runnable; Seeds
// must be positive. Everything except Workers and Duration affects the
// divergence set; Workers and Duration affect only how fast (and whether)
// the campaign completes.
type Config struct {
	// StartSeed is the first seed (default 1).
	StartSeed int64
	// Seeds is the number of seeds to run. Required.
	Seeds int64
	// Shards is the number of contiguous seed ranges the campaign is split
	// into — the unit of scheduling and of per-shard stats. Default 8,
	// clamped to Seeds.
	Shards int
	// Workers bounds the goroutines executing shards (default GOMAXPROCS,
	// clamped to Shards). Like the fleet's worker pool, parallelism is a
	// bound, not a structure: any worker may run any shard.
	Workers int
	// Profiles is the machine/path mix every seed runs under (default
	// DefaultProfiles).
	Profiles []Profile
	// Fuzz is the per-seed template: Instructions, Cycles, CheckpointEvery
	// are taken from it (zero values pick the fuzzdiff defaults); Seed,
	// Translated, FastIO, and Tamper are overwritten per work unit.
	Fuzz fuzzdiff.Config
	// Duration, when positive, time-boxes the campaign: seeds not started
	// by the deadline are skipped and the report is marked Interrupted.
	Duration time.Duration
	// CorpusDir, when set, receives one ready-to-paste regression test per
	// distinct minimized divergence (see corpus.go for the format).
	CorpusDir string
	// MinimizeAttempts bounds the program-shrinking ladder (default 8; 0
	// uses the default, negative disables minimization).
	MinimizeAttempts int
	// Tamper, when set, is installed on every work unit's fast path — the
	// fault-injection hook (fuzzdiff.Config.Tamper) the farm's self-test
	// uses to prove a seeded bug is detected, minimized, and reported end
	// to end.
	Tamper func(cycle uint64, fast *core.Machine)
	// Progress, when set, is called after every completed seed with the
	// number of seeds finished and the campaign total. Calls are
	// serialized.
	Progress func(done, total int64)
}

func (c Config) withDefaults() Config {
	if c.StartSeed == 0 {
		c.StartSeed = 1
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if int64(c.Shards) > c.Seeds {
		c.Shards = int(c.Seeds)
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers > c.Shards {
		c.Workers = c.Shards
	}
	if len(c.Profiles) == 0 {
		c.Profiles = DefaultProfiles()
	}
	if c.MinimizeAttempts == 0 {
		c.MinimizeAttempts = 8
	}
	return c
}

// Finding is one minimized divergence in the campaign report.
type Finding struct {
	// Profile is the machine/path configuration that diverged.
	Profile string `json:"profile"`
	// Seed is the generating seed.
	Seed int64 `json:"seed"`
	// Cycle, Task, PC, and Word pin the first diverging microinstruction
	// (of the original, un-minimized run).
	Cycle uint64 `json:"cycle"`
	Task  int    `json:"task"`
	PC    uint16 `json:"pc"`
	// Word is the offending microword, formatted; Raw is its 34-bit
	// encoding.
	Word string `json:"word"`
	Raw  uint64 `json:"raw"`
	// Detail locates the first differing snapshot byte.
	Detail string `json:"detail"`
	// Key is the content address — a hash of (PC, Raw, detail prefix) —
	// that findings dedupe on in the corpus.
	Key string `json:"key"`
	// MinInstructions and MinCycles are the minimized reproduction size
	// (equal to the originals when minimization could not shrink them).
	MinInstructions int    `json:"min_instructions"`
	MinCycles       uint64 `json:"min_cycles"`
	// Repro is the minimized ready-to-paste regression test.
	Repro string `json:"repro"`
	// CorpusFile is the corpus entry this finding was written to (or
	// deduped into); empty when the campaign ran without a corpus dir.
	CorpusFile string `json:"corpus_file,omitempty"`
}

// ShardStats is one shard's accounting. Elapsed fields are wall-clock and
// excluded from the determinism contract.
type ShardStats struct {
	Shard     int   `json:"shard"`
	FirstSeed int64 `json:"first_seed"`
	// SeedsTotal is the shard's range size; SeedsRun how many actually ran
	// (fewer when the campaign was interrupted).
	SeedsTotal  int64  `json:"seeds_total"`
	SeedsRun    int64  `json:"seeds_run"`
	Cycles      uint64 `json:"cycles"`
	Divergences int    `json:"divergences"`
	// ElapsedMS is wall-clock shard time (timing; zero it when comparing
	// reports).
	ElapsedMS int64 `json:"elapsed_ms"`
}

// Report is the campaign result. For a completed campaign every field
// except the timing ones (ElapsedMS, CyclesPerSec, ShardStats[].ElapsedMS)
// and Workers is a pure function of (StartSeed, Seeds, Shards, Profiles,
// Fuzz, Tamper) — any worker count produces the same report.
type Report struct {
	StartSeed int64     `json:"start_seed"`
	Seeds     int64     `json:"seeds"`
	Shards    int       `json:"shards"`
	Workers   int       `json:"workers"`
	Profiles  []Profile `json:"profiles"`

	// SeedsRun counts completed seeds (× all profiles each); Cycles sums
	// simulated cycles across every work unit's scan.
	SeedsRun    int64  `json:"seeds_run"`
	Cycles      uint64 `json:"cycles"`
	Divergences int    `json:"divergences"`
	// Findings holds the minimized divergences, sorted by (profile, seed).
	Findings []Finding `json:"findings,omitempty"`
	// Errors holds harness errors (unassemblable seeds, snapshot restore
	// failures), sorted; they fail a CI campaign like divergences do.
	Errors []string `json:"errors,omitempty"`
	// ShardStats is the per-shard breakdown (its shape depends on the
	// shard count; strip it too when comparing reports across counts).
	ShardStats []ShardStats `json:"shard_stats"`
	// Interrupted reports that the context was canceled (or Duration
	// expired) before every seed ran; the report covers the completed part.
	Interrupted bool `json:"interrupted"`

	// ElapsedMS and CyclesPerSec are wall-clock (timing fields).
	ElapsedMS    int64   `json:"elapsed_ms"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
}

// StripTiming zeroes every wall-clock-dependent field, leaving exactly the
// deterministic part of the report — what the shard-determinism tests (and
// any byte-level report diffing) compare.
func (r *Report) StripTiming() {
	r.ElapsedMS = 0
	r.CyclesPerSec = 0
	r.Workers = 0
	for i := range r.ShardStats {
		r.ShardStats[i].ElapsedMS = 0
	}
}

// shardRange returns shard i's seed range [first, first+count) for a
// campaign of total seeds starting at start: contiguous ranges, remainder
// spread one seed at a time over the leading shards.
func shardRange(start, total int64, shards, i int) (first, count int64) {
	per, rem := total/int64(shards), total%int64(shards)
	first = start + int64(i)*per + min64(int64(i), rem)
	count = per
	if int64(i) < rem {
		count++
	}
	return first, count
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Run executes the campaign: shards fan out across the worker pool, every
// seed runs every profile, divergences are minimized, and (when CorpusDir
// is set) distinct findings become corpus entries. Cancel ctx — or set
// Config.Duration — for a graceful stop: in-flight seeds finish, the rest
// are skipped, and the partial report comes back with Interrupted set.
// The error is non-nil only for campaign-level failures (an unusable
// corpus directory); per-seed harness errors are collected in
// Report.Errors instead.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Seeds <= 0 {
		return nil, fmt.Errorf("fuzzfarm: Config.Seeds must be positive")
	}
	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	start := time.Now()
	shards := make([]*shardResult, cfg.Shards)
	work := make(chan int)
	var done int64
	var progressMu sync.Mutex
	noteSeed := func() {
		if cfg.Progress == nil {
			return
		}
		progressMu.Lock()
		done++
		cfg.Progress(done, cfg.Seeds)
		progressMu.Unlock()
	}

	var wg sync.WaitGroup
	wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go func() {
			defer wg.Done()
			for i := range work {
				shards[i] = runShard(ctx, cfg, i, noteSeed)
			}
		}()
	}
	for i := 0; i < cfg.Shards; i++ {
		work <- i
	}
	close(work)
	wg.Wait()

	rep := &Report{
		StartSeed: cfg.StartSeed,
		Seeds:     cfg.Seeds,
		Shards:    cfg.Shards,
		Workers:   cfg.Workers,
		Profiles:  cfg.Profiles,
	}
	for _, sh := range shards {
		rep.SeedsRun += sh.stats.SeedsRun
		rep.Cycles += sh.stats.Cycles
		rep.Findings = append(rep.Findings, sh.findings...)
		rep.Errors = append(rep.Errors, sh.errors...)
		rep.ShardStats = append(rep.ShardStats, sh.stats)
		if sh.stats.SeedsRun < sh.stats.SeedsTotal {
			rep.Interrupted = true
		}
	}
	sort.Slice(rep.Findings, func(i, j int) bool {
		a, b := rep.Findings[i], rep.Findings[j]
		if a.Profile != b.Profile {
			return a.Profile < b.Profile
		}
		return a.Seed < b.Seed
	})
	sort.Strings(rep.Errors)
	rep.Divergences = len(rep.Findings)

	var corpusErr error
	if cfg.CorpusDir != "" {
		corpusErr = writeCorpus(cfg.CorpusDir, rep.Findings)
	} else {
		// Content addresses are still assigned (reports dedupe by Key even
		// without a corpus on disk).
		for i := range rep.Findings {
			rep.Findings[i].Key = findingKey(&rep.Findings[i])
		}
	}

	elapsed := time.Since(start)
	rep.ElapsedMS = elapsed.Milliseconds()
	if s := elapsed.Seconds(); s > 0 {
		rep.CyclesPerSec = float64(rep.Cycles) / s
	}
	return rep, corpusErr
}

// shardResult is one shard's raw output before aggregation.
type shardResult struct {
	stats    ShardStats
	findings []Finding
	errors   []string
}

// runShard runs one contiguous seed range × every profile. It checks the
// context between work units only — a started unit always finishes, so a
// cancellation never truncates a divergence mid-bisection.
func runShard(ctx context.Context, cfg Config, shard int, noteSeed func()) *shardResult {
	first, count := shardRange(cfg.StartSeed, cfg.Seeds, cfg.Shards, shard)
	res := &shardResult{stats: ShardStats{Shard: shard, FirstSeed: first, SeedsTotal: count}}
	begin := time.Now()
	defer func() { res.stats.ElapsedMS = time.Since(begin).Milliseconds() }()

	for seed := first; seed < first+count; seed++ {
		if ctx.Err() != nil {
			return res
		}
		for _, p := range cfg.Profiles {
			fcfg := cfg.Fuzz
			fcfg.Seed = seed
			fcfg.Translated = p.Translated
			fcfg.FastIO = p.FastIO
			fcfg.Tamper = cfg.Tamper
			r, err := fuzzdiff.RunResult(fcfg)
			res.stats.Cycles += r.Cycles
			if err != nil {
				res.errors = append(res.errors, fmt.Sprintf("profile %s seed %d: %v", p.Name, seed, err))
				continue
			}
			if r.Divergence == nil {
				continue
			}
			res.stats.Divergences++
			mcfg, md := minimize(fcfg, r.Divergence, cfg.MinimizeAttempts)
			res.findings = append(res.findings, Finding{
				Profile:         p.Name,
				Seed:            seed,
				Cycle:           r.Divergence.Cycle,
				Task:            r.Divergence.Task,
				PC:              uint16(r.Divergence.PC),
				Word:            fmt.Sprintf("%+v", r.Divergence.Word),
				Raw:             r.Divergence.Word.Encode(),
				Detail:          r.Divergence.Detail,
				MinInstructions: mcfg.Instructions,
				MinCycles:       mcfg.Cycles,
				Repro:           md.Repro,
			})
		}
		res.stats.SeedsRun++
		noteSeed()
	}
	return res
}
