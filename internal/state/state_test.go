package state

import (
	"bytes"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.Section("AAAA")
	e.U8(0x12)
	e.U16(0x3456)
	e.U32(0x789ABCDE)
	e.U64(0x1122334455667788)
	e.I8(-3)
	e.Bool(true)
	e.Bool(false)
	e.Section("BBBB")
	e.U16s([]uint16{1, 2, 3})
	e.Bytes32([]byte("hello"))
	e.String("world")
	doc := e.Bytes()

	d, err := NewDecoder(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Section("AAAA"); err != nil {
		t.Fatal(err)
	}
	if v := d.U8(); v != 0x12 {
		t.Errorf("U8 = %#x", v)
	}
	if v := d.U16(); v != 0x3456 {
		t.Errorf("U16 = %#x", v)
	}
	if v := d.U32(); v != 0x789ABCDE {
		t.Errorf("U32 = %#x", v)
	}
	if v := d.U64(); v != 0x1122334455667788 {
		t.Errorf("U64 = %#x", v)
	}
	if v := d.I8(); v != -3 {
		t.Errorf("I8 = %d", v)
	}
	if !d.Bool() || d.Bool() {
		t.Errorf("Bool round trip failed")
	}
	if err := d.Section("BBBB"); err != nil {
		t.Fatal(err)
	}
	var three [3]uint16
	d.U16s(three[:])
	if three != [3]uint16{1, 2, 3} {
		t.Errorf("U16s = %v", three)
	}
	if got := d.Bytes32(); !bytes.Equal(got, []byte("hello")) {
		t.Errorf("Bytes32 = %q", got)
	}
	if got := d.String(); got != "world" {
		t.Errorf("String = %q", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicEncoding(t *testing.T) {
	build := func() []byte {
		e := NewEncoder()
		e.Section("TTTT")
		e.U64(42)
		return e.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("identical encodes differ")
	}
}

func TestStrictness(t *testing.T) {
	e := NewEncoder()
	e.Section("AAAA")
	e.U32(7)
	e.Section("ZZZZ")
	e.U8(1)
	doc := e.Bytes()

	// Missing section.
	d, _ := NewDecoder(doc)
	if err := d.Section("NOPE"); err == nil {
		t.Error("opening a missing section succeeded")
	}

	// Partially consumed section.
	d, _ = NewDecoder(doc)
	if err := d.Section("AAAA"); err != nil {
		t.Fatal(err)
	}
	d.U8()
	if err := d.Section("ZZZZ"); err == nil {
		t.Error("opening the next section with unread bytes succeeded")
	}

	// Unopened section caught by Finish.
	d, _ = NewDecoder(doc)
	if err := d.Section("AAAA"); err != nil {
		t.Fatal(err)
	}
	d.U32()
	if err := d.Finish(); err == nil {
		t.Error("Finish accepted a document with an unopened section")
	}

	// Over-read inside a section.
	d, _ = NewDecoder(doc)
	if err := d.Section("AAAA"); err != nil {
		t.Fatal(err)
	}
	d.U64()
	if d.Err() == nil {
		t.Error("short read not detected")
	}
}

func TestHeaderValidation(t *testing.T) {
	if _, err := NewDecoder([]byte("junk")); err == nil {
		t.Error("bad magic accepted")
	}
	doc := NewEncoder().Bytes()
	doc[4] = 0xFF // corrupt version
	doc[5] = 0xFF
	if _, err := NewDecoder(doc); err == nil {
		t.Error("future version accepted")
	}
	// Truncated section framing.
	e := NewEncoder()
	e.Section("AAAA")
	e.U64(1)
	doc = e.Bytes()
	if _, err := NewDecoder(doc[:len(doc)-2]); err == nil {
		t.Error("truncated section accepted")
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.Section("AAAA")
	e.U32(0xDEADBEEF)
	e.Section("BBBB")
	e.String("payload")
	e.Section("CCCC") // empty section: framing only
	doc := e.Bytes()

	d, err := Split(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Header) != 6 || string(d.Header[:4]) != "DSNP" {
		t.Fatalf("header = % x", d.Header)
	}
	if len(d.Sections) != 3 || d.Sections[0].Tag != "AAAA" || d.Sections[2].Tag != "CCCC" {
		t.Fatalf("sections = %+v", d.Sections)
	}
	if len(d.Sections[2].Body) != 0 {
		t.Fatalf("empty section body = % x", d.Sections[2].Body)
	}
	// The invariant the store's dedupe rests on: byte-exact reassembly.
	if !bytes.Equal(d.Join(), doc) {
		t.Fatal("Join(Split(doc)) != doc")
	}

	// Split is version-agnostic (storage must outlive format bumps) …
	future := append([]byte(nil), doc...)
	future[4], future[5] = 0xFF, 0xFF
	fd, err := Split(future)
	if err != nil {
		t.Fatalf("Split rejected a future version: %v", err)
	}
	if !bytes.Equal(fd.Join(), future) {
		t.Fatal("future-version round trip drifted")
	}
	// … but still rejects broken framing.
	if _, err := Split([]byte("junk")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Split(doc[:len(doc)-2]); err == nil {
		t.Error("truncated section accepted")
	}
}
