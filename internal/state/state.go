// Package state implements the versioned binary snapshot format shared by
// every machine component (processor, memory system, IFU, devices).
//
// A snapshot document is:
//
//	magic    "DSNP" (4 bytes)
//	version  uint16 little-endian (the format generation, not negotiable:
//	         a decoder accepts exactly the version it was built for)
//	sections, each:
//	    tag     4 ASCII bytes (component-chosen, unique per document)
//	    length  uint32 little-endian (body bytes)
//	    body    primitive values, little-endian, in a fixed order the
//	            owning component defines
//
// The format is deliberately rigid: no optional fields, no per-field tags,
// no skipping. Determinism is the point — Snapshot→Restore→Snapshot must be
// byte-identical, so every writer emits values in one canonical order (maps
// are sorted before encoding) and every reader consumes exactly what was
// written. Any structural change to any section bumps Version, which makes
// old snapshots (and old golden hashes) invalid rather than silently
// misread.
//
// Decoding is strict three ways: a section must exist when opened, must be
// fully consumed before the next section is opened, and Finish fails if any
// section in the document was never opened. A machine restored from a
// snapshot therefore has exactly the component set the snapshot was taken
// from (e.g. the same devices attached), or the restore fails loudly.
package state

import (
	"encoding/binary"
	"fmt"
)

// magic identifies a snapshot document ("Dorado SNaPshot").
const magic = "DSNP"

// Version is the current format generation. Bump it on ANY change to any
// section's layout; see DESIGN.md "Machine snapshots" for the rules.
const Version = 1

// Encoder builds a snapshot document. Create with NewEncoder, open a
// section with Section, append primitives, and call Bytes to finish.
type Encoder struct {
	data []byte
	sect int // offset of the open section's length field, or -1
}

// NewEncoder starts a document with the magic and version header.
func NewEncoder() *Encoder {
	e := &Encoder{sect: -1}
	e.data = append(e.data, magic...)
	e.data = binary.LittleEndian.AppendUint16(e.data, Version)
	return e
}

// Section closes any open section and starts a new one. Tags are exactly
// four bytes; a malformed tag is a programming error.
func (e *Encoder) Section(tag string) {
	if len(tag) != 4 {
		panic(fmt.Sprintf("state: section tag %q is not 4 bytes", tag))
	}
	e.closeSection()
	e.data = append(e.data, tag...)
	e.sect = len(e.data)
	e.data = append(e.data, 0, 0, 0, 0) // length, patched by closeSection
}

func (e *Encoder) closeSection() {
	if e.sect < 0 {
		return
	}
	binary.LittleEndian.PutUint32(e.data[e.sect:], uint32(len(e.data)-e.sect-4))
	e.sect = -1
}

// Bytes closes the open section and returns the finished document.
func (e *Encoder) Bytes() []byte {
	e.closeSection()
	return e.data
}

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.data = append(e.data, v) }

// U16 appends a 16-bit value.
func (e *Encoder) U16(v uint16) { e.data = binary.LittleEndian.AppendUint16(e.data, v) }

// U32 appends a 32-bit value.
func (e *Encoder) U32(v uint32) { e.data = binary.LittleEndian.AppendUint32(e.data, v) }

// U64 appends a 64-bit value.
func (e *Encoder) U64(v uint64) { e.data = binary.LittleEndian.AppendUint64(e.data, v) }

// I8 appends a signed byte.
func (e *Encoder) I8(v int8) { e.data = append(e.data, uint8(v)) }

// Bool appends a boolean as one byte (0 or 1).
func (e *Encoder) Bool(v bool) {
	if v {
		e.data = append(e.data, 1)
	} else {
		e.data = append(e.data, 0)
	}
}

// U16s appends a run of 16-bit values with no count prefix (fixed-size
// arrays whose length both sides know).
func (e *Encoder) U16s(vs []uint16) {
	for _, v := range vs {
		e.U16(v)
	}
}

// Bytes32 appends a uint32 length prefix followed by raw bytes.
func (e *Encoder) Bytes32(b []byte) {
	e.U32(uint32(len(b)))
	e.data = append(e.data, b...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) { e.Bytes32([]byte(s)) }

// Decoder reads a snapshot document written by Encoder. All read methods
// are sticky-error: after the first failure they return zero values, and
// Err (or Finish) reports what went wrong.
type Decoder struct {
	sections map[string][]byte
	order    []string
	opened   map[string]bool
	cur      []byte
	curTag   string
	err      error
}

// NewDecoder parses the document structure (header and section framing).
func NewDecoder(data []byte) (*Decoder, error) {
	if len(data) < len(magic)+2 || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("state: not a snapshot (bad magic)")
	}
	v := binary.LittleEndian.Uint16(data[len(magic):])
	if v != Version {
		return nil, fmt.Errorf("state: snapshot format version %d, this build reads version %d", v, Version)
	}
	d := &Decoder{sections: map[string][]byte{}, opened: map[string]bool{}}
	rest := data[len(magic)+2:]
	for len(rest) > 0 {
		if len(rest) < 8 {
			return nil, fmt.Errorf("state: truncated section header (%d bytes left)", len(rest))
		}
		tag := string(rest[:4])
		n := binary.LittleEndian.Uint32(rest[4:8])
		rest = rest[8:]
		if uint64(n) > uint64(len(rest)) {
			return nil, fmt.Errorf("state: section %q claims %d bytes, %d remain", tag, n, len(rest))
		}
		if _, dup := d.sections[tag]; dup {
			return nil, fmt.Errorf("state: duplicate section %q", tag)
		}
		d.sections[tag] = rest[:n]
		d.order = append(d.order, tag)
		rest = rest[n:]
	}
	return d, nil
}

// Section opens the named section for reading. The previously open section
// must have been fully consumed.
func (d *Decoder) Section(tag string) error {
	if d.err != nil {
		return d.err
	}
	if len(d.cur) != 0 {
		d.err = fmt.Errorf("state: section %q has %d unread bytes", d.curTag, len(d.cur))
		return d.err
	}
	body, ok := d.sections[tag]
	if !ok {
		d.err = fmt.Errorf("state: snapshot has no section %q", tag)
		return d.err
	}
	if d.opened[tag] {
		d.err = fmt.Errorf("state: section %q opened twice", tag)
		return d.err
	}
	d.opened[tag] = true
	d.cur, d.curTag = body, tag
	return nil
}

// Has reports whether the document contains the named section (for callers
// that branch on optional components, e.g. devices).
func (d *Decoder) Has(tag string) bool {
	_, ok := d.sections[tag]
	return ok
}

// Err returns the first decoding error.
func (d *Decoder) Err() error { return d.err }

// Finish verifies the document was consumed completely: no decode errors,
// the last section fully read, and every section opened.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if len(d.cur) != 0 {
		return fmt.Errorf("state: section %q has %d unread bytes", d.curTag, len(d.cur))
	}
	for _, tag := range d.order {
		if !d.opened[tag] {
			return fmt.Errorf("state: section %q was not consumed (component mismatch?)", tag)
		}
	}
	return nil
}

// RawSection is one framed section of a snapshot document, split out by
// Split: the four-byte tag and the body bytes exactly as written.
type RawSection struct {
	Tag  string
	Body []byte
}

// Doc is the structural view of a snapshot document: the header (magic
// plus version, verbatim) and the framed sections in document order.
// Split produces it and Join reverses it byte-exactly; the store's
// section-level dedupe rests on that round trip.
type Doc struct {
	// Header is the document prefix before the first section: the magic
	// and the little-endian format version, byte-exact.
	Header []byte
	// Sections are the framed sections in the order they were written.
	Sections []RawSection
}

// Split parses only the framing of a snapshot document — header, then
// (tag, length, body) triples — without interpreting any section body and
// without checking the format version. Deduplicating storage must keep
// working across format generations, so Split accepts any version as long
// as the framing is intact; NewDecoder is where version strictness lives.
// Section bodies alias data (no copy).
func Split(data []byte) (Doc, error) {
	hdr := len(magic) + 2
	if len(data) < hdr || string(data[:len(magic)]) != magic {
		return Doc{}, fmt.Errorf("state: not a snapshot (bad magic)")
	}
	d := Doc{Header: data[:hdr]}
	rest := data[hdr:]
	for len(rest) > 0 {
		if len(rest) < 8 {
			return Doc{}, fmt.Errorf("state: truncated section header (%d bytes left)", len(rest))
		}
		tag := string(rest[:4])
		n := binary.LittleEndian.Uint32(rest[4:8])
		rest = rest[8:]
		if uint64(n) > uint64(len(rest)) {
			return Doc{}, fmt.Errorf("state: section %q claims %d bytes, %d remain", tag, n, len(rest))
		}
		d.Sections = append(d.Sections, RawSection{Tag: tag, Body: rest[:n]})
		rest = rest[n:]
	}
	return d, nil
}

// Join reassembles the document Split took apart. For any data Split
// accepts, Join(Split(data)) == data, byte for byte — the reassembly
// invariant the content-addressed store verifies by rehashing.
func (d Doc) Join() []byte {
	n := len(d.Header)
	for _, s := range d.Sections {
		n += 8 + len(s.Body)
	}
	out := make([]byte, 0, n)
	out = append(out, d.Header...)
	for _, s := range d.Sections {
		out = append(out, s.Tag...)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(s.Body)))
		out = append(out, s.Body...)
	}
	return out
}

// take returns the next n bytes of the open section.
func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.cur) < n {
		d.err = fmt.Errorf("state: section %q: short read (%d bytes wanted, %d left)", d.curTag, n, len(d.cur))
		return nil
	}
	b := d.cur[:n]
	d.cur = d.cur[n:]
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a 16-bit value.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a 32-bit value.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a 64-bit value.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I8 reads a signed byte.
func (d *Decoder) I8() int8 { return int8(d.U8()) }

// Bool reads a boolean; any byte other than 0 or 1 is a decode error.
func (d *Decoder) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		if d.err == nil {
			d.err = fmt.Errorf("state: section %q: bad boolean", d.curTag)
		}
		return false
	}
}

// U16s fills a fixed-size destination with 16-bit values.
func (d *Decoder) U16s(dst []uint16) {
	for i := range dst {
		dst[i] = d.U16()
	}
}

// Bytes32 reads a uint32-length-prefixed byte string.
func (d *Decoder) Bytes32() []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Bytes32()) }
