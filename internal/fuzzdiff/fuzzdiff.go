// Package fuzzdiff is the snapshot-anchored differential fuzzer: it
// generates random-but-valid microprograms, runs them on both a fast
// interpreter path (predecoded, or superblock-translated with
// Config.Translated) and the Config.Reference interpreter in lockstep,
// and uses machine snapshots (internal/state) two ways:
//
//   - as the equality oracle: two machines in identical architectural
//     states produce byte-identical snapshots (Config.Reference is not part
//     of the snapshot), so one bytes.Equal per checkpoint replaces a
//     field-by-field comparison of the entire machine;
//   - as bisection anchors: a checkpoint is taken every K cycles, and when
//     a divergence appears the harness restores both paths from the last
//     agreeing checkpoint and single-steps to the exact cycle — and thus
//     the exact microinstruction — where the paths first disagree.
//
// The result is a Divergence carrying a ready-to-paste regression test, so
// an overnight fuzz finding becomes a one-line repro in the test suite.
package fuzzdiff

import (
	"bytes"
	"fmt"
	"math/rand"

	"dorado/internal/core"
	"dorado/internal/device"
	"dorado/internal/masm"
	"dorado/internal/memory"
	"dorado/internal/microcode"
)

// Config parameterizes one fuzz run. Every field is deterministic: the same
// Config always generates the same program and the same cycle-for-cycle
// execution, which is what makes a printed repro reproducible.
type Config struct {
	// Seed selects the generated microprogram and initial machine state.
	Seed int64
	// Instructions is the number of random task-0 instructions (default 24).
	Instructions int
	// Cycles is the total simulated length of the run (default 20000).
	Cycles uint64
	// CheckpointEvery is K, the snapshot interval in cycles (default 512).
	// Smaller K means cheaper bisection and more expensive scanning.
	CheckpointEvery uint64
	// Translated runs the fast side with superblock translation enabled
	// (hot threshold 4, so fuzz-sized programs get hot almost immediately):
	// the differential then checks translated-vs-reference instead of
	// predecoded-vs-reference, hunting translator bugs with the same
	// oracle. Bisection advances the fast side with RunCycles(1) rather
	// than Step so single-cycle execution still flows through the
	// translated dispatch loop.
	Translated bool
	// FastIO attaches the fast-I/O pair — a Display consuming 16-word
	// blocks from storage and a Scanner producing them — to both machines,
	// widening the differential to the §7 device-driven configurations:
	// direct storage transfers, cache invalidations, and the extra wakeup
	// traffic they cause. Both sides get identical devices, so the oracle
	// is unchanged.
	FastIO bool

	// Tamper, when set, mutates the fast-path machine before the given
	// cycle executes — a fault injector proving a harness detects and
	// localizes divergence. The fuzz-farm self-test seeds a bug through it
	// to verify the farm finds, minimizes, and reports the divergence end
	// to end; it costs single-stepped (unbatched) execution, so leave it
	// nil outside fault-injection tests.
	Tamper func(cycle uint64, fast *core.Machine)
}

// Normalized returns the Config with the documented defaults filled in —
// what Run actually executes. Campaign tooling (internal/fuzzfarm) uses it
// so minimized sizes and report echoes show real values, not zeros.
func (c Config) Normalized() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.Instructions <= 0 {
		c.Instructions = 24
	}
	if c.Cycles == 0 {
		c.Cycles = 20000
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 512
	}
	return c
}

// Divergence describes the first cycle at which the two interpreter paths
// disagreed, pinned to the single microinstruction that exposed it.
type Divergence struct {
	Seed  int64
	Cycle uint64         // cycle whose execution diverged
	Task  int            // task running that cycle (on the fast path)
	PC    microcode.Addr // microstore address executed
	Word  microcode.Word // the offending microinstruction
	// Detail locates the first differing byte between the two post-step
	// snapshots (section-relative context for debugging).
	Detail string
	// Repro is a ready-to-paste Go test reproducing the divergence.
	Repro string
}

// String summarizes the divergence point in one line.
func (d *Divergence) String() string {
	return fmt.Sprintf("seed %d: interpreters diverge at cycle %d (task %d, pc %v, word %+v): %s",
		d.Seed, d.Cycle, d.Task, d.PC, d.Word, d.Detail)
}

// Result is the campaign-friendly outcome of one fuzz iteration: the seed,
// how much work it represents, and the bisected divergence if the paths
// disagreed. internal/fuzzfarm aggregates Results across sharded seed
// ranges into its campaign report.
type Result struct {
	// Seed is Config.Seed, echoed so aggregators need not carry the Config.
	Seed int64
	// Cycles is the number of cycles actually simulated — Config.Cycles
	// unless the machine halted early or a divergence cut the scan short.
	Cycles uint64
	// Halted reports that the program executed a Halt before the cycle
	// budget ran out (on both paths, identically).
	Halted bool
	// Divergence is the bisected first disagreement, nil when the paths
	// agreed for the whole run.
	Divergence *Divergence
}

// Run executes one deterministic fuzz iteration and returns the bisected
// divergence, or nil if the predecoded and reference interpreters agreed
// for the whole run.
func Run(cfg Config) (*Divergence, error) {
	res, err := RunResult(cfg)
	return res.Divergence, err
}

// RunResult is Run with the full per-iteration accounting (cycles
// simulated, early halt) a fuzz campaign aggregates.
func RunResult(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{Seed: cfg.Seed}
	prog, err := generate(cfg.Seed, cfg.Instructions)
	if err != nil {
		return res, err
	}
	fast, err := buildMachine(prog, cfg, false)
	if err != nil {
		return res, err
	}
	ref, err := buildMachine(prog, cfg, true)
	if err != nil {
		return res, err
	}

	lastGood := fast.Snapshot()
	if !bytes.Equal(lastGood, ref.Snapshot()) {
		return res, fmt.Errorf("fuzzdiff: machines differ before cycle 0 (builder bug)")
	}

	for fast.Cycle() < cfg.Cycles {
		k := cfg.CheckpointEvery
		if left := cfg.Cycles - fast.Cycle(); left < k {
			k = left
		}
		stepBoth(cfg, fast, ref, k)
		res.Cycles = fast.Cycle()
		fsnap := fast.Snapshot()
		if !bytes.Equal(fsnap, ref.Snapshot()) {
			res.Divergence, err = bisect(cfg, prog, lastGood)
			return res, err
		}
		lastGood = fsnap
		if fast.Halted() {
			res.Halted = true
			break // both halted identically (snapshots matched)
		}
	}
	return res, nil
}

// stepBoth advances both machines k cycles in lockstep, applying the test
// fault injector on the fast path if one is installed.
func stepBoth(cfg Config, fast, ref *core.Machine, k uint64) {
	if cfg.Tamper == nil {
		fast.RunCycles(k)
		ref.RunCycles(k)
		return
	}
	for i := uint64(0); i < k && !fast.Halted(); i++ {
		cfg.Tamper(fast.Cycle(), fast)
		stepFast(cfg, fast)
		ref.Step()
	}
}

// stepFast advances the fast side one cycle. In Translated mode it uses
// RunCycles(1) so the cycle executes through the translated dispatch loop
// (profile, enter, fuse) instead of the plain interpreter Step — otherwise
// bisection would silently fall back to the very path it is not testing.
func stepFast(cfg Config, fast *core.Machine) {
	if cfg.Translated {
		fast.RunCycles(1)
	} else {
		fast.Step()
	}
}

// bisect restores both interpreter paths from the last agreeing checkpoint
// and single-steps them to the first cycle whose post-state differs.
func bisect(cfg Config, prog *masm.Program, lastGood []byte) (*Divergence, error) {
	fast, err := buildMachine(prog, cfg, false)
	if err != nil {
		return nil, err
	}
	ref, err := buildMachine(prog, cfg, true)
	if err != nil {
		return nil, err
	}
	if err := fast.Restore(lastGood); err != nil {
		return nil, fmt.Errorf("fuzzdiff: restore checkpoint onto fast path: %w", err)
	}
	if err := ref.Restore(lastGood); err != nil {
		return nil, fmt.Errorf("fuzzdiff: restore checkpoint onto reference path: %w", err)
	}
	for i := uint64(0); i <= cfg.CheckpointEvery; i++ {
		cycle := fast.Cycle()
		task, pc := fast.CurTask(), fast.CurPC()
		word := fast.IM(pc)
		if cfg.Tamper != nil {
			cfg.Tamper(cycle, fast)
		}
		stepFast(cfg, fast)
		ref.Step()
		fsnap, rsnap := fast.Snapshot(), ref.Snapshot()
		if !bytes.Equal(fsnap, rsnap) {
			d := &Divergence{
				Seed:   cfg.Seed,
				Cycle:  cycle,
				Task:   task,
				PC:     pc,
				Word:   word,
				Detail: firstDiff(fsnap, rsnap),
			}
			d.Repro = repro(cfg, d)
			return d, nil
		}
		if fast.Halted() {
			break
		}
	}
	return nil, fmt.Errorf("fuzzdiff: checkpoint disagreed but single-stepping from it did not diverge within %d cycles", cfg.CheckpointEvery)
}

// firstDiff describes the first byte at which two snapshots differ.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("snapshots differ first at byte %d: fast %#02x, reference %#02x", i, a[i], b[i])
		}
	}
	return fmt.Sprintf("snapshot lengths differ: fast %d bytes, reference %d", len(a), len(b))
}

// repro renders a ready-to-paste regression test: minimal cycle budget (one
// checkpoint past the diverging cycle), the same seed and program size.
func repro(cfg Config, d *Divergence) string {
	fastPath := "predecoded"
	if cfg.Translated {
		fastPath = "translated"
	}
	if cfg.FastIO {
		fastPath += "+fastio"
	}
	return fmt.Sprintf(`// Regression: %s and reference interpreters diverged.
//   seed=%d cycle=%d task=%d pc=%v
//   word=%+v (raw %#011x)
func TestFuzzDiffSeed%d(t *testing.T) {
	d, err := fuzzdiff.Run(fuzzdiff.Config{
		Seed:            %d,
		Instructions:    %d,
		Cycles:          %d,
		CheckpointEvery: %d,
		Translated:      %t,
		FastIO:          %t,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d != nil {
		t.Fatalf("interpreter divergence: %%v", d)
	}
}
`, fastPath, d.Seed, d.Cycle, d.Task, d.PC, d.Word, d.Word.Encode(),
		d.Seed, d.Seed, cfg.Instructions, d.Cycle+1, cfg.CheckpointEvery, cfg.Translated, cfg.FastIO)
}

// fuzzMemConfig keeps storage small so per-checkpoint snapshots stay cheap
// (a snapshot embeds all of storage).
var fuzzMemConfig = memory.Config{
	CacheWords:   256,
	CacheWays:    2,
	StorageWords: 4096,
}

// buildMachine assembles one side of the differential pair: identical
// construction except for the interpreter path (Reference on the oracle
// side; predecoded or, in Translated mode, superblock-translated on the
// fast side), exactly like the fixed differential workloads in
// internal/bench.
func buildMachine(prog *masm.Program, cfg Config, reference bool) (*core.Machine, error) {
	mcfg := core.Config{Memory: fuzzMemConfig, Reference: reference}
	if cfg.Translated && !reference {
		mcfg.Translation = core.Translation{Enable: true, HotThreshold: 4}
	}
	m, err := core.New(mcfg)
	if err != nil {
		return nil, err
	}
	m.Load(&prog.Words)

	// Seed architectural state from the same stream both sides share.
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
	for i := 0; i < 64; i++ {
		m.SetRM(i, uint16(rng.Uint32()))
	}
	for t := 0; t < core.NumTasks; t++ {
		m.SetT(t, uint16(rng.Uint32()))
	}
	m.SetCount(uint16(rng.Intn(40)))
	m.SetQ(uint16(rng.Uint32()))
	m.Mem().SetBase(2, 0x100)
	m.Mem().SetBase(3, 0x500)
	for va := uint32(0); va < 0x400; va++ {
		m.Mem().Poke(va, uint16(rng.Uint32()))
	}

	// Two live controllers so the scheduler, wakeup pipeline, and device
	// FIFOs are part of every run: a paced producer and an always-ready
	// loopback, each with the generated service routine.
	ws := device.NewWordSource(11, 27, 2)
	if err := m.Attach(ws); err != nil {
		return nil, err
	}
	m.SetIOAddress(11, 11)
	m.SetTPC(11, prog.MustEntry("svc"))
	lb := device.NewLoopback(9)
	lb.Arm(true)
	if err := m.Attach(lb); err != nil {
		return nil, err
	}
	m.SetIOAddress(9, 9)
	m.SetTPC(9, prog.MustEntry("svc"))

	if cfg.FastIO {
		// The §7 fast-I/O pair on the generated "fio" routine: a display
		// draining blocks from storage and a scanner writing them back.
		// Block offsets accumulate in RM[2] and wrap within the small fuzz
		// storage (memory.translate reduces out-of-range addresses mod the
		// store), so the traffic is endless but deterministic.
		disp := device.NewDisplay(13, m.Mem(), 24, 4)
		disp.SetBase(0x800)
		if err := m.Attach(disp); err != nil {
			return nil, err
		}
		m.SetIOAddress(13, 13)
		m.SetTPC(13, prog.MustEntry("fio"))
		m.SetT(13, 16)
		sc := device.NewScanner(12, m.Mem(), 40, 4)
		sc.SetBase(0xC00)
		if err := m.Attach(sc); err != nil {
			return nil, err
		}
		m.SetIOAddress(12, 12)
		m.SetTPC(12, prog.MustEntry("fio"))
		m.SetT(12, 16)
	}

	m.Start(prog.MustEntry("main"))
	return m, nil
}
