package fuzzdiff

import (
	"fmt"
	"math/rand"

	"dorado/internal/masm"
	"dorado/internal/microcode"
)

// generate builds a random-but-valid microprogram: n random task-0
// instructions under label "main" (closed into an endless loop) plus the
// fixed "svc" device-service routine every attached task runs. Validity is
// delegated to the assembler: a draw the assembler rejects (inexpressible
// constant placement, branch targets that cannot share a page, FF field
// conflicts) is simply redrawn, so every returned program passes
// microcode.Word.Validate and anything it does is something real microcode
// could do.
func generate(seed int64, n int) (*masm.Program, error) {
	rng := rand.New(rand.NewSource(seed))
	const attempts = 100
	for a := 0; a < attempts; a++ {
		p, err := emit(rng, n).Assemble()
		if err == nil {
			return p, nil
		}
	}
	return nil, fmt.Errorf("fuzzdiff: seed %d: no assemblable program in %d attempts", seed, attempts)
}

// Flow kinds drawn for each generated instruction.
const (
	kSeq = iota
	kGoto
	kBranch
	kCall
	kReturn
)

func emit(rng *rand.Rand, n int) *masm.Builder {
	bl := masm.NewBuilder()
	labels := make([]string, n)
	for i := range labels {
		labels[i] = fmt.Sprintf("i%d", i)
	}
	labels[0] = "main"

	// Draw flow kinds first: branch placement is constrained (§5.5 — the
	// false target is the physically next word at an even address, the true
	// target an odd word in the same page), so consecutive branches are
	// unplaceable and are never drawn.
	kinds := make([]int, n)
	branches, calls := 0, 0
	for i := 0; i < n-1; i++ {
		switch rng.Intn(20) {
		case 0, 1, 2:
			kinds[i] = kGoto
		case 3, 4, 5:
			// Branch placement pins three words (branch, false target, true
			// target) into one page; cap the count so the pin chains the
			// assembler must solve stay well under the 16-word page size.
			if branches < 3 && (i == 0 || kinds[i-1] != kBranch) {
				kinds[i] = kBranch
				branches++
			}
		case 6:
			if calls < 2 {
				kinds[i] = kCall
				calls++
			}
		case 7:
			kinds[i] = kReturn
		}
	}
	// Assign each branch a unique true target that no other placement rule
	// already pins: not its own fall-through (identical targets), not the
	// fall-through of another branch (pinned even; true targets are odd),
	// and not shared with another branch (two branches cannot pin the same
	// word to two addresses).
	thenTargets := make([]string, n)
	taken := make([]bool, n)
	for i := 0; i < n-1; i++ {
		if kinds[i] != kBranch {
			continue
		}
		var cands []int
		for j := 0; j < n; j++ {
			// A true target is pinned to an odd word right after the branch's
			// fall-through; exclude labels some other rule already pins: the
			// fall-through of any branch (even word) or the continuation of a
			// call (physically after the call).
			if j == i+1 || taken[j] || (j > 0 && (kinds[j-1] == kBranch || kinds[j-1] == kCall)) {
				continue
			}
			cands = append(cands, j)
		}
		if len(cands) == 0 {
			kinds[i] = kSeq
			continue
		}
		j := cands[rng.Intn(len(cands))]
		taken[j] = true
		thenTargets[i] = labels[j]
	}

	target := func() string { return labels[rng.Intn(len(labels))] }
	for i := 0; i < n; i++ {
		inst := randInst(rng)
		switch {
		case i == n-1:
			inst.Flow = masm.Goto("main") // close the main loop
		case kinds[i] == kGoto:
			inst.Flow = masm.Goto(target())
		case kinds[i] == kBranch:
			inst.Flow = masm.Branch(conds[rng.Intn(len(conds))], "", thenTargets[i])
		case kinds[i] == kCall:
			inst.Flow = masm.Call(target())
		case kinds[i] == kReturn:
			inst.Flow = masm.Return()
		}
		bl.EmitAt(labels[i], inst)
	}
	// The service routine: drain one word, store it through RM[1], advance
	// the pointer, block. Identical to the §7 slow-I/O inner loop shape.
	bl.EmitAt("svc", masm.I{FF: microcode.FFInput, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	bl.Emit(masm.I{A: microcode.ASelStore, R: 1, B: microcode.BSelT,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM, Block: true, Flow: masm.Goto("svc")})
	// The fast-I/O service routine (Config.FastIO tasks): command the next
	// block at T+RM[2], advance the pointer, block — the two-instruction
	// display idiom of §7. Emitted unconditionally so a seed generates the
	// same program whether or not fast-I/O devices are attached.
	bl.EmitAt("fio", masm.I{A: microcode.ASelT, B: microcode.BSelRM, R: 2,
		ALU: microcode.ALUAplusB, LC: microcode.LCLoadRM, FF: microcode.FFOutput})
	bl.Emit(masm.I{Block: true, Flow: masm.Goto("fio")})
	return bl
}

// Weighted draw tables. FFHalt is excluded (it would end runs early, not
// because it is unsafe) and so is FFWriteTPC (it rewrites service-task PCs,
// collapsing most runs into idle loops); everything else reachable from the
// FF catalog is fair game, including IFU restarts and stack traffic.
var (
	aSels = []microcode.ASelect{
		microcode.ASelRM, microcode.ASelRM, microcode.ASelRM,
		microcode.ASelT, microcode.ASelT, microcode.ASelT,
		microcode.ASelMD,
		microcode.ASelFetch,
		microcode.ASelStore,
	}
	bSels = []microcode.BSelect{
		microcode.BSelRM, microcode.BSelRM,
		microcode.BSelT, microcode.BSelT,
		microcode.BSelQ,
		microcode.BSelMD,
	}
	conds = []microcode.Condition{
		microcode.CondALUZero, microcode.CondALUNeg, microcode.CondCarry,
		microcode.CondCountNZ, microcode.CondCountNZ, // loops are common
		microcode.CondOverflow, microcode.CondStackError,
		microcode.CondIOAtten, microcode.CondMB,
	}
)

// randFF draws an FF operation (never a constant byte; constants go through
// HasConst).
func randFF(rng *rand.Rand) uint8 {
	switch rng.Intn(16) {
	case 0:
		return microcode.FFCountBase + uint8(rng.Intn(16))
	case 1:
		return microcode.FFMemBaseBase + uint8(rng.Intn(4))
	case 2:
		return microcode.FFRotBase + uint8(rng.Intn(32))
	case 3:
		return microcode.FFRMDestBase + uint8(rng.Intn(16))
	case 4:
		return []uint8{
			microcode.FFShiftNoMask, microcode.FFShiftMaskZ, microcode.FFShiftMaskMD,
			microcode.FFALULsh, microcode.FFALURsh,
			microcode.FFMulStep, microcode.FFDivStep,
		}[rng.Intn(7)]
	case 5:
		return []uint8{
			microcode.FFPutRBase, microcode.FFPutStackPtr, microcode.FFPutShiftCtl,
			microcode.FFPutCount, microcode.FFPutQ, microcode.FFPutALUFM,
			microcode.FFPutLink, microcode.FFPutBaseLo, microcode.FFPutBaseHi,
			microcode.FFPutMemBase,
		}[rng.Intn(10)]
	case 6:
		return []uint8{
			microcode.FFGetRBase, microcode.FFGetStackPtr, microcode.FFGetMemBase,
			microcode.FFGetShiftCtl, microcode.FFGetCount, microcode.FFGetQ,
			microcode.FFGetALUFM, microcode.FFGetLink,
		}[rng.Intn(8)]
	case 7:
		return []uint8{
			microcode.FFSetMB, microcode.FFClearMB, microcode.FFStackReset,
			microcode.FFProbeMD, microcode.FFFlushCache,
		}[rng.Intn(5)]
	case 8:
		if rng.Intn(4) == 0 {
			// Rare: restart the IFU (exercises its prefetcher and snapshot
			// sections) or wake a bare task.
			return []uint8{microcode.FFIFUReset, microcode.FFReadyB}[rng.Intn(2)]
		}
		return microcode.FFNop
	default:
		return microcode.FFNop
	}
}

// randConst draws one of the §5.9-expressible 16-bit constants (one byte
// free, the other all-zeros or all-ones).
func randConst(rng *rand.Rand) uint16 {
	b := uint16(rng.Intn(256))
	switch rng.Intn(4) {
	case 0:
		return b
	case 1:
		return 0xFF00 | b
	case 2:
		return b << 8
	default:
		return b<<8 | 0x00FF
	}
}

// randInst draws everything but the flow (the caller owns placement).
func randInst(rng *rand.Rand) masm.I {
	inst := masm.I{
		R:   uint8(rng.Intn(16)),
		ALU: microcode.ALUFn(rng.Intn(16)),
		A:   aSels[rng.Intn(len(aSels))],
		B:   bSels[rng.Intn(len(bSels))],
		LC:  microcode.LoadControl(rng.Intn(4)),
	}
	if rng.Intn(8) == 0 {
		inst.Block = true
	}
	if rng.Intn(4) == 0 {
		// The constant scheme owns both the B select and the FF byte.
		inst.B = 0
		inst.Const, inst.HasConst = randConst(rng), true
	} else {
		inst.FF = randFF(rng)
	}
	return inst
}
