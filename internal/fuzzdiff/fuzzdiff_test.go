package fuzzdiff

import (
	"strings"
	"testing"

	"dorado/internal/core"
)

// TestCleanSeeds runs a spread of seeds end to end: the two interpreter
// paths must agree at every checkpoint (each clean seed is a miniature
// differential test over a program nobody hand-wrote).
func TestCleanSeeds(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		d, err := Run(Config{Seed: seed, Cycles: 4000, CheckpointEvery: 256})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if d != nil {
			t.Errorf("seed %d: %v\n%s", seed, d, d.Repro)
		}
	}
}

// TestCleanSeedsTranslated is the same sweep with the fast side running
// the superblock translator: zero divergences means the translator agrees
// with the reference interpreter on programs nobody hand-wrote, including
// device wakeups, holds, and task switches the generator produces.
func TestCleanSeedsTranslated(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		d, err := Run(Config{Seed: seed, Cycles: 4000, CheckpointEvery: 256, Translated: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if d != nil {
			t.Errorf("seed %d: %v\n%s", seed, d, d.Repro)
		}
	}
}

// TestBisectLocalizesInjectedFaultTranslated proves bisection still works
// when the fast side is the translator (advanced via RunCycles(1)).
func TestBisectLocalizesInjectedFaultTranslated(t *testing.T) {
	const faultCycle = 1234
	cfg := Config{
		Seed:            3,
		Cycles:          4000,
		CheckpointEvery: 512,
		Translated:      true,
		Tamper: func(cycle uint64, fast *core.Machine) {
			if cycle == faultCycle {
				fast.SetRM(5, fast.RM(5)^0x8000)
			}
		},
	}
	d, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("injected fault was not detected")
	}
	if d.Cycle != faultCycle {
		t.Fatalf("bisected to cycle %d, fault was injected at %d", d.Cycle, faultCycle)
	}
	if !strings.Contains(d.Repro, "Translated:      true") {
		t.Errorf("repro does not carry the Translated flag:\n%s", d.Repro)
	}
}

// TestCleanSeedsFastIO widens the sweep to the device-driven configuration:
// a display and a scanner moving 16-word blocks through the fast-I/O path
// on both sides of the differential, on both fast paths.
func TestCleanSeedsFastIO(t *testing.T) {
	for _, translated := range []bool{false, true} {
		for seed := int64(1); seed <= 4; seed++ {
			d, err := Run(Config{Seed: seed, Cycles: 4000, CheckpointEvery: 256,
				FastIO: true, Translated: translated})
			if err != nil {
				t.Fatalf("seed %d translated=%t: %v", seed, translated, err)
			}
			if d != nil {
				t.Errorf("seed %d translated=%t: %v\n%s", seed, translated, d, d.Repro)
			}
		}
	}
}

// TestRunResultAccounting: RunResult must report the cycles actually
// simulated so campaign throughput numbers mean something.
func TestRunResultAccounting(t *testing.T) {
	res, err := RunResult(Config{Seed: 5, Cycles: 3000, CheckpointEvery: 256})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seed != 5 {
		t.Errorf("Seed = %d, want 5", res.Seed)
	}
	if res.Divergence == nil && !res.Halted && res.Cycles != 3000 {
		t.Errorf("Cycles = %d, want 3000 for a full clean run", res.Cycles)
	}
	if res.Cycles == 0 {
		t.Error("Cycles = 0: accounting missing")
	}
}

// TestGenerateDeterministic: the same seed must always produce the same
// program, or printed repros would be worthless.
func TestGenerateDeterministic(t *testing.T) {
	a, err := generate(7, 24)
	if err != nil {
		t.Fatal(err)
	}
	b, err := generate(7, 24)
	if err != nil {
		t.Fatal(err)
	}
	if a.Words != b.Words {
		t.Fatal("same seed generated different programs")
	}
}

// TestBisectLocalizesInjectedFault proves the snapshot-anchored machinery:
// a fault injected into the fast path at a known cycle must be detected at
// the next checkpoint and bisected back to exactly that cycle.
func TestBisectLocalizesInjectedFault(t *testing.T) {
	const faultCycle = 1234
	cfg := Config{
		Seed:            3,
		Cycles:          4000,
		CheckpointEvery: 512,
		Tamper: func(cycle uint64, fast *core.Machine) {
			if cycle == faultCycle {
				fast.SetRM(5, fast.RM(5)^0x8000)
			}
		},
	}
	d, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("injected fault was not detected")
	}
	if d.Cycle != faultCycle {
		t.Fatalf("bisected to cycle %d, fault was injected at %d", d.Cycle, faultCycle)
	}
	if !strings.Contains(d.Repro, "TestFuzzDiffSeed3") || !strings.Contains(d.Repro, "Seed:            3") {
		t.Errorf("repro test case malformed:\n%s", d.Repro)
	}
}
