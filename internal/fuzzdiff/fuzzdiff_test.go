package fuzzdiff

import (
	"strings"
	"testing"

	"dorado/internal/core"
)

// TestCleanSeeds runs a spread of seeds end to end: the two interpreter
// paths must agree at every checkpoint (each clean seed is a miniature
// differential test over a program nobody hand-wrote).
func TestCleanSeeds(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		d, err := Run(Config{Seed: seed, Cycles: 4000, CheckpointEvery: 256})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if d != nil {
			t.Errorf("seed %d: %v\n%s", seed, d, d.Repro)
		}
	}
}

// TestCleanSeedsTranslated is the same sweep with the fast side running
// the superblock translator: zero divergences means the translator agrees
// with the reference interpreter on programs nobody hand-wrote, including
// device wakeups, holds, and task switches the generator produces.
func TestCleanSeedsTranslated(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		d, err := Run(Config{Seed: seed, Cycles: 4000, CheckpointEvery: 256, Translated: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if d != nil {
			t.Errorf("seed %d: %v\n%s", seed, d, d.Repro)
		}
	}
}

// TestBisectLocalizesInjectedFaultTranslated proves bisection still works
// when the fast side is the translator (advanced via RunCycles(1)).
func TestBisectLocalizesInjectedFaultTranslated(t *testing.T) {
	const faultCycle = 1234
	cfg := Config{
		Seed:            3,
		Cycles:          4000,
		CheckpointEvery: 512,
		Translated:      true,
		tamper: func(cycle uint64, fast *core.Machine) {
			if cycle == faultCycle {
				fast.SetRM(5, fast.RM(5)^0x8000)
			}
		},
	}
	d, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("injected fault was not detected")
	}
	if d.Cycle != faultCycle {
		t.Fatalf("bisected to cycle %d, fault was injected at %d", d.Cycle, faultCycle)
	}
	if !strings.Contains(d.Repro, "Translated:      true") {
		t.Errorf("repro does not carry the Translated flag:\n%s", d.Repro)
	}
}

// TestGenerateDeterministic: the same seed must always produce the same
// program, or printed repros would be worthless.
func TestGenerateDeterministic(t *testing.T) {
	a, err := generate(7, 24)
	if err != nil {
		t.Fatal(err)
	}
	b, err := generate(7, 24)
	if err != nil {
		t.Fatal(err)
	}
	if a.Words != b.Words {
		t.Fatal("same seed generated different programs")
	}
}

// TestBisectLocalizesInjectedFault proves the snapshot-anchored machinery:
// a fault injected into the fast path at a known cycle must be detected at
// the next checkpoint and bisected back to exactly that cycle.
func TestBisectLocalizesInjectedFault(t *testing.T) {
	const faultCycle = 1234
	cfg := Config{
		Seed:            3,
		Cycles:          4000,
		CheckpointEvery: 512,
		tamper: func(cycle uint64, fast *core.Machine) {
			if cycle == faultCycle {
				fast.SetRM(5, fast.RM(5)^0x8000)
			}
		},
	}
	d, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("injected fault was not detected")
	}
	if d.Cycle != faultCycle {
		t.Fatalf("bisected to cycle %d, fault was injected at %d", d.Cycle, faultCycle)
	}
	if !strings.Contains(d.Repro, "TestFuzzDiffSeed3") || !strings.Contains(d.Repro, "Seed:            3") {
		t.Errorf("repro test case malformed:\n%s", d.Repro)
	}
}
