package microcode

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(raddr, aluop, bsel, lc, asel uint8, block bool, ff, next uint8) bool {
		w := Word{
			RAddr: raddr & 0xF,
			ALUOp: aluop & 0xF,
			BSel:  BSelect(bsel & 7),
			LC:    LoadControl(lc & 7),
			ASel:  ASelect(asel & 7),
			Block: block,
			FF:    ff,
			Next:  next,
		}
		return Decode(w.Encode()) == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeFitsIn34Bits(t *testing.T) {
	f := func(raddr, aluop, bsel, lc, asel uint8, block bool, ff, next uint8) bool {
		w := Word{
			RAddr: raddr & 0xF, ALUOp: aluop & 0xF,
			BSel: BSelect(bsel & 7), LC: LoadControl(lc & 7),
			ASel: ASelect(asel & 7), Block: block, FF: ff, Next: next,
		}
		return w.Encode() < 1<<WordBits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeEncodeRoundTrip(t *testing.T) {
	// Every 34-bit value decodes and re-encodes to itself: the encoding is
	// a bijection on the 34-bit space.
	f := func(v uint64) bool {
		v &= 1<<WordBits - 1
		return Decode(v).Encode() == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroWordIsValidNop(t *testing.T) {
	var w Word
	if err := w.Validate(); err != nil {
		t.Fatalf("zero word should validate: %v", err)
	}
	if w.NextOp().Kind != NextGoto || w.NextOp().W != 0 {
		t.Fatalf("zero word next = %v, want GOTO 0", w.NextOp())
	}
}

func TestStackDelta(t *testing.T) {
	cases := []struct {
		raddr uint8
		want  int8
	}{
		{0, 0}, {1, 1}, {7, 7}, {8, -8}, {15, -1}, {14, -2},
	}
	for _, c := range cases {
		w := Word{RAddr: c.raddr, Block: true}
		if got := w.StackDelta(); got != c.want {
			t.Errorf("StackDelta(raddr=%d) = %d, want %d", c.raddr, got, c.want)
		}
	}
}

func TestValidateRejectsConflicts(t *testing.T) {
	// Constant + long goto both need FF.
	w := Word{
		BSel: BSelConstLo,
		FF:   0x42,
		Next: MustEncodeNext(NextOp{Kind: NextLongGoto, W: 3}),
	}
	if err := w.Validate(); err == nil {
		t.Fatal("want conflict error for constant+longgoto")
	}
	// Either use alone is fine.
	w1 := Word{BSel: BSelConstLo, FF: 0x42}
	if err := w1.Validate(); err != nil {
		t.Fatalf("constant alone: %v", err)
	}
	w2 := Word{FF: 0x42, Next: MustEncodeNext(NextOp{Kind: NextLongGoto, W: 3})}
	if err := w2.Validate(); err != nil {
		t.Fatalf("longgoto alone: %v", err)
	}
}

func TestValidateRejectsReserved(t *testing.T) {
	if err := (Word{Next: 0xFF}).Validate(); err == nil {
		t.Error("want error for reserved NextControl")
	}
	if err := (Word{LC: 5}).Validate(); err == nil {
		t.Error("want error for reserved LoadControl")
	}
	if err := (Word{FF: 0xB5}).Validate(); err == nil {
		t.Error("want error for reserved FF op")
	}
	// Reserved FF byte is fine when FF is data.
	w := Word{FF: 0xB5, BSel: BSelConstLo}
	if err := w.Validate(); err != nil {
		t.Errorf("FF-as-data should not be checked as op: %v", err)
	}
}

func TestFFIsData(t *testing.T) {
	w := Word{BSel: BSelConstHi, FF: FFInput}
	if !w.FFIsData() {
		t.Error("constant BSel should make FF data")
	}
	if w.FFOp() != FFNop {
		t.Error("FFOp should be Nop when FF is data")
	}
	w = Word{FF: FFInput}
	if w.FFIsData() {
		t.Error("plain FF op is not data")
	}
	if w.FFOp() != FFInput {
		t.Error("FFOp should pass through")
	}
}

func TestUsesMD(t *testing.T) {
	if !(Word{ASel: ASelMD}).UsesMD() {
		t.Error("ASelMD uses MD")
	}
	if !(Word{BSel: BSelMD}).UsesMD() {
		t.Error("BSelMD uses MD")
	}
	if !(Word{FF: FFShiftMaskMD}).UsesMD() {
		t.Error("ShiftMaskMD uses MD")
	}
	// ShiftMaskMD byte used as a constant is not an MD use.
	if (Word{FF: FFShiftMaskMD, BSel: BSelConstLo}).UsesMD() {
		t.Error("FF-as-data must not count as MD use")
	}
	if (Word{}).UsesMD() {
		t.Error("plain word does not use MD")
	}
}

func TestWordStringSmoke(t *testing.T) {
	w := Word{
		RAddr: 3, ALUOp: uint8(ALUAplusB), BSel: BSelT, LC: LCLoadRM,
		ASel: ASelRM, Next: MustEncodeNext(NextOp{Kind: NextGoto, W: 7}),
	}
	if s := w.String(); s == "" {
		t.Fatal("empty String()")
	}
}
