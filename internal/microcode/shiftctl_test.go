package microcode

import (
	"testing"
	"testing/quick"
)

func TestShiftCtlRoundTrip(t *testing.T) {
	f := func(count, l, r uint8) bool {
		s := ShiftCtl{Count: count & 0x1F, LMask: l & 0xF, RMask: r & 0xF}
		return DecodeShiftCtl(EncodeShiftCtl(s)) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShiftRotation(t *testing.T) {
	// With no masks, Shift returns the high 16 bits of the rotated 32-bit
	// input.
	cases := []struct {
		rm, t uint16
		count uint8
		want  uint16
	}{
		{0x1234, 0x5678, 0, 0x1234},
		{0x1234, 0x5678, 16, 0x5678},
		{0x1234, 0x5678, 4, 0x2345},
		{0x1234, 0x5678, 8, 0x3456},
		{0x8000, 0x0000, 1, 0x0000}, // top bit rotates into low half
		{0x0000, 0x0001, 16, 0x0001},
		{0xFFFF, 0xFFFF, 13, 0xFFFF},
	}
	for _, c := range cases {
		s := ShiftCtl{Count: c.count}
		got := s.Shift(c.rm, c.t, 0)
		if got != c.want {
			t.Errorf("Shift(%#04x,%#04x,rot%d) = %#04x, want %#04x",
				c.rm, c.t, c.count, got, c.want)
		}
	}
}

func TestShiftRotationProperty(t *testing.T) {
	// Rotating by k then reading equals manual 32-bit rotation.
	f := func(rm, tt uint16, count uint8) bool {
		k := count & 0x1F
		in := uint32(rm)<<16 | uint32(tt)
		rot := in<<k | in>>(32-uint32(k))
		if k == 0 {
			rot = in
		}
		s := ShiftCtl{Count: k}
		return s.Shift(rm, tt, 0) == uint16(rot>>16)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestShiftMasking(t *testing.T) {
	s := ShiftCtl{Count: 0, LMask: 4, RMask: 4}
	// Output = rm; left 4 and right 4 bits replaced by mask bits.
	got := s.Shift(0xFFFF, 0, 0x0000)
	if got != 0x0FF0 {
		t.Errorf("masked zeros: got %#04x, want 0x0ff0", got)
	}
	got = s.Shift(0x0000, 0, 0xFFFF)
	if got != 0xF00F {
		t.Errorf("masked ones: got %#04x, want 0xf00f", got)
	}
}

func TestFieldExtract(t *testing.T) {
	// Extract a 4-bit field at bit position 6 of the 32-bit word RM‖T.
	rm, tv := uint16(0x0000), uint16(0x0A40) // bits 6..9 of T = 0b1001
	s := FieldExtract(6, 4)
	got := s.Shift(rm, tv, 0)
	if got != 0x9 {
		t.Errorf("FieldExtract(6,4) = %#x, want 0x9", got)
	}
}

func TestFieldExtractProperty(t *testing.T) {
	// For every pos in 0..15 and width 1..16-? extracting from T matches
	// direct bit arithmetic (fields contained in T).
	for pos := uint8(0); pos < 16; pos++ {
		for w := uint8(1); w <= 16-0; w++ {
			if int(pos)+int(w) > 16 {
				continue
			}
			tv := uint16(0xB6D9)
			rm := uint16(0x2468)
			s := FieldExtract(pos, w)
			got := s.Shift(rm, tv, 0)
			want := tv >> pos & (1<<w - 1)
			if got != want {
				t.Fatalf("extract pos=%d w=%d: got %#04x want %#04x (ctl %v)",
					pos, w, got, want, s)
			}
		}
	}
}

func TestFieldInsertProperty(t *testing.T) {
	// Inserting a right-justified field from T into an MD word: for every
	// pos/width that fits, result = md with bits [pos+w-1..pos] replaced.
	md := uint16(0xFFFF)
	for pos := uint8(0); pos < 16; pos++ {
		for w := uint8(1); int(pos)+int(w) <= 16; w++ {
			field := uint16(0x5A5A) & (1<<w - 1)
			// RM must mirror T so rotation pulls field bits regardless of wrap.
			s := FieldInsert(pos, w)
			got := s.Shift(field, field, md)
			want := md&^((1<<w-1)<<pos) | field<<pos
			if got != want {
				t.Fatalf("insert pos=%d w=%d: got %#04x want %#04x (ctl %v)",
					pos, w, got, want, s)
			}
		}
	}
}

func TestALUCtlRoundTrip(t *testing.T) {
	for fn := ALUFn(0); fn < 16; fn++ {
		for cin := CarryCtl(0); cin < 4; cin++ {
			c := ALUCtl{Fn: fn, Cin: cin}
			if got := DecodeALUCtl(EncodeALUCtl(c)); got != c {
				t.Fatalf("roundtrip %v: got %v", c, got)
			}
			if EncodeALUCtl(c) >= 1<<6 {
				t.Fatalf("ALUCtl %v does not fit in 6 bits", c)
			}
		}
	}
}

func TestDefaultALUFM(t *testing.T) {
	m := DefaultALUFM()
	for i, c := range m {
		if c.Fn != ALUFn(i) || c.Cin != CarryDefault {
			t.Fatalf("ALUFM[%d] = %v", i, c)
		}
	}
}
