// Package microcode defines the Dorado microinstruction set: the 34-bit
// microword and its eight fields, the NextControl encodings used to compute
// NEXTPC from a paged microstore, the FF "catchall" function catalog, the
// branch-condition set, and the byte-wise constant scheme of §5.9 of the
// paper.
//
// The paper (Lampson & Pier, "A Processor for a High-Performance Personal
// Computer") gives the field widths exactly (§6.3.1):
//
//	RAddress    4  Addresses the register bank RM (or the stack-pointer delta).
//	ALUOp       4  Selects the ALU operation (via ALUFM) or controls the shifter.
//	BSelect     3  Selects the source for the B bus, including constants.
//	LoadControl 3  Controls loading of results into RM and T.
//	ASelect     3  Selects the source for the A bus, and starts memory references.
//	Block       1  Blocks an I/O task; selects a stack operation for task 0.
//	FF          8  Catchall for specifying functions.
//	NextControl 8  Specifies how to compute NEXTPC.
//
// but not the complete encodings (those lived in the Dorado hardware manual,
// which is not public). This package therefore *reconstructs* encodings that
// satisfy every constraint the paper states:
//
//   - The microstore is divided into pages; NextControl carries the
//     instruction type and a next-address within the current page (§5.5).
//     We use 4096 words = 256 pages × 16 words.
//   - Conditional branches OR one of eight branch conditions into the low
//     bit of NEXTPC, so false targets sit at even addresses and the paired
//     true target at the next odd address (§5.5).
//   - Calls and returns go through the task-specific LINK register (§6.2.3).
//   - 8-way and 256-way dispatches take their selector from the B bus
//     (§6.2.3).
//   - FF doubles as an 8-bit constant byte or as part of a microstore
//     address (§5.5, §5.9); only one FF-specified meaning is available per
//     instruction, and the assembler enforces the absence of conflicts.
//   - A useful subset of 16-bit constants is built from the FF byte plus two
//     bits from BSelect giving the other byte's value (all-zeros/all-ones)
//     and position (§5.9).
//
// Everything downstream (the assembler in internal/masm, the processor in
// internal/core) treats this package as the architecture definition.
package microcode
