package microcode

import "fmt"

// ShiftCtl is the decoded SHIFTCTL register (§6.3.3): it controls the amount
// of shifting (a left cycle of the 32-bit RM‖T input) and the widths of the
// left and right masks applied to the shifter output. Whether the masked
// positions are filled with zeros or with memory data is chosen by the FF
// shift operation itself (ShiftMaskZ vs ShiftMaskMD, §6.3.4).
//
// Packed layout in the 16-bit register:
//
//	bits 0–4   Count  left-cycle amount, 0..31
//	bits 5–8   LMask  number of leftmost output bits masked, 0..15
//	bits 9–12  RMask  number of rightmost output bits masked, 0..15
//	bits 13–15 unused (read back as written)
type ShiftCtl struct {
	Count uint8 // left cycle amount, 0..31
	LMask uint8 // leftmost bits masked, 0..15
	RMask uint8 // rightmost bits masked, 0..15
}

// EncodeShiftCtl packs s into its 16-bit register representation.
func EncodeShiftCtl(s ShiftCtl) uint16 {
	return uint16(s.Count&0x1F) | uint16(s.LMask&0xF)<<5 | uint16(s.RMask&0xF)<<9
}

// DecodeShiftCtl unpacks a 16-bit SHIFTCTL register value.
func DecodeShiftCtl(v uint16) ShiftCtl {
	return ShiftCtl{
		Count: uint8(v & 0x1F),
		LMask: uint8(v >> 5 & 0xF),
		RMask: uint8(v >> 9 & 0xF),
	}
}

// FieldExtract returns the SHIFTCTL setting that extracts a w-bit field
// whose least significant bit is at position pos of the 32-bit RM‖T input
// (bit 0 = least significant bit of T), right-justified in the output, with
// the remaining output bits masked. Use with ShiftMaskZ.
func FieldExtract(pos, w uint8) ShiftCtl {
	// The shifter outputs the high 16 bits of the rotated 32-bit input:
	// out[i] = in[(16+i-count) mod 32]. Aligning input bit pos with output
	// bit 0 requires count = (16-pos) mod 32.
	return ShiftCtl{Count: (48 - pos) % 32, LMask: 16 - w, RMask: 0}
}

// FieldInsert returns the SHIFTCTL setting that positions a right-justified
// w-bit field (in T, with RM = T for rotation symmetry) so that its least
// significant bit lands at output position pos, masking all other output
// bits. Use with ShiftMaskMD to merge the field into a memory word.
func FieldInsert(pos, w uint8) ShiftCtl {
	return ShiftCtl{Count: (16 + pos) % 32, LMask: 16 - w - pos, RMask: pos}
}

// Shift performs the Dorado barrel-shift: a left cycle of the 32-bit value
// rm‖t by s.Count, taking the high 16 bits of the rotated value, and
// replacing the s.LMask leftmost and s.RMask rightmost output bits with the
// corresponding bits of mask (pass 0 for zero masking, the memory-data word
// for MD masking, or the unmasked value itself for no masking).
func (s ShiftCtl) Shift(rm, t, mask uint16) uint16 {
	in := uint32(rm)<<16 | uint32(t)
	rot := in<<(s.Count&0x1F) | in>>(32-s.Count&0x1F)
	if s.Count&0x1F == 0 {
		rot = in
	}
	out := uint16(rot >> 16)
	m := region(s.LMask, s.RMask)
	return out&m | mask&^m
}

// region computes the mask of output bits that come from the shifter: ones
// everywhere except the l leftmost and r rightmost positions.
func region(l, r uint8) uint16 {
	if l > 15 {
		l = 15
	}
	if r > 15 {
		r = 15
	}
	return (0xFFFF >> l) & (0xFFFF << r)
}

// String returns the shifter-control mnemonic used in disassembly listings.
func (s ShiftCtl) String() string {
	return fmt.Sprintf("rot%d,l%d,r%d", s.Count, s.LMask, s.RMask)
}
