package microcode

import "fmt"

// FF is the eight-bit "catchall" function field (§5.5): it invokes all the
// less frequently used operations of the processor — control of the I/O
// busses, reading and setting state in the memory and IFU, shifter control,
// reading and loading most registers, multiply/divide steps, and loading
// small constants into small registers.
//
// FF is *contextual*: when BSelect chooses one of the four constant sources,
// or when NextControl is a long transfer or dispatch, the FF byte is data
// (a constant byte or address bits) and no FF function executes. This is
// the paper's "only one FF-specified operation ... in each cycle" tradeoff;
// the assembler rejects instructions that need FF for two purposes.
//
// FF operation map (reconstruction; see package doc):
//
//	0x00        Nop
//	0x01        ReadyB       make task B&0xF ready (explicit wakeup, §6.2.1)
//	0x02        ReadTPC      RESULT ← TPC[B&0xF]           (§6.2.3, via TPIMOUT)
//	0x03        WriteTPC     TPC[COUNT&0xF] ← B
//	0x04        CPRegGet     RESULT ← CPREG (console processor, §6.2.3)
//	0x05        CPRegPut     CPREG ← B
//	0x06        FlushCache   flush/invalidate the cache line covering VA(A)
//	0x07        MapSet       map[vpage(A)] ← B
//	0x08        MapGet       RESULT ← map[vpage(A)]
//	0x09        IFUReset     reset the IFU at a new macro-PC taken from B
//	0x0B        SetMB        set the MB branch-condition flag
//	0x0C        ClearMB      clear the MB flag
//	0x0D        StackReset   STACKPTR ← B, clear stack error
//	0x0E        ProbeMD      MB ← "MD ready" (the §5.7 polling ablation)
//	0x0F        Halt         stop the simulation (console breakpoint)
//	0x10–0x1A   put-from-B:  RBASE STKP MEMBASE SHIFTCTL IOADDRESS COUNT Q
//	            ALUFM[ALUOp] LINK BASELO BASEHI (0x1B–0x1F reserved)
//	0x20–0x2C   read-to-RESULT: RBASE STKP MEMBASE SHIFTCTL IOADDRESS COUNT
//	            Q ALUFM[ALUOp] LINK MACROPC BASELO FAULTHI FAULTLO (RESULT
//	            is sourced from the register instead of the ALU; the ALU
//	            still runs for branch conditions; 0x2D–0x2F reserved)
//	0x30–0x3F   COUNT ← n (small constants, §6.3.3)
//	0x40–0x5F   MEMBASE ← n (n = 0..31, §6.3.3)
//	0x60        ShiftNoMask  RESULT ← shifter(RM‖T) per SHIFTCTL
//	0x61        ShiftMaskZ   ditto, masked with zeros
//	0x62        ShiftMaskMD  ditto, masked with memory data
//	0x63        ALULsh       RESULT ← ALU<<1 (one-bit left shift of ALU output)
//	0x64        ALURsh       RESULT ← ALU>>1
//	0x65        MulStep      multiply step using Q (§6.3.3)
//	0x66        DivStep      divide step using Q
//	0x70        Input        B bus ← device[IOADDRESS].Input() (IODATA sources B)
//	0x71        Output       device[IOADDRESS].Output(B)
//	0x72        IOAttenAck   acknowledge the addressed device's attention
//	0x73        DevCtl       device[IOADDRESS].Control(B)
//	0x80–0x9F   SHIFTCTL ← rotate(k), k = 0..31, no masks (quick shifter setup)
//	0xA0–0xAF   RM[n]← : redirect this instruction's RM write to register
//	            rbase·16+n ("loading a different register ... by FF", §6.3.3)
//	0xB0–0xFF   reserved
type FF = uint8

// Named FF operation codes.
const (
	FFNop        FF = 0x00
	FFReadyB     FF = 0x01
	FFReadTPC    FF = 0x02
	FFWriteTPC   FF = 0x03
	FFCPRegGet   FF = 0x04
	FFCPRegPut   FF = 0x05
	FFFlushCache FF = 0x06
	FFMapSet     FF = 0x07
	FFMapGet     FF = 0x08
	FFIFUReset   FF = 0x09
	FFSetMB      FF = 0x0B
	FFClearMB    FF = 0x0C
	FFStackReset FF = 0x0D
	// FFProbeMD loads the MB flag with "this task's memory data is ready".
	// It exists for the §5.7 ablation: a machine *without* Hold would make
	// microcode poll the memory this way. Production Dorado microcode never
	// needs it.
	FFProbeMD FF = 0x0E
	// FFHalt stops the simulated machine (stands in for the console
	// processor's breakpoint/stop facility, §6.2.3). Production microcode
	// never executes it; tests and examples use it to end runs.
	FFHalt FF = 0x0F

	FFPutRBase     FF = 0x10
	FFPutStackPtr  FF = 0x11
	FFPutMemBase   FF = 0x12
	FFPutShiftCtl  FF = 0x13
	FFPutIOAddress FF = 0x14
	FFPutCount     FF = 0x15
	FFPutQ         FF = 0x16
	FFPutALUFM     FF = 0x17
	FFPutLink      FF = 0x18
	// FFPutBaseLo loads the low 16 bits of the memory base register
	// selected by MEMBASE from B (how emulator calls rebase the LOCAL
	// frame; base registers live in the memory system, loaded over
	// EXTERNALB, §5.8/§6.3.2).
	FFPutBaseLo FF = 0x19
	// FFPutBaseHi loads the high 12 bits of the selected base register.
	FFPutBaseHi FF = 0x1A

	FFGetRBase     FF = 0x20
	FFGetStackPtr  FF = 0x21
	FFGetMemBase   FF = 0x22
	FFGetShiftCtl  FF = 0x23
	FFGetIOAddress FF = 0x24
	FFGetCount     FF = 0x25
	FFGetQ         FF = 0x26
	FFGetALUFM     FF = 0x27
	FFGetLink      FF = 0x28
	// FFGetMacroPC reads the IFU's current macroinstruction byte PC — the
	// return address an emulator's call opcode must save (the IFU paper's
	// "reading state in the ... IFU", §5.5).
	FFGetMacroPC FF = 0x29
	// FFGetBaseLo reads the low 16 bits of the selected base register.
	FFGetBaseLo FF = 0x2A
	// FFGetFaultHi reads the pending map fault's high word:
	// kind(2 bits)<<12 | VA bits 27..16 (the memory system's fault
	// machinery; see internal/memory/map.go).
	FFGetFaultHi FF = 0x2B
	// FFGetFaultLo reads the fault VA's low 16 bits and *clears* the fault
	// (the fault task reads Hi first, then Lo).
	FFGetFaultLo FF = 0x2C

	FFCountBase   FF = 0x30 // FFCountBase+n : COUNT ← n (n in 0..15)
	FFMemBaseBase FF = 0x40 // FFMemBaseBase+n : MEMBASE ← n (n in 0..31)

	FFShiftNoMask FF = 0x60
	FFShiftMaskZ  FF = 0x61
	FFShiftMaskMD FF = 0x62
	FFALULsh      FF = 0x63
	FFALURsh      FF = 0x64
	FFMulStep     FF = 0x65
	FFDivStep     FF = 0x66

	FFInput      FF = 0x70
	FFOutput     FF = 0x71
	FFIOAttenAck FF = 0x72
	FFDevCtl     FF = 0x73

	FFRotBase FF = 0x80 // FFRotBase+k : SHIFTCTL ← rotate k, no masks (k in 0..31)

	// FFRMDestBase+n redirects this instruction's RM write to register
	// rbase·16+n instead of the RAddress register (§6.3.3: "Normally, the
	// same register is both read and loaded in a given microinstruction,
	// but loading a different register can be specified by FF").
	FFRMDestBase FF = 0xA0 // +n, n in 0..15
)

// FFClass groups FF operations for decode dispatch and conflict analysis.
type FFClass uint8

const (
	// FFClassNone is a no-op (or FF-as-data).
	FFClassNone FFClass = iota
	// FFClassMisc covers the 0x01–0x0D singletons.
	FFClassMisc
	// FFClassPut loads a small register from B.
	FFClassPut
	// FFClassGet routes a small register to RESULT.
	FFClassGet
	// FFClassCountConst loads COUNT with a small constant.
	FFClassCountConst
	// FFClassMemBaseConst loads MEMBASE with a constant.
	FFClassMemBaseConst
	// FFClassShifter is a shifter/ALU-shift/mul-div operation.
	FFClassShifter
	// FFClassIO is an I/O bus operation.
	FFClassIO
	// FFClassRot is a quick SHIFTCTL rotate setup.
	FFClassRot
	// FFClassRMDest redirects the RM write destination.
	FFClassRMDest
	// FFClassReserved marks unassigned codes.
	FFClassReserved
)

// ClassifyFF returns the class of an FF operation byte (assuming FF is being
// interpreted as an operation, i.e. not consumed as a constant or address).
func ClassifyFF(ff FF) FFClass {
	switch {
	case ff == FFNop || ff == 0x0A:
		if ff == FFNop {
			return FFClassNone
		}
		return FFClassReserved
	case ff < 0x10:
		return FFClassMisc
	case ff < 0x1B:
		return FFClassPut
	case ff < 0x20:
		return FFClassReserved
	case ff < 0x2D:
		return FFClassGet
	case ff < 0x30:
		return FFClassReserved
	case ff < 0x40:
		return FFClassCountConst
	case ff < 0x60:
		return FFClassMemBaseConst
	case ff <= FFDivStep:
		return FFClassShifter
	case ff < 0x70:
		return FFClassReserved
	case ff <= FFDevCtl:
		return FFClassIO
	case ff < 0x80:
		return FFClassReserved
	case ff < 0xA0:
		return FFClassRot
	case ff < 0xB0:
		return FFClassRMDest
	}
	return FFClassReserved
}

// ReadsB reports whether executing ff as an operation consumes the B bus
// (used by the assembler to detect conflicts with B-bus constants).
func FFReadsB(ff FF) bool {
	switch ff {
	case FFReadyB, FFWriteTPC, FFReadTPC, FFCPRegPut, FFMapSet, FFIFUReset,
		FFStackReset, FFOutput, FFDevCtl:
		return true
	}
	return ClassifyFF(ff) == FFClassPut
}

// WritesResult reports whether ff overrides the RESULT bus (so LoadControl
// stores the FF-produced value rather than the ALU output).
func FFWritesResult(ff FF) bool {
	switch ClassifyFF(ff) {
	case FFClassGet, FFClassShifter:
		return true
	}
	switch ff {
	case FFReadTPC, FFCPRegGet, FFMapGet:
		return true
	}
	return false
}

// FFDrivesB reports whether ff sources the B bus from outside the data
// section (FF Input puts the IODATA word on B, §6.3.2: the I/O busses "can
// serve as a source as well"), overriding the BSelect field.
func FFDrivesB(ff FF) bool { return ff == FFInput }

var ffNames = map[FF]string{
	FFNop: "Nop", FFReadyB: "ReadyB", FFReadTPC: "ReadTPC", FFWriteTPC: "WriteTPC",
	FFCPRegGet: "CPRegGet", FFCPRegPut: "CPRegPut", FFFlushCache: "FlushCache",
	FFMapSet: "MapSet", FFMapGet: "MapGet", FFIFUReset: "IFUReset",
	FFSetMB: "SetMB", FFClearMB: "ClearMB", FFStackReset: "StackReset",
	FFHalt:     "Halt",
	FFProbeMD:  "ProbeMD",
	FFPutRBase: "RBase←B", FFPutStackPtr: "StkP←B", FFPutMemBase: "MemBase←B",
	FFPutShiftCtl: "ShiftCtl←B", FFPutIOAddress: "IOAddr←B", FFPutCount: "Count←B",
	FFPutQ: "Q←B", FFPutALUFM: "ALUFM←B", FFPutLink: "Link←B",
	FFGetRBase: "←RBase", FFGetStackPtr: "←StkP", FFGetMemBase: "←MemBase",
	FFGetShiftCtl: "←ShiftCtl", FFGetIOAddress: "←IOAddr", FFGetCount: "←Count",
	FFGetQ: "←Q", FFGetALUFM: "←ALUFM", FFGetLink: "←Link", FFGetMacroPC: "←MacroPC",
	FFPutBaseLo: "BaseLo←B", FFPutBaseHi: "BaseHi←B", FFGetBaseLo: "←BaseLo",
	FFGetFaultHi: "←FaultHi", FFGetFaultLo: "←FaultLo",
	FFShiftNoMask: "Shift", FFShiftMaskZ: "ShiftMaskZ", FFShiftMaskMD: "ShiftMaskMD",
	FFALULsh: "ALU<<1", FFALURsh: "ALU>>1", FFMulStep: "MulStep", FFDivStep: "DivStep",
	FFInput: "Input", FFOutput: "Output", FFIOAttenAck: "IOAttenAck", FFDevCtl: "DevCtl",
}

// FFName renders an FF operation byte for disassembly.
func FFName(ff FF) string {
	if s, ok := ffNames[ff]; ok {
		return s
	}
	switch ClassifyFF(ff) {
	case FFClassCountConst:
		return fmt.Sprintf("Count←%d", ff-FFCountBase)
	case FFClassRMDest:
		return fmt.Sprintf("RM[%d]←", ff-FFRMDestBase)
	case FFClassMemBaseConst:
		return fmt.Sprintf("MemBase←%d", ff-FFMemBaseBase)
	case FFClassRot:
		return fmt.Sprintf("ShiftCtl←Rot%d", ff-FFRotBase)
	}
	return fmt.Sprintf("FF(%#02x)", ff)
}
