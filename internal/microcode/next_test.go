package microcode

import (
	"testing"
	"testing/quick"
)

func TestNextEncodeDecodeRoundTrip(t *testing.T) {
	kinds := []NextKind{NextGoto, NextCall, NextLongGoto, NextLongCall}
	for _, k := range kinds {
		for w := uint8(0); w < PageSize; w++ {
			op := NextOp{Kind: k, W: w}
			b, err := EncodeNext(op)
			if err != nil {
				t.Fatalf("%v %d: %v", k, w, err)
			}
			if got := DecodeNext(b); got != op {
				t.Fatalf("%v %d: decoded %v", k, w, got)
			}
		}
	}
	for c := Condition(0); c < 8; c++ {
		for w := uint8(0); w < PageSize; w += 2 {
			op := NextOp{Kind: NextBranch, Cond: c, W: w}
			b, err := EncodeNext(op)
			if err != nil {
				t.Fatalf("branch %v %d: %v", c, w, err)
			}
			if got := DecodeNext(b); got != op {
				t.Fatalf("branch %v %d: decoded %v", c, w, got)
			}
		}
	}
	for _, k := range []NextKind{NextReturn, NextIFUJump, NextDispatch8, NextDispatch256} {
		b, err := EncodeNext(NextOp{Kind: k})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if got := DecodeNext(b); got.Kind != k {
			t.Fatalf("%v: decoded %v", k, got)
		}
	}
}

func TestNextDecodeTotal(t *testing.T) {
	// Every byte decodes to something, and non-reserved decodings re-encode
	// to the same byte.
	for b := 0; b < 256; b++ {
		op := DecodeNext(uint8(b))
		if op.Kind == NextReserved {
			continue
		}
		got, err := EncodeNext(op)
		if err != nil {
			// Odd branch targets decode but are not encodable: they are the
			// "true" halves of branch pairs and never appear in assembled code.
			if op.Kind == NextBranch && op.W%2 == 1 {
				continue
			}
			t.Fatalf("byte %#02x decoded to %v but re-encode failed: %v", b, op, err)
		}
		if got != uint8(b) {
			t.Fatalf("byte %#02x decoded to %v, re-encoded to %#02x", b, op, got)
		}
	}
}

func TestNextEncodeRejectsBadOperands(t *testing.T) {
	if _, err := EncodeNext(NextOp{Kind: NextGoto, W: 16}); err == nil {
		t.Error("word 16 should be rejected")
	}
	if _, err := EncodeNext(NextOp{Kind: NextBranch, W: 3}); err == nil {
		t.Error("odd branch target should be rejected")
	}
	if _, err := EncodeNext(NextOp{Kind: NextReserved}); err == nil {
		t.Error("reserved kind should be rejected")
	}
}

func TestNextUsesFFAsAddress(t *testing.T) {
	want := map[NextKind]bool{
		NextGoto: false, NextCall: false, NextBranch: false,
		NextReturn: false, NextIFUJump: false,
		NextLongGoto: true, NextLongCall: true,
		NextDispatch8: true, NextDispatch256: true,
	}
	for k, w := range want {
		if got := (NextOp{Kind: k}).UsesFFAsAddress(); got != w {
			t.Errorf("%v UsesFFAsAddress = %v, want %v", k, got, w)
		}
	}
}

func TestAddr(t *testing.T) {
	f := func(p, w uint8) bool {
		a := MakeAddr(p, w&WordMask)
		return a.Page() == p && a.Word() == w&WordMask && a < StoreSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConstValues(t *testing.T) {
	cases := []struct {
		b    BSelect
		ff   uint8
		want uint16
	}{
		{BSelConstLo, 0x42, 0x0042},
		{BSelConstLoOnes, 0x42, 0xFF42},
		{BSelConstHi, 0x42, 0x4200},
		{BSelConstHiOnes, 0x42, 0x42FF},
		{BSelConstLo, 0x00, 0x0000},
		{BSelConstLoOnes, 0xFF, 0xFFFF},
	}
	for _, c := range cases {
		if got := c.b.ConstValue(c.ff); got != c.want {
			t.Errorf("%v.ConstValue(%#02x) = %#04x, want %#04x", c.b, c.ff, got, c.want)
		}
	}
}

func TestConstCoverage(t *testing.T) {
	// §5.9: "most 16 bit constants can be specified in one microinstruction".
	// Verify the exact set: any constant with either byte all-zeros or
	// all-ones is expressible.
	expressible := func(v uint16) bool {
		hi, lo := uint8(v>>8), uint8(v)
		return hi == 0x00 || hi == 0xFF || lo == 0x00 || lo == 0xFF
	}
	count := 0
	for v := 0; v <= 0xFFFF; v++ {
		want := expressible(uint16(v))
		got := false
		for _, b := range []BSelect{BSelConstLo, BSelConstLoOnes, BSelConstHi, BSelConstHiOnes} {
			for ff := 0; ff < 256; ff++ {
				if b.ConstValue(uint8(ff)) == uint16(v) {
					got = true
					break
				}
			}
			if got {
				break
			}
		}
		if got != want {
			t.Fatalf("constant %#04x: expressible=%v, want %v", v, got, want)
		}
		if got {
			count++
		}
	}
	if count < 1000 {
		t.Fatalf("only %d constants expressible", count)
	}
	t.Logf("one-instruction constants: %d of 65536", count)
}
