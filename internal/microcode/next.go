package microcode

import "fmt"

// NextKind classifies the successor-address computation selected by the
// 8-bit NextControl field (§5.5, §6.2.2). The Dorado computes NEXTPC at the
// start of every microcycle from NextControl, the current page, the LINK
// register, the branch conditions, the B bus, the FF field, or the IFU.
type NextKind uint8

const (
	// NextGoto transfers to a word in the current page.
	NextGoto NextKind = iota
	// NextCall transfers to a word in the current page and loads LINK with
	// THISPC+1 (§6.2.3).
	NextCall
	// NextBranch transfers to an even word in the current page with the
	// selected branch condition ORed into the low bit of NEXTPC (§5.5).
	NextBranch
	// NextLongGoto transfers to page FF, word W (FF serves as part of a
	// microstore address, §5.5).
	NextLongGoto
	// NextLongCall is NextLongGoto plus LINK ← THISPC+1.
	NextLongCall
	// NextReturn transfers to the address in LINK.
	NextReturn
	// NextIFUJump dispatches to the handler address supplied by the IFU for
	// the next macroinstruction, and tells the IFU to advance (§5.8).
	NextIFUJump
	// NextDispatch8 is an 8-way dispatch: the target (8-aligned, word 0 or
	// 8 of the current page, selected by FF bit 3) gets B&7 ORed into its
	// low three bits (§6.2.3).
	NextDispatch8
	// NextDispatch256 is a 256-way dispatch: NEXTPC = (FF&0xF)·256 + (B&0xFF),
	// i.e. FF selects one of 16 contiguous 256-word dispatch regions and the
	// low byte of B indexes within it (§6.2.3).
	NextDispatch256
	// NextReserved marks an unassigned NextControl encoding.
	NextReserved
)

var nextKindNames = map[NextKind]string{
	NextGoto: "GOTO", NextCall: "CALL", NextBranch: "BRANCH",
	NextLongGoto: "LGOTO", NextLongCall: "LCALL", NextReturn: "RETURN",
	NextIFUJump: "IFUJUMP", NextDispatch8: "DISP8", NextDispatch256: "DISP256",
	NextReserved: "RESERVED",
}

// String returns the successor kind's name for traces and disassembly.
func (k NextKind) String() string {
	if s, ok := nextKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("NextKind(%d)", uint8(k))
}

// NextOp is the decoded form of a NextControl byte.
type NextOp struct {
	Kind NextKind
	// W is the word-in-page operand for Goto/Call/Branch/LongGoto/LongCall.
	// For NextBranch it must be even (the odd partner is the true target).
	W uint8
	// Cond is the branch condition for NextBranch.
	Cond Condition
}

// NextControl byte layout (reconstruction; see package doc):
//
//	0x00–0x0F  GOTO w          w = low nibble
//	0x10–0x1F  CALL w
//	0x20–0x2F  LONGGOTO w      page from FF
//	0x30–0x3F  LONGCALL w
//	0x40–0xBF  BRANCH c,w      value-0x40 = c·16 + w, w even (odd w reserved)
//	0xC0       RETURN
//	0xC1       IFUJUMP
//	0xC2       DISPATCH8
//	0xC3       DISPATCH256
//	0xC4–0xFF  reserved
const (
	ncGoto     = 0x00
	ncCall     = 0x10
	ncLongGoto = 0x20
	ncLongCall = 0x30
	ncBranch   = 0x40
	ncSpecial  = 0xC0
)

// EncodeNext packs op into a NextControl byte. It returns an error for
// operands that do not fit the encoding (word out of range, odd branch
// target, reserved kind).
func EncodeNext(op NextOp) (uint8, error) {
	if op.W > WordMask {
		return 0, fmt.Errorf("microcode: next word %d out of page range", op.W)
	}
	switch op.Kind {
	case NextGoto:
		return ncGoto | op.W, nil
	case NextCall:
		return ncCall | op.W, nil
	case NextLongGoto:
		return ncLongGoto | op.W, nil
	case NextLongCall:
		return ncLongCall | op.W, nil
	case NextBranch:
		if op.W%2 != 0 {
			return 0, fmt.Errorf("microcode: branch false target %d must be even", op.W)
		}
		if op.Cond > 7 {
			return 0, fmt.Errorf("microcode: branch condition %d out of range", op.Cond)
		}
		return ncBranch + uint8(op.Cond)<<4 + op.W, nil
	case NextReturn:
		return ncSpecial, nil
	case NextIFUJump:
		return ncSpecial + 1, nil
	case NextDispatch8:
		return ncSpecial + 2, nil
	case NextDispatch256:
		return ncSpecial + 3, nil
	}
	return 0, fmt.Errorf("microcode: cannot encode next kind %v", op.Kind)
}

// MustEncodeNext is EncodeNext but panics on error; for use with operands
// known valid at construction time.
func MustEncodeNext(op NextOp) uint8 {
	b, err := EncodeNext(op)
	if err != nil {
		panic(err)
	}
	return b
}

// DecodeNext unpacks a NextControl byte.
func DecodeNext(b uint8) NextOp {
	switch {
	case b < ncCall:
		return NextOp{Kind: NextGoto, W: b & WordMask}
	case b < ncLongGoto:
		return NextOp{Kind: NextCall, W: b & WordMask}
	case b < ncLongCall:
		return NextOp{Kind: NextLongGoto, W: b & WordMask}
	case b < ncBranch:
		return NextOp{Kind: NextLongCall, W: b & WordMask}
	case b < ncSpecial:
		v := b - ncBranch
		return NextOp{Kind: NextBranch, Cond: Condition(v >> 4), W: v & WordMask}
	case b == ncSpecial:
		return NextOp{Kind: NextReturn}
	case b == ncSpecial+1:
		return NextOp{Kind: NextIFUJump}
	case b == ncSpecial+2:
		return NextOp{Kind: NextDispatch8}
	case b == ncSpecial+3:
		return NextOp{Kind: NextDispatch256}
	}
	return NextOp{Kind: NextReserved}
}

// UsesFFAsAddress reports whether the decoded NextControl consumes the FF
// field as address bits (page for long transfers, region for DISPATCH256,
// target selector for DISPATCH8), making FF unavailable for a function or
// constant in the same instruction.
func (op NextOp) UsesFFAsAddress() bool {
	switch op.Kind {
	case NextLongGoto, NextLongCall, NextDispatch8, NextDispatch256:
		return true
	}
	return false
}

// UsesB reports whether the successor computation reads the B bus.
func (op NextOp) UsesB() bool {
	return op.Kind == NextDispatch8 || op.Kind == NextDispatch256
}

// String renders the resolved successor operation for traces.
func (op NextOp) String() string {
	switch op.Kind {
	case NextGoto, NextCall, NextLongGoto, NextLongCall:
		return fmt.Sprintf("%v %X", op.Kind, op.W)
	case NextBranch:
		return fmt.Sprintf("BRANCH[%v] %X", op.Cond, op.W)
	default:
		return op.Kind.String()
	}
}
