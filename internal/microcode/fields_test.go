package microcode

import (
	"strings"
	"testing"
)

func TestFFClassification(t *testing.T) {
	cases := map[FF]FFClass{
		FFNop:              FFClassNone,
		FFReadyB:           FFClassMisc,
		FFHalt:             FFClassMisc,
		FFProbeMD:          FFClassMisc,
		FFPutRBase:         FFClassPut,
		FFPutBaseHi:        FFClassPut,
		FFGetRBase:         FFClassGet,
		FFGetFaultLo:       FFClassGet,
		FFGetMacroPC:       FFClassGet,
		FFCountBase:        FFClassCountConst,
		FFCountBase + 15:   FFClassCountConst,
		FFMemBaseBase:      FFClassMemBaseConst,
		FFMemBaseBase + 31: FFClassMemBaseConst,
		FFShiftNoMask:      FFClassShifter,
		FFDivStep:          FFClassShifter,
		FFInput:            FFClassIO,
		FFDevCtl:           FFClassIO,
		FFRotBase:          FFClassRot,
		FFRotBase + 31:     FFClassRot,
		FFRMDestBase:       FFClassRMDest,
		FFRMDestBase + 15:  FFClassRMDest,
		0x0A:               FFClassReserved,
		0x1F:               FFClassReserved,
		0x2F:               FFClassReserved,
		0x6F:               FFClassReserved,
		0x7F:               FFClassReserved,
		0xB0:               FFClassReserved,
		0xFF:               FFClassReserved,
	}
	for ff, want := range cases {
		if got := ClassifyFF(ff); got != want {
			t.Errorf("ClassifyFF(%#02x) = %v, want %v", ff, got, want)
		}
	}
}

func TestFFClassificationTotal(t *testing.T) {
	// Every byte classifies, and classification is consistent with the
	// helper predicates.
	for b := 0; b < 256; b++ {
		ff := FF(b)
		c := ClassifyFF(ff)
		if c == FFClassPut && !FFReadsB(ff) {
			t.Errorf("put op %#02x does not read B", b)
		}
		if c == FFClassGet && !FFWritesResult(ff) {
			t.Errorf("get op %#02x does not write RESULT", b)
		}
	}
}

func TestFFReadsB(t *testing.T) {
	for _, ff := range []FF{FFReadyB, FFWriteTPC, FFCPRegPut, FFMapSet,
		FFIFUReset, FFStackReset, FFOutput, FFDevCtl, FFPutQ, FFPutBaseLo} {
		if !FFReadsB(ff) {
			t.Errorf("%s should read B", FFName(ff))
		}
	}
	for _, ff := range []FF{FFNop, FFHalt, FFGetQ, FFShiftNoMask, FFCountBase + 3} {
		if FFReadsB(ff) {
			t.Errorf("%s should not read B", FFName(ff))
		}
	}
}

func TestFFWritesResult(t *testing.T) {
	for _, ff := range []FF{FFGetQ, FFGetLink, FFShiftMaskZ, FFMulStep,
		FFReadTPC, FFCPRegGet, FFMapGet} {
		if !FFWritesResult(ff) {
			t.Errorf("%s should write RESULT", FFName(ff))
		}
	}
	for _, ff := range []FF{FFNop, FFOutput, FFPutQ, FFSetMB} {
		if FFWritesResult(ff) {
			t.Errorf("%s should not write RESULT", FFName(ff))
		}
	}
}

func TestFFDrivesB(t *testing.T) {
	if !FFDrivesB(FFInput) {
		t.Error("Input drives B (IODATA sources the bus)")
	}
	if FFDrivesB(FFOutput) || FFDrivesB(FFNop) {
		t.Error("only Input drives B")
	}
}

func TestFFNames(t *testing.T) {
	// Every named op renders; parameterized groups render their argument;
	// reserved bytes render as hex.
	if FFName(FFInput) != "Input" {
		t.Errorf("FFName(Input) = %q", FFName(FFInput))
	}
	if got := FFName(FFCountBase + 5); got != "Count←5" {
		t.Errorf("count name = %q", got)
	}
	if got := FFName(FFMemBaseBase + 9); got != "MemBase←9" {
		t.Errorf("membase name = %q", got)
	}
	if got := FFName(FFRotBase + 12); got != "ShiftCtl←Rot12" {
		t.Errorf("rot name = %q", got)
	}
	if got := FFName(FFRMDestBase + 7); got != "RM[7]←" {
		t.Errorf("rmdest name = %q", got)
	}
	if !strings.Contains(FFName(0xB5), "0xb5") {
		t.Errorf("reserved name = %q", FFName(0xB5))
	}
}

func TestEnumStrings(t *testing.T) {
	// Stringers cover their whole domains (used by the disassembler and
	// the trace package; a panic or empty string here breaks debugging).
	for b := BSelect(0); b < 8; b++ {
		if b.String() == "" || strings.HasPrefix(b.String(), "BSelect(") {
			t.Errorf("BSelect %d renders as %q", b, b.String())
		}
	}
	for a := ASelect(0); a < 8; a++ {
		if a.String() == "" || strings.HasPrefix(a.String(), "ASelect(") {
			t.Errorf("ASelect %d renders as %q", a, a.String())
		}
	}
	for lc := LoadControl(0); lc < 4; lc++ {
		if lc.String() == "" {
			t.Errorf("LoadControl %d empty", lc)
		}
	}
	if LoadControl(6).String() == "" {
		t.Error("reserved LoadControl renders empty")
	}
	for c := Condition(0); c < 8; c++ {
		if c.String() == "" {
			t.Errorf("Condition %d empty", c)
		}
	}
	for f := ALUFn(0); f < 16; f++ {
		if f.String() == "" {
			t.Errorf("ALUFn %d empty", f)
		}
	}
	for cc := CarryCtl(0); cc < 4; cc++ {
		if cc.String() == "" {
			t.Errorf("CarryCtl %d empty", cc)
		}
	}
	for _, k := range []NextKind{NextGoto, NextCall, NextBranch, NextLongGoto,
		NextLongCall, NextReturn, NextIFUJump, NextDispatch8, NextDispatch256, NextReserved} {
		if k.String() == "" {
			t.Errorf("NextKind %d empty", k)
		}
	}
	if (ShiftCtl{Count: 3, LMask: 1, RMask: 2}).String() != "rot3,l1,r2" {
		t.Error("ShiftCtl string")
	}
	if (ALUCtl{Fn: ALUAplusB, Cin: CarryOne}).String() != "A+B/c1" {
		t.Error("ALUCtl string")
	}
}

func TestASelectPredicates(t *testing.T) {
	memRefs := map[ASelect]bool{
		ASelFetch: true, ASelStore: true, ASelFetchIFU: true, ASelStoreIFU: true,
	}
	stores := map[ASelect]bool{ASelStore: true, ASelStoreIFU: true}
	ifuData := map[ASelect]bool{ASelIFUData: true, ASelFetchIFU: true, ASelStoreIFU: true}
	for a := ASelect(0); a < 8; a++ {
		if a.StartsMemRef() != memRefs[a] {
			t.Errorf("%v StartsMemRef = %v", a, a.StartsMemRef())
		}
		if a.IsStore() != stores[a] {
			t.Errorf("%v IsStore = %v", a, a.IsStore())
		}
		if a.UsesIFUData() != ifuData[a] {
			t.Errorf("%v UsesIFUData = %v", a, a.UsesIFUData())
		}
	}
}

func TestLoadControlPredicates(t *testing.T) {
	if LCNone.LoadsT() || LCNone.LoadsRM() {
		t.Error("LCNone loads something")
	}
	if !LCLoadT.LoadsT() || LCLoadT.LoadsRM() {
		t.Error("LCLoadT wrong")
	}
	if LCLoadRM.LoadsT() || !LCLoadRM.LoadsRM() {
		t.Error("LCLoadRM wrong")
	}
	if !LCLoadBoth.LoadsT() || !LCLoadBoth.LoadsRM() {
		t.Error("LCLoadBoth wrong")
	}
}

func TestALUFnIsArith(t *testing.T) {
	arith := map[ALUFn]bool{
		ALUAplusB: true, ALUAminusB: true, ALUBminusA: true,
		ALUAplus1: true, ALUAminus1: true,
	}
	for f := ALUFn(0); f < 16; f++ {
		if f.IsArith() != arith[f] {
			t.Errorf("%v IsArith = %v", f, f.IsArith())
		}
	}
}

func TestBSelIsConst(t *testing.T) {
	for b := BSelect(0); b < 8; b++ {
		want := b >= BSelConstLo
		if b.IsConst() != want {
			t.Errorf("%v IsConst = %v", b, b.IsConst())
		}
	}
}

func TestWordStringVariants(t *testing.T) {
	// Exercise the disassembler's branches: constants, stack mode, FF ops,
	// long transfers.
	words := []Word{
		{BSel: BSelConstHi, FF: 0x12, LC: LCLoadT, ALUOp: uint8(ALUB)},
		{Block: true, RAddr: 15, ASel: ASelRM, LC: LCLoadRM},
		{FF: FFInput, Next: MustEncodeNext(NextOp{Kind: NextIFUJump})},
		{FF: 0x07, Next: MustEncodeNext(NextOp{Kind: NextLongGoto, W: 5})},
		{Next: MustEncodeNext(NextOp{Kind: NextBranch, Cond: CondCarry, W: 4})},
		{ASel: ASelFetch, RAddr: 3},
	}
	for _, w := range words {
		s := w.String()
		if s == "" {
			t.Errorf("empty disassembly for %+v", w)
		}
	}
	// Specific spot checks.
	if s := words[0].String(); !strings.Contains(s, "0x1200") {
		t.Errorf("constant not shown: %q", s)
	}
	if s := words[1].String(); !strings.Contains(s, "stk-1") || !strings.Contains(s, "BLOCK") {
		t.Errorf("stack mode not shown: %q", s)
	}
	if s := words[3].String(); !strings.Contains(s, "LGOTO") || !strings.Contains(s, "FF=0x07") {
		t.Errorf("long goto not shown: %q", s)
	}
}
