package microcode

import (
	"fmt"
	"strings"
)

// Word is a decoded 34-bit Dorado microinstruction (§6.3.1).
//
// The zero Word is a usable no-op that falls through to the next word in
// the page only if Next is set; assemble real code through internal/masm,
// which fills Next and validates field conflicts.
type Word struct {
	RAddr uint8       // 4 bits: RM low address, or signed stack-pointer delta in stack mode
	ALUOp uint8       // 4 bits: ALUFM index
	BSel  BSelect     // 3 bits
	LC    LoadControl // 3 bits
	ASel  ASelect     // 3 bits
	Block bool        // 1 bit: release the processor (I/O tasks); stack modifier for task 0
	FF    uint8       // 8 bits: function, constant byte, or address bits
	Next  uint8       // 8 bits: NextControl
}

// Bit layout of the packed 34-bit word (bit 0 = least significant):
//
//	[33:30] RAddr  [29:26] ALUOp  [25:23] BSel  [22:20] LC
//	[19:17] ASel   [16]    Block  [15:8]  FF    [7:0]   Next
const WordBits = 34

// Encode packs w into the low 34 bits of a uint64.
func (w Word) Encode() uint64 {
	v := uint64(w.Next) | uint64(w.FF)<<8
	if w.Block {
		v |= 1 << 16
	}
	v |= uint64(w.ASel&7) << 17
	v |= uint64(w.LC&7) << 20
	v |= uint64(w.BSel&7) << 23
	v |= uint64(w.ALUOp&0xF) << 26
	v |= uint64(w.RAddr&0xF) << 30
	return v
}

// Decode unpacks a 34-bit microword.
func Decode(v uint64) Word {
	return Word{
		Next:  uint8(v),
		FF:    uint8(v >> 8),
		Block: v>>16&1 != 0,
		ASel:  ASelect(v >> 17 & 7),
		LC:    LoadControl(v >> 20 & 7),
		BSel:  BSelect(v >> 23 & 7),
		ALUOp: uint8(v >> 26 & 0xF),
		RAddr: uint8(v >> 30 & 0xF),
	}
}

// NextOp decodes the NextControl field.
func (w Word) NextOp() NextOp { return DecodeNext(w.Next) }

// FFIsData reports whether this instruction consumes FF as data (a constant
// byte via BSelect, or address bits via NextControl) rather than as an
// operation. At most one of the three uses is legal; Validate enforces it.
func (w Word) FFIsData() bool {
	return w.BSel.IsConst() || w.NextOp().UsesFFAsAddress()
}

// FFOp returns the FF operation to execute, or FFNop when FF is data.
func (w Word) FFOp() uint8 {
	if w.FFIsData() {
		return FFNop
	}
	return w.FF
}

// StackDelta interprets RAddr as the signed STACKPTR adjustment used when
// the stack modifier is active — the Block bit of a task-0 instruction
// ("selects a stack operation for task 0", §6.3.1): a two's-complement
// nibble, range −8..+7.
func (w Word) StackDelta() int8 {
	d := int8(w.RAddr & 0xF)
	if d >= 8 {
		d -= 16
	}
	return d
}

// Validate checks the intra-instruction conflict rules that the hardware
// cannot express (the assembler refuses to emit words that fail it):
//
//   - FF may serve only one purpose: constant byte, address bits, or
//     function (§5.5).
//   - An instruction whose NextControl dispatches on B must not also use B
//     for a constant whose FF byte is consumed as address bits (covered by
//     the FF rule) — but dispatching on a B-bus register is fine.
//   - ASelStore requires a B-bus value to write.
//   - Reserved encodings (NextControl, LoadControl, FF) are rejected.
func (w Word) Validate() error {
	op := w.NextOp()
	if op.Kind == NextReserved {
		return fmt.Errorf("microcode: reserved NextControl %#02x", w.Next)
	}
	if w.LC > LCLoadBoth {
		return fmt.Errorf("microcode: reserved LoadControl %d", w.LC)
	}
	ffUses := 0
	if w.BSel.IsConst() {
		ffUses++
	}
	if op.UsesFFAsAddress() {
		ffUses++
	}
	if ffUses > 1 {
		return fmt.Errorf("microcode: FF needed as both constant and address")
	}
	if ffUses == 0 && w.FF != FFNop {
		if ClassifyFF(w.FF) == FFClassReserved {
			return fmt.Errorf("microcode: reserved FF operation %#02x", w.FF)
		}
	}
	if op.Kind == NextBranch && op.W%2 != 0 {
		return fmt.Errorf("microcode: branch false target must be even")
	}
	return nil
}

// UsesMD reports whether the instruction reads the task's memory-data word
// (and therefore is held while MD is not ready, §5.7).
func (w Word) UsesMD() bool {
	if w.ASel == ASelMD || w.BSel == BSelMD {
		return true
	}
	return !w.FFIsData() && w.FF == FFShiftMaskMD
}

// UsesIFUData reports whether the instruction consumes an IFU operand.
func (w Word) UsesIFUData() bool { return w.ASel.UsesIFUData() }

// String renders the word in a compact assembler-like form, e.g.
//
//	R3←A+B[RM3,T] Fetch FF:Count←5 GOTO 7
func (w Word) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s%s", w.LC, ALUFn(w.ALUOp))
	fmt.Fprintf(&b, "[A=%s", w.ASel)
	if w.ASel == ASelRM || w.ASel == ASelFetch || w.ASel == ASelStore {
		fmt.Fprintf(&b, "%d", w.RAddr)
	}
	if w.Block {
		fmt.Fprintf(&b, " stk%+d", w.StackDelta())
	}
	fmt.Fprintf(&b, ",B=%s", w.BSel)
	if w.BSel.IsConst() {
		fmt.Fprintf(&b, "(%#04x)", w.BSel.ConstValue(w.FF))
	}
	b.WriteString("]")
	if w.Block {
		b.WriteString(" BLOCK")
	}
	if !w.FFIsData() && w.FF != FFNop {
		b.WriteString(" FF:")
		b.WriteString(FFName(w.FF))
	}
	b.WriteString(" ")
	b.WriteString(w.NextOp().String())
	if w.NextOp().UsesFFAsAddress() {
		fmt.Fprintf(&b, " [FF=%#02x]", w.FF)
	}
	return b.String()
}
