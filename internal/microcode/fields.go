package microcode

import "fmt"

// Geometry of the microstore. IMAddress = page(8 bits) ‖ word(4 bits).
const (
	// PageSize is the number of microinstructions per microstore page.
	PageSize = 16
	// NumPages is the number of pages in the microstore.
	NumPages = 256
	// StoreSize is the total number of microinstruction words.
	StoreSize = PageSize * NumPages
	// AddrMask masks a 12-bit microstore address.
	AddrMask = StoreSize - 1
	// WordMask masks the word-in-page part of an address.
	WordMask = PageSize - 1
	// PageMask masks the page part of an address (already shifted).
	PageMask = AddrMask &^ WordMask
)

// Addr is a 12-bit microstore address.
type Addr uint16

// Page returns the page number of a.
func (a Addr) Page() uint8 { return uint8(a >> 4) }

// Word returns the word-in-page part of a.
func (a Addr) Word() uint8 { return uint8(a) & WordMask }

// MakeAddr builds an address from a page number and a word within the page.
func MakeAddr(page, word uint8) Addr {
	return Addr(uint16(page)<<4 | uint16(word&WordMask))
}

// String formats the address as page.word, the microassembler notation.
func (a Addr) String() string { return fmt.Sprintf("%02X.%X", a.Page(), a.Word()) }

// BSelect selects the source of the B bus (§6.3.2). Values 4–7 implement
// the constant scheme of §5.9: FF supplies one byte; the BSelect value gives
// the other byte's content (all zeros or all ones) and the position of FF.
type BSelect uint8

const (
	// BSelRM puts the addressed RM (or stack) word on B.
	BSelRM BSelect = iota
	// BSelT puts the task-specific T register on B.
	BSelT
	// BSelQ puts the Q register on B.
	BSelQ
	// BSelMD puts the task's memory-data word on B (holds until ready).
	BSelMD
	// BSelConstLo yields the constant 0x00FF & FF (FF in the low byte,
	// zeros above).
	BSelConstLo
	// BSelConstLoOnes yields 0xFF00 | FF (FF in the low byte, ones above).
	BSelConstLoOnes
	// BSelConstHi yields FF<<8 (FF in the high byte, zeros below).
	BSelConstHi
	// BSelConstHiOnes yields FF<<8 | 0x00FF (FF in the high byte, ones below).
	BSelConstHiOnes
)

// IsConst reports whether b sources the B bus from the FF constant scheme.
func (b BSelect) IsConst() bool { return b >= BSelConstLo }

// ConstValue computes the 16-bit constant selected by b for FF byte ff.
// It panics if b is not a constant selector.
func (b BSelect) ConstValue(ff uint8) uint16 {
	switch b {
	case BSelConstLo:
		return uint16(ff)
	case BSelConstLoOnes:
		return 0xFF00 | uint16(ff)
	case BSelConstHi:
		return uint16(ff) << 8
	case BSelConstHiOnes:
		return uint16(ff)<<8 | 0x00FF
	}
	panic(fmt.Sprintf("microcode: BSelect %d is not a constant selector", b))
}

// String returns the B-source mnemonic used in disassembly listings.
func (b BSelect) String() string {
	switch b {
	case BSelRM:
		return "RM"
	case BSelT:
		return "T"
	case BSelQ:
		return "Q"
	case BSelMD:
		return "MD"
	case BSelConstLo:
		return "ConstLo"
	case BSelConstLoOnes:
		return "ConstLoOnes"
	case BSelConstHi:
		return "ConstHi"
	case BSelConstHiOnes:
		return "ConstHiOnes"
	}
	return fmt.Sprintf("BSelect(%d)", uint8(b))
}

// ASelect selects the source of the A bus and starts memory references
// (§6.3.1). MEMADDRESS is a copy of the A bus (§6.3.2): Fetch and Store use
// the selected A value as the 16-bit displacement, added in the memory
// system to the base register selected by MEMBASE.
type ASelect uint8

const (
	// ASelRM puts the addressed RM (or stack) word on A.
	ASelRM ASelect = iota
	// ASelT puts T on A.
	ASelT
	// ASelIFUData puts the next macroinstruction operand on A and consumes
	// it (the IFU then presents the following operand, §6.3.2).
	ASelIFUData
	// ASelMD puts the task's memory data on A (holds until ready).
	ASelMD
	// ASelFetch puts RM on A and starts a memory read of base[MEMBASE]+A.
	ASelFetch
	// ASelStore puts RM on A and starts a memory write of B to
	// base[MEMBASE]+A.
	ASelStore
	// ASelFetchIFU puts the next IFU operand on A (consuming it) and
	// starts a memory read of base[MEMBASE]+A — the one-instruction
	// "fetch the local addressed by alpha" idiom the Mesa emulator's
	// load opcodes depend on (§7).
	ASelFetchIFU
	// ASelStoreIFU puts the next IFU operand on A (consuming it) and
	// starts a memory write of B to base[MEMBASE]+A — with the stack
	// modifier this is the Mesa one-microinstruction store (§7).
	ASelStoreIFU
)

// StartsMemRef reports whether a initiates a memory reference.
func (a ASelect) StartsMemRef() bool {
	switch a {
	case ASelFetch, ASelStore, ASelFetchIFU, ASelStoreIFU:
		return true
	}
	return false
}

// IsStore reports whether a starts a memory write.
func (a ASelect) IsStore() bool { return a == ASelStore || a == ASelStoreIFU }

// UsesIFUData reports whether a consumes an IFU operand.
func (a ASelect) UsesIFUData() bool {
	switch a {
	case ASelIFUData, ASelFetchIFU, ASelStoreIFU:
		return true
	}
	return false
}

// String returns the A-source mnemonic used in disassembly listings.
func (a ASelect) String() string {
	switch a {
	case ASelRM:
		return "RM"
	case ASelT:
		return "T"
	case ASelIFUData:
		return "IFUData"
	case ASelMD:
		return "MD"
	case ASelFetch:
		return "Fetch"
	case ASelStore:
		return "Store"
	case ASelFetchIFU:
		return "FetchIFU"
	case ASelStoreIFU:
		return "StoreIFU"
	}
	return fmt.Sprintf("ASelect(%d)", uint8(a))
}

// LoadControl controls loading of RESULT into RM and T (§6.3.1).
type LoadControl uint8

const (
	// LCNone stores no result.
	LCNone LoadControl = iota
	// LCLoadT loads T from RESULT.
	LCLoadT
	// LCLoadRM loads the addressed RM (or stack) word from RESULT.
	LCLoadRM
	// LCLoadBoth loads both RM and T from RESULT.
	LCLoadBoth
)

// String returns the load-control mnemonic used in disassembly listings.
func (lc LoadControl) String() string {
	switch lc {
	case LCNone:
		return "-"
	case LCLoadT:
		return "T←"
	case LCLoadRM:
		return "RM←"
	case LCLoadBoth:
		return "RM,T←"
	}
	return fmt.Sprintf("LoadControl(%d)", uint8(lc))
}

// LoadsT reports whether lc loads T.
func (lc LoadControl) LoadsT() bool { return lc == LCLoadT || lc == LCLoadBoth }

// LoadsRM reports whether lc loads RM (or the stack when the stack
// modifier is active).
func (lc LoadControl) LoadsRM() bool { return lc == LCLoadRM || lc == LCLoadBoth }

// Condition is one of the eight branch conditions that can be ORed into the
// low bit of NEXTPC (§5.5). CondCountNZ has the side effect of decrementing
// COUNT, so a loop closes in a single microinstruction (§6.3.3).
type Condition uint8

const (
	// CondALUZero is true when the last ALU result of this task was zero.
	CondALUZero Condition = iota
	// CondALUNeg is true when the last ALU result was negative (bit 15 set).
	CondALUNeg
	// CondCarry is true when the last ALU operation produced a carry out.
	CondCarry
	// CondCountNZ is true when COUNT≠0; evaluating it decrements COUNT.
	CondCountNZ
	// CondOverflow is true when the last ALU operation overflowed.
	CondOverflow
	// CondStackError is true after a stack overflow or underflow; testing
	// it clears the flag.
	CondStackError
	// CondIOAtten is true when the device addressed by IOADDRESS raises
	// its attention line.
	CondIOAtten
	// CondMB is a microcode-settable flag (FF SetMB/ClearMB).
	CondMB
)

var condNames = [8]string{
	"ALU=0", "ALU<0", "CARRY", "COUNT#0", "OVF", "STKERR", "IOATTEN", "MB",
}

// String returns the branch-condition mnemonic used in disassembly listings.
func (c Condition) String() string {
	if c < 8 {
		return condNames[c]
	}
	return fmt.Sprintf("Condition(%d)", uint8(c))
}

// ALUFn is one of the sixteen ALU operations. The 4-bit ALUOp microword
// field does not encode an ALUFn directly: it indexes ALUFM, a 16-word
// memory mapping it to the six bits (function + carry control) that drive
// the ALU (§6.3.3). The default ALUFM contents map each ALUOp to the
// same-numbered ALUFn with CarryDefault.
type ALUFn uint8

const (
	// ALUAplusB computes A+B (+carry-in).
	ALUAplusB ALUFn = iota
	// ALUAminusB computes A-B (implemented as A + ^B + 1 by default).
	ALUAminusB
	// ALUBminusA computes B-A.
	ALUBminusA
	// ALUA passes A through.
	ALUA
	// ALUB passes B through.
	ALUB
	// ALUNotA computes ^A.
	ALUNotA
	// ALUNotB computes ^B.
	ALUNotB
	// ALUAandB computes A AND B.
	ALUAandB
	// ALUAorB computes A OR B.
	ALUAorB
	// ALUAxorB computes A XOR B.
	ALUAxorB
	// ALUAandNotB computes A AND NOT B.
	ALUAandNotB
	// ALUAorNotB computes A OR NOT B.
	ALUAorNotB
	// ALUXnor computes NOT(A XOR B).
	ALUXnor
	// ALUAplus1 computes A+1.
	ALUAplus1
	// ALUAminus1 computes A-1.
	ALUAminus1
	// ALUZero yields 0.
	ALUZero
)

var aluFnNames = [16]string{
	"A+B", "A-B", "B-A", "A", "B", "^A", "^B", "A&B",
	"A|B", "A^B", "A&^B", "A|^B", "XNOR", "A+1", "A-1", "0",
}

// String returns the ALU-function mnemonic used in disassembly listings.
func (f ALUFn) String() string {
	if f < 16 {
		return aluFnNames[f]
	}
	return fmt.Sprintf("ALUFn(%d)", uint8(f))
}

// IsArith reports whether f is an arithmetic (vs logical) function, i.e.
// whether carry-in and carry/overflow-out are meaningful.
func (f ALUFn) IsArith() bool {
	switch f {
	case ALUAplusB, ALUAminusB, ALUBminusA, ALUAplus1, ALUAminus1:
		return true
	}
	return false
}

// CarryCtl selects the carry-in source for arithmetic ALU functions.
type CarryCtl uint8

const (
	// CarryDefault uses the natural carry-in for the function (0 for add,
	// the borrow-complement for subtract).
	CarryDefault CarryCtl = iota
	// CarryZero forces carry-in 0.
	CarryZero
	// CarryOne forces carry-in 1.
	CarryOne
	// CarrySaved uses the task's saved carry flag (for multi-precision
	// arithmetic).
	CarrySaved
)

// String returns the carry-control mnemonic used in disassembly listings.
func (c CarryCtl) String() string {
	switch c {
	case CarryDefault:
		return "cD"
	case CarryZero:
		return "c0"
	case CarryOne:
		return "c1"
	case CarrySaved:
		return "cS"
	}
	return fmt.Sprintf("CarryCtl(%d)", uint8(c))
}

// ALUCtl is the six-bit word stored in ALUFM: the ALU function plus carry
// control (§6.3.3: "a 16 word memory which maps the four-bit ALUOp field
// into the six bits required to control the ALU").
type ALUCtl struct {
	Fn  ALUFn
	Cin CarryCtl
}

// EncodeALUCtl packs c into its six-bit representation.
func EncodeALUCtl(c ALUCtl) uint8 { return uint8(c.Fn)&0xF | uint8(c.Cin)<<4 }

// DecodeALUCtl unpacks a six-bit ALUFM word.
func DecodeALUCtl(v uint8) ALUCtl {
	return ALUCtl{Fn: ALUFn(v & 0xF), Cin: CarryCtl(v >> 4 & 3)}
}

// DefaultALUFM returns the standard ALUFM contents: identity mapping with
// default carry control. Microcode may overwrite entries via FFPutALUFM.
func DefaultALUFM() [16]ALUCtl {
	var m [16]ALUCtl
	for i := range m {
		m[i] = ALUCtl{Fn: ALUFn(i), Cin: CarryDefault}
	}
	return m
}

// String renders the packed ALU control word for debugging.
func (c ALUCtl) String() string { return c.Fn.String() + "/" + c.Cin.String() }
