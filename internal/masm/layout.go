package masm

import (
	"fmt"
	"sort"

	"dorado/internal/microcode"
)

// The layout machinery has two levels:
//
//   - An *atom* is a set of instructions with fixed relative offsets and an
//     alignment requirement. Branch pairs (false at even w, true at w+1),
//     call/continuation pairs (adjacent), and DISPATCH8 tables (eight
//     consecutive 8-aligned words) create atoms; unrelated instructions are
//     singleton atoms. Atoms never span pages.
//
//   - A *cluster* is a set of atoms that must share a page: a branch with
//     its target pair, an FF-busy instruction with its successor (no room
//     for LONGGOTO page bits), a DISPATCH8 with its table.
//
// Both are union-find structures; atoms carry offset translations so that
// merging two atoms through a shared instruction checks for contradictions
// (the paper's "several conditional branches cannot have the same target"
// rule falls out of this check).

// atomSet is a union-find over instructions with relative offsets.
type atomSet struct {
	parent []int // inst index → parent inst index
	delta  []int // offset of inst relative to parent
	// alignment constraints, valid on roots only: root offset o of the
	// atom's coordinate origin must satisfy (memberOffset+o) % mod == 0 for
	// recorded members; normalized to: o ≡ rem (mod mod).
	alignMod []int
	alignRem []int
}

func newAtomSet(n int) *atomSet {
	s := &atomSet{
		parent:   make([]int, n),
		delta:    make([]int, n),
		alignMod: make([]int, n),
		alignRem: make([]int, n),
	}
	for i := range s.parent {
		s.parent[i] = i
		s.alignMod[i] = 1
	}
	return s
}

// find returns the root of i and i's offset relative to the root.
func (s *atomSet) find(i int) (root, off int) {
	if s.parent[i] == i {
		return i, 0
	}
	r, o := s.find(s.parent[i])
	s.parent[i] = r
	s.delta[i] += o
	return r, s.delta[i]
}

// bind requires inst b to sit exactly d words after inst a.
func (s *atomSet) bind(a, b, d int, what string) error {
	ra, oa := s.find(a)
	rb, ob := s.find(b)
	if ra == rb {
		if ob-oa != d {
			return fmt.Errorf("masm: layout conflict (%s): instructions #%d and #%d are already %+d apart, need %+d",
				what, a, b, ob-oa, d)
		}
		return nil
	}
	// Attach rb's tree under ra: offset of rb relative to ra.
	s.parent[rb] = ra
	s.delta[rb] = oa + d - ob
	// Merge alignment constraints, translating rb's into ra's coordinates:
	// pageoff(rb) = pageoff(ra) + delta[rb], so
	// pageoff(ra) ≡ alignRem[rb] − delta[rb] (mod alignMod[rb]).
	return s.mergeAlign(ra, s.alignMod[rb], mod(s.alignRem[rb]-s.delta[rb], s.alignMod[rb]), what)
}

// align requires inst i's final word-in-page offset to satisfy
// (offset ≡ rem mod m).
func (s *atomSet) align(i, m, rem int, what string) error {
	r, o := s.find(i)
	return s.mergeAlign(r, m, mod(rem-o, m), what)
}

// mergeAlign intersects an alignment constraint (root offset ≡ rem mod m)
// into root r's existing constraint. Moduli here are powers of two (2, 8),
// so one always divides the other.
func (s *atomSet) mergeAlign(r, m, rem int, what string) error {
	om, orem := s.alignMod[r], s.alignRem[r]
	if m < om {
		m, rem, om, orem = om, orem, m, rem
	}
	// om divides m; constraint mod m is stricter.
	if mod(rem, om) != orem {
		return fmt.Errorf("masm: alignment conflict (%s): offset ≡%d (mod %d) vs ≡%d (mod %d)",
			what, rem, m, orem, om)
	}
	s.alignMod[r] = m
	s.alignRem[r] = rem
	return nil
}

func mod(a, m int) int { return (a%m + m) % m }

// atom is the materialized form of one union-find class.
type atom struct {
	root     int
	members  []int // inst indices
	offsets  []int // parallel: offset of each member, normalized to min 0
	span     int   // max offset + 1
	alignMod int
	alignRem int // required (page offset of member with offset 0) mod alignMod
}

// atoms materializes the classes. Offsets are shifted so the smallest is 0
// and alignment is re-expressed for the shifted origin.
func (s *atomSet) atoms(n int) ([]*atom, map[int]*atom, error) {
	groups := map[int]*atom{}
	for i := 0; i < n; i++ {
		r, o := s.find(i)
		g := groups[r]
		if g == nil {
			g = &atom{root: r, alignMod: s.alignMod[r], alignRem: s.alignRem[r]}
			groups[r] = g
		}
		g.members = append(g.members, i)
		g.offsets = append(g.offsets, o)
	}
	byInst := map[int]*atom{}
	var out []*atom
	for _, g := range groups {
		min := g.offsets[0]
		for _, o := range g.offsets {
			if o < min {
				min = o
			}
		}
		seen := map[int]int{}
		for k := range g.offsets {
			g.offsets[k] -= min
			if prev, dup := seen[g.offsets[k]]; dup {
				return nil, nil, fmt.Errorf(
					"masm: instructions #%d and #%d must occupy the same microstore word; "+
						"conditional branches cannot share a target — duplicate it (§5.5)",
					prev, g.members[k])
			}
			seen[g.offsets[k]] = g.members[k]
			if g.offsets[k] >= g.span {
				g.span = g.offsets[k] + 1
			}
			byInst[g.members[k]] = g
		}
		g.alignRem = mod(g.alignRem+min, g.alignMod)
		if g.span > microcode.PageSize {
			return nil, nil, fmt.Errorf(
				"masm: a rigid layout group spans %d words (> page size %d); involves #%d",
				g.span, microcode.PageSize, g.members[0])
		}
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].members[0] < out[j].members[0] })
	return out, byInst, nil
}

// size returns the number of words the atom occupies.
func (g *atom) size() int { return len(g.members) }

// clusterSet is a union-find over atoms (same-page requirement).
type clusterSet struct {
	parent map[*atom]*atom
}

func newClusterSet(atoms []*atom) *clusterSet {
	c := &clusterSet{parent: make(map[*atom]*atom, len(atoms))}
	for _, a := range atoms {
		c.parent[a] = a
	}
	return c
}

func (c *clusterSet) find(a *atom) *atom {
	if c.parent[a] != a {
		c.parent[a] = c.find(c.parent[a])
	}
	return c.parent[a]
}

// join requires atoms a and b to share a page.
func (c *clusterSet) join(a, b *atom) {
	ra, rb := c.find(a), c.find(b)
	if ra != rb {
		c.parent[rb] = ra
	}
}

// cluster is a set of atoms that must be placed into one page.
type cluster struct {
	atoms []*atom
	words int
}

// clusters materializes the classes, largest first (first-fit-decreasing
// improves packing, which is what the paper's 99.9% figure measures).
func (c *clusterSet) clusters() ([]*cluster, error) {
	groups := map[*atom]*cluster{}
	for a := range c.parent {
		r := c.find(a)
		g := groups[r]
		if g == nil {
			g = &cluster{}
			groups[r] = g
		}
		g.atoms = append(g.atoms, a)
		g.words += a.size()
	}
	var out []*cluster
	for _, g := range groups {
		if g.words > microcode.PageSize {
			return nil, fmt.Errorf(
				"masm: %d words of microcode are pinned to one page (max %d): "+
					"an FF-busy chain or branch nest is too long; involves #%d — "+
					"free an FF field or restructure the flow",
				g.words, microcode.PageSize, g.atoms[0].members[0])
		}
		// Largest alignment first within the cluster for packing.
		sort.Slice(g.atoms, func(i, j int) bool {
			if g.atoms[i].alignMod != g.atoms[j].alignMod {
				return g.atoms[i].alignMod > g.atoms[j].alignMod
			}
			if g.atoms[i].span != g.atoms[j].span {
				return g.atoms[i].span > g.atoms[j].span
			}
			return g.atoms[i].members[0] < g.atoms[j].members[0]
		})
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].words != out[j].words {
			return out[i].words > out[j].words
		}
		return out[i].atoms[0].members[0] < out[j].atoms[0].members[0]
	})
	return out, nil
}
