package masm

import (
	"strings"
	"testing"

	"dorado/internal/microcode"
)

func TestLinearProgram(t *testing.T) {
	b := NewBuilder()
	b.Label("start")
	b.Emit(I{LC: microcode.LCLoadT, ALU: microcode.ALUAplus1, A: microcode.ASelT})
	b.Emit(I{LC: microcode.LCLoadT, ALU: microcode.ALUAplus1, A: microcode.ASelT})
	b.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	a := p.MustEntry("start")
	if !p.Used[a] {
		t.Fatal("entry word not marked used")
	}
	w := p.Words[a]
	op := w.NextOp()
	if op.Kind != microcode.NextGoto && op.Kind != microcode.NextLongGoto {
		t.Fatalf("first instruction next = %v", op)
	}
	if p.Stats.Instructions != 3 || p.Stats.WordsUsed != 3 {
		t.Fatalf("stats = %+v", p.Stats)
	}
}

// follow resolves one sequential transfer (Goto or LongGoto) from addr.
func follow(t *testing.T, p *Program, a microcode.Addr) microcode.Addr {
	t.Helper()
	w := p.Words[a]
	op := w.NextOp()
	switch op.Kind {
	case microcode.NextGoto:
		return microcode.MakeAddr(a.Page(), op.W)
	case microcode.NextLongGoto:
		return microcode.MakeAddr(w.FF, op.W)
	}
	t.Fatalf("instruction at %v is not a goto: %v", a, op)
	return 0
}

func TestGotoResolution(t *testing.T) {
	b := NewBuilder()
	b.EmitAt("a", I{Flow: Goto("b")})
	b.EmitAt("b", I{Flow: Goto("a")})
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	aa, bb := p.MustEntry("a"), p.MustEntry("b")
	if follow(t, p, aa) != bb || follow(t, p, bb) != aa {
		t.Fatalf("goto cycle broken: a=%v b=%v", aa, bb)
	}
}

func TestBranchPairPlacement(t *testing.T) {
	b := NewBuilder()
	b.EmitAt("top", I{Flow: Branch(microcode.CondALUZero, "iszero", "nonzero")})
	b.EmitAt("iszero", I{Flow: Self()})
	b.EmitAt("nonzero", I{Flow: Self()})
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	top, f, tr := p.MustEntry("top"), p.MustEntry("iszero"), p.MustEntry("nonzero")
	if f%2 != 0 {
		t.Errorf("false target at odd address %v", f)
	}
	if tr != f+1 {
		t.Errorf("true target %v not adjacent to false %v", tr, f)
	}
	if top.Page() != f.Page() {
		t.Errorf("branch page %v != target page %v", top.Page(), f.Page())
	}
	op := p.Words[top].NextOp()
	if op.Kind != microcode.NextBranch || op.Cond != microcode.CondALUZero || op.W != f.Word() {
		t.Errorf("branch word = %v", op)
	}
}

func TestBranchElseDefaultsToNext(t *testing.T) {
	b := NewBuilder()
	b.EmitAt("loop", I{Flow: Branch(microcode.CondCountNZ, "", "loop")})
	b.Halt() // the implicit else target
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	loop := p.MustEntry("loop")
	op := p.Words[loop].NextOp()
	if op.Kind != microcode.NextBranch {
		t.Fatalf("next = %v", op)
	}
	// True target (odd) must be the loop head itself.
	if microcode.MakeAddr(loop.Page(), op.W)+1 != loop {
		t.Errorf("loop head %v is not the odd partner of false target %v", loop, op.W)
	}
}

func TestSharedBranchTargetRejected(t *testing.T) {
	b := NewBuilder()
	b.EmitAt("b1", I{Flow: Branch(microcode.CondCarry, "e1", "common")})
	b.EmitAt("e1", I{Flow: Self()})
	b.EmitAt("b2", I{Flow: Branch(microcode.CondCarry, "e2", "common")})
	b.EmitAt("e2", I{Flow: Self()})
	b.EmitAt("common", I{Flow: Self()})
	_, err := b.Assemble()
	if err == nil || !strings.Contains(err.Error(), "share a target") &&
		!strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("want shared-target error, got %v", err)
	}
}

func TestCallContinuationAdjacent(t *testing.T) {
	b := NewBuilder()
	b.EmitAt("main", I{Flow: Call("sub")})
	b.EmitAt("cont", I{Flow: Self()})
	b.EmitAt("sub", I{Flow: Return()})
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if p.MustEntry("cont") != p.MustEntry("main")+1 {
		t.Errorf("continuation %v not at call+1 (%v)", p.MustEntry("cont"), p.MustEntry("main"))
	}
	if p.Words[p.MustEntry("sub")].NextOp().Kind != microcode.NextReturn {
		t.Error("sub does not return")
	}
}

func TestFFBusySuccessorSamePage(t *testing.T) {
	b := NewBuilder()
	// A chain of FF-busy instructions must land in one page.
	b.Label("start")
	for i := 0; i < 10; i++ {
		b.Emit(I{FF: microcode.FFInput})
	}
	b.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	a := p.MustEntry("start")
	page := a.Page()
	for i := 0; i < 10; i++ {
		if a.Page() != page {
			t.Fatalf("FF-busy chain crossed pages at step %d", i)
		}
		a = follow(t, p, a)
	}
}

func TestFFBusyChainTooLongRejected(t *testing.T) {
	b := NewBuilder()
	b.Label("start")
	for i := 0; i < 20; i++ { // > PageSize: cannot fit one page
		b.Emit(I{FF: microcode.FFInput})
	}
	b.Halt()
	_, err := b.Assemble()
	if err == nil || !strings.Contains(err.Error(), "pinned to one page") {
		t.Fatalf("want cluster-too-big error, got %v", err)
	}
}

func TestConstEncoding(t *testing.T) {
	b := NewBuilder()
	b.EmitAt("c1", I{Const: 0x0042, HasConst: true, LC: microcode.LCLoadT, ALU: microcode.ALUB})
	b.EmitAt("c2", I{Const: 0xFF17, HasConst: true, LC: microcode.LCLoadT, ALU: microcode.ALUB})
	b.EmitAt("c3", I{Const: 0x3100, HasConst: true, LC: microcode.LCLoadT, ALU: microcode.ALUB})
	b.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	for label, want := range map[string]uint16{"c1": 0x0042, "c2": 0xFF17, "c3": 0x3100} {
		w := p.Words[p.MustEntry(label)]
		if !w.BSel.IsConst() {
			t.Errorf("%s: BSel %v is not a constant", label, w.BSel)
			continue
		}
		if got := w.BSel.ConstValue(w.FF); got != want {
			t.Errorf("%s: constant %#04x, want %#04x", label, got, want)
		}
	}
}

func TestInexpressibleConstRejected(t *testing.T) {
	b := NewBuilder()
	b.Emit(I{Const: 0x1234, HasConst: true})
	b.Halt()
	_, err := b.Assemble()
	if err == nil || !strings.Contains(err.Error(), "two instructions") {
		t.Fatalf("want inexpressible-constant error, got %v", err)
	}
}

func TestConstPlusFFRejected(t *testing.T) {
	b := NewBuilder()
	b.Emit(I{Const: 0x0042, HasConst: true, FF: microcode.FFInput})
	b.Halt()
	_, err := b.Assemble()
	if err == nil {
		t.Fatal("want conflict error")
	}
}

func TestUndefinedLabel(t *testing.T) {
	b := NewBuilder()
	b.Emit(I{Flow: Goto("nowhere")})
	_, err := b.Assemble()
	if err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Fatalf("want undefined label error, got %v", err)
	}
}

func TestDuplicateLabel(t *testing.T) {
	b := NewBuilder()
	b.EmitAt("x", I{Flow: Self()})
	b.EmitAt("x", I{Flow: Self()})
	_, err := b.Assemble()
	if err == nil || !strings.Contains(err.Error(), "defined at both") {
		t.Fatalf("want duplicate label error, got %v", err)
	}
}

func TestTrailingFallthroughRejected(t *testing.T) {
	b := NewBuilder()
	b.Emit(I{})
	_, err := b.Assemble()
	if err == nil || !strings.Contains(err.Error(), "falls through") {
		t.Fatalf("want fallthrough error, got %v", err)
	}
}

func TestDispatch8(t *testing.T) {
	b := NewBuilder()
	labels := make([]string, 8)
	for i := range labels {
		labels[i] = string(rune('a' + i))
	}
	b.EmitAt("disp", I{B: microcode.BSelT, Flow: Dispatch8(labels...)})
	for _, l := range labels {
		b.EmitAt(l, I{Flow: Self()})
	}
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	d := p.MustEntry("disp")
	w := p.Words[d]
	if w.NextOp().Kind != microcode.NextDispatch8 {
		t.Fatalf("next = %v", w.NextOp())
	}
	base := microcode.MakeAddr(d.Page(), w.FF&0x8)
	if base.Word()%8 != 0 {
		t.Fatalf("table base %v not 8-aligned", base)
	}
	// Each table slot is a trampoline that ends at the right handler.
	for k, l := range labels {
		slot := base + microcode.Addr(k)
		if !p.Used[slot] {
			t.Fatalf("slot %d unused", k)
		}
		if got := follow(t, p, slot); got != p.MustEntry(l) {
			t.Errorf("slot %d routes to %v, want %q at %v", k, got, l, p.MustEntry(l))
		}
	}
}

func TestDispatch256(t *testing.T) {
	b := NewBuilder()
	table := make([]string, 256)
	for i := range table {
		table[i] = "even"
		if i%2 == 1 {
			table[i] = "odd"
		}
	}
	b.EmitAt("disp", I{B: microcode.BSelT, Flow: Dispatch256(table)})
	b.EmitAt("even", I{Flow: Self()})
	b.EmitAt("odd", I{Flow: Self()})
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	d := p.MustEntry("disp")
	w := p.Words[d]
	if w.NextOp().Kind != microcode.NextDispatch256 {
		t.Fatalf("next = %v", w.NextOp())
	}
	region := int(w.FF & 0xF)
	for k := 0; k < 256; k++ {
		slot := microcode.Addr(region*256 + k)
		want := "even"
		if k%2 == 1 {
			want = "odd"
		}
		if got := follow(t, p, slot); got != p.MustEntry(want) {
			t.Fatalf("selector %d routes to %v, want %q", k, got, want)
		}
	}
	if p.Stats.Trampolines != 256 {
		t.Errorf("trampolines = %d, want 256", p.Stats.Trampolines)
	}
}

func TestUnusedWordsHalt(t *testing.T) {
	b := NewBuilder()
	b.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < microcode.StoreSize; a++ {
		if p.Used[a] {
			continue
		}
		if p.Words[a].FF != microcode.FFHalt {
			t.Fatalf("unused word %v does not halt", microcode.Addr(a))
		}
	}
}

func TestListingSmoke(t *testing.T) {
	b := NewBuilder()
	b.EmitAt("start", I{LC: microcode.LCLoadT, ALU: microcode.ALUAplus1, A: microcode.ASelT})
	b.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	l := p.Listing()
	if !strings.Contains(l, "start") {
		t.Fatalf("listing missing label:\n%s", l)
	}
}

func TestAllWordsValidate(t *testing.T) {
	// Every placed word in a busy program passes microcode.Validate.
	b := NewBuilder()
	b.EmitAt("main", I{Const: 0x00FF, HasConst: true, LC: microcode.LCLoadT, ALU: microcode.ALUB})
	b.Emit(I{FF: microcode.FFPutCount, B: microcode.BSelT})
	b.EmitAt("loop", I{LC: microcode.LCLoadT, ALU: microcode.ALUAplus1, A: microcode.ASelT})
	b.Emit(I{Flow: Branch(microcode.CondCountNZ, "", "loop")})
	// The branch's false target (next instruction) sits at an even word with
	// "loop"'s odd duplicate right after it, so it cannot itself be a call
	// (the continuation would collide with the branch pair) — insert a hop.
	b.Emit(I{})
	b.Emit(I{Flow: Call("sub")})
	b.Halt()
	b.EmitAt("sub", I{FF: microcode.FFGetQ, LC: microcode.LCLoadT, Flow: Return()})
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < microcode.StoreSize; a++ {
		if !p.Used[a] {
			continue
		}
		if err := p.Words[a].Validate(); err != nil {
			t.Errorf("word at %v invalid: %v", microcode.Addr(a), err)
		}
	}
}
