// Package masm is the Dorado microassembler: it turns symbolic
// microinstructions into a placed microstore image.
//
// The interesting part is placement. The Dorado's NextControl scheme (§5.5
// of the paper) divides the 4096-word microstore into 256 pages of 16 words
// and encodes successors in 8 bits, which imposes structure the assembler
// must satisfy:
//
//   - A conditional branch ORs its condition into the low bit of NEXTPC, so
//     the false target must sit at an even address and the true target at
//     the next odd address, both in the same page as the branch itself.
//   - In-page GOTO/CALL reach only the current page; crossing pages needs
//     LONGGOTO/LONGCALL, which consume the FF field for the target page —
//     so an instruction whose FF is already busy (a function, or a constant
//     byte) must have its successor placed in its own page.
//   - CALL loads LINK with THISPC+1, so the caller's continuation must be
//     placed at the physical address immediately after the call.
//   - DISPATCH8 selects among eight consecutive 8-aligned words of the
//     current page; DISPATCH256 selects among the 256 words of one of 16
//     fixed regions. The assembler materializes dispatch tables as
//     trampoline instructions.
//
// The paper reports (§7) that despite these constraints, automatic
// placement used 99.9% of the store when asked to place an essentially full
// microstore; the placer here reproduces that experiment (see
// PlacementStats and the E7 benchmark).
//
// Usage:
//
//	b := masm.NewBuilder()
//	b.Label("loop")
//	b.Emit(masm.I{LC: microcode.LCLoadT, ALU: microcode.ALUAplus1, A: microcode.ASelT})
//	b.Emit(masm.I{Flow: masm.Branch(microcode.CondCountNZ, "", "loop")})
//	prog, err := b.Assemble()
package masm
