package masm

import (
	"fmt"
	"math/rand"
	"testing"

	"dorado/internal/microcode"
)

// genProgram emits n random handler-shaped routines: straight-line code
// with a random mix of busy FF fields, conditional branches, calls to a
// shared subroutine, and dispatch tables — the statistics of real
// emulator microcode.
func genProgram(r *rand.Rand, n int) *Builder {
	b := NewBuilder()
	b.EmitAt("shared", I{FF: microcode.FFGetQ, LC: microcode.LCLoadT, Flow: Return()})
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("g%d", i)
		b.Label(name)
		straight := 2 + r.Intn(8)
		for j := 0; j < straight; j++ {
			in := I{ALU: microcode.ALUAplus1, A: microcode.ASelT, LC: microcode.LCLoadT}
			switch r.Intn(5) {
			case 0:
				in.FF = microcode.FFGetCount // busy FF → same-page successor
			case 1:
				in.Const, in.HasConst = uint16(r.Intn(256)), true
				in.ALU = microcode.ALUB
			}
			b.Emit(in)
		}
		if r.Intn(4) == 0 {
			b.Emit(I{Flow: Call("shared")})
		}
		if r.Intn(3) == 0 {
			els, then := name+".e", name+".t"
			b.Emit(I{Flow: Branch(microcode.Condition(r.Intn(8)), els, then)})
			b.EmitAt(els, I{Flow: Goto(name + ".x")})
			b.EmitAt(then, I{ALU: microcode.ALUAplus1, A: microcode.ASelT, LC: microcode.LCLoadT})
			b.EmitAt(name+".x", I{})
		}
		if r.Intn(8) == 0 {
			var tbl [8]string
			for k := range tbl {
				tbl[k] = name + ".x2"
			}
			b.Emit(I{B: microcode.BSelT, Flow: Dispatch8(tbl[:]...)})
			b.EmitAt(name+".x2", I{})
		}
		b.Emit(I{FF: microcode.FFHalt, Flow: Self()})
	}
	return b
}

// checkSoundness verifies the placed image's control graph: every used
// word validates, and every static successor of every used word lands on
// another used word.
func checkSoundness(t *testing.T, p *Program) {
	t.Helper()
	succ := func(a microcode.Addr) []microcode.Addr {
		w := p.Words[a]
		op := w.NextOp()
		page := a &^ microcode.Addr(microcode.WordMask)
		switch op.Kind {
		case microcode.NextGoto:
			return []microcode.Addr{page | microcode.Addr(op.W)}
		case microcode.NextCall:
			// The callee, and the continuation at PC+1 (the return site).
			return []microcode.Addr{page | microcode.Addr(op.W), (a + 1) & microcode.AddrMask}
		case microcode.NextBranch:
			f := page | microcode.Addr(op.W)
			return []microcode.Addr{f, f | 1}
		case microcode.NextLongGoto:
			return []microcode.Addr{microcode.MakeAddr(w.FF, op.W)}
		case microcode.NextLongCall:
			return []microcode.Addr{microcode.MakeAddr(w.FF, op.W), (a + 1) & microcode.AddrMask}
		case microcode.NextDispatch8:
			var out []microcode.Addr
			base := page | microcode.Addr(w.FF&8)
			for k := 0; k < 8; k++ {
				out = append(out, base|microcode.Addr(k))
			}
			return out
		case microcode.NextReturn, microcode.NextIFUJump:
			return nil
		}
		t.Fatalf("reserved successor at %v: %v", a, op)
		return nil
	}
	for a := 0; a < microcode.StoreSize; a++ {
		if !p.Used[a] {
			continue
		}
		addr := microcode.Addr(a)
		if err := p.Words[a].Validate(); err != nil {
			t.Fatalf("word at %v invalid: %v", addr, err)
		}
		for _, sa := range succ(addr) {
			if !p.Used[sa] {
				t.Fatalf("successor %v of %v is an unused word (%v)", sa, addr, p.Words[a])
			}
		}
	}
}

func TestPlacementSoundnessProperty(t *testing.T) {
	// Many random programs of varying density: every placed program's
	// control graph must be closed over used words.
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(60)
		b := genProgram(r, n)
		p, err := b.Assemble()
		if err != nil {
			t.Fatalf("seed %d (n=%d): %v", seed, n, err)
		}
		checkSoundness(t, p)
	}
}

func TestPlacementSoundnessNearFull(t *testing.T) {
	// Grow a program until the store refuses it; the largest placeable
	// program must still be sound (the E7 experiment's regime).
	r := rand.New(rand.NewSource(42))
	var last *Program
	for n := 64; ; n += 32 {
		b := genProgram(rand.New(rand.NewSource(42)), n)
		p, err := b.Assemble()
		if err != nil {
			break
		}
		last = p
		if n > 2048 {
			break
		}
	}
	_ = r
	if last == nil {
		t.Fatal("nothing placed")
	}
	if last.Stats.UtilizationStore < 0.5 {
		t.Fatalf("near-full program only used %.0f%% of the store", 100*last.Stats.UtilizationStore)
	}
	checkSoundness(t, last)
	t.Logf("largest placement: %v", last.Stats)
}

func TestPaddedProgramsRemainSound(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed + 100))
		b := genProgram(r, 1+r.Intn(20))
		p, err := b.PaddedForNoBypass().Assemble()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkSoundness(t, p)
	}
}

func TestSplicedProgramsRemainSound(t *testing.T) {
	base, err := genProgram(rand.New(rand.NewSource(7)), 20).Assemble()
	if err != nil {
		t.Fatal(err)
	}
	extra := NewBuilder()
	extra.EmitAt("xsvc", I{FF: microcode.FFInput, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	for i := 0; i < 30; i++ {
		extra.Emit(I{ALU: microcode.ALUAplus1, A: microcode.ASelT, LC: microcode.LCLoadT})
	}
	extra.Emit(I{Block: true, Flow: Goto("xsvc")})
	ep, err := extra.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	out, err := Splice(base, ep)
	if err != nil {
		t.Fatal(err)
	}
	checkSoundness(t, out)
}
