package masm

import (
	"fmt"
	"strings"

	"dorado/internal/microcode"
)

// Format renders a Builder's instructions back into the ParseText format,
// one instruction per line, in canonical clause order. It is the inverse
// direction of ParseText: for any builder obtained from ParseText,
// ParseText(Format(b)) reconstructs the same instruction sequence (the
// assemble→disassemble→assemble fixpoint the fuzz target checks).
//
// Canonical choices where the text format has more than one spelling:
// default-valued clauses are omitted, the task-0 stack modifier renders as
// separate "r=N block" clauses (never "stack=D"), and a halt-in-place
// instruction renders as the "halt" shorthand.
//
// Builders that use features the text format cannot express — Dispatch256,
// raw constant B selects, FF codes without a text name, labels containing
// the format's metacharacters — return an error.
func Format(b *Builder) (string, error) {
	var sb strings.Builder
	for _, in := range b.insts {
		var line []string
		for _, lbl := range in.labels {
			if !renderableLabel(lbl) {
				return "", fmt.Errorf("masm: label %q cannot be written in the text format", lbl)
			}
			line = append(line, lbl+":")
		}
		clauses, err := formatInst(in.I)
		if err != nil {
			return "", fmt.Errorf("masm: instruction #%d: %v", in.index, err)
		}
		line = append(line, clauses...)
		sb.WriteString(strings.Join(line, " "))
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}

// renderableLabel reports whether a label survives the text format's
// tokenizer: takeLabel rejects ' ', '\t', '=' and ',' and splits at the
// first ':'; ';' would start a comment.
func renderableLabel(s string) bool {
	return s != "" && !strings.ContainsAny(s, " \t=,:;")
}

func formatInst(in I) ([]string, error) {
	var cl []string
	if in.R != 0 {
		if in.R > 15 {
			return nil, fmt.Errorf("r=%d out of the text format's 0..15", in.R)
		}
		cl = append(cl, fmt.Sprintf("r=%d", in.R))
	}
	if in.ALU != microcode.ALUAplusB {
		name, ok := aluNamesRev[in.ALU]
		if !ok {
			return nil, fmt.Errorf("alu function %d has no text name", in.ALU)
		}
		cl = append(cl, "alu="+name)
	}
	if in.A != microcode.ASelRM {
		cl = append(cl, "a="+formatASel(in.A))
	}
	if in.HasConst {
		cl = append(cl, fmt.Sprintf("const=%d", in.Const))
	} else if in.B != microcode.BSelRM {
		name, err := formatBSel(in.B)
		if err != nil {
			return nil, err
		}
		cl = append(cl, "b="+name)
	}
	if in.LC != microcode.LCNone {
		cl = append(cl, "lc="+map[microcode.LoadControl]string{
			microcode.LCLoadT: "t", microcode.LCLoadRM: "rm", microcode.LCLoadBoth: "both",
		}[in.LC])
	}
	// The halt shorthand owns both the FF field and the flow.
	isHalt := !in.HasConst && in.FF == microcode.FFHalt && in.Flow.Kind == FlowSelf
	if !in.HasConst && in.FF != microcode.FFNop && !isHalt {
		name, err := formatFF(in.FF)
		if err != nil {
			return nil, err
		}
		cl = append(cl, "ff="+name)
	}
	if in.Block {
		cl = append(cl, "block")
	}
	flow, err := formatFlow(in.Flow, isHalt)
	if err != nil {
		return nil, err
	}
	cl = append(cl, flow...)
	if len(cl) == 0 {
		// A fully default no-op still needs a token on its line (a bare
		// label line attaches the label to the NEXT instruction).
		cl = append(cl, "alu=a+b")
	}
	return cl, nil
}

func formatFlow(f Flow, isHalt bool) ([]string, error) {
	target := func(l string) (string, error) {
		if !renderableLabel(l) {
			return "", fmt.Errorf("flow target %q cannot be written in the text format", l)
		}
		return l, nil
	}
	switch f.Kind {
	case FlowSeq:
		return nil, nil
	case FlowGoto, FlowCall:
		l, err := target(f.Target)
		if err != nil {
			return nil, err
		}
		kw := "goto"
		if f.Kind == FlowCall {
			kw = "call"
		}
		return []string{kw, l}, nil
	case FlowReturn:
		return []string{"ret"}, nil
	case FlowIFUJump:
		return []string{"ifujump"}, nil
	case FlowSelf:
		if isHalt {
			return []string{"halt"}, nil
		}
		return []string{"self"}, nil
	case FlowBranch:
		cond, ok := condNamesRev[f.Cond]
		if !ok {
			return nil, fmt.Errorf("condition %d has no text name", f.Cond)
		}
		// An empty Else ("next emitted instruction") renders as an empty
		// list entry, which parses back to the same empty label.
		for _, l := range []string{f.Else, f.Then} {
			if l != "" {
				if _, err := target(l); err != nil {
					return nil, err
				}
			}
		}
		if f.Then == "" {
			return nil, fmt.Errorf("branch with empty true target")
		}
		return []string{"br", cond + "," + f.Else + "," + f.Then}, nil
	case FlowDispatch8:
		if len(f.Table) == 0 {
			return nil, fmt.Errorf("disp8 with no targets")
		}
		for _, l := range f.Table {
			if l != "" {
				if _, err := target(l); err != nil {
					return nil, err
				}
			}
		}
		return []string{"disp8", strings.Join(f.Table, ",")}, nil
	}
	return nil, fmt.Errorf("flow kind %d cannot be written in the text format", f.Kind)
}

func formatASel(a microcode.ASelect) string {
	return [...]string{"rm", "t", "ifudata", "md", "fetch", "store", "fetchifu", "storeifu"}[a&7]
}

func formatBSel(b microcode.BSelect) (string, error) {
	switch b {
	case microcode.BSelRM:
		return "rm", nil
	case microcode.BSelT:
		return "t", nil
	case microcode.BSelQ:
		return "q", nil
	case microcode.BSelMD:
		return "md", nil
	}
	return "", fmt.Errorf("b select %v is not expressible in the text format (constants use const=)", b)
}

func formatFF(ff uint8) (string, error) {
	if name, ok := ffNamesRev[ff]; ok {
		return name, nil
	}
	switch {
	case ff >= microcode.FFCountBase && ff < microcode.FFCountBase+16:
		return fmt.Sprintf("count=%d", ff-microcode.FFCountBase), nil
	case ff >= microcode.FFMemBaseBase && ff < microcode.FFMemBaseBase+32:
		return fmt.Sprintf("membase=%d", ff-microcode.FFMemBaseBase), nil
	case ff >= microcode.FFRotBase && ff < microcode.FFRotBase+32:
		return fmt.Sprintf("rot=%d", ff-microcode.FFRotBase), nil
	case ff >= microcode.FFRMDestBase && ff < microcode.FFRMDestBase+16:
		return fmt.Sprintf("rmdest=%d", ff-microcode.FFRMDestBase), nil
	}
	return "", fmt.Errorf("ff %#02x has no text name", ff)
}

// Reverse lookup tables for the parser's name maps (values are unique).
var (
	aluNamesRev  = reverse(aluNames)
	ffNamesRev   = reverse(ffNames)
	condNamesRev = map[microcode.Condition]string{
		microcode.CondALUZero: "zero", microcode.CondALUNeg: "neg",
		microcode.CondCarry: "carry", microcode.CondCountNZ: "count",
		microcode.CondOverflow: "ovf", microcode.CondStackError: "stkerr",
		microcode.CondIOAtten: "ioatten", microcode.CondMB: "mb",
	}
)

func reverse[K comparable, V comparable](m map[V]K) map[K]V {
	r := make(map[K]V, len(m))
	for v, k := range m {
		r[k] = v
	}
	return r
}
