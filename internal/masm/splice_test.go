package masm

import (
	"strings"
	"testing"

	"dorado/internal/microcode"
)

func assembleOrDie(t *testing.T, b *Builder) *Program {
	t.Helper()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSpliceRelocatesAndMergesSymbols(t *testing.T) {
	base := NewBuilder()
	base.EmitAt("main", I{ALU: microcode.ALUAplus1, A: microcode.ASelT, LC: microcode.LCLoadT})
	base.Halt()
	bp := assembleOrDie(t, base)

	extra := NewBuilder()
	extra.EmitAt("svc", I{FF: microcode.FFInput, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	extra.Emit(I{Block: true, Flow: Goto("svc")})
	ep := assembleOrDie(t, extra)

	out, err := Splice(bp, ep)
	if err != nil {
		t.Fatal(err)
	}
	// Base symbols unchanged; extra symbols relocated to an unused page.
	if out.MustEntry("main") != bp.MustEntry("main") {
		t.Error("base symbol moved")
	}
	svc := out.MustEntry("svc")
	if svc.Page() == bp.MustEntry("main").Page() {
		t.Errorf("svc landed in the base's page %v", svc)
	}
	// The relocated service loop still closes on itself (in-page goto is
	// position-independent).
	w := out.Words[svc+1]
	op := w.NextOp()
	if op.Kind != microcode.NextGoto || microcode.MakeAddr(svc.Page(), op.W) != svc {
		t.Errorf("relocated loop broken: %v", op)
	}
}

func TestSpliceRemapsLongTransfers(t *testing.T) {
	base := NewBuilder()
	base.Label("main")
	base.Halt()
	bp := assembleOrDie(t, base)

	// Force a cross-page long transfer within the extra program: two
	// FF-free chains big enough that the placer may split... guarantee it
	// with >16 instructions of FF-free code plus explicit long flow.
	extra := NewBuilder()
	extra.Label("a")
	for i := 0; i < 20; i++ {
		extra.Emit(I{ALU: microcode.ALUAplus1, A: microcode.ASelT, LC: microcode.LCLoadT})
	}
	extra.Emit(I{Flow: Goto("a")})
	ep := assembleOrDie(t, extra)
	if ep.Stats.PagesTouched < 2 {
		t.Skip("placer fit everything in one page; no long transfer to test")
	}
	out, err := Splice(bp, ep)
	if err != nil {
		t.Fatal(err)
	}
	// Follow the relocated chain for 21 steps: it must stay within used
	// words and return to "a".
	a := out.MustEntry("a")
	pc := a
	for i := 0; i < 21; i++ {
		if !out.Used[pc] {
			t.Fatalf("step %d: chain walked into unused word %v", i, pc)
		}
		w := out.Words[pc]
		op := w.NextOp()
		switch op.Kind {
		case microcode.NextGoto:
			pc = microcode.MakeAddr(pc.Page(), op.W)
		case microcode.NextLongGoto:
			pc = microcode.MakeAddr(w.FF, op.W)
		default:
			t.Fatalf("unexpected flow %v at %v", op, pc)
		}
	}
	if pc != a {
		t.Fatalf("chain ends at %v, want %v", pc, a)
	}
}

func TestSpliceRejectsSymbolCollision(t *testing.T) {
	b1 := NewBuilder()
	b1.EmitAt("x", I{FF: microcode.FFHalt, Flow: Self()})
	b2 := NewBuilder()
	b2.EmitAt("x", I{FF: microcode.FFHalt, Flow: Self()})
	_, err := Splice(assembleOrDie(t, b1), assembleOrDie(t, b2))
	if err == nil || !strings.Contains(err.Error(), "defined in both") {
		t.Fatalf("want collision error, got %v", err)
	}
}

func TestSpliceRejectsDispatch256(t *testing.T) {
	b1 := NewBuilder()
	b1.EmitAt("m", I{FF: microcode.FFHalt, Flow: Self()})
	b2 := NewBuilder()
	table := make([]string, 1)
	table[0] = "h"
	b2.EmitAt("d", I{B: microcode.BSelT, Flow: Dispatch256(table)})
	b2.EmitAt("h", I{FF: microcode.FFHalt, Flow: Self()})
	_, err := Splice(assembleOrDie(t, b1), assembleOrDie(t, b2))
	if err == nil || !strings.Contains(err.Error(), "DISPATCH256") {
		t.Fatalf("want dispatch256 error, got %v", err)
	}
}

func TestSpliceStats(t *testing.T) {
	b1 := NewBuilder()
	b1.EmitAt("m", I{FF: microcode.FFHalt, Flow: Self()})
	b2 := NewBuilder()
	b2.EmitAt("s", I{FF: microcode.FFHalt, Flow: Self()})
	out, err := Splice(assembleOrDie(t, b1), assembleOrDie(t, b2))
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.WordsUsed != 2 || out.Stats.PagesTouched != 2 {
		t.Errorf("stats = %+v", out.Stats)
	}
}
