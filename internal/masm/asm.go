package masm

import (
	"fmt"

	"dorado/internal/microcode"
)

// Builder accumulates symbolic microinstructions and assembles them into a
// placed microstore image.
type Builder struct {
	insts   []*inst
	pending []string // labels waiting for the next Emit
	err     error    // first construction error, reported by Assemble
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// Label attaches a label to the next emitted instruction.
func (b *Builder) Label(name string) *Builder {
	if name == "" {
		b.setErr(fmt.Errorf("masm: empty label"))
		return b
	}
	b.pending = append(b.pending, name)
	return b
}

// Emit appends one instruction.
func (b *Builder) Emit(i I) *Builder {
	in := &inst{I: i, labels: b.pending, index: len(b.insts)}
	b.pending = nil
	b.insts = append(b.insts, in)
	return b
}

// EmitAt is Emit preceded by Label(name).
func (b *Builder) EmitAt(name string, i I) *Builder {
	return b.Label(name).Emit(i)
}

// Nop emits a no-op that falls through.
func (b *Builder) Nop() *Builder { return b.Emit(I{}) }

// Halt emits an instruction that stops the simulated machine.
func (b *Builder) Halt() *Builder {
	return b.Emit(I{FF: microcode.FFHalt, Flow: Self()})
}

func (b *Builder) setErr(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Len reports the number of instructions emitted so far (before dispatch
// trampoline expansion).
func (b *Builder) Len() int { return len(b.insts) }

// Assemble resolves labels, expands dispatch tables, places every
// instruction into the paged microstore under the NextControl constraints,
// and returns the finished Program.
func (b *Builder) Assemble() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.pending) > 0 {
		return nil, fmt.Errorf("masm: trailing label %q with no instruction", b.pending[0])
	}
	if n := len(b.insts); n > 0 {
		last := b.insts[n-1]
		if last.Flow.Kind == FlowSeq {
			return nil, fmt.Errorf("masm: last instruction (%s) falls through past the end", describe(last))
		}
	}
	// Work on fresh copies so Assemble is reentrant (a Builder can be
	// assembled more than once, e.g. to re-place after edits).
	insts := make([]*inst, len(b.insts))
	for i, in := range b.insts {
		c := *in
		c.d8table = nil
		c.addr, c.placed, c.pinned = 0, false, false
		insts[i] = &c
	}
	a := &assembly{
		insts:      insts,
		builderLen: len(insts),
		labels:     map[string]*inst{},
	}
	if err := a.resolveLabels(); err != nil {
		return nil, err
	}
	if err := a.expandDispatches(); err != nil {
		return nil, err
	}
	if err := a.buildAtoms(); err != nil {
		return nil, err
	}
	if err := a.place(); err != nil {
		return nil, err
	}
	return a.fixup()
}

// assembly is the in-flight state of one Assemble call.
type assembly struct {
	insts      []*inst
	builderLen int // instructions emitted by the user; trampolines follow
	labels     map[string]*inst

	atoms       *atomSet
	byInst      map[int]*atom
	clusterList []*cluster

	// dispatch256 regions: regionOf[instIndex] = region for the dispatcher.
	regions     []*region
	pages       [microcode.NumPages]uint16 // occupancy bitmasks
	pagesOpened int
}

// region is a reserved 256-word DISPATCH256 area (16 whole pages).
type region struct {
	index       int     // 0..15
	trampolines []*inst // exactly 256, pinned to region*256+k
	dispatcher  *inst
}

func describe(in *inst) string {
	if len(in.labels) > 0 {
		return fmt.Sprintf("%q (#%d)", in.labels[0], in.index)
	}
	return fmt.Sprintf("#%d", in.index)
}

func (a *assembly) resolveLabels() error {
	for _, in := range a.insts {
		for _, l := range in.labels {
			if prev, dup := a.labels[l]; dup {
				return fmt.Errorf("masm: label %q defined at both #%d and #%d", l, prev.index, in.index)
			}
			a.labels[l] = in
		}
	}
	return nil
}

// lookup resolves a label, or returns the instruction after `from` for the
// empty label (the "next emitted" convention).
func (a *assembly) lookup(label string, from *inst) (*inst, error) {
	if label == "" {
		return a.follower(from)
	}
	in, ok := a.labels[label]
	if !ok {
		return nil, fmt.Errorf("masm: undefined label %q referenced by %s", label, describe(from))
	}
	return in, nil
}

// follower returns the instruction emitted immediately after in. Generated
// trampolines do not count: user code must not fall off its own end.
func (a *assembly) follower(in *inst) (*inst, error) {
	if in.index+1 >= a.builderLen {
		return nil, fmt.Errorf("masm: %s needs a following instruction", describe(in))
	}
	return a.insts[in.index+1], nil
}

// expandDispatches materializes trampoline instructions for Dispatch8 and
// Dispatch256 flows. Trampolines are plain Goto instructions with a free FF,
// so they can LONGGOTO to handlers anywhere in the store.
func (a *assembly) expandDispatches() error {
	for _, in := range a.insts {
		switch in.Flow.Kind {
		case FlowDispatch8:
			if len(in.Flow.Table) == 0 || len(in.Flow.Table) > 8 {
				return fmt.Errorf("masm: dispatch8 at %s needs 1..8 targets, got %d", describe(in), len(in.Flow.Table))
			}
			if in.ffBusy() {
				return fmt.Errorf("masm: dispatch8 at %s needs FF free for the table selector", describe(in))
			}
			fallback := in.Flow.Table[0]
			for k := 0; k < 8; k++ {
				target := fallback
				if k < len(in.Flow.Table) && in.Flow.Table[k] != "" {
					target = in.Flow.Table[k]
				}
				tr := &inst{I: I{Flow: Goto(target)}, index: len(a.insts)}
				a.insts = append(a.insts, tr)
				in.d8table = append(in.d8table, tr)
			}
		case FlowDispatch256:
			if len(in.Flow.Table) == 0 || len(in.Flow.Table) > 256 {
				return fmt.Errorf("masm: dispatch256 at %s needs 1..256 targets, got %d", describe(in), len(in.Flow.Table))
			}
			if in.ffBusy() {
				return fmt.Errorf("masm: dispatch256 at %s needs FF free for the region index", describe(in))
			}
			if len(a.regions) >= 16 {
				return fmt.Errorf("masm: more than 16 DISPATCH256 regions")
			}
			r := &region{index: -1, dispatcher: in}
			fallback := in.Flow.Table[0]
			for k := 0; k < 256; k++ {
				target := fallback
				if k < len(in.Flow.Table) && in.Flow.Table[k] != "" {
					target = in.Flow.Table[k]
				}
				tr := &inst{
					I:     I{Flow: Goto(target)},
					index: len(a.insts),
				}
				a.insts = append(a.insts, tr)
				r.trampolines = append(r.trampolines, tr)
			}
			a.regions = append(a.regions, r)
		}
	}
	return nil
}
