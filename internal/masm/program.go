package masm

import (
	"fmt"
	"sort"

	"dorado/internal/microcode"
)

// Program is an assembled, placed microstore image.
type Program struct {
	// Words is the full microstore; unused words hold breakpoint halts so a
	// wild transfer stops the machine instead of executing garbage.
	Words [microcode.StoreSize]microcode.Word
	// Used marks the words occupied by placed instructions.
	Used [microcode.StoreSize]bool
	// Symbols maps labels to placed addresses.
	Symbols map[string]microcode.Addr
	// Stats describes the placement (the paper's §7 utilization experiment).
	Stats PlacementStats
}

// PlacementStats summarizes how well the placer packed the microstore.
type PlacementStats struct {
	// Instructions counts user-emitted instructions.
	Instructions int
	// Trampolines counts generated dispatch-table instructions.
	Trampolines int
	// WordsUsed counts occupied microstore words.
	WordsUsed int
	// PagesTouched counts pages holding at least one instruction.
	PagesTouched int
	// Clusters counts same-page constraint groups.
	Clusters int
	// LargestCluster is the word count of the biggest cluster.
	LargestCluster int
	// UtilizationTouched is WordsUsed / (PagesTouched × PageSize): how
	// tightly the touched pages are packed.
	UtilizationTouched float64
	// UtilizationStore is WordsUsed / StoreSize.
	UtilizationStore float64
}

// String renders the placement counters as one "key=value" report line.
func (s PlacementStats) String() string {
	return fmt.Sprintf("insts=%d tramps=%d words=%d pages=%d packed=%.1f%% store=%.1f%%",
		s.Instructions, s.Trampolines, s.WordsUsed, s.PagesTouched,
		100*s.UtilizationTouched, 100*s.UtilizationStore)
}

// EmptyProgram returns an image with no instructions (every word halts),
// the identity element for Splice composition.
func EmptyProgram() *Program {
	p := &Program{Symbols: map[string]microcode.Addr{}}
	for i := range p.Words {
		p.Words[i] = microcode.Word{FF: microcode.FFHalt}
	}
	return p
}

// Entry returns the placed address of a label.
func (p *Program) Entry(label string) (microcode.Addr, error) {
	a, ok := p.Symbols[label]
	if !ok {
		return 0, fmt.Errorf("masm: no symbol %q", label)
	}
	return a, nil
}

// MustEntry is Entry but panics on unknown labels.
func (p *Program) MustEntry(label string) microcode.Addr {
	a, err := p.Entry(label)
	if err != nil {
		panic(err)
	}
	return a
}

// Listing renders the placed program, ordered by address, for debugging.
func (p *Program) Listing() string {
	names := map[microcode.Addr][]string{}
	for n, a := range p.Symbols {
		names[a] = append(names[a], n)
	}
	var out []string
	for a := 0; a < microcode.StoreSize; a++ {
		if !p.Used[a] {
			continue
		}
		lbl := ""
		if ns := names[microcode.Addr(a)]; len(ns) > 0 {
			sort.Strings(ns)
			lbl = ns[0] + ": "
		}
		out = append(out, fmt.Sprintf("%v  %s%v", microcode.Addr(a), lbl, p.Words[a]))
	}
	s := ""
	for _, l := range out {
		s += l + "\n"
	}
	return s
}

// fixup resolves successors into NextControl/FF bytes and builds the final
// image.
func (a *assembly) fixup() (*Program, error) {
	p := &Program{Symbols: map[string]microcode.Addr{}}
	for i := range p.Words {
		p.Words[i] = microcode.Word{FF: microcode.FFHalt} // unused words halt
	}
	for _, in := range a.insts {
		if !in.placed {
			return nil, fmt.Errorf("masm: internal error: %s never placed", describe(in))
		}
		w, err := a.encode(in)
		if err != nil {
			return nil, err
		}
		if err := w.Validate(); err != nil {
			return nil, fmt.Errorf("masm: %s: %v", describe(in), err)
		}
		p.Words[in.addr] = w
		p.Used[in.addr] = true
		for _, l := range in.labels {
			p.Symbols[l] = in.addr
		}
	}
	a.stats(p)
	return p, nil
}

// encode produces the placed Word for one instruction.
func (a *assembly) encode(in *inst) (microcode.Word, error) {
	w := microcode.Word{
		RAddr: in.R & 0xF,
		ALUOp: uint8(in.ALU) & 0xF,
		BSel:  in.B,
		LC:    in.LC,
		ASel:  in.A,
		Block: in.Block,
		FF:    in.FF,
	}
	if in.HasConst {
		if in.B != microcode.BSelRM {
			return w, fmt.Errorf("masm: %s sets both B and Const", describe(in))
		}
		if in.FF != microcode.FFNop {
			return w, fmt.Errorf("masm: %s needs FF for both a function and a constant (§5.5: one FF use per cycle)", describe(in))
		}
		bsel, ff, err := Const16(in.Const)
		if err != nil {
			return w, fmt.Errorf("masm: %s: %v", describe(in), err)
		}
		w.BSel, w.FF = bsel, ff
	}

	transfer := func(t *inst, short, long microcode.NextKind) error {
		if t.addr.Page() == in.addr.Page() {
			w.Next = microcode.MustEncodeNext(microcode.NextOp{Kind: short, W: t.addr.Word()})
			return nil
		}
		if in.ffBusy() {
			return fmt.Errorf("masm: internal error: %s placed cross-page with busy FF", describe(in))
		}
		w.Next = microcode.MustEncodeNext(microcode.NextOp{Kind: long, W: t.addr.Word()})
		w.FF = t.addr.Page()
		return nil
	}

	switch in.Flow.Kind {
	case FlowSeq:
		t, err := a.follower(in)
		if err != nil {
			return w, err
		}
		return w, transfer(t, microcode.NextGoto, microcode.NextLongGoto)
	case FlowGoto:
		t, err := a.lookup(in.Flow.Target, in)
		if err != nil {
			return w, err
		}
		return w, transfer(t, microcode.NextGoto, microcode.NextLongGoto)
	case FlowSelf:
		w.Next = microcode.MustEncodeNext(microcode.NextOp{Kind: microcode.NextGoto, W: in.addr.Word()})
		return w, nil
	case FlowCall:
		t, err := a.lookup(in.Flow.Target, in)
		if err != nil {
			return w, err
		}
		return w, transfer(t, microcode.NextCall, microcode.NextLongCall)
	case FlowReturn:
		w.Next = microcode.MustEncodeNext(microcode.NextOp{Kind: microcode.NextReturn})
		return w, nil
	case FlowIFUJump:
		if w.FF == microcode.FFIFUReset && !in.HasConst {
			return w, fmt.Errorf("masm: %s combines IFUReset with IFUJump; "+
				"the dispatch would consume the pre-reset stream (or hold forever) — "+
				"put the IFUJump in the following instruction", describe(in))
		}
		w.Next = microcode.MustEncodeNext(microcode.NextOp{Kind: microcode.NextIFUJump})
		return w, nil
	case FlowBranch:
		els, err := a.lookup(in.Flow.Else, in)
		if err != nil {
			return w, err
		}
		w.Next = microcode.MustEncodeNext(microcode.NextOp{
			Kind: microcode.NextBranch, Cond: in.Flow.Cond, W: els.addr.Word(),
		})
		return w, nil
	case FlowDispatch8:
		w.Next = microcode.MustEncodeNext(microcode.NextOp{Kind: microcode.NextDispatch8})
		w.FF = in.d8table[0].addr.Word() & 0x8 // table base selector bit
		return w, nil
	case FlowDispatch256:
		w.Next = microcode.MustEncodeNext(microcode.NextOp{Kind: microcode.NextDispatch256})
		w.FF = a.regionIndex(in)
		return w, nil
	}
	return w, fmt.Errorf("masm: unknown flow kind %d at %s", in.Flow.Kind, describe(in))
}

func (a *assembly) regionIndex(dispatcher *inst) uint8 {
	for _, r := range a.regions {
		if r.dispatcher == dispatcher {
			return uint8(r.index)
		}
	}
	panic("masm: dispatcher without region")
}

func (a *assembly) stats(p *Program) {
	var st PlacementStats
	st.Instructions = a.builderLen
	st.Trampolines = len(a.insts) - a.builderLen
	pages := map[uint8]bool{}
	for _, in := range a.insts {
		st.WordsUsed++
		pages[in.addr.Page()] = true
	}
	st.PagesTouched = len(pages)
	st.Clusters = len(a.clusterList)
	for _, c := range a.clusterList {
		if c.words > st.LargestCluster {
			st.LargestCluster = c.words
		}
	}
	if st.PagesTouched > 0 {
		st.UtilizationTouched = float64(st.WordsUsed) / float64(st.PagesTouched*microcode.PageSize)
	}
	st.UtilizationStore = float64(st.WordsUsed) / float64(microcode.StoreSize)
	p.Stats = st
}
