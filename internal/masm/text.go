package masm

import (
	"fmt"
	"strconv"
	"strings"

	"dorado/internal/microcode"
)

// ParseText assembles the textual microassembly format into a Builder.
//
// The format is line-oriented; ';' starts a comment. Each line is an
// optional label ("name:") followed by whitespace-separated clauses:
//
//	r=N            RAddress (register 0-15, or the stack delta with STACK)
//	alu=FN         a+b a-b b-a a b ~a ~b a&b a|b a^b a&~b a|~b xnor a+1 a-1 0
//	a=SRC          rm t ifudata md fetch store fetchifu storeifu
//	b=SRC          rm t q md
//	lc=DST         t rm both
//	const=V        a 16-bit constant (decimal or 0x hex; §5.9 byte rule applies)
//	ff=NAME        an FF function: nop input output halt probemd devctl
//	               ioack readyb setmb clearmb stackreset flush mapset mapget
//	               ifureset shift shiftz shiftmd alulsh alursh mulstep divstep
//	               putrbase putstkp putmembase putshiftctl putioaddr putcount
//	               putq putalufm putlink putbaselo putbasehi getrbase getstkp
//	               getmembase getshiftctl getioaddr getcount getq getalufm
//	               getlink getmacropc getbaselo count=N membase=N rot=N rmdest=N
//	stack=D        task-0 stack operation with signed delta D (sets BLOCK)
//	block          release the processor (I/O task service)
//
// and at most one flow clause (default: fall through to the next line):
//
//	goto LABEL | call LABEL | ret | ifujump | self | halt
//	br COND,ELSE,THEN      cond: zero neg carry count ovf stkerr ioatten mb
//	disp8 L0,...,L7
//
// Example:
//
//	; sum 1..10 into T
//	start:  ff=count=9
//	loop:   alu=a+1 a=t lc=t
//	        br count,done,loop
//	done:   halt
func ParseText(src string) (*Builder, error) {
	b := NewBuilder()
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		for {
			rest, lbl, ok := takeLabel(line)
			if !ok {
				break
			}
			b.Label(lbl)
			line = rest
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		inst, err := parseInst(line)
		if err != nil {
			return nil, fmt.Errorf("masm: line %d: %v", ln+1, err)
		}
		b.Emit(inst)
	}
	return b, nil
}

// takeLabel splits a leading "name:" off the line.
func takeLabel(line string) (rest, label string, ok bool) {
	i := strings.IndexByte(line, ':')
	if i <= 0 {
		return line, "", false
	}
	cand := line[:i]
	if strings.ContainsAny(cand, " \t=,") {
		return line, "", false
	}
	return strings.TrimSpace(line[i+1:]), cand, true
}

func parseInst(line string) (I, error) {
	var in I
	fields := strings.Fields(line)
	for fi := 0; fi < len(fields); fi++ {
		f := strings.ToLower(fields[fi])
		key, val, hasEq := strings.Cut(f, "=")
		switch {
		case key == "goto" || key == "call":
			if fi+1 >= len(fields) {
				return in, fmt.Errorf("%s needs a label", key)
			}
			fi++
			if key == "goto" {
				in.Flow = Goto(fields[fi])
			} else {
				in.Flow = Call(fields[fi])
			}
		case key == "ret":
			in.Flow = Return()
		case key == "ifujump":
			in.Flow = IFUJump()
		case key == "self":
			in.Flow = Self()
		case key == "halt":
			in.FF = microcode.FFHalt
			in.Flow = Self()
		case key == "br":
			if fi+1 >= len(fields) {
				return in, fmt.Errorf("br needs cond,else,then")
			}
			fi++
			parts := strings.Split(fields[fi], ",")
			if len(parts) != 3 {
				return in, fmt.Errorf("br needs cond,else,then; got %q", fields[fi])
			}
			cond, err := parseCond(parts[0])
			if err != nil {
				return in, err
			}
			in.Flow = Branch(cond, parts[1], parts[2])
		case key == "disp8":
			if fi+1 >= len(fields) {
				return in, fmt.Errorf("disp8 needs target labels")
			}
			fi++
			in.Flow = Dispatch8(strings.Split(fields[fi], ",")...)
		case key == "block":
			in.Block = true
		case key == "stack":
			if !hasEq {
				return in, fmt.Errorf("stack needs =delta")
			}
			d, err := strconv.ParseInt(val, 10, 8)
			if err != nil || d < -8 || d > 7 {
				return in, fmt.Errorf("stack delta %q out of -8..7", val)
			}
			in.Block = true
			in.R = uint8(d) & 0xF
		case key == "r" && hasEq:
			n, err := strconv.ParseUint(val, 0, 8)
			if err != nil || n > 15 {
				return in, fmt.Errorf("r=%q out of 0..15", val)
			}
			in.R = uint8(n)
		case key == "alu" && hasEq:
			fn, err := parseALU(val)
			if err != nil {
				return in, err
			}
			in.ALU = fn
		case key == "a" && hasEq:
			src, err := parseASel(val)
			if err != nil {
				return in, err
			}
			in.A = src
		case key == "b" && hasEq:
			src, err := parseBSel(val)
			if err != nil {
				return in, err
			}
			in.B = src
		case key == "lc" && hasEq:
			switch val {
			case "t":
				in.LC = microcode.LCLoadT
			case "rm":
				in.LC = microcode.LCLoadRM
			case "both":
				in.LC = microcode.LCLoadBoth
			default:
				return in, fmt.Errorf("lc=%q not t/rm/both", val)
			}
		case key == "const" && hasEq:
			v, err := strconv.ParseUint(val, 0, 16)
			if err != nil {
				return in, fmt.Errorf("const=%q: %v", val, err)
			}
			in.Const = uint16(v)
			in.HasConst = true
		case key == "ff" && hasEq:
			ff, err := parseFF(val)
			if err != nil {
				return in, err
			}
			in.FF = ff
		default:
			return in, fmt.Errorf("unknown clause %q", f)
		}
	}
	return in, nil
}

func parseCond(s string) (Condition, error) {
	switch strings.ToLower(s) {
	case "zero":
		return microcode.CondALUZero, nil
	case "neg":
		return microcode.CondALUNeg, nil
	case "carry":
		return microcode.CondCarry, nil
	case "count":
		return microcode.CondCountNZ, nil
	case "ovf":
		return microcode.CondOverflow, nil
	case "stkerr":
		return microcode.CondStackError, nil
	case "ioatten":
		return microcode.CondIOAtten, nil
	case "mb":
		return microcode.CondMB, nil
	}
	return 0, fmt.Errorf("unknown condition %q", s)
}

var aluNames = map[string]microcode.ALUFn{
	"a+b": microcode.ALUAplusB, "a-b": microcode.ALUAminusB, "b-a": microcode.ALUBminusA,
	"a": microcode.ALUA, "b": microcode.ALUB, "~a": microcode.ALUNotA, "~b": microcode.ALUNotB,
	"a&b": microcode.ALUAandB, "a|b": microcode.ALUAorB, "a^b": microcode.ALUAxorB,
	"a&~b": microcode.ALUAandNotB, "a|~b": microcode.ALUAorNotB, "xnor": microcode.ALUXnor,
	"a+1": microcode.ALUAplus1, "a-1": microcode.ALUAminus1, "0": microcode.ALUZero,
}

func parseALU(s string) (microcode.ALUFn, error) {
	if fn, ok := aluNames[s]; ok {
		return fn, nil
	}
	return 0, fmt.Errorf("unknown alu function %q", s)
}

func parseASel(s string) (microcode.ASelect, error) {
	switch s {
	case "rm":
		return microcode.ASelRM, nil
	case "t":
		return microcode.ASelT, nil
	case "ifudata":
		return microcode.ASelIFUData, nil
	case "md":
		return microcode.ASelMD, nil
	case "fetch":
		return microcode.ASelFetch, nil
	case "store":
		return microcode.ASelStore, nil
	case "fetchifu":
		return microcode.ASelFetchIFU, nil
	case "storeifu":
		return microcode.ASelStoreIFU, nil
	}
	return 0, fmt.Errorf("unknown a-source %q", s)
}

func parseBSel(s string) (microcode.BSelect, error) {
	switch s {
	case "rm":
		return microcode.BSelRM, nil
	case "t":
		return microcode.BSelT, nil
	case "q":
		return microcode.BSelQ, nil
	case "md":
		return microcode.BSelMD, nil
	}
	return 0, fmt.Errorf("unknown b-source %q (constants use const=)", s)
}

var ffNames = map[string]uint8{
	"nop": microcode.FFNop, "input": microcode.FFInput, "output": microcode.FFOutput,
	"halt": microcode.FFHalt, "probemd": microcode.FFProbeMD, "devctl": microcode.FFDevCtl,
	"ioack": microcode.FFIOAttenAck, "readyb": microcode.FFReadyB,
	"setmb": microcode.FFSetMB, "clearmb": microcode.FFClearMB,
	"stackreset": microcode.FFStackReset, "flush": microcode.FFFlushCache,
	"mapset": microcode.FFMapSet, "mapget": microcode.FFMapGet,
	"ifureset": microcode.FFIFUReset,
	"shift":    microcode.FFShiftNoMask, "shiftz": microcode.FFShiftMaskZ,
	"shiftmd": microcode.FFShiftMaskMD, "alulsh": microcode.FFALULsh,
	"alursh": microcode.FFALURsh, "mulstep": microcode.FFMulStep, "divstep": microcode.FFDivStep,
	"putrbase": microcode.FFPutRBase, "putstkp": microcode.FFPutStackPtr,
	"putmembase": microcode.FFPutMemBase, "putshiftctl": microcode.FFPutShiftCtl,
	"putioaddr": microcode.FFPutIOAddress, "putcount": microcode.FFPutCount,
	"putq": microcode.FFPutQ, "putalufm": microcode.FFPutALUFM, "putlink": microcode.FFPutLink,
	"putbaselo": microcode.FFPutBaseLo, "putbasehi": microcode.FFPutBaseHi,
	"getrbase": microcode.FFGetRBase, "getstkp": microcode.FFGetStackPtr,
	"getmembase": microcode.FFGetMemBase, "getshiftctl": microcode.FFGetShiftCtl,
	"getioaddr": microcode.FFGetIOAddress, "getcount": microcode.FFGetCount,
	"getq": microcode.FFGetQ, "getalufm": microcode.FFGetALUFM, "getlink": microcode.FFGetLink,
	"getmacropc": microcode.FFGetMacroPC, "getbaselo": microcode.FFGetBaseLo,
	"readtpc": microcode.FFReadTPC, "writetpc": microcode.FFWriteTPC,
	"cpregget": microcode.FFCPRegGet, "cpregput": microcode.FFCPRegPut,
}

func parseFF(s string) (uint8, error) {
	if ff, ok := ffNames[s]; ok {
		return ff, nil
	}
	// Parameterized forms: count=N, membase=N, rot=N, rmdest=N.
	name, arg, ok := strings.Cut(s, "=")
	if !ok {
		return 0, fmt.Errorf("unknown ff function %q", s)
	}
	n, err := strconv.ParseUint(arg, 0, 8)
	if err != nil {
		return 0, fmt.Errorf("ff %s=%q: %v", name, arg, err)
	}
	switch name {
	case "count":
		if n > 15 {
			return 0, fmt.Errorf("ff count=%d out of 0..15", n)
		}
		return microcode.FFCountBase + uint8(n), nil
	case "membase":
		if n > 31 {
			return 0, fmt.Errorf("ff membase=%d out of 0..31", n)
		}
		return microcode.FFMemBaseBase + uint8(n), nil
	case "rot":
		if n > 31 {
			return 0, fmt.Errorf("ff rot=%d out of 0..31", n)
		}
		return microcode.FFRotBase + uint8(n), nil
	case "rmdest":
		if n > 15 {
			return 0, fmt.Errorf("ff rmdest=%d out of 0..15", n)
		}
		return microcode.FFRMDestBase + uint8(n), nil
	}
	return 0, fmt.Errorf("unknown ff function %q", s)
}

// AssembleText parses and assembles in one step.
func AssembleText(src string) (*Program, error) {
	b, err := ParseText(src)
	if err != nil {
		return nil, err
	}
	return b.Assemble()
}
