package masm

import (
	"math/rand"
	"testing"
)

// BenchmarkAssembleSmall measures assembly+placement of a handler-sized
// program.
func BenchmarkAssembleSmall(b *testing.B) {
	bl := genProgram(rand.New(rand.NewSource(1)), 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bl.Assemble(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssembleNearFull measures placing ~4000 words under the page
// constraints (the §7 placement regime).
func BenchmarkAssembleNearFull(b *testing.B) {
	bl := genProgram(rand.New(rand.NewSource(42)), 420)
	if _, err := bl.Assemble(); err != nil {
		b.Skip("seed does not fit; placement regime changed")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bl.Assemble(); err != nil {
			b.Fatal(err)
		}
	}
}
