package masm

import (
	"strings"
	"testing"

	"dorado/internal/microcode"
)

func TestParseCountLoop(t *testing.T) {
	p, err := AssembleText(`
; sum loop
start:  ff=count=9
loop:   alu=a+1 a=t lc=t
        br count,done,loop
done:   halt
`)
	if err != nil {
		t.Fatal(err)
	}
	start := p.MustEntry("start")
	if p.Words[start].FF != microcode.FFCountBase+9 {
		t.Errorf("start FF = %#x", p.Words[start].FF)
	}
	loop := p.MustEntry("loop")
	w := p.Words[loop]
	if w.ALUOp != uint8(microcode.ALUAplus1) || w.ASel != microcode.ASelT || !w.LC.LoadsT() {
		t.Errorf("loop word = %v", w)
	}
	done := p.MustEntry("done")
	if p.Words[done].FF != microcode.FFHalt {
		t.Error("done does not halt")
	}
}

func TestParsedProgramRuns(t *testing.T) {
	// (Execution-level check lives in core; here: the branch pair layout.)
	p, err := AssembleText(`
start: alu=a-b a=t b=rm r=3 br zero,ne,eq
ne: halt
eq: halt
`)
	if err != nil {
		t.Fatal(err)
	}
	ne, eq := p.MustEntry("ne"), p.MustEntry("eq")
	if ne%2 != 0 || eq != ne+1 {
		t.Errorf("branch pair ne=%v eq=%v", ne, eq)
	}
}

func TestParseStackAndConst(t *testing.T) {
	p, err := AssembleText(`
start: const=0x2A alu=b lc=rm stack=1
       stack=-1 alu=a lc=t
       halt
`)
	if err != nil {
		t.Fatal(err)
	}
	w := p.Words[p.MustEntry("start")]
	if !w.Block || w.StackDelta() != 1 {
		t.Errorf("push word = %v", w)
	}
	if !w.BSel.IsConst() || w.BSel.ConstValue(w.FF) != 0x2A {
		t.Errorf("const = %v", w)
	}
}

func TestParseFlowForms(t *testing.T) {
	p, err := AssembleText(`
start: call sub
       goto start
sub:   ff=getq lc=t ret
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Words[p.MustEntry("sub")].NextOp().Kind != microcode.NextReturn {
		t.Error("sub does not return")
	}
}

func TestParseIO(t *testing.T) {
	p, err := AssembleText(`
svc: ff=input alu=b lc=t
     a=store r=1 b=t alu=a+1 lc=rm block goto svc
`)
	if err != nil {
		t.Fatal(err)
	}
	w := p.Words[p.MustEntry("svc")]
	if w.FF != microcode.FFInput {
		t.Errorf("svc = %v", w)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"start: alu=bogus halt",
		"start: a=bogus halt",
		"start: b=const halt",
		"start: lc=q halt",
		"start: ff=什么 halt",
		"start: br zero,only halt",
		"start: stack=9 halt",
		"start: r=16 halt",
		"start: const=0x10000 halt",
		"start: frobnicate halt",
		"start: goto",
	}
	for _, src := range cases {
		if _, err := AssembleText(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	p, err := AssembleText(`
; leading comment

start: halt  ; trailing comment
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Entry("start"); err != nil {
		t.Fatal(err)
	}
}

func TestParseMultipleLabelsOneLine(t *testing.T) {
	p, err := AssembleText("a: b: halt")
	if err != nil {
		t.Fatal(err)
	}
	if p.MustEntry("a") != p.MustEntry("b") {
		t.Error("aliased labels differ")
	}
}

func TestParseFFParameterized(t *testing.T) {
	p, err := AssembleText(`
s: ff=membase=5
   ff=rot=12
   ff=rmdest=7 alu=a a=rm r=2 lc=rm
   halt
`)
	if err != nil {
		t.Fatal(err)
	}
	a := p.MustEntry("s")
	if p.Words[a].FF != microcode.FFMemBaseBase+5 {
		t.Errorf("membase word %v", p.Words[a])
	}
}

func TestParseRejectsDoubleFlowIsLastOneWins(t *testing.T) {
	// Two flow clauses: the second overwrites the first — document by test.
	p, err := AssembleText("s: goto s self")
	if err != nil {
		t.Fatal(err)
	}
	op := p.Words[p.MustEntry("s")].NextOp()
	if op.Kind != microcode.NextGoto || op.W != p.MustEntry("s").Word() {
		t.Errorf("self should win: %v", op)
	}
}

func TestParseDisp8(t *testing.T) {
	src := `
d: b=t disp8 t0,t1,t2,t3,t4,t5,t6,t7
`
	var labels strings.Builder
	for i := 0; i < 8; i++ {
		labels.WriteString("t")
		labels.WriteByte(byte('0' + i))
		labels.WriteString(": halt\n")
	}
	p, err := AssembleText(src + labels.String())
	if err != nil {
		t.Fatal(err)
	}
	if p.Words[p.MustEntry("d")].NextOp().Kind != microcode.NextDispatch8 {
		t.Error("not a dispatch")
	}
}

func TestParseAllConditionNames(t *testing.T) {
	for _, cond := range []string{"zero", "neg", "carry", "count", "ovf", "stkerr", "ioatten", "mb"} {
		src := "s: alu=a a=t br " + cond + ",e,t\ne: halt\nt: halt\n"
		if _, err := AssembleText(src); err != nil {
			t.Errorf("condition %q: %v", cond, err)
		}
	}
}

func TestParseAllSourceNames(t *testing.T) {
	for _, a := range []string{"rm", "t", "ifudata", "md", "fetch", "store", "fetchifu", "storeifu"} {
		src := "s: a=" + a + " halt"
		if _, err := ParseText(src); err != nil {
			t.Errorf("a=%s: %v", a, err)
		}
	}
	for _, b := range []string{"rm", "t", "q", "md"} {
		src := "s: b=" + b + " halt"
		if _, err := ParseText(src); err != nil {
			t.Errorf("b=%s: %v", b, err)
		}
	}
}

func TestBuilderConveniences(t *testing.T) {
	b := NewBuilder()
	b.Label("start")
	b.Nop()
	b.Emit(I{Flow: IFUJump()})
	if b.Len() != 2 {
		t.Errorf("Len = %d", b.Len())
	}
	b.Label("") // construction error surfaces at Assemble
	if _, err := b.Assemble(); err == nil {
		t.Error("empty label should fail assembly")
	}
}

func TestEmptyProgramHalts(t *testing.T) {
	p := EmptyProgram()
	for a := 0; a < microcode.StoreSize; a += 1111 {
		if p.Used[a] || p.Words[a].FF != microcode.FFHalt {
			t.Fatalf("word %d not a halting filler", a)
		}
	}
	if len(p.Symbols) != 0 {
		t.Error("empty program has symbols")
	}
}
